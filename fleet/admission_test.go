package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"effitest"
)

// The admission bound refuses submissions once the non-terminal campaign
// backlog hits the limit, and frees a slot the moment a campaign settles —
// by completion, failure, or cancellation alike.
func TestManagerAdmissionBound(t *testing.T) {
	m := newTestManager(t, WithWorkers(1), WithMaxQueuedCampaigns(2))
	c := tinyCircuit(t, "admit", 3)
	sb := &slowBackend{delay: 20 * time.Millisecond}
	opts := fastOpts(effitest.WithBackend(sb))

	submit := func() (*Campaign, error) {
		return m.Submit(CampaignSpec{Circuit: c, Options: opts, ChipSeed: 1, ChipCount: 8})
	}
	a, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	b, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit over a bound of 2: err %v, want ErrQueueFull", err)
	}
	if st := m.Stats(); st.QueueLimit != 2 || st.CampaignsRejected != 1 {
		t.Fatalf("stats limit=%d rejected=%d, want 2/1", st.QueueLimit, st.CampaignsRejected)
	}

	// Cancelling one campaign frees its slot once it settles.
	a.Cancel()
	if _, err := a.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d, err := submit()
	if err != nil {
		t.Fatalf("submit after a settled cancel: %v", err)
	}

	for _, camp := range []*Campaign{b, d} {
		camp.Cancel()
		if _, err := camp.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// A campaign that fails engine construction releases its admission slot —
// a stream of doomed submissions must not wedge the bound shut.
func TestAdmissionSlotFreedOnPrepFailure(t *testing.T) {
	m := newTestManager(t, WithMaxQueuedCampaigns(1))
	c := tinyCircuit(t, "admitfail", 3)
	for i := 0; i < 3; i++ {
		camp, err := m.Submit(CampaignSpec{Circuit: c, Options: []effitest.Option{effitest.WithEpsilon(-4)}, ChipCount: 2})
		if err != nil {
			t.Fatalf("round %d: submit refused: %v", i, err)
		}
		if st, err := camp.Wait(context.Background()); err != nil || st.State != StateFailed {
			t.Fatalf("round %d: state %v err %v, want failed", i, st.State, err)
		}
	}
}

// WithMaxQueuedCampaigns rejects a negative bound.
func TestAdmissionOptionValidation(t *testing.T) {
	if _, err := NewManager(WithMaxQueuedCampaigns(-1)); err == nil {
		t.Fatal("negative admission bound accepted")
	}
}
