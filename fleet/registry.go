package fleet

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"effitest"
)

// Registry is a bounded LRU of live engines keyed by (circuit fingerprint,
// configuration fingerprint). Engine construction is single-flighted per
// key: however many goroutines ask for the same (circuit, configuration)
// concurrently, the expensive offline Prepare runs exactly once and every
// caller receives the same shared *effitest.Engine (engines are immutable
// and safe for concurrent use).
//
// The registry bounds live engines, not their lifetime: an evicted engine
// keeps working for whoever still holds it — eviction only drops the
// registry's reference so the least-recently-used plans can be collected.
// Pair the registry with a plan-cache directory (WithPlanCacheDir) and an
// evicted-and-reloaded engine skips Prepare by loading the on-disk
// artifact.
type Registry struct {
	capacity int
	planDir  string
	baseOpts []effitest.Option

	mu    sync.Mutex
	items map[string]*regEntry
	order *list.List // front = most recently used; element values are *regEntry

	stats RegistryStats
}

// regEntry is one registry slot. ready is closed once eng/err are set; a
// failed construction removes the entry before closing ready, so the next
// request retries instead of caching the error.
type regEntry struct {
	key   string
	ready chan struct{}
	eng   *effitest.Engine
	err   error
	elem  *list.Element
}

// RegistryStats counts registry traffic since construction.
type RegistryStats struct {
	// Hits are requests served an existing (or in-flight) engine.
	Hits int
	// Misses are requests that had to construct an engine.
	Misses int
	// Prepares counts constructions that ran the offline Prepare — a miss
	// served from the plan-cache directory loads the artifact instead and
	// does not count.
	Prepares int
	// Evictions counts engines dropped by the LRU bound.
	Evictions int
	// Live is the current number of registered engines (including ones
	// still under construction).
	Live int
}

// RegistryOption configures a Registry at construction time.
type RegistryOption func(*Registry)

// WithCapacity bounds the number of live engines (default 16). When a new
// engine would exceed it, the least-recently-used ready engine is evicted.
func WithCapacity(n int) RegistryOption {
	return func(r *Registry) { r.capacity = n }
}

// WithPlanCacheDir backs every engine with the content-addressed on-disk
// plan cache at dir, so a cold registry entry still skips Prepare whenever
// any process has prepared that (circuit, configuration) before.
func WithPlanCacheDir(dir string) RegistryOption {
	return func(r *Registry) { r.planDir = dir }
}

// WithEngineOptions prepends base options to every Engine call — the
// service-wide defaults a daemon applies before per-request options.
func WithEngineOptions(opts ...effitest.Option) RegistryOption {
	return func(r *Registry) { r.baseOpts = append(r.baseOpts, opts...) }
}

// NewRegistry builds an engine registry.
func NewRegistry(opts ...RegistryOption) (*Registry, error) {
	r := &Registry{
		capacity: 16,
		items:    map[string]*regEntry{},
		order:    list.New(),
	}
	for _, o := range opts {
		o(r)
	}
	if r.capacity <= 0 {
		return nil, fmt.Errorf("fleet: registry capacity must be positive, got %d", r.capacity)
	}
	return r, nil
}

// Engine returns the live engine for (c, opts), constructing it exactly
// once per key no matter how many goroutines ask concurrently. The key is
// (circuit fingerprint, options fingerprint) — see
// effitest.SummarizeOptions for what the options fingerprint covers;
// notably the worker count is excluded, so requests differing only in
// execution width share one engine.
//
// Callers must run chips manufactured from the returned engine's circuit
// instance (eng.Circuit() or eng.SampleChips), which may be a different
// pointer than c when another caller registered the same content first.
//
// Three option kinds bypass the registry and construct a caller-private
// engine instead: WithPlan (the supplied artifact, not the options,
// governs that engine), and WithBackend / WithObserver (both are baked
// into the engine, and a caller that did not ask for a fault-injecting or
// replaying transport must never inherit one from whoever registered the
// key first). Bypassing engines still load through the registry's plan
// cache directory, so they skip Prepare whenever a shared engine already
// stored the artifact.
//
// Cancelling ctx abandons the wait (and, for the constructing caller, the
// construction); a construction abandoned mid-flight surfaces its error to
// every waiter and is forgotten, so the next request retries.
func (r *Registry) Engine(ctx context.Context, c *effitest.Circuit, opts ...effitest.Option) (*effitest.Engine, error) {
	all := make([]effitest.Option, 0, len(r.baseOpts)+len(opts)+1)
	all = append(all, r.baseOpts...)
	all = append(all, opts...)
	sum := effitest.SummarizeOptions(all...)
	if sum.HasPlan {
		return effitest.NewCtx(ctx, c, all...)
	}
	if sum.HasBackend || sum.HasObserver {
		if r.planDir != "" && sum.PlanCacheDir == "" {
			all = append(all, effitest.WithPlanCache(r.planDir))
		}
		return effitest.NewCtx(ctx, c, all...)
	}
	if r.planDir != "" && sum.PlanCacheDir == "" {
		all = append(all, effitest.WithPlanCache(r.planDir))
	}
	cfp, err := effitest.CircuitFingerprint(c)
	if err != nil {
		return nil, fmt.Errorf("fleet: fingerprinting circuit: %w", err)
	}
	key := cfp + "|" + sum.Fingerprint

	r.mu.Lock()
	for {
		e, ok := r.items[key]
		if !ok {
			break
		}
		r.stats.Hits++
		r.order.MoveToFront(e.elem)
		r.mu.Unlock()
		select {
		case <-e.ready:
			// A construction aborted by the *constructor's* cancellation
			// must not poison unrelated waiters: the failed entry was
			// forgotten, so retry under our own context instead of
			// surfacing someone else's context error.
			if e.err != nil && ctx.Err() == nil &&
				(errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
				r.mu.Lock()
				continue
			}
			return e.eng, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e := &regEntry{key: key, ready: make(chan struct{})}
	e.elem = r.order.PushFront(e)
	r.items[key] = e
	r.stats.Misses++
	r.evictLocked()
	r.mu.Unlock()

	eng, err := effitest.NewCtx(ctx, c, all...)
	r.mu.Lock()
	if err != nil {
		// Forget the failed entry so the next request retries; waiters
		// already holding e still see the error through ready.
		if cur, ok := r.items[key]; ok && cur == e {
			r.order.Remove(e.elem)
			delete(r.items, key)
		}
	} else if !eng.PlanCacheHit() {
		r.stats.Prepares++
	}
	e.eng, e.err = eng, err
	r.mu.Unlock()
	close(e.ready)
	return eng, err
}

// evictLocked drops least-recently-used ready engines until the capacity
// bound holds. Entries still under construction are never evicted — their
// waiters hold them — so the registry can transiently exceed capacity by
// the number of in-flight constructions.
func (r *Registry) evictLocked() {
	for el := r.order.Back(); el != nil && len(r.items) > r.capacity; {
		prev := el.Prev()
		e := el.Value.(*regEntry)
		select {
		case <-e.ready:
			r.order.Remove(el)
			delete(r.items, e.key)
			r.stats.Evictions++
		default:
			// still preparing; skip
		}
		el = prev
	}
}

// Len returns the number of registered engines (including in-flight
// constructions).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Live = len(r.items)
	return st
}
