package fleet

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"effitest"
)

// outcomesEqual compares everything except wall-clock durations.
func outcomesEqual(a, b *effitest.ChipOutcome) bool {
	return a.Iterations == b.Iterations &&
		a.ScanBits == b.ScanBits &&
		a.Configured == b.Configured &&
		a.Passed == b.Passed &&
		a.Xi == b.Xi &&
		reflect.DeepEqual(a.X, b.X) &&
		reflect.DeepEqual(a.Bounds.Lo, b.Bounds.Lo) &&
		reflect.DeepEqual(a.Bounds.Hi, b.Bounds.Hi)
}

func newTestManager(t *testing.T, opts ...ManagerOption) *Manager {
	t.Helper()
	m, err := NewManager(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Shutdown(context.Background()) })
	return m
}

// A campaign's streamed results and aggregate stats must be bit-identical
// to running the same chips through Engine.RunChips in process.
func TestCampaignMatchesEngineRunChips(t *testing.T) {
	m := newTestManager(t, WithWorkers(4))
	c := tinyCircuit(t, "match", 3)
	ctx := context.Background()

	camp, err := m.Submit(CampaignSpec{
		Name: "lot-1", Circuit: c, Options: fastOpts(),
		ChipSeed: 11, ChipCount: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := camp.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s, err %v", st.State, st.Err)
	}

	eng, err := effitest.New(c, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	chips, err := eng.SampleChips(ctx, 11, 10)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for res := range camp.Results(ctx) {
		if res.Err != nil {
			t.Fatalf("chip %d: %v", res.Index, res.Err)
		}
		if res.Index != i {
			t.Fatalf("results out of order: got index %d at position %d", res.Index, i)
		}
		want, err := eng.RunChip(ctx, chips[i])
		if err != nil {
			t.Fatal(err)
		}
		if !outcomesEqual(res.Outcome, want) {
			t.Fatalf("chip %d: campaign outcome differs from Engine.RunChip", i)
		}
		i++
	}
	if i != 10 {
		t.Fatalf("streamed %d results, want 10", i)
	}

	want, err := eng.Yield(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Stats
	if got.Yield != want.Yield || got.AvgIterations != want.AvgIterations ||
		got.AvgScanBits != want.AvgScanBits || got.ConfiguredFrac != want.ConfiguredFrac {
		t.Fatalf("aggregate stats diverge:\ncampaign: %+v\nengine:   %+v", got, want)
	}
	// A consumer attaching after completion sees the identical full stream.
	n := 0
	for res := range camp.Results(ctx) {
		if res.Index != n || res.Err != nil {
			t.Fatalf("replayed stream corrupt at %d", n)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("replayed %d results, want 10", n)
	}
}

// Two campaigns for the same (circuit, configuration) must share one
// engine: exactly one Prepare no matter how many campaigns are in flight.
func TestCampaignsShareOnePrepare(t *testing.T) {
	m := newTestManager(t, WithWorkers(2))
	c := tinyCircuit(t, "shared", 3)
	ctx := context.Background()

	var camps []*Campaign
	for i := 0; i < 4; i++ {
		camp, err := m.Submit(CampaignSpec{
			Circuit: c, Options: fastOpts(),
			ChipSeed: int64(100 + i), ChipCount: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		camps = append(camps, camp)
	}
	for _, camp := range camps {
		if st, err := camp.Wait(ctx); err != nil || st.State != StateDone {
			t.Fatalf("campaign %s: state %v err %v", camp.ID(), st.State, err)
		}
	}
	if st := m.Registry().Stats(); st.Prepares != 1 {
		t.Fatalf("expected exactly 1 Prepare across 4 concurrent campaigns, got %d", st.Prepares)
	}
	a, b := camps[0].Engine(), camps[1].Engine()
	if a == nil || a != b {
		t.Fatal("campaigns did not share the registry engine")
	}
}

// The dispatcher's pick order must interleave one chip per campaign per
// turn — exercised white-box on nextJob, which owns the round-robin.
func TestNextJobRoundRobin(t *testing.T) {
	a := &Campaign{id: "a", chips: make([]*effitest.Chip, 3)}
	b := &Campaign{id: "b", chips: make([]*effitest.Chip, 5)}
	m := &Manager{active: []*Campaign{a, b}}

	var order []string
	for {
		j, ok := m.nextJob()
		if !ok {
			break
		}
		order = append(order, j.c.id)
	}
	want := []string{"a", "b", "a", "b", "a", "b", "b", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
	if a.nextDispatch != 3 || b.nextDispatch != 5 {
		t.Fatalf("dispatch counters %d/%d, want 3/5", a.nextDispatch, b.nextDispatch)
	}
}

// Fair scheduling end to end: with one worker, a small campaign submitted
// while a big one is mid-run still finishes first — round-robin shares the
// pool instead of draining the big queue FIFO.
func TestCampaignFairScheduling(t *testing.T) {
	m := newTestManager(t, WithWorkers(1))
	c := tinyCircuit(t, "fair", 3)
	ctx := context.Background()

	sb := &slowBackend{delay: 20 * time.Millisecond}
	opts := fastOpts(effitest.WithBackend(sb))

	big, err := m.Submit(CampaignSpec{Name: "big", Circuit: c, Options: opts, ChipSeed: 1, ChipCount: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Let the big campaign get rolling, then submit the small one.
	for big.Status().ChipsDone < 1 {
		time.Sleep(time.Millisecond)
	}
	small, err := m.Submit(CampaignSpec{Name: "small", Circuit: c, Options: opts, ChipSeed: 2, ChipCount: 3})
	if err != nil {
		t.Fatal(err)
	}
	smallSt, err := small.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if smallSt.State != StateDone {
		t.Fatalf("small campaign state %s", smallSt.State)
	}
	if bigSt := big.Status(); bigSt.State == StateDone {
		t.Fatal("big campaign finished before the small one — scheduling is FIFO, not fair")
	}
	if st, err := big.Wait(ctx); err != nil || st.State != StateDone {
		t.Fatalf("big campaign: %v %v", st.State, err)
	}
}

// slowBackend stretches every session open so cancellation reliably lands
// mid-campaign.
type slowBackend struct {
	delay time.Duration
	opens atomic.Int64
	inner effitest.SimBackend
}

func (s *slowBackend) Open(ch *effitest.Chip, resolution float64) (effitest.Session, error) {
	s.opens.Add(1)
	time.Sleep(s.delay)
	return s.inner.Open(ch, resolution)
}

// Cancelling a running campaign must drain without wedging: every chip
// resolves (outcome, context error, or ErrCampaignCancelled), the state
// settles as Cancelled, and the manager keeps serving other campaigns.
func TestCampaignCancelDrains(t *testing.T) {
	m := newTestManager(t, WithWorkers(2))
	c := tinyCircuit(t, "cancel", 3)
	ctx := context.Background()

	sb := &slowBackend{delay: 20 * time.Millisecond}
	camp, err := m.Submit(CampaignSpec{
		Circuit: c, Options: fastOpts(effitest.WithBackend(sb)),
		ChipSeed: 5, ChipCount: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let a few chips through, then cancel mid-flight.
	for camp.Status().ChipsDone < 2 {
		time.Sleep(time.Millisecond)
	}
	camp.Cancel()

	st, err := camp.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if st.ChipsDone != 40 {
		t.Fatalf("campaign did not drain: %d/40 chips resolved", st.ChipsDone)
	}
	var ok, cancelled int
	for res := range camp.Results(ctx) {
		switch {
		case res.Err == nil:
			ok++
		case errors.Is(res.Err, ErrCampaignCancelled) || errors.Is(res.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("chip %d: unexpected error %v", res.Index, res.Err)
		}
	}
	if ok == 0 || cancelled == 0 {
		t.Fatalf("expected a mix of outcomes and cancellations, got %d ok / %d cancelled", ok, cancelled)
	}

	// The pool is still healthy: a follow-up campaign completes.
	after, err := m.Submit(CampaignSpec{Circuit: c, Options: fastOpts(), ChipSeed: 6, ChipCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := after.Wait(ctx); err != nil || st.State != StateDone {
		t.Fatalf("post-cancel campaign: %v %v", st.State, err)
	}
}

// Shutdown mid-campaign drains in-flight chips, resolves the rest with
// ErrManagerClosed, and leaks no goroutines.
func TestManagerShutdownMidCampaignNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	m, err := NewManager(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	c := tinyCircuit(t, "shutdown", 3)
	sb := &slowBackend{delay: 20 * time.Millisecond}
	camp, err := m.Submit(CampaignSpec{
		Circuit: c, Options: fastOpts(effitest.WithBackend(sb)),
		ChipSeed: 5, ChipCount: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for camp.Status().ChipsDone < 2 {
		time.Sleep(time.Millisecond)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := camp.Status()
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	if st.ChipsDone != 50 {
		t.Fatalf("shutdown did not settle the campaign: %d/50", st.ChipsDone)
	}
	sawClosed := false
	for res := range camp.Results(context.Background()) {
		if errors.Is(res.Err, ErrManagerClosed) {
			sawClosed = true
		}
	}
	if !sawClosed {
		t.Fatal("expected undispatched chips to carry ErrManagerClosed")
	}
	if _, err := m.Submit(CampaignSpec{Circuit: c, ChipCount: 1}); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("submit after shutdown: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked across shutdown: %d -> %d", before, now)
	}
}

// Shutdown is idempotent: sequential and concurrent repeat calls wait for
// the one drain instead of panicking on re-closed channels.
func TestManagerShutdownIdempotent(t *testing.T) {
	m, err := NewManager(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	c := tinyCircuit(t, "idem", 3)
	camp, err := m.Submit(CampaignSpec{Circuit: c, Options: fastOpts(), ChipSeed: 5, ChipCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Shutdown(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := camp.Status(); !st.State.Terminal() {
		t.Fatalf("campaign not settled after shutdown: %s", st.State)
	}
}

// A campaign cancelled before its population resolves still settles with
// a terminal state and a finish timestamp.
func TestCampaignCancelDuringPrepStamps(t *testing.T) {
	m := newTestManager(t)
	c := tinyCircuit(t, "prepcancel", 3)
	camp, err := m.Submit(CampaignSpec{Circuit: c, Options: fastOpts(), ChipSeed: 5, ChipCount: 4})
	if err != nil {
		t.Fatal(err)
	}
	camp.Cancel()
	st, err := camp.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !st.State.Terminal() {
		t.Fatalf("state %s not terminal", st.State)
	}
	if st.FinishedAt.IsZero() {
		t.Fatal("terminal campaign has no finish timestamp")
	}
}

// A campaign whose engine construction fails settles as Failed with the
// error surfaced in Status, and streams no results.
func TestCampaignPrepFailure(t *testing.T) {
	m := newTestManager(t)
	c := tinyCircuit(t, "prepfail", 3)
	camp, err := m.Submit(CampaignSpec{Circuit: c, Options: []effitest.Option{effitest.WithEpsilon(-4)}, ChipCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := camp.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Err == nil {
		t.Fatalf("state %s err %v, want failed with error", st.State, st.Err)
	}
	for range camp.Results(context.Background()) {
		t.Fatal("failed campaign must stream no results")
	}
}
