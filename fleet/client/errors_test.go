package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"syscall"
	"testing"
)

// timeoutErr is a minimal net.Error with Timeout() true.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"500", &APIError{StatusCode: 500, Message: "boom"}, true},
		{"502", &APIError{StatusCode: 502, Message: "bad gateway"}, true},
		{"503", &APIError{StatusCode: 503, Message: "draining"}, true},
		{"429", &APIError{StatusCode: 429, Message: "slow down"}, true},
		{"400", &APIError{StatusCode: 400, Message: "bad spec"}, false},
		{"404", &APIError{StatusCode: 404, Message: "no such campaign"}, false},
		{"409", &APIError{StatusCode: 409, Message: "conflict"}, false},
		{"wrapped 503", fmt.Errorf("submit: %w", &APIError{StatusCode: 503}), true},
		{"wrapped 404", fmt.Errorf("status: %w", &APIError{StatusCode: 404}), false},
		{"conn refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"conn reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"conn aborted", &net.OpError{Op: "read", Err: syscall.ECONNABORTED}, true},
		{"epipe", &net.OpError{Op: "write", Err: syscall.EPIPE}, true},
		{"refused via url.Error", &url.Error{Op: "Get", URL: "http://x", Err: &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}}, true},
		{"stream cut mid-body", io.ErrUnexpectedEOF, true},
		{"wrapped unexpected EOF", fmt.Errorf("decode: %w", io.ErrUnexpectedEOF), true},
		{"closed pipe", io.ErrClosedPipe, true},
		{"net timeout", timeoutErr{}, true},
		{"url-wrapped timeout", &url.Error{Op: "Get", URL: "http://x", Err: timeoutErr{}}, true},
		{"context canceled", context.Canceled, false},
		{"wrapped cancel", fmt.Errorf("stream: %w", context.Canceled), false},
		{"plain error", errors.New("decode failure"), false},
		{"plain EOF", io.EOF, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("%s: IsTransient(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}
}

// errors.Is(err, ErrTransient) is the public contract the coordinator
// retries on; APIError classifies itself through it.
func TestAPIErrorIsErrTransient(t *testing.T) {
	if !errors.Is(&APIError{StatusCode: 500}, ErrTransient) {
		t.Fatal("5xx APIError should match ErrTransient")
	}
	if !errors.Is(fmt.Errorf("wrap: %w", &APIError{StatusCode: 429}), ErrTransient) {
		t.Fatal("wrapped 429 APIError should match ErrTransient")
	}
	if errors.Is(&APIError{StatusCode: 404}, ErrTransient) {
		t.Fatal("404 APIError must not match ErrTransient")
	}
	if errors.Is(&APIError{StatusCode: 404}, errors.New("other")) {
		t.Fatal("APIError.Is must only answer for ErrTransient")
	}
}

func TestAPIErrorMessage(t *testing.T) {
	err := &APIError{StatusCode: 503, Message: "draining"}
	want := "effitestd: draining (HTTP 503)"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// A deadline-expired context is deliberately transient-compatible only via
// the net.Error path: a bare context.DeadlineExceeded (the caller's own
// deadline, checked by the caller) still classifies as transient because
// http.Client timeouts surface the same sentinel wrapped in url.Error with
// Timeout() true. The coordinator guards its own context separately, so
// both interpretations are safe; this test pins the current behaviour.
func TestDeadlineExceededViaTransport(t *testing.T) {
	werr := &url.Error{Op: "Get", URL: "http://x", Err: context.DeadlineExceeded}
	if !IsTransient(werr) {
		t.Fatal("an HTTP client timeout must classify transient")
	}
}
