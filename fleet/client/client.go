// Package client is a thin Go client for the effitestd fleet daemon: it
// speaks the HTTP/JSON surface defined in fleet/httpapi, so a remote
// tester process (or the CLIs) can share one daemon's plan cache and
// engine pool instead of preparing circuits locally.
//
//	cl := client.New("http://127.0.0.1:8087")
//	st, _ := cl.Submit(ctx, httpapi.CampaignRequest{ ... })
//	for res, err := range cl.StreamResults(ctx, st.ID) { ... }
//	final, _ := cl.WaitSettled(ctx, st.ID)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"strings"
	"time"

	"effitest/fleet"
	"effitest/fleet/httpapi"
)

// Client talks to one effitestd daemon. The zero value is not usable;
// build one with New.
type Client struct {
	base  string
	hc    *http.Client
	token string
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports, test doubles). Note the default client has no overall
// request timeout: result streams are long-lived by design — bound
// individual calls with their contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithToken sends `Authorization: Bearer <token>` on every request, for
// daemons running with auth enabled (effitestd -auth-token). The token also
// becomes the client's rate-limit identity on the daemon, so retried and
// resumed requests share one budget regardless of connection churn.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// New builds a client for the daemon at base (e.g. "http://host:8087").
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError decodes the server's {"error": ...} document into a typed
// *APIError, so callers can classify the failure (see IsTransient) instead
// of matching strings. A Retry-After header (429 responses) is carried
// through so retry policies can honor the daemon's own backoff hint.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var doc struct {
		Error string `json:"error"`
	}
	msg := string(bytes.TrimSpace(body))
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		msg = doc.Error
	}
	var retryAfter time.Duration
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg, RetryAfter: retryAfter}
}

// auth stamps the bearer token, when one is configured.
func (c *Client) auth(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

// doJSON performs one request and decodes the JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (httpapi.Health, error) {
	var h httpapi.Health
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Stats fetches /stats: the daemon's registry counters and campaign/chip
// load gauges. The coordinator uses it for least-loaded shard placement.
func (c *Client) Stats(ctx context.Context) (httpapi.Stats, error) {
	var st httpapi.Stats
	err := c.doJSON(ctx, http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Base returns the daemon base URL this client talks to.
func (c *Client) Base() string { return c.base }

// Submit submits a campaign and returns its initial (queued) status.
func (c *Client) Submit(ctx context.Context, req httpapi.CampaignRequest) (httpapi.CampaignStatus, error) {
	var st httpapi.CampaignStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/campaigns", req, &st)
	return st, err
}

// Status fetches one campaign's snapshot.
func (c *Client) Status(ctx context.Context, id string) (httpapi.CampaignStatus, error) {
	var st httpapi.CampaignStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Campaigns lists every campaign on the daemon.
func (c *Client) Campaigns(ctx context.Context) ([]httpapi.CampaignStatus, error) {
	var out []httpapi.CampaignStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Cancel cancels a campaign and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (httpapi.CampaignStatus, error) {
	var st httpapi.CampaignStatus
	err := c.doJSON(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Aggregate waits for the campaign to settle and returns its final
// deterministic aggregate.
func (c *Client) Aggregate(ctx context.Context, id string) (httpapi.Aggregate, error) {
	var agg httpapi.Aggregate
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns/"+id+"/aggregate", nil, &agg)
	return agg, err
}

// StreamResults streams the campaign's per-chip results in input order,
// staying attached until every chip resolves. A transport or decode
// failure is yielded once as the second value and ends the stream.
func (c *Client) StreamResults(ctx context.Context, id string) iter.Seq2[httpapi.ChipResult, error] {
	return c.StreamResultsFrom(ctx, id, 0)
}

// StreamResultsFrom is StreamResults skipping the first `from` results: a
// consumer whose stream broke after from results resumes at its first
// unseen index instead of re-reading the prefix. The classification in
// IsTransient tells a caller whether resuming is worth attempting.
func (c *Client) StreamResultsFrom(ctx context.Context, id string, from int) iter.Seq2[httpapi.ChipResult, error] {
	return func(yield func(httpapi.ChipResult, error) bool) {
		path := c.base + "/v1/campaigns/" + id + "/results"
		if from > 0 {
			path += "?from=" + strconv.Itoa(from)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
		if err != nil {
			yield(httpapi.ChipResult{}, err)
			return
		}
		c.auth(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			yield(httpapi.ChipResult{}, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			yield(httpapi.ChipResult{}, apiError(resp))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var res httpapi.ChipResult
			if err := json.Unmarshal(line, &res); err != nil {
				yield(httpapi.ChipResult{}, fmt.Errorf("decoding result line: %w", err))
				return
			}
			if !yield(res, nil) {
				return
			}
		}
		if err := sc.Err(); err != nil {
			yield(httpapi.ChipResult{}, err)
		}
	}
}

// Results collects the full result stream.
func (c *Client) Results(ctx context.Context, id string) ([]httpapi.ChipResult, error) {
	var out []httpapi.ChipResult
	for res, err := range c.StreamResults(ctx, id) {
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WaitSettled polls the campaign until it reaches a terminal state with
// every chip resolved, and returns the final status.
func (c *Client) WaitSettled(ctx context.Context, id string) (httpapi.CampaignStatus, error) {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if fleet.State(st.State).Terminal() && (st.ChipsTotal == 0 || st.ChipsDone == st.ChipsTotal) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-tick.C:
		}
	}
}

// UploadPlan uploads a plan artifact (binary or JSON form) and returns its
// content address.
func (c *Client) UploadPlan(ctx context.Context, artifact []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/plans", bytes.NewReader(artifact))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", apiError(resp)
	}
	var ref httpapi.PlanRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		return "", err
	}
	return ref.ID, nil
}

// Plans lists the content addresses of every plan artifact stored on the
// daemon. A coordinator pre-pushing a plan checks this list first, so the
// artifact uploads at most once per node no matter how many campaigns
// reference it.
func (c *Client) Plans(ctx context.Context) ([]httpapi.PlanRef, error) {
	var out []httpapi.PlanRef
	err := c.doJSON(ctx, http.MethodGet, "/v1/plans", nil, &out)
	return out, err
}

// DownloadPlan fetches a stored plan artifact by content address.
func (c *Client) DownloadPlan(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/plans/"+id, nil)
	if err != nil {
		return nil, err
	}
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}
