package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"time"
)

// ErrTransient marks failures worth retrying against the same daemon (or a
// different one): the request may well succeed later, because nothing about
// it was wrong — the daemon was overloaded, restarting, or the connection
// died under it. Match with errors.Is:
//
//	if errors.Is(err, client.ErrTransient) { backoff and retry }
//
// Transient failures are: HTTP 5xx and 429 responses, connection
// refused/reset/aborted, timeouts, and streams cut mid-body. Everything
// else — 4xx responses (a malformed or unknown request stays malformed on
// retry), decode errors, cancelled contexts — is permanent.
//
// The fleet coordinator's retry policy keys off this classification
// instead of matching error strings.
var ErrTransient = errors.New("transient fleet error")

// APIError is a non-2xx response from the daemon, decoded from its
// {"error": ...} document. It classifies itself: errors.Is(err,
// ErrTransient) holds for 5xx and 429 status codes.
type APIError struct {
	// StatusCode is the HTTP status of the response.
	StatusCode int
	// Message is the daemon's error text (or the raw body when the error
	// document did not decode).
	Message string
	// RetryAfter is the daemon's Retry-After hint on 429 responses (zero
	// when absent): the minimum wait before the request is worth repeating.
	// Retry policies should sleep at least this long (see RetryAfter).
	RetryAfter time.Duration
}

// RetryAfter extracts the daemon's Retry-After hint from err, or zero if
// err carries none. Retry loops take max(policy delay, RetryAfter) so an
// explicitly overloaded daemon is never hammered at the policy's base rate.
func RetryAfter(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// Error formats the daemon error with its status code.
func (e *APIError) Error() string {
	return fmt.Sprintf("effitestd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is reports ErrTransient for status codes a retry may outlive: every 5xx
// (the daemon failed or is draining) and 429 (admission control).
func (e *APIError) Is(target error) bool {
	return target == ErrTransient && (e.StatusCode >= 500 || e.StatusCode == 429)
}

// IsTransient reports whether err should be retried: either an APIError
// that classifies itself transient, or a transport-level failure
// (connection refused/reset, timeout, stream cut mid-body). A nil error
// and context cancellation are never transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	// Caller-side cancellation is a decision, not a failure. Deadline
	// expiry is deliberately NOT here: an http.Client timeout surfaces as
	// context.DeadlineExceeded and is a retryable slow peer; a caller
	// retiring its own context must check that context itself.
	if errors.Is(err, context.Canceled) {
		return false
	}
	// Connection-level failures: the peer is gone or rebooting.
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	// A body cut mid-stream (daemon killed while streaming NDJSON).
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.ErrClosedPipe) {
		return true
	}
	// net.Error timeouts (dial, TLS, response-header) — url.Error wraps
	// these, and errors.As unwraps the chain.
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	// A dropped connection surfaces as *net.OpError on read/write.
	var oerr *net.OpError
	return errors.As(err, &oerr)
}
