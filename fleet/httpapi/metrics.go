package httpapi

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"effitest"
	"effitest/fleet"
)

// Metrics is the daemon's metrics sink: a dependency-free Prometheus text
// (exposition format 0.0.4) registry fed from three directions —
//
//   - HTTP middleware: request counts by route and status code, request
//     latency, auth failures, rate-limit and admission rejections;
//   - flow events: an Observer (see Observer) that turns the engine's typed
//     events (ChipDoneEvent, PredictEvent, BatchEndEvent) into counters and
//     histograms, attached service-wide via fleet.WithManagerObserver;
//   - scrape-time gauges: Registry.Stats() and Manager.Stats() snapshots
//     rendered alongside the counters on every GET /metrics.
//
// All methods are safe for concurrent use; observation takes one short
// mutex hold, cheap enough for the per-chip hot path.
type Metrics struct {
	mu           sync.Mutex
	httpRequests map[httpKey]int64
	httpSeconds  histogram

	authFailures  int64
	rateLimited   int64
	queueRejected int64

	chips           map[string]int64 // by result: passed | failed | error
	batches         int64
	batchIterations int64
	alignSeconds    histogram
	predictSeconds  histogram
}

// httpKey labels one requests_total series. Route is the mux pattern (which
// already names the method), so cardinality is bounded by routes × codes.
type httpKey struct {
	route string
	code  int
}

// durationBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond prediction kernels up to multi-second request waits.
var durationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket cumulative histogram over durationBuckets.
type histogram struct {
	counts []int64 // one per durationBuckets entry; nil until first observe
	count  int64
	sum    float64
}

func (h *histogram) observe(v float64) {
	if h.counts == nil {
		h.counts = make([]int64, len(durationBuckets))
	}
	for i, b := range durationBuckets {
		if v <= b {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += v
}

func (h *histogram) bucket(i int) int64 {
	if h.counts == nil {
		return 0
	}
	return h.counts[i]
}

// NewMetrics builds an empty metrics registry. Wire its Observer into the
// manager (fleet.WithManagerObserver) and hand the Metrics to New via
// WithMetrics so the HTTP middleware and /metrics endpoint share it.
func NewMetrics() *Metrics {
	return &Metrics{
		httpRequests: map[httpKey]int64{},
		chips:        map[string]int64{},
	}
}

// Observer returns the event sink that feeds chip-level metrics: chip
// results by outcome, test batches and tester iterations, and the paper's
// Tt/Tp latency components (alignment and prediction durations).
func (mx *Metrics) Observer() effitest.Observer {
	return effitest.ObserverFunc(func(e effitest.Event) {
		switch ev := e.(type) {
		case effitest.ChipDoneEvent:
			result := "passed"
			switch {
			case ev.Err != nil:
				result = "error"
			case !ev.Passed:
				result = "failed"
			}
			mx.mu.Lock()
			mx.chips[result]++
			mx.mu.Unlock()
		case effitest.PredictEvent:
			mx.mu.Lock()
			mx.predictSeconds.observe(ev.Duration.Seconds())
			mx.mu.Unlock()
		case effitest.BatchEndEvent:
			mx.mu.Lock()
			mx.batches++
			mx.batchIterations += int64(ev.Iterations)
			mx.alignSeconds.observe(ev.AlignTime.Seconds())
			mx.mu.Unlock()
		}
	})
}

// observeHTTP records one served request.
func (mx *Metrics) observeHTTP(route string, code int, d time.Duration) {
	mx.mu.Lock()
	mx.httpRequests[httpKey{route: route, code: code}]++
	mx.httpSeconds.observe(d.Seconds())
	mx.mu.Unlock()
}

func (mx *Metrics) observeAuthFailure() {
	mx.mu.Lock()
	mx.authFailures++
	mx.mu.Unlock()
}

func (mx *Metrics) observeRateLimited() {
	mx.mu.Lock()
	mx.rateLimited++
	mx.mu.Unlock()
}

func (mx *Metrics) observeQueueRejected() {
	mx.mu.Lock()
	mx.queueRejected++
	mx.mu.Unlock()
}

// render writes the full exposition: event/HTTP counters plus scrape-time
// gauges from the manager and registry snapshots. Series within a family
// are sorted, so consecutive scrapes of an idle daemon are byte-identical.
func (mx *Metrics) render(w io.Writer, ms fleet.ManagerStats, rs fleet.RegistryStats) {
	mx.mu.Lock()
	defer mx.mu.Unlock()

	head(w, "effitestd_http_requests_total", "counter", "HTTP requests served, by route pattern and status code.")
	keys := make([]httpKey, 0, len(mx.httpRequests))
	for k := range mx.httpRequests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "effitestd_http_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, mx.httpRequests[k])
	}
	writeHistogram(w, "effitestd_http_request_duration_seconds", "HTTP request latency.", &mx.httpSeconds)

	counter(w, "effitestd_auth_failures_total", "Requests refused for a missing or wrong bearer token.", mx.authFailures)
	counter(w, "effitestd_rate_limited_total", "Requests refused by the per-client token bucket.", mx.rateLimited)
	counter(w, "effitestd_admission_rejected_total", "Campaign submissions refused by the bounded queue.", mx.queueRejected)

	head(w, "effitestd_chips_total", "counter", "Chips executed on the campaign pool, by result.")
	results := make([]string, 0, len(mx.chips))
	for r := range mx.chips {
		results = append(results, r)
	}
	sort.Strings(results)
	for _, r := range results {
		fmt.Fprintf(w, "effitestd_chips_total{result=%q} %d\n", r, mx.chips[r])
	}
	counter(w, "effitestd_test_batches_total", "Test batches measured across all chips.", mx.batches)
	counter(w, "effitestd_tester_iterations_total", "Tester iterations (frequency steps) across all batches.", mx.batchIterations)
	writeHistogram(w, "effitestd_align_duration_seconds", "Per-batch alignment solve time (the paper's Tt component).", &mx.alignSeconds)
	writeHistogram(w, "effitestd_predict_duration_seconds", "Per-chip conditional-prediction time (the paper's Tp component).", &mx.predictSeconds)

	// Scrape-time gauges from the manager and registry snapshots.
	gauge(w, "effitestd_workers", "Resolved size of the shared chip-execution pool.", int64(ms.Workers))
	head(w, "effitestd_campaigns", "gauge", "Campaigns in the manager table, by lifecycle state.")
	for _, s := range []struct {
		state string
		n     int
	}{
		{"cancelled", ms.CampaignsCancelled},
		{"done", ms.CampaignsDone},
		{"failed", ms.CampaignsFailed},
		{"queued", ms.CampaignsQueued},
		{"running", ms.CampaignsRunning},
	} {
		fmt.Fprintf(w, "effitestd_campaigns{state=%q} %d\n", s.state, s.n)
	}
	head(w, "effitestd_campaigns_by_workload", "gauge", "Campaigns in the manager table, by workload type.")
	workloads := make([]string, 0, len(ms.CampaignsByWorkload))
	for wl := range ms.CampaignsByWorkload {
		workloads = append(workloads, wl)
	}
	sort.Strings(workloads)
	for _, wl := range workloads {
		fmt.Fprintf(w, "effitestd_campaigns_by_workload{workload=%q} %d\n", wl, ms.CampaignsByWorkload[wl])
	}
	gauge(w, "effitestd_bin_histogram_bins", "Period-bin cells held across clock-binning campaigns.", int64(ms.BinHistogramBins))
	gauge(w, "effitestd_campaign_queue_limit", "Admission bound on non-terminal campaigns (0 = unbounded).", int64(ms.QueueLimit))
	counter(w, "effitestd_campaigns_rejected_total", "Campaign submissions refused by admission control since start.", ms.CampaignsRejected)
	gauge(w, "effitestd_chips_pending", "Resolved chips not yet dispatched to the pool.", int64(ms.ChipsPending))
	gauge(w, "effitestd_chips_in_flight", "Dispatched chips without a result yet.", int64(ms.ChipsInFlight))
	counter(w, "effitestd_chips_executed_total", "Chips run on the pool since start.", ms.ChipsExecuted)
	// Durability counters. The effitest_ (not effitestd_) prefix on the two
	// recovery counters is deliberate: they describe the campaign's logical
	// history, which survives daemon restarts, not this process.
	counter(w, "effitest_campaigns_recovered_total", "Campaigns rebuilt from the journal at boot.", ms.CampaignsRecovered)
	counter(w, "effitest_chips_replayed_total", "Chip results replayed from the journal instead of re-executed.", ms.ChipsReplayed)
	gauge(w, "effitestd_journal_segments", "Campaign journal segments on disk (open + settled).", int64(ms.JournalSegments))
	gauge(w, "effitestd_journal_open_segments", "Journal segments still accepting appends (unsettled campaigns).", int64(ms.JournalOpenSegments))
	gauge(w, "effitestd_journal_bytes", "Bytes held by campaign journal segments.", ms.JournalBytes)
	counter(w, "effitestd_journal_append_errors_total", "Journal appends that failed (I/O error, disk full).", ms.JournalAppendErrors)
	gauge(w, "effitestd_engines_live", "Live engines in the registry (including in-flight constructions).", int64(rs.Live))
	counter(w, "effitestd_registry_hits_total", "Registry requests served an existing engine.", int64(rs.Hits))
	counter(w, "effitestd_registry_misses_total", "Registry requests that constructed an engine.", int64(rs.Misses))
	counter(w, "effitestd_registry_prepares_total", "Engine constructions that ran the offline Prepare.", int64(rs.Prepares))
	counter(w, "effitestd_registry_evictions_total", "Engines dropped by the registry's LRU bound.", int64(rs.Evictions))
}

func head(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func counter(w io.Writer, name, help string, v int64) {
	head(w, name, "counter", help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func gauge(w io.Writer, name, help string, v int64) {
	head(w, name, "gauge", help)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

func writeHistogram(w io.Writer, name, help string, h *histogram) {
	head(w, name, "histogram", help)
	for i, b := range durationBuckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), h.bucket(i))
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	fmt.Fprintf(w, "%s_sum %s\n", name, trimFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// trimFloat formats a float the way Prometheus buckets conventionally read
// (no exponent for these magnitudes, no trailing zeros).
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
