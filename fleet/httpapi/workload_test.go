package httpapi_test

import (
	"context"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"

	"effitest/fleet/client"
	"effitest/fleet/httpapi"
	"effitest/workload"
)

// binEdgesFrom derives a strictly-ascending two-edge ladder from observed
// achieved periods, so the binning tests split a real population instead of
// hardcoding period magnitudes.
func binEdgesFrom(t *testing.T, achieved []float64) []float64 {
	t.Helper()
	vals := append([]float64(nil), achieved...)
	sort.Float64s(vals)
	if len(vals) < 3 || vals[0] == vals[len(vals)-1] {
		t.Fatalf("population too degenerate to bin: %v", vals)
	}
	lo, hi := vals[len(vals)/3], vals[2*len(vals)/3]
	if lo == hi {
		hi = vals[len(vals)-1]
	}
	if lo == hi {
		lo = vals[0]
	}
	edges := []float64{lo, hi}
	if err := workload.ValidateEdges(edges); err != nil {
		t.Fatalf("derived edges %v invalid: %v", edges, err)
	}
	return edges
}

// A clock-binning campaign serves the same per-chip stream as a plain
// campaign plus a bin histogram in the aggregate, and the histogram is
// exactly the classification of the served achieved periods — the contract
// that lets any wire consumer (the shard coordinator above all) rebuild the
// daemon's bins bit-identically.
func TestClockBinningCampaignHTTP(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()
	base := httpapi.CampaignRequest{
		Name:    "binning-base",
		Circuit: httpapi.CircuitSpec{Netlist: wire24Netlist(t)},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 12},
	}
	baseRes := runCampaign(t, cl, base)

	var achieved []float64
	for _, res := range baseRes {
		if res.Configured {
			if res.AchievedPeriod <= 0 {
				t.Fatalf("configured chip %d served achieved_period %v", res.Index, res.AchievedPeriod)
			}
			achieved = append(achieved, res.AchievedPeriod)
		} else if res.AchievedPeriod != 0 {
			t.Fatalf("unconfigured chip %d served achieved_period %v", res.Index, res.AchievedPeriod)
		}
	}
	edges := binEdgesFrom(t, achieved)

	binned := base
	binned.Name = "binning"
	binned.Workload = workload.TypeClockBinning
	binned.BinEdges = edges
	binRes := runCampaign(t, cl, binned)

	// The workload changes what is aggregated, never what is measured: the
	// per-chip stream is bit-identical to the plain campaign's.
	if !reflect.DeepEqual(binRes, baseRes) {
		t.Fatal("clock-binning campaign's per-chip results diverge from the plain campaign")
	}

	st, err := cl.Status(ctx, submittedID(t, cl, binned.Name))
	if err != nil {
		t.Fatal(err)
	}
	if st.Workload != workload.TypeClockBinning {
		t.Fatalf("status workload %q", st.Workload)
	}
	agg, err := cl.Aggregate(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the histogram client-side from the served stream; the daemon's
	// aggregate must match exactly.
	want := workload.NewBinAgg(edges)
	for _, res := range binRes {
		if res.Error != "" {
			t.Fatalf("chip %d errored: %s", res.Index, res.Error)
		}
		if res.Configured {
			want.Observe(res.AchievedPeriod)
		} else {
			want.ObserveUnbinned()
		}
	}
	wantBins, wantUnbinned := httpapi.BinsWire(want)
	if !reflect.DeepEqual(agg.Bins, wantBins) || agg.Unbinned != wantUnbinned {
		t.Fatalf("served bins diverge:\nserved: %+v unbinned %d\nwant:   %+v unbinned %d",
			agg.Bins, agg.Unbinned, wantBins, wantUnbinned)
	}
	total := agg.Unbinned
	for _, b := range agg.Bins {
		total += b.Count
	}
	if total != agg.Chips {
		t.Fatalf("bins+unbinned = %d, aggregate chips = %d", total, agg.Chips)
	}

	// The plain campaign's aggregate carries no histogram.
	baseAgg, err := cl.Aggregate(ctx, submittedID(t, cl, base.Name))
	if err != nil {
		t.Fatal(err)
	}
	if len(baseAgg.Bins) != 0 || baseAgg.Unbinned != 0 {
		t.Fatalf("plain campaign grew bins: %+v", baseAgg)
	}

	// /metrics gained the per-workload gauges.
	body := scrapeMetrics(t, cl.Base())
	for _, want := range []string{
		`effitestd_campaigns_by_workload{workload="clock-binning"} 1`,
		`effitestd_campaigns_by_workload{workload="effitest"} 1`,
		"effitestd_bin_histogram_bins 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// submittedID looks a campaign up by name in the daemon's table.
func submittedID(t *testing.T, cl *client.Client, name string) string {
	t.Helper()
	sts, err := cl.Campaigns(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.Name == name {
			return st.ID
		}
	}
	t.Fatalf("campaign %q not listed", name)
	return ""
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// An aging-drift campaign at drift 0 is the identity transform: every
// served byte — stream and aggregate — equals the plain campaign's. A real
// drift reshapes the population (and therefore the achieved periods) while
// keeping the campaign well-formed end to end.
func TestAgingDriftCampaignHTTP(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()
	base := httpapi.CampaignRequest{
		Name:    "aging-base",
		Circuit: httpapi.CircuitSpec{Netlist: wire24Netlist(t)},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 10},
	}
	baseRes := runCampaign(t, cl, base)

	zero := base
	zero.Name = "aging-zero"
	zero.Workload = workload.TypeAgingDrift
	zeroRes := runCampaign(t, cl, zero)
	if !reflect.DeepEqual(zeroRes, baseRes) {
		t.Fatal("aging-drift at drift 0 diverges from the plain campaign")
	}
	zeroAgg, err := cl.Aggregate(ctx, submittedID(t, cl, zero.Name))
	if err != nil {
		t.Fatal(err)
	}
	baseAgg, err := cl.Aggregate(ctx, submittedID(t, cl, base.Name))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zeroAgg, baseAgg) {
		t.Fatalf("drift-0 aggregate diverges:\naging: %+v\nplain: %+v", zeroAgg, baseAgg)
	}

	aged := base
	aged.Name = "aging-40"
	aged.Workload = workload.TypeAgingDrift
	aged.Drift = 0.4
	agedRes := runCampaign(t, cl, aged)
	st, err := cl.Status(ctx, submittedID(t, cl, aged.Name))
	if err != nil {
		t.Fatal(err)
	}
	if st.Workload != workload.TypeAgingDrift {
		t.Fatalf("status workload %q", st.Workload)
	}
	if len(agedRes) != len(baseRes) {
		t.Fatalf("drifted campaign returned %d chips, want %d", len(agedRes), len(baseRes))
	}
	moved := false
	for i := range agedRes {
		if agedRes[i].AchievedPeriod != baseRes[i].AchievedPeriod {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("40% delay drift left every achieved period untouched")
	}

	// Determinism: resubmitting the drifted campaign reproduces it exactly.
	again := aged
	again.Name = "aging-40-again"
	if !reflect.DeepEqual(runCampaign(t, cl, again), agedRes) {
		t.Fatal("drifted campaign is not reproducible")
	}
}

// Malformed workload specs are refused at submit, not discovered mid-run.
func TestWorkloadSubmitValidationHTTP(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()
	base := httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: wire24Netlist(t)},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 2},
	}
	bad := []func(r *httpapi.CampaignRequest){
		func(r *httpapi.CampaignRequest) { r.Workload = "burn-in" },
		func(r *httpapi.CampaignRequest) { r.Workload = workload.TypeClockBinning },
		func(r *httpapi.CampaignRequest) {
			r.Workload = workload.TypeClockBinning
			r.BinEdges = []float64{2, 1}
		},
		func(r *httpapi.CampaignRequest) { r.BinEdges = []float64{1, 2} },
		func(r *httpapi.CampaignRequest) { r.Drift = 0.1 },
		func(r *httpapi.CampaignRequest) {
			r.Workload = workload.TypeAgingDrift
			r.Drift = -0.9
		},
	}
	for i, mutate := range bad {
		req := base
		mutate(&req)
		if _, err := cl.Submit(ctx, req); err == nil {
			t.Errorf("bad workload spec %d accepted: %+v", i, req)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 0 {
		t.Fatalf("refused submissions left campaigns behind: %+v", st)
	}
}
