package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"effitest/fleet"
)

// maxPlanUpload bounds plan-artifact request bodies (the largest Table-1
// benchmark plan is a few MB; 64 MB leaves generous headroom).
const maxPlanUpload = 64 << 20

// Server serves the fleet API over HTTP. Build it with New and mount it as
// an http.Handler; it holds no per-request state of its own, so one Server
// serves any number of concurrent connections.
type Server struct {
	m   *fleet.Manager
	mux *http.ServeMux
}

// New builds the HTTP surface over a campaign manager.
func New(m *fleet.Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /stats", s.stats)
	s.mux.HandleFunc("POST /v1/campaigns", s.submit)
	s.mux.HandleFunc("GET /v1/campaigns", s.list)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.status)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/results", s.results)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/aggregate", s.aggregate)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.cancel)
	s.mux.HandleFunc("POST /v1/plans", s.uploadPlan)
	s.mux.HandleFunc("GET /v1/plans", s.listPlans)
	s.mux.HandleFunc("GET /v1/plans/{id}", s.downloadPlan)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	rs := s.m.Registry().Stats()
	writeJSON(w, http.StatusOK, Health{
		Status:    "ok",
		Workers:   s.m.Workers(),
		Campaigns: len(s.m.Campaigns()),
		Engines:   rs.Live,
		Prepares:  rs.Prepares,
	})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsWire(s.m.Registry().Stats(), s.m.Stats()))
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxPlanUpload)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding campaign request: %w", err))
		return
	}
	c, err := req.Circuit.Build()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts, err := req.Config.Options()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := fleet.CampaignSpec{
		Name:      req.Name,
		Circuit:   c,
		Options:   opts,
		ChipSeed:  req.Chips.Seed,
		ChipCount: req.Chips.Count,
		ChipFirst: req.Chips.First,
	}
	if req.PlanID != "" {
		pl, ok, err := s.m.Plans().Decode(req.PlanID)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown plan %q", req.PlanID))
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		spec.Plan = pl
	}
	camp, err := s.m.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, fleet.ErrManagerClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, StatusWire(camp.Status()))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	camps := s.m.Campaigns()
	out := make([]CampaignStatus, 0, len(camps))
	for _, c := range camps {
		out = append(out, StatusWire(c.Status()))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*fleet.Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.m.Campaign(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return nil, false
	}
	return c, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, StatusWire(c.Status()))
	}
}

// aggregate serves the campaign's deterministic aggregate as canonical
// indented JSON with a trailing newline — a stable byte format that CI
// jobs diff directly against golden files. It waits for the campaign to
// settle so the aggregate is final.
func (s *Server) aggregate(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st, err := c.Wait(r.Context())
	if err != nil {
		writeError(w, http.StatusRequestTimeout, err)
		return
	}
	ws := StatusWire(st)
	if ws.Aggregate == nil {
		ws.Aggregate = &Aggregate{}
	}
	writeJSON(w, http.StatusOK, ws.Aggregate)
}

// results streams the campaign's per-chip results as NDJSON in input
// order, flushing per line; the stream stays open until every chip has
// resolved (or the client disconnects). ?from=N skips the first N results,
// so a client whose stream broke resumes at its first unseen index instead
// of re-reading (and re-deduplicating) the whole prefix.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from %q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for res := range c.Results(r.Context()) {
		if i++; i <= from {
			continue
		}
		if err := enc.Encode(ResultWire(res)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	c.Cancel()
	writeJSON(w, http.StatusOK, StatusWire(c.Status()))
}

func (s *Server) uploadPlan(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanUpload))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading plan artifact: %w", err))
		return
	}
	id, err := s.m.Plans().Put(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, PlanRef{ID: id})
}

func (s *Server) listPlans(w http.ResponseWriter, r *http.Request) {
	ids := s.m.Plans().IDs()
	out := make([]PlanRef, 0, len(ids))
	for _, id := range ids {
		out = append(out, PlanRef{ID: id})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) downloadPlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok := s.m.Plans().Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown plan %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
