// Package httpapi serves the fleet campaign API over HTTP.
//
// The Server is an http.Handler with a two-layer middleware chain. The
// outer layer (Server.ServeHTTP) wraps every request with a request ID
// (X-Request-ID honored from the client or generated), a structured slog
// access record, and HTTP metrics; the inner layer is applied per route at
// registration time and enforces each route's policy: bearer-token auth on
// mutating endpoints (WithAuthToken), per-client token-bucket rate limits
// (WithRateLimit), and per-route I/O deadlines (WithRouteTimeouts) from
// which streaming routes — NDJSON result streams, aggregate long-polls,
// pprof profiles — are write-exempt. /healthz and /metrics bypass auth and
// rate limiting so probes and scrapes never starve.
//
// Operational endpoints ride the same chain: GET /metrics renders a
// dependency-free Prometheus text exposition (see Metrics), and WithPprof
// mounts /debug/pprof behind the auth gate.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"effitest/fleet"
)

// maxPlanUpload bounds plan-artifact and campaign-submit request bodies
// (the largest Table-1 benchmark plan is a few MB; 64 MB leaves generous
// headroom). Larger bodies get 413 with the cap in the message.
const maxPlanUpload = 64 << 20

// Server serves the fleet API over HTTP. Build it with New and mount it as
// an http.Handler; per-request state lives in the request context, so one
// Server serves any number of concurrent connections.
type Server struct {
	m   *fleet.Manager
	mux *http.ServeMux

	token   string
	limiter *rateLimiter
	metrics *Metrics
	log     *slog.Logger
	readTO  time.Duration
	writeTO time.Duration
}

// New builds the HTTP surface over a campaign manager. With no options it
// serves the bare API — no auth, no limits, logs discarded — which is what
// tests and embedded uses want; cmd/effitestd passes the production set.
func New(m *fleet.Manager, opts ...Option) *Server {
	var o serverOptions
	for _, opt := range opts {
		opt(&o)
	}
	s := &Server{
		m:       m,
		mux:     http.NewServeMux(),
		token:   o.token,
		metrics: o.metrics,
		log:     o.logger,
		readTO:  o.readTO,
		writeTO: o.writeTO,
	}
	if s.metrics == nil {
		s.metrics = NewMetrics()
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if o.rateRPS > 0 {
		s.limiter = newRateLimiter(o.rateRPS, o.rateBurst, o.now)
	}

	s.handle("GET /healthz", s.health, modeOpen)
	s.handle("GET /metrics", s.serveMetrics, modeOpen)
	s.handle("GET /stats", s.stats, 0)
	s.handle("POST /v1/campaigns", s.submit, modeAuth)
	s.handle("GET /v1/campaigns", s.list, 0)
	s.handle("GET /v1/campaigns/{id}", s.status, 0)
	s.handle("GET /v1/campaigns/{id}/results", s.results, modeStream)
	s.handle("GET /v1/campaigns/{id}/aggregate", s.aggregate, modeStream)
	s.handle("DELETE /v1/campaigns/{id}", s.cancel, modeAuth)
	s.handle("POST /v1/plans", s.uploadPlan, modeAuth)
	s.handle("GET /v1/plans", s.listPlans, 0)
	s.handle("GET /v1/plans/{id}", s.downloadPlan, 0)
	if o.pprof {
		// Profiles stream for up to ?seconds=N, so they are write-exempt
		// like the result streams; the auth gate keeps heap and goroutine
		// dumps off the open network.
		s.handle("GET /debug/pprof/", pprof.Index, modeAuth|modeStream)
		s.handle("GET /debug/pprof/cmdline", pprof.Cmdline, modeAuth|modeStream)
		s.handle("GET /debug/pprof/profile", pprof.Profile, modeAuth|modeStream)
		s.handle("GET /debug/pprof/symbol", pprof.Symbol, modeAuth|modeStream)
		s.handle("GET /debug/pprof/trace", pprof.Trace, modeAuth|modeStream)
	}
	return s
}

// Metrics returns the server's metrics registry (the one passed via
// WithMetrics, or the private one built by New).
func (s *Server) Metrics() *Metrics { return s.metrics }

func writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; all we can do is make the failure visible
		// instead of silently truncating the body.
		logFrom(r.Context()).LogAttrs(r.Context(), slog.LevelWarn, "encoding response",
			slog.String("path", r.URL.Path), slog.Any("error", err))
	}
}

func writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	writeJSON(w, r, code, map[string]string{"error": err.Error()})
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	rs := s.m.Registry().Stats()
	writeJSON(w, r, http.StatusOK, Health{
		Status:    "ok",
		Workers:   s.m.Workers(),
		Campaigns: len(s.m.Campaigns()),
		Engines:   rs.Live,
		Prepares:  rs.Prepares,
	})
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, StatsWire(s.m.Registry().Stats(), s.m.Stats()))
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.render(w, s.m.Stats(), s.m.Registry().Stats())
}

// submit handles POST /v1/campaigns. The raw body is retained past
// decoding: it becomes the campaign's journal payload — the exact bytes a
// recovering daemon re-decodes through SpecDecoder — so the journal's
// notion of the spec can never drift from the API's.
//
// Idempotency: a request whose key matches a known campaign returns that
// campaign with 200 (not 409 — the duplicate is the success case: the
// client is re-asking for work the daemon already committed). Two
// concurrent first submits of one key both get the same campaign; the
// loser of that race may see 202 for it, which is harmless — the body, not
// the code, carries the campaign.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanUpload))
	if err != nil {
		code, err := bodyError("campaign request", err)
		writeError(w, r, code, err)
		return
	}
	var req CampaignRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding campaign request: %w", err))
		return
	}
	if req.Key != "" {
		if err := ValidateCampaignKey(req.Key); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		if prior, ok := s.m.CampaignByKey(req.Key); ok {
			writeJSON(w, r, http.StatusOK, StatusWire(prior.Status()))
			return
		}
	}
	c, err := req.Circuit.Build()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts, err := req.Config.Options()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	spec := fleet.CampaignSpec{
		Name:           req.Name,
		Circuit:        c,
		Options:        opts,
		ChipSeed:       req.Chips.Seed,
		ChipCount:      req.Chips.Count,
		ChipFirst:      req.Chips.First,
		Workload:       req.Workload,
		BinEdges:       req.BinEdges,
		Drift:          req.Drift,
		Key:            req.Key,
		PlanID:         req.PlanID,
		JournalPayload: body,
	}
	if req.PlanID != "" {
		pl, ok, err := s.m.Plans().Decode(req.PlanID)
		code, err := planLookupError(req.PlanID, !ok, err)
		if err != nil {
			writeError(w, r, code, err)
			return
		}
		spec.Plan = pl
	}
	camp, err := s.m.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, fleet.ErrManagerClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, fleet.ErrQueueFull):
			// Admission control: the backlog bound is a capacity signal, so
			// tell clients to come back, and when, rather than failing them.
			code = http.StatusTooManyRequests
			s.metrics.observeQueueRejected()
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, r, code, err)
		return
	}
	writeJSON(w, r, http.StatusAccepted, StatusWire(camp.Status()))
}

// ValidateCampaignKey checks a client-chosen idempotency key: 1–128 bytes
// of [A-Za-z0-9._-]. The bound is about hostile input, not taste — keys
// land in journal records and manager tables verbatim.
func ValidateCampaignKey(key string) error {
	if key == "" || len(key) > 128 {
		return fmt.Errorf("campaign key must be 1-128 characters, got %d", len(key))
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("campaign key %q: only [A-Za-z0-9._-] allowed", key)
		}
	}
	return nil
}

// bodyError maps a request-body decode failure to a status code: a body
// over the MaxBytesReader cap is 413 (with the cap stated, so the limit is
// discoverable from the error alone), anything else is a plain 400.
func bodyError(what string, err error) (int, error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("%s exceeds the %d-byte request body limit", what, mbe.Limit)
	}
	return http.StatusBadRequest, fmt.Errorf("decoding %s: %w", what, err)
}

// planLookupError classifies a PlanStore.Decode result. Order matters: a
// non-nil err means the plan exists but is corrupt (422) — checking missing
// first would mislabel corruption as "unknown plan" and send clients off to
// re-upload an artifact the store already has.
func planLookupError(id string, missing bool, err error) (int, error) {
	if err != nil {
		return http.StatusUnprocessableEntity, fmt.Errorf("stored plan %q is corrupt: %w", id, err)
	}
	if missing {
		return http.StatusNotFound, fmt.Errorf("unknown plan %q", id)
	}
	return 0, nil
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	camps := s.m.Campaigns()
	out := make([]CampaignStatus, 0, len(camps))
	for _, c := range camps {
		out = append(out, StatusWire(c.Status()))
	}
	writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*fleet.Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.m.Campaign(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return nil, false
	}
	return c, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		writeJSON(w, r, http.StatusOK, StatusWire(c.Status()))
	}
}

// aggregate serves the campaign's deterministic aggregate as canonical
// indented JSON with a trailing newline — a stable byte format that CI
// jobs diff directly against golden files. It waits for the campaign to
// settle so the aggregate is final.
//
// Status-code contract (coordinators classify on it, see client.IsTransient):
// a campaign that settled failed or cancelled is a permanent condition →
// 409 with the campaign error, never a retryable code; a Wait error means
// the *caller's* context ended (client gone or server draining), so no
// status is written at all — the connection just closes.
func (s *Server) aggregate(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st, err := c.Wait(r.Context())
	if err != nil {
		return
	}
	if st.State == fleet.StateFailed || st.State == fleet.StateCancelled {
		cause := string(st.State)
		if st.Err != nil {
			cause = st.Err.Error()
		}
		writeError(w, r, http.StatusConflict,
			fmt.Errorf("campaign %s is %s: %s", st.ID, st.State, cause))
		return
	}
	ws := StatusWire(st)
	if ws.Aggregate == nil {
		ws.Aggregate = &Aggregate{}
	}
	writeJSON(w, r, http.StatusOK, ws.Aggregate)
}

// results streams the campaign's per-chip results as NDJSON in input
// order, flushing per line; the stream stays open until every chip has
// resolved (or the client disconnects). ?from=N skips the first N results,
// so a client whose stream broke resumes at its first unseen index instead
// of re-reading (and re-deduplicating) the whole prefix.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("invalid from %q", q))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for res := range c.Results(r.Context()) {
		if i++; i <= from {
			continue
		}
		if err := enc.Encode(ResultWire(res)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	c.Cancel()
	writeJSON(w, r, http.StatusOK, StatusWire(c.Status()))
}

func (s *Server) uploadPlan(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPlanUpload))
	if err != nil {
		code, err := bodyError("plan artifact", err)
		writeError(w, r, code, err)
		return
	}
	id, err := s.m.Plans().Put(data)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, r, http.StatusCreated, PlanRef{ID: id})
}

func (s *Server) listPlans(w http.ResponseWriter, r *http.Request) {
	ids := s.m.Plans().IDs()
	out := make([]PlanRef, 0, len(ids))
	for _, id := range ids {
		out = append(out, PlanRef{ID: id})
	}
	writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) downloadPlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok := s.m.Plans().Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown plan %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
