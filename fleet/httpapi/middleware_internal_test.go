package httpapi

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The token bucket refills at rps, caps at burst, and computes the wait
// until the next token for Retry-After — all on an injected clock.
func TestRateLimiterBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	rl := newRateLimiter(2, 3, func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if ok, _ := rl.allow("k"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := rl.allow("k")
	if ok {
		t.Fatal("request over burst allowed")
	}
	// Empty bucket at 2 tokens/sec: one token is 500ms away.
	if wait != 500*time.Millisecond {
		t.Fatalf("wait %v, want 500ms", wait)
	}

	// Keys are independent budgets.
	if ok, _ := rl.allow("other"); !ok {
		t.Fatal("fresh key refused while another key is exhausted")
	}

	// Half a second refills one token exactly.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := rl.allow("k"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := rl.allow("k"); ok {
		t.Fatal("second token granted after a one-token refill")
	}

	// A long idle stretch caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := rl.allow("k"); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("after idle, %d tokens granted, want burst of 3", granted)
	}
}

// Idle buckets are swept so the key table stays bounded by active clients.
func TestRateLimiterSweep(t *testing.T) {
	now := time.Unix(1000, 0)
	rl := newRateLimiter(10, 5, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		rl.allow("client-" + strings.Repeat("x", i%7))
	}
	now = now.Add(2 * time.Hour)
	rl.allow("fresh")
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d buckets survive a 2h idle sweep, want 1", n)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{10 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1100 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Fatalf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// planLookupError checks corruption before absence: a store that decodes
// an existing entry with an error must surface 422, never 404.
func TestPlanLookupErrorOrdering(t *testing.T) {
	cases := []struct {
		name     string
		missing  bool
		decodeEr error
		wantCode int
		wantMsg  string
	}{
		{"found and clean", false, nil, 0, ""},
		{"missing", true, nil, http.StatusNotFound, "unknown plan"},
		{"corrupt", false, errors.New("bad magic"), http.StatusUnprocessableEntity, "corrupt"},
		// The regression: Decode reporting (ok=false, err) for a corrupt
		// entry must still classify as corruption, not absence.
		{"corrupt trumps missing", true, errors.New("bad magic"), http.StatusUnprocessableEntity, "corrupt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, err := planLookupError("p1", tc.missing, tc.decodeEr)
			if code != tc.wantCode {
				t.Fatalf("code %d, want %d", code, tc.wantCode)
			}
			if tc.wantMsg == "" {
				if err != nil {
					t.Fatalf("unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %v, want mention of %q", err, tc.wantMsg)
			}
		})
	}
}

// bodyError maps MaxBytesReader overflows to 413 with the cap stated, and
// everything else to 400.
func TestBodyErrorMapping(t *testing.T) {
	code, err := bodyError("campaign request", &http.MaxBytesError{Limit: 64 << 20})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("MaxBytesError: code %d, want 413", code)
	}
	if !strings.Contains(err.Error(), "67108864") {
		t.Fatalf("413 error does not state the cap: %v", err)
	}
	code, err = bodyError("campaign request", errors.New("unexpected EOF"))
	if code != http.StatusBadRequest || !strings.Contains(err.Error(), "decoding campaign request") {
		t.Fatalf("plain decode error: code %d err %v, want 400 naming the decode", code, err)
	}
}

// The histogram buckets cumulatively and renders a parseable exposition.
func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(0.0002) // <= 0.00025 and everything above
	h.observe(3)      // <= 5, 10
	h.observe(100)    // only +Inf

	if h.count != 3 {
		t.Fatalf("count %d, want 3", h.count)
	}
	if h.sum != 103.0002 {
		t.Fatalf("sum %v", h.sum)
	}
	var sb strings.Builder
	writeHistogram(&sb, "t_seconds", "help", &h)
	out := sb.String()
	for _, want := range []string{
		`t_seconds_bucket{le="0.0001"} 0`,
		`t_seconds_bucket{le="0.00025"} 1`,
		`t_seconds_bucket{le="2.5"} 1`,
		`t_seconds_bucket{le="5"} 2`,
		`t_seconds_bucket{le="10"} 2`,
		`t_seconds_bucket{le="+Inf"} 3`,
		`t_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

// An empty (never-observed) histogram still renders a complete family.
func TestHistogramEmptyRenders(t *testing.T) {
	var h histogram
	var sb strings.Builder
	writeHistogram(&sb, "e_seconds", "help", &h)
	if !strings.Contains(sb.String(), `e_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("empty histogram exposition:\n%s", sb.String())
	}
}
