package httpapi

import (
	"encoding/json"
	"fmt"

	"effitest/fleet"
)

// SpecDecoder returns the journal-payload decoder fleet.Manager.Recover
// needs when the journal was populated through this HTTP surface: each
// payload is the original POST /v1/campaigns body, rebuilt with the same
// circuit and config construction the submit handler used, so a recovered
// campaign is the campaign the client submitted.
//
// One deliberate divergence from the submit path: a plan_id that no longer
// resolves is dropped instead of failing the decode. The plan store is
// in-memory — artifacts die with the process — but a plan artifact is only
// a precomputed shortcut: the registry re-Prepares from the circuit and
// config, which is deterministic and therefore bit-identical to the
// artifact it replaces. Refusing to recover over a missing shortcut would
// strand the campaign for no correctness gain.
func SpecDecoder(plans *fleet.PlanStore) func([]byte) (fleet.CampaignSpec, error) {
	return func(payload []byte) (fleet.CampaignSpec, error) {
		var req CampaignRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return fleet.CampaignSpec{}, fmt.Errorf("decoding journaled campaign request: %w", err)
		}
		c, err := req.Circuit.Build()
		if err != nil {
			return fleet.CampaignSpec{}, err
		}
		opts, err := req.Config.Options()
		if err != nil {
			return fleet.CampaignSpec{}, err
		}
		spec := fleet.CampaignSpec{
			Name:           req.Name,
			Circuit:        c,
			Options:        opts,
			ChipSeed:       req.Chips.Seed,
			ChipCount:      req.Chips.Count,
			ChipFirst:      req.Chips.First,
			Workload:       req.Workload,
			BinEdges:       req.BinEdges,
			Drift:          req.Drift,
			Key:            req.Key,
			PlanID:         req.PlanID,
			JournalPayload: payload,
		}
		if req.PlanID != "" && plans != nil {
			if pl, ok, err := plans.Decode(req.PlanID); err == nil && ok {
				spec.Plan = pl
			}
		}
		return spec, nil
	}
}
