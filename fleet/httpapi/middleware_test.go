package httpapi_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/httpapi"
)

// hardened boots a loopback server with explicit middleware options and a
// bare (un-tokened) http helper for asserting raw status codes and headers.
func hardened(t *testing.T, opts ...httpapi.Option) (*fleet.Manager, *httptest.Server) {
	t.Helper()
	m, err := fleet.NewManager()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m, opts...))
	t.Cleanup(func() {
		m.Shutdown(context.Background())
		ts.Close()
	})
	return m, ts
}

func doRaw(t *testing.T, ts *httptest.Server, method, path, token string, body io.Reader) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// Mutating endpoints refuse requests without the exact bearer token; read
// endpoints and the operational pair stay open.
func TestAuthGate(t *testing.T) {
	_, ts := hardened(t, httpapi.WithAuthToken("secret"))
	body := func() io.Reader { return strings.NewReader(`{}`) }

	cases := []struct {
		name   string
		method string
		path   string
		token  string
		body   io.Reader
		want   int
	}{
		{"submit no token", http.MethodPost, "/v1/campaigns", "", body(), http.StatusUnauthorized},
		{"submit wrong token", http.MethodPost, "/v1/campaigns", "wrong", body(), http.StatusUnauthorized},
		{"submit prefix token", http.MethodPost, "/v1/campaigns", "secretX", body(), http.StatusUnauthorized},
		{"cancel no token", http.MethodDelete, "/v1/campaigns/c000001", "", nil, http.StatusUnauthorized},
		{"upload no token", http.MethodPost, "/v1/plans", "", body(), http.StatusUnauthorized},
		{"submit right token", http.MethodPost, "/v1/campaigns", "secret", body(), http.StatusBadRequest},
		{"healthz open", http.MethodGet, "/healthz", "", nil, http.StatusOK},
		{"metrics open", http.MethodGet, "/metrics", "", nil, http.StatusOK},
		{"stats open", http.MethodGet, "/stats", "", nil, http.StatusOK},
		{"list open", http.MethodGet, "/v1/campaigns", "", nil, http.StatusOK},
		{"plans open", http.MethodGet, "/v1/plans", "", nil, http.StatusOK},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doRaw(t, ts, tc.method, tc.path, tc.token, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			if resp.StatusCode == http.StatusUnauthorized {
				if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
					t.Fatalf("401 without WWW-Authenticate: Bearer (got %q)", got)
				}
			}
			if resp.Header.Get("X-Request-ID") == "" {
				t.Fatal("response missing X-Request-ID")
			}
		})
	}

	// 401s are permanent for the retry classifier: a wrong credential does
	// not heal with backoff.
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithToken("wrong"))
	_, err := cl.Submit(context.Background(), httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Profile: "s9234"}, Chips: httpapi.ChipSpec{Count: 1},
	})
	if err == nil || client.IsTransient(err) {
		t.Fatalf("401 classified transient (err %v)", err)
	}
}

// A client-supplied X-Request-ID is honored and echoed back.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := hardened(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "req-abc-123")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "req-abc-123" {
		t.Fatalf("X-Request-ID %q, want the client's req-abc-123", got)
	}
}

// The per-client token bucket returns 429 with a usable Retry-After once
// the burst is spent, and the typed client error carries the hint.
func TestRateLimit429RetryAfter(t *testing.T) {
	_, ts := hardened(t, httpapi.WithRateLimit(0.1, 1))

	if resp := doRaw(t, ts, http.MethodGet, "/stats", "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request within burst: status %d", resp.StatusCode)
	}
	resp := doRaw(t, ts, http.MethodGet, "/stats", "", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}

	// The open pair is exempt: probes and scrapes never starve.
	for _, path := range []string{"/healthz", "/metrics"} {
		if resp := doRaw(t, ts, http.MethodGet, path, "", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s rate-limited: status %d", path, resp.StatusCode)
		}
	}

	// The typed client error is transient and carries the hint for backoff.
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	_, err = cl.Stats(context.Background())
	if !client.IsTransient(err) {
		t.Fatalf("429 not classified transient: %v", err)
	}
	if ra := client.RetryAfter(err); ra < time.Second {
		t.Fatalf("client.RetryAfter = %v, want >= 1s", ra)
	}
}

// Submissions over the bounded campaign queue get 429 + Retry-After, and
// admission recovers once the backlog settles.
func TestSubmitQueueFull429(t *testing.T) {
	// Occupy the one-slot queue with a slow campaign submitted directly on
	// the manager (backends are not expressible on the wire).
	mq, err := fleet.NewManager(fleet.WithWorkers(1), fleet.WithMaxQueuedCampaigns(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(mq, httpapi.WithAuthToken("secret")))
	t.Cleanup(func() {
		mq.Shutdown(context.Background())
		ts.Close()
	})

	camp := submitSlow(t, mq, 30)
	reqBody := `{"circuit":{"profile":"s9234"},"chips":{"count":1}}`
	resp := doRaw(t, ts, http.MethodPost, "/v1/campaigns", "secret", strings.NewReader(reqBody))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over full queue: status %d, want 429", resp.StatusCode)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("429 Retry-After %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithToken("secret"))
	var apiErr *client.APIError
	_, err = cl.Submit(context.Background(), httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Profile: "s9234"}, Chips: httpapi.ChipSpec{Count: 1},
	})
	if !errors.As(err, &apiErr) || !client.IsTransient(err) {
		t.Fatalf("queue-full submit: err %v, want transient APIError", err)
	}

	// Settle the backlog; admission opens again.
	camp.Cancel()
	if _, err := cl.WaitSettled(context.Background(), camp.ID()); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Submit(context.Background(), httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Custom: &httpapi.CustomProfile{Name: "qtiny", FFs: 24, Gates: 200, Buffers: 3, Paths: 24}, GenSeed: 4},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 2},
	})
	if err != nil {
		t.Fatalf("submit after backlog settled: %v", err)
	}
	if _, err := cl.WaitSettled(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
}

// A body over the upload cap gets 413 with the limit in the message, not a
// generic 400.
func TestUploadTooLarge413(t *testing.T) {
	_, ts := hardened(t)
	huge := bytes.NewReader(make([]byte, 64<<20+1))
	resp := doRaw(t, ts, http.MethodPost, "/v1/plans", "", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "body limit") {
		t.Fatalf("413 body does not state the cap: %s", body)
	}
	// And it is permanent for the retry classifier: the body will still be
	// too big on the next attempt.
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if _, err := cl.UploadPlan(context.Background(), make([]byte, 64<<20+1)); client.IsTransient(err) {
		t.Fatalf("413 classified transient: %v", err)
	}
}

// The aggregate of a failed campaign is a permanent 409 carrying the
// campaign error — not the old blanket 408 the coordinator would retry.
func TestAggregateFailedCampaign409(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()
	// Eps < 0 passes wire validation but fails engine construction, so the
	// campaign is accepted and then settles failed.
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Custom: &httpapi.CustomProfile{Name: "aggf", FFs: 24, Gates: 200, Buffers: 3, Paths: 24}, GenSeed: 4},
		Config:  httpapi.ConfigSpec{Eps: -4},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Aggregate(ctx, st.ID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("aggregate of failed campaign: err %v, want HTTP 409", err)
	}
	if client.IsTransient(err) {
		t.Fatal("failed-campaign 409 classified transient — the coordinator would retry a permanent failure")
	}
	if !strings.Contains(apiErr.Message, "failed") {
		t.Fatalf("409 does not carry the campaign state: %q", apiErr.Message)
	}
}

// The aggregate of a cancelled campaign is the same permanent 409.
func TestAggregateCancelledCampaign409(t *testing.T) {
	m, cl := newLoopback(t, fleet.WithWorkers(2))
	ctx := context.Background()
	camp := submitSlow(t, m, 20)
	for camp.Status().ChipsDone < 1 {
		time.Sleep(time.Millisecond)
	}
	if _, err := cl.Cancel(ctx, camp.ID()); err != nil {
		t.Fatal(err)
	}
	_, err := cl.Aggregate(ctx, camp.ID())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict || client.IsTransient(err) {
		t.Fatalf("aggregate of cancelled campaign: err %v, want permanent HTTP 409", err)
	}
}

// A client abandoning its aggregate wait must not make the server write
// any status: the connection just closes (the 408 it used to write would
// poison retry classification).
func TestAggregateClientDisconnectWritesNothing(t *testing.T) {
	m, err := fleet.NewManager(fleet.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Shutdown(context.Background()) })
	srv := httpapi.New(m)

	camp := submitSlow(t, m, 30)
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/v1/campaigns/"+camp.ID()+"/aggregate", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	srv.ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected aggregate wait wrote a body: %s", rec.Body.String())
	}
	camp.Cancel()
}

// A corrupt campaign-request body reports a 400 naming the decode problem
// (and an oversized one reports 413 — TestUploadTooLarge413 covers the
// shared path).
func TestSubmitCorruptBody(t *testing.T) {
	_, ts := hardened(t)
	resp := doRaw(t, ts, http.MethodPost, "/v1/campaigns", "", strings.NewReader("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "decoding campaign request") {
		t.Fatalf("400 body does not name the decode failure: %s", body)
	}
}

// /metrics moves across a campaign: chip results, batches, predict
// latencies, HTTP requests and auth failures all register, and the text
// parses as "name{labels} value" lines throughout.
func TestMetricsScrapeMoves(t *testing.T) {
	metrics := httpapi.NewMetrics()
	m, err := fleet.NewManager(fleet.WithManagerObserver(metrics.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m,
		httpapi.WithAuthToken("secret"),
		httpapi.WithMetrics(metrics),
	))
	t.Cleanup(func() {
		m.Shutdown(context.Background())
		ts.Close()
	})
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithToken("secret"))
	ctx := context.Background()

	scrape := func() map[string]float64 {
		t.Helper()
		resp := doRaw(t, ts, http.MethodGet, "/metrics", "", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("/metrics content type %q", ct)
		}
		out := map[string]float64{}
		body, _ := io.ReadAll(resp.Body)
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			// Label values may contain spaces (route="GET /stats"), so the
			// value is everything after the LAST space.
			cut := strings.LastIndex(line, " ")
			if cut < 0 {
				t.Fatalf("unparseable metrics line %q", line)
			}
			name, val := line[:cut], line[cut+1:]
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("metrics line %q: %v", line, err)
			}
			out[name] = f
		}
		return out
	}

	before := scrape()
	if before[`effitestd_chips_total{result="passed"}`] != 0 {
		t.Fatal("fresh daemon reports executed chips")
	}

	// One unauthorized request, then a real campaign.
	if resp := doRaw(t, ts, http.MethodPost, "/v1/plans", "", strings.NewReader("x")); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("expected 401, got %d", resp.StatusCode)
	}
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Custom: &httpapi.CustomProfile{Name: "mtiny", FFs: 24, Gates: 200, Buffers: 3, Paths: 24}, GenSeed: 4},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitSettled(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	after := scrape()
	chips := after[`effitestd_chips_total{result="passed"}`] + after[`effitestd_chips_total{result="failed"}`]
	if chips != 4 {
		t.Fatalf("chips_total counted %v results for a 4-chip campaign", chips)
	}
	if after["effitestd_chips_executed_total"] != 4 {
		t.Fatalf("chips_executed_total = %v, want 4", after["effitestd_chips_executed_total"])
	}
	if after["effitestd_test_batches_total"] == 0 || after["effitestd_tester_iterations_total"] == 0 {
		t.Fatal("batch counters did not move across a campaign")
	}
	if after["effitestd_predict_duration_seconds_count"] != 4 {
		t.Fatalf("predict histogram count %v, want one observation per chip", after["effitestd_predict_duration_seconds_count"])
	}
	if after["effitestd_auth_failures_total"] != 1 {
		t.Fatalf("auth_failures_total = %v, want 1", after["effitestd_auth_failures_total"])
	}
	if after[`effitestd_campaigns{state="done"}`] != 1 {
		t.Fatalf(`campaigns{state="done"} = %v, want 1`, after[`effitestd_campaigns{state="done"}`])
	}
	if after["effitestd_http_requests_total{route=\"POST /v1/campaigns\",code=\"202\"}"] != 1 {
		t.Fatal("http_requests_total did not count the submit")
	}
	if after["effitestd_http_request_duration_seconds_count"] <= before["effitestd_http_request_duration_seconds_count"] {
		t.Fatal("request-latency histogram did not move")
	}
}
