package httpapi_test

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/httpapi"
)

// wire24Netlist builds the small test circuit used by the shard tests.
func wire24Netlist(t *testing.T) string {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile("shard24", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := effitest.WriteNetlist(&sb, c); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func runCampaign(t *testing.T, cl *client.Client, req httpapi.CampaignRequest) []httpapi.ChipResult {
	t.Helper()
	ctx := context.Background()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := cl.WaitSettled(ctx, st.ID); err != nil || fin.State != string(fleet.StateDone) {
		t.Fatalf("campaign did not settle done: %+v, err %v", fin, err)
	}
	res, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A shard-range campaign (Chips.First > 0) must reproduce exactly the
// corresponding slice of a whole-population campaign: chip i depends only
// on (seed, i), which is what lets the coordinator split a population
// across daemons without changing a single bit.
func TestShardRangeMatchesWholePopulationSlice(t *testing.T) {
	netlist := wire24Netlist(t)
	base := httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: netlist},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
	}

	_, cl := newLoopback(t)
	whole := base
	whole.Chips = httpapi.ChipSpec{Seed: 9, Count: 8}
	wholeRes := runCampaign(t, cl, whole)
	if len(wholeRes) != 8 {
		t.Fatalf("whole campaign returned %d results", len(wholeRes))
	}

	shards := []httpapi.ChipSpec{
		{Seed: 9, Count: 3, First: 0},
		{Seed: 9, Count: 5, First: 3},
	}
	for _, chips := range shards {
		req := base
		req.Chips = chips
		got := runCampaign(t, cl, req)
		if len(got) != chips.Count {
			t.Fatalf("shard [%d+%d) returned %d results", chips.First, chips.Count, len(got))
		}
		for i, res := range got {
			want := wholeRes[chips.First+i]
			if res.Index != i {
				t.Fatalf("shard [%d+%d) result %d has Index %d (indices are shard-local)", chips.First, chips.Count, i, res.Index)
			}
			if res.ChipIndex != want.ChipIndex ||
				res.Iterations != want.Iterations || res.ScanBits != want.ScanBits ||
				res.Configured != want.Configured || res.Passed != want.Passed ||
				res.Xi != want.Xi ||
				res.BoundsLoSum != want.BoundsLoSum || res.BoundsHiSum != want.BoundsHiSum {
				t.Fatalf("shard [%d+%d) chip %d diverges from whole-population chip %d:\nshard: %+v\nwhole: %+v",
					chips.First, chips.Count, i, chips.First+i, res, want)
			}
			if want.ChipIndex != chips.First+i {
				t.Fatalf("whole-population chip %d carries manufacturing index %d", chips.First+i, want.ChipIndex)
			}
		}
	}

	// A negative range start is rejected at submit.
	bad := base
	bad.Chips = httpapi.ChipSpec{Seed: 9, Count: 2, First: -1}
	if _, err := cl.Submit(context.Background(), bad); err == nil {
		t.Fatal("negative Chips.First accepted")
	}
}

// ?from=N resumes the NDJSON stream mid-way — the reconnect path the
// coordinator uses after a transient stream break.
func TestResultsStreamResumesFrom(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: wire24Netlist(t)},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	var resumed []httpapi.ChipResult
	for res, err := range cl.StreamResultsFrom(ctx, st.ID, 5) {
		if err != nil {
			t.Fatal(err)
		}
		resumed = append(resumed, res)
	}
	if len(resumed) != 3 {
		t.Fatalf("resume from 5 of 8 yielded %d results, want 3", len(resumed))
	}
	for i, res := range resumed {
		want := full[5+i]
		if res.Index != want.Index || res.Xi != want.Xi || res.Iterations != want.Iterations {
			t.Fatalf("resumed result %d = %+v, want %+v", i, res, want)
		}
	}

	// Resuming at (or past) the end of a settled campaign ends cleanly.
	n := 0
	for _, err := range cl.StreamResultsFrom(ctx, st.ID, 8) {
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 0 {
		t.Fatalf("resume at the end yielded %d results", n)
	}

	// A malformed offset is a 400, not a hung stream.
	for _, q := range []string{"from=-1", "from=abc"} {
		resp, err := http.Get(cl.Base() + "/v1/campaigns/" + st.ID + "/results?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s answered %d, want 400", q, resp.StatusCode)
		}
	}
}

// GET /stats exposes registry traffic and manager load — the signal the
// coordinator's least-loaded placement reads.
func TestStatsEndpoint(t *testing.T) {
	_, cl := newLoopback(t, fleet.WithWorkers(3))
	ctx := context.Background()

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.Campaigns != 0 || st.ChipsExecuted != 0 {
		t.Fatalf("fresh daemon stats: %+v", st)
	}

	camp, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: wire24Netlist(t)},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitSettled(ctx, camp.ID); err != nil {
		t.Fatal(err)
	}

	st, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 1 || st.CampaignsDone != 1 {
		t.Fatalf("after one campaign: %+v", st)
	}
	if st.ChipsExecuted != 6 {
		t.Fatalf("chips_executed = %d, want 6", st.ChipsExecuted)
	}
	if st.ChipsPending != 0 || st.ChipsInFlight != 0 {
		t.Fatalf("settled daemon still reports backlog: %+v", st)
	}
	if st.EnginesLive == 0 || st.RegistryMisses == 0 {
		t.Fatalf("registry saw no traffic: %+v", st)
	}
}
