// Package httpapi defines the HTTP/JSON surface of effitestd — the wire
// types shared by the server and the Go client (package fleet/client) —
// and the server implementation over a fleet.Manager.
//
// The API is deliberately small and deterministic:
//
//	GET    /healthz                      liveness + pool/registry gauges
//	GET    /stats                        registry + manager load counters
//	POST   /v1/campaigns                 submit a campaign (async; 202)
//	GET    /v1/campaigns                 list campaign statuses
//	GET    /v1/campaigns/{id}            one campaign status
//	GET    /v1/campaigns/{id}/results    NDJSON result stream, input order
//	                                     (?from=N resumes mid-stream)
//	GET    /v1/campaigns/{id}/aggregate  canonical aggregate JSON
//	DELETE /v1/campaigns/{id}            cancel
//	POST   /v1/plans                     upload a plan artifact (binary/JSON)
//	GET    /v1/plans                     list stored artifact ids
//	GET    /v1/plans/{id}                download an artifact
//
// Every per-chip field served on the wire is deterministic (Go's JSON
// float encoding round-trips exactly), so a campaign served over loopback
// is bit-identical to an in-process Engine.RunChips run — the conformance
// suite pins that.
package httpapi

import (
	"fmt"
	"strings"
	"time"

	"effitest"
	"effitest/fleet"
	"effitest/workload"
)

// CampaignRequest submits one campaign.
type CampaignRequest struct {
	// Name is a free-form label.
	Name string `json:"name,omitempty"`
	// Circuit selects or inlines the circuit under test.
	Circuit CircuitSpec `json:"circuit"`
	// Config layers flow parameters over the paper defaults.
	Config ConfigSpec `json:"config"`
	// Chips picks the deterministic chip population.
	Chips ChipSpec `json:"chips"`
	// Workload selects the campaign type (package workload): effitest
	// (default), clock-binning or aging-drift.
	Workload string `json:"workload,omitempty"`
	// BinEdges are the ascending period bin edges of a clock-binning
	// campaign, in ns; the aggregate then carries a per-bin chip histogram.
	BinEdges []float64 `json:"bin_edges,omitempty"`
	// Drift scales every sampled chip's realized delays by (1+Drift)
	// before execution (aging-drift campaigns).
	Drift float64 `json:"drift,omitempty"`
	// PlanID references a previously uploaded plan artifact; the campaign's
	// engine is then built from the artifact instead of running Prepare.
	PlanID string `json:"plan_id,omitempty"`
	// Key is an optional client-chosen idempotency key (1–128 bytes of
	// [A-Za-z0-9._-]). Submitting a key the daemon already knows returns
	// the existing campaign with 200 instead of creating a duplicate — so
	// a client that got a 5xx for a submit the daemon actually committed
	// (or that raced a daemon restart) can retry blindly. Keys survive
	// daemon restarts when the daemon journals campaigns (-journal-dir).
	Key string `json:"key,omitempty"`
}

// CircuitSpec names a circuit three ways: a Table-1 benchmark profile, a
// custom synthetic profile, or an inline netlist (the text form produced by
// effitest.WriteNetlist). Exactly one must be set.
type CircuitSpec struct {
	Profile string         `json:"profile,omitempty"`
	Custom  *CustomProfile `json:"custom,omitempty"`
	Netlist string         `json:"netlist,omitempty"`
	// GenSeed seeds the benchmark generator (profile and custom forms).
	GenSeed int64 `json:"gen_seed,omitempty"`
}

// CustomProfile is a synthetic benchmark profile (effitest.NewProfile).
type CustomProfile struct {
	Name    string `json:"name"`
	FFs     int    `json:"ffs"`
	Gates   int    `json:"gates"`
	Buffers int    `json:"buffers"`
	Paths   int    `json:"paths"`
}

// Build materializes the circuit.
func (cs CircuitSpec) Build() (*effitest.Circuit, error) {
	set := 0
	for _, ok := range []bool{cs.Profile != "", cs.Custom != nil, cs.Netlist != ""} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("circuit: exactly one of profile, custom or netlist must be set")
	}
	switch {
	case cs.Netlist != "":
		return effitest.ParseNetlist(strings.NewReader(cs.Netlist))
	case cs.Custom != nil:
		p := effitest.NewProfile(cs.Custom.Name, cs.Custom.FFs, cs.Custom.Gates, cs.Custom.Buffers, cs.Custom.Paths)
		return effitest.Generate(p, cs.GenSeed)
	default:
		p, ok := effitest.ProfileByName(cs.Profile)
		if !ok {
			return nil, fmt.Errorf("circuit: unknown profile %q", cs.Profile)
		}
		return effitest.Generate(p, cs.GenSeed)
	}
}

// ConfigSpec maps the engine's functional options onto JSON. Zero values
// mean "paper default".
type ConfigSpec struct {
	// Align selects the §3.3 alignment solver: heuristic | fast-milp |
	// paper-ilp | off.
	Align string `json:"align,omitempty"`
	// Eps is the delay-range termination threshold in ns.
	Eps float64 `json:"eps,omitempty"`
	// Seed is the master random seed.
	Seed int64 `json:"seed,omitempty"`
	// MaxBatch caps test batch sizes.
	MaxBatch int `json:"max_batch,omitempty"`
	// Period pins the test clock period Td in ns; when 0, the period is
	// calibrated as the Quantile-quantile over CalibChips Monte-Carlo
	// chips (defaults: the paper's T2 = 0.8413 over 2000).
	Period     float64 `json:"period,omitempty"`
	Quantile   float64 `json:"quantile,omitempty"`
	CalibChips int     `json:"calib_chips,omitempty"`
}

// Options translates the spec into engine options.
func (cf ConfigSpec) Options() ([]effitest.Option, error) {
	var opts []effitest.Option
	switch strings.ToLower(cf.Align) {
	case "":
	case "heuristic":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignHeuristic))
	case "fast-milp":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignFastMILP))
	case "paper-ilp":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignPaperILP))
	case "off":
		opts = append(opts, effitest.WithAlignMode(effitest.AlignOff))
	default:
		return nil, fmt.Errorf("config: unknown align mode %q", cf.Align)
	}
	if cf.Eps != 0 {
		opts = append(opts, effitest.WithEpsilon(cf.Eps))
	}
	if cf.Seed != 0 {
		opts = append(opts, effitest.WithSeed(cf.Seed))
	}
	if cf.MaxBatch != 0 {
		opts = append(opts, effitest.WithMaxBatch(cf.MaxBatch))
	}
	switch {
	case cf.Period != 0:
		opts = append(opts, effitest.WithPeriod(cf.Period))
	case cf.Quantile != 0:
		calib := cf.CalibChips
		if calib == 0 {
			calib = 2000
		}
		opts = append(opts, effitest.WithPeriodQuantile(cf.Quantile, calib))
	case cf.CalibChips != 0:
		opts = append(opts, effitest.WithPeriodQuantile(0.8413, cf.CalibChips))
	}
	return opts, nil
}

// ChipSpec is the deterministic chip population: Count chips sampled in
// (Seed, index) from the engine's circuit, starting at manufacturing index
// First (default 0). A non-zero First addresses a shard of a larger
// population: the campaign runs chips [First, First+Count) of the Seed-keyed
// population, bit-identical to the same positions of a single whole-range
// campaign — which is how the fleet coordinator splits one population
// across daemons.
type ChipSpec struct {
	Seed  int64 `json:"seed"`
	Count int   `json:"count"`
	First int   `json:"first,omitempty"`
}

// CampaignStatus is one campaign's snapshot on the wire.
type CampaignStatus struct {
	ID           string     `json:"id"`
	Name         string     `json:"name,omitempty"`
	Workload     string     `json:"workload,omitempty"`
	State        string     `json:"state"`
	ChipsTotal   int        `json:"chips_total"`
	ChipsDone    int        `json:"chips_done"`
	ChipsPassed  int        `json:"chips_passed"`
	ChipsFailed  int        `json:"chips_failed"`
	RunningYield float64    `json:"running_yield"`
	Period       float64    `json:"period,omitempty"`
	Error        string     `json:"error,omitempty"`
	Aggregate    *Aggregate `json:"aggregate,omitempty"`
	SubmittedAt  time.Time  `json:"submitted_at"`
	StartedAt    *time.Time `json:"started_at,omitempty"`
	FinishedAt   *time.Time `json:"finished_at,omitempty"`
}

// Aggregate is the campaign's streaming aggregate over error-free chip
// outcomes. Every field is deterministic (wall-clock solver times are
// deliberately excluded), so it diffs exactly against golden files and
// against an in-process run.
type Aggregate struct {
	Chips          int     `json:"chips"`
	Yield          float64 `json:"yield"`
	AvgIterations  float64 `json:"avg_iterations"`
	AvgScanBits    float64 `json:"avg_scan_bits"`
	ConfiguredFrac float64 `json:"configured_frac"`
	// Bins is the clock-binning histogram (clock-binning campaigns only):
	// one chip count per period bin edge, ascending, exact integers merged
	// bit-identically across shards. Unbinned counts chips slower than
	// every edge or never configured.
	Bins     []BinCount `json:"bins,omitempty"`
	Unbinned int        `json:"unbinned,omitempty"`
}

// BinCount is one clock-binning histogram bucket on the wire.
type BinCount struct {
	// Edge is the bin's period upper bound in ns.
	Edge float64 `json:"edge"`
	// Count is the chips whose achieved period fell in this bin.
	Count int `json:"count"`
}

// BinsWire converts a workload.BinAgg to its wire form.
func BinsWire(b *workload.BinAgg) ([]BinCount, int) {
	if b == nil {
		return nil, 0
	}
	bins := make([]BinCount, len(b.Edges))
	for i, e := range b.Edges {
		bins[i] = BinCount{Edge: e, Count: b.Counts[i]}
	}
	return bins, b.Unbinned
}

// ChipResult is one per-chip result on the NDJSON stream. All fields are
// deterministic; wall-clock durations are excluded.
type ChipResult struct {
	// Index is the chip's position in the campaign population; results
	// stream in ascending Index.
	Index int `json:"index"`
	// ChipIndex is the manufacturing index (ChipSpec sampling).
	ChipIndex  int       `json:"chip_index"`
	Iterations int       `json:"iterations,omitempty"`
	ScanBits   int64     `json:"scan_bits,omitempty"`
	Configured bool      `json:"configured,omitempty"`
	Passed     bool      `json:"passed,omitempty"`
	Xi         float64   `json:"xi,omitempty"`
	X          []float64 `json:"x,omitempty"`
	// AchievedPeriod is the chip's post-tuning achievable period under the
	// configured buffer vector (configured chips only): the clock-binning
	// classification quantity, computed daemon-side so remote consumers —
	// the shard coordinator folding a fleet-wide histogram — bin on the
	// identical float64 the local flow saw.
	AchievedPeriod float64 `json:"achieved_period,omitempty"`
	// BoundsLoSum / BoundsHiSum summarize the final per-path delay windows
	// (the full arrays are large; the sums still pin every bit of drift).
	BoundsLoSum float64 `json:"bounds_lo_sum,omitempty"`
	BoundsHiSum float64 `json:"bounds_hi_sum,omitempty"`
	// Error is the per-chip failure, if any.
	Error string `json:"error,omitempty"`
}

// Health is the /healthz document.
type Health struct {
	Status    string `json:"status"`
	Workers   int    `json:"workers"`
	Campaigns int    `json:"campaigns"`
	// Engines / Prepares mirror the registry gauges: live engines and cold
	// offline Prepares since start.
	Engines  int `json:"engines"`
	Prepares int `json:"prepares"`
}

// PlanRef is the response to a plan upload and the element of plan lists.
type PlanRef struct {
	ID string `json:"id"`
}

// Stats is the /stats document: the engine-registry counters plus the
// manager's campaign/chip load gauges. The fleet coordinator reads it for
// least-loaded shard placement; humans read it to see what a daemon is
// doing.
type Stats struct {
	Workers int `json:"workers"`

	// Registry traffic (see fleet.RegistryStats).
	EnginesLive       int `json:"engines_live"`
	RegistryHits      int `json:"registry_hits"`
	RegistryMisses    int `json:"registry_misses"`
	RegistryPrepares  int `json:"registry_prepares"`
	RegistryEvictions int `json:"registry_evictions"`

	// Campaign table by state (see fleet.ManagerStats).
	Campaigns          int `json:"campaigns"`
	CampaignsQueued    int `json:"campaigns_queued"`
	CampaignsRunning   int `json:"campaigns_running"`
	CampaignsDone      int `json:"campaigns_done"`
	CampaignsCancelled int `json:"campaigns_cancelled"`
	CampaignsFailed    int `json:"campaigns_failed"`

	// Admission control: the non-terminal campaign bound (0 = unbounded)
	// and submissions refused at that bound since start.
	QueueLimit        int   `json:"queue_limit,omitempty"`
	CampaignsRejected int64 `json:"campaigns_rejected,omitempty"`

	// Chip-level load: executed since start, resolved-but-undispatched, and
	// dispatched-without-result. Pending+InFlight is the backlog a new
	// shard queues behind.
	ChipsExecuted int64 `json:"chips_executed"`
	ChipsPending  int   `json:"chips_pending"`
	ChipsInFlight int   `json:"chips_in_flight"`

	// Durability: campaigns rebuilt from the journal at boot, chip results
	// replayed from it instead of re-executed (chips_executed excludes
	// them), and the journal's footprint and append-failure count. All
	// zero when the daemon runs without -journal-dir.
	CampaignsRecovered  int64 `json:"campaigns_recovered,omitempty"`
	ChipsReplayed       int64 `json:"chips_replayed,omitempty"`
	JournalSegments     int   `json:"journal_segments,omitempty"`
	JournalBytes        int64 `json:"journal_bytes,omitempty"`
	JournalAppendErrors int64 `json:"journal_append_errors,omitempty"`
}

// StatsWire merges the registry and manager snapshots into the wire form.
func StatsWire(rs fleet.RegistryStats, ms fleet.ManagerStats) Stats {
	return Stats{
		Workers:            ms.Workers,
		EnginesLive:        rs.Live,
		RegistryHits:       rs.Hits,
		RegistryMisses:     rs.Misses,
		RegistryPrepares:   rs.Prepares,
		RegistryEvictions:  rs.Evictions,
		Campaigns:          ms.Campaigns,
		CampaignsQueued:    ms.CampaignsQueued,
		CampaignsRunning:   ms.CampaignsRunning,
		CampaignsDone:      ms.CampaignsDone,
		CampaignsCancelled: ms.CampaignsCancelled,
		CampaignsFailed:    ms.CampaignsFailed,
		QueueLimit:         ms.QueueLimit,
		CampaignsRejected:  ms.CampaignsRejected,
		ChipsExecuted:      ms.ChipsExecuted,
		ChipsPending:       ms.ChipsPending,
		ChipsInFlight:      ms.ChipsInFlight,

		CampaignsRecovered:  ms.CampaignsRecovered,
		ChipsReplayed:       ms.ChipsReplayed,
		JournalSegments:     ms.JournalSegments,
		JournalBytes:        ms.JournalBytes,
		JournalAppendErrors: ms.JournalAppendErrors,
	}
}

// StatusWire converts a fleet.Status to its wire form.
func StatusWire(st fleet.Status) CampaignStatus {
	ws := CampaignStatus{
		ID:           st.ID,
		Name:         st.Name,
		Workload:     st.Workload,
		State:        string(st.State),
		ChipsTotal:   st.ChipsTotal,
		ChipsDone:    st.ChipsDone,
		ChipsPassed:  st.ChipsPassed,
		ChipsFailed:  st.ChipsFailed,
		RunningYield: st.RunningYield,
		Period:       st.Period,
		SubmittedAt:  st.SubmittedAt,
	}
	if st.Err != nil {
		ws.Error = st.Err.Error()
	}
	if !st.StartedAt.IsZero() {
		t := st.StartedAt
		ws.StartedAt = &t
	}
	if !st.FinishedAt.IsZero() {
		t := st.FinishedAt
		ws.FinishedAt = &t
	}
	if st.Stats != (effitest.ProposedStats{}) || st.State == fleet.StateDone {
		ws.Aggregate = &Aggregate{
			Chips:          st.ChipsDone - st.ChipsFailed,
			Yield:          st.Stats.Yield,
			AvgIterations:  st.Stats.AvgIterations,
			AvgScanBits:    st.Stats.AvgScanBits,
			ConfiguredFrac: st.Stats.ConfiguredFrac,
		}
		ws.Aggregate.Bins, ws.Aggregate.Unbinned = BinsWire(st.Bins)
	}
	return ws
}

// ResultWire converts a per-chip result to its wire form.
func ResultWire(r effitest.ChipResult) ChipResult {
	w := ChipResult{Index: r.Index}
	if r.Chip != nil {
		w.ChipIndex = r.Chip.Index
	}
	if r.Err != nil {
		w.Error = r.Err.Error()
		return w
	}
	out := r.Outcome
	w.Iterations = out.Iterations
	w.ScanBits = out.ScanBits
	w.Configured = out.Configured
	w.Passed = out.Passed
	w.Xi = out.Xi
	w.X = out.X
	if out.Configured && r.Chip != nil {
		w.AchievedPeriod = workload.AchievedPeriod(r.Chip, out.X)
	}
	if out.Bounds != nil {
		for i := range out.Bounds.Lo {
			w.BoundsLoSum += out.Bounds.Lo[i]
			w.BoundsHiSum += out.Bounds.Hi[i]
		}
	}
	return w
}
