package httpapi_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/httpapi"
	"effitest/fleet/journal"
)

// postCampaign submits a raw body and returns the HTTP status code and the
// decoded campaign status, for tests that assert the 200-vs-202 contract
// the typed client deliberately papers over.
func postCampaign(t *testing.T, ts *httptest.Server, body string) (int, httpapi.CampaignStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st httpapi.CampaignStatus
	if resp.StatusCode < 400 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

const keyedBody = `{
	"name": "keyed",
	"key": "lot-7-retry",
	"circuit": {"custom": {"name": "k24", "ffs": 24, "gates": 200, "buffers": 3, "paths": 24}, "gen_seed": 4},
	"config": {"align": "heuristic", "quantile": 0.8413, "calib_chips": 100},
	"chips": {"seed": 5, "count": 3}
}`

// TestSubmitIdempotencyKeyHTTP pins the wire contract for client-chosen
// campaign keys: first submit 202, duplicate submit 200 with the SAME
// campaign (not 409 — a retry is not a conflict), malformed keys 400.
func TestSubmitIdempotencyKeyHTTP(t *testing.T) {
	m, err := fleet.NewManager(fleet.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m, httpapi.WithAuthToken(testToken)))
	t.Cleanup(func() {
		m.Shutdown(context.Background())
		ts.Close()
	})

	code, first := postCampaign(t, ts, keyedBody)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", code)
	}
	// The duplicate may even carry a different body: the key wins, and the
	// caller gets the original campaign back.
	code, dup := postCampaign(t, ts, strings.Replace(keyedBody, `"keyed"`, `"keyed-retry"`, 1))
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: HTTP %d, want 200", code)
	}
	if dup.ID != first.ID {
		t.Fatalf("duplicate key created campaign %s, want %s", dup.ID, first.ID)
	}

	for _, bad := range []string{
		`{"key": "has spaces", "circuit": {"profile": "s9234"}, "chips": {"count": 1}}`,
		`{"key": "` + strings.Repeat("x", 129) + `", "circuit": {"profile": "s9234"}, "chips": {"count": 1}}`,
	} {
		if code, _ := postCampaign(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("invalid key accepted with HTTP %d", code)
		}
	}
}

// TestHTTPRecoveryRoundTrip drives the full durable path through the HTTP
// surface: a keyed campaign is submitted over the wire, the journal
// "crashes" immediately (only the spec record is guaranteed on disk), and
// a second manager recovers from the directory via SpecDecoder — the
// original POST body IS the journal payload. The recovered campaign keeps
// its ID and key, finishes, and serves the identical aggregate; a client
// retrying its submit against the new process gets 200 and the original
// campaign.
func TestHTTPRecoveryRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	// Gate chip completion on the test: the manager observer runs inline on
	// the worker goroutines, so until release closes no chip can finish and
	// the campaign cannot settle its journal segment. That makes the crash
	// below deterministic — without the gate, a loaded machine can let the
	// whole 3-chip campaign finish (and settle) before Close runs.
	release := make(chan struct{})
	gate := effitest.ObserverFunc(func(e effitest.Event) {
		if _, ok := e.(effitest.ChipDoneEvent); ok {
			<-release
		}
	})
	m1, err := fleet.NewManager(fleet.WithWorkers(2), fleet.WithJournal(j1), fleet.WithManagerObserver(gate))
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(httpapi.New(m1, httpapi.WithAuthToken(testToken)))
	t.Cleanup(func() {
		m1.Shutdown(context.Background())
		ts1.Close()
	})

	code, st1 := postCampaign(t, ts1, keyedBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// The crash: the settle record can no longer reach the directory. The
	// spec record was fsynced before the 202, so the campaign is recoverable
	// no matter how far execution got.
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	close(release)
	// Let the doomed process finish anyway: its aggregate is the reference
	// the recovered campaign must reproduce.
	camp1, ok := m1.Campaign(st1.ID)
	if !ok {
		t.Fatal("campaign missing from first manager")
	}
	ref, err := camp1.Wait(ctx)
	if err != nil || ref.State != fleet.StateDone {
		t.Fatalf("reference: %v %v", ref.State, err)
	}
	refAgg, err := cliFor(ts1).Aggregate(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Recovery boot.
	j2, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := fleet.NewManager(fleet.WithWorkers(2), fleet.WithJournal(j2))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := m2.Recover(httpapi.SpecDecoder(m2.Plans()))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Campaigns != 1 || rs.Skipped != 0 {
		t.Fatalf("recover: %+v", rs)
	}
	ts2 := httptest.NewServer(httpapi.New(m2, httpapi.WithAuthToken(testToken)))
	t.Cleanup(func() {
		m2.Shutdown(context.Background())
		ts2.Close()
	})
	cl2 := cliFor(ts2)

	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := cl2.Status(ctx, st1.ID)
		if err != nil {
			t.Fatalf("recovered campaign %s not served: %v", st1.ID, err)
		}
		if st.State == string(fleet.StateDone) {
			break
		}
		if st.State == string(fleet.StateFailed) || st.State == string(fleet.StateCancelled) {
			t.Fatalf("recovered campaign settled %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered campaign stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	gotAgg, err := cl2.Aggregate(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAgg, refAgg) {
		t.Fatalf("recovered aggregate diverges:\nrecovered: %+v\nreference: %+v", gotAgg, refAgg)
	}

	// Idempotency survives the restart: the same keyed submit now answers
	// 200 with the recovered campaign.
	code, dup := postCampaign(t, ts2, keyedBody)
	if code != http.StatusOK || dup.ID != st1.ID {
		t.Fatalf("keyed re-submit after recovery: HTTP %d id %s, want 200 %s", code, dup.ID, st1.ID)
	}

	// And /stats reports the recovery.
	stats, err := cl2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CampaignsRecovered != 1 {
		t.Fatalf("stats.CampaignsRecovered = %d, want 1", stats.CampaignsRecovered)
	}
	if stats.ChipsReplayed+stats.ChipsExecuted != 3 {
		t.Fatalf("replayed %d + executed %d != 3", stats.ChipsReplayed, stats.ChipsExecuted)
	}
	var buf bytes.Buffer
	resp, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"effitest_campaigns_recovered_total 1", "effitestd_journal_segments"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
