package httpapi_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/httpapi"
	"effitest/internal/conformance"
	"effitest/internal/yield"
)

// testToken is the bearer token every loopback test server requires: the
// conformance suite runs with auth and rate limiting ON, pinning that the
// production middleware does not perturb a single served byte.
const testToken = "loopback-test-token"

// newLoopback starts a manager and an HTTP loopback server around it —
// with auth, a generous rate limit, and metrics enabled — returning a
// client that authenticates. Cleanup shuts both down.
func newLoopback(t *testing.T, opts ...fleet.ManagerOption) (*fleet.Manager, *client.Client) {
	t.Helper()
	metrics := httpapi.NewMetrics()
	opts = append(opts, fleet.WithManagerObserver(metrics.Observer()))
	m, err := fleet.NewManager(opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m,
		httpapi.WithAuthToken(testToken),
		httpapi.WithRateLimit(10000, 10000),
		httpapi.WithMetrics(metrics),
	))
	t.Cleanup(func() {
		m.Shutdown(context.Background())
		ts.Close()
	})
	return m, cliFor(ts)
}

func cliFor(ts *httptest.Server) *client.Client {
	return client.New(ts.URL, client.WithHTTPClient(ts.Client()), client.WithToken(testToken))
}

// tiny64Scenario picks the fast pipeline cell of the conformance matrix:
// the same scenario the golden corpus pins.
func tiny64Scenario(t *testing.T) conformance.Scenario {
	t.Helper()
	for _, sc := range conformance.DefaultMatrix() {
		if sc.Kind == conformance.KindPipeline && !sc.Heavy &&
			sc.Align.String() == "heuristic" && sc.Eps == 0.002 && sc.Seed == 1 {
			return sc
		}
	}
	t.Fatal("tiny64 pipeline scenario missing from the conformance matrix")
	return conformance.Scenario{}
}

// A campaign served over HTTP loopback must be bit-identical to running
// the same conformance scenario in process through Engine.RunChips: every
// per-chip field on the wire, and the aggregate, exactly.
func TestServedResultsMatchInProcessGolden(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	_, cl := newLoopback(t)
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Name: "golden-tiny64",
		Circuit: httpapi.CircuitSpec{
			Custom:  &httpapi.CustomProfile{Name: "tiny64", FFs: 64, Gates: 640, Buffers: 6, Paths: 72},
			GenSeed: sc.GenSeed,
		},
		Config: httpapi.ConfigSpec{
			Align:      "heuristic",
			Eps:        sc.Eps,
			Seed:       sc.Seed,
			Quantile:   sc.Quantile,
			CalibChips: sc.CalibChips,
		},
		Chips: httpapi.ChipSpec{Seed: sc.ChipSeed, Count: sc.Chips},
	})
	if err != nil {
		t.Fatal(err)
	}

	var got []httpapi.ChipResult
	for res, err := range cl.StreamResults(ctx, st.ID) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
	}
	if len(got) != len(inproc.Outs) {
		t.Fatalf("served %d results, in-process produced %d", len(got), len(inproc.Outs))
	}
	var agg yield.Agg
	for i, res := range got {
		if res.Error != "" {
			t.Fatalf("chip %d: served error %s", i, res.Error)
		}
		want := httpapi.ResultWire(effitest.ChipResult{Index: i, Chip: inproc.Chips[i], Outcome: inproc.Outs[i]})
		if res.Index != want.Index || res.ChipIndex != want.ChipIndex ||
			res.Iterations != want.Iterations || res.ScanBits != want.ScanBits ||
			res.Configured != want.Configured || res.Passed != want.Passed ||
			res.Xi != want.Xi ||
			res.BoundsLoSum != want.BoundsLoSum || res.BoundsHiSum != want.BoundsHiSum {
			t.Fatalf("chip %d: served result diverges from in-process run:\nserved:     %+v\nin-process: %+v", i, res, want)
		}
		if len(res.X) != len(want.X) {
			t.Fatalf("chip %d: X length %d != %d", i, len(res.X), len(want.X))
		}
		for j := range res.X {
			if res.X[j] != want.X[j] {
				t.Fatalf("chip %d: X[%d] = %v != %v", i, j, res.X[j], want.X[j])
			}
		}
		agg.Observe(inproc.Outs[i])
	}

	wantStats := agg.Stats()
	gotAgg, err := cl.Aggregate(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotAgg.Chips != len(inproc.Outs) ||
		gotAgg.Yield != wantStats.Yield ||
		gotAgg.AvgIterations != wantStats.AvgIterations ||
		gotAgg.AvgScanBits != wantStats.AvgScanBits ||
		gotAgg.ConfiguredFrac != wantStats.ConfiguredFrac {
		t.Fatalf("served aggregate diverges:\nserved:     %+v\nin-process: %+v", gotAgg, wantStats)
	}

	// The campaign's period must match the in-process calibration too.
	final, err := cl.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Period != inproc.Engine.Period() {
		t.Fatalf("served period %v != in-process %v", final.Period, inproc.Engine.Period())
	}
}

// An inline-netlist submission must land on the identical numbers: the
// netlist round-trip reconstructs the same circuit content, and the
// registry fingerprints it to the same engine key.
func TestSubmitInlineNetlist(t *testing.T) {
	ctx := context.Background()
	c, err := effitest.Generate(effitest.NewProfile("wire24", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := effitest.WriteNetlist(&sb, c); err != nil {
		t.Fatal(err)
	}

	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100))
	if err != nil {
		t.Fatal(err)
	}
	chips, err := eng.SampleChips(ctx, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Yield(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}

	_, cl := newLoopback(t)
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: sb.String()},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := cl.Aggregate(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Yield != want.Yield || agg.AvgIterations != want.AvgIterations || agg.AvgScanBits != want.AvgScanBits {
		t.Fatalf("netlist-submitted aggregate %+v diverges from in-process %+v", agg, want)
	}
}

// slowBackend stretches every chip so shutdown and cancellation land
// mid-campaign.
type slowBackend struct {
	delay time.Duration
	inner effitest.SimBackend
}

func (s *slowBackend) Open(ch *effitest.Chip, resolution float64) (effitest.Session, error) {
	time.Sleep(s.delay)
	return s.inner.Open(ch, resolution)
}

// submitSlow submits a campaign whose chips dawdle, directly on the
// manager (backends are not expressible on the wire).
func submitSlow(t *testing.T, m *fleet.Manager, chips int) *fleet.Campaign {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile("slowd", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := m.Submit(fleet.CampaignSpec{
		Name:    "slow",
		Circuit: c,
		Options: []effitest.Option{
			effitest.WithPeriodQuantile(0.8413, 100),
			effitest.WithBackend(&slowBackend{delay: 20 * time.Millisecond}),
		},
		ChipSeed: 5, ChipCount: chips,
	})
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

// Shutting the daemon down mid-campaign — with a client attached to the
// result stream — must drain in-flight chips, settle the campaign and
// leak no goroutines.
func TestDaemonShutdownMidCampaignNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	m, err := fleet.NewManager(fleet.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(httpapi.New(m))
	cl := cliFor(ts)

	camp := submitSlow(t, m, 60)
	streamed := make(chan int, 1)
	go func() {
		n := 0
		for _, err := range cl.StreamResults(context.Background(), camp.ID()) {
			if err != nil {
				break
			}
			n++
		}
		streamed <- n
	}()
	for camp.Status().ChipsDone < 2 {
		time.Sleep(time.Millisecond)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The manager settled every chip, so the NDJSON stream ends on its own
	// and carries all 60 results.
	select {
	case n := <-streamed:
		if n != 60 {
			t.Fatalf("stream ended with %d/60 results", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("result stream did not end after daemon shutdown")
	}
	if st := camp.Status(); st.State != fleet.StateCancelled || st.ChipsDone != 60 {
		t.Fatalf("campaign did not settle: state %s, %d/60", st.State, st.ChipsDone)
	}
	// New submissions are refused while draining/closed.
	if _, err := cl.Submit(context.Background(), httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Profile: "s9234"},
		Chips:   httpapi.ChipSpec{Count: 1},
	}); err == nil {
		t.Fatal("submit after shutdown should fail")
	}
	ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked across daemon shutdown: %d -> %d", before, now)
	}
}

// Cancelling over HTTP drains the campaign without wedging the pool.
func TestHTTPCancelDrains(t *testing.T) {
	m, cl := newLoopback(t, fleet.WithWorkers(2))
	camp := submitSlow(t, m, 40)
	ctx := context.Background()

	for camp.Status().ChipsDone < 2 {
		time.Sleep(time.Millisecond)
	}
	if _, err := cl.Cancel(ctx, camp.ID()); err != nil {
		t.Fatal(err)
	}
	st, err := cl.WaitSettled(ctx, camp.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != string(fleet.StateCancelled) || st.ChipsDone != 40 {
		t.Fatalf("cancel did not settle the campaign: %+v", st)
	}
	if st.ChipsFailed == 0 || st.ChipsFailed == 40 {
		t.Fatalf("expected a mix of completed and cancelled chips, got %d/40 failed", st.ChipsFailed)
	}
}

// Plan artifacts round-trip through upload/download byte-identically, and
// a campaign can run from an uploaded plan.
func TestPlanUploadDownloadAndRun(t *testing.T) {
	ctx := context.Background()
	c, err := effitest.Generate(effitest.NewProfile("planup", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100))
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := effitest.EncodePlan(eng.Plan())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := effitest.WriteNetlist(&sb, c); err != nil {
		t.Fatal(err)
	}

	_, cl := newLoopback(t)
	id, err := cl.UploadPlan(ctx, artifact)
	if err != nil {
		t.Fatal(err)
	}
	back, err := cl.DownloadPlan(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(artifact) {
		t.Fatal("downloaded artifact differs from upload")
	}
	// Re-upload is idempotent (content-addressed).
	id2, err := cl.UploadPlan(ctx, artifact)
	if err != nil || id2 != id {
		t.Fatalf("re-upload: id %s vs %s, err %v", id2, id, err)
	}

	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Circuit: httpapi.CircuitSpec{Netlist: sb.String()},
		Config:  httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		Chips:   httpapi.ChipSpec{Seed: 9, Count: 4},
		PlanID:  id,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.WaitSettled(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != string(fleet.StateDone) {
		t.Fatalf("plan-backed campaign state %s (err %s)", final.State, final.Error)
	}

	// Garbage uploads are rejected.
	if _, err := cl.UploadPlan(ctx, []byte("not a plan")); err == nil {
		t.Fatal("invalid plan artifact accepted")
	}
}

// Bad requests surface as client errors, not hung campaigns.
func TestSubmitValidation(t *testing.T) {
	_, cl := newLoopback(t)
	ctx := context.Background()

	cases := []httpapi.CampaignRequest{
		{}, // no circuit
		{Circuit: httpapi.CircuitSpec{Profile: "nope"}},                // unknown profile
		{Circuit: httpapi.CircuitSpec{Profile: "s9234"}},               // no chips
		{Circuit: httpapi.CircuitSpec{Profile: "s9234", Netlist: "x"}}, // ambiguous
		{Circuit: httpapi.CircuitSpec{Profile: "s9234"}, Config: httpapi.ConfigSpec{Align: "bogus"}, Chips: httpapi.ChipSpec{Count: 1}},
	}
	for i, req := range cases {
		if _, err := cl.Submit(ctx, req); err == nil {
			t.Fatalf("case %d: bad request accepted", i)
		}
	}
	if _, err := cl.Status(ctx, "c999999"); err == nil {
		t.Fatal("unknown campaign id should 404")
	}
	var errNotFound error
	_, errNotFound = cl.Aggregate(ctx, "c999999")
	if errNotFound == nil {
		t.Fatal("unknown campaign aggregate should 404")
	}
	if _, err := cl.DownloadPlan(ctx, "deadbeef"); err == nil {
		t.Fatal("unknown plan id should 404")
	}
	if errors.Is(errNotFound, context.Canceled) {
		t.Fatal("unexpected context error")
	}
}
