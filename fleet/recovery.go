package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"effitest"
	"effitest/fleet/journal"
	"effitest/workload"
)

// WithJournal attaches a durable campaign journal: Submit appends each
// campaign's spec before admitting it, workers append every completed chip
// before delivering its result, and campaigns write a terminal settle
// record (compacting their segment) — except during Shutdown, whose
// interruptions are recovery's job (see Shutdown). Pair it with Recover at
// boot to resume what a previous process left unfinished.
//
// The journal's fsync runs under the manager's submit lock for spec
// records and on the worker's goroutine for chip records; with per-chip
// work in the millisecond range and up, the added latency is noise. Append
// failures after admission (disk full mid-campaign) never stop execution:
// the manager keeps running and the failure is surfaced through
// ManagerStats.JournalAppendErrors — durability degrades, results do not.
func WithJournal(j *journal.Journal) ManagerOption {
	return func(m *Manager) error {
		if j == nil {
			return fmt.Errorf("fleet: WithJournal needs a non-nil journal")
		}
		m.journal = j
		return nil
	}
}

// Journal returns the manager's campaign journal (nil without WithJournal).
func (m *Manager) Journal() *journal.Journal { return m.journal }

// RecoverStats is the accounting of one boot-time Recover.
type RecoverStats struct {
	// Campaigns counts non-terminal campaigns re-admitted to the queue;
	// ChipsReplayed counts the journaled chip records handed to them for
	// replay (the per-campaign population cross-check may drop individual
	// records later; ManagerStats.ChipsReplayed counts what actually
	// replayed).
	Campaigns     int
	ChipsReplayed int
	// Settled counts terminal segments left compacted on disk; Skipped
	// counts non-terminal segments that could not be re-admitted — the
	// payload no longer decodes or the fingerprints no longer match — and
	// were left untouched for the operator.
	Settled int
	Skipped int
}

// Recover rebuilds every non-terminal journaled campaign into the queue.
// decode turns a spec record's opaque payload back into a CampaignSpec
// (for the HTTP surface, httpapi.SpecDecoder); a payload that fails to
// decode, or whose circuit/config fingerprints differ from the journaled
// ones, is skipped — recovery must never replay records against a changed
// world, where "deterministic" no longer implies "identical".
//
// Re-admitted campaigns keep their original IDs and idempotency keys (the
// ID counter advances past every journaled ID, settled ones included) and
// bypass the WithMaxQueuedCampaigns bound: they were admitted before the
// restart, and refusing them would strand their journal segments. Chips
// already in the log are emitted into Results and the aggregate without
// re-execution; the determinism of the flow makes the recovered campaign
// bit-identical to an uninterrupted one.
//
// Call Recover once, after NewManager and before serving submissions.
func (m *Manager) Recover(decode func([]byte) (CampaignSpec, error)) (RecoverStats, error) {
	var rs RecoverStats
	if m.journal == nil {
		return rs, errors.New("fleet: Recover needs a journal (WithJournal)")
	}
	if decode == nil {
		return rs, errors.New("fleet: Recover needs a spec decoder")
	}
	recs, err := m.journal.Recover()
	if err != nil {
		return rs, err
	}
	// Advance the ID sequence past every journaled campaign — settled ones
	// included — so new submissions never collide with an existing segment.
	maxID := 0
	for _, rec := range recs {
		var n int
		if _, err := fmt.Sscanf(rec.Spec.ID, "c%d", &n); err == nil && n > maxID {
			maxID = n
		}
	}
	m.mu.Lock()
	if m.nextID < maxID {
		m.nextID = maxID
	}
	m.mu.Unlock()

	for _, rec := range recs {
		if rec.Settled() {
			rs.Settled++
			continue
		}
		spec, err := decode(rec.Spec.Payload)
		if err != nil || spec.Circuit == nil {
			rs.Skipped++
			continue
		}
		if !m.fingerprintsMatch(rec.Spec, spec) {
			rs.Skipped++
			continue
		}
		spec.Key = rec.Spec.Key
		ctx, cancel := context.WithCancel(context.Background())
		c := &Campaign{
			id:        rec.Spec.ID,
			name:      rec.Spec.Name,
			key:       rec.Spec.Key,
			m:         m,
			ctx:       ctx,
			cancel:    cancel,
			state:     StateQueued,
			submitted: time.Now(),
			journaled: true,
			replay:    rec.Chips,
		}
		c.workload = workload.Canonical(spec.Workload)
		if c.workload == workload.TypeClockBinning {
			c.bins = workload.NewBinAgg(spec.BinEdges)
		}
		c.cond = sync.NewCond(&c.mu)

		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			cancel()
			return rs, ErrManagerClosed
		}
		m.backlog.Add(1)
		m.registerLocked(c)
		m.mu.Unlock()

		m.recovered.Add(1)
		rs.Campaigns++
		rs.ChipsReplayed += len(rec.Chips)
		go c.prepare(spec)
	}
	return rs, nil
}

// fingerprintsMatch cross-checks the decoded spec against the journaled
// fingerprints. An absent journaled fingerprint (a decoder that never set
// one) is not checked.
func (m *Manager) fingerprintsMatch(js journal.Spec, spec CampaignSpec) bool {
	if js.CircuitFP != "" {
		fp, err := effitest.CircuitFingerprint(spec.Circuit)
		if err != nil || fp != js.CircuitFP {
			return false
		}
	}
	if js.ConfigFP != "" && effitest.SummarizeOptions(spec.Options...).Fingerprint != js.ConfigFP {
		return false
	}
	return true
}

// journalSpec assembles a campaign's journal spec record — fingerprints
// included, so recovery can refuse a changed world. Returns the zero Spec
// when the manager has no journal.
func (m *Manager) journalSpec(spec CampaignSpec) (journal.Spec, error) {
	if m.journal == nil {
		return journal.Spec{}, nil
	}
	cfp, err := effitest.CircuitFingerprint(spec.Circuit)
	if err != nil {
		return journal.Spec{}, fmt.Errorf("fleet: fingerprinting circuit: %w", err)
	}
	return journal.Spec{
		Key:       spec.Key,
		Name:      spec.Name,
		CircuitFP: cfp,
		ConfigFP:  effitest.SummarizeOptions(spec.Options...).Fingerprint,
		PlanID:    spec.PlanID,
		ChipSeed:  spec.ChipSeed,
		ChipCount: spec.ChipCount,
		ChipFirst: spec.ChipFirst,
		Payload:   spec.JournalPayload,
	}, nil
}

// draining reports whether Shutdown has begun — journal settle records are
// suppressed from then on (see Shutdown's durable contract).
func (m *Manager) draining() bool {
	select {
	case <-m.stop:
		return true
	default:
		return false
	}
}

// deterministicChipErr distinguishes real per-chip failures (deterministic
// properties of the chip, worth journaling and replaying) from scheduling
// artifacts of this process's lifetime (cancellation, shutdown), which
// recovery re-executes.
func deterministicChipErr(err error) bool {
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, ErrManagerClosed) &&
		!errors.Is(err, ErrCampaignCancelled)
}

// journalChip durably appends one completed chip. Failures are counted by
// the journal and do not block delivery.
func (c *Campaign) journalChip(res *effitest.ChipResult) {
	j := c.m.journal
	if j == nil || !c.journaled {
		return
	}
	if res.Err != nil && !deterministicChipErr(res.Err) {
		return
	}
	j.AppendChip(c.id, chipRecord(res))
}

// journalSettle writes the campaign's terminal record and compacts its
// segment, exactly once — unless the manager is draining: Shutdown leaves
// campaigns unsettled in the log so the next boot resumes them.
func (c *Campaign) journalSettle() {
	j := c.m.journal
	if j == nil || !c.journaled || c.m.draining() {
		return
	}
	c.mu.Lock()
	st, err := c.state, c.err
	c.mu.Unlock()
	if !st.Terminal() {
		return
	}
	c.journalSettleOnce.Do(func() {
		msg := ""
		if err != nil {
			msg = err.Error()
		}
		j.Settle(c.id, string(st), msg)
	})
}

// chipRecord serializes a completed chip result for the journal. Durations
// ride along as integer nanoseconds so the replayed aggregate's duration
// sums are exact.
func chipRecord(res *effitest.ChipResult) journal.ChipRecord {
	rec := journal.ChipRecord{Index: res.Index}
	if res.Chip != nil {
		rec.ChipIndex = res.Chip.Index
	}
	if res.Err != nil {
		rec.Error = res.Err.Error()
		return rec
	}
	out := res.Outcome
	rec.Outcome = &journal.Outcome{
		Iterations: out.Iterations,
		ScanBits:   out.ScanBits,
		AlignNS:    int64(out.AlignDuration),
		ConfigNS:   int64(out.ConfigDuration),
		PredictNS:  int64(out.PredictDuration),
		X:          out.X,
		Xi:         out.Xi,
		Configured: out.Configured,
		Passed:     out.Passed,
	}
	if out.Bounds != nil {
		rec.Outcome.BoundsLo = out.Bounds.Lo
		rec.Outcome.BoundsHi = out.Bounds.Hi
	}
	return rec
}

// replayResult rebuilds a ChipResult from its journal record. Inverse of
// chipRecord: every deterministic field round-trips exactly (Go's JSON
// float encoding is lossless), so the replayed result is bit-identical on
// the wire and in the aggregate.
func replayResult(ch *effitest.Chip, rec journal.ChipRecord) *effitest.ChipResult {
	res := &effitest.ChipResult{Index: rec.Index, Chip: ch}
	if rec.Error != "" {
		res.Err = errors.New(rec.Error)
		return res
	}
	o := rec.Outcome
	res.Outcome = &effitest.ChipOutcome{
		Iterations:      o.Iterations,
		ScanBits:        o.ScanBits,
		AlignDuration:   time.Duration(o.AlignNS),
		ConfigDuration:  time.Duration(o.ConfigNS),
		PredictDuration: time.Duration(o.PredictNS),
		X:               o.X,
		Xi:              o.Xi,
		Configured:      o.Configured,
		Passed:          o.Passed,
	}
	if o.BoundsLo != nil || o.BoundsHi != nil {
		res.Outcome.Bounds = &effitest.Bounds{Lo: o.BoundsLo, Hi: o.BoundsHi}
	}
	return res
}
