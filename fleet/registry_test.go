package fleet

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"effitest"
)

func tinyCircuit(t *testing.T, name string, seed int64) *effitest.Circuit {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile(name, 24, 200, 3, 24), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastOpts keeps period calibration cheap in tests.
func fastOpts(extra ...effitest.Option) []effitest.Option {
	return append([]effitest.Option{effitest.WithPeriodQuantile(0.8413, 100)}, extra...)
}

// N concurrent requests for the same (circuit, configuration) must run the
// expensive offline Prepare exactly once and share one engine — the
// single-flight contract the fleet service is built on.
func TestRegistrySingleFlight(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	c := tinyCircuit(t, "sflight", 3)

	const n = 16
	engines := make([]*effitest.Engine, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			engines[i], errs[i] = r.Engine(context.Background(), c, fastOpts()...)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if engines[i] != engines[0] {
			t.Fatalf("request %d got a different engine instance", i)
		}
	}
	st := r.Stats()
	if st.Prepares != 1 {
		t.Fatalf("expected exactly 1 Prepare for %d concurrent requests, got %d", n, st.Prepares)
	}
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("expected 1 miss + %d hits, got %d misses %d hits", n-1, st.Misses, st.Hits)
	}
	if st.Live != 1 {
		t.Fatalf("expected 1 live engine, got %d", st.Live)
	}
}

// Distinct configurations (and distinct circuits) must not share engines.
func TestRegistryKeysSeparateConfigs(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := tinyCircuit(t, "keyed", 3)

	a, err := r.Engine(ctx, c, fastOpts(effitest.WithEpsilon(0.002))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Engine(ctx, c, fastOpts(effitest.WithEpsilon(0.008))...)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different epsilons were served the same engine")
	}
	// Worker count and backend are execution knobs: same engine.
	a2, err := r.Engine(ctx, c, fastOpts(effitest.WithEpsilon(0.002), effitest.WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("worker count changed the registry key")
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("expected 2 live engines, got %d", got)
	}
}

// The LRU bound evicts the least-recently-used engine; with a plan-cache
// directory underneath, re-requesting the evicted key reloads the artifact
// instead of re-running Prepare.
func TestRegistryLRUEvictionWithPlanCache(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(WithCapacity(2), WithPlanCacheDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := tinyCircuit(t, "evict", 3)

	epses := []float64{0.002, 0.004, 0.008}
	for _, e := range epses {
		if _, err := r.Engine(ctx, c, fastOpts(effitest.WithEpsilon(e))...); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Evictions != 1 {
		t.Fatalf("expected 1 eviction at capacity 2, got %d", st.Evictions)
	}
	if st.Live != 2 {
		t.Fatalf("expected 2 live engines, got %d", st.Live)
	}
	if st.Prepares != 3 {
		t.Fatalf("expected 3 cold Prepares, got %d", st.Prepares)
	}

	// The evicted (eps=0.002) key comes back via the on-disk plan cache:
	// a miss, but not a Prepare.
	eng, err := r.Engine(ctx, c, fastOpts(effitest.WithEpsilon(0.002))...)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.PlanCacheHit() {
		t.Fatal("re-request after eviction should have hit the plan cache")
	}
	st = r.Stats()
	if st.Prepares != 3 {
		t.Fatalf("plan-cache reload must not re-run Prepare: %d", st.Prepares)
	}
	if st.Misses != 4 {
		t.Fatalf("expected 4 misses, got %d", st.Misses)
	}
}

// A constructor abandoned by its own caller's cancellation must not poison
// concurrent waiters on the same key: they retry under their own context.
func TestRegistryWaiterSurvivesConstructorCancellation(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	c := tinyCircuit(t, "poison", 3)

	ctxA, cancelA := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := r.Engine(ctxA, c, fastOpts()...)
		aErr <- err
	}()
	// Wait for A's in-flight entry, attach B as a waiter, then cancel A.
	for r.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	bErr := make(chan error, 1)
	go func() {
		_, err := r.Engine(context.Background(), c, fastOpts()...)
		bErr <- err
	}()
	cancelA()

	if err := <-bErr; err != nil {
		t.Fatalf("waiter inherited the constructor's cancellation: %v", err)
	}
	if err := <-aErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("constructor: unexpected error %v", err)
	}
}

// A failed construction must not be cached: the error reaches the caller
// and the key is forgotten so the next request retries.
func TestRegistryConstructionErrorForgotten(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := tinyCircuit(t, "badopt", 3)

	if _, err := r.Engine(ctx, c, effitest.WithEpsilon(-1)); err == nil {
		t.Fatal("expected an option validation error")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("failed construction left %d registry entries", got)
	}
	// Same circuit, valid options: works.
	if _, err := r.Engine(ctx, c, fastOpts()...); err != nil {
		t.Fatal(err)
	}
}

// countingBackend counts session opens (and otherwise simulates).
type countingBackend struct {
	opens int32
	inner effitest.SimBackend
}

func (cb *countingBackend) Open(ch *effitest.Chip, resolution float64) (effitest.Session, error) {
	cb.opens++
	return cb.inner.Open(ch, resolution)
}

// Engines with a custom backend or observer are caller-private: they must
// never be cached (a later caller without the option would inherit the
// transport), and a cached transport-neutral engine must never be served
// to a caller that asked for one.
func TestRegistryBackendAndObserverBypass(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := tinyCircuit(t, "trans", 3)

	shared, err := r.Engine(ctx, c, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{}
	private, err := r.Engine(ctx, c, fastOpts(effitest.WithBackend(cb))...)
	if err != nil {
		t.Fatal(err)
	}
	if private == shared {
		t.Fatal("a WithBackend request was served the shared transport-neutral engine")
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("backend engine was cached: %d entries", got)
	}
	chips, err := private.SampleChips(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := private.RunChipsAll(ctx, chips); err != nil {
		t.Fatal(err)
	}
	if cb.opens == 0 {
		t.Fatal("custom backend never used by the private engine")
	}
	obs, err := r.Engine(ctx, c, fastOpts(effitest.WithObserver(effitest.NewProgressPrinter(nopWriter{})))...)
	if err != nil {
		t.Fatal(err)
	}
	if obs == shared || r.Len() != 1 {
		t.Fatal("a WithObserver engine was shared or cached")
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }

// WithPlan engines bypass the registry: the artifact governs the flow, so
// they are constructed directly and never cached.
func TestRegistryWithPlanBypasses(t *testing.T) {
	r, err := NewRegistry()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := tinyCircuit(t, "bypass", 3)

	base, err := effitest.NewCtx(ctx, c, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := r.Engine(ctx, c, fastOpts(effitest.WithPlan(base.Plan()))...)
	if err != nil {
		t.Fatal(err)
	}
	if eng == base {
		t.Fatal("expected a fresh engine around the supplied plan")
	}
	if got := r.Len(); got != 0 {
		t.Fatalf("WithPlan engine was cached: %d entries", got)
	}
}
