package coord_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
	"effitest/internal/conformance"
	"effitest/internal/yield"
)

// instantClock satisfies coord.Clock without sleeping: it records every
// requested delay so backoff tests assert the schedule, while the whole
// retry/rebalance suite finishes in milliseconds.
type instantClock struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (c *instantClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *instantClock) delays() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// killSwitch fronts a daemon handler with an operator-controlled outage:
// once killed, every request is refused with 503 (a transient error, like
// a crashed daemon's load balancer would serve). Existing connections are
// cut separately via CloseClientConnections.
type killSwitch struct {
	inner http.Handler
	dead  atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		http.Error(w, `{"error":"daemon down"}`, http.StatusServiceUnavailable)
		return
	}
	k.inner.ServeHTTP(w, r)
}

// testNode is one loopback daemon under coordinator control.
type testNode struct {
	m    *fleet.Manager
	ts   *httptest.Server
	kill *killSwitch
}

// die simulates the daemon's host dropping off the network: in-flight
// connections are cut and new ones refused.
func (n *testNode) die() {
	n.kill.dead.Store(true)
	n.ts.CloseClientConnections()
}

// coordToken is the bearer token every test daemon requires: the whole
// retry/rebalance suite runs with auth and rate limiting enabled, pinning
// that the production middleware never perturbs the merged stream.
const coordToken = "coord-test-token"

// startNodes boots n loopback daemons — auth and rate limiting on, like
// production. mk, when non-nil, supplies per-node manager options
// (index-addressed, so one node can carry a test backend).
func startNodes(t testing.TB, n int, mk func(i int) []fleet.ManagerOption) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		var opts []fleet.ManagerOption
		if mk != nil {
			opts = mk(i)
		}
		m, err := fleet.NewManager(opts...)
		if err != nil {
			t.Fatal(err)
		}
		ks := &killSwitch{inner: httpapi.New(m,
			httpapi.WithAuthToken(coordToken),
			httpapi.WithRateLimit(10000, 10000),
		)}
		nodes[i] = &testNode{m: m, ts: httptest.NewServer(ks), kill: ks}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.m.Shutdown(context.Background())
			nd.ts.Close()
		}
	})
	return nodes
}

func urlsOf(nodes []*testNode) []string {
	out := make([]string, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.ts.URL
	}
	return out
}

// tiny64Scenario picks the fast pipeline cell of the conformance matrix —
// the same scenario the golden corpus and the daemon loopback tests pin.
func tiny64Scenario(t *testing.T) conformance.Scenario {
	t.Helper()
	for _, sc := range conformance.DefaultMatrix() {
		if sc.Kind == conformance.KindPipeline && !sc.Heavy &&
			sc.Align.String() == "heuristic" && sc.Eps == 0.002 && sc.Seed == 1 {
			return sc
		}
	}
	t.Fatal("tiny64 pipeline scenario missing from the conformance matrix")
	return conformance.Scenario{}
}

func tiny64Spec(sc conformance.Scenario) coord.Spec {
	return coord.Spec{
		Name: "coord-tiny64",
		Circuit: httpapi.CircuitSpec{
			Custom:  &httpapi.CustomProfile{Name: "tiny64", FFs: 64, Gates: 640, Buffers: 6, Paths: 72},
			GenSeed: sc.GenSeed,
		},
		Config: httpapi.ConfigSpec{
			Align:      "heuristic",
			Eps:        sc.Eps,
			Seed:       sc.Seed,
			Quantile:   sc.Quantile,
			CalibChips: sc.CalibChips,
		},
		Chips: httpapi.ChipSpec{Seed: sc.ChipSeed, Count: sc.Chips},
	}
}

// assertGolden checks the merged stream and summary against the in-process
// whole-population run: every deterministic wire field per chip, the
// aggregate, and the calibrated period — bit-identical, not approximate.
func assertGolden(t *testing.T, inproc *conformance.PipelineResult, got []httpapi.ChipResult, sum coord.Summary) {
	t.Helper()
	if len(got) != len(inproc.Outs) {
		t.Fatalf("merged %d results, in-process produced %d", len(got), len(inproc.Outs))
	}
	var agg yield.Agg
	for i, res := range got {
		if res.Error != "" {
			t.Fatalf("chip %d: merged error %s", i, res.Error)
		}
		want := httpapi.ResultWire(effitest.ChipResult{Index: i, Chip: inproc.Chips[i], Outcome: inproc.Outs[i]})
		if res.Index != want.Index || res.ChipIndex != want.ChipIndex ||
			res.Iterations != want.Iterations || res.ScanBits != want.ScanBits ||
			res.Configured != want.Configured || res.Passed != want.Passed ||
			res.Xi != want.Xi ||
			res.BoundsLoSum != want.BoundsLoSum || res.BoundsHiSum != want.BoundsHiSum {
			t.Fatalf("chip %d: merged result diverges from in-process run:\nmerged:     %+v\nin-process: %+v", i, res, want)
		}
		if len(res.X) != len(want.X) {
			t.Fatalf("chip %d: X length %d != %d", i, len(res.X), len(want.X))
		}
		for j := range res.X {
			if res.X[j] != want.X[j] {
				t.Fatalf("chip %d: X[%d] = %v != %v", i, j, res.X[j], want.X[j])
			}
		}
		agg.Observe(inproc.Outs[i])
	}
	st := agg.Stats()
	if sum.Chips != len(inproc.Outs) ||
		sum.Aggregate.Chips != len(inproc.Outs) ||
		sum.Aggregate.Yield != st.Yield ||
		sum.Aggregate.AvgIterations != st.AvgIterations ||
		sum.Aggregate.AvgScanBits != st.AvgScanBits ||
		sum.Aggregate.ConfiguredFrac != st.ConfiguredFrac {
		t.Fatalf("merged aggregate diverges:\nmerged:     %+v\nin-process: %+v", sum.Aggregate, st)
	}
	if sum.Period != inproc.Engine.Period() {
		t.Fatalf("merged period %v != in-process %v", sum.Period, inproc.Engine.Period())
	}
}

func collectResults(t *testing.T, run *coord.Run) []httpapi.ChipResult {
	t.Helper()
	var out []httpapi.ChipResult
	for res, err := range run.Results(context.Background()) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// A campaign sharded over three healthy daemons must merge back into the
// exact per-chip stream, aggregate, and period of a single in-process
// whole-population run.
func TestCoordinatedRunMatchesInProcessGolden(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	nodes := startNodes(t, 3, nil)
	co, err := coord.New(urlsOf(nodes), coord.WithClock(&instantClock{}), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	run, err := co.Start(ctx, tiny64Spec(sc))
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, run)
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, inproc, got, sum)

	if len(sum.Assignments) != 3 {
		t.Fatalf("expected 3 shard assignments, got %+v", sum.Assignments)
	}
	total := 0
	for _, a := range sum.Assignments {
		total += a.Count
	}
	if total != sc.Chips {
		t.Fatalf("assignments cover %d chips, want %d", total, sc.Chips)
	}
	if sum.Retries != 0 || sum.RebalancedChips != 0 || len(sum.DeadNodes) != 0 {
		t.Fatalf("healthy fleet recorded failures: %+v", sum)
	}
}

// gateBackend lets chips below the cut-off through and blocks every other
// session open until release is closed. Gating by chip identity (not
// arrival order) keeps the stall deterministic under worker scheduling.
// Delegates to the default simulated tester, so the chips that do run are
// numerically untouched.
type gateBackend struct {
	allowBelow int
	release    chan struct{}
}

func (g *gateBackend) Open(ch *effitest.Chip, resolution float64) (effitest.Session, error) {
	if ch.Index >= g.allowBelow {
		<-g.release
	}
	return effitest.SimBackend{}.Open(ch, resolution)
}

// Killing a node mid-campaign must not change a single merged bit: its
// unfinished chips rebalance onto the survivors, already-delivered results
// are not re-emitted, and the merged stream + aggregate still equal the
// single-node golden run exactly.
func TestKillNodeMidCampaignStaysBitIdentical(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	// Node 0 completes exactly chips 0 and 1, then stalls — the classic
	// died-mid-campaign shape. Two workers everywhere keeps the /stats
	// weights equal, so the 16-chip population splits 6/5/5 and node 0's
	// shard is positions [0, 6).
	gate := &gateBackend{allowBelow: 2, release: make(chan struct{})}
	nodes := startNodes(t, 3, func(i int) []fleet.ManagerOption {
		opts := []fleet.ManagerOption{fleet.WithWorkers(2)}
		if i == 0 {
			reg, err := fleet.NewRegistry(fleet.WithEngineOptions(effitest.WithBackend(gate)))
			if err != nil {
				t.Fatal(err)
			}
			opts = append(opts, fleet.WithRegistry(reg))
		}
		return opts
	})
	t.Cleanup(func() {
		select {
		case <-gate.release:
		default:
			close(gate.release)
		}
	})

	clock := &instantClock{}
	co, err := coord.New(urlsOf(nodes), coord.WithClock(clock), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	run, err := co.Start(ctx, tiny64Spec(sc))
	if err != nil {
		t.Fatal(err)
	}
	asg := run.Assignments()
	if len(asg) != 3 || asg[0].Node != nodes[0].ts.URL || asg[0].First != 0 {
		t.Fatalf("unexpected initial placement: %+v", asg)
	}

	// Consume the merged stream in order; once node 0's first two chips
	// have arrived, kill it and let the rebalance produce the rest.
	var got []httpapi.ChipResult
	for res, err := range run.Results(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res)
		if len(got) == 2 {
			nodes[0].die()
			close(gate.release) // unblock node 0's manager for cleanup
		}
	}
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, inproc, got, sum)

	if len(sum.DeadNodes) != 1 || sum.DeadNodes[0] != nodes[0].ts.URL {
		t.Fatalf("dead nodes = %v, want [%s]", sum.DeadNodes, nodes[0].ts.URL)
	}
	// Node 0 owned 6 chips and delivered at least the 2 gated ones before
	// dying; the remainder moved.
	if sum.RebalancedChips == 0 || sum.RebalancedChips > asg[0].Count-2 {
		t.Fatalf("rebalanced %d chips, want in [1, %d]", sum.RebalancedChips, asg[0].Count-2)
	}
	if sum.Retries == 0 {
		t.Fatal("losing a node should have recorded retry backoffs")
	}
	// Rebalanced spans land on survivors only.
	for _, a := range sum.Assignments[3:] {
		if a.Node == nodes[0].ts.URL {
			t.Fatalf("rebalanced span assigned to the dead node: %+v", a)
		}
	}
	// No wall-clock backoff: every sleep went through the fake clock.
	if len(clock.delays()) == 0 {
		t.Fatal("retries bypassed the injected clock")
	}
}

// countingPlans wraps a daemon handler counting plan uploads, to observe
// the coordinator's content-address dedup.
type countingPlans struct {
	inner   http.Handler
	uploads atomic.Int64
}

func (c *countingPlans) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && r.URL.Path == "/v1/plans" {
		c.uploads.Add(1)
	}
	c.inner.ServeHTTP(w, r)
}

// A pre-built plan artifact is pushed to each node exactly once across
// runs (content-address dedup), and plan-backed shards still reproduce the
// golden numbers.
func TestPlanPrePushDedup(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := effitest.EncodePlan(inproc.Engine.Plan())
	if err != nil {
		t.Fatal(err)
	}

	nodes := startNodes(t, 2, nil)
	counters := make([]*countingPlans, len(nodes))
	for i, nd := range nodes {
		counters[i] = &countingPlans{inner: nd.kill.inner}
		nd.kill.inner = counters[i]
	}

	co, err := coord.New(urlsOf(nodes), coord.WithClock(&instantClock{}), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	spec := tiny64Spec(sc)
	spec.Plan = artifact

	for round := 0; round < 2; round++ {
		run, err := co.Start(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		got := collectResults(t, run)
		sum, err := run.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assertGolden(t, inproc, got, sum)
	}
	for i, c := range counters {
		if n := c.uploads.Load(); n != 1 {
			t.Fatalf("node %d received %d plan uploads over two runs, want exactly 1", i, n)
		}
	}
}

// A daemon that answers 503 a few times before recovering is retried with
// the policy's backoff — all through the injected clock — and the run
// still completes.
func TestTransientFailuresRetryThenSucceed(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()

	nodes := startNodes(t, 1, nil)
	flaky := &failFirst{inner: nodes[0].kill.inner, failures: 3}
	nodes[0].kill.inner = flaky

	clock := &instantClock{}
	co, err := coord.New(urlsOf(nodes),
		coord.WithClock(clock),
		coord.WithAuthToken(coordToken),
		coord.WithRetryPolicy(coord.RetryPolicy{MaxAttempts: 5, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := tiny64Spec(sc)
	spec.Chips.Count = 4
	run, err := co.Start(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Chips != 4 || len(sum.DeadNodes) != 0 {
		t.Fatalf("flaky-node run did not settle cleanly: %+v", sum)
	}
	if sum.Retries != 3 {
		t.Fatalf("expected exactly 3 retries (one per injected 503), got %d", sum.Retries)
	}
	// Jitter is zero, so the backoff schedule is the exact doubling ramp.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	got := clock.delays()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

// failFirst refuses its first `failures` requests with 503, then passes
// everything through.
type failFirst struct {
	inner    http.Handler
	mu       sync.Mutex
	failures int
}

func (f *failFirst) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

// With every node down, Start fails with ErrNoHealthyNodes instead of
// hanging or burning wall-clock backoff.
func TestStartAllNodesDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close() // the port now refuses connections

	co, err := coord.New([]string{url},
		coord.WithClock(&instantClock{}),
		coord.WithRetryPolicy(coord.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := tiny64Scenario(t)
	_, err = co.Start(context.Background(), tiny64Spec(sc))
	if !errors.Is(err, coord.ErrNoHealthyNodes) {
		t.Fatalf("Start against a dead fleet: err = %v, want ErrNoHealthyNodes", err)
	}
}

// A spec every node would reject (4xx) fails the run fast — no retries, no
// rebalancing cascade.
func TestPermanentRejectionFailsFast(t *testing.T) {
	nodes := startNodes(t, 1, nil)
	clock := &instantClock{}
	co, err := coord.New(urlsOf(nodes), coord.WithClock(clock), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	sc := tiny64Scenario(t)
	spec := tiny64Spec(sc)
	spec.Config.Align = "bogus"
	run, err := co.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err) // health passes; the rejection surfaces on submit
	}
	sum, err := run.Wait(context.Background())
	if err == nil {
		t.Fatal("a universally-rejected spec should fail the run")
	}
	if sum.Retries != 0 || len(clock.delays()) != 0 {
		t.Fatalf("permanent rejection was retried: %d retries, sleeps %v", sum.Retries, clock.delays())
	}
	// The merged stream reports the same failure instead of hanging.
	for _, rerr := range run.Results(context.Background()) {
		if rerr == nil {
			t.Fatal("failed run yielded a result")
		}
	}
}

// Start validates the spec before touching the fleet.
func TestStartSpecValidation(t *testing.T) {
	co, err := coord.New([]string{"http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co.Start(context.Background(), coord.Spec{Chips: httpapi.ChipSpec{Count: 0}}); err == nil {
		t.Fatal("zero chip count accepted")
	}
	if _, err := co.Start(context.Background(), coord.Spec{Chips: httpapi.ChipSpec{Count: 4, First: -1}}); err == nil {
		t.Fatal("negative range start accepted")
	}
	if _, err := coord.New(nil); err == nil {
		t.Fatal("empty node pool accepted")
	}
}
