package coord_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"effitest"
	"effitest/fleet/coord"
	"effitest/internal/conformance"
)

// BenchmarkCoordinatorThroughput measures end-to-end coordinated campaign
// throughput (chips/s) against 1, 2 and 4 loopback daemons: shard
// placement, HTTP submit, NDJSON streaming, in-order merge and aggregate
// fold included. The plan artifact is pre-pushed so the numbers track
// execution throughput, not per-run Prepare cost; scaling across the node
// counts shows what the sharding layer buys on one machine.
func BenchmarkCoordinatorThroughput(b *testing.B) {
	var sc conformance.Scenario
	found := false
	for _, s := range conformance.DefaultMatrix() {
		if s.Kind == conformance.KindPipeline && !s.Heavy &&
			s.Align.String() == "heuristic" && s.Eps == 0.002 && s.Seed == 1 {
			sc, found = s, true
			break
		}
	}
	if !found {
		b.Fatal("tiny64 pipeline scenario missing from the conformance matrix")
	}
	inproc, err := conformance.RunPipeline(context.Background(), sc)
	if err != nil {
		b.Fatal(err)
	}
	artifact, err := effitest.EncodePlan(inproc.Engine.Plan())
	if err != nil {
		b.Fatal(err)
	}

	const chipsPerRun = 64
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			nodes := startNodes(b, n, nil)
			co, err := coord.New(urlsOf(nodes), coord.WithAuthToken(coordToken))
			if err != nil {
				b.Fatal(err)
			}
			spec := tiny64Spec(sc)
			spec.Chips.Count = chipsPerRun
			spec.Plan = artifact
			ctx := context.Background()

			b.ResetTimer()
			start := time.Now()
			chips := 0
			for i := 0; i < b.N; i++ {
				run, err := co.Start(ctx, spec)
				if err != nil {
					b.Fatal(err)
				}
				sum, err := run.Wait(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if sum.Chips != chipsPerRun {
					b.Fatalf("run merged %d chips, want %d", sum.Chips, chipsPerRun)
				}
				chips += sum.Chips
			}
			b.ReportMetric(float64(chips)/time.Since(start).Seconds(), "chips/s")
		})
	}
}
