package coord

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitByWeightBasics(t *testing.T) {
	cases := []struct {
		total int
		w     []float64
		want  []int
	}{
		{16, []float64{1, 1, 1}, []int{6, 5, 5}},
		{10, []float64{1, 1}, []int{5, 5}},
		{10, []float64{3, 1}, []int{8, 2}},      // clear proportional split
		{1, []float64{1, 1, 1}, []int{1, 0, 0}}, // tie → lowest index
		{0, []float64{1, 1}, []int{0, 0}},
		{5, []float64{0, 0}, []int{3, 2}},          // all-zero → equal
		{6, []float64{math.NaN(), 1}, []int{0, 6}}, // NaN counts as zero
		{6, []float64{-2, 1, 1}, []int{0, 3, 3}},   // negative counts as zero
		{7, nil, nil},                              // no buckets
		{4, []float64{1, 0, 1, 0}, []int{2, 0, 2, 0}},
	}
	for i, c := range cases {
		got := splitByWeight(c.total, c.w)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v, want %v", i, got, c.want)
			}
		}
	}
}

// Property: the split always sums to total, is non-negative, and is
// deterministic in its inputs.
func TestSplitByWeightProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(8)
		total := rng.Intn(2000)
		w := make([]float64, n)
		for i := range w {
			switch rng.Intn(5) {
			case 0:
				w[i] = 0
			case 1:
				w[i] = -rng.Float64()
			default:
				w[i] = rng.Float64() * 10
			}
		}
		got := splitByWeight(total, w)
		sum := 0
		for _, c := range got {
			if c < 0 {
				t.Fatalf("negative count in %v for total %d, w %v", got, total, w)
			}
			sum += c
		}
		if sum != total {
			t.Fatalf("split %v sums to %d, want %d (w %v)", got, sum, total, w)
		}
		again := splitByWeight(total, w)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("split not deterministic: %v vs %v", got, again)
			}
		}
	}
}

func TestGaps(t *testing.T) {
	done := func(set ...int) func(int) bool {
		m := map[int]bool{}
		for _, p := range set {
			m[p] = true
		}
		return func(p int) bool { return m[p] }
	}
	cases := []struct {
		first, count int
		done         func(int) bool
		want         []span
	}{
		{0, 5, done(), []span{{0, 5}}},
		{0, 5, done(0, 1, 2, 3, 4), nil},
		{0, 5, done(0, 1), []span{{2, 3}}},
		{0, 5, done(2), []span{{0, 2}, {3, 2}}},
		{0, 5, done(0, 2, 4), []span{{1, 1}, {3, 1}}},
		{10, 4, done(11), []span{{10, 1}, {12, 2}}},
		{3, 0, done(), nil},
	}
	for i, c := range cases {
		got := gaps(c.first, c.count, c.done)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: gaps = %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: gaps = %v, want %v", i, got, c.want)
			}
		}
	}
}
