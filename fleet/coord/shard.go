package coord

// splitByWeight partitions total units into len(w) contiguous counts
// proportional to the weights, by largest remainder with ties broken by
// lowest index — fully deterministic in (total, w). Non-positive and NaN
// weights count as zero; if every weight is zero, the split is equal.
func splitByWeight(total int, w []float64) []int {
	n := len(w)
	counts := make([]int, n)
	if n == 0 || total <= 0 {
		return counts
	}
	sum := 0.0
	for _, wi := range w {
		if wi > 0 { // NaN fails this comparison too
			sum += wi
		}
	}
	if sum <= 0 {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		sum = float64(n)
	}
	assigned := 0
	rem := make([]float64, n)
	for i, wi := range w {
		if wi < 0 || wi != wi {
			wi = 0
		}
		exact := float64(total) * wi / sum
		counts[i] = int(exact)
		rem[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if rem[i] > rem[best] {
				best = i
			}
		}
		counts[best]++
		rem[best] = -1
		assigned++
	}
	return counts
}

// span is a contiguous range of population positions [First, First+Count).
type span struct {
	First, Count int
}

// gaps decomposes the unfinished positions of [first, first+count) into
// maximal contiguous spans. done reports whether a position already has an
// accepted result.
func gaps(first, count int, done func(pos int) bool) []span {
	var out []span
	for pos := first; pos < first+count; {
		if done(pos) {
			pos++
			continue
		}
		start := pos
		for pos < first+count && !done(pos) {
			pos++
		}
		out = append(out, span{First: start, Count: pos - start})
	}
	return out
}
