package coord_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"effitest/fleet/client"
	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
	"effitest/workload"
)

// runSingleNode runs one whole-population campaign on a lone daemon and
// returns its served aggregate — the reference every fleet-sharded run of
// the same spec must reproduce bit-for-bit.
func runSingleNode(t *testing.T, spec coord.Spec) httpapi.Aggregate {
	t.Helper()
	ctx := context.Background()
	nodes := startNodes(t, 1, nil)
	cl := client.New(nodes[0].ts.URL, client.WithHTTPClient(nodes[0].ts.Client()), client.WithToken(coordToken))
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Name:     spec.Name,
		Circuit:  spec.Circuit,
		Config:   spec.Config,
		Chips:    spec.Chips,
		Workload: spec.Workload,
		BinEdges: spec.BinEdges,
		Drift:    spec.Drift,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := cl.WaitSettled(ctx, st.ID); err != nil || fin.State != "done" {
		t.Fatalf("single-node campaign did not settle done: %+v, err %v", fin, err)
	}
	agg, err := cl.Aggregate(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return agg
}

// binningSpec builds a clock-binning fleet spec whose edges actually split
// the tiny64 population: the edges are quantiles of the achieved periods of
// a probe run, not hardcoded magnitudes.
func binningSpec(t *testing.T) coord.Spec {
	t.Helper()
	sc := tiny64Scenario(t)
	spec := tiny64Spec(sc)

	ctx := context.Background()
	nodes := startNodes(t, 1, nil)
	cl := client.New(nodes[0].ts.URL, client.WithHTTPClient(nodes[0].ts.Client()), client.WithToken(coordToken))
	st, err := cl.Submit(ctx, httpapi.CampaignRequest{
		Name: "probe", Circuit: spec.Circuit, Config: spec.Config, Chips: spec.Chips,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WaitSettled(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Results(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var achieved []float64
	for _, r := range res {
		if r.Configured {
			achieved = append(achieved, r.AchievedPeriod)
		}
	}
	sort.Float64s(achieved)
	if len(achieved) < 4 || achieved[0] == achieved[len(achieved)-1] {
		t.Fatalf("probe population too degenerate to bin: %v", achieved)
	}
	lo, hi := achieved[len(achieved)/3], achieved[2*len(achieved)/3]
	if lo == hi {
		hi = achieved[len(achieved)-1]
	}
	spec.Name = "coord-binning"
	spec.Workload = workload.TypeClockBinning
	spec.BinEdges = []float64{lo, hi}
	return spec
}

// A clock-binning campaign sharded over three daemons must merge into the
// exact histogram a single daemon computes over the whole population: the
// coordinator folds the wire's achieved periods, the daemon folds its local
// chips, and both classify the identical float64s.
func TestShardedBinningMatchesSingleNode(t *testing.T) {
	spec := binningSpec(t)
	ref := runSingleNode(t, spec)

	nodes := startNodes(t, 3, nil)
	co, err := coord.New(urlsOf(nodes), coord.WithClock(&instantClock{}), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run, err := co.Start(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, run)
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Aggregate, ref) {
		t.Fatalf("sharded binning aggregate diverges:\nsharded:     %+v\nsingle-node: %+v", sum.Aggregate, ref)
	}
	if len(sum.Aggregate.Bins) != 2 {
		t.Fatalf("merged histogram has %d bins, want 2", len(sum.Aggregate.Bins))
	}
	total := sum.Aggregate.Unbinned
	mass := false
	for _, b := range sum.Aggregate.Bins {
		total += b.Count
		if b.Count > 0 {
			mass = true
		}
	}
	if total != sum.Aggregate.Chips {
		t.Fatalf("bins+unbinned = %d, chips = %d", total, sum.Aggregate.Chips)
	}
	if !mass {
		t.Fatal("quantile-derived edges put every chip in unbinned — the split is vacuous")
	}
}

// An aging-drift campaign sharded across the fleet applies the identical
// per-chip transform on every node (drift is a pure function of the sampled
// chip), so the merged aggregate equals the single-node run exactly.
func TestShardedAgingDriftMatchesSingleNode(t *testing.T) {
	sc := tiny64Scenario(t)
	spec := tiny64Spec(sc)
	spec.Name = "coord-aging"
	spec.Workload = workload.TypeAgingDrift
	spec.Drift = 0.25
	ref := runSingleNode(t, spec)

	nodes := startNodes(t, 3, nil)
	co, err := coord.New(urlsOf(nodes), coord.WithClock(&instantClock{}), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run, err := co.Start(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, run)
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Aggregate, ref) {
		t.Fatalf("sharded aging aggregate diverges:\nsharded:     %+v\nsingle-node: %+v", sum.Aggregate, ref)
	}
}

// The coordinator refuses malformed workload specs before touching a node.
func TestCoordWorkloadValidation(t *testing.T) {
	sc := tiny64Scenario(t)
	co, err := coord.New([]string{"http://127.0.0.1:1"}, coord.WithClock(&instantClock{}))
	if err != nil {
		t.Fatal(err)
	}
	for i, mutate := range []func(*coord.Spec){
		func(s *coord.Spec) { s.Workload = "burn-in" },
		func(s *coord.Spec) { s.Workload = workload.TypeClockBinning },
		func(s *coord.Spec) { s.BinEdges = []float64{1, 2} },
		func(s *coord.Spec) { s.Drift = 0.1 },
	} {
		spec := tiny64Spec(sc)
		mutate(&spec)
		if _, err := co.Start(context.Background(), spec); err == nil {
			t.Errorf("bad workload spec %d accepted", i)
		}
	}
}
