package coord

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"

	"effitest/fleet/client"
	"effitest/fleet/httpapi"
	"effitest/workload"
)

// ErrNoHealthyNodes is returned (or recorded as a Run failure) when every
// daemon in the pool is unreachable and chips remain unplaced.
var ErrNoHealthyNodes = errors.New("coord: no healthy nodes")

// node is one effitestd daemon in the coordinator's pool.
type node struct {
	url string
	cl  *client.Client

	mu    sync.Mutex
	dead  bool
	plans map[string]bool // plan content ids known to be stored on the node
}

func (n *node) alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.dead
}

func (n *node) setDead(dead bool) {
	n.mu.Lock()
	n.dead = dead
	n.mu.Unlock()
}

// hasPlan reports (and claims, when claim is set) the pushed marker for a
// plan id, so concurrent runs upload an artifact at most once per node.
func (n *node) hasPlan(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.plans[id]
}

func (n *node) markPlan(id string) {
	n.mu.Lock()
	n.plans[id] = true
	n.mu.Unlock()
}

// Coordinator drives one logical campaign across a pool of effitestd
// daemons: it shards the chip population, pre-pushes the plan artifact,
// streams per-shard results concurrently, merges them back into input
// order with exactly-once emission, and retries/rebalances around node
// failure. One Coordinator can run many campaigns; its node pool and
// pushed-plan bookkeeping are shared across runs.
type Coordinator struct {
	nodes  []*node
	clock  Clock
	policy RetryPolicy
	hc     *http.Client
	token  string

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Option configures a Coordinator.
type Option func(*Coordinator) error

// WithClock substitutes the sleep source used for retry backoff. Tests
// inject a fake clock so the retry/rebalance suite completes in
// milliseconds without real sleeps.
func WithClock(c Clock) Option {
	return func(co *Coordinator) error {
		if c == nil {
			return fmt.Errorf("coord: nil clock")
		}
		co.clock = c
		return nil
	}
}

// WithRetryPolicy replaces the default backoff shape (see
// DefaultRetryPolicy).
func WithRetryPolicy(p RetryPolicy) Option {
	return func(co *Coordinator) error {
		if err := p.validate(); err != nil {
			return err
		}
		co.policy = p
		return nil
	}
}

// WithHTTPClient substitutes the http.Client used to talk to every node
// (timeouts, test doubles). The default client has no overall timeout —
// result streams are long-lived by design.
func WithHTTPClient(hc *http.Client) Option {
	return func(co *Coordinator) error {
		co.hc = hc
		return nil
	}
}

// WithAuthToken sends the bearer token on every request to every node, for
// fleets whose daemons run with auth enabled (effitestd -auth-token). The
// pool shares one credential: effitestd auth is daemon-wide, not per-user.
func WithAuthToken(token string) Option {
	return func(co *Coordinator) error {
		co.token = token
		return nil
	}
}

// WithJitterSeed seeds the deterministic jitter source (default seed 1).
// Two coordinators with the same seed, policy and failure sequence sleep
// the exact same backoff schedule — which is how the backoff tests assert
// delays bit-exactly.
func WithJitterSeed(seed int64) Option {
	return func(co *Coordinator) error {
		co.rng = rand.New(rand.NewSource(seed))
		return nil
	}
}

// New builds a coordinator over the daemons at the given base URLs (e.g.
// "http://10.0.0.1:8087"). At least one node is required; health is probed
// per run, not here, so a coordinator can be built while its fleet boots.
func New(nodeURLs []string, opts ...Option) (*Coordinator, error) {
	if len(nodeURLs) == 0 {
		return nil, fmt.Errorf("coord: at least one node URL is required")
	}
	co := &Coordinator{
		clock:  realClock{},
		policy: DefaultRetryPolicy(),
		rng:    rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		if err := o(co); err != nil {
			return nil, err
		}
	}
	for _, u := range nodeURLs {
		var clOpts []client.Option
		if co.hc != nil {
			clOpts = append(clOpts, client.WithHTTPClient(co.hc))
		}
		if co.token != "" {
			clOpts = append(clOpts, client.WithToken(co.token))
		}
		co.nodes = append(co.nodes, &node{
			url:   u,
			cl:    client.New(u, clOpts...),
			plans: map[string]bool{},
		})
	}
	return co, nil
}

// Nodes returns the pool's base URLs in configuration order.
func (co *Coordinator) Nodes() []string {
	out := make([]string, len(co.nodes))
	for i, n := range co.nodes {
		out[i] = n.url
	}
	return out
}

// healthy snapshots the currently-alive nodes in configuration order.
func (co *Coordinator) healthy() []*node {
	var out []*node
	for _, n := range co.nodes {
		if n.alive() {
			out = append(out, n)
		}
	}
	return out
}

// Spec names one logical campaign to run across the fleet: the same
// circuit/config/chips document a single daemon takes, plus an optional
// pre-built plan artifact to pre-push.
type Spec struct {
	// Name labels the campaign; shard submissions carry "name[first+count)".
	Name string
	// Circuit and Config are the standard wire specs (see httpapi).
	Circuit httpapi.CircuitSpec
	Config  httpapi.ConfigSpec
	// Chips is the logical population: Count chips sampled in (Seed, index)
	// starting at First. The coordinator shards this range; every node sees
	// the same Seed with a different sub-range, so per-chip numbers are
	// bit-identical to one whole-range campaign.
	Chips httpapi.ChipSpec
	// Workload selects the campaign type (package workload): effitest
	// (default), clock-binning or aging-drift. Every shard runs the same
	// workload; binning histograms and drift transforms fold exactly, so
	// the merged summary is bit-identical to a single-node campaign.
	Workload string
	// BinEdges are the period bin edges of a clock-binning campaign.
	BinEdges []float64
	// Drift is the aging-drift delay scale factor minus one.
	Drift float64
	// Plan, when non-nil, is a serialized plan artifact (effitest.EncodePlan)
	// pre-pushed to every healthy node before sharding. Artifacts are
	// content-addressed — the id is the SHA-256 of the bytes, which covers
	// the circuit and config fingerprints baked into the plan — so a node
	// that already holds the artifact (checked via the plan-list endpoint)
	// is not re-uploaded, within this coordinator or across its runs.
	Plan []byte
}

// Start validates the spec, probes node health, pre-pushes the plan
// artifact, plans shards by node load (least-loaded placement via /stats)
// and launches one shard runner per node. It returns once every shard is
// submitted to the merge machinery; consume the run with Results and Wait.
// ctx governs the entire run — cancelling it aborts streaming and retries.
func (co *Coordinator) Start(ctx context.Context, spec Spec) (*Run, error) {
	if spec.Chips.Count <= 0 {
		return nil, fmt.Errorf("coord: campaign needs a positive chip count")
	}
	if spec.Chips.First < 0 {
		return nil, fmt.Errorf("coord: chip range start must be non-negative, got %d", spec.Chips.First)
	}
	if err := workload.Check(spec.Workload, spec.BinEdges, spec.Drift); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}

	r := newRun(co, ctx, spec)

	// Probe every node (reviving previously-dead ones that answer), in
	// parallel: a dead node costs MaxAttempts backoffs, and that must not
	// serialize against the healthy nodes' probes.
	var wg sync.WaitGroup
	for _, n := range co.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			err := r.retry(ctx, func(ctx context.Context) error {
				_, err := n.cl.Health(ctx)
				return err
			})
			n.setDead(err != nil)
		}(n)
	}
	wg.Wait()
	healthy := co.healthy()
	if len(healthy) == 0 {
		r.cancel()
		return nil, fmt.Errorf("%w: all %d probes failed", ErrNoHealthyNodes, len(co.nodes))
	}

	// Pre-push the plan artifact to every healthy node, dedup'd by content
	// address: list-then-upload via the existing plan endpoints, remembered
	// per node across runs. A node that cannot take the plan is dropped.
	if spec.Plan != nil {
		id := planID(spec.Plan)
		r.planID = id
		for _, n := range healthy {
			if err := co.pushPlan(ctx, r, n, id, spec.Plan); err != nil {
				n.setDead(true)
			}
		}
		if healthy = co.healthy(); len(healthy) == 0 {
			r.cancel()
			return nil, fmt.Errorf("%w: plan push failed on every node", ErrNoHealthyNodes)
		}
	}

	// Least-loaded placement: weight each node by its worker count over its
	// chip backlog (from /stats; a node whose stats probe fails gets a
	// neutral weight rather than being dropped — /healthz already passed).
	weights := make([]float64, len(healthy))
	for i, n := range healthy {
		weights[i] = 1
		if st, err := n.cl.Stats(ctx); err == nil {
			workers := max(st.Workers, 1)
			weights[i] = float64(workers) / float64(1+st.ChipsPending+st.ChipsInFlight)
		}
	}
	counts := splitByWeight(spec.Chips.Count, weights)
	pos := 0
	for i, n := range healthy {
		if counts[i] == 0 {
			continue
		}
		r.launch(n, pos, counts[i])
		pos += counts[i]
	}
	go r.finalize()
	return r, nil
}

// pushPlan uploads the artifact to one node unless the node is already
// known (or listed) to hold it.
func (co *Coordinator) pushPlan(ctx context.Context, r *Run, n *node, id string, artifact []byte) error {
	if n.hasPlan(id) {
		return nil
	}
	err := r.retry(ctx, func(ctx context.Context) error {
		refs, err := n.cl.Plans(ctx)
		if err != nil {
			return err
		}
		for _, ref := range refs {
			if ref.ID == id {
				return nil
			}
		}
		got, err := n.cl.UploadPlan(ctx, artifact)
		if err != nil {
			return err
		}
		if got != id {
			return fmt.Errorf("coord: node %s stored plan as %s, expected %s", n.url, got, id)
		}
		return nil
	})
	if err == nil {
		n.markPlan(id)
	}
	return err
}

// planID is the content address the daemon's plan store assigns: the
// SHA-256 of the artifact bytes.
func planID(artifact []byte) string {
	sum := sha256.Sum256(artifact)
	return hex.EncodeToString(sum[:])
}
