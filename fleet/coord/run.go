package coord

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"slices"
	"sort"
	"sync"

	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/httpapi"
	"effitest/internal/yield"
	"effitest/workload"
)

// Assignment records one shard handed to one node: population positions
// [First, First+Count) relative to the run (0-based even when the spec's
// Chips.First is non-zero). Rebalanced spans appear as additional
// assignments on surviving nodes.
type Assignment struct {
	Node  string
	First int
	Count int
}

// Summary is the final accounting of a coordinated run.
type Summary struct {
	// Chips is the number of merged results emitted (== the spec count on
	// success).
	Chips int
	// Aggregate is the merged per-shard aggregate, folded through
	// yield.Agg's exact integer sums — bit-identical to the aggregate a
	// single daemon (or in-process Engine.RunChips) would have served for
	// the whole population.
	Aggregate httpapi.Aggregate
	// Period is the calibrated test period, identical on every shard (a
	// mismatch fails the run: it would mean the fleet is nondeterministic).
	Period float64
	// Retries counts backoff sleeps performed across all operations.
	Retries int
	// RebalancedChips counts chips moved off dead nodes onto survivors.
	RebalancedChips int
	// Assignments lists every shard placement, including rebalanced spans,
	// in launch order.
	Assignments []Assignment
	// DeadNodes lists the URLs of nodes lost during the run, sorted.
	DeadNodes []string
}

// Run is one in-flight coordinated campaign. Consume the merged result
// stream with Results (optional) and the final accounting with Wait.
type Run struct {
	co     *Coordinator
	spec   Spec
	total  int
	base   int // global population offset (spec.Chips.First)
	planID string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu          sync.Mutex
	cond        *sync.Cond
	results     []*httpapi.ChipResult // by run position; nil = pending
	accepted    int
	running     int // live shard runners
	aggs        []yield.Agg
	bins        *workload.BinAgg // clock-binning histogram (nil otherwise)
	retries     int
	rebalanced  int
	assignments []Assignment
	deadNodes   map[string]bool
	period      float64
	periodSet   bool
	failure     error
	done        bool
}

func newRun(co *Coordinator, ctx context.Context, spec Spec) *Run {
	rctx, cancel := context.WithCancel(ctx)
	r := &Run{
		co:        co,
		spec:      spec,
		total:     spec.Chips.Count,
		base:      spec.Chips.First,
		ctx:       rctx,
		cancel:    cancel,
		results:   make([]*httpapi.ChipResult, spec.Chips.Count),
		deadNodes: map[string]bool{},
	}
	if workload.Canonical(spec.Workload) == workload.TypeClockBinning {
		r.bins = workload.NewBinAgg(spec.BinEdges)
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Total returns the population size of the run.
func (r *Run) Total() int { return r.total }

// Assignments snapshots the shard placements so far (rebalanced spans
// appear as they are launched).
func (r *Run) Assignments() []Assignment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return slices.Clone(r.assignments)
}

// retry runs op, sleeping the policy's backoff between transient failures
// (client.IsTransient), up to MaxAttempts tries. A non-transient error, a
// cancelled context or success returns immediately. When the failure
// carries a Retry-After hint (a 429 from admission or rate-limit control),
// the sleep is at least that long — the daemon said exactly when capacity
// returns, so retrying at the policy's base rate would just burn attempts.
func (r *Run) retry(ctx context.Context, op func(context.Context) error) error {
	for attempt := 0; ; attempt++ {
		err := op(ctx)
		if err == nil || !client.IsTransient(err) || attempt+1 >= r.co.policy.MaxAttempts {
			return err
		}
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
		d := max(r.co.policy.Delay(attempt, r.co.jitterU()), client.RetryAfter(err))
		if serr := r.co.clock.Sleep(ctx, d); serr != nil {
			return serr
		}
	}
}

// launch records an assignment and starts its shard runner.
func (r *Run) launch(n *node, pos, count int) {
	r.mu.Lock()
	r.assignments = append(r.assignments, Assignment{Node: n.url, First: pos, Count: count})
	r.running++
	r.mu.Unlock()
	r.wg.Add(1)
	go r.runShard(n, pos, count)
}

// accept records one final result at a run position, exactly once: a
// duplicate (late stream delivery racing a rebalanced re-run) is dropped.
// Error-free results fold into the runner's shard aggregate under the same
// lock, so the dedup and the fold are atomic.
func (r *Run) accept(pos int, res httpapi.ChipResult, agg *yield.Agg) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.results[pos] != nil {
		return false
	}
	res.Index = pos
	r.results[pos] = &res
	r.accepted++
	if res.Error == "" {
		agg.Chips++
		agg.Iterations += res.Iterations
		agg.ScanBits += res.ScanBits
		if res.Configured {
			agg.Configured++
		}
		if res.Passed {
			agg.Passed++
		}
		// Clock binning folds here, exactly once per position: the daemon
		// computed the chip's achieved period from the same chip and the
		// same configured vector the coordinator would have, so classifying
		// the wire float64 reproduces the daemon-side histogram bit for bit.
		if r.bins != nil {
			if res.Configured {
				r.bins.Observe(res.AchievedPeriod)
			} else {
				r.bins.ObserveUnbinned()
			}
		}
	}
	if r.accepted == r.total {
		r.done = true
	}
	r.cond.Broadcast()
	return true
}

// fail records the first fatal error and aborts the run.
func (r *Run) fail(err error) {
	r.mu.Lock()
	if r.failure == nil && !r.done {
		r.failure = err
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	r.cancel()
}

// observePeriod cross-checks the calibrated period across shards: every
// node must land on the identical float, or the fleet is not executing the
// deterministic flow the merge relies on.
func (r *Run) observePeriod(n *node, p float64) {
	if p == 0 {
		return
	}
	r.mu.Lock()
	if !r.periodSet {
		r.period, r.periodSet = p, true
		r.mu.Unlock()
		return
	}
	mismatch := r.period != p
	want := r.period
	r.mu.Unlock()
	if mismatch {
		r.fail(fmt.Errorf("coord: node %s calibrated period %v, other shards %v — fleet is nondeterministic", n.url, p, want))
	}
}

// shardKey derives the deterministic idempotency key one shard submits
// under: the SHA-256 of the request document itself (hashed before the
// key is set), so the same shard of the same spec always re-submits as
// the same campaign. A journalled daemon answers a duplicate key with the
// existing — possibly recovered — campaign instead of starting a second
// execution, which is what makes re-adoption after a node restart safe.
// Identical shards of identical specs across separate coordinator runs
// also collide, deliberately: the flow is deterministic, so the daemon's
// prior campaign holds the exact results a re-execution would produce.
func shardKey(req httpapi.CampaignRequest) string {
	b, _ := json.Marshal(req)
	sum := sha256.Sum256(b)
	return "coord-" + hex.EncodeToString(sum[:16])
}

// isNotFound reports whether err is the daemon answering that the
// campaign ID does not exist — the signature of a node that restarted
// without a journal (or lost the campaign's segment) while we streamed.
func isNotFound(err error) bool {
	var aerr *client.APIError
	return errors.As(err, &aerr) && aerr.StatusCode == http.StatusNotFound
}

// runShard executes one assignment: submit the shard range, stream its
// NDJSON results (resuming across transient breaks), and either finish it
// or hand its unfinished chips to nodeLost for rebalancing. A node that
// answers but has forgotten the campaign ID (it restarted) is re-adopted
// in place: the shard re-submits under its idempotency key, picking up
// the recovered campaign on a journalled daemon or starting the shard
// over on a bare one — the merge's dedup keeps every chip exactly-once
// either way.
func (r *Run) runShard(n *node, pos, count int) {
	var agg yield.Agg
	defer func() {
		r.mu.Lock()
		r.aggs = append(r.aggs, agg)
		r.running--
		r.cond.Broadcast()
		r.mu.Unlock()
		r.wg.Done()
	}()

	ctx := r.ctx
	req := httpapi.CampaignRequest{
		Name:     fmt.Sprintf("%s[%d+%d)", r.spec.Name, r.base+pos, count),
		Circuit:  r.spec.Circuit,
		Config:   r.spec.Config,
		Chips:    httpapi.ChipSpec{Seed: r.spec.Chips.Seed, Count: count, First: r.base + pos},
		Workload: r.spec.Workload,
		BinEdges: r.spec.BinEdges,
		Drift:    r.spec.Drift,
		PlanID:   r.planID,
	}
	req.Key = shardKey(req)
	var st httpapi.CampaignStatus
	submit := func() error {
		return r.retry(ctx, func(ctx context.Context) error {
			var e error
			st, e = n.cl.Submit(ctx, req)
			return e
		})
	}
	if err := submit(); err != nil {
		if ctx.Err() != nil {
			return
		}
		// A 4xx (other than a node-specific missing plan) means the spec
		// itself is bad — every node would reject it the same way.
		var aerr *client.APIError
		if errors.As(err, &aerr) && aerr.StatusCode < 500 && aerr.StatusCode != http.StatusNotFound && aerr.StatusCode != http.StatusTooManyRequests {
			r.fail(fmt.Errorf("coord: node %s rejected shard submit: %w", n.url, err))
			return
		}
		r.nodeLost(n, pos, count, err)
		return
	}
	id := st.ID

	// held parks per-chip *errored* results by shard-local index until the
	// campaign's terminal state is known: on a done campaign they are final
	// (the same deterministic error a single-node run would report); on a
	// cancelled one they are scheduling artifacts and the chips rerun
	// elsewhere.
	held := map[int]httpapi.ChipResult{}
	received := 0
	stall := 0

	// readopt re-submits the shard under its unchanged idempotency key
	// after the node stopped recognizing the campaign ID. Stream progress
	// resets — the adopted campaign may be a fresh execution with its own
	// result sequence — and already-accepted chips dedup in accept.
	readopt := func(cause error) bool {
		if err := submit(); err != nil {
			if ctx.Err() == nil {
				r.nodeLost(n, pos, count, fmt.Errorf("re-adopting shard after %v: %w", cause, err))
			}
			return false
		}
		id = st.ID
		received = 0
		held = map[int]httpapi.ChipResult{}
		return true
	}
	for {
		if ctx.Err() != nil {
			return
		}
		progressed := false
		var streamErr error
		for res, err := range n.cl.StreamResultsFrom(ctx, id, received) {
			if err != nil {
				streamErr = err
				break
			}
			received++
			progressed = true
			if res.Error != "" {
				held[res.Index] = res
				continue
			}
			r.accept(pos+res.Index, res, &agg)
		}
		switch {
		case streamErr == nil:
			// Clean end of stream: the campaign settled, or the daemon cut
			// the response early. A status probe tells which.
			var fin httpapi.CampaignStatus
			ferr := r.retry(ctx, func(ctx context.Context) error {
				var e error
				fin, e = n.cl.Status(ctx, id)
				return e
			})
			switch {
			case ferr == nil:
				switch fleet.State(fin.State) {
				case fleet.StateDone:
					for li, res := range held {
						r.accept(pos+li, res, &agg)
					}
					r.observePeriod(n, fin.Period)
					return
				case fleet.StateCancelled:
					// The campaign died under us (daemon draining or an
					// operator cancel): rerun whatever is unfinished elsewhere.
					r.nodeLost(n, pos, count, fmt.Errorf("coord: campaign %s on %s settled cancelled", id, n.url))
					return
				case fleet.StateFailed:
					// Campaign-level failure is spec-level (engine construction
					// or sampling): every node would fail the same way.
					r.fail(fmt.Errorf("coord: campaign %s on %s failed: %s", id, n.url, fin.Error))
					return
				}
				// Stream ended but the campaign is live: resume below.
			case ctx.Err() != nil:
				return
			case isNotFound(ferr):
				if !readopt(ferr) {
					return
				}
			default:
				r.nodeLost(n, pos, count, ferr)
				return
			}
		case ctx.Err() != nil:
			return
		case isNotFound(streamErr):
			// The node is answering but forgot the campaign: it restarted.
			// Re-adopt rather than fail — the work is recoverable.
			if !readopt(streamErr) {
				return
			}
		case !client.IsTransient(streamErr):
			r.fail(fmt.Errorf("coord: node %s result stream: %w", n.url, streamErr))
			return
		}
		if progressed {
			stall = 0
		} else {
			stall++
		}
		if stall >= r.co.policy.MaxAttempts {
			err := streamErr
			if err == nil {
				err = fmt.Errorf("stream made no progress over %d attempts", stall)
			}
			r.nodeLost(n, pos, count, err)
			return
		}
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
		d := max(r.co.policy.Delay(stall, r.co.jitterU()), client.RetryAfter(streamErr))
		if err := r.co.clock.Sleep(ctx, d); err != nil {
			return
		}
	}
}

// nodeLost marks a node dead and rebalances the assignment's unfinished
// positions onto surviving nodes. Already-accepted results stay emitted —
// the merge's dedup makes re-delivery harmless — so every chip surfaces
// exactly once no matter how its first node failed.
func (r *Run) nodeLost(n *node, pos, count int, cause error) {
	n.setDead(true)
	r.mu.Lock()
	r.deadNodes[n.url] = true
	spans := gaps(pos, count, func(p int) bool { return r.results[p] != nil })
	lost := 0
	for _, s := range spans {
		lost += s.Count
	}
	r.rebalanced += lost
	r.mu.Unlock()
	if lost == 0 {
		return
	}
	survivors := r.co.healthy()
	if len(survivors) == 0 {
		r.fail(fmt.Errorf("%w: %d chips unplaced after losing %s: %v", ErrNoHealthyNodes, lost, n.url, cause))
		return
	}
	// Spread each unfinished span across every survivor, so one node's
	// death doesn't simply double another's load.
	even := make([]float64, len(survivors))
	for i := range even {
		even[i] = 1
	}
	for _, s := range spans {
		counts := splitByWeight(s.Count, even)
		off := 0
		for i, c := range counts {
			if c > 0 {
				r.launch(survivors[i], s.First+off, c)
			}
			off += c
		}
	}
}

// finalize settles the run once every runner has exited.
func (r *Run) finalize() {
	r.wg.Wait()
	r.mu.Lock()
	if !r.done && r.failure == nil {
		if err := r.ctx.Err(); err != nil {
			r.failure = err
		} else {
			r.failure = fmt.Errorf("coord: run ended with %d/%d chips unresolved", r.total-r.accepted, r.total)
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	r.cancel()
}

// Results streams the merged per-chip results strictly in population
// order, blocking until each next position resolves — the exact sequence,
// and the exact per-chip numbers, a single-node campaign over the whole
// range would serve. Each result is emitted exactly once across the whole
// run, no matter how many nodes its chip visited. A fatal run failure (or
// ctx cancellation) is yielded once as the second value and ends the
// stream. Multiple consumers may attach; each sees the full stream.
func (r *Run) Results(ctx context.Context) iter.Seq2[httpapi.ChipResult, error] {
	return func(yieldFn func(httpapi.ChipResult, error) bool) {
		stop := context.AfterFunc(ctx, func() {
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
		defer stop()
		for i := 0; i < r.total; i++ {
			r.mu.Lock()
			for r.results[i] == nil && r.failure == nil && ctx.Err() == nil {
				r.cond.Wait()
			}
			if r.results[i] == nil {
				err := r.failure
				if cerr := ctx.Err(); cerr != nil {
					err = cerr
				}
				r.mu.Unlock()
				yieldFn(httpapi.ChipResult{}, err)
				return
			}
			res := *r.results[i]
			r.mu.Unlock()
			if !yieldFn(res, nil) {
				return
			}
		}
	}
}

// Wait blocks until the run settles — every chip merged and every shard
// runner exited, or a fatal failure — and returns the final accounting.
// Cancelling ctx abandons the wait only; the run itself keeps going.
func (r *Run) Wait(ctx context.Context) (Summary, error) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for !(r.done && r.running == 0) && r.failure == nil && ctx.Err() == nil {
		r.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return Summary{}, err
	}
	if r.failure != nil && !r.done {
		return r.summaryLocked(), r.failure
	}
	return r.summaryLocked(), nil
}

// summaryLocked merges the per-shard aggregates and snapshots the run
// accounting. Called with r.mu held. Agg.Merge is associative and
// commutative over exact integer sums, so the (completion-ordered) fold is
// bit-identical to sequential aggregation.
func (r *Run) summaryLocked() Summary {
	var merged yield.Agg
	for _, a := range r.aggs {
		merged.Merge(a)
	}
	st := merged.Stats()
	sum := Summary{
		Chips: r.accepted,
		Aggregate: httpapi.Aggregate{
			Chips:          merged.Chips,
			Yield:          st.Yield,
			AvgIterations:  st.AvgIterations,
			AvgScanBits:    st.AvgScanBits,
			ConfiguredFrac: st.ConfiguredFrac,
		},
		Period:          r.period,
		Retries:         r.retries,
		RebalancedChips: r.rebalanced,
		Assignments:     slices.Clone(r.assignments),
	}
	sum.Aggregate.Bins, sum.Aggregate.Unbinned = httpapi.BinsWire(r.bins)
	for url := range r.deadNodes {
		sum.DeadNodes = append(sum.DeadNodes, url)
	}
	sort.Strings(sum.DeadNodes)
	return sum
}
