package coord

import (
	"context"
	"testing"
	"time"
)

func TestRetryPolicyDelayRamp(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Base: 100 * time.Millisecond, Max: 5 * time.Second}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second,
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, 0.5); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Huge attempt numbers stay pinned at the cap instead of overflowing.
	if got := p.Delay(500, 0.5); got != 5*time.Second {
		t.Fatalf("Delay(500) = %v, want the 5s cap", got)
	}
}

func TestRetryPolicyJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Base: time.Second, Max: time.Second, Jitter: 0.2}
	// u spans [0,1): the scaled delay spans [1-J, 1+J) around the base.
	if got := p.Delay(0, 0); got != 800*time.Millisecond {
		t.Fatalf("Delay(0, u=0) = %v, want 800ms", got)
	}
	if got := p.Delay(0, 0.5); got != time.Second {
		t.Fatalf("Delay(0, u=0.5) = %v, want 1s", got)
	}
	lo, hi := 800*time.Millisecond, 1200*time.Millisecond
	for _, u := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9999} {
		if d := p.Delay(0, u); d < lo || d >= hi {
			t.Fatalf("Delay(0, %v) = %v, outside [%v, %v)", u, d, lo, hi)
		}
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := DefaultRetryPolicy().validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []RetryPolicy{
		{MaxAttempts: 0, Base: time.Millisecond, Max: time.Second},
		{MaxAttempts: 1, Base: 0, Max: time.Second},
		{MaxAttempts: 1, Base: time.Second, Max: time.Millisecond},
		{MaxAttempts: 1, Base: time.Millisecond, Max: time.Second, Jitter: -0.1},
		{MaxAttempts: 1, Base: time.Millisecond, Max: time.Second, Jitter: 1},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Fatalf("case %d: invalid policy %+v accepted", i, p)
		}
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	a, err := New([]string{"http://x"}, WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New([]string{"http://x"}, WithJitterSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		ua, ub := a.jitterU(), b.jitterU()
		if ua != ub {
			t.Fatalf("draw %d: %v != %v — same seed must replay the same jitter", i, ua, ub)
		}
		if ua < 0 || ua >= 1 {
			t.Fatalf("draw %d: %v outside [0, 1)", i, ua)
		}
	}
}

func TestRealClockHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := (realClock{}).Sleep(ctx, time.Hour); err == nil {
		t.Fatal("cancelled sleep returned nil")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled sleep blocked for %v", elapsed)
	}
	if err := (realClock{}).Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
}
