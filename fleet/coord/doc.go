// Package coord is the sharded fleet coordinator: it executes one logical
// chip campaign across N effitestd daemons and merges the shards back into
// the exact results a single node would have produced.
//
// The pipeline, per run:
//
//	probe    every node's /healthz (reviving recovered nodes)
//	push     the plan artifact to each node, dedup'd by content address
//	place    shards by load — /stats backlog over worker count
//	stream   each shard's NDJSON results concurrently, resuming across
//	         transient breaks via ?from=
//	merge    into one in-order iter.Seq with exactly-once emission
//	fold     per-shard aggregates through yield.Agg's exact integer sums
//
// Determinism is the load-bearing property. Chip i of a (seed-keyed)
// population depends only on (seed, i), and the engine's flow is
// deterministic per chip, so a shard that runs chips [first, first+count)
// on any node produces bit-identical per-chip numbers to the same
// positions of a whole-population run. That is what makes failure handling
// safe: a dead node's unfinished chips are simply re-submitted to
// survivors, duplicates are suppressed at the merge (first result for a
// position wins — all candidates are bitwise equal), and the merged
// aggregate still matches single-node execution exactly.
//
// Failure model. Transient failures (HTTP 5xx/429, connection
// refused/reset, timeouts, streams cut mid-body — see
// fleet/client.IsTransient) are retried with exponential backoff and
// jitter; the sleep source is an injectable Clock so retry tests run in
// milliseconds. A node that exhausts its attempts is declared dead and its
// unfinished positions rebalance across every survivor; when no survivors
// remain the run fails with ErrNoHealthyNodes. Permanent errors (4xx) fail
// fast: a rejected spec stays rejected on every node.
//
//	co, _ := coord.New([]string{"http://n1:8087", "http://n2:8087"})
//	run, err := co.Start(ctx, coord.Spec{
//		Name:    "lot-42",
//		Circuit: httpapi.CircuitSpec{Profile: "s9234", GenSeed: 1},
//		Config:  httpapi.ConfigSpec{Align: "heuristic", Quantile: 0.8413, CalibChips: 2000},
//		Chips:   httpapi.ChipSpec{Seed: 7, Count: 10000},
//	})
//	for res, err := range run.Results(ctx) { ... }
//	sum, err := run.Wait(ctx)   // sum.Aggregate == single-node aggregate, exactly
//
// cmd/effitest-coord wraps this package for the command line.
package coord
