package coord

import (
	"context"
	"math"
	"time"
)

// Clock abstracts sleeping for the retry/backoff machinery. Production
// coordinators use the real clock; tests inject a fake whose Sleep returns
// immediately (recording the requested delays), so the whole
// retry/rebalance suite runs in milliseconds instead of wall-clock backoff
// time.
type Clock interface {
	// Sleep blocks for d or until ctx is cancelled, returning ctx.Err() in
	// the cancelled case and nil otherwise.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the default Clock over time.Timer.
type realClock struct{}

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryPolicy shapes the coordinator's reaction to transient failures
// (client.IsTransient): exponential backoff doubling from Base, capped at
// Max, with ±Jitter uniform noise so a fleet of shard runners hitting the
// same rebooting daemon does not retry in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation (>= 1). After
	// MaxAttempts transient failures in a row the target node is declared
	// dead and its unfinished chips rebalance onto surviving nodes.
	MaxAttempts int
	// Base is the delay before the first retry; attempt k waits
	// min(Base<<k, Max), jittered.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration
	// Jitter in [0, 1) scales each delay by a uniform factor in
	// [1-Jitter, 1+Jitter].
	Jitter float64
}

// DefaultRetryPolicy is the production default: 5 attempts, 100ms base
// doubling to a 5s cap, ±20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.2}
}

func (p RetryPolicy) validate() error {
	switch {
	case p.MaxAttempts < 1:
		return errPolicy("MaxAttempts must be >= 1")
	case p.Base <= 0:
		return errPolicy("Base must be positive")
	case p.Max < p.Base:
		return errPolicy("Max must be >= Base")
	case p.Jitter < 0 || p.Jitter >= 1:
		return errPolicy("Jitter must be in [0, 1)")
	}
	return nil
}

type errPolicy string

func (e errPolicy) Error() string { return "coord: retry policy: " + string(e) }

// Delay returns the backoff before retry number attempt (counting from 0),
// using u in [0, 1) as the jitter sample: min(Base<<attempt, Max) scaled
// by 1 + Jitter*(2u-1). Pure so it unit-tests exactly.
func (p RetryPolicy) Delay(attempt int, u float64) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d <<= 1 // doubling stops at Max, so it cannot overflow
	}
	if d > p.Max {
		d = p.Max
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*u-1)))
	}
	return d
}

// jitterU draws the next deterministic jitter sample in [0, 1).
func (co *Coordinator) jitterU() float64 {
	co.rngMu.Lock()
	defer co.rngMu.Unlock()
	u := co.rng.Float64()
	if math.IsNaN(u) { // unreachable; keeps the contract explicit
		u = 0
	}
	return u
}
