package coord_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
)

// A daemon answering 429 with Retry-After must slow the coordinator to the
// daemon's own hint: every backoff sleep is at least the advertised wait,
// even when the retry policy's exponential delay is far smaller — the
// coordinator backs off instead of hot-retrying admission control.
func TestCoord429BacksOffByRetryAfter(t *testing.T) {
	const hintSecs = 7
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok","workers":1}`))
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"workers":1}`))
	})
	var submits atomic.Int64
	mux.HandleFunc("POST /v1/campaigns", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"campaign queue full"}`))
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	clock := &instantClock{}
	co, err := coord.New([]string{ts.URL},
		coord.WithClock(clock),
		// Policy delays are microscopic next to the daemon's hint, so any
		// 7s sleeps below can only come from honoring Retry-After.
		coord.WithRetryPolicy(coord.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	run, err := co.Start(context.Background(), coord.Spec{
		Name:    "throttled",
		Circuit: httpapi.CircuitSpec{Profile: "s9234", GenSeed: 1},
		Chips:   httpapi.ChipSpec{Seed: 7, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Wait(context.Background()); err == nil {
		t.Fatal("run against an always-429 daemon should fail")
	}

	if n := submits.Load(); n != 3 {
		t.Fatalf("submit attempted %d times, want MaxAttempts of 3", n)
	}
	hinted := 0
	for _, d := range clock.delays() {
		if d >= hintSecs*time.Second {
			hinted++
		}
	}
	// MaxAttempts=3 sleeps twice between submit tries; both sleeps must be
	// stretched to the daemon's hint.
	if hinted != 2 {
		t.Fatalf("delays %v: %d at or above the %ds Retry-After hint, want 2", clock.delays(), hinted, hintSecs)
	}
}
