package coord_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/coord"
	"effitest/fleet/httpapi"
	"effitest/fleet/journal"
	"effitest/internal/conformance"
)

// swapHandler is a daemon front that can atomically exchange its backing
// handler mid-request-stream — the loopback stand-in for a daemon process
// restarting behind a stable address.
type swapHandler struct {
	h atomic.Value // http.Handler
}

func newSwapHandler(h http.Handler) *swapHandler {
	s := &swapHandler{}
	s.h.Store(&h)
	return s
}

func (s *swapHandler) swap(h http.Handler) { s.h.Store(&h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

func daemonHandler(m *fleet.Manager) http.Handler {
	return httpapi.New(m,
		httpapi.WithAuthToken(coordToken),
		httpapi.WithRateLimit(10000, 10000),
	)
}

// releaseOnce closes ch at most once (tests release gates from both the
// happy path and cleanup).
func releaseOnce(ch chan struct{}) func() {
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// A node that crashes mid-shard and restarts WITH its journal must be
// transparent to the coordinator: the recovered daemon still knows the
// campaign ID, the result stream resumes where it broke, journaled chips
// replay instead of re-executing, and the merged run stays bit-identical —
// no dead node, no rebalance.
func TestNodeRestartWithJournalResumesStream(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	// The doomed first process: completes exactly chips 0 and 1, then its
	// remaining workers block in the gate.
	gate := &gateBackend{allowBelow: 2, release: make(chan struct{})}
	release := releaseOnce(gate.release)
	reg, err := fleet.NewRegistry(fleet.WithEngineOptions(effitest.WithBackend(gate)))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := fleet.NewManager(fleet.WithWorkers(2), fleet.WithRegistry(reg), fleet.WithJournal(j1))
	if err != nil {
		t.Fatal(err)
	}
	sw := newSwapHandler(daemonHandler(m1))
	ts := httptest.NewServer(sw)
	t.Cleanup(func() {
		release()
		m1.Shutdown(context.Background())
		ts.Close()
	})

	co, err := coord.New([]string{ts.URL}, coord.WithClock(&instantClock{}), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	run, err := co.Start(ctx, tiny64Spec(sc))
	if err != nil {
		t.Fatal(err)
	}

	var m2 *fleet.Manager
	var got []httpapi.ChipResult
	for res, rerr := range run.Results(ctx) {
		if rerr != nil {
			t.Fatal(rerr)
		}
		got = append(got, res)
		if len(got) == 2 {
			// The crash + restart, behind the same address. Order matters:
			// the journal closes first (nothing later reaches disk), the
			// replacement process recovers and swaps in, and only then are
			// the live connections cut — so the coordinator's very next
			// retry lands on the recovered daemon.
			if err := j1.Close(); err != nil {
				t.Fatal(err)
			}
			j2, err := journal.Open(dir, journal.WithoutSync())
			if err != nil {
				t.Fatal(err)
			}
			m2, err = fleet.NewManager(fleet.WithWorkers(2), fleet.WithJournal(j2))
			if err != nil {
				t.Fatal(err)
			}
			rs, err := m2.Recover(httpapi.SpecDecoder(m2.Plans()))
			if err != nil {
				t.Fatal(err)
			}
			if rs.Campaigns != 1 || rs.ChipsReplayed < 2 {
				t.Fatalf("restarted node recovered %+v", rs)
			}
			t.Cleanup(func() { m2.Shutdown(context.Background()) })
			sw.swap(daemonHandler(m2))
			ts.CloseClientConnections()
		}
	}
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, inproc, got, sum)

	// The restart looked like a stream hiccup, not a death: nothing was
	// rebalanced because nothing was lost.
	if len(sum.DeadNodes) != 0 || sum.RebalancedChips != 0 {
		t.Fatalf("journal restart treated as node loss: %+v", sum)
	}
	ms := m2.Stats()
	if ms.CampaignsRecovered != 1 {
		t.Fatalf("CampaignsRecovered = %d, want 1", ms.CampaignsRecovered)
	}
	if ms.ChipsReplayed != 2 || ms.ChipsExecuted != int64(sc.Chips-2) {
		t.Fatalf("replayed %d / executed %d, want 2 / %d — journaled chips must not re-run",
			ms.ChipsReplayed, ms.ChipsExecuted, sc.Chips-2)
	}
}

// A node that restarts WITHOUT a journal forgets the campaign: the
// coordinator's stream resume gets 404. The shard's deterministic
// idempotency key turns that into re-adoption — re-submit, re-execute,
// merge dedup — and the run still finishes bit-identical with no node
// marked dead.
func TestNodeRestartWithoutJournalReadoptsByKey(t *testing.T) {
	sc := tiny64Scenario(t)
	ctx := context.Background()
	inproc, err := conformance.RunPipeline(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}

	gate := &gateBackend{allowBelow: 2, release: make(chan struct{})}
	release := releaseOnce(gate.release)
	reg, err := fleet.NewRegistry(fleet.WithEngineOptions(effitest.WithBackend(gate)))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := fleet.NewManager(fleet.WithWorkers(2), fleet.WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	sw := newSwapHandler(daemonHandler(m1))
	ts := httptest.NewServer(sw)
	t.Cleanup(func() {
		release()
		m1.Shutdown(context.Background())
		ts.Close()
	})

	clock := &instantClock{}
	co, err := coord.New([]string{ts.URL}, coord.WithClock(clock), coord.WithAuthToken(coordToken))
	if err != nil {
		t.Fatal(err)
	}
	run, err := co.Start(ctx, tiny64Spec(sc))
	if err != nil {
		t.Fatal(err)
	}

	var m2 *fleet.Manager
	var got []httpapi.ChipResult
	for res, rerr := range run.Results(ctx) {
		if rerr != nil {
			t.Fatal(rerr)
		}
		got = append(got, res)
		if len(got) == 2 {
			// Restart with amnesia: a fresh manager, no journal. The next
			// stream request for the old campaign ID will 404.
			m2, err = fleet.NewManager(fleet.WithWorkers(2))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { m2.Shutdown(context.Background()) })
			sw.swap(daemonHandler(m2))
			ts.CloseClientConnections()
		}
	}
	sum, err := run.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertGolden(t, inproc, got, sum)

	if len(sum.DeadNodes) != 0 || sum.RebalancedChips != 0 {
		t.Fatalf("404 re-adoption treated as node loss: %+v", sum)
	}
	// The whole shard re-executed on the amnesiac node (chips 0 and 1 were
	// re-delivered and dropped by the merge's dedup).
	if ms := m2.Stats(); ms.ChipsExecuted != int64(sc.Chips) {
		t.Fatalf("restarted node executed %d chips, want the full %d", ms.ChipsExecuted, sc.Chips)
	}
}
