package fleet

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"effitest"
	"effitest/fleet/journal"
	"effitest/internal/pool"
	"effitest/internal/yield"
	"effitest/workload"
)

// Sentinel errors of the campaign layer; match with errors.Is.
var (
	// ErrManagerClosed tags work refused or abandoned because the manager
	// is shutting down.
	ErrManagerClosed = errors.New("fleet: manager closed")
	// ErrCampaignCancelled tags chips abandoned by Campaign.Cancel before
	// they were dispatched.
	ErrCampaignCancelled = errors.New("fleet: campaign cancelled")
	// ErrQueueFull tags a Submit refused by admission control: the manager's
	// campaign backlog (WithMaxQueuedCampaigns) is at its bound. The request
	// itself is fine — retry after backing off (the HTTP surface maps this to
	// 429 with a Retry-After header).
	ErrQueueFull = errors.New("fleet: campaign queue full")
)

// State is a campaign's lifecycle phase.
type State string

// Campaign states. Queued covers both engine resolution (the registry may
// be running Prepare) and waiting for pool capacity; Cancelled and Failed
// are terminal like Done, but a cancelled campaign may still be draining
// its in-flight chips when the state first reads Cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final (done, cancelled or failed).
func (s State) Terminal() bool {
	return s == StateDone || s == StateCancelled || s == StateFailed
}

// CampaignSpec names a batch of chips to run as one asynchronous job.
type CampaignSpec struct {
	// Name is a free-form label carried through Status.
	Name string
	// Circuit is the circuit under test. When another campaign already
	// registered the same content, the registry's instance is used; chips
	// are always manufactured from the engine's circuit.
	Circuit *effitest.Circuit
	// Options configure the engine (see effitest.New). Execution knobs
	// (WithWorkers) are irrelevant here: campaign chips run one at a time
	// on the manager's shared pool.
	Options []effitest.Option
	// Plan, when non-nil, supplies a pre-built plan artifact; the engine is
	// constructed directly from it, bypassing the registry.
	Plan *effitest.Plan
	// Chips is an explicit chip population. Every chip must reference the
	// engine's circuit instance; prefer ChipSeed/ChipCount, which sample
	// from it deterministically.
	Chips []*effitest.Chip
	// ChipSeed/ChipCount sample the population deterministically (see
	// Engine.SampleChips) when Chips is nil.
	ChipSeed  int64
	ChipCount int
	// ChipFirst offsets the sampled population: the campaign runs the chips
	// with manufacturing indices [ChipFirst, ChipFirst+ChipCount) of the
	// ChipSeed-keyed population (see Engine.SampleChipRange). A coordinator
	// shards one logical population across daemons by submitting each node
	// a different range of the same seed; per-chip numbers are identical to
	// a single campaign over the whole population.
	ChipFirst int
	// Workload selects the campaign type (package workload): "" or
	// workload.TypeEffiTest for the standard tune-and-predict flow,
	// TypeClockBinning or TypeAgingDrift for the sister-paper workloads.
	Workload string
	// BinEdges are the ascending period bin edges of a clock-binning
	// campaign; the campaign then folds every chip's post-tuning achieved
	// period into an exactly-mergeable per-bin histogram (Status.Bins).
	BinEdges []float64
	// Drift scales every chip's realized delays by (1+Drift) after
	// sampling, modeling aged silicon (aging-drift campaigns). Applied
	// identically on every shard, so sharded drift campaigns stay
	// bit-identical to whole-population runs.
	Drift float64
	// Key is an optional client-chosen idempotency key. Submitting a spec
	// whose Key matches a live or finished campaign returns that campaign
	// instead of creating a duplicate — so a client that got a 5xx for a
	// submit the manager actually committed can retry blindly.
	Key string
	// PlanID names the plan artifact the spec's Plan was decoded from, for
	// journal provenance. Informational; the journal's recovery path may
	// re-Prepare when the artifact is gone (deterministically identical).
	PlanID string
	// JournalPayload is the serialized form of this spec that the journal
	// stores and Manager.Recover hands back to its decoder after a restart
	// (Options are closures and cannot be persisted directly). Required for
	// durability when the manager has a journal: a spec without it is
	// executed but not recoverable, and is journaled only for accounting.
	JournalPayload []byte
}

// Status is a point-in-time snapshot of a campaign.
type Status struct {
	ID    string
	Name  string
	State State
	// Workload is the campaign's canonical workload type name.
	Workload string

	// ChipsTotal is the population size (0 until the engine is resolved
	// when the spec sampled by seed/count).
	ChipsTotal int
	// ChipsDone counts chips with a result, including per-chip errors.
	ChipsDone int
	// ChipsPassed / ChipsFailed split ChipsDone into final-test passes and
	// per-chip errors (a configured-but-failing chip is neither).
	ChipsPassed int
	ChipsFailed int
	// RunningYield is ChipsPassed over chips with an error-free outcome so
	// far — the live estimate that converges to Stats.Yield.
	RunningYield float64
	// Stats aggregates the error-free outcomes observed so far; final once
	// the campaign settles. Sharded aggregation is exact: these are the
	// same numbers a sequential Engine run would report.
	Stats effitest.ProposedStats
	// Period is the engine's calibrated test period (0 while queued).
	Period float64
	// Bins is the clock-binning histogram snapshot (clock-binning
	// campaigns only, nil otherwise). Like Stats, it folds exactly: a
	// sharded campaign's merged bins equal a sequential run's.
	Bins *workload.BinAgg
	// Err is the campaign-level failure (engine construction or sampling),
	// nil for per-chip errors, which live in the result stream.
	Err error

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// Campaign is one submitted batch job. All methods are safe for concurrent
// use.
type Campaign struct {
	id       string
	name     string
	key      string // idempotency key ("" = none)
	workload string // canonical workload type name
	m        *Manager

	ctx    context.Context
	cancel context.CancelFunc

	// journaled marks a campaign with a segment in the manager's journal;
	// replay carries chip records recovered from it, consumed by prepare.
	// journalSettleOnce writes the segment's terminal record exactly once.
	journaled         bool
	replay            []journal.ChipRecord
	journalSettleOnce sync.Once

	// nextDispatch is the index of the first undispatched chip; it is owned
	// by the manager and only touched under m.mu.
	nextDispatch int

	mu        sync.Mutex
	cond      *sync.Cond
	state     State
	err       error
	eng       *effitest.Engine
	chips     []*effitest.Chip
	results   []*effitest.ChipResult // fixed size once chips resolve; nil entries pending
	completed int
	agg       yield.Agg
	bins      *workload.BinAgg // clock-binning histogram (nil otherwise)
	failed    int              // per-chip errors
	cancelled bool
	// settleOnce releases this campaign's admission-control slot exactly
	// once, on its first transition to a terminal state.
	settleOnce sync.Once

	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the manager-assigned campaign identifier.
func (c *Campaign) ID() string { return c.id }

// Name returns the submitted campaign name.
func (c *Campaign) Name() string { return c.name }

// Key returns the campaign's idempotency key ("" when none was supplied).
func (c *Campaign) Key() string { return c.key }

// Status returns a point-in-time snapshot.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:          c.id,
		Name:        c.name,
		State:       c.state,
		Workload:    c.workload,
		ChipsTotal:  len(c.results),
		ChipsDone:   c.completed,
		ChipsPassed: c.agg.Passed,
		ChipsFailed: c.failed,
		Stats:       c.agg.Stats(),
		Bins:        c.bins.Clone(),
		Err:         c.err,
		SubmittedAt: c.submitted,
		StartedAt:   c.started,
		FinishedAt:  c.finished,
	}
	if c.agg.Chips > 0 {
		st.RunningYield = float64(c.agg.Passed) / float64(c.agg.Chips)
	}
	if c.eng != nil {
		st.Period = c.eng.Period()
	}
	return st
}

// Engine returns the campaign's resolved engine (nil while queued).
func (c *Campaign) Engine() *effitest.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng
}

// Cancel stops the campaign: chips not yet dispatched to the pool get an
// ErrCampaignCancelled result immediately, in-flight chips are aborted
// through their context and deliver promptly, and the campaign settles as
// Cancelled. Cancelling a terminal campaign is a no-op.
func (c *Campaign) Cancel() {
	c.cancel()
	c.m.mu.Lock()
	c.m.dropActiveLocked(c)
	start := c.nextDispatch
	c.nextDispatch = 1 << 30
	c.m.mu.Unlock()

	c.mu.Lock()
	c.settleLocked(start, ErrCampaignCancelled)
	c.mu.Unlock()
	c.journalSettle()
}

// noteTerminalLocked releases the campaign's admission slot on its first
// transition into a terminal state. Called with c.mu held; it only touches
// manager atomics, so the m.mu-before-c.mu lock order is respected.
func (c *Campaign) noteTerminalLocked() {
	c.settleOnce.Do(func() { c.m.backlog.Add(-1) })
}

// settleLocked abandons every unresolved chip from start on with err and
// settles the campaign as Cancelled; a no-op when already terminal.
// In-flight chips (indices below start without a result) still deliver
// afterwards — the finished stamp lands when the last one does, or here
// when nothing is left in flight. Called with c.mu held.
func (c *Campaign) settleLocked(start int, err error) {
	if c.state.Terminal() {
		return
	}
	c.cancelled = true
	c.fillFromLocked(start, err)
	c.state = StateCancelled
	c.noteTerminalLocked()
	// A campaign with no population (cancelled mid-prepare) settles here;
	// one with in-flight chips gets its stamp from the last deliver.
	if (c.results == nil || c.completed == len(c.results)) && c.finished.IsZero() {
		c.finished = time.Now()
	}
	c.cond.Broadcast()
}

// fillFromLocked tags every unresolved chip from start on with err. Called
// with c.mu held, after the manager stopped dispatching this campaign, so
// indices < start are either delivered or in flight (and will deliver
// themselves).
func (c *Campaign) fillFromLocked(start int, err error) {
	for i := start; i < len(c.results); i++ {
		if c.results[i] == nil {
			c.results[i] = &effitest.ChipResult{Index: i, Chip: c.chips[i], Err: err}
			c.completed++
			c.failed++
		}
	}
}

// Results streams the campaign's per-chip results strictly in input order,
// blocking until each next result exists — so a consumer can attach while
// the campaign runs (or long after it finished) and always observes the
// exact sequence Engine.RunChips would have produced. Every attached
// consumer gets the full stream; cancelling ctx detaches this consumer
// only. A campaign that failed before resolving its population yields
// nothing (see Status.Err).
func (c *Campaign) Results(ctx context.Context) iter.Seq[effitest.ChipResult] {
	return func(yieldFn func(effitest.ChipResult) bool) {
		stop := context.AfterFunc(ctx, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer stop()
		for i := 0; ; i++ {
			c.mu.Lock()
			for {
				if ctx.Err() != nil {
					c.mu.Unlock()
					return
				}
				if c.results != nil && i >= len(c.results) {
					c.mu.Unlock()
					return
				}
				if c.results != nil && c.results[i] != nil {
					break
				}
				if c.state.Terminal() && c.results == nil {
					c.mu.Unlock()
					return
				}
				c.cond.Wait()
			}
			res := *c.results[i]
			c.mu.Unlock()
			if !yieldFn(res) {
				return
			}
		}
	}
}

// Wait blocks until the campaign settles — terminal state with every chip
// resolved — and returns the final status. Cancelling ctx abandons the
// wait with its error; the campaign itself is unaffected.
func (c *Campaign) Wait(ctx context.Context) (Status, error) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	for !(c.state.Terminal() && (c.results == nil || c.completed == len(c.results))) {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return Status{}, err
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
	return c.Status(), nil
}

// prepare resolves the campaign's engine (through the registry unless the
// spec carries a plan) and population, then hands the campaign to the
// dispatcher. Runs once, asynchronously, per Submit.
func (c *Campaign) prepare(spec CampaignSpec) {
	defer c.m.prepWG.Done()
	var eng *effitest.Engine
	var err error
	if spec.Plan != nil {
		opts := append(slices.Clone(spec.Options), effitest.WithPlan(spec.Plan))
		eng, err = effitest.NewCtx(c.ctx, spec.Circuit, opts...)
	} else {
		eng, err = c.m.reg.Engine(c.ctx, spec.Circuit, spec.Options...)
	}
	if err != nil {
		c.failPrep(err)
		return
	}
	chips := spec.Chips
	if chips == nil {
		if chips, err = eng.SampleChipRange(c.ctx, spec.ChipSeed, spec.ChipFirst, spec.ChipCount); err != nil {
			c.failPrep(err)
			return
		}
	}
	// Aging-drift campaigns age the population here — after deterministic
	// sampling, before journal replay or dispatch. The transform is a pure
	// per-chip function, so every shard of a sharded sweep ages its range
	// identically and drifted campaigns keep the bit-identity guarantees
	// of undrifted ones.
	chips = workload.ApplyDriftAll(chips, spec.Drift)
	c.mu.Lock()
	if c.state.Terminal() {
		c.mu.Unlock()
		return
	}
	c.eng = eng
	c.chips = chips
	c.results = make([]*effitest.ChipResult, len(chips))
	c.applyReplayLocked()
	settled := false
	if len(c.results) > 0 && c.completed == len(c.results) {
		// Every chip replayed from the journal: the campaign is already
		// done, it just never got to write its settle record.
		c.state = StateDone
		c.noteTerminalLocked()
		c.finished = time.Now()
		settled = true
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if settled {
		c.journalSettle()
		return
	}
	c.m.enqueue(c)
}

// applyReplayLocked folds journal-recovered chip records into the freshly
// resolved result set. A record is replayed only when it names a pending
// in-range position whose re-sampled chip carries the recorded
// manufacturing index — anything else re-executes, which is always
// correct, just slower. Called with c.mu held, before any dispatch.
func (c *Campaign) applyReplayLocked() {
	for _, rec := range c.replay {
		if rec.Index < 0 || rec.Index >= len(c.results) || c.results[rec.Index] != nil {
			continue
		}
		if c.chips[rec.Index].Index != rec.ChipIndex {
			continue
		}
		res := replayResult(c.chips[rec.Index], rec)
		c.results[rec.Index] = res
		c.completed++
		if res.Err != nil {
			c.failed++
		} else {
			c.observeLocked(res)
		}
		c.m.replayed.Add(1)
	}
	c.replay = nil
}

// failPrep marks a campaign that never reached the pool as failed (or
// cancelled, when the failure was its own cancellation).
func (c *Campaign) failPrep(err error) {
	c.mu.Lock()
	if c.state.Terminal() {
		c.mu.Unlock()
		return
	}
	if c.cancelled || c.ctx.Err() != nil {
		c.state = StateCancelled
	} else {
		c.state = StateFailed
	}
	c.noteTerminalLocked()
	c.err = err
	c.finished = time.Now()
	c.cond.Broadcast()
	c.mu.Unlock()
	c.journalSettle()
}

// run executes one chip on the caller's (worker) goroutine and delivers
// its result.
func (c *Campaign) run(idx int) {
	c.mu.Lock()
	if c.state == StateQueued {
		c.state = StateRunning
		c.started = time.Now()
	}
	ch := c.chips[idx]
	eng := c.eng
	c.mu.Unlock()

	res := effitest.ChipResult{Index: idx, Chip: ch}
	if err := c.ctx.Err(); err != nil {
		res.Err = err
	} else if obs := c.m.obs; obs != nil {
		res.Outcome, res.Err = eng.RunChipObserved(c.ctx, ch, obs)
	} else {
		res.Outcome, res.Err = eng.RunChip(c.ctx, ch)
	}
	c.m.chipsExecuted.Add(1)
	c.journalChip(&res)
	c.deliver(res)
}

// deliver records one chip result, folds it into the streaming aggregate
// and settles the campaign when it was the last one.
func (c *Campaign) deliver(res effitest.ChipResult) {
	c.mu.Lock()
	if c.results[res.Index] != nil {
		c.mu.Unlock()
		return
	}
	c.results[res.Index] = &res
	c.completed++
	if res.Err != nil {
		c.failed++
	} else {
		c.observeLocked(&res)
	}
	settled := false
	if c.completed == len(c.results) {
		switch {
		case c.cancelled:
			c.state = StateCancelled
		default:
			c.state = StateDone
		}
		c.noteTerminalLocked()
		if c.finished.IsZero() {
			c.finished = time.Now()
		}
		settled = true
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if settled {
		c.journalSettle()
	}
}

// observeLocked folds one error-free chip result into the campaign's
// streaming aggregates: the yield.Agg always, and for clock-binning
// campaigns the period histogram, classified on the chip's post-tuning
// achieved period. Both folds are exact integer sums, so execution order
// and shard boundaries cannot change the totals. Called with c.mu held.
func (c *Campaign) observeLocked(res *effitest.ChipResult) {
	c.agg.Observe(res.Outcome)
	if c.bins == nil {
		return
	}
	if res.Outcome.Configured {
		c.bins.Observe(workload.AchievedPeriod(c.chips[res.Index], res.Outcome.X))
	} else {
		c.bins.ObserveUnbinned()
	}
}

// job is one (campaign, chip index) unit of pool work.
type job struct {
	c   *Campaign
	idx int
}

// Manager owns the shared execution resources of a fleet service: the
// engine registry, a bounded worker pool, and the campaign table. One
// Manager serves many concurrent campaigns over many circuits.
type Manager struct {
	reg       *Registry
	workers   int
	plans     *PlanStore
	obs       effitest.Observer
	maxQueued int // admission bound on non-terminal campaigns (0 = unbounded)
	journal   *journal.Journal

	chipsExecuted atomic.Int64 // chips run on the pool since start
	backlog       atomic.Int64 // campaigns in a non-terminal state
	rejected      atomic.Int64 // submissions refused by admission control
	recovered     atomic.Int64 // campaigns rebuilt from the journal at boot
	replayed      atomic.Int64 // chip results replayed from the journal

	jobs           chan job
	wake           chan struct{}
	stop           chan struct{}
	dispatcherDone chan struct{}
	workerWG       sync.WaitGroup
	prepWG         sync.WaitGroup
	shutdownOnce   sync.Once
	drained        chan struct{} // closed once the first Shutdown finishes draining

	mu        sync.Mutex
	closed    bool
	nextID    int
	campaigns map[string]*Campaign
	byKey     map[string]*Campaign // campaigns with an idempotency key
	order     []*Campaign
	active    []*Campaign // campaigns with undispatched chips, round-robin
	rr        int
}

// ManagerOption configures a Manager at construction time.
type ManagerOption func(*Manager) error

// WithWorkers bounds the shared chip-execution pool (0, the default, means
// one worker per logical CPU).
func WithWorkers(n int) ManagerOption {
	return func(m *Manager) error {
		if n < 0 {
			return fmt.Errorf("fleet: worker count must be non-negative, got %d", n)
		}
		m.workers = n
		return nil
	}
}

// WithRegistry substitutes a pre-built engine registry (shared with other
// managers, or configured via NewRegistry options).
func WithRegistry(r *Registry) ManagerOption {
	return func(m *Manager) error {
		m.reg = r
		return nil
	}
}

// WithMaxQueuedCampaigns bounds the campaign backlog: when n campaigns are
// in a non-terminal state (queued or running), further Submit calls are
// refused with ErrQueueFull instead of queueing unboundedly. 0 (the
// default) disables admission control. The HTTP surface translates the
// refusal into 429 + Retry-After, so well-behaved clients back off.
func WithMaxQueuedCampaigns(n int) ManagerOption {
	return func(m *Manager) error {
		if n < 0 {
			return fmt.Errorf("fleet: max queued campaigns must be non-negative, got %d", n)
		}
		m.maxQueued = n
		return nil
	}
}

// WithManagerObserver attaches a service-wide event sink: every chip run on
// the manager's pool emits its flow events (ChipDoneEvent, PredictEvent,
// BatchEndEvent, ...) to obs, alongside any per-engine observer. obs must
// be safe for concurrent use and quick — it runs inline on the hot path.
// This is how effitestd feeds its /metrics endpoint without making registry
// engines caller-private.
func WithManagerObserver(obs effitest.Observer) ManagerOption {
	return func(m *Manager) error {
		m.obs = obs
		return nil
	}
}

// WithManagerPlanCache is shorthand for a default registry backed by the
// plan-cache directory at dir.
func WithManagerPlanCache(dir string) ManagerOption {
	return func(m *Manager) error {
		r, err := NewRegistry(WithPlanCacheDir(dir))
		if err != nil {
			return err
		}
		m.reg = r
		return nil
	}
}

// NewManager builds a campaign manager and starts its dispatcher and
// worker pool. Shut it down with Shutdown.
func NewManager(opts ...ManagerOption) (*Manager, error) {
	m := &Manager{
		plans:          NewPlanStore(),
		wake:           make(chan struct{}, 1),
		stop:           make(chan struct{}),
		dispatcherDone: make(chan struct{}),
		drained:        make(chan struct{}),
		campaigns:      map[string]*Campaign{},
		byKey:          map[string]*Campaign{},
	}
	for _, o := range opts {
		if err := o(m); err != nil {
			return nil, err
		}
	}
	if m.reg == nil {
		r, err := NewRegistry()
		if err != nil {
			return nil, err
		}
		m.reg = r
	}
	w := pool.Resolve(m.workers)
	m.workers = w
	m.jobs = make(chan job, w)
	m.workerWG.Add(w)
	for i := 0; i < w; i++ {
		go m.worker()
	}
	go m.dispatch()
	return m, nil
}

// Registry returns the manager's engine registry.
func (m *Manager) Registry() *Registry { return m.reg }

// Plans returns the manager's content-addressed plan-artifact store.
func (m *Manager) Plans() *PlanStore { return m.plans }

// Workers returns the resolved size of the shared worker pool.
func (m *Manager) Workers() int { return m.workers }

// Submit registers a campaign and returns immediately; engine resolution
// (possibly a cold Prepare), chip sampling and execution all happen
// asynchronously. Watch it with Status, Results or Wait.
//
// When spec.Key names an already-registered campaign, that campaign is
// returned instead of creating a duplicate (regardless of its state) —
// submit idempotency for clients retrying through failures. When the
// manager has a journal (WithJournal), the spec record is durably appended
// before Submit returns; a journal write failure (disk full, I/O error)
// refuses the submit rather than accepting work that could not be made
// recoverable.
func (m *Manager) Submit(spec CampaignSpec) (*Campaign, error) {
	if spec.Circuit == nil {
		return nil, fmt.Errorf("fleet: campaign needs a circuit")
	}
	if spec.Chips == nil && spec.ChipCount <= 0 {
		return nil, fmt.Errorf("fleet: campaign needs chips (explicit, or a positive ChipCount)")
	}
	if spec.Chips != nil && len(spec.Chips) == 0 {
		return nil, fmt.Errorf("fleet: campaign chip population is empty")
	}
	if spec.ChipFirst < 0 {
		return nil, fmt.Errorf("fleet: campaign chip range start must be non-negative, got %d", spec.ChipFirst)
	}
	if err := workload.Check(spec.Workload, spec.BinEdges, spec.Drift); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	// The journal's spec record is assembled outside m.mu (fingerprinting
	// hashes the whole netlist); only the durable append serializes.
	jspec, err := m.journalSpec(spec)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Campaign{
		name:      spec.Name,
		key:       spec.Key,
		workload:  workload.Canonical(spec.Workload),
		m:         m,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if c.workload == workload.TypeClockBinning {
		c.bins = workload.NewBinAgg(spec.BinEdges)
	}
	c.cond = sync.NewCond(&c.mu)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrManagerClosed
	}
	if spec.Key != "" {
		if prior, ok := m.byKey[spec.Key]; ok {
			m.mu.Unlock()
			cancel()
			return prior, nil
		}
	}
	// Admission control: bound the non-terminal backlog. Checked under m.mu
	// so concurrent submits serialize against the increment; the slot is
	// released (via noteTerminalLocked) when the campaign settles.
	if m.maxQueued > 0 && m.backlog.Load() >= int64(m.maxQueued) {
		m.rejected.Add(1)
		m.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("%w: %d campaigns already queued or running (bound %d)",
			ErrQueueFull, m.backlog.Load(), m.maxQueued)
	}
	m.backlog.Add(1)
	m.nextID++
	c.id = fmt.Sprintf("c%06d", m.nextID)
	if m.journal != nil {
		jspec.ID = c.id
		if err := m.journal.Begin(jspec); err != nil {
			m.backlog.Add(-1)
			m.mu.Unlock()
			cancel()
			return nil, fmt.Errorf("fleet: journaling campaign: %w", err)
		}
		c.journaled = true
	}
	m.registerLocked(c)
	m.mu.Unlock()

	go c.prepare(spec)
	return c, nil
}

// registerLocked inserts a campaign into the manager's tables and reserves
// its prepare slot. Called with m.mu held.
func (m *Manager) registerLocked(c *Campaign) {
	m.campaigns[c.id] = c
	if c.key != "" {
		m.byKey[c.key] = c
	}
	m.order = append(m.order, c)
	m.prepWG.Add(1)
}

// CampaignByKey looks a campaign up by its idempotency key.
func (m *Manager) CampaignByKey(key string) (*Campaign, bool) {
	if key == "" {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.byKey[key]
	return c, ok
}

// ManagerStats is a point-in-time snapshot of the manager's load: the
// campaign table by state plus the chip-level gauges a coordinator uses for
// least-loaded shard placement. Everything is a plain counter — cheap to
// serve on a hot /stats endpoint.
type ManagerStats struct {
	// Workers is the resolved size of the shared execution pool.
	Workers int
	// Campaign counts by lifecycle state; Campaigns is their sum.
	Campaigns          int
	CampaignsQueued    int
	CampaignsRunning   int
	CampaignsDone      int
	CampaignsCancelled int
	CampaignsFailed    int
	// ChipsExecuted counts chips run on the pool since start (including
	// chips whose campaign context was already cancelled when they ran).
	ChipsExecuted int64
	// ChipsPending counts resolved chips not yet handed to the pool;
	// ChipsInFlight counts dispatched chips without a result yet. Together
	// they are the backlog a new shard would queue behind.
	ChipsPending  int
	ChipsInFlight int
	// QueueLimit is the admission bound (WithMaxQueuedCampaigns; 0 =
	// unbounded) and CampaignsRejected counts submissions it refused.
	QueueLimit        int
	CampaignsRejected int64
	// Durability counters (zero without WithJournal). CampaignsRecovered
	// counts campaigns rebuilt from the journal at boot; ChipsReplayed
	// counts chip results emitted from journal records instead of being
	// re-executed — ChipsExecuted deliberately excludes them, so
	// "executed + replayed == population" is the recovery invariant tests
	// and operators assert.
	CampaignsRecovered int64
	ChipsReplayed      int64
	// Journal footprint and health (see journal.Stats).
	JournalSegments     int
	JournalOpenSegments int
	JournalBytes        int64
	JournalAppendErrors int64
	// CampaignsByWorkload counts the campaign table by canonical workload
	// type name (package workload); values sum to Campaigns.
	CampaignsByWorkload map[string]int
	// BinHistogramBins is the total period-bin cells held across live
	// clock-binning campaigns — the memory footprint of the binning
	// aggregates, surfaced so operators see runaway edge lists.
	BinHistogramBins int
}

// Stats snapshots the manager's campaign and chip counters.
func (m *Manager) Stats() ManagerStats {
	st := ManagerStats{
		Workers:            m.workers,
		ChipsExecuted:      m.chipsExecuted.Load(),
		QueueLimit:         m.maxQueued,
		CampaignsRejected:  m.rejected.Load(),
		CampaignsRecovered: m.recovered.Load(),
		ChipsReplayed:      m.replayed.Load(),
	}
	if m.journal != nil {
		js := m.journal.Stats()
		st.JournalSegments = js.Segments
		st.JournalOpenSegments = js.OpenSegments
		st.JournalBytes = js.Bytes
		st.JournalAppendErrors = js.AppendErrors
	}
	m.mu.Lock()
	camps := slices.Clone(m.order)
	dispatched := make([]int, len(camps))
	for i, c := range camps {
		dispatched[i] = c.nextDispatch
	}
	m.mu.Unlock()
	st.CampaignsByWorkload = make(map[string]int)
	for i, c := range camps {
		c.mu.Lock()
		st.Campaigns++
		st.CampaignsByWorkload[c.workload]++
		if c.bins != nil {
			st.BinHistogramBins += len(c.bins.Counts)
		}
		switch c.state {
		case StateQueued:
			st.CampaignsQueued++
		case StateRunning:
			st.CampaignsRunning++
		case StateDone:
			st.CampaignsDone++
		case StateCancelled:
			st.CampaignsCancelled++
		case StateFailed:
			st.CampaignsFailed++
		}
		if c.results != nil && !c.state.Terminal() {
			d := min(dispatched[i], len(c.results))
			st.ChipsPending += len(c.results) - d
			if inflight := d - c.completed; inflight > 0 {
				st.ChipsInFlight += inflight
			}
		}
		c.mu.Unlock()
	}
	return st
}

// Campaign looks a campaign up by ID.
func (m *Manager) Campaign(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// Campaigns lists every campaign in submission order.
func (m *Manager) Campaigns() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	return slices.Clone(m.order)
}

// enqueue hands a prepared campaign to the dispatcher.
func (m *Manager) enqueue(c *Campaign) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.mu.Lock()
		c.settleLocked(0, ErrManagerClosed)
		c.mu.Unlock()
		return
	}
	m.active = append(m.active, c)
	m.mu.Unlock()
	m.wakeDispatcher()
}

func (m *Manager) wakeDispatcher() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// dropActiveLocked removes c from the round-robin set. Caller holds m.mu.
func (m *Manager) dropActiveLocked(c *Campaign) {
	for i, other := range m.active {
		if other == c {
			m.active = slices.Delete(m.active, i, i+1)
			if m.rr > i {
				m.rr--
			}
			return
		}
	}
}

// nextJob picks the next (campaign, chip) pair round-robin across active
// campaigns — one chip per campaign per turn, so campaigns share the pool
// fairly regardless of size.
func (m *Manager) nextJob() (job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.active) > 0 {
		if m.rr >= len(m.active) {
			m.rr = 0
		}
		c := m.active[m.rr]
		c.mu.Lock()
		n := len(c.chips)
		// Skip positions that already hold a result — chips replayed from
		// the journal occupy their slots before dispatch ever starts.
		for c.nextDispatch < len(c.results) && c.results[c.nextDispatch] != nil {
			c.nextDispatch++
		}
		c.mu.Unlock()
		if c.nextDispatch >= n {
			m.dropActiveLocked(c)
			continue
		}
		j := job{c: c, idx: c.nextDispatch}
		c.nextDispatch++
		if c.nextDispatch >= n {
			m.dropActiveLocked(c)
		} else {
			m.rr++
		}
		return j, true
	}
	return job{}, false
}

// dispatch is the scheduling loop: it feeds the shared pool one fairly
// chosen job at a time and parks when no campaign has undispatched chips.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	for {
		j, ok := m.nextJob()
		if !ok {
			select {
			case <-m.wake:
				continue
			case <-m.stop:
				return
			}
		}
		select {
		case m.jobs <- j:
		case <-m.stop:
			// The picked job never reached a worker; resolve it here so the
			// campaign still settles with a full result set.
			j.c.mu.Lock()
			ch := j.c.chips[j.idx]
			j.c.mu.Unlock()
			j.c.deliver(effitest.ChipResult{Index: j.idx, Chip: ch, Err: ErrManagerClosed})
			return
		}
	}
}

func (m *Manager) worker() {
	defer m.workerWG.Done()
	for j := range m.jobs {
		j.c.run(j.idx)
	}
}

// Shutdown drains the manager: no new campaigns are accepted, undispatched
// chips across all campaigns resolve to ErrManagerClosed results, and the
// call blocks until in-flight chips finish and every pool goroutine exits.
// If ctx expires first, the in-flight chips are hard-cancelled through
// their campaign contexts (they abort within one tester iteration) and
// Shutdown keeps waiting for the goroutines, returning the context's
// error. Shutdown is idempotent: one caller performs the drain, later and
// concurrent calls wait for it (or their own context).
//
// With a journal attached (WithJournal) the durable contract differs from
// the in-memory one: the ErrManagerClosed fills and the resulting
// cancelled states are scheduling artifacts of this process, so they are
// NOT written to the log — no settle record is appended once the drain
// has begun, and undispatched chips stay unsettled in their segments.
// In-flight chips that complete during the drain are journaled as usual.
// A campaign interrupted by Shutdown therefore recovers on the next boot
// exactly like one interrupted by a crash: completed chips replay, the
// rest re-execute. Closing the journal itself remains the caller's job,
// after Shutdown returns.
func (m *Manager) Shutdown(ctx context.Context) error {
	first := false
	m.shutdownOnce.Do(func() {
		first = true
		close(m.stop)
	})
	if !first {
		select {
		case <-m.drained:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	defer close(m.drained)

	m.mu.Lock()
	m.closed = true
	actives := slices.Clone(m.order)
	m.mu.Unlock()

	<-m.dispatcherDone

	// The dispatcher has stopped: nextDispatch values are frozen, so tag
	// everything undispatched and cancel campaigns that never got chips.
	for _, c := range actives {
		m.mu.Lock()
		start := c.nextDispatch
		c.nextDispatch = 1 << 30
		m.dropActiveLocked(c)
		m.mu.Unlock()

		c.mu.Lock()
		switch {
		case c.state.Terminal():
		case c.results == nil:
			// Still preparing: cancel the prep; failPrep settles it.
			c.mu.Unlock()
			c.cancel()
			c.mu.Lock()
			c.cond.Broadcast()
		case start < len(c.results):
			c.settleLocked(start, ErrManagerClosed)
		}
		// Fully dispatched campaigns are left to finish: their in-flight
		// chips are exactly what the drain waits for.
		c.mu.Unlock()
	}

	// One worker may be parked on the jobs channel; it drains queued jobs
	// (they execute — those chips were already dispatched) and exits on
	// close. The dispatcher was the only sender.
	close(m.jobs)

	done := make(chan struct{})
	go func() {
		m.workerWG.Wait()
		m.prepWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range actives {
			c.cancel()
		}
		<-done
		return ctx.Err()
	}
}
