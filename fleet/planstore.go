package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"effitest"
)

// PlanStore is a content-addressed in-memory store of plan artifacts, the
// backing for effitestd's plan upload/download endpoints. Artifacts are
// validated on Put (both serialization forms decode through the PR-3
// codecs) and keyed by the SHA-256 of their bytes, so an upload is
// idempotent and a downloaded artifact is verifiably the uploaded one.
type PlanStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewPlanStore builds an empty store.
func NewPlanStore() *PlanStore {
	return &PlanStore{blobs: map[string][]byte{}}
}

// Put validates and stores a plan artifact (binary or JSON form) and
// returns its content address.
func (ps *PlanStore) Put(data []byte) (string, error) {
	if _, err := effitest.DecodePlan(data); err != nil {
		return "", fmt.Errorf("fleet: invalid plan artifact: %w", err)
	}
	sum := sha256.Sum256(data)
	id := hex.EncodeToString(sum[:])
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, ok := ps.blobs[id]; !ok {
		ps.blobs[id] = append([]byte(nil), data...)
	}
	return id, nil
}

// Get returns the artifact bytes for a content address.
func (ps *PlanStore) Get(id string) ([]byte, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	data, ok := ps.blobs[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Decode fetches and decodes the artifact for a content address; the
// returned plan is unbound (see effitest.WithPlan).
func (ps *PlanStore) Decode(id string) (*effitest.Plan, bool, error) {
	data, ok := ps.Get(id)
	if !ok {
		return nil, false, nil
	}
	pl, err := effitest.DecodePlan(data)
	if err != nil {
		return nil, true, err
	}
	return pl, true, nil
}

// IDs lists the stored content addresses, sorted.
func (ps *PlanStore) IDs() []string {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ids := make([]string, 0, len(ps.blobs))
	for id := range ps.blobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
