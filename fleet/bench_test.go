package fleet_test

import (
	"context"
	"net/http/httptest"
	"testing"

	"effitest"
	"effitest/fleet"
	"effitest/fleet/client"
	"effitest/fleet/httpapi"
)

// benchCircuit matches the wire spec used by BenchmarkCampaignThroughputHTTP,
// so both benchmarks run identical work and the chips/s gap is pure
// transport + service overhead.
const benchChips = 32

func benchSpec() (httpapi.CircuitSpec, httpapi.ConfigSpec, httpapi.ChipSpec) {
	return httpapi.CircuitSpec{
			Custom:  &httpapi.CustomProfile{Name: "bench24", FFs: 24, Gates: 200, Buffers: 3, Paths: 24},
			GenSeed: 4,
		}, httpapi.ConfigSpec{Quantile: 0.8413, CalibChips: 100},
		httpapi.ChipSpec{Seed: 9, Count: benchChips}
}

// BenchmarkCampaignThroughputInProcess measures chips/s through the fleet
// manager directly: submit → shared pool → settle, no HTTP.
func BenchmarkCampaignThroughputInProcess(b *testing.B) {
	m, err := fleet.NewManager()
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	cs, _, _ := benchSpec()
	c, err := effitest.Generate(effitest.NewProfile(cs.Custom.Name, cs.Custom.FFs, cs.Custom.Gates, cs.Custom.Buffers, cs.Custom.Paths), cs.GenSeed)
	if err != nil {
		b.Fatal(err)
	}
	opts := []effitest.Option{effitest.WithPeriodQuantile(0.8413, 100)}
	ctx := context.Background()

	// Warm the registry so the measured loop is pure campaign execution.
	warm, err := m.Submit(fleet.CampaignSpec{Circuit: c, Options: opts, ChipSeed: 9, ChipCount: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Wait(ctx); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp, err := m.Submit(fleet.CampaignSpec{Circuit: c, Options: opts, ChipSeed: 9, ChipCount: benchChips})
		if err != nil {
			b.Fatal(err)
		}
		if st, err := camp.Wait(ctx); err != nil || st.State != fleet.StateDone {
			b.Fatalf("campaign: %v %v", st.State, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchChips*b.N)/b.Elapsed().Seconds(), "chips/s")
}

// BenchmarkCampaignThroughputHTTP measures the same campaign over HTTP
// loopback through the Go client, including the NDJSON result stream.
func BenchmarkCampaignThroughputHTTP(b *testing.B) {
	m, err := fleet.NewManager()
	if err != nil {
		b.Fatal(err)
	}
	defer m.Shutdown(context.Background())
	ts := httptest.NewServer(httpapi.New(m))
	defer ts.Close()
	cl := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	cs, cf, chips := benchSpec()
	ctx := context.Background()
	warmChips := chips
	warmChips.Count = 1
	warm, err := cl.Submit(ctx, httpapi.CampaignRequest{Circuit: cs, Config: cf, Chips: warmChips})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cl.WaitSettled(ctx, warm.ID); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := cl.Submit(ctx, httpapi.CampaignRequest{Circuit: cs, Config: cf, Chips: chips})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for res, err := range cl.StreamResults(ctx, st.ID) {
			if err != nil || res.Error != "" {
				b.Fatalf("chip %d: %v %s", n, err, res.Error)
			}
			n++
		}
		if n != benchChips {
			b.Fatalf("streamed %d/%d results", n, benchChips)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchChips*b.N)/b.Elapsed().Seconds(), "chips/s")
}
