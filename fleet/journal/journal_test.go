package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openT opens a journal in a fresh temp dir without fsync (the discipline
// under test is framing and recovery, not the disk).
func openT(t *testing.T) (*Journal, string) {
	t.Helper()
	dir := t.TempDir()
	j, err := Open(dir, WithoutSync())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, dir
}

func reopenT(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir, WithoutSync())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func spec(id string, count int) Spec {
	return Spec{
		ID:        id,
		Key:       "k-" + id,
		Name:      "campaign " + id,
		CircuitFP: "circ-fp",
		ConfigFP:  "conf-fp",
		ChipSeed:  7,
		ChipCount: count,
		Payload:   []byte(`{"name":"` + id + `"}`),
	}
}

func chip(i int, passed bool) ChipRecord {
	return ChipRecord{
		Index:     i,
		ChipIndex: 100 + i,
		Outcome: &Outcome{
			Iterations: 40 + i,
			ScanBits:   int64(1000 + i),
			AlignNS:    123456,
			PredictNS:  789,
			BoundsLo:   []float64{0.25, 0.5},
			BoundsHi:   []float64{0.75, 1.5},
			X:          []float64{1.0, -0.5},
			Xi:         0.125,
			Configured: true,
			Passed:     passed,
		},
	}
}

// TestRoundTrip pins the core contract: what Begin and AppendChip wrote, a
// fresh journal's Recover reads back record-for-record, field-for-field,
// and the resumed segment accepts further appends.
func TestRoundTrip(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 4)
	if err := j.Begin(sp); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := j.AppendChip(sp.ID, chip(0, true)); err != nil {
		t.Fatalf("AppendChip: %v", err)
	}
	if err := j.AppendChip(sp.ID, ChipRecord{Index: 1, ChipIndex: 101, Error: "deterministic failure"}); err != nil {
		t.Fatalf("AppendChip err record: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := reopenT(t, dir)
	camps, err := j2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(camps) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(camps))
	}
	c := camps[0]
	if c.Settled() {
		t.Fatalf("campaign settled = %q, want resumable", c.State)
	}
	if c.Spec.ID != sp.ID || c.Spec.Key != sp.Key || c.Spec.CircuitFP != sp.CircuitFP ||
		c.Spec.ConfigFP != sp.ConfigFP || c.Spec.ChipSeed != sp.ChipSeed ||
		c.Spec.ChipCount != sp.ChipCount || !bytes.Equal(c.Spec.Payload, sp.Payload) {
		t.Fatalf("spec did not round-trip: %+v", c.Spec)
	}
	if len(c.Chips) != 2 {
		t.Fatalf("recovered %d chips, want 2", len(c.Chips))
	}
	want := chip(0, true)
	got := c.Chips[0]
	if got.Index != want.Index || got.ChipIndex != want.ChipIndex || got.Outcome == nil {
		t.Fatalf("chip 0 did not round-trip: %+v", got)
	}
	if c.Chips[1].Error != "deterministic failure" || c.Chips[1].Outcome != nil {
		t.Fatalf("error chip did not round-trip: %+v", c.Chips[1])
	}

	// The recovered segment must still be appendable and settleable.
	if err := j2.AppendChip(sp.ID, chip(2, false)); err != nil {
		t.Fatalf("append after recover: %v", err)
	}
	if err := j2.Settle(sp.ID, "done", ""); err != nil {
		t.Fatalf("Settle after recover: %v", err)
	}
}

// Outcome contains slices, so the equality above cannot use ==. Keep the
// type non-comparable honest: compare the one outcome deeply here.
func TestOutcomeRoundTripDeep(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 1)
	if err := j.Begin(sp); err != nil {
		t.Fatal(err)
	}
	want := chip(0, true)
	if err := j.AppendChip(sp.ID, want); err != nil {
		t.Fatal(err)
	}
	j.Close()

	camps, err := reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 || len(camps[0].Chips) != 1 {
		t.Fatalf("recover: %v, %+v", err, camps)
	}
	got := camps[0].Chips[0].Outcome
	w := want.Outcome
	if got.Iterations != w.Iterations || got.ScanBits != w.ScanBits ||
		got.AlignNS != w.AlignNS || got.ConfigNS != w.ConfigNS || got.PredictNS != w.PredictNS ||
		got.Xi != w.Xi || got.Configured != w.Configured || got.Passed != w.Passed {
		t.Fatalf("outcome scalars: got %+v want %+v", got, w)
	}
	for name, pair := range map[string][2][]float64{
		"BoundsLo": {got.BoundsLo, w.BoundsLo},
		"BoundsHi": {got.BoundsHi, w.BoundsHi},
		"X":        {got.X, w.X},
	} {
		g, ww := pair[0], pair[1]
		if len(g) != len(ww) {
			t.Fatalf("%s length: %d != %d", name, len(g), len(ww))
		}
		for i := range g {
			if g[i] != ww[i] {
				t.Fatalf("%s[%d]: %v != %v (bit-identity broken)", name, i, g[i], ww[i])
			}
		}
	}
}

// TestSettleCompacts pins the compaction contract: after Settle, the
// segment shrinks to spec (payload stripped) + settle, recovery reports it
// terminal with no chips, and the segment refuses further appends.
func TestSettleCompacts(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 8)
	if err := j.Begin(sp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := j.AppendChip(sp.ID, chip(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(filepath.Join(dir, "c000001.wal"))
	if err := j.Settle(sp.ID, "done", ""); err != nil {
		t.Fatalf("Settle: %v", err)
	}
	after, err := os.Stat(filepath.Join(dir, "c000001.wal"))
	if err != nil {
		t.Fatalf("stat after compact: %v", err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink segment: %d -> %d bytes", before.Size(), after.Size())
	}
	if st := j.Stats(); st.Compactions != 1 || st.OpenSegments != 0 || st.Segments != 1 {
		t.Fatalf("stats after settle: %+v", st)
	}
	if err := j.AppendChip(sp.ID, chip(0, true)); !errors.Is(err, ErrSegmentClosed) {
		t.Fatalf("append after settle = %v, want ErrSegmentClosed", err)
	}

	camps, err := reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 {
		t.Fatalf("recover: %v, %d campaigns", err, len(camps))
	}
	c := camps[0]
	if !c.Settled() || c.State != "done" {
		t.Fatalf("state = %q, want done", c.State)
	}
	if len(c.Chips) != 0 {
		t.Fatalf("compacted segment kept %d chips", len(c.Chips))
	}
	if c.Spec.Payload != nil {
		t.Fatal("compaction must drop the spec payload")
	}
	if c.Spec.Key != sp.Key {
		t.Fatal("compaction must keep the idempotency key")
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage after the
// last intact frame is cut on recovery and the intact records survive.
func TestTornTailTruncated(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 4)
	if err := j.Begin(sp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.AppendChip(sp.ID, chip(i, true)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	path := filepath.Join(dir, "c000001.wal")
	intact, _ := os.Stat(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	// Half a header, as a torn final Write would leave.
	f.Write([]byte{0x20, 0x00, 0x00})
	f.Close()

	j2 := reopenT(t, dir)
	camps, err := j2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(camps) != 1 || len(camps[0].Chips) != 3 {
		t.Fatalf("recover after torn tail: %+v", camps)
	}
	if st := j2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", st.TornTruncations)
	}
	if fi, _ := os.Stat(path); fi.Size() != intact.Size() {
		t.Fatalf("tail not truncated: %d bytes, want %d", fi.Size(), intact.Size())
	}
	// The cut segment accepts appends again — the log stays append-clean.
	if err := j2.AppendChip(sp.ID, chip(3, true)); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	j2.Close()
	camps, err = reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 || len(camps[0].Chips) != 4 {
		t.Fatalf("second recover: %v, %+v", err, camps)
	}
}

// TestBitFlipTruncates pins the CRC discipline: a flipped byte inside a
// frame body ends the trusted prefix at that frame — later records are
// gone (drop, never guess), earlier ones survive.
func TestBitFlipTruncates(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 4)
	if err := j.Begin(sp); err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for i := 0; i < 3; i++ {
		if err := j.AppendChip(sp.ID, chip(i, true)); err != nil {
			t.Fatal(err)
		}
		st := j.Stats()
		sizes = append(sizes, st.Bytes)
	}
	j.Close()

	path := filepath.Join(dir, "c000001.wal")
	data, _ := os.ReadFile(path)
	// Flip one bit in the body of the second chip record (between the size
	// snapshots after chip 0 and chip 1).
	pos := sizes[0] + frameHeader + 4
	data[pos] ^= 0x01
	os.WriteFile(path, data, 0o666)

	j2 := reopenT(t, dir)
	camps, err := j2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(camps) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(camps))
	}
	if got := len(camps[0].Chips); got != 1 {
		t.Fatalf("recovered %d chips after bit flip in chip 1, want 1", got)
	}
	if camps[0].Chips[0].Index != 0 {
		t.Fatalf("surviving chip is %d, want 0", camps[0].Chips[0].Index)
	}
	if st := j2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", st.TornTruncations)
	}
}

// TestUntrustworthySegmentSkipped pins the never-fabricate rule: a segment
// whose spec does not match its file name is renamed aside, not adopted.
func TestUntrustworthySegmentSkipped(t *testing.T) {
	j, dir := openT(t)
	// A valid segment... under the wrong file name.
	if err := j.Begin(spec("c000009", 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.Rename(filepath.Join(dir, "c000009.wal"), filepath.Join(dir, "c000001.wal")); err != nil {
		t.Fatal(err)
	}
	// And one that is pure garbage.
	os.WriteFile(filepath.Join(dir, "c000002.wal"), []byte("not a journal segment"), 0o666)

	j2 := reopenT(t, dir)
	camps, err := j2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(camps) != 0 {
		t.Fatalf("fabricated %d campaigns from corrupt segments", len(camps))
	}
	if st := j2.Stats(); st.SegmentsSkipped != 2 {
		t.Fatalf("SegmentsSkipped = %d, want 2", st.SegmentsSkipped)
	}
	for _, id := range []string{"c000001", "c000002"} {
		if _, err := os.Stat(filepath.Join(dir, id+".wal.corrupt")); err != nil {
			t.Errorf("%s not set aside: %v", id, err)
		}
	}
}

// TestDuplicateChipKeepsFirst: on replay the first record for an index
// wins; a duplicate (e.g. a retried append racing a crash) is dropped.
func TestDuplicateChipKeepsFirst(t *testing.T) {
	j, dir := openT(t)
	sp := spec("c000001", 4)
	if err := j.Begin(sp); err != nil {
		t.Fatal(err)
	}
	first := chip(2, true)
	second := chip(2, false)
	second.Outcome.Iterations = 999
	j.AppendChip(sp.ID, first)
	j.AppendChip(sp.ID, second)
	j.Close()

	camps, err := reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 {
		t.Fatalf("recover: %v", err)
	}
	if len(camps[0].Chips) != 1 || camps[0].Chips[0].Outcome.Iterations != first.Outcome.Iterations {
		t.Fatalf("duplicate handling: %+v", camps[0].Chips)
	}
}

// TestOutOfRangeAndOutcomelessChipsSkipped: individually damaged records
// inside an intact frame prefix are dropped without poisoning the segment.
func TestOutOfRangeAndOutcomelessChipsSkipped(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = appendJSON(t, buf, recSpec, spec("c000001", 2))
	buf = appendJSON(t, buf, recChip, ChipRecord{Index: 7, ChipIndex: 1, Outcome: &Outcome{Iterations: 1}}) // out of range
	buf = appendJSON(t, buf, recChip, ChipRecord{Index: -1, Error: "x"})                                    // negative
	buf = appendJSON(t, buf, recChip, ChipRecord{Index: 0, ChipIndex: 100})                                 // success without outcome
	buf = appendJSON(t, buf, recChip, chip(1, true))                                                        // good
	buf = appendFrame(buf, 99, []byte(`{"future":"record"}`))                                               // unknown type
	if err := os.WriteFile(filepath.Join(dir, "c000001.wal"), buf, 0o666); err != nil {
		t.Fatal(err)
	}
	j := reopenT(t, dir)
	camps, err := j.Recover()
	if err != nil || len(camps) != 1 {
		t.Fatalf("recover: %v", err)
	}
	if len(camps[0].Chips) != 1 || camps[0].Chips[0].Index != 1 {
		t.Fatalf("damage containment: %+v", camps[0].Chips)
	}
}

// TestRecordsAfterSettleIgnored: a settle ends the campaign's story; any
// trailing records (late appends racing the settle) are unreachable.
func TestRecordsAfterSettleIgnored(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = appendJSON(t, buf, recSpec, spec("c000001", 4))
	buf = appendJSON(t, buf, recChip, chip(0, true))
	buf = appendJSON(t, buf, recSettle, settleRecord{State: "cancelled", Error: "operator"})
	buf = appendJSON(t, buf, recChip, chip(1, true))
	os.WriteFile(filepath.Join(dir, "c000001.wal"), buf, 0o666)

	camps, err := reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 {
		t.Fatalf("recover: %v", err)
	}
	c := camps[0]
	if c.State != "cancelled" || c.Err != "operator" {
		t.Fatalf("settle: %q/%q", c.State, c.Err)
	}
	if len(c.Chips) != 1 {
		t.Fatalf("records after settle leaked: %+v", c.Chips)
	}
}

// TestBeginErrors covers the duplicate and validation refusals.
func TestBeginErrors(t *testing.T) {
	j, _ := openT(t)
	if err := j.Begin(spec("c000001", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(spec("c000001", 1)); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Begin = %v, want ErrExists", err)
	}
	for _, id := range []string{"", ".hidden", "a/b", "a b", strings.Repeat("x", 201)} {
		if err := j.Begin(spec(id, 1)); err == nil {
			t.Errorf("Begin(%q) accepted an invalid id", id)
		}
	}
	if err := j.AppendChip("c999999", chip(0, true)); !errors.Is(err, ErrSegmentClosed) {
		t.Fatalf("append to unknown = %v, want ErrSegmentClosed", err)
	}
	if err := j.Settle("c999999", "done", ""); !errors.Is(err, ErrSegmentClosed) {
		t.Fatalf("settle unknown = %v, want ErrSegmentClosed", err)
	}
}

// TestCloseNeverSettles: Close is a crash-equivalent flush — reopening
// finds the campaign unsettled and resumable, and post-Close operations
// fail with ErrClosed.
func TestCloseNeverSettles(t *testing.T) {
	j, dir := openT(t)
	if err := j.Begin(spec("c000001", 2)); err != nil {
		t.Fatal(err)
	}
	j.AppendChip("c000001", chip(0, true))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendChip("c000001", chip(1, true)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	if _, err := j.Recover(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recover after close = %v, want ErrClosed", err)
	}
	camps, err := reopenT(t, dir).Recover()
	if err != nil || len(camps) != 1 || camps[0].Settled() {
		t.Fatalf("campaign not resumable after Close: %v %+v", err, camps)
	}
}

// TestRecoverRemovesTempFiles: leftover compaction temp files from a crash
// mid-compaction are garbage (the settle in the main segment is already
// durable) and get removed.
func TestRecoverRemovesTempFiles(t *testing.T) {
	_, dir := openT(t)
	tmp := filepath.Join(dir, "c000001.wal.tmp")
	os.WriteFile(tmp, []byte("half-written compaction"), 0o666)
	if _, err := reopenT(t, dir).Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file survived recovery: %v", err)
	}
}

// appendJSON frames one record the way the writer does, for hand-built
// segment fixtures.
func appendJSON(t *testing.T, buf []byte, typ byte, v any) []byte {
	t.Helper()
	frame, err := encodeRecord(typ, v)
	if err != nil {
		t.Fatal(err)
	}
	return append(buf, frame...)
}
