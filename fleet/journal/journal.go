// Package journal is the fleet's durable campaign log: an append-only,
// fsync-disciplined write-ahead record of campaign lifecycle that makes
// effitestd crash-safe. Each campaign owns one segment file
// (<campaign-id>.wal) holding a spec record, then one record per completed
// chip, then a terminal settle record. Records are CRC-framed (see
// record.go); on reopen, Recover truncates torn tails, skips segments that
// cannot be trusted, and hands back every campaign so the manager can
// replay completed chips instead of re-executing them — bit-identical,
// because the flow itself is deterministic.
//
// Fsync policy: every append is flushed with one write syscall and fsynced
// before the call returns, and segment creation fsyncs the directory — a
// record acknowledged to the caller survives a kernel panic. WithoutSync
// relaxes this for tests. Once a campaign settles, its segment is
// compacted to spec + settle (the per-chip history is dead weight once the
// outcome is final) via write-temp, fsync, rename, fsync-dir.
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Sentinel errors; match with errors.Is.
var (
	// ErrClosed tags operations on a closed journal.
	ErrClosed = errors.New("journal: closed")
	// ErrSegmentClosed tags an append for a campaign whose segment is not
	// open — it already settled (and was compacted) or was never begun.
	// Callers racing a settle may treat it as benign: the record would have
	// been dropped by recovery anyway (nothing after settle is replayed).
	ErrSegmentClosed = errors.New("journal: segment closed")
	// ErrExists tags a Begin for a campaign ID that already has a segment.
	ErrExists = errors.New("journal: segment exists")
)

const (
	segSuffix     = ".wal"
	tmpSuffix     = ".wal.tmp"
	corruptSuffix = ".corrupt"
)

// Stats is a point-in-time snapshot of the journal's footprint and
// traffic, cheap enough for a hot /stats endpoint.
type Stats struct {
	// Segments counts tracked segment files on disk; OpenSegments counts
	// the subset still accepting appends (unsettled campaigns).
	Segments     int
	OpenSegments int
	// Bytes is the on-disk size of tracked segments.
	Bytes int64
	// Records counts records appended through this journal instance.
	Records int64
	// AppendErrors counts appends that failed (I/O errors, disk full). The
	// manager keeps executing — losing durability degrades recovery, not
	// correctness — so this counter is the operator's signal.
	AppendErrors int64
	// TornTruncations counts torn or corrupt tails cut off by Recover;
	// SegmentsSkipped counts segments Recover refused to trust at all.
	TornTruncations int64
	SegmentsSkipped int64
	// Compactions counts settled segments rewritten to spec + settle.
	Compactions int64
}

// segment is one open (appendable) campaign log file.
type segment struct {
	f    *os.File
	size int64
}

// Journal is a directory of campaign segments. All methods are safe for
// concurrent use; appends across campaigns serialize on one mutex, which
// is deliberate — the fsync is the cost, and one disciplined writer keeps
// the format trivially torn-tail-recoverable.
type Journal struct {
	dir  string
	sync bool

	mu       sync.Mutex
	closed   bool
	open     map[string]*segment
	settled  int   // settled (compacted) segments on disk
	settledB int64 // bytes held by settled segments
	records  int64
	appendE  int64
	torn     int64
	skipped  int64
	compacts int64
}

// Option configures a Journal at Open time.
type Option func(*Journal)

// WithoutSync disables the per-record fsync (directory syncs too). Only
// for tests: an acknowledged record may be lost on power failure.
func WithoutSync() Option {
	return func(j *Journal) { j.sync = false }
}

// Open creates or reuses the journal directory. Existing segments are not
// read here — call Recover to adopt them.
func Open(dir string, opts ...Option) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, sync: true, open: map[string]*segment{}}
	for _, o := range opts {
		o(j)
	}
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// ValidateID reports whether id is usable as a segment name: 1–200 bytes
// of [A-Za-z0-9._-], not starting with a dot. Manager-assigned campaign
// IDs (c%06d) always pass; the check exists so a hostile recovered ID can
// never escape the journal directory.
func ValidateID(id string) error {
	if id == "" || len(id) > 200 || id[0] == '.' {
		return fmt.Errorf("journal: invalid campaign id %q", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("journal: invalid campaign id %q", id)
		}
	}
	return nil
}

// Begin opens a new segment for a campaign and durably appends its spec
// record. The campaign is recoverable from the moment Begin returns.
func (j *Journal) Begin(sp Spec) error {
	if err := ValidateID(sp.ID); err != nil {
		return err
	}
	frame, err := encodeRecord(recSpec, sp)
	if err != nil {
		return fmt.Errorf("journal: encoding spec: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.open[sp.ID]; ok {
		return fmt.Errorf("%w: %s", ErrExists, sp.ID)
	}
	path := filepath.Join(j.dir, sp.ID+segSuffix)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("%w: %s", ErrExists, sp.ID)
		}
		j.appendE++
		return fmt.Errorf("journal: %w", err)
	}
	seg := &segment{f: f}
	if err := j.appendLocked(seg, frame); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	// The record is durable in the file; make the file itself durable.
	if err := j.syncDirLocked(); err != nil {
		f.Close()
		return err
	}
	j.open[sp.ID] = seg
	return nil
}

// AppendChip durably appends one completed chip to the campaign's segment.
// Appending to a settled (or unknown) campaign returns ErrSegmentClosed.
func (j *Journal) AppendChip(id string, rec ChipRecord) error {
	frame, err := encodeRecord(recChip, rec)
	if err != nil {
		return fmt.Errorf("journal: encoding chip record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	seg, ok := j.open[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrSegmentClosed, id)
	}
	return j.appendLocked(seg, frame)
}

// Settle durably appends the campaign's terminal record, then compacts the
// segment down to spec + settle: the per-chip history only matters while
// the outcome is still open. The settle record is fsynced before
// compaction starts, so a crash at any point leaves the campaign terminal
// on disk.
func (j *Journal) Settle(id, state, errMsg string) error {
	frame, err := encodeRecord(recSettle, settleRecord{State: state, Error: errMsg})
	if err != nil {
		return fmt.Errorf("journal: encoding settle record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	seg, ok := j.open[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrSegmentClosed, id)
	}
	if err := j.appendLocked(seg, frame); err != nil {
		return err
	}
	j.compactLocked(id, seg, state, errMsg)
	return nil
}

// appendLocked writes one frame and fsyncs. Called with j.mu held.
func (j *Journal) appendLocked(seg *segment, frame []byte) error {
	if _, err := seg.f.Write(frame); err != nil {
		j.appendE++
		return fmt.Errorf("journal: append: %w", err)
	}
	seg.size += int64(len(frame))
	if j.sync {
		if err := seg.f.Sync(); err != nil {
			j.appendE++
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	j.records++
	return nil
}

// compactLocked rewrites a settled segment to spec (payload dropped — it
// will never be re-admitted) + settle, via temp file and atomic rename.
// Best-effort: on any failure the full segment simply stays, which
// recovery handles identically (the settle record is already durable).
// Called with j.mu held; the segment leaves the open set either way.
func (j *Journal) compactLocked(id string, seg *segment, state, errMsg string) {
	delete(j.open, id)
	j.settled++
	finalSize := seg.size
	defer func() {
		seg.f.Close()
		j.settledB += finalSize
	}()

	sp, ok := j.readSpecLocked(id)
	if !ok {
		return
	}
	sp.Payload = nil
	buf, err := encodeRecord(recSpec, sp)
	if err != nil {
		return
	}
	settle, err := encodeRecord(recSettle, settleRecord{State: state, Error: errMsg})
	if err != nil {
		return
	}
	buf = append(buf, settle...)
	tmp := filepath.Join(j.dir, id+tmpSuffix)
	if err := j.writeFileSynced(tmp, buf); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, id+segSuffix)); err != nil {
		os.Remove(tmp)
		return
	}
	j.syncDirLocked()
	j.compacts++
	finalSize = int64(len(buf))
}

// readSpecLocked re-reads a segment's spec record (compaction needs it;
// the journal does not keep specs in memory).
func (j *Journal) readSpecLocked(id string) (Spec, bool) {
	data, err := os.ReadFile(filepath.Join(j.dir, id+segSuffix))
	if err != nil {
		return Spec{}, false
	}
	camp, _, ok := parseSegment(id, data)
	if !ok {
		return Spec{}, false
	}
	return camp.Spec, true
}

// writeFileSynced writes data to path and fsyncs the file.
func (j *Journal) writeFileSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if j.sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// syncDirLocked fsyncs the journal directory, making creations and renames
// durable.
func (j *Journal) syncDirLocked() error {
	if !j.sync {
		return nil
	}
	d, err := os.Open(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Segments:        len(j.open) + j.settled,
		OpenSegments:    len(j.open),
		Bytes:           j.settledB,
		Records:         j.records,
		AppendErrors:    j.appendE,
		TornTruncations: j.torn,
		SegmentsSkipped: j.skipped,
		Compactions:     j.compacts,
	}
	for _, seg := range j.open {
		st.Bytes += seg.size
	}
	return st
}

// Close flushes and closes every open segment. The journal directory stays
// fully recoverable; Close never settles anything.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var first error
	for id, seg := range j.open {
		if j.sync {
			if err := seg.f.Sync(); err != nil && first == nil {
				first = err
			}
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		delete(j.open, id)
	}
	return first
}
