package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at segment recovery as the file
// for campaign "c000001" and holds the journal to its safety contract:
//
//   - Recover never panics and never errors on content damage (only real
//     I/O faults may surface as errors);
//   - it never fabricates: at most one campaign comes back, its ID is the
//     file's ID, chip indices are unique, in range, and a chip without an
//     error always carries an outcome;
//   - repair converges: a second open-and-recover of the repaired
//     directory reproduces the first result exactly.
//
// Seeds cover the interesting shapes: intact logs, settled logs, torn
// tails, bit flips, trailing records after settle, and cross-linked
// segments claiming another campaign's ID. The checked-in corpus under
// testdata/fuzz/FuzzJournalReplay pins the same shapes for CI runs, where
// the fuzzer only replays the corpus.
func FuzzJournalReplay(f *testing.F) {
	for _, seed := range corpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "c000001.wal")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, WithoutSync())
		if err != nil {
			t.Fatal(err)
		}
		camps, err := j.Recover()
		if err != nil {
			t.Fatalf("Recover errored on content damage: %v", err)
		}
		if len(camps) > 1 {
			t.Fatalf("one segment produced %d campaigns", len(camps))
		}
		if len(camps) == 1 {
			c := camps[0]
			if c.Spec.ID != "c000001" {
				t.Fatalf("fabricated campaign %q from file c000001.wal", c.Spec.ID)
			}
			seen := map[int]bool{}
			for _, ch := range c.Chips {
				if ch.Index < 0 || (c.Spec.ChipCount > 0 && ch.Index >= c.Spec.ChipCount) {
					t.Fatalf("chip index %d outside population %d", ch.Index, c.Spec.ChipCount)
				}
				if seen[ch.Index] {
					t.Fatalf("duplicate chip index %d survived replay", ch.Index)
				}
				seen[ch.Index] = true
				if ch.Error == "" && ch.Outcome == nil {
					t.Fatal("outcome-less success record survived replay")
				}
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		// Repair must converge: recovering the repaired directory again
		// (truncated tails cut, corrupt segments set aside) yields the
		// identical campaigns.
		j2, err := Open(dir, WithoutSync())
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		again, err := j2.Recover()
		if err != nil {
			t.Fatalf("second Recover: %v", err)
		}
		if !reflect.DeepEqual(camps, again) {
			t.Fatalf("repair did not converge:\nfirst:  %+v\nsecond: %+v", camps, again)
		}
	})
}

// corpusSeeds builds the seed inputs with the real encoder, so they track
// the format. The files in testdata/fuzz/FuzzJournalReplay hold the same
// shapes frozen at generation time.
func corpusSeeds() [][]byte {
	mustFrame := func(buf []byte, typ byte, v any) []byte {
		frame, err := encodeRecord(typ, v)
		if err != nil {
			panic(err)
		}
		return append(buf, frame...)
	}
	sp := Spec{ID: "c000001", Key: "k", CircuitFP: "cfp", ConfigFP: "ofp", ChipSeed: 7, ChipCount: 4, Payload: []byte(`{"n":1}`)}
	ch := func(i int) ChipRecord {
		return ChipRecord{Index: i, ChipIndex: 100 + i, Outcome: &Outcome{
			Iterations: 40 + i, ScanBits: 1000, BoundsLo: []float64{0.5}, BoundsHi: []float64{1.5}, Passed: true,
		}}
	}

	var intact []byte
	intact = mustFrame(intact, recSpec, sp)
	intact = mustFrame(intact, recChip, ch(0))
	intact = mustFrame(intact, recChip, ch(1))

	settled := mustFrame(nil, recSpec, sp)
	settled = mustFrame(settled, recSettle, settleRecord{State: "done"})

	torn := append(append([]byte{}, intact...), 0x18, 0x00, 0x00)

	flipped := append([]byte{}, intact...)
	flipped[len(flipped)-10] ^= 0x40

	wrongID := mustFrame(nil, recSpec, Spec{ID: "c000777", ChipCount: 2})
	wrongID = mustFrame(wrongID, recChip, ch(0))

	afterSettle := append(append([]byte{}, settled...), mustFrame(nil, recChip, ch(2))...)
	afterSettle = append(afterSettle, appendFrame(nil, 99, []byte(`{"future":true}`))...)

	var hugeLen []byte
	hugeLen = append(hugeLen, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)

	return [][]byte{
		intact,
		settled,
		torn,
		flipped,
		wrongID,
		afterSettle,
		hugeLen,
		{},
		[]byte("not a journal segment at all"),
	}
}
