package journal

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
)

// Record framing. Every record is one frame:
//
//	[4 bytes LE: body length n] [4 bytes LE: CRC-32C over body] [n bytes body]
//
// where body is one type byte followed by the record's JSON payload. The
// CRC covers the type byte, so a flipped type cannot re-interpret a payload
// as a different record kind. Appends are a single Write call; the kernel
// gives no atomicity guarantee for that, which is exactly why recovery
// treats any framing damage — short header, impossible length, CRC
// mismatch — as the torn tail of an interrupted append and truncates there.
const (
	frameHeader = 8
	// maxBody bounds a single record body. Campaign submit payloads are at
	// most the HTTP surface's 64 MB body cap; the margin keeps a corrupted
	// length field from turning recovery into a giant allocation.
	maxBody = 80 << 20
)

// Record types. Values are part of the on-disk format; never renumber.
const (
	recSpec   byte = 1
	recChip   byte = 2
	recSettle byte = 3
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Spec is a campaign's journal identity: enough to re-admit it after a
// crash (via the opaque Payload and a decoder owned by the submitting
// layer) and to refuse replay when the world changed under it (the
// fingerprints).
type Spec struct {
	// ID is the manager-assigned campaign identifier; it names the segment
	// file, so it must satisfy ValidateID.
	ID string `json:"id"`
	// Key is the client-chosen idempotency key, if any.
	Key string `json:"key,omitempty"`
	// Name is the campaign's free-form label.
	Name string `json:"name,omitempty"`
	// CircuitFP / ConfigFP fingerprint the circuit and the flow
	// configuration at submit time. Recovery re-fingerprints the decoded
	// spec and refuses to replay chip records against a different world —
	// replayed outcomes are only bit-identical if the inputs are.
	CircuitFP string `json:"circuit_fp,omitempty"`
	ConfigFP  string `json:"config_fp,omitempty"`
	// PlanID names the plan artifact the submit referenced, for provenance;
	// recovery may re-Prepare instead when the artifact is gone (the result
	// is deterministic either way).
	PlanID string `json:"plan_id,omitempty"`
	// ChipSeed/ChipCount/ChipFirst are the deterministic population range.
	ChipSeed  int64 `json:"chip_seed"`
	ChipCount int   `json:"chip_count"`
	ChipFirst int   `json:"chip_first,omitempty"`
	// Payload is the submitting layer's serialized spec (for effitestd, the
	// original POST /v1/campaigns body). The journal never interprets it;
	// Manager.Recover hands it back to a decoder.
	Payload []byte `json:"payload,omitempty"`
}

// Outcome is the serialized form of a deterministic chip outcome. Every
// field of core.ChipOutcome is preserved — including the full per-path
// bounds arrays and the duration sums — because Go's JSON number encoding
// round-trips float64 exactly, a replayed result must reproduce the wire
// form (bounds sums) and the campaign aggregate (duration sums) to the bit.
type Outcome struct {
	Iterations int       `json:"iterations"`
	ScanBits   int64     `json:"scan_bits"`
	AlignNS    int64     `json:"align_ns,omitempty"`
	ConfigNS   int64     `json:"config_ns,omitempty"`
	PredictNS  int64     `json:"predict_ns,omitempty"`
	BoundsLo   []float64 `json:"bounds_lo,omitempty"`
	BoundsHi   []float64 `json:"bounds_hi,omitempty"`
	X          []float64 `json:"x,omitempty"`
	Xi         float64   `json:"xi,omitempty"`
	Configured bool      `json:"configured,omitempty"`
	Passed     bool      `json:"passed,omitempty"`
}

// ChipRecord is one completed chip: either a deterministic outcome or a
// deterministic per-chip error (scheduling artifacts — cancellations,
// manager shutdown — are never journaled; re-executing those chips is the
// point of recovery).
type ChipRecord struct {
	// Index is the chip's position in the campaign population.
	Index int `json:"index"`
	// ChipIndex is the manufacturing index of the sampled chip; recovery
	// cross-checks it against the re-sampled population before replaying.
	ChipIndex int      `json:"chip_index"`
	Error     string   `json:"error,omitempty"`
	Outcome   *Outcome `json:"outcome,omitempty"`
}

// settleRecord marks a campaign terminal.
type settleRecord struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Campaign is one recovered segment: the spec, the completed chips in
// append order (duplicates dropped, first record wins), and the terminal
// state when the campaign settled before the crash ("" = unsettled, i.e.
// resumable).
type Campaign struct {
	Spec  Spec
	Chips []ChipRecord
	State string
	Err   string
}

// Settled reports whether the campaign reached a terminal state before the
// journal was reopened.
func (c Campaign) Settled() bool { return c.State != "" }

// appendFrame encodes one record onto buf.
func appendFrame(buf []byte, typ byte, payload []byte) []byte {
	n := len(payload) + 1
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(crc32.Checksum([]byte{typ}, crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, typ)
	return append(buf, payload...)
}

func encodeRecord(typ byte, v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, typ, payload), nil
}

// rawRecord is one CRC-verified frame.
type rawRecord struct {
	typ     byte
	payload []byte
}

// parseFrames walks data frame by frame, returning the records of the
// intact prefix and its length in bytes. The first framing violation —
// short header, zero or oversized length, body running past EOF, CRC
// mismatch — ends the walk: everything from that offset on is the torn
// tail of an interrupted append (or tampering, which recovery treats the
// same way: drop, never guess).
func parseFrames(data []byte) (recs []rawRecord, good int) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n < 1 || n > maxBody || n > len(data)-off-frameHeader {
			return recs, off
		}
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, off
		}
		recs = append(recs, rawRecord{typ: body[0], payload: body[1:]})
		off += frameHeader + n
	}
}
