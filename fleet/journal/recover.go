package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Recover scans the journal directory and adopts every segment:
//
//   - torn or corrupt tails (interrupted appends, bit flips) are truncated
//     at the last intact record;
//   - segments whose first record is not a trustworthy spec for their own
//     file name are renamed aside (<id>.wal.corrupt) and skipped — a
//     damaged log may lose campaigns, but it can never fabricate one;
//   - unsettled segments are reopened for append, so the resumed campaign
//     keeps journaling into its original file;
//   - leftover compaction temp files are removed.
//
// It returns every readable campaign, settled ones included (their IDs let
// the manager keep its ID sequence collision-free), sorted by campaign ID.
// Recover is not idempotent in the presence of concurrent appends; call it
// once, at boot, before submitting work.
func (j *Journal) Recover() ([]Campaign, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var camps []Campaign
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(j.dir, name))
			continue
		}
		if !strings.HasSuffix(name, segSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, segSuffix)
		if _, ok := j.open[id]; ok {
			// Already adopted by an earlier Recover of this instance.
			continue
		}
		camp, ok, err := j.recoverSegmentLocked(id)
		if err != nil {
			return nil, err
		}
		if ok {
			camps = append(camps, camp)
		}
	}
	sort.Slice(camps, func(a, b int) bool { return camps[a].Spec.ID < camps[b].Spec.ID })
	return camps, nil
}

// recoverSegmentLocked reads, repairs and (when unsettled) adopts one
// segment. Returns ok=false when the segment was skipped as untrustworthy.
// Called with j.mu held.
func (j *Journal) recoverSegmentLocked(id string) (Campaign, bool, error) {
	path := filepath.Join(j.dir, id+segSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, false, fmt.Errorf("journal: %w", err)
	}
	camp, good, ok := parseSegment(id, data)
	if !ok || ValidateID(id) != nil {
		// No trustworthy spec record for this file name: set the bytes
		// aside for the operator rather than guessing at a campaign.
		j.skipped++
		os.Rename(path, path+corruptSuffix)
		j.syncDirLocked()
		return Campaign{}, false, nil
	}
	if good < len(data) && !camp.Settled() {
		// Torn tail on a live segment: cut it so the resumed campaign
		// appends onto an intact log. (A settled segment's trailing garbage
		// is unreachable anyway — nothing after settle is ever replayed —
		// and the file will not be appended to again.)
		if err := os.Truncate(path, int64(good)); err != nil {
			return Campaign{}, false, fmt.Errorf("journal: truncating torn tail of %s: %w", id, err)
		}
		j.torn++
	}
	if camp.Settled() {
		j.settled++
		j.settledB += int64(len(data))
		return camp, true, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return Campaign{}, false, fmt.Errorf("journal: reopening %s: %w", id, err)
	}
	j.open[id] = &segment{f: f, size: int64(good)}
	return camp, true, nil
}

// parseSegment decodes one segment's intact record prefix into a Campaign.
// good is the byte length of that prefix (framing-wise); ok is false when
// the segment has no trustworthy spec — a first record that is missing,
// not a spec, undecodable, or claiming a different campaign ID than the
// file name (a cross-linked or truncated-and-reused segment must not leak
// another campaign's records).
//
// Within the intact prefix, damage is contained per record: an undecodable
// payload, an out-of-range or duplicate chip index, or an outcome-less
// success is skipped, never invented. Records after the settle record are
// unreachable by design and ignored.
func parseSegment(id string, data []byte) (camp Campaign, good int, ok bool) {
	recs, good := parseFrames(data)
	if len(recs) == 0 || recs[0].typ != recSpec {
		return Campaign{}, good, false
	}
	if err := json.Unmarshal(recs[0].payload, &camp.Spec); err != nil {
		return Campaign{}, good, false
	}
	if camp.Spec.ID != id || camp.Spec.ChipCount < 0 {
		return Campaign{}, good, false
	}
	seen := map[int]bool{}
	for _, rec := range recs[1:] {
		switch rec.typ {
		case recChip:
			var cr ChipRecord
			if err := json.Unmarshal(rec.payload, &cr); err != nil {
				continue
			}
			if cr.Index < 0 || (camp.Spec.ChipCount > 0 && cr.Index >= camp.Spec.ChipCount) {
				continue
			}
			if cr.Error == "" && cr.Outcome == nil {
				continue
			}
			if seen[cr.Index] {
				continue
			}
			seen[cr.Index] = true
			camp.Chips = append(camp.Chips, cr)
		case recSettle:
			var sr settleRecord
			if err := json.Unmarshal(rec.payload, &sr); err != nil || sr.State == "" {
				continue
			}
			camp.State, camp.Err = sr.State, sr.Error
			return camp, good, true
		}
		// Unknown record types within an intact frame are skipped: a newer
		// writer may add kinds an older reader can ignore.
	}
	return camp, good, true
}
