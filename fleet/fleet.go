// Package fleet turns the per-process EffiTest engine into a long-running,
// multi-circuit service layer: the architecture that amortizes the paper's
// expensive offline statistics (path selection, conditional-Gaussian
// models, test batching) across production-scale chip fleets.
//
// Two pieces compose it:
//
//   - Registry: a bounded LRU of live engines keyed by (circuit
//     fingerprint, configuration fingerprint), single-flighted so N
//     concurrent requests for the same circuit run the expensive offline
//     Prepare exactly once — in process via a per-key wait, and across
//     processes via the content-addressed plan cache the registry can sit
//     on (WithPlanCacheDir).
//
//   - Manager: asynchronous test campaigns. Submit names a batch of chips
//     and returns immediately; the campaign resolves its engine through the
//     registry, then its chips run on one shared bounded worker pool with
//     per-campaign round-robin fair scheduling, so a huge campaign cannot
//     starve a small one. Campaigns are observable while they run (Status:
//     queued/running/done, chips completed, running yield), streamable
//     (Results yields every per-chip result in input order, exactly as
//     Engine.RunChips would have), cancellable, and aggregate their
//     outcomes through the exactly-mergeable streaming aggregator in
//     internal/yield — so sharded partial results combine bit-identically
//     to a sequential pass.
//
// cmd/effitestd exposes a Manager over HTTP/JSON (see fleet/httpapi and
// the fleet/client package); in-process callers use the Manager directly:
//
//	m, _ := fleet.NewManager(fleet.WithWorkers(8))
//	defer m.Shutdown(context.Background())
//	c, _ := effitest.Generate(profile, 1)
//	camp, _ := m.Submit(fleet.CampaignSpec{
//		Name:      "lot-42",
//		Circuit:   c,
//		Options:   []effitest.Option{effitest.WithEpsilon(0.002)},
//		ChipSeed:  7,
//		ChipCount: 1000,
//	})
//	for res := range camp.Results(ctx) {
//		...
//	}
//	st, _ := camp.Wait(ctx)
package fleet
