package fleet

import (
	"context"
	"errors"
	"testing"
	"time"

	"effitest"
	"effitest/fleet/journal"
)

// gateBackend delegates to the simulated ATE but blocks session opens for
// chips at or past a threshold until released — freezing a campaign
// mid-flight so tests can "crash" it at a known boundary. Because the
// backend only delays (never alters) measurement, gated runs stay
// bit-identical to plain SimBackend runs.
type gateBackend struct {
	allowBelow int
	release    chan struct{}
	inner      effitest.SimBackend
}

func (g *gateBackend) Open(ch *effitest.Chip, resolution float64) (effitest.Session, error) {
	if ch.Index >= g.allowBelow {
		<-g.release
	}
	return g.inner.Open(ch, resolution)
}

// testDecoder returns a Recover decoder that hands back the given spec for
// the payload Submit journaled — the in-process stand-in for
// httpapi.SpecDecoder.
func testDecoder(spec CampaignSpec) func([]byte) (CampaignSpec, error) {
	return func(payload []byte) (CampaignSpec, error) {
		if string(payload) != string(spec.JournalPayload) {
			return CampaignSpec{}, errors.New("unexpected journal payload")
		}
		return spec, nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoverBitIdentical is the package-level crash drill: a journaled
// campaign is killed mid-flight (journal closed — a crash leaves exactly
// this on disk), a second manager recovers the directory, and the resumed
// campaign's every result and aggregate stat must equal an uninterrupted
// run bit for bit, with the journaled chips replayed, not re-executed.
func TestRecoverBitIdentical(t *testing.T) {
	const n = 12
	const gated = 6
	c := tinyCircuit(t, "recover", 3)
	ctx := context.Background()

	// Uninterrupted reference run.
	ref := newTestManager(t, WithWorkers(2))
	refCamp, err := ref.Submit(CampaignSpec{
		Name: "ref", Circuit: c, Options: fastOpts(), ChipSeed: 11, ChipCount: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := refCamp.Wait(ctx)
	if err != nil || refSt.State != StateDone {
		t.Fatalf("reference run: %v, %v", refSt.State, err)
	}

	// Crash run: first `gated` chips execute, the rest block in the
	// backend. Closing the journal at that point is the crash — everything
	// already acknowledged is on disk, nothing later is.
	dir := t.TempDir()
	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateBackend{allowBelow: gated, release: make(chan struct{})}
	m1 := newTestManager(t, WithWorkers(2), WithJournal(j1))
	spec := CampaignSpec{
		Name: "crashy", Key: "lot-42", Circuit: c,
		Options:  fastOpts(effitest.WithBackend(gate)),
		ChipSeed: 11, ChipCount: n,
		JournalPayload: []byte(`{"campaign":"crashy"}`),
	}
	camp1, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "gated chips to journal", func() bool {
		return j1.Stats().Records >= 1+gated // spec + the ungated chips
	})
	if err := j1.Close(); err != nil { // the crash
		t.Fatal(err)
	}
	close(gate.release) // let the doomed process drain away
	if st, err := camp1.Wait(ctx); err != nil || st.State != StateDone {
		t.Fatalf("crash-run campaign: %v, %v", st.State, err)
	}
	m1.Shutdown(ctx)

	// Recovery boot: same directory, fresh journal and manager. The
	// decoder returns the spec without the gate — the recovered campaign
	// executes the missing chips on the plain simulated ATE.
	j2, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	cleanSpec := spec
	cleanSpec.Options = fastOpts()
	m2 := newTestManager(t, WithWorkers(2), WithJournal(j2))
	rs, err := m2.Recover(testDecoder(cleanSpec))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Campaigns != 1 || rs.Settled != 0 || rs.Skipped != 0 {
		t.Fatalf("recover stats: %+v", rs)
	}
	if rs.ChipsReplayed != gated {
		t.Fatalf("replayed %d chips from the journal, want %d", rs.ChipsReplayed, gated)
	}

	camp2, ok := m2.Campaign(camp1.ID())
	if !ok {
		t.Fatalf("recovered campaign lost its ID %s", camp1.ID())
	}
	if byKey, ok := m2.CampaignByKey("lot-42"); !ok || byKey != camp2 {
		t.Fatal("recovered campaign lost its idempotency key")
	}
	st2, err := camp2.Wait(ctx)
	if err != nil || st2.State != StateDone {
		t.Fatalf("recovered campaign: %v, %v", st2.State, err)
	}

	// Replayed, not re-executed: the second manager ran only the chips the
	// crash lost.
	ms := m2.Stats()
	if ms.ChipsReplayed != int64(gated) {
		t.Fatalf("ChipsReplayed = %d, want %d", ms.ChipsReplayed, gated)
	}
	if ms.ChipsExecuted != int64(n-gated) {
		t.Fatalf("ChipsExecuted = %d, want %d (replayed chips must not re-run)", ms.ChipsExecuted, n-gated)
	}
	if ms.CampaignsRecovered != 1 {
		t.Fatalf("CampaignsRecovered = %d, want 1", ms.CampaignsRecovered)
	}

	// Bit-identity, result by result and in the aggregate.
	want := map[int]*effitest.ChipResult{}
	for res := range refCamp.Results(ctx) {
		r := res
		want[res.Index] = &r
	}
	got := 0
	for res := range camp2.Results(ctx) {
		w := want[res.Index]
		if w == nil || res.Err != nil || w.Err != nil {
			t.Fatalf("chip %d: unexpected result %+v", res.Index, res.Err)
		}
		if !outcomesEqual(res.Outcome, w.Outcome) {
			t.Fatalf("chip %d: recovered outcome differs from uninterrupted run", res.Index)
		}
		got++
	}
	if got != n {
		t.Fatalf("recovered stream has %d results, want %d", got, n)
	}
	if a, b := st2.Stats, refSt.Stats; a.Yield != b.Yield || a.AvgIterations != b.AvgIterations ||
		a.AvgScanBits != b.AvgScanBits || a.ConfiguredFrac != b.ConfiguredFrac {
		t.Fatalf("recovered aggregate diverges:\nrecovered: %+v\nreference: %+v", a, b)
	}

	// The campaign settled on the recovery boot: its segment compacted.
	if js := j2.Stats(); js.Compactions != 1 || js.OpenSegments != 0 {
		t.Fatalf("journal after recovery run: %+v", js)
	}
}

// TestSubmitIdempotencyKey: a duplicate key returns the prior campaign —
// same pointer, no new execution — and key validation lives at the HTTP
// layer, so the manager accepts any non-empty string.
func TestSubmitIdempotencyKey(t *testing.T) {
	m := newTestManager(t, WithWorkers(2))
	c := tinyCircuit(t, "idem", 3)
	spec := CampaignSpec{
		Name: "first", Key: "retry-key", Circuit: c, Options: fastOpts(),
		ChipSeed: 5, ChipCount: 3,
	}
	a, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Name = "second submit, same key"
	b, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("duplicate key created a second campaign")
	}
	if _, err := a.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Terminal campaigns still dedup: a retry after completion must see
	// the finished campaign, not a re-execution.
	dup, err := m.Submit(spec)
	if err != nil || dup != a {
		t.Fatalf("post-completion duplicate: %v, same=%v", err, dup == a)
	}
	if got, ok := m.CampaignByKey("retry-key"); !ok || got != a {
		t.Fatal("CampaignByKey lookup failed")
	}
	if _, ok := m.CampaignByKey(""); ok {
		t.Fatal("empty key must never match")
	}
}

// TestShutdownLeavesJournalResumable pins the durable-shutdown contract:
// Shutdown writes no settle record, so a drained-but-unfinished campaign
// recovers on the next boot with its completed chips replayed.
func TestShutdownLeavesJournalResumable(t *testing.T) {
	// Large enough that some chips cannot have been dispatched when the
	// drain begins: with 2 workers, at most 2 in flight + 2 buffered in
	// the jobs channel + 1 in the dispatcher's hand ride out the drain.
	const n = 10
	const gated = 2
	c := tinyCircuit(t, "drain", 3)
	ctx := context.Background()

	dir := t.TempDir()
	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateBackend{allowBelow: gated, release: make(chan struct{})}
	m1, err := NewManager(WithWorkers(2), WithJournal(j1))
	if err != nil {
		t.Fatal(err)
	}
	spec := CampaignSpec{
		Name: "drained", Key: "drain-key", Circuit: c,
		Options:  fastOpts(effitest.WithBackend(gate)),
		ChipSeed: 3, ChipCount: n,
		JournalPayload: []byte(`{"campaign":"drained"}`),
	}
	camp, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "ungated chips to journal", func() bool {
		return j1.Stats().Records >= 1+gated
	})
	done := make(chan error, 1)
	go func() { done <- m1.Shutdown(ctx) }()
	// Only release the gate once the dispatcher has stopped: from then on
	// the dispatched set is frozen, so the undispatched tail is guaranteed
	// to resolve as drain artifacts rather than sneaking onto the pool.
	waitFor(t, "dispatcher to stop", func() bool {
		select {
		case <-m1.dispatcherDone:
			return true
		default:
			return false
		}
	})
	close(gate.release) // in-flight chips finish during the drain
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	st := camp.Status()
	if st.State.Terminal() == false {
		t.Fatalf("campaign not settled in memory after drain: %s", st.State)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Next boot: the campaign must come back unsettled. Chips that
	// completed (including during the drain) replay; chips the drain
	// cancelled re-execute.
	j2, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	cleanSpec := spec
	cleanSpec.Options = fastOpts()
	m2 := newTestManager(t, WithWorkers(2), WithJournal(j2))
	rs, err := m2.Recover(testDecoder(cleanSpec))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Campaigns != 1 || rs.Settled != 0 {
		t.Fatalf("shutdown settled the journal: %+v", rs)
	}
	if rs.ChipsReplayed < gated || rs.ChipsReplayed >= n {
		t.Fatalf("replayed %d chips, want in [%d, %d)", rs.ChipsReplayed, gated, n)
	}
	camp2, ok := m2.CampaignByKey("drain-key")
	if !ok {
		t.Fatal("recovered campaign lost its key")
	}
	st2, err := camp2.Wait(ctx)
	if err != nil || st2.State != StateDone {
		t.Fatalf("resumed campaign: %v, %v", st2.State, err)
	}
	for res := range camp2.Results(ctx) {
		if res.Err != nil {
			t.Fatalf("chip %d: %v (drain artifacts must never be replayed)", res.Index, res.Err)
		}
	}
	if ms := m2.Stats(); ms.ChipsExecuted+ms.ChipsReplayed != n {
		t.Fatalf("executed %d + replayed %d != %d", ms.ChipsExecuted, ms.ChipsReplayed, n)
	}
}

// TestRecoverFullyReplayedCampaign: a campaign whose every chip is already
// in the log (it finished, but the settle record was lost to the crash)
// settles immediately on recovery without executing anything.
func TestRecoverFullyReplayedCampaign(t *testing.T) {
	const n = 4
	c := tinyCircuit(t, "full", 3)
	ctx := context.Background()
	dir := t.TempDir()

	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	m1 := newTestManager(t, WithWorkers(2), WithJournal(j1))
	spec := CampaignSpec{
		Name: "done-but-unsettled", Circuit: c, Options: fastOpts(),
		ChipSeed: 9, ChipCount: n, JournalPayload: []byte(`{"x":1}`),
	}
	camp, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := camp.Wait(ctx); err != nil || st.State != StateDone {
		t.Fatalf("%v %v", st.State, err)
	}
	// The campaign settled and compacted. Simulate losing the settle
	// record instead: rebuild the segment as spec + all chips, unsettled.
	m1.Shutdown(ctx)
	j1.Close()

	j2, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := j2.Recover()
	if err != nil || len(recs) != 1 || !recs[0].Settled() {
		t.Fatalf("setup: %v %+v", err, recs)
	}
	j2.Close()

	// A settled segment stays settled: Recover on a manager reports it,
	// admits nothing, and the ID sequence still advances past it.
	j3, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	m3 := newTestManager(t, WithWorkers(1), WithJournal(j3))
	rs, err := m3.Recover(testDecoder(spec))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Campaigns != 0 || rs.Settled != 1 {
		t.Fatalf("settled campaign re-admitted: %+v", rs)
	}
	next, err := m3.Submit(CampaignSpec{
		Circuit: c, Options: fastOpts(), ChipSeed: 1, ChipCount: 1,
		JournalPayload: []byte(`{"y":2}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() == camp.ID() {
		t.Fatalf("ID sequence collided with journaled campaign %s", camp.ID())
	}
	if _, err := next.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverSkipsChangedWorld: a journaled campaign whose decoded spec no
// longer matches the journaled fingerprints must not replay — recovery
// refuses rather than merging records from a different circuit.
func TestRecoverSkipsChangedWorld(t *testing.T) {
	c := tinyCircuit(t, "world-a", 3)
	dir := t.TempDir()
	j1, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateBackend{allowBelow: 0, release: make(chan struct{})}
	m1 := newTestManager(t, WithWorkers(1), WithJournal(j1))
	spec := CampaignSpec{
		Name: "was-world-a", Circuit: c, Options: fastOpts(effitest.WithBackend(gate)),
		ChipSeed: 2, ChipCount: 2, JournalPayload: []byte(`{"w":"a"}`),
	}
	if _, err := m1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	j1.Close() // crash with the campaign still fully pending
	close(gate.release)
	m1.Shutdown(context.Background())

	j2, err := journal.Open(dir, journal.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	otherWorld := spec
	otherWorld.Circuit = tinyCircuit(t, "world-b", 4)
	otherWorld.Options = fastOpts()
	m2 := newTestManager(t, WithWorkers(1), WithJournal(j2))
	rs, err := m2.Recover(testDecoder(otherWorld))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Campaigns != 0 || rs.Skipped != 1 {
		t.Fatalf("changed world not refused: %+v", rs)
	}
	if ms := m2.Stats(); ms.CampaignsRecovered != 0 {
		t.Fatalf("CampaignsRecovered = %d, want 0", ms.CampaignsRecovered)
	}
}
