// Differential suite for the batched prediction scheduler: grouping chips
// into multi-RHS kernel calls (WithPredictBatch) and fanning a chip's
// correlation groups across idle workers must both be invisible in the
// results — bit-identical outcomes at every batch width and worker count,
// including a ragged final batch. Any single-ULP drift here would silently
// invalidate the golden corpus.
package effitest_test

import (
	"context"
	"fmt"
	"testing"

	"effitest"
)

// batchVariantEngine rebuilds an engine around an existing plan with
// different execution knobs — the plan, and therefore every number it
// derives, is shared; only scheduling differs.
func batchVariantEngine(t *testing.T, base *effitest.Engine, workers, kb int) *effitest.Engine {
	t.Helper()
	eng, err := effitest.New(base.Circuit(),
		effitest.WithPlan(base.Plan()),
		effitest.WithPeriod(base.Period()),
		effitest.WithWorkers(workers),
		effitest.WithPredictBatch(kb),
	)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestBatchedPredictionMatchesUnbatched runs a deliberately ragged fleet
// (17 chips: not a multiple of any tested width, so the final batch is
// always partial) across batch widths 1, 2, 7 and 64 and worker counts 1,
// 2 and 8, pinning every outcome bitwise against the unbatched sequential
// baseline.
func TestBatchedPredictionMatchesUnbatched(t *testing.T) {
	ctx := context.Background()
	base := streamEngine(t, 1)
	chips, err := base.SampleChips(ctx, 13, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batchVariantEngine(t, base, 1, 1).RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}

	for _, kb := range []int{1, 2, 7, 64} {
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("k%d_w%d", kb, workers), func(t *testing.T) {
				got, err := batchVariantEngine(t, base, workers, kb).RunChipsAll(ctx, chips)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if !engineOutcomesEqual(got[i], want[i]) {
						t.Fatalf("chip %d: batched outcome (k=%d, workers=%d) differs from sequential baseline",
							i, kb, workers)
					}
				}
			})
		}
	}
}

// TestWithinChipParallelPredictionMatchesSequential exercises the
// within-chip group fan-out end to end: with more workers than chips, the
// idle worker share flows into each chip's prediction phase (RunChips) —
// and a single RunChip call fans out across Config.Workers directly. Both
// must be bit-identical to the sequential flow at workers 1, 2 and 8. Run
// under -race this also proves the group sweep is data-race-free.
func TestWithinChipParallelPredictionMatchesSequential(t *testing.T) {
	ctx := context.Background()
	base := streamEngine(t, 1)
	chips, err := base.SampleChips(ctx, 17, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batchVariantEngine(t, base, 1, 1).RunChipsAll(ctx, chips)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 8} {
		// 3 chips on `workers` workers: RunChips clamps the pool to 3 and
		// hands each chip a workers/3 (≥1) within-chip prediction fan-out.
		eng := batchVariantEngine(t, base, workers, 1)
		got, err := eng.RunChipsAll(ctx, chips)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !engineOutcomesEqual(got[i], want[i]) {
				t.Fatalf("workers=%d chip %d: fanned-out outcome differs from sequential", workers, i)
			}
		}
		// Single-chip path: RunChip fans prediction across all of
		// Config.Workers.
		single, err := eng.RunChip(ctx, chips[0])
		if err != nil {
			t.Fatal(err)
		}
		if !engineOutcomesEqual(single, want[0]) {
			t.Fatalf("workers=%d: single-chip outcome differs from sequential", workers)
		}
	}
}
