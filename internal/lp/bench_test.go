package lp

import (
	"testing"

	"effitest/internal/rng"
)

// benchProblem builds a random feasible bounded LP with v variables and c
// constraints.
func benchProblem(v, c int) *Problem {
	r := rng.New(7, "lpbench")
	p := NewProblem()
	vars := make([]int, v)
	for i := range vars {
		vars[i] = p.AddVar("x", 0, 10, r.Float64()*2-1)
	}
	for j := 0; j < c; j++ {
		terms := make([]Term, 0, v/2)
		for i := 0; i < v; i++ {
			if r.Float64() < 0.5 {
				terms = append(terms, Term{Var: vars[i], Coef: r.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: vars[0], Coef: 1})
		}
		p.AddConstraint("c", terms, LE, 5+10*r.Float64())
	}
	return p
}

func BenchmarkSimplex20x30(b *testing.B) {
	p := benchProblem(20, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			b.Fatalf("%v %v", sol.Status, err)
		}
	}
}

func BenchmarkSimplex60x90(b *testing.B) {
	p := benchProblem(60, 90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			b.Fatalf("%v %v", sol.Status, err)
		}
	}
}
