package lp

import (
	"math"
	"testing"

	"effitest/internal/rng"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("solve error: %v", err)
	}
	return sol
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0.
	// Classic Dantzig example: optimum (2, 6) with objective 36.
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 5)
	p.AddConstraint("c1", []Term{{x, 1}}, LE, 4)
	p.AddConstraint("c2", []Term{{y, 2}}, LE, 12)
	p.AddConstraint("c3", []Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-36) > 1e-8 {
		t.Fatalf("objective %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > 1e-8 || math.Abs(sol.X[y]-6) > 1e-8 {
		t.Fatalf("solution %v, want (2, 6)", sol.X)
	}
}

func TestMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0. Optimum: y=0? check:
	// put everything into x: (10,0): 20; (2,8): 28. So (10,0) => 20.
	p := NewProblem()
	x := p.AddVar("x", 2, Inf, 2)
	y := p.AddVar("y", 0, Inf, 3)
	p.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-20) > 1e-8 {
		t.Fatalf("objective %v, want 20", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x,y >= 0 -> (0,2) obj 2.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddConstraint("eq", []Term{{x, 1}, {y, 2}}, EQ, 4)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-2) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 1, 1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 2)
	sol := solveOrFail(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1) // min -x, x unbounded above
	_ = x
	sol := solveOrFail(t, p)
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |shape| via free var: min x s.t. x >= -5 modeled with free x and
	// constraint x >= -5. Optimum -5.
	p := NewProblem()
	x := p.AddVar("x", math.Inf(-1), Inf, 1)
	p.AddConstraint("lb", []Term{{x, 1}}, GE, -5)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]+5) > 1e-8 {
		t.Fatalf("got %v x=%v, want -5", sol.Status, sol.X)
	}
}

func TestUpperBoundedVariable(t *testing.T) {
	// max x + y with x in [0,3], y in [1,2]: optimum 5 at (3,2).
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVar("x", 0, 3, 1)
	y := p.AddVar("y", 1, 2, 1)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-8 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
	_ = x
	_ = y
}

func TestNegativeUpperBoundVariable(t *testing.T) {
	// Variable with hi finite, lo = -inf: min -x with x <= 7 -> x = 7.
	p := NewProblem()
	x := p.AddVar("x", math.Inf(-1), 7, -1)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-7) > 1e-8 {
		t.Fatalf("got %v x=%v, want 7", sol.Status, sol.X)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 3, 3, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 5)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[x]-3) > 1e-9 || math.Abs(sol.X[y]-2) > 1e-8 {
		t.Fatalf("solution %v, want (3,2)", sol.X)
	}
}

func TestEmptyBoundsInfeasible(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("x", 0, 5, 1)
	p.SetVarBounds(v, 4, 2) // deliberately inverted, as branch&bound may do
	sol := solveOrFail(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	p.AddConstraint("c", []Term{{x, -1}}, LE, -3)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-3) > 1e-8 {
		t.Fatalf("got %v x=%v, want 3", sol.Status, sol.X)
	}
}

func TestAbsoluteValueLP(t *testing.T) {
	// The alignment fast mode relies on: min η with η >= t-c, η >= c-t
	// giving η = |t-c| at optimum. Check with fixed t.
	for _, tv := range []float64{-2, 0, 3.5} {
		p := NewProblem()
		tvar := p.AddVar("t", tv, tv, 0)
		eta := p.AddVar("eta", 0, Inf, 1)
		c := 1.0
		p.AddConstraint("p1", []Term{{eta, 1}, {tvar, -1}}, GE, -c)
		p.AddConstraint("p2", []Term{{eta, 1}, {tvar, 1}}, GE, c)
		sol := solveOrFail(t, p)
		want := math.Abs(tv - c)
		if math.Abs(sol.X[eta]-want) > 1e-8 {
			t.Fatalf("t=%v: eta=%v, want %v", tv, sol.X[eta], want)
		}
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Known degenerate LP (Beale-like); Bland fallback must terminate.
	p := NewProblem()
	x1 := p.AddVar("x1", 0, Inf, -0.75)
	x2 := p.AddVar("x2", 0, Inf, 150)
	x3 := p.AddVar("x3", 0, Inf, -0.02)
	x4 := p.AddVar("x4", 0, Inf, 6)
	p.AddConstraint("c1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint("c2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint("c3", []Term{{x3, 1}}, LE, 1)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("objective %v, want -0.05", sol.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// x + y = 2 twice: redundant row must not break phase 1 cleanup.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddConstraint("e1", []Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint("e2", []Term{{x, 1}, {y, 1}}, EQ, 2)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-2) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal 2 at (2,0)", sol.Status, sol.Objective)
	}
}

func TestFeasibleEval(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 10, 2)
	p.AddConstraint("c", []Term{{x, 1}}, LE, 5)
	if !p.Feasible([]float64{4}, 1e-9) {
		t.Error("4 should be feasible")
	}
	if p.Feasible([]float64{6}, 1e-9) {
		t.Error("6 violates constraint")
	}
	if p.Feasible([]float64{-1}, 1e-9) {
		t.Error("-1 violates bound")
	}
	obj, err := p.Eval([]float64{4})
	if err != nil || obj != 8 {
		t.Errorf("Eval = %v, %v", obj, err)
	}
}

// TestRandomLPsAgainstVertexSearch cross-checks small random LPs against a
// brute-force search over constraint-boundary intersections.
func TestRandomLPsAgainstVertexSearch(t *testing.T) {
	r := rng.New(99, "lpcross")
	for trial := 0; trial < 60; trial++ {
		// 2 variables in [0, ub], 3 LE constraints with positive coeffs so the
		// region is bounded and nonempty (origin always feasible).
		p := NewProblem()
		ub := 10.0
		x := p.AddVar("x", 0, ub, -(1 + r.Float64()))
		y := p.AddVar("y", 0, ub, -(1 + r.Float64()))
		type con struct{ a, b, rhs float64 }
		cons := make([]con, 3)
		for i := range cons {
			cons[i] = con{r.Float64() + 0.1, r.Float64() + 0.1, 4 + 6*r.Float64()}
			p.AddConstraint("c", []Term{{x, cons[i].a}, {y, cons[i].b}}, LE, cons[i].rhs)
		}
		sol := solveOrFail(t, p)
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Brute force over candidate vertices: intersections of all boundary
		// pairs (constraints as equalities plus box edges).
		lines := [][3]float64{{1, 0, 0}, {0, 1, 0}, {1, 0, ub}, {0, 1, ub}}
		for _, c := range cons {
			lines = append(lines, [3]float64{c.a, c.b, c.rhs})
		}
		best := math.Inf(1)
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				a1, b1, r1 := lines[i][0], lines[i][1], lines[i][2]
				a2, b2, r2 := lines[j][0], lines[j][1], lines[j][2]
				det := a1*b2 - a2*b1
				if math.Abs(det) < 1e-9 {
					continue
				}
				px := (r1*b2 - r2*b1) / det
				py := (a1*r2 - a2*r1) / det
				if !p.Feasible([]float64{px, py}, 1e-7) {
					continue
				}
				obj, _ := p.Eval([]float64{px, py})
				if obj < best {
					best = obj
				}
			}
		}
		if math.Abs(best-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: simplex %v vs vertex search %v", trial, sol.Objective, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	if StatusOptimal.String() != "optimal" || StatusInfeasible.String() != "infeasible" ||
		StatusUnbounded.String() != "unbounded" || StatusIterLimit.String() != "iteration-limit" {
		t.Error("status strings wrong")
	}
	if Status(42).String() == "" {
		t.Error("unknown status should still print")
	}
}

func TestIterationLimit(t *testing.T) {
	// With MaxIter = 1 even a simple LP cannot finish both phases.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1)
	y := p.AddVar("y", 0, Inf, -1)
	p.AddConstraint("c1", []Term{{x, 1}, {y, 2}}, LE, 10)
	p.AddConstraint("c2", []Term{{x, 2}, {y, 1}}, LE, 10)
	p.MaxIter = 1
	sol := solveOrFail(t, p)
	if sol.Status != StatusIterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}

func TestManyEqualOptima(t *testing.T) {
	// Degenerate objective (all-zero costs): any feasible vertex is optimal;
	// the solver must return a feasible point with objective 0.
	p := NewProblem()
	x := p.AddVar("x", 0, 5, 0)
	y := p.AddVar("y", 0, 5, 0)
	p.AddConstraint("c", []Term{{x, 1}, {y, 1}}, GE, 3)
	sol := solveOrFail(t, p)
	if sol.Status != StatusOptimal || sol.Objective != 0 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
	if !p.Feasible(sol.X, 1e-9) {
		t.Fatalf("returned infeasible point %v", sol.X)
	}
}

func TestClone(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 5, 1)
	p.AddConstraint("c", []Term{{x, 1}}, GE, 1)
	q := p.Clone()
	q.SetVarBounds(x, 2, 5)
	s1 := solveOrFail(t, p)
	s2 := solveOrFail(t, q)
	if math.Abs(s1.X[x]-1) > 1e-8 {
		t.Fatalf("original perturbed: %v", s1.X)
	}
	if math.Abs(s2.X[x]-2) > 1e-8 {
		t.Fatalf("clone wrong: %v", s2.X)
	}
}
