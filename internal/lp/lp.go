// Package lp implements a dense two-phase simplex solver for linear
// programs with variable bounds. It stands in for the commercial ILP solver
// (Gurobi) the EffiTest paper uses: package mip adds branch & bound on top.
//
// The solver targets the problem sizes EffiTest produces — alignment models
// with tens of variables (Eqs. 7–14) and small cross-check instances of the
// configuration model (Eqs. 15–18). It is a textbook tableau implementation:
// bounds are rewritten into shifted non-negative variables plus explicit
// upper-bound rows, Phase 1 minimizes artificial infeasibility, Phase 2 the
// real objective. Dantzig pricing with a Bland fallback guards against
// cycling.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means no feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below (for
	// minimization).
	StatusUnbounded
	// StatusIterLimit means the iteration limit was exceeded.
	StatusIterLimit
)

// String returns a human-readable status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Sense is a constraint relation.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// Inf is the bound value representing +infinity.
var Inf = math.Inf(1)

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

type variable struct {
	name string
	lo   float64
	hi   float64
	obj  float64
}

type constraint struct {
	name  string
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. The zero value is an empty
// minimization problem.
type Problem struct {
	vars     []variable
	cons     []constraint
	maximize bool

	// MaxIter bounds simplex pivots; 0 means automatic (scales with size).
	MaxIter int
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// SetMaximize switches the objective direction.
func (p *Problem) SetMaximize(max bool) { p.maximize = max }

// AddVar adds a variable with bounds [lo, hi] (use -lp.Inf / lp.Inf for free
// sides) and objective coefficient obj. It returns the variable index.
func (p *Problem) AddVar(name string, lo, hi, obj float64) int {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %v > hi %v", name, lo, hi))
	}
	p.vars = append(p.vars, variable{name: name, lo: lo, hi: hi, obj: obj})
	return len(p.vars) - 1
}

// AddConstraint adds a linear constraint Σ terms (sense) rhs.
func (p *Problem) AddConstraint(name string, terms []Term, sense Sense, rhs float64) {
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
	}
	ts := make([]Term, len(terms))
	copy(ts, terms)
	p.cons = append(p.cons, constraint{name: name, terms: ts, sense: sense, rhs: rhs})
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// VarBounds returns the bounds of variable v.
func (p *Problem) VarBounds(v int) (lo, hi float64) { return p.vars[v].lo, p.vars[v].hi }

// SetVarBounds updates the bounds of variable v (used by branch & bound).
func (p *Problem) SetVarBounds(v int, lo, hi float64) {
	if lo > hi {
		// Deliberately representable: branch & bound may create empty boxes,
		// which must surface as infeasible rather than panic.
		p.vars[v].lo, p.vars[v].hi = 1, -1
		return
	}
	p.vars[v].lo, p.vars[v].hi = lo, hi
}

// Clone returns an independent copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{maximize: p.maximize, MaxIter: p.MaxIter}
	q.vars = make([]variable, len(p.vars))
	copy(q.vars, p.vars)
	q.cons = make([]constraint, len(p.cons))
	for i, c := range p.cons {
		ts := make([]Term, len(c.terms))
		copy(ts, c.terms)
		q.cons[i] = constraint{name: c.name, terms: ts, sense: c.sense, rhs: c.rhs}
	}
	return q
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64 // values of the original variables
}

const (
	tolPivot = 1e-9
	tolZero  = 1e-9
	tolFeas  = 1e-7
)

// Solve runs two-phase simplex and returns the solution. Only
// StatusOptimal solutions carry meaningful X and Objective.
func (p *Problem) Solve() (*Solution, error) {
	for _, v := range p.vars {
		if v.lo > v.hi {
			return &Solution{Status: StatusInfeasible}, nil
		}
	}
	std, err := p.toStandard()
	if err != nil {
		return nil, err
	}
	status := std.run()
	sol := &Solution{Status: status}
	if status != StatusOptimal {
		return sol, nil
	}
	sol.X = std.extract(p)
	obj := 0.0
	for i, v := range p.vars {
		obj += v.obj * sol.X[i]
	}
	sol.Objective = obj
	return sol, nil
}

// standard holds the Phase-1/Phase-2 tableau in computational standard form:
// min cᵀx, A x = b, x ≥ 0, b ≥ 0.
type standard struct {
	m, n    int
	a       [][]float64 // m rows, n cols
	b       []float64
	c       []float64 // phase-2 costs
	basis   []int
	nArt    int // number of artificial columns (last nArt columns)
	maxIter int

	// mapping back to original variables: for original var i,
	// value = sign[i]*x[col[i]] + shift[i]  (col -1 means fixed at shift).
	col   []int
	sign  []float64
	shift []float64
	// free variables use a second column with negative sign.
	negCol []int
}

// toStandard rewrites the problem into standard form.
//
// Variable rewriting:
//   - lo finite:            x = lo + u, u ≥ 0; if hi finite add row u ≤ hi-lo
//   - lo = -inf, hi finite: x = hi - u, u ≥ 0
//   - free:                 x = u - w, u, w ≥ 0
func (p *Problem) toStandard() (*standard, error) {
	nv := len(p.vars)
	s := &standard{
		col:    make([]int, nv),
		sign:   make([]float64, nv),
		shift:  make([]float64, nv),
		negCol: make([]int, nv),
	}
	for i := range s.negCol {
		s.negCol[i] = -1
	}
	ncols := 0
	type ubRow struct {
		col int
		ub  float64
	}
	var ubRows []ubRow
	for i, v := range p.vars {
		switch {
		case v.lo == v.hi:
			s.col[i] = -1
			s.sign[i] = 0
			s.shift[i] = v.lo
		case !math.IsInf(v.lo, -1):
			s.col[i] = ncols
			s.sign[i] = 1
			s.shift[i] = v.lo
			if !math.IsInf(v.hi, 1) {
				ubRows = append(ubRows, ubRow{ncols, v.hi - v.lo})
			}
			ncols++
		case !math.IsInf(v.hi, 1):
			s.col[i] = ncols
			s.sign[i] = -1
			s.shift[i] = v.hi
			ncols++
		default: // free
			s.col[i] = ncols
			s.sign[i] = 1
			s.shift[i] = 0
			s.negCol[i] = ncols + 1
			ncols += 2
		}
	}
	structCols := ncols

	// Row construction. Each constraint contributes one row; upper bounds
	// contribute one row each. Slack columns appended after structurals.
	type row struct {
		coefs []float64 // len structCols
		rhs   float64
		sense Sense
	}
	rows := make([]row, 0, len(p.cons)+len(ubRows))
	dir := 1.0
	if p.maximize {
		dir = -1
	}
	costs := make([]float64, structCols)
	for i, v := range p.vars {
		if s.col[i] < 0 || v.obj == 0 {
			continue
		}
		costs[s.col[i]] += dir * v.obj * s.sign[i]
		if s.negCol[i] >= 0 {
			costs[s.negCol[i]] -= dir * v.obj
		}
	}
	for _, c := range p.cons {
		r := row{coefs: make([]float64, structCols), rhs: c.rhs, sense: c.sense}
		for _, t := range c.terms {
			i := t.Var
			if s.col[i] < 0 {
				r.rhs -= t.Coef * s.shift[i]
				continue
			}
			r.coefs[s.col[i]] += t.Coef * s.sign[i]
			if s.negCol[i] >= 0 {
				r.coefs[s.negCol[i]] -= t.Coef
			}
			r.rhs -= t.Coef * s.shift[i]
		}
		rows = append(rows, r)
	}
	for _, ub := range ubRows {
		r := row{coefs: make([]float64, structCols), rhs: ub.ub, sense: LE}
		r.coefs[ub.col] = 1
		rows = append(rows, r)
	}

	m := len(rows)
	// Count slack columns: one for every LE/GE row.
	nSlack := 0
	for _, r := range rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	// Worst case every row needs an artificial.
	total := structCols + nSlack + m
	a := make([][]float64, m)
	b := make([]float64, m)
	basis := make([]int, m)
	for i := range basis {
		basis[i] = -1
	}
	slackAt := structCols
	for ri, r := range rows {
		a[ri] = make([]float64, total)
		copy(a[ri], r.coefs)
		rhs := r.rhs
		sl := 0.0
		switch r.sense {
		case LE:
			sl = 1
		case GE:
			sl = -1
		}
		var slCol = -1
		if sl != 0 {
			slCol = slackAt
			a[ri][slCol] = sl
			slackAt++
		}
		if rhs < 0 {
			for j := range a[ri] {
				a[ri][j] = -a[ri][j]
			}
			rhs = -rhs
		}
		b[ri] = rhs
		// Slack usable as initial basis only if its coefficient is +1 now.
		if slCol >= 0 && a[ri][slCol] == 1 {
			basis[ri] = slCol
		}
	}
	artAt := structCols + nSlack
	nArt := 0
	for ri := range rows {
		if basis[ri] >= 0 {
			continue
		}
		c := artAt + nArt
		a[ri][c] = 1
		basis[ri] = c
		nArt++
	}
	total = artAt + nArt
	for ri := range a {
		a[ri] = a[ri][:total]
	}

	s.m, s.n = m, total
	s.a, s.b, s.basis = a, b, basis
	s.nArt = nArt
	s.c = make([]float64, total)
	copy(s.c, costs)
	s.maxIter = p.MaxIter
	if s.maxIter == 0 {
		s.maxIter = 200 * (m + total + 10)
	}
	return s, nil
}

// run executes the two phases and returns the final status.
func (s *standard) run() Status {
	if s.nArt > 0 {
		phase1 := make([]float64, s.n)
		for j := s.n - s.nArt; j < s.n; j++ {
			phase1[j] = 1
		}
		st, obj := s.simplex(phase1)
		if st == StatusIterLimit {
			return st
		}
		if obj > tolFeas {
			return StatusInfeasible
		}
		s.purgeArtificials()
	}
	st, _ := s.simplex(s.c)
	return st
}

// purgeArtificials pivots basic artificials out (or detects redundant rows)
// and deletes the artificial columns.
func (s *standard) purgeArtificials() {
	firstArt := s.n - s.nArt
	for ri := 0; ri < s.m; ri++ {
		if s.basis[ri] < firstArt {
			continue
		}
		// Try to pivot in any structural/slack column with nonzero entry.
		pivoted := false
		for j := 0; j < firstArt; j++ {
			if math.Abs(s.a[ri][j]) > tolPivot {
				s.pivot(ri, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all zero outside artificials): zero it out.
			for j := range s.a[ri] {
				s.a[ri][j] = 0
			}
			s.b[ri] = 0
			// Keep the artificial basic at level 0; cost forces it to stay 0.
			// Mark by basis = -1 so extraction/pricing skips the row.
			s.basis[ri] = -1
		}
	}
	// Drop artificial columns.
	for ri := 0; ri < s.m; ri++ {
		s.a[ri] = s.a[ri][:firstArt]
	}
	s.c = s.c[:firstArt]
	s.n = firstArt
	s.nArt = 0
}

// simplex minimizes cost over the current tableau. It returns the status and
// the objective value reached.
func (s *standard) simplex(cost []float64) (Status, float64) {
	y := make([]float64, s.m) // simplex multipliers via basis costs (computed per iter, dense)
	for iter := 0; iter < s.maxIter; iter++ {
		// Reduced costs: rc_j = c_j - Σ_i cB_i * a_ij. We maintain the
		// tableau in product form (fully eliminated), so basic columns are
		// unit vectors and rc_j = c_j - Σ over rows of cB_row * a[row][j].
		for i := 0; i < s.m; i++ {
			if s.basis[i] >= 0 {
				y[i] = cost[s.basis[i]]
			} else {
				y[i] = 0
			}
		}
		enter := -1
		best := -tolZero
		bland := iter > s.maxIter/2
		for j := 0; j < s.n; j++ {
			if isBasic(s.basis, j) {
				continue
			}
			rc := cost[j]
			for i := 0; i < s.m; i++ {
				if y[i] != 0 {
					rc -= y[i] * s.a[i][j]
				}
			}
			if rc < -tolZero {
				if bland {
					enter = j
					break
				}
				if rc < best {
					best = rc
					enter = j
				}
			}
		}
		if enter < 0 {
			// Optimal. Objective = Σ cB_i b_i.
			obj := 0.0
			for i := 0; i < s.m; i++ {
				if s.basis[i] >= 0 {
					obj += cost[s.basis[i]] * s.b[i]
				}
			}
			return StatusOptimal, obj
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < s.m; i++ {
			if s.basis[i] < 0 {
				continue
			}
			aij := s.a[i][enter]
			if aij > tolPivot {
				ratio := s.b[i] / aij
				if ratio < bestRatio-tolZero ||
					(ratio < bestRatio+tolZero && leave >= 0 && s.basis[i] < s.basis[leave]) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return StatusUnbounded, math.Inf(-1)
		}
		s.pivot(leave, enter)
	}
	return StatusIterLimit, 0
}

// pivot makes column enter basic in row r.
func (s *standard) pivot(r, enter int) {
	pa := s.a[r][enter]
	inv := 1 / pa
	row := s.a[r]
	for j := range row {
		row[j] *= inv
	}
	s.b[r] *= inv
	row[enter] = 1 // exact
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := s.a[i][enter]
		if f == 0 {
			continue
		}
		ai := s.a[i]
		for j := range ai {
			ai[j] -= f * row[j]
		}
		ai[enter] = 0 // exact
		s.b[i] -= f * s.b[r]
		if s.b[i] < 0 && s.b[i] > -tolZero {
			s.b[i] = 0
		}
	}
	s.basis[r] = enter
}

// extract recovers original variable values from the tableau.
func (s *standard) extract(p *Problem) []float64 {
	xstd := make([]float64, s.n)
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= 0 {
			xstd[s.basis[i]] = s.b[i]
		}
	}
	out := make([]float64, len(p.vars))
	for i := range p.vars {
		if s.col[i] < 0 {
			out[i] = s.shift[i]
			continue
		}
		v := s.sign[i]*xstd[s.col[i]] + s.shift[i]
		if s.negCol[i] >= 0 {
			v -= xstd[s.negCol[i]]
		}
		// Clamp round-off outside bounds.
		if lo := p.vars[i].lo; v < lo {
			v = lo
		}
		if hi := p.vars[i].hi; v > hi {
			v = hi
		}
		out[i] = v
	}
	return out
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

// Eval computes the objective value of the problem at point x (in original
// variable space), useful for verification in tests.
func (p *Problem) Eval(x []float64) (float64, error) {
	if len(x) != len(p.vars) {
		return 0, errors.New("lp: eval dimension mismatch")
	}
	obj := 0.0
	for i, v := range p.vars {
		obj += v.obj * x[i]
	}
	return obj, nil
}

// Feasible reports whether x satisfies all constraints and bounds within tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != len(p.vars) {
		return false
	}
	for i, v := range p.vars {
		if x[i] < v.lo-tol || x[i] > v.hi+tol {
			return false
		}
	}
	for _, c := range p.cons {
		s := 0.0
		for _, t := range c.terms {
			s += t.Coef * x[t.Var]
		}
		switch c.sense {
		case LE:
			if s > c.rhs+tol {
				return false
			}
		case GE:
			if s < c.rhs-tol {
				return false
			}
		case EQ:
			if math.Abs(s-c.rhs) > tol {
				return false
			}
		}
	}
	return true
}
