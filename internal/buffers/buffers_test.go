package buffers

import (
	"math"
	"testing"
	"testing/quick"
)

func dev() Device { return Device{FF: 3, Lo: -0.5, Hi: 0.5, Steps: 20} }

func TestStepValue(t *testing.T) {
	d := dev()
	if s := d.StepSize(); math.Abs(s-0.05) > 1e-12 {
		t.Fatalf("step = %v", s)
	}
	if v := d.Value(0); v != -0.5 {
		t.Fatalf("Value(0) = %v", v)
	}
	if v := d.Value(20); v != 0.5 {
		t.Fatalf("Value(20) = %v", v)
	}
	if v := d.Value(10); math.Abs(v) > 1e-12 {
		t.Fatalf("Value(10) = %v", v)
	}
	// Clamping.
	if d.Value(-3) != d.Value(0) || d.Value(99) != d.Value(20) {
		t.Fatal("Value should clamp")
	}
}

func TestStepForRoundTrip(t *testing.T) {
	d := dev()
	for s := 0; s <= d.Steps; s++ {
		if got := d.StepFor(d.Value(s)); got != s {
			t.Fatalf("StepFor(Value(%d)) = %d", s, got)
		}
	}
	if d.StepFor(-99) != 0 || d.StepFor(99) != d.Steps {
		t.Fatal("StepFor should clamp")
	}
}

func TestZeroStepDevice(t *testing.T) {
	d := Device{Lo: 1, Hi: 1, Steps: 0}
	if d.StepSize() != 0 || d.NumBits() != 0 || d.StepFor(5) != 0 {
		t.Fatal("degenerate device misbehaves")
	}
}

func TestNumBits(t *testing.T) {
	cases := []struct{ steps, bits int }{
		{1, 1}, {2, 2}, {3, 2}, {7, 3}, {8, 4}, {20, 5}, {31, 5}, {32, 6},
	}
	for _, c := range cases {
		d := Device{Steps: c.steps}
		if got := d.NumBits(); got != c.bits {
			t.Errorf("NumBits(steps=%d) = %d, want %d", c.steps, got, c.bits)
		}
	}
}

func TestEncodeDecodeDevice(t *testing.T) {
	d := dev()
	for s := 0; s <= d.Steps; s++ {
		bits, err := d.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decode(bits)
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("roundtrip %d -> %d", s, got)
		}
	}
	if _, err := d.Encode(-1); err == nil {
		t.Error("negative step should fail")
	}
	if _, err := d.Encode(21); err == nil {
		t.Error("overflow step should fail")
	}
	if _, err := d.Decode([]bool{true}); err == nil {
		t.Error("short bits should fail")
	}
	// Bit pattern 0b10101 = 21 > 20 steps must be rejected.
	if _, err := d.Decode([]bool{true, false, true, false, true}); err == nil {
		t.Error("out-of-range pattern should fail")
	}
}

func TestChainRoundTrip(t *testing.T) {
	ch := Chain{Devices: []Device{
		{FF: 0, Lo: -0.5, Hi: 0.5, Steps: 20},
		{FF: 4, Lo: -0.25, Hi: 0.25, Steps: 10},
		{FF: 9, Lo: 0, Hi: 1, Steps: 4},
	}}
	f := func(a, b, c uint8) bool {
		steps := []int{int(a) % 21, int(b) % 11, int(c) % 5}
		bits, err := ch.Encode(steps)
		if err != nil {
			return false
		}
		if len(bits) != ch.TotalBits() {
			return false
		}
		got, err := ch.Decode(bits)
		if err != nil {
			return false
		}
		for i := range steps {
			if got[i] != steps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChainErrors(t *testing.T) {
	ch := Chain{Devices: []Device{dev()}}
	if _, err := ch.Encode([]int{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := ch.Decode(make([]bool, 2)); err == nil {
		t.Error("short stream should fail")
	}
	if _, err := ch.Decode(make([]bool, 9)); err == nil {
		t.Error("long stream should fail")
	}
	if _, err := ch.ValuesFor([]int{1, 2}); err == nil {
		t.Error("values length mismatch should fail")
	}
}

func TestValuesFor(t *testing.T) {
	ch := Chain{Devices: []Device{dev(), {FF: 1, Lo: 0, Hi: 1, Steps: 2}}}
	vals, err := ch.ValuesFor([]int{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1e-12 || math.Abs(vals[1]-0.5) > 1e-12 {
		t.Fatalf("values = %v", vals)
	}
}
