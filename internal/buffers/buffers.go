// Package buffers models the post-silicon tunable clock buffer device of
// the paper's Figure 1 (the Itanium-style "clock vernier"): a delay line
// whose tap is selected by configuration bits held in scan registers. The
// package provides step/value mapping and scan-chain bit encoding, which the
// tester simulator shifts in together with test vectors — the property that
// lets EffiTest re-tune buffers during test "with no change to the existing
// test platform".
package buffers

import (
	"errors"
	"fmt"
	"math"
)

// Device is one tunable buffer: delay selectable on a uniform lattice of
// Steps+1 values spanning [Lo, Hi].
type Device struct {
	FF    int // flip-flop this buffer drives
	Lo    float64
	Hi    float64
	Steps int
}

// StepSize returns the lattice pitch.
func (d Device) StepSize() float64 {
	if d.Steps <= 0 {
		return 0
	}
	return (d.Hi - d.Lo) / float64(d.Steps)
}

// Value returns the delay of the given step index (clamped to range).
func (d Device) Value(step int) float64 {
	if step < 0 {
		step = 0
	}
	if step > d.Steps {
		step = d.Steps
	}
	return d.Lo + float64(step)*d.StepSize()
}

// StepFor returns the step index whose value is nearest to x.
func (d Device) StepFor(x float64) int {
	s := d.StepSize()
	if s == 0 {
		return 0
	}
	k := int(math.Round((x - d.Lo) / s))
	if k < 0 {
		k = 0
	}
	if k > d.Steps {
		k = d.Steps
	}
	return k
}

// NumBits returns the width of the configuration register (Figure 1 shows
// three registers; the bit budget is ⌈log2(Steps+1)⌉).
func (d Device) NumBits() int {
	if d.Steps <= 0 {
		return 0
	}
	bits := 0
	for v := d.Steps; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// Encode returns the configuration bits (LSB first) for a step index.
func (d Device) Encode(step int) ([]bool, error) {
	if step < 0 || step > d.Steps {
		return nil, fmt.Errorf("buffers: step %d out of range [0, %d]", step, d.Steps)
	}
	bits := make([]bool, d.NumBits())
	for i := range bits {
		bits[i] = step&(1<<i) != 0
	}
	return bits, nil
}

// Decode converts configuration bits (LSB first) back to a step index.
func (d Device) Decode(bits []bool) (int, error) {
	if len(bits) != d.NumBits() {
		return 0, fmt.Errorf("buffers: got %d bits, want %d", len(bits), d.NumBits())
	}
	step := 0
	for i, b := range bits {
		if b {
			step |= 1 << i
		}
	}
	if step > d.Steps {
		return 0, fmt.Errorf("buffers: decoded step %d exceeds %d", step, d.Steps)
	}
	return step, nil
}

// Chain is the scan chain threading every buffer's configuration register,
// in order.
type Chain struct {
	Devices []Device
}

// TotalBits returns the scan-chain length in bits.
func (c Chain) TotalBits() int {
	n := 0
	for _, d := range c.Devices {
		n += d.NumBits()
	}
	return n
}

// Encode serializes one step index per device into the scan bitstream.
func (c Chain) Encode(steps []int) ([]bool, error) {
	if len(steps) != len(c.Devices) {
		return nil, errors.New("buffers: step count mismatch")
	}
	out := make([]bool, 0, c.TotalBits())
	for i, d := range c.Devices {
		bits, err := d.Encode(steps[i])
		if err != nil {
			return nil, err
		}
		out = append(out, bits...)
	}
	return out, nil
}

// Decode deserializes a scan bitstream into per-device step indices.
func (c Chain) Decode(bits []bool) ([]int, error) {
	steps := make([]int, len(c.Devices))
	at := 0
	for i, d := range c.Devices {
		n := d.NumBits()
		if at+n > len(bits) {
			return nil, errors.New("buffers: bitstream too short")
		}
		s, err := d.Decode(bits[at : at+n])
		if err != nil {
			return nil, err
		}
		steps[i] = s
		at += n
	}
	if at != len(bits) {
		return nil, errors.New("buffers: bitstream too long")
	}
	return steps, nil
}

// ValuesFor maps per-device step indices to delay values.
func (c Chain) ValuesFor(steps []int) ([]float64, error) {
	if len(steps) != len(c.Devices) {
		return nil, errors.New("buffers: step count mismatch")
	}
	out := make([]float64, len(steps))
	for i, d := range c.Devices {
		out[i] = d.Value(steps[i])
	}
	return out, nil
}
