// Package pool provides the bounded worker-pool primitive behind the
// engine's parallel chip execution. Work items are claimed from a shared
// atomic counter, so scheduling is dynamic, but all determinism-sensitive
// aggregation is left to callers, who index results by item and reduce in
// item order.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a configured worker count to an effective one: n > 0 is used
// as-is, anything else means one worker per logical CPU.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(0), ..., fn(n-1) on up to `workers` goroutines (Resolve
// semantics) and blocks until all claimed items finish. Once the context is
// cancelled or some fn returns an error, no further items are claimed.
//
// The returned error is deterministic even under concurrency: indices are
// claimed in ascending order and every claimed item runs to completion, so
// the lowest-index error always gets recorded before the pool drains. That
// is exactly the error a sequential loop would have returned. If no fn
// failed but the context was cancelled, the context error is returned.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  = n
		firstEr error
		wg      sync.WaitGroup
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return firstEr
	}
	return ctx.Err()
}
