package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Fatalf("Resolve(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-3); got != want {
		t.Fatalf("Resolve(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		var counts [n]atomic.Int32
		err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForEachReturnsLowestIndexError races a fast high-index failure
// against a slow low-index failure: the returned error must be the one a
// sequential loop would have hit first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	for trial := 0; trial < 20; trial++ {
		err := ForEach(context.Background(), 50, 8, func(i int) error {
			switch i {
			case 3:
				time.Sleep(2 * time.Millisecond) // loses the race...
				return errAt(3)
			case 9:
				return errAt(9) // ...to this one
			}
			return nil
		})
		if err == nil || err.Error() != "fail@3" {
			t.Fatalf("trial %d: err = %v, want fail@3", trial, err)
		}
	}
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 1_000_000, 4, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 10_000 {
		t.Fatalf("%d items ran after an index-0 error; claiming did not stop", n)
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, 4, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A few items may have been claimed before the workers observed the
	// cancellation, but the bulk must not run.
	if n := ran.Load(); n > 8 {
		t.Fatalf("%d items ran under a pre-cancelled context", n)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 0, 4, func(i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}
