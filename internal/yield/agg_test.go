package yield

import (
	"math/rand"
	"testing"
	"time"

	"effitest/internal/core"
)

func randOutcome(r *rand.Rand) *core.ChipOutcome {
	return &core.ChipOutcome{
		Iterations:     r.Intn(500),
		ScanBits:       int64(r.Intn(100000)),
		AlignDuration:  time.Duration(r.Intn(1e6)),
		ConfigDuration: time.Duration(r.Intn(1e6)),
		Configured:     r.Intn(4) != 0,
		Passed:         r.Intn(3) != 0,
	}
}

// Any partition of an outcome stream into shards must merge to exactly the
// aggregate of a single sequential pass — the campaign scheduler depends on
// this when chips of one population complete on different workers.
func TestAggShardedMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	outs := make([]*core.ChipOutcome, 257)
	for i := range outs {
		outs[i] = randOutcome(r)
	}
	var whole Agg
	for _, out := range outs {
		whole.Observe(out)
	}

	for _, shards := range []int{1, 2, 3, 8, 64, len(outs)} {
		partials := make([]Agg, shards)
		for _, out := range outs {
			partials[r.Intn(shards)].Observe(out)
		}
		var merged Agg
		for _, p := range partials {
			merged.Merge(p)
		}
		if merged != whole {
			t.Fatalf("%d shards: merged %+v != sequential %+v", shards, merged, whole)
		}
		if merged.Stats() != whole.Stats() {
			t.Fatalf("%d shards: stats diverge", shards)
		}
	}
}

// Merge must be order-independent: reversing the shard fold order cannot
// change a single bit of the result.
func TestAggMergeCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	partials := make([]Agg, 9)
	for i := range partials {
		for j := 0; j < r.Intn(40); j++ {
			partials[i].Observe(randOutcome(r))
		}
	}
	var fwd, rev Agg
	for i := range partials {
		fwd.Merge(partials[i])
		rev.Merge(partials[len(partials)-1-i])
	}
	if fwd != rev {
		t.Fatalf("merge order changed the aggregate: %+v != %+v", fwd, rev)
	}
}

// Adversarial shard arrival, as the fleet coordinator produces it: shards
// complete out of order, a rebalanced retry re-delivers chips that already
// arrived (suppressed by position before they reach Observe), and some
// shards land empty (a node died before finishing a single chip). The
// merged aggregate must still equal the sequential pass bit-for-bit.
func TestAggMergeAdversarialShardArrival(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	outs := make([]*core.ChipOutcome, 193)
	for i := range outs {
		outs[i] = randOutcome(r)
	}
	var whole Agg
	for _, out := range outs {
		whole.Observe(out)
	}

	for trial := 0; trial < 50; trial++ {
		// Partition positions into shards, then append duplicate "retry"
		// shards re-covering random prefixes of earlier shards, plus empty
		// shards. seen dedups by position before Observe — the coordinator's
		// exactly-once merge.
		shards := 1 + r.Intn(7)
		assign := make([][]int, shards)
		for pos := range outs {
			s := r.Intn(shards)
			assign[s] = append(assign[s], pos)
		}
		for s := 0; s < shards; s++ {
			if len(assign[s]) > 0 && r.Intn(2) == 0 {
				dup := assign[s][:1+r.Intn(len(assign[s]))]
				assign = append(assign, append([]int(nil), dup...))
			}
			if r.Intn(3) == 0 {
				assign = append(assign, nil) // empty shard
			}
		}

		partials := make([]Agg, len(assign))
		seen := make([]bool, len(outs))
		// Arrival order is adversarial: process shards in a random order.
		for _, s := range r.Perm(len(assign)) {
			for _, pos := range assign[s] {
				if seen[pos] {
					continue // duplicate suppressed after retry
				}
				seen[pos] = true
				partials[s].Observe(outs[pos])
			}
		}
		var merged Agg
		for _, s := range r.Perm(len(partials)) {
			merged.Merge(partials[s])
		}
		if merged != whole {
			t.Fatalf("trial %d: adversarial merge %+v != sequential %+v", trial, merged, whole)
		}
		if merged.Stats() != whole.Stats() {
			t.Fatalf("trial %d: stats diverge after adversarial merge", trial)
		}
	}
}

func TestAggZeroStats(t *testing.T) {
	var a Agg
	if st := a.Stats(); st != (ProposedStats{}) {
		t.Fatalf("zero aggregate produced non-zero stats: %+v", st)
	}
}

// Agg.Stats must agree exactly with the historical inline aggregation in
// ProposedOpts (sum then divide once, in the same order).
func TestAggStatsMatchesDirectAverages(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var a Agg
	var iters int
	var scan int64
	var align, config time.Duration
	var passed, configured, n int
	for i := 0; i < 100; i++ {
		out := randOutcome(r)
		a.Observe(out)
		n++
		iters += out.Iterations
		scan += out.ScanBits
		align += out.AlignDuration
		config += out.ConfigDuration
		if out.Passed {
			passed++
		}
		if out.Configured {
			configured++
		}
	}
	want := ProposedStats{
		Yield:          float64(passed) / float64(n),
		AvgIterations:  float64(iters) / float64(n),
		AvgScanBits:    float64(scan) / float64(n),
		AvgAlignTime:   time.Duration(float64(align) / float64(n)),
		AvgConfigTime:  time.Duration(float64(config) / float64(n)),
		ConfiguredFrac: float64(configured) / float64(n),
	}
	if got := a.Stats(); got != want {
		t.Fatalf("stats %+v != direct averages %+v", got, want)
	}
}
