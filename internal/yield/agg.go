package yield

import (
	"time"

	"effitest/internal/core"
)

// Agg is a mergeable streaming aggregator over chip outcomes: every field is
// an exact sum (integers and durations, never floating-point partials), so
// sharded partial aggregates combine with Merge into exactly the aggregate a
// single sequential pass would have produced — the property fleet campaigns
// rely on when chips of one population are executed on different workers,
// processes or shards.
//
// The zero value is ready to use. Agg is not safe for concurrent use; give
// each shard its own Agg and Merge the shards afterwards (or serialize
// Observe calls, as the campaign scheduler does).
type Agg struct {
	Chips      int   // outcomes observed
	Passed     int   // final pass/fail test passed
	Configured int   // a feasible buffer configuration was found
	Iterations int   // total tester frequency steps
	ScanBits   int64 // total configuration bits shifted

	AlignDuration  time.Duration // summed Tt component
	ConfigDuration time.Duration // summed Ts component
}

// Observe folds one chip outcome into the aggregate.
func (a *Agg) Observe(out *core.ChipOutcome) {
	a.Chips++
	a.Iterations += out.Iterations
	a.ScanBits += out.ScanBits
	a.AlignDuration += out.AlignDuration
	a.ConfigDuration += out.ConfigDuration
	if out.Configured {
		a.Configured++
	}
	if out.Passed {
		a.Passed++
	}
}

// Merge folds another shard's aggregate into a. Because every field is an
// exact sum, Merge is associative and commutative: any partition of a chip
// population into shards merges to the identical Agg.
func (a *Agg) Merge(b Agg) {
	a.Chips += b.Chips
	a.Passed += b.Passed
	a.Configured += b.Configured
	a.Iterations += b.Iterations
	a.ScanBits += b.ScanBits
	a.AlignDuration += b.AlignDuration
	a.ConfigDuration += b.ConfigDuration
}

// Stats finalizes the aggregate into the per-chip averages of ProposedStats.
// With zero chips observed it returns the zero stats.
func (a Agg) Stats() ProposedStats {
	var st ProposedStats
	if a.Chips == 0 {
		return st
	}
	n := float64(a.Chips)
	st.Yield = float64(a.Passed) / n
	st.AvgIterations = float64(a.Iterations) / n
	st.AvgScanBits = float64(a.ScanBits) / n
	st.AvgAlignTime = time.Duration(float64(a.AlignDuration) / n)
	st.AvgConfigTime = time.Duration(float64(a.ConfigDuration) / n)
	st.ConfiguredFrac = float64(a.Configured) / n
	return st
}
