package yield

import (
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/tester"
)

func tiny(t *testing.T, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("yl", 24, 200, 3, 30), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPeriodQuantileCalibratesBaseYield(t *testing.T) {
	c := tiny(t, 1)
	t1 := PeriodQuantile(c, 9, 600, 0.5)
	chips := tester.SampleChips(c, 10, 600) // different stream
	nb := NoBuffer(chips, t1)
	if math.Abs(nb-0.5) > 0.08 {
		t.Fatalf("yield at median period = %v, want ≈ 0.5", nb)
	}
	t2 := PeriodQuantile(c, 9, 600, 0.8413)
	nb2 := NoBuffer(chips, t2)
	if math.Abs(nb2-0.8413) > 0.07 {
		t.Fatalf("yield at q84 period = %v, want ≈ 0.84", nb2)
	}
	if t2 <= t1 {
		t.Fatal("T2 must exceed T1")
	}
}

func TestIdealBetweenNoBufferAndOne(t *testing.T) {
	c := tiny(t, 2)
	chips := tester.SampleChips(c, 11, 200)
	T := PeriodQuantile(c, 9, 400, 0.5)
	nb := NoBuffer(chips, T)
	id := Ideal(c, chips, T)
	if id < nb {
		t.Fatalf("ideal %v below no-buffer %v — tuning can always do nothing", id, nb)
	}
	if id > 1 {
		t.Fatalf("yield %v above 1", id)
	}
	if id == nb {
		t.Fatal("tuning should rescue at least some chips at the median period")
	}
}

func TestProposedBetweenNoBufferAndIdeal(t *testing.T) {
	c := tiny(t, 3)
	cfg := core.DefaultConfig()
	plan, err := core.Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chips := tester.SampleChips(c, 13, 100)
	T := PeriodQuantile(c, 9, 400, 0.8413)
	st, err := Proposed(plan, chips, T)
	if err != nil {
		t.Fatal(err)
	}
	id := Ideal(c, chips, T)
	if st.Yield > id+1e-9 {
		t.Fatalf("proposed %v beats ideal %v — impossible", st.Yield, id)
	}
	if st.Yield < id-0.15 {
		t.Fatalf("proposed %v too far below ideal %v", st.Yield, id)
	}
	if st.AvgIterations <= 0 {
		t.Fatal("no iterations recorded")
	}
	if st.ConfiguredFrac < st.Yield-1e-9 {
		t.Fatal("passed chips must have been configured")
	}
}

func TestCurveMonotoneAndOrdered(t *testing.T) {
	c := tiny(t, 5)
	chips := tester.SampleChips(c, 15, 150)
	lo := PeriodQuantile(c, 9, 300, 0.05)
	hi := PeriodQuantile(c, 9, 300, 0.99)
	curve := Curve(c, chips, lo, hi, 8)
	if len(curve) != 8 {
		t.Fatalf("points = %d", len(curve))
	}
	for i, pt := range curve {
		if pt.Ideal < pt.NoBuffer-1e-9 {
			t.Fatalf("point %d: ideal %v below no-buffer %v", i, pt.Ideal, pt.NoBuffer)
		}
		if i > 0 {
			if pt.NoBuffer < curve[i-1].NoBuffer-1e-9 {
				t.Fatalf("no-buffer yield not monotone in T at point %d", i)
			}
			if pt.Ideal < curve[i-1].Ideal-1e-9 {
				t.Fatalf("ideal yield not monotone in T at point %d", i)
			}
		}
	}
	// At the generous end, both should be near 1.
	last := curve[len(curve)-1]
	if last.NoBuffer < 0.9 || last.Ideal < 0.9 {
		t.Fatalf("yields at q99 period too low: %+v", last)
	}
}

func TestEmptyChipList(t *testing.T) {
	c := tiny(t, 4)
	if NoBuffer(nil, 1) != 0 || Ideal(c, nil, 1) != 0 {
		t.Fatal("empty chip list should give 0")
	}
	plan, err := core.Prepare(c, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := Proposed(plan, nil, 1)
	if err != nil || st.Yield != 0 {
		t.Fatalf("empty proposed: %v %v", st, err)
	}
}
