// Package yield evaluates manufacturing yield under the three regimes the
// paper compares: no tuning buffers, buffers configured from a perfect
// delay measurement (yi), and buffers configured by the EffiTest flow (yt).
package yield

import (
	"time"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/skew"
	"effitest/internal/stats"
	"effitest/internal/tester"
)

// PeriodQuantile returns the q-quantile of the no-tuning critical delay
// (max realized path delay) over n Monte-Carlo chips. The paper's T1 and T2
// are the 0.5 and 0.8413 quantiles ("the original yields without buffers
// were 50% and 84.13%").
func PeriodQuantile(c *circuit.Circuit, seed int64, n int, q float64) float64 {
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = tester.SampleChip(c, seed, i).CriticalDelay()
	}
	return stats.Quantile(xs, q)
}

// NoBuffer returns the fraction of chips meeting period T with all buffers
// at zero.
func NoBuffer(chips []*tester.Chip, T float64) float64 {
	if len(chips) == 0 {
		return 0
	}
	pass := 0
	for _, ch := range chips {
		zeros := make([]float64, ch.Circuit.NumFF)
		if ch.PassesAt(T, zeros) && ch.HoldOK(zeros) {
			pass++
		}
	}
	return float64(pass) / float64(len(chips))
}

// Ideal returns the yield with perfect delay measurement: a chip counts when
// a discrete buffer assignment exists for its exact realized delays (setup
// at T, true hold bounds, buffer ranges and lattice).
func Ideal(c *circuit.Circuit, chips []*tester.Chip, T float64) float64 {
	if len(chips) == 0 {
		return 0
	}
	pass := 0
	for _, ch := range chips {
		if x, ok := skew.FeasibleDiscrete(T, ch.Arcs(), c.Buf); ok {
			// FeasibleDiscrete guarantees constraint satisfaction; double
			// check against the chip oracle for defense in depth.
			if ch.PassesAt(T, x) && ch.HoldOK(x) {
				pass++
			}
		}
	}
	return float64(pass) / float64(len(chips))
}

// ProposedStats aggregates the per-chip outcomes of the EffiTest flow.
type ProposedStats struct {
	Yield          float64
	AvgIterations  float64
	AvgAlignTime   time.Duration
	AvgConfigTime  time.Duration
	ConfiguredFrac float64
}

// CurvePoint is one sample of a yield-versus-period curve.
type CurvePoint struct {
	T        float64
	NoBuffer float64
	Ideal    float64
}

// Curve sweeps the clock period from loT to hiT in steps and evaluates the
// no-buffer and ideal-tuning yields at each point — the shmoo-style view of
// what tuning buys across the frequency range.
func Curve(c *circuit.Circuit, chips []*tester.Chip, loT, hiT float64, steps int) []CurvePoint {
	if steps < 2 {
		steps = 2
	}
	out := make([]CurvePoint, steps)
	for i := 0; i < steps; i++ {
		T := loT + (hiT-loT)*float64(i)/float64(steps-1)
		out[i] = CurvePoint{
			T:        T,
			NoBuffer: NoBuffer(chips, T),
			Ideal:    Ideal(c, chips, T),
		}
	}
	return out
}

// Proposed runs the full EffiTest flow (aligned test, prediction,
// configuration, final pass/fail) on every chip and aggregates yield and
// tester cost.
func Proposed(plan *core.Plan, chips []*tester.Chip, T float64) (ProposedStats, error) {
	var st ProposedStats
	if len(chips) == 0 {
		return st, nil
	}
	var iters, passed, configured int
	var alignDur, cfgDur time.Duration
	for _, ch := range chips {
		out, err := plan.RunChip(ch, T)
		if err != nil {
			return st, err
		}
		iters += out.Iterations
		alignDur += out.AlignDuration
		cfgDur += out.ConfigDuration
		if out.Configured {
			configured++
		}
		if out.Passed {
			passed++
		}
	}
	n := float64(len(chips))
	st.Yield = float64(passed) / n
	st.AvgIterations = float64(iters) / n
	st.AvgAlignTime = time.Duration(float64(alignDur) / n)
	st.AvgConfigTime = time.Duration(float64(cfgDur) / n)
	st.ConfiguredFrac = float64(configured) / n
	return st, nil
}
