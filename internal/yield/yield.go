// Package yield evaluates manufacturing yield under the three regimes the
// paper compares: no tuning buffers, buffers configured from a perfect
// delay measurement (yi), and buffers configured by the EffiTest flow (yt).
// The Monte-Carlo loops fan out across the engine's worker pool; every
// aggregate is reduced in chip order, so results are identical at any
// worker count.
package yield

import (
	"context"
	"time"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/pool"
	"effitest/internal/skew"
	"effitest/internal/stats"
	"effitest/internal/tester"
)

// PeriodQuantile returns the q-quantile of the no-tuning critical delay
// (max realized path delay) over n Monte-Carlo chips. The paper's T1 and T2
// are the 0.5 and 0.8413 quantiles ("the original yields without buffers
// were 50% and 84.13%").
func PeriodQuantile(c *circuit.Circuit, seed int64, n int, q float64) float64 {
	v, _ := PeriodQuantileCtx(context.Background(), c, seed, n, q, 0)
	return v
}

// PeriodQuantileCtx is PeriodQuantile with cancellation and an explicit
// worker count (0 = all CPUs). Chip i is deterministic in (seed, i), so the
// quantile does not depend on the worker count.
func PeriodQuantileCtx(ctx context.Context, c *circuit.Circuit, seed int64, n int, q float64, workers int) (float64, error) {
	xs := make([]float64, n)
	err := pool.ForEach(ctx, n, workers, func(i int) error {
		xs[i] = tester.SampleChip(c, seed, i).CriticalDelay()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Quantile(xs, q), nil
}

// NoBuffer returns the fraction of chips meeting period T with all buffers
// at zero.
func NoBuffer(chips []*tester.Chip, T float64) float64 {
	if len(chips) == 0 {
		return 0
	}
	pass := 0
	for _, ch := range chips {
		zeros := make([]float64, ch.Circuit.NumFF)
		if ch.PassesAt(T, zeros) && ch.HoldOK(zeros) {
			pass++
		}
	}
	return float64(pass) / float64(len(chips))
}

// Ideal returns the yield with perfect delay measurement: a chip counts when
// a discrete buffer assignment exists for its exact realized delays (setup
// at T, true hold bounds, buffer ranges and lattice).
func Ideal(c *circuit.Circuit, chips []*tester.Chip, T float64) float64 {
	v, _ := IdealCtx(context.Background(), c, chips, T, 0)
	return v
}

// IdealCtx is Ideal with cancellation and an explicit worker count. The
// per-chip feasibility checks are independent, so the yield is identical at
// any worker count.
func IdealCtx(ctx context.Context, c *circuit.Circuit, chips []*tester.Chip, T float64, workers int) (float64, error) {
	if len(chips) == 0 {
		return 0, nil
	}
	ok := make([]bool, len(chips))
	err := pool.ForEach(ctx, len(chips), workers, func(i int) error {
		ch := chips[i]
		if x, feasible := skew.FeasibleDiscrete(T, ch.Arcs(), c.Buf); feasible {
			// FeasibleDiscrete guarantees constraint satisfaction; double
			// check against the chip oracle for defense in depth.
			ok[i] = ch.PassesAt(T, x) && ch.HoldOK(x)
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	pass := 0
	for _, v := range ok {
		if v {
			pass++
		}
	}
	return float64(pass) / float64(len(chips)), nil
}

// ProposedStats aggregates the per-chip outcomes of the EffiTest flow.
type ProposedStats struct {
	Yield          float64
	AvgIterations  float64
	AvgScanBits    float64
	AvgAlignTime   time.Duration
	AvgConfigTime  time.Duration
	ConfiguredFrac float64
}

// CurvePoint is one sample of a yield-versus-period curve.
type CurvePoint struct {
	T        float64
	NoBuffer float64
	Ideal    float64
}

// Curve sweeps the clock period from loT to hiT in steps and evaluates the
// no-buffer and ideal-tuning yields at each point — the shmoo-style view of
// what tuning buys across the frequency range. Steps are evaluated in
// parallel on every CPU.
func Curve(c *circuit.Circuit, chips []*tester.Chip, loT, hiT float64, steps int) []CurvePoint {
	out, _ := CurveCtx(context.Background(), c, chips, loT, hiT, steps, 0)
	return out
}

// CurveCtx is Curve with cancellation and an explicit worker count.
func CurveCtx(ctx context.Context, c *circuit.Circuit, chips []*tester.Chip, loT, hiT float64, steps, workers int) ([]CurvePoint, error) {
	if steps < 2 {
		steps = 2
	}
	out := make([]CurvePoint, steps)
	err := pool.ForEach(ctx, steps, workers, func(i int) error {
		T := loT + (hiT-loT)*float64(i)/float64(steps-1)
		ideal, err := IdealCtx(ctx, c, chips, T, 1)
		if err != nil {
			return err
		}
		out[i] = CurvePoint{T: T, NoBuffer: NoBuffer(chips, T), Ideal: ideal}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Proposed runs the full EffiTest flow (aligned test, prediction,
// configuration, final pass/fail) on every chip and aggregates yield and
// tester cost. Chips run on the plan's configured worker pool
// (Config.Workers).
func Proposed(plan *core.Plan, chips []*tester.Chip, T float64) (ProposedStats, error) {
	return ProposedCtx(context.Background(), plan, chips, T)
}

// ProposedCtx is Proposed with cancellation. Chips fan out across the
// plan's worker pool; the per-chip ATE accounting (iterations, scan bits)
// is reduced from the ordered result stream, so the aggregate is bit-
// identical to a sequential run.
func ProposedCtx(ctx context.Context, plan *core.Plan, chips []*tester.Chip, T float64) (ProposedStats, error) {
	return ProposedOpts(ctx, plan, chips, T, core.RunOptions{})
}

// ProposedOpts is ProposedCtx with a pluggable measurement backend and
// event observer. The aggregation is a sequential fold through Agg, so a
// sharded fleet reducing through Agg.Merge lands on the identical stats.
func ProposedOpts(ctx context.Context, plan *core.Plan, chips []*tester.Chip, T float64, opts core.RunOptions) (ProposedStats, error) {
	if len(chips) == 0 {
		return ProposedStats{}, nil
	}
	outs, err := plan.RunChipsAllOpts(ctx, chips, T, plan.Cfg.Workers, opts)
	if err != nil {
		return ProposedStats{}, err
	}
	var agg Agg
	for _, out := range outs {
		agg.Observe(out)
	}
	return agg.Stats(), nil
}
