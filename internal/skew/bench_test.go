package skew

import (
	"testing"

	"effitest/internal/rng"
)

// benchInstance builds a ring-plus-chords timing graph with buffers on a
// third of the FFs.
func benchInstance(n int) ([]Timing, Buffers) {
	r := rng.New(3, "skewbench")
	var arcs []Timing
	for i := 0; i < n; i++ {
		arcs = append(arcs, Timing{From: i, To: (i + 1) % n, Setup: 2 + 4*r.Float64(), Hold: -1})
		if r.Float64() < 0.5 {
			k := r.Intn(n)
			if k != i {
				arcs = append(arcs, Timing{From: i, To: k, Setup: 2 + 4*r.Float64(), Hold: -1})
			}
		}
	}
	var buffered []int
	for i := 0; i < n; i += 3 {
		buffered = append(buffered, i)
	}
	return arcs, Uniform(n, buffered, -1, 1, 20)
}

func BenchmarkFeasibleDiscrete100(b *testing.B) {
	arcs, bufs := benchInstance(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeasibleDiscrete(7, arcs, bufs)
	}
}

func BenchmarkMinPeriodBoxed100(b *testing.B) {
	arcs, bufs := benchInstance(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPeriodBoxed(arcs, bufs, 0, 20, 1e-4)
	}
}
