// Package skew implements clock-skew scheduling for circuits with
// post-silicon tunable buffers: minimum-period computation (Karp's cycle
// mean + bisection cross-check) and feasibility/assignment of buffer values
// under setup, hold, range and discreteness constraints.
//
// This is the machinery behind the paper's Figure 2 ("post-silicon clock
// tuning reduces the minimum clock period from 8 to 5.5") and behind both
// the ideal-yield evaluation and the scalable buffer-configuration solver
// (the specialized equivalent of Eqs. 15–18).
package skew

import (
	"math"

	"effitest/internal/graph"
)

// Timing describes one sequential timing arc between flip-flops: the
// combinational stage from FF From to FF To. Setup slack at period T
// requires  x_From - x_To <= T - Setup; hold requires x_From - x_To >= Hold
// (Setup = d̄ij + s_j and Hold = h_j - d_ij in the paper's notation; both are
// pre-folded by the caller).
type Timing struct {
	From, To    int
	Setup, Hold float64
}

// Buffers describes the tunable-buffer configuration space for a circuit
// with n flip-flops. Buffered[i] reports whether FF i carries a tuning
// buffer; unbuffered FFs are fixed at x=0 (the reference clock). Lo and Hi
// give the configurable range of each buffered FF; Steps > 0 restricts x to
// the lattice Lo + k*(Hi-Lo)/Steps, k = 0..Steps.
type Buffers struct {
	N        int
	Buffered []bool
	Lo, Hi   []float64
	Steps    int
}

// Uniform builds a Buffers value where each FF in buffered carries a buffer
// with range [lo, hi] and the given step count.
func Uniform(n int, buffered []int, lo, hi float64, steps int) Buffers {
	b := Buffers{
		N:        n,
		Buffered: make([]bool, n),
		Lo:       make([]float64, n),
		Hi:       make([]float64, n),
		Steps:    steps,
	}
	for _, i := range buffered {
		b.Buffered[i] = true
		b.Lo[i] = lo
		b.Hi[i] = hi
	}
	return b
}

// StepSize returns the lattice step of buffer i (0 when continuous).
func (b *Buffers) StepSize(i int) float64 {
	if b.Steps <= 0 {
		return 0
	}
	return (b.Hi[i] - b.Lo[i]) / float64(b.Steps)
}

// Quantize snaps value x to buffer i's lattice, rounding toward the nearest
// step and clamping to the range.
func (b *Buffers) Quantize(i int, x float64) float64 {
	if x < b.Lo[i] {
		x = b.Lo[i]
	}
	if x > b.Hi[i] {
		x = b.Hi[i]
	}
	s := b.StepSize(i)
	if s == 0 {
		return x
	}
	k := math.Round((x - b.Lo[i]) / s)
	if k < 0 {
		k = 0
	}
	if k > float64(b.Steps) {
		k = float64(b.Steps)
	}
	return b.Lo[i] + k*s
}

// MinPeriodUnconstrained returns the minimum clock period achievable with
// unlimited skew: the maximum cycle mean of the setup delays. ok=false means
// the timing graph is acyclic (any period bounded below by 0 works for the
// relative constraints).
func MinPeriodUnconstrained(n int, arcs []Timing) (float64, bool) {
	g := graph.NewDigraph(n)
	for _, a := range arcs {
		g.AddEdge(a.From, a.To, a.Setup)
	}
	return g.MaxMeanCycle()
}

// Feasible reports whether buffer values exist meeting setup (at period T)
// and hold constraints within the buffer ranges; when found it returns a
// concrete assignment (continuous; quantization is the caller's job — use
// FeasibleDiscrete for exact lattice feasibility). The assignment has x=0 at
// every unbuffered FF.
func Feasible(T float64, arcs []Timing, b Buffers) ([]float64, bool) {
	// Node mapping: all unbuffered FFs collapse into reference node 0;
	// buffered FF i becomes node id[i] >= 1.
	id := make([]int, b.N)
	next := 1
	for i := 0; i < b.N; i++ {
		if b.Buffered[i] {
			id[i] = next
			next++
		}
	}
	cons := make([]graph.DiffConstraint, 0, 2*len(arcs)+2*next)
	node := func(i int) int {
		if b.Buffered[i] {
			return id[i]
		}
		return 0
	}
	for _, a := range arcs {
		u, v := node(a.From), node(a.To)
		// Setup: x_u - x_v <= T - Setup.
		cons = append(cons, graph.DiffConstraint{A: u, B: v, C: T - a.Setup})
		// Hold: x_u - x_v >= Hold  <=>  x_v - x_u <= -Hold.
		cons = append(cons, graph.DiffConstraint{A: v, B: u, C: -a.Hold})
	}
	for i := 0; i < b.N; i++ {
		if !b.Buffered[i] {
			continue
		}
		cons = append(cons,
			graph.DiffConstraint{A: id[i], B: 0, C: b.Hi[i]},  // x_i <= hi
			graph.DiffConstraint{A: 0, B: id[i], C: -b.Lo[i]}, // x_i >= lo
		)
	}
	sol, ok := graph.SolveDifference(next, cons, 0)
	if !ok {
		return nil, false
	}
	x := make([]float64, b.N)
	for i := 0; i < b.N; i++ {
		if b.Buffered[i] {
			x[i] = sol[id[i]]
		}
	}
	return x, true
}

// FeasibleDiscrete is Feasible restricted to the buffer lattices. It is
// exact: constraints are rounded onto the integer step lattice and solved as
// an integral difference-constraint system, so a reported assignment always
// satisfies the original constraints and infeasible means no lattice point
// works.
//
// All buffers must share the same step size (as in the paper: all ranges are
// T/8 wide with 20 steps); FFs without buffers are fixed at 0.
func FeasibleDiscrete(T float64, arcs []Timing, b Buffers) ([]float64, bool) {
	if b.Steps <= 0 {
		return Feasible(T, arcs, b)
	}
	step := 0.0
	for i := 0; i < b.N; i++ {
		if b.Buffered[i] {
			s := b.StepSize(i)
			if step == 0 {
				step = s
			} else if math.Abs(step-s) > 1e-12 {
				// Mixed steps: fall back to a common fine lattice.
				step = math.Min(step, s)
			}
		}
	}
	if step == 0 {
		// No buffers at all: feasible iff all constraints hold at x = 0.
		for _, a := range arcs {
			if 0 > T-a.Setup+1e-12 || 0 < a.Hold-1e-12 {
				return nil, false
			}
		}
		return make([]float64, b.N), true
	}

	id := make([]int, b.N)
	next := 1
	for i := 0; i < b.N; i++ {
		if b.Buffered[i] {
			id[i] = next
			next++
		}
	}
	node := func(i int) int {
		if b.Buffered[i] {
			return id[i]
		}
		return 0
	}
	// x_i = lo_i + step * n_i with n_i integer. A difference constraint
	// x_u - x_v <= c becomes n_u - n_v <= floor((c - lo_u + lo_v)/step).
	nodeLo := make([]float64, next)
	for f := 0; f < b.N; f++ {
		if b.Buffered[f] {
			nodeLo[id[f]] = b.Lo[f]
		}
	}
	var cons []graph.IntDiffConstraint
	add := func(a, bnode int, c float64) {
		bound := math.Floor((c-nodeLo[a]+nodeLo[bnode])/step + 1e-9)
		cons = append(cons, graph.IntDiffConstraint{A: a, B: bnode, C: int64(bound)})
	}
	for _, a := range arcs {
		u, v := node(a.From), node(a.To)
		add(u, v, T-a.Setup)
		add(v, u, -a.Hold)
	}
	maxSteps := int64(b.Steps)
	for i := 0; i < b.N; i++ {
		if !b.Buffered[i] {
			continue
		}
		cons = append(cons,
			graph.IntDiffConstraint{A: id[i], B: 0, C: maxSteps}, // n_i <= Steps
			graph.IntDiffConstraint{A: 0, B: id[i], C: 0},        // n_i >= 0
		)
	}
	sol, ok := graph.SolveIntDifference(next, cons, 0)
	if !ok {
		return nil, false
	}
	x := make([]float64, b.N)
	for i := 0; i < b.N; i++ {
		if b.Buffered[i] {
			x[i] = b.Lo[i] + step*float64(sol[id[i]])
		}
	}
	return x, true
}

// MinPeriodBoxed returns the smallest period (within tol) for which a
// discrete-feasible buffer assignment exists, searching between loT and hiT
// by bisection. ok=false if even hiT is infeasible.
func MinPeriodBoxed(arcs []Timing, b Buffers, loT, hiT, tol float64) (float64, []float64, bool) {
	x, ok := FeasibleDiscrete(hiT, arcs, b)
	if !ok {
		return 0, nil, false
	}
	bestX := x
	for hiT-loT > tol {
		mid := (loT + hiT) / 2
		if xm, ok := FeasibleDiscrete(mid, arcs, b); ok {
			hiT = mid
			bestX = xm
		} else {
			loT = mid
		}
	}
	return hiT, bestX, true
}

// Verify checks an assignment against setup (period T) and hold constraints;
// it returns true when every arc meets both within tol.
func Verify(T float64, arcs []Timing, x []float64, tol float64) bool {
	for _, a := range arcs {
		d := x[a.From] - x[a.To]
		if d > T-a.Setup+tol {
			return false
		}
		if d < a.Hold-tol {
			return false
		}
	}
	return true
}
