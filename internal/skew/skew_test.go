package skew

import (
	"math"
	"testing"

	"effitest/internal/rng"
)

// figure2 returns the paper's Figure 2 circuit: four FFs in a loop with
// stage delays 3, 8, 5, 6 and setup/hold times of zero. With zero FF hold
// time the folded hold bound is h_j - d_min = -delay (the paper's d_ij).
func figure2() []Timing {
	return []Timing{
		{From: 0, To: 1, Setup: 3, Hold: -3},
		{From: 1, To: 2, Setup: 8, Hold: -8},
		{From: 2, To: 3, Setup: 5, Hold: -5},
		{From: 3, To: 0, Setup: 6, Hold: -6},
	}
}

func TestFigure2MinPeriodWithoutBuffers(t *testing.T) {
	// Without tuning, the minimum period is the largest stage delay: 8.
	arcs := figure2()
	b := Uniform(4, nil, 0, 0, 0) // no buffers
	if _, ok := FeasibleDiscrete(8, arcs, b); !ok {
		t.Fatal("period 8 must be feasible without buffers")
	}
	if _, ok := FeasibleDiscrete(7.99, arcs, b); ok {
		t.Fatal("period 7.99 must be infeasible without buffers")
	}
}

func TestFigure2MinPeriodWithBuffers(t *testing.T) {
	// With unbounded tuning the min period is the cycle mean 5.5 — the
	// paper's headline example.
	arcs := figure2()
	min, ok := MinPeriodUnconstrained(4, arcs)
	if !ok || math.Abs(min-5.5) > 1e-9 {
		t.Fatalf("min period = %v, want 5.5", min)
	}
	// Wide continuous buffers on all FFs: 5.5 feasible, 5.49 not.
	b := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 0)
	x, ok := Feasible(5.5, arcs, b)
	if !ok {
		t.Fatal("period 5.5 must be feasible with buffers")
	}
	if !Verify(5.5, arcs, x, 1e-9) {
		t.Fatalf("assignment %v fails verification", x)
	}
	if _, ok := Feasible(5.49, arcs, b); ok {
		t.Fatal("period 5.49 must be infeasible (below cycle mean)")
	}
}

func TestFigure2BufferValues(t *testing.T) {
	// At T=5.5 the constraint cycle is tight: x2-x1 must be exactly -2.5
	// relative (the paper shifts F2's launching edge 2.5 early).
	arcs := figure2()
	b := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 0)
	x, ok := Feasible(5.5, arcs, b)
	if !ok {
		t.Fatal("infeasible")
	}
	if d := x[1] - x[0]; math.Abs(d-(-2.5)) > 1e-9 {
		t.Fatalf("x2 - x1 = %v, want -2.5", d)
	}
	if d := x[2] - x[1]; math.Abs(d-2.5) > 1e-9 {
		t.Fatalf("x3 - x2 = %v, want +2.5", d)
	}
}

func TestMinPeriodBoxed(t *testing.T) {
	arcs := figure2()
	b := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 0)
	T, x, ok := MinPeriodBoxed(arcs, b, 0, 10, 1e-6)
	if !ok {
		t.Fatal("boxed search failed")
	}
	if math.Abs(T-5.5) > 1e-4 {
		t.Fatalf("boxed min period = %v, want 5.5", T)
	}
	if !Verify(T+1e-6, arcs, x, 1e-6) {
		t.Fatal("returned assignment infeasible")
	}
}

func TestBufferRangeLimitsPeriod(t *testing.T) {
	// With buffers capped at ±1 the cycle mean 5.5 is out of reach: the
	// binding stage needs x1-x2 = -2.5. Min period becomes 8 - 2 = 6
	// (shift F2 early by 1 and F3 late by 1... check feasibility at 6).
	arcs := figure2()
	b := Uniform(4, []int{0, 1, 2, 3}, -1, 1, 0)
	if _, ok := Feasible(6, arcs, b); !ok {
		t.Fatal("period 6 should be feasible with ±1 buffers")
	}
	if _, ok := Feasible(5.9, arcs, b); ok {
		t.Fatal("period 5.9 should be infeasible with ±1 buffers")
	}
}

func TestDiscreteFeasibilityExactness(t *testing.T) {
	// Lattice with step 0.5: continuous feasibility at T=5.5 requires
	// x2-x1 = -2.5 exactly, which IS on the lattice, so discrete must agree.
	arcs := figure2()
	b := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 16) // step (4-(-4))/16 = 0.5
	x, ok := FeasibleDiscrete(5.5, arcs, b)
	if !ok {
		t.Fatal("discrete 5.5 should be feasible (constraints on lattice)")
	}
	if !Verify(5.5, arcs, x, 1e-9) {
		t.Fatalf("discrete assignment %v infeasible", x)
	}
	for i, v := range x {
		q := b.Quantize(i, v)
		if math.Abs(q-v) > 1e-9 {
			t.Fatalf("x[%d] = %v not on lattice", i, v)
		}
	}
}

func TestDiscreteStricterThanContinuous(t *testing.T) {
	// Coarse lattice (step 2 on [-4,4]): at T=5.5 the required -2.5 shift is
	// not representable, so discrete must fail while continuous succeeds.
	arcs := figure2()
	cont := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 0)
	disc := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 4)
	if _, ok := Feasible(5.5, arcs, cont); !ok {
		t.Fatal("continuous should be feasible")
	}
	if _, ok := FeasibleDiscrete(5.5, arcs, disc); ok {
		t.Fatal("step-2 lattice cannot hit -2.5 shift; must be infeasible")
	}
	// At T=6 the lattice point -2 works.
	if x, ok := FeasibleDiscrete(6, arcs, disc); !ok || !Verify(6, arcs, x, 1e-9) {
		t.Fatal("T=6 should be discretely feasible")
	}
}

func TestHoldConstraints(t *testing.T) {
	// Two FFs, setup gives x0-x1 <= T-5; hold requires x0-x1 >= 2.
	arcs := []Timing{{From: 0, To: 1, Setup: 5, Hold: 2}}
	b := Uniform(2, []int{0, 1}, -3, 3, 0)
	// T = 7: x0-x1 in [2, 2] — single point, feasible.
	x, ok := Feasible(7, arcs, b)
	if !ok {
		t.Fatal("T=7 should be feasible")
	}
	if d := x[0] - x[1]; d < 2-1e-9 || d > 2+1e-9 {
		t.Fatalf("x0-x1 = %v, want 2", d)
	}
	// T = 6.9: setup forces <= 1.9 < hold 2 — infeasible.
	if _, ok := Feasible(6.9, arcs, b); ok {
		t.Fatal("T=6.9 should be infeasible due to hold")
	}
}

func TestUnbufferedFixedAtZero(t *testing.T) {
	// Only FF1 buffered. Setup on 0->1 at T=4 with delay 6 requires
	// x0 - x1 <= -2, i.e. x1 >= 2 (x0 fixed 0).
	arcs := []Timing{{From: 0, To: 1, Setup: 6, Hold: -10}}
	b := Uniform(2, []int{1}, -3, 3, 0)
	x, ok := Feasible(4, arcs, b)
	if !ok {
		t.Fatal("should be feasible")
	}
	if x[0] != 0 {
		t.Fatalf("unbuffered FF moved: %v", x[0])
	}
	if x[1] < 2-1e-9 {
		t.Fatalf("x1 = %v, want >= 2", x[1])
	}
}

func TestQuantize(t *testing.T) {
	b := Uniform(1, []int{0}, -1, 1, 20) // step 0.1
	cases := []struct{ in, want float64 }{
		{0.0, 0.0},
		{0.14, 0.1},
		{0.16, 0.2},
		{-2.0, -1.0},
		{2.0, 1.0},
		{0.999, 1.0},
	}
	for _, c := range cases {
		if got := b.Quantize(0, c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if s := b.StepSize(0); math.Abs(s-0.1) > 1e-12 {
		t.Errorf("StepSize = %v, want 0.1", s)
	}
}

func TestVerify(t *testing.T) {
	arcs := figure2()
	x := []float64{0, -2.5, 0, -0.5}
	if !Verify(5.5, arcs, x, 1e-9) {
		t.Fatal("known-good assignment rejected")
	}
	if Verify(5.4, arcs, x, 1e-9) {
		t.Fatal("should fail at tighter period")
	}
}

func TestRandomDiscreteAlwaysSatisfies(t *testing.T) {
	// Property: whenever FeasibleDiscrete says yes, the assignment verifies
	// and sits on the lattice.
	r := rng.New(5, "skewprop")
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(5)
		var arcs []Timing
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			arcs = append(arcs, Timing{From: i, To: j, Setup: 2 + 6*r.Float64(), Hold: -1})
			if r.Float64() < 0.4 {
				k := r.Intn(n)
				if k != i {
					arcs = append(arcs, Timing{From: i, To: k, Setup: 2 + 6*r.Float64(), Hold: -1})
				}
			}
		}
		buffered := []int{}
		for i := 0; i < n; i++ {
			if r.Float64() < 0.6 {
				buffered = append(buffered, i)
			}
		}
		b := Uniform(n, buffered, -1, 1, 20)
		T := 4 + 4*r.Float64()
		x, ok := FeasibleDiscrete(T, arcs, b)
		if !ok {
			continue
		}
		if !Verify(T, arcs, x, 1e-9) {
			t.Fatalf("trial %d: discrete assignment fails verification", trial)
		}
		for i, v := range x {
			if !b.Buffered[i] && v != 0 {
				t.Fatalf("trial %d: unbuffered FF %d moved", trial, i)
			}
			if b.Buffered[i] && math.Abs(b.Quantize(i, v)-v) > 1e-9 {
				t.Fatalf("trial %d: x[%d]=%v off lattice", trial, i, v)
			}
		}
	}
}

func TestDiscreteMatchesContinuousOnFineLattice(t *testing.T) {
	// With a very fine lattice, discrete feasibility should match continuous
	// on comfortably-feasible and comfortably-infeasible periods.
	arcs := figure2()
	fine := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 1600)
	cont := Uniform(4, []int{0, 1, 2, 3}, -4, 4, 0)
	for _, T := range []float64{5.51, 6, 7, 8, 5.3, 5.0} {
		_, okD := FeasibleDiscrete(T, arcs, fine)
		_, okC := Feasible(T, arcs, cont)
		if okD != okC {
			t.Fatalf("T=%v: discrete %v vs continuous %v", T, okD, okC)
		}
	}
}
