package stats

import (
	"math"
	"testing"

	"effitest/internal/la"
	"effitest/internal/rng"
)

func TestPCADiagonalCov(t *testing.T) {
	cov := la.NewMatrixFrom([][]float64{{9, 0}, {0, 4}})
	p, err := NewPCA(cov)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Vars[0]-9) > 1e-10 || math.Abs(p.Vars[1]-4) > 1e-10 {
		t.Fatalf("vars = %v", p.Vars)
	}
	if p.TotalVar() != 13 {
		t.Fatalf("total var = %v", p.TotalVar())
	}
}

func TestPCANumComponents(t *testing.T) {
	cov := la.NewMatrixFrom([][]float64{
		{10, 0, 0},
		{0, 1, 0},
		{0, 0, 0.1},
	})
	p, err := NewPCA(cov)
	if err != nil {
		t.Fatal(err)
	}
	if k := p.NumComponents(0.85); k != 1 {
		t.Errorf("k(0.85) = %d, want 1", k)
	}
	if k := p.NumComponents(0.95); k != 2 {
		t.Errorf("k(0.95) = %d, want 2", k)
	}
	if k := p.NumComponents(1.0); k != 3 {
		t.Errorf("k(1.0) = %d, want 3", k)
	}
}

func TestPCAOneStrongComponent(t *testing.T) {
	// Covariance of x_i = a_i * z + small noise: nearly rank-1.
	a := []float64{1, 2, 3}
	n := len(a)
	cov := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cov.Set(i, j, a[i]*a[j])
		}
		cov.Add(i, i, 1e-4)
	}
	p, err := NewPCA(cov)
	if err != nil {
		t.Fatal(err)
	}
	if k := p.NumComponents(0.95); k != 1 {
		t.Errorf("k = %d, want 1", k)
	}
	// The variable with the largest |a_i| should be the representative.
	reps := p.SelectRepresentatives(1)
	if len(reps) != 1 || reps[0] != 2 {
		t.Errorf("representatives = %v, want [2]", reps)
	}
}

func TestSelectRepresentativesDistinct(t *testing.T) {
	r := rng.New(4, "pcasel")
	n := 8
	b := la.NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	cov := b.Mul(b.T())
	p, err := NewPCA(cov)
	if err != nil {
		t.Fatal(err)
	}
	reps := p.SelectRepresentatives(5)
	if len(reps) != 5 {
		t.Fatalf("got %d reps", len(reps))
	}
	seen := map[int]bool{}
	for _, v := range reps {
		if seen[v] {
			t.Fatalf("duplicate representative %d", v)
		}
		seen[v] = true
	}
	// Asking for more components than variables caps at n.
	if got := p.SelectRepresentatives(100); len(got) != n {
		t.Fatalf("overask gave %d", len(got))
	}
}

func TestPCARejectsNonSquare(t *testing.T) {
	if _, err := NewPCA(la.NewMatrix(2, 3)); err == nil {
		t.Error("expected error")
	}
}

func TestPCACoefficientRecoversCovariance(t *testing.T) {
	// Σ_ij should equal Σ_c coef(i,c)*coef(j,c).
	r := rng.New(10, "pcacov")
	n := 5
	b := la.NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	cov := b.Mul(b.T())
	p, err := NewPCA(cov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for c := 0; c < n; c++ {
				s += p.Coefficient(i, c) * p.Coefficient(j, c)
			}
			if math.Abs(s-cov.At(i, j)) > 1e-7 {
				t.Fatalf("Σ[%d][%d]: pca gives %v, want %v", i, j, s, cov.At(i, j))
			}
		}
	}
}
