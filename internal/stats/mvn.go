package stats

import (
	"errors"
	"fmt"
	"math/rand"

	"effitest/internal/la"
)

// MVN is a multivariate normal distribution N(Mu, Sigma).
type MVN struct {
	Mu    []float64
	Sigma *la.Matrix

	chol  *la.Matrix // lazily computed Cholesky factor (possibly ridged)
	ridge float64
}

// NewMVN constructs a multivariate normal. Sigma must be square and match
// len(mu); it is not factorized until needed.
func NewMVN(mu []float64, sigma *la.Matrix) (*MVN, error) {
	if sigma.Rows != sigma.Cols {
		return nil, errors.New("stats: covariance must be square")
	}
	if len(mu) != sigma.Rows {
		return nil, fmt.Errorf("stats: mean length %d != covariance order %d", len(mu), sigma.Rows)
	}
	return &MVN{Mu: mu, Sigma: sigma}, nil
}

// Dim returns the dimensionality.
func (m *MVN) Dim() int { return len(m.Mu) }

func (m *MVN) factor() error {
	if m.chol != nil {
		return nil
	}
	l, ridge, err := la.CholeskyRidge(m.Sigma, 1e-10, 12)
	if err != nil {
		return fmt.Errorf("stats: covariance not factorizable: %w", err)
	}
	m.chol, m.ridge = l, ridge
	return nil
}

// Sample draws one sample using the provided random stream.
func (m *MVN) Sample(r *rand.Rand) ([]float64, error) {
	if err := m.factor(); err != nil {
		return nil, err
	}
	n := m.Dim()
	z := make([]float64, n)
	for i := range z {
		z[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := m.Mu[i]
		for k := 0; k <= i; k++ {
			s += m.chol.At(i, k) * z[k]
		}
		x[i] = s
	}
	return x, nil
}

// SampleN draws n samples as rows of a matrix.
func (m *MVN) SampleN(r *rand.Rand, n int) (*la.Matrix, error) {
	out := la.NewMatrix(n, m.Dim())
	for i := 0; i < n; i++ {
		x, err := m.Sample(r)
		if err != nil {
			return nil, err
		}
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], x)
	}
	return out, nil
}

// Conditional computes the conditional distribution of the variables at
// indices `unknown` given that the variables at indices `known` have been
// observed at the given values. This is the paper's Eqs. (4)–(5):
//
//	μ'  = μ_u + Σ_ut Σ_t⁻¹ (observed − μ_t)
//	Σ'  = Σ_u − Σ_ut Σ_t⁻¹ Σ_tu
//
// The returned MVN has dimension len(unknown). Indices must be disjoint.
//
// Conditional is a thin wrapper over Predictor: it builds the prefactored
// kernel, applies it to one observation vector, and discards it. Callers
// that condition the same (unknown, known) split on many observation
// vectors should hold a CondPredictor instead — the factorization and the
// conditional covariance then happen once.
func (m *MVN) Conditional(unknown, known []int, observed []float64) (*MVN, error) {
	if len(known) != len(observed) {
		return nil, errors.New("stats: observed values length mismatch")
	}
	if len(known) == 0 {
		sub := m.Sigma.Submatrix(unknown, unknown)
		mu := make([]float64, len(unknown))
		for i, u := range unknown {
			mu[i] = m.Mu[u]
		}
		return NewMVN(mu, sub)
	}
	p, err := m.Predictor(unknown, known)
	if err != nil {
		return nil, err
	}
	mu := make([]float64, len(unknown))
	var ws la.Workspace
	p.MuTo(mu, observed, &ws)
	return NewMVN(mu, p.SigmaPrime)
}

// CondPredictor is the prefactored conditional-estimation kernel behind
// Conditional: for one fixed (unknown, known) index split it holds the
// ridged Cholesky factor of Σ_t, the cross-covariance Σ_ut, the prior means
// and the (observation-independent) conditional covariance Σ′ of Eq. (5).
// Applying it to an observation vector (MuTo, Eq. 4) reduces to two
// triangular solves and one matrix-vector product — no factorization and,
// given a warm Workspace, no allocation. A CondPredictor is immutable after
// construction and safe for concurrent use with per-caller workspaces.
type CondPredictor struct {
	// MuT / MuU are the prior means of the known / unknown variables, in
	// split order.
	MuT, MuU []float64
	// LT is the (possibly ridged) Cholesky factor of Σ_t.
	LT *la.Matrix
	// SigUT is the cross-covariance Σ_ut (rows: unknown, cols: known).
	SigUT *la.Matrix
	// SigmaPrime is the conditional covariance Σ′ (Eq. 5) — diagonal-clamped
	// and symmetrized exactly as Conditional returns it.
	SigmaPrime *la.Matrix
}

// Predictor prefactorizes the conditional distribution of the variables at
// `unknown` given observations of the variables at `known`. The index sets
// must be disjoint and known must be non-empty. The floating-point results
// are bit-identical to what Conditional computes from the same split.
func (m *MVN) Predictor(unknown, known []int) (*CondPredictor, error) {
	if len(known) == 0 {
		return nil, errors.New("stats: predictor requires at least one known index")
	}
	seen := map[int]bool{}
	for _, k := range known {
		seen[k] = true
	}
	for _, u := range unknown {
		if seen[u] {
			return nil, fmt.Errorf("stats: index %d is both known and unknown", u)
		}
	}

	sigT := m.Sigma.Submatrix(known, known)    // Σ_t
	sigUT := m.Sigma.Submatrix(unknown, known) // Σ_ut
	sigU := m.Sigma.Submatrix(unknown, unknown)

	lt, _, err := la.CholeskyRidge(sigT, 1e-10, 12)
	if err != nil {
		return nil, fmt.Errorf("stats: conditional: Σ_t not factorizable: %w", err)
	}

	muT := make([]float64, len(known))
	for i, k := range known {
		muT[i] = m.Mu[k]
	}
	muU := make([]float64, len(unknown))
	for i, u := range unknown {
		muU[i] = m.Mu[u]
	}

	// Σ' = Σ_u − Σ_ut Σ_t⁻¹ Σ_tu. Solve per column of Σ_tu = Σ_utᵀ.
	nt, nu := len(known), len(unknown)
	corr := la.NewMatrix(nu, nu)
	col := make([]float64, nt)
	for j := 0; j < nu; j++ {
		for i := 0; i < nt; i++ {
			col[i] = sigUT.At(j, i)
		}
		x := la.CholSolve(lt, col)
		for i := 0; i < nu; i++ {
			corr.Set(i, j, la.Dot(sigUT.Row(i), x))
		}
	}
	sigPrime := sigU.SubM(corr)
	// Clamp tiny negative diagonals introduced by round-off: conditional
	// variances are mathematically non-negative.
	for i := 0; i < nu; i++ {
		if sigPrime.At(i, i) < 0 {
			sigPrime.Set(i, i, 0)
		}
	}
	// Symmetrize.
	for i := 0; i < nu; i++ {
		for j := i + 1; j < nu; j++ {
			v := 0.5 * (sigPrime.At(i, j) + sigPrime.At(j, i))
			sigPrime.Set(i, j, v)
			sigPrime.Set(j, i, v)
		}
	}
	return &CondPredictor{MuT: muT, MuU: muU, LT: lt, SigUT: sigUT, SigmaPrime: sigPrime}, nil
}

// NumKnown returns the number of observed variables the predictor expects.
func (p *CondPredictor) NumKnown() int { return len(p.MuT) }

// NumUnknown returns the number of predicted variables.
func (p *CondPredictor) NumUnknown() int { return len(p.MuU) }

// ScratchLen returns the workspace floats one MuTo call takes.
func (p *CondPredictor) ScratchLen() int { return len(p.MuT) }

// ScratchLenBatch returns the workspace floats one MuBatchTo call over a
// k-column observation block takes.
func (p *CondPredictor) ScratchLenBatch(k int) int { return len(p.MuT) * k }

// MuTo computes the conditional mean μ' (Eq. 4) for one observation vector
// into dst (length NumUnknown), taking ScratchLen floats from ws. With a
// warm workspace the call performs no heap allocation. The result is
// bit-identical to the Mu of the MVN Conditional returns for the same
// observations.
func (p *CondPredictor) MuTo(dst, observed []float64, ws *la.Workspace) {
	if len(observed) != len(p.MuT) {
		panic(fmt.Sprintf("stats: predictor observed length %d != %d known", len(observed), len(p.MuT)))
	}
	// delta = observed - μ_t ; w = Σ_t⁻¹ delta, solved in place.
	delta := ws.Take(len(observed))
	for i := range observed {
		delta[i] = observed[i] - p.MuT[i]
	}
	la.SolveCholeskyTo(delta, p.LT, delta)
	// μ' = μ_u + Σ_ut·w. Addition is commutative, so accumulating the
	// product first is bit-identical to μ_u + dot(row, w).
	la.MulVecTo(dst, p.SigUT, delta)
	for i := range dst {
		dst[i] += p.MuU[i]
	}
}

// MuBatchTo computes the conditional mean μ' (Eq. 4) for K observation
// vectors in one TRSM-shaped kernel call: observed is a NumKnown×K block
// whose column j is chip j's observation vector, dst a NumUnknown×K block
// receiving column j's conditional means. The Cholesky factor and the
// cross-covariance stream through the cache once for all K systems, which is
// what the batched multi-chip prediction path amortizes.
//
// Column j of dst is bit-identical to MuTo on column j of observed: the
// multi-RHS kernels perform the same floating-point operations in the same
// order per column. The call takes ScratchLenBatch(K) floats from ws and,
// with a warm workspace, performs no heap allocation.
func (p *CondPredictor) MuBatchTo(dst, observed *la.Matrix, ws *la.Workspace) {
	nt, nu := len(p.MuT), len(p.MuU)
	if observed.Rows != nt {
		panic(fmt.Sprintf("stats: predictor observed block %dx%d != %d known rows", observed.Rows, observed.Cols, nt))
	}
	if dst.Rows != nu || dst.Cols != observed.Cols {
		panic(fmt.Sprintf("stats: predictor dst block %dx%d, want %dx%d", dst.Rows, dst.Cols, nu, observed.Cols))
	}
	// delta = observed - μ_t ; W = Σ_t⁻¹ delta, solved in place per column.
	delta := ws.TakeMatrix(nt, observed.Cols)
	for i := 0; i < nt; i++ {
		mu := p.MuT[i]
		src := observed.RowView(i)
		row := delta.RowView(i)
		for j, v := range src {
			row[j] = v - mu
		}
	}
	la.SolveCholeskyMultiTo(&delta, p.LT, &delta)
	// μ' = μ_u + Σ_ut·W, accumulated product first exactly like MuTo.
	la.MulMatTo(dst, p.SigUT, &delta)
	for i := 0; i < nu; i++ {
		mu := p.MuU[i]
		row := dst.RowView(i)
		for j := range row {
			row[j] += mu
		}
	}
}
