package stats

import (
	"math/rand"
	"testing"

	"effitest/internal/la"
)

// TestMuBatchMatchesMuTo pins the K-column batched conditional mean bitwise
// against the vector kernel, column by column, across the batch widths the
// prediction pipeline uses (including the degenerate K=1).
func TestMuBatchMatchesMuTo(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 2, 7, 64} {
		for trial := 0; trial < 5; trial++ {
			n := 2 + r.Intn(12)
			m := randomMVN(t, r, n)
			perm := r.Perm(n)
			nt := 1 + r.Intn(n-1)
			known, unknown := perm[:nt], perm[nt:]

			p, err := m.Predictor(unknown, known)
			if err != nil {
				t.Fatal(err)
			}
			obs := la.NewMatrix(nt, k)
			for i := range obs.Data {
				obs.Data[i] = m.Mu[known[i%nt]] + r.NormFloat64()
			}

			var bw la.Workspace
			bw.Require(p.ScratchLenBatch(k))
			got := la.NewMatrix(len(unknown), k)
			p.MuBatchTo(got, obs, &bw)

			var ws la.Workspace
			want := make([]float64, len(unknown))
			col := make([]float64, nt)
			for j := 0; j < k; j++ {
				for i := range col {
					col[i] = obs.At(i, j)
				}
				ws.Reset()
				p.MuTo(want, col, &ws)
				for i := range want {
					if got.At(i, j) != want[i] {
						t.Fatalf("k=%d trial=%d: column %d row %d: batch %v != vector %v",
							k, trial, j, i, got.At(i, j), want[i])
					}
				}
			}
		}
	}
}

// TestMuBatchZeroAlloc asserts the batched kernel performs no heap
// allocation once the workspace is warm.
func TestMuBatchZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	m := randomMVN(t, r, 10)
	p, err := m.Predictor([]int{0, 2, 4}, []int{1, 3, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	obs := la.NewMatrix(p.NumKnown(), k)
	for i := range obs.Data {
		obs.Data[i] = r.NormFloat64()
	}
	dst := la.NewMatrix(p.NumUnknown(), k)
	var ws la.Workspace
	ws.Require(p.ScratchLenBatch(k))
	ws.Reset()
	p.MuBatchTo(dst, obs, &ws) // warm-up
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		p.MuBatchTo(dst, obs, &ws)
	})
	if allocs != 0 {
		t.Fatalf("MuBatchTo allocated %.1f times per run after warm-up", allocs)
	}
}

// TestMuBatchShapePanics pins the shape contract of the batched kernel.
func TestMuBatchShapePanics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	m := randomMVN(t, r, 6)
	p, err := m.Predictor([]int{0, 1}, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	var ws la.Workspace
	for name, fn := range map[string]func(){
		"observed-rows": func() { p.MuBatchTo(la.NewMatrix(2, 3), la.NewMatrix(2, 3), &ws) },
		"dst-rows":      func() { p.MuBatchTo(la.NewMatrix(3, 3), la.NewMatrix(3, 3), &ws) },
		"dst-cols":      func() { p.MuBatchTo(la.NewMatrix(2, 2), la.NewMatrix(3, 3), &ws) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}
