package stats

import (
	"errors"
	"math"

	"effitest/internal/la"
)

// PCA is the principal component decomposition of a covariance matrix:
// Sigma = V diag(Vars) Vᵀ with eigenvalues (component variances) sorted in
// descending order.
type PCA struct {
	Vars     []float64  // eigenvalues (variance captured per component)
	Loadings *la.Matrix // columns are unit-norm principal directions
}

// NewPCA eigendecomposes a covariance matrix. Tiny negative eigenvalues from
// round-off are clamped to zero.
func NewPCA(cov *la.Matrix) (*PCA, error) {
	if cov.Rows != cov.Cols {
		return nil, errors.New("stats: PCA requires a square covariance matrix")
	}
	vals, vecs, err := la.EigenSym(cov, 0)
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &PCA{Vars: vals, Loadings: vecs}, nil
}

// TotalVar returns the sum of component variances (trace of the covariance).
func (p *PCA) TotalVar() float64 {
	s := 0.0
	for _, v := range p.Vars {
		s += v
	}
	return s
}

// NumComponents returns the smallest number of leading components whose
// cumulative variance reaches fraction `explained` of the total (e.g. 0.95).
// It returns at least 1 for a non-degenerate covariance and never more than
// the matrix order.
func (p *PCA) NumComponents(explained float64) int {
	total := p.TotalVar()
	if total <= 0 {
		return 0
	}
	cum := 0.0
	for i, v := range p.Vars {
		cum += v
		if cum >= explained*total-1e-15 {
			return i + 1
		}
	}
	return len(p.Vars)
}

// Coefficient returns the loading of variable `varIdx` on component `comp`,
// scaled by the component's standard deviation. This is the coefficient of
// the unit-variance principal component in the variable's expansion
// x_i = Σ_c (V_ic √λ_c) z_c, the quantity Procedure 1 ranks when selecting
// which paths to measure.
func (p *PCA) Coefficient(varIdx, comp int) float64 {
	return p.Loadings.At(varIdx, comp) * math.Sqrt(p.Vars[comp])
}

// SelectRepresentatives implements the paper's path-selection rule (§3.1):
// for each of the first k principal components, pick — among the not yet
// selected variables — the one with the largest absolute coefficient for
// that component. Returns the selected variable indices in pick order.
func (p *PCA) SelectRepresentatives(k int) []int {
	n := p.Loadings.Rows
	if k > n {
		k = n
	}
	selected := make([]int, 0, k)
	used := make([]bool, n)
	for c := 0; c < k; c++ {
		best, bestVal := -1, -1.0
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if a := math.Abs(p.Coefficient(v, c)); a > bestVal {
				best, bestVal = v, a
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		selected = append(selected, best)
	}
	return selected
}
