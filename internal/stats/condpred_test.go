package stats

import (
	"math/rand"
	"testing"

	"effitest/internal/la"
)

func randomMVN(t *testing.T, r *rand.Rand, n int) *MVN {
	t.Helper()
	g := la.NewMatrix(n, n)
	for i := range g.Data {
		g.Data[i] = r.NormFloat64()
	}
	sigma := g.Mul(g.T())
	for i := 0; i < n; i++ {
		sigma.Add(i, i, 0.5)
	}
	mu := make([]float64, n)
	for i := range mu {
		mu[i] = 10 * r.Float64()
	}
	m, err := NewMVN(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPredictorMatchesConditional pins the prefactored kernel bit-for-bit
// against the one-shot Conditional across random splits and observations —
// the contract the per-chip fast path in internal/core depends on.
func TestPredictorMatchesConditional(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(12)
		m := randomMVN(t, r, n)
		perm := r.Perm(n)
		nt := 1 + r.Intn(n-1)
		known, unknown := perm[:nt], perm[nt:]

		p, err := m.Predictor(unknown, known)
		if err != nil {
			t.Fatal(err)
		}
		var ws la.Workspace
		ws.Require(p.ScratchLen())
		mu := make([]float64, len(unknown))
		for rep := 0; rep < 3; rep++ {
			obs := make([]float64, nt)
			for i := range obs {
				obs[i] = m.Mu[known[i]] + r.NormFloat64()
			}
			cond, err := m.Conditional(unknown, known, obs)
			if err != nil {
				t.Fatal(err)
			}
			ws.Reset()
			p.MuTo(mu, obs, &ws)
			for i := range mu {
				if mu[i] != cond.Mu[i] {
					t.Fatalf("trial %d: mu[%d] = %v, conditional %v", trial, i, mu[i], cond.Mu[i])
				}
			}
			if d := p.SigmaPrime.MaxAbsDiff(cond.Sigma); d != 0 {
				t.Fatalf("trial %d: Σ' differs by %v", trial, d)
			}
		}
	}
}

// TestPredictorMuToZeroAlloc asserts the per-observation application is
// allocation-free once the workspace is warm.
func TestPredictorMuToZeroAlloc(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := randomMVN(t, r, 10)
	p, err := m.Predictor([]int{0, 2, 4, 6}, []int{1, 3, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, p.NumKnown())
	for i := range obs {
		obs[i] = m.Mu[2*i+1] + 0.1*float64(i)
	}
	dst := make([]float64, p.NumUnknown())
	var ws la.Workspace
	ws.Require(p.ScratchLen())
	ws.Reset()
	p.MuTo(dst, obs, &ws) // warm-up
	allocs := testing.AllocsPerRun(100, func() {
		ws.Reset()
		p.MuTo(dst, obs, &ws)
	})
	if allocs != 0 {
		t.Fatalf("MuTo allocated %.1f times per run", allocs)
	}
}

func TestPredictorErrors(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	m := randomMVN(t, r, 4)
	if _, err := m.Predictor([]int{0}, nil); err == nil {
		t.Fatal("expected error for empty known set")
	}
	if _, err := m.Predictor([]int{0, 1}, []int{1, 2}); err == nil {
		t.Fatal("expected error for overlapping index sets")
	}
}
