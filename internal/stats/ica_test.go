package stats

import (
	"math"
	"testing"

	"effitest/internal/la"
	"effitest/internal/rng"
)

// mixSources builds observations of linear mixtures of independent
// non-Gaussian sources.
func mixSources(n int, mixing [][]float64, seed int64) (*la.Matrix, *la.Matrix) {
	r := rng.New(seed, "ica-sources")
	k := len(mixing)
	v := len(mixing[0])
	src := la.NewMatrix(n, k)
	for i := 0; i < n; i++ {
		// Source 0: uniform (sub-Gaussian); source 1: Laplacian-ish
		// (super-Gaussian); further sources alternate.
		for j := 0; j < k; j++ {
			if j%2 == 0 {
				src.Set(i, j, r.Float64()*2-1)
			} else {
				// double-exponential via inverse CDF
				u := r.Float64() - 0.5
				src.Set(i, j, -math.Copysign(math.Log(1-2*math.Abs(u)), u)/math.Sqrt2)
			}
		}
	}
	obs := la.NewMatrix(n, v)
	for i := 0; i < n; i++ {
		for c := 0; c < v; c++ {
			s := 0.0
			for j := 0; j < k; j++ {
				s += src.At(i, j) * mixing[j][c]
			}
			obs.Set(i, c, s)
		}
	}
	return obs, src
}

func TestFastICASeparatesTwoSources(t *testing.T) {
	mixing := [][]float64{{1, 0.6}, {0.5, 1}}
	obs, src := mixSources(6000, mixing, 3)
	ica, err := FastICA(obs, FastICAOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := ica.Transform(obs)
	// Each recovered component must be highly correlated (up to sign and
	// permutation) with exactly one true source.
	for comp := 0; comp < 2; comp++ {
		recCol := rec.Col(comp)
		best := 0.0
		for s := 0; s < 2; s++ {
			c := math.Abs(Correlation(recCol, src.Col(s)))
			if c > best {
				best = c
			}
		}
		if best < 0.95 {
			t.Fatalf("component %d correlates at most %.3f with any source", comp, best)
		}
	}
	// And the two components must match different sources.
	c00 := math.Abs(Correlation(rec.Col(0), src.Col(0)))
	c01 := math.Abs(Correlation(rec.Col(0), src.Col(1)))
	c10 := math.Abs(Correlation(rec.Col(1), src.Col(0)))
	c11 := math.Abs(Correlation(rec.Col(1), src.Col(1)))
	sameAssignment := (c00 > c01) == (c10 > c11)
	if sameAssignment {
		t.Fatalf("both components matched the same source: %v %v %v %v", c00, c01, c10, c11)
	}
}

func TestFastICARecoversNonGaussianity(t *testing.T) {
	// Mixing makes the observed columns closer to Gaussian (CLT); unmixing
	// must push kurtosis back away from 0 for the super-Gaussian source.
	mixing := [][]float64{{1, 0.8}, {0.7, 1}}
	obs, _ := mixSources(8000, mixing, 5)
	ica, err := FastICA(obs, FastICAOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := ica.Transform(obs)
	// One source is uniform (kurtosis -1.2), one Laplacian (kurtosis +3).
	k0 := Kurtosis(rec.Col(0))
	k1 := Kurtosis(rec.Col(1))
	lo, hi := math.Min(k0, k1), math.Max(k0, k1)
	if lo > -0.6 {
		t.Fatalf("no sub-Gaussian component recovered: kurtoses %v %v", k0, k1)
	}
	if hi < 1.0 {
		t.Fatalf("no super-Gaussian component recovered: kurtoses %v %v", k0, k1)
	}
}

func TestFastICADegenerateInputs(t *testing.T) {
	if _, err := FastICA(la.NewMatrix(1, 3), FastICAOptions{}); err == nil {
		t.Fatal("too few observations should fail")
	}
	constant := la.NewMatrix(10, 2) // all zeros
	if _, err := FastICA(constant, FastICAOptions{}); err == nil {
		t.Fatal("constant data should fail")
	}
}

func TestKurtosis(t *testing.T) {
	r := rng.New(7, "kurt")
	gauss := make([]float64, 50000)
	for i := range gauss {
		gauss[i] = r.NormFloat64()
	}
	if k := Kurtosis(gauss); math.Abs(k) > 0.1 {
		t.Fatalf("Gaussian kurtosis = %v, want ≈ 0", k)
	}
	uniform := make([]float64, 50000)
	for i := range uniform {
		uniform[i] = r.Float64()
	}
	if k := Kurtosis(uniform); math.Abs(k-(-1.2)) > 0.1 {
		t.Fatalf("uniform kurtosis = %v, want ≈ -1.2", k)
	}
	if Kurtosis([]float64{1, 2}) != 0 {
		t.Fatal("tiny series should return 0")
	}
	if Kurtosis([]float64{3, 3, 3, 3, 3}) != 0 {
		t.Fatal("constant series should return 0")
	}
}
