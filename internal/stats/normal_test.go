package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"effitest/internal/la"
)

func TestStdCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.6448536269514722, 0.95},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := StdCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StdCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStdQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p == 0 || p == 1 || math.IsNaN(p) {
			return true
		}
		x := StdQuantile(p)
		return math.Abs(StdCDF(x)-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStdQuantileTails(t *testing.T) {
	if got := StdQuantile(0.5); math.Abs(got) > 1e-13 {
		t.Errorf("StdQuantile(0.5) = %v, want 0", got)
	}
	if got := StdQuantile(0.9986501019683699); math.Abs(got-3) > 1e-9 {
		t.Errorf("StdQuantile(Φ(3)) = %v, want 3", got)
	}
	if !math.IsInf(StdQuantile(0), -1) || !math.IsInf(StdQuantile(1), 1) {
		t.Error("quantile at 0/1 should be ±Inf")
	}
	if !math.IsNaN(StdQuantile(-0.5)) {
		t.Error("quantile outside (0,1) should be NaN")
	}
}

func TestNormalPDFCDFConsistency(t *testing.T) {
	n := Normal{Mu: 2, Sigma: 3}
	// Numerical derivative of the CDF should equal the PDF.
	for _, x := range []float64{-4, 0, 2, 5, 9} {
		h := 1e-5
		num := (n.CDF(x+h) - n.CDF(x-h)) / (2 * h)
		if math.Abs(num-n.PDF(x)) > 1e-6 {
			t.Errorf("dCDF/dx at %v = %v, PDF = %v", x, num, n.PDF(x))
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 2}
	if got := n.Quantile(0.8413447460685429); math.Abs(got-12) > 1e-9 {
		t.Errorf("Quantile = %v, want 12", got)
	}
}

func TestNormalDegenerate(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0}
	if n.CDF(0.999) != 0 || n.CDF(1) != 1 {
		t.Error("point-mass CDF wrong")
	}
	if n.PDF(0) != 0 || !math.IsInf(n.PDF(1), 1) {
		t.Error("point-mass PDF wrong")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should return 0")
	}
}

func TestQuantileEmpirical(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v, want 3", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q25 = %v, want 2", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Quantile mutated its input")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if c := Correlation(xs, ys); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(xs, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", c)
	}
	if Correlation(xs, []float64{1, 1, 1, 1, 1}) != 0 {
		t.Error("constant series should give 0 correlation")
	}
}

func TestCovToCorr(t *testing.T) {
	cov := la.NewMatrixFrom([][]float64{{4, 2}, {2, 9}})
	corr := CovToCorr(cov)
	if corr.At(0, 0) != 1 || corr.At(1, 1) != 1 {
		t.Error("diagonal should be 1")
	}
	want := 2.0 / 6.0
	if math.Abs(corr.At(0, 1)-want) > 1e-12 {
		t.Errorf("corr = %v, want %v", corr.At(0, 1), want)
	}
}

func TestEmpiricalMomentsOfSampler(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := Normal{Mu: -3, Sigma: 0.5}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = n.Mu + n.Sigma*r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m-(-3)) > 0.02 {
		t.Errorf("sample mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-0.5) > 0.02 {
		t.Errorf("sample sd = %v", s)
	}
}
