package stats

import (
	"errors"
	"math"
	"math/rand"

	"effitest/internal/la"
)

// ICA is the result of an independent component analysis: X ≈ S·Mixing
// where the rows of S (returned by Transform) are maximally non-Gaussian
// independent sources.
//
// The paper's §3.1 notes that for non-Gaussian process variations the
// Gaussian conditional estimator can be replaced by an ICA-based expansion
// (citing Singh & Sapatnekar). This implementation is FastICA with deflation
// and the tanh contrast, operating on whitened data.
type ICA struct {
	Components int
	Mean       []float64  // per-variable mean of the training data
	Unmixing   *la.Matrix // Components × variables: s = Unmixing·(x - mean)
}

// FastICAOptions tunes the solver.
type FastICAOptions struct {
	Components int     // number of sources to extract (0 = all variables)
	MaxIter    int     // per-component iterations (0 = 200)
	Tol        float64 // convergence tolerance on |<w, w_prev>| (0 = 1e-6)
	Seed       int64   // deterministic initialization
}

// FastICA extracts independent components from data rows (observations ×
// variables). The data is centered and whitened internally.
func FastICA(data *la.Matrix, opt FastICAOptions) (*ICA, error) {
	nObs, nVar := data.Rows, data.Cols
	if nObs < 2 || nVar < 1 {
		return nil, errors.New("stats: FastICA needs at least 2 observations and 1 variable")
	}
	k := opt.Components
	if k <= 0 || k > nVar {
		k = nVar
	}
	maxIter := opt.MaxIter
	if maxIter <= 0 {
		maxIter = 200
	}
	tol := opt.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Center.
	mean := make([]float64, nVar)
	for c := 0; c < nVar; c++ {
		s := 0.0
		for r := 0; r < nObs; r++ {
			s += data.At(r, c)
		}
		mean[c] = s / float64(nObs)
	}
	x := la.NewMatrix(nObs, nVar)
	for r := 0; r < nObs; r++ {
		for c := 0; c < nVar; c++ {
			x.Set(r, c, data.At(r, c)-mean[c])
		}
	}

	// Whiten: cov = E D Eᵀ, whitener W0 = D^{-1/2} Eᵀ (keep top-k space).
	cov := x.T().Mul(x).Scale(1 / float64(nObs-1))
	vals, vecs, err := la.EigenSym(cov, 0)
	if err != nil {
		return nil, err
	}
	kept := 0
	for kept < nVar && vals[kept] > 1e-12 {
		kept++
	}
	if kept < k {
		k = kept
	}
	if k == 0 {
		return nil, errors.New("stats: FastICA on degenerate (constant) data")
	}
	w0 := la.NewMatrix(k, nVar) // whitener rows
	for i := 0; i < k; i++ {
		inv := 1 / math.Sqrt(vals[i])
		for c := 0; c < nVar; c++ {
			w0.Set(i, c, inv*vecs.At(c, i))
		}
	}
	// Whitened data Z = X·W0ᵀ (nObs × k).
	z := x.Mul(w0.T())

	// Deflationary FastICA with tanh contrast.
	r := rand.New(rand.NewSource(opt.Seed + 12345))
	wRows := la.NewMatrix(k, k)
	for comp := 0; comp < k; comp++ {
		w := make([]float64, k)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		normalize(w)
		for iter := 0; iter < maxIter; iter++ {
			// w+ = E[z g(wᵀz)] − E[g'(wᵀz)] w,  g = tanh.
			newW := make([]float64, k)
			gSum := 0.0
			for obs := 0; obs < nObs; obs++ {
				row := z.Data[obs*k : (obs+1)*k]
				u := la.Dot(w, row)
				g := math.Tanh(u)
				gPrime := 1 - g*g
				for i := range newW {
					newW[i] += row[i] * g
				}
				gSum += gPrime
			}
			for i := range newW {
				newW[i] = newW[i]/float64(nObs) - gSum/float64(nObs)*w[i]
			}
			// Gram-Schmidt against earlier components.
			for prev := 0; prev < comp; prev++ {
				p := wRows.Row(prev)
				d := la.Dot(newW, p)
				for i := range newW {
					newW[i] -= d * p[i]
				}
			}
			normalize(newW)
			conv := math.Abs(la.Dot(newW, w))
			copy(w, newW)
			if conv > 1-tol {
				break
			}
		}
		for i, v := range w {
			wRows.Set(comp, i, v)
		}
	}

	// Unmixing in original coordinates: s = Wrows · W0 · (x - mean).
	return &ICA{Components: k, Mean: mean, Unmixing: wRows.Mul(w0)}, nil
}

// Transform maps observations (rows) to source space (rows × components).
func (ic *ICA) Transform(data *la.Matrix) *la.Matrix {
	out := la.NewMatrix(data.Rows, ic.Components)
	for r := 0; r < data.Rows; r++ {
		for c := 0; c < ic.Components; c++ {
			s := 0.0
			for v := 0; v < data.Cols; v++ {
				s += ic.Unmixing.At(c, v) * (data.At(r, v) - ic.Mean[v])
			}
			out.Set(r, c, s)
		}
	}
	return out
}

// Kurtosis returns the excess kurtosis of a series — the classic
// non-Gaussianity measure ICA maximizes (0 for a Gaussian).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

func normalize(v []float64) {
	n := la.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}
