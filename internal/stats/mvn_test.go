package stats

import (
	"math"
	"testing"

	"effitest/internal/la"
	"effitest/internal/rng"
)

func TestMVNSampleMoments(t *testing.T) {
	mu := []float64{1, -2}
	sigma := la.NewMatrixFrom([][]float64{{2, 0.8}, {0.8, 1}})
	m, err := NewMVN(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1, "mvn")
	const n = 30000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		s, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		xs[i], ys[i] = s[0], s[1]
	}
	if d := math.Abs(Mean(xs) - 1); d > 0.05 {
		t.Errorf("mean x off by %v", d)
	}
	if d := math.Abs(Mean(ys) + 2); d > 0.05 {
		t.Errorf("mean y off by %v", d)
	}
	if d := math.Abs(Variance(xs) - 2); d > 0.1 {
		t.Errorf("var x off by %v", d)
	}
	if d := math.Abs(Covariance(xs, ys) - 0.8); d > 0.05 {
		t.Errorf("cov off by %v", d)
	}
}

func TestMVNShapeErrors(t *testing.T) {
	if _, err := NewMVN([]float64{1}, la.NewMatrix(2, 2)); err == nil {
		t.Error("expected mean/cov mismatch error")
	}
	if _, err := NewMVN([]float64{1, 2}, la.NewMatrix(2, 3)); err == nil {
		t.Error("expected non-square error")
	}
}

func TestConditionalKnownBivariate(t *testing.T) {
	// Classic result: for unit-variance pair with correlation ρ,
	// X | Y=y ~ N(ρ y, 1-ρ²).
	rho := 0.9
	sigma := la.NewMatrixFrom([][]float64{{1, rho}, {rho, 1}})
	m, err := NewMVN([]float64{0, 0}, sigma)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := m.Conditional([]int{0}, []int{1}, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond.Mu[0]-rho*2) > 1e-9 {
		t.Errorf("conditional mean = %v, want %v", cond.Mu[0], rho*2)
	}
	if math.Abs(cond.Sigma.At(0, 0)-(1-rho*rho)) > 1e-9 {
		t.Errorf("conditional var = %v, want %v", cond.Sigma.At(0, 0), 1-rho*rho)
	}
}

func TestConditionalVarianceNeverIncreases(t *testing.T) {
	// Paper's point after Eq. (5): conditioning shrinks variance.
	r := rng.New(7, "condvar")
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(5)
		b := la.NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		sigma := b.Mul(b.T())
		for i := 0; i < n; i++ {
			sigma.Add(i, i, 0.5)
		}
		mu := make([]float64, n)
		m, err := NewMVN(mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		known := []int{0, 1}
		unknown := make([]int, 0, n-2)
		for i := 2; i < n; i++ {
			unknown = append(unknown, i)
		}
		cond, err := m.Conditional(unknown, known, []float64{1, -1})
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range unknown {
			if cond.Sigma.At(i, i) > sigma.At(u, u)+1e-9 {
				t.Fatalf("conditional variance grew: %v > %v", cond.Sigma.At(i, i), sigma.At(u, u))
			}
		}
	}
}

func TestConditionalPerfectCorrelationPinsValue(t *testing.T) {
	// Two perfectly correlated variables: observing one determines the other.
	sigma := la.NewMatrixFrom([][]float64{{4, 4}, {4, 4}})
	m, err := NewMVN([]float64{10, 10}, sigma)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := m.Conditional([]int{0}, []int{1}, []float64{13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond.Mu[0]-13) > 1e-3 {
		t.Errorf("conditional mean = %v, want 13", cond.Mu[0])
	}
	if cond.Sigma.At(0, 0) > 1e-3 {
		t.Errorf("conditional variance = %v, want ~0", cond.Sigma.At(0, 0))
	}
}

func TestConditionalAgainstMonteCarlo(t *testing.T) {
	// Estimate E[X0 | X2 ≈ v] by rejection from samples, compare to formula.
	sigma := la.NewMatrixFrom([][]float64{
		{1.0, 0.7, 0.5},
		{0.7, 1.0, 0.6},
		{0.5, 0.6, 1.0},
	})
	m, err := NewMVN([]float64{0, 0, 0}, sigma)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3, "condmc")
	const v, band = 1.0, 0.08
	var sum float64
	var count int
	for i := 0; i < 400000; i++ {
		s, err := m.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s[2]-v) < band {
			sum += s[0]
			count++
		}
	}
	mc := sum / float64(count)
	cond, err := m.Conditional([]int{0}, []int{2}, []float64{v})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-cond.Mu[0]) > 0.05 {
		t.Errorf("MC conditional mean %v vs analytic %v", mc, cond.Mu[0])
	}
}

func TestConditionalNoObservations(t *testing.T) {
	sigma := la.NewMatrixFrom([][]float64{{1, 0.5}, {0.5, 2}})
	m, err := NewMVN([]float64{3, 4}, sigma)
	if err != nil {
		t.Fatal(err)
	}
	cond, err := m.Conditional([]int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cond.Mu[0] != 4 || cond.Sigma.At(0, 0) != 2 {
		t.Errorf("marginal wrong: mu=%v var=%v", cond.Mu[0], cond.Sigma.At(0, 0))
	}
}

func TestConditionalOverlapRejected(t *testing.T) {
	sigma := la.NewMatrixFrom([][]float64{{1, 0}, {0, 1}})
	m, _ := NewMVN([]float64{0, 0}, sigma)
	if _, err := m.Conditional([]int{0}, []int{0}, []float64{1}); err == nil {
		t.Error("expected overlap error")
	}
	if _, err := m.Conditional([]int{0}, []int{1}, []float64{1, 2}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestSampleN(t *testing.T) {
	sigma := la.NewMatrixFrom([][]float64{{1, 0}, {0, 1}})
	m, _ := NewMVN([]float64{0, 0}, sigma)
	s, err := m.SampleN(rng.New(1, "sn"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows != 5 || s.Cols != 2 {
		t.Fatalf("shape %dx%d", s.Rows, s.Cols)
	}
}
