// Package stats implements the probability and statistics layer of the
// EffiTest reproduction: the univariate normal distribution, multivariate
// normals with conditional (Schur-complement) inference — the paper's
// Eqs. (4)–(5) — principal component analysis, and descriptive statistics.
package stats

import (
	"math"

	"effitest/internal/la"
)

// Normal is a univariate Gaussian distribution.
type Normal struct {
	Mu    float64
	Sigma float64 // standard deviation, > 0 (0 means a point mass at Mu)
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma == 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the inverse CDF at probability p in (0, 1).
func (n Normal) Quantile(p float64) float64 {
	return n.Mu + n.Sigma*StdQuantile(p)
}

// StdQuantile is the standard normal inverse CDF (Acklam's rational
// approximation refined by one Halley step; absolute error < 1e-13).
func StdQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// StdCDF is the standard normal CDF.
func StdCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// StdPDF is the standard normal density.
func StdPDF(x float64) float64 { return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the empirical p-quantile of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sortFloats(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Covariance returns the unbiased sample covariance of two equal-length
// series.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: covariance length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(len(xs)-1)
}

// Correlation returns the Pearson correlation of two series (0 if either is
// constant).
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// CovToCorr converts a covariance matrix to the corresponding correlation
// matrix. Zero-variance rows map to zero correlations (diagonal forced to 1).
func CovToCorr(cov *la.Matrix) *la.Matrix {
	n := cov.Rows
	out := la.NewMatrix(n, n)
	sd := make([]float64, n)
	for i := 0; i < n; i++ {
		sd[i] = math.Sqrt(math.Max(cov.At(i, i), 0))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				out.Set(i, j, 1)
				continue
			}
			if sd[i] == 0 || sd[j] == 0 {
				continue
			}
			out.Set(i, j, cov.At(i, j)/(sd[i]*sd[j]))
		}
	}
	return out
}

func sortFloats(xs []float64) {
	// Insertion sort is fine for the sizes used here, but quantiles may be
	// asked over 10k chips, so use a simple quicksort.
	var qs func(lo, hi int)
	qs = func(lo, hi int) {
		for lo < hi {
			p := xs[(lo+hi)/2]
			i, j := lo, hi
			for i <= j {
				for xs[i] < p {
					i++
				}
				for xs[j] > p {
					j--
				}
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				qs(lo, j)
				lo = i
			} else {
				qs(i, hi)
				hi = j
			}
		}
	}
	if len(xs) > 1 {
		qs(0, len(xs)-1)
	}
}
