package rng

import (
	"testing"
	"testing/quick"
)

func TestSeedDeterministic(t *testing.T) {
	a := Seed(42, "chips", "7")
	b := Seed(42, "chips", "7")
	if a != b {
		t.Fatalf("same labels gave different seeds: %d vs %d", a, b)
	}
}

func TestSeedLabelSeparation(t *testing.T) {
	// ("ab","c") must differ from ("a","bc") — the separator byte matters.
	if Seed(1, "ab", "c") == Seed(1, "a", "bc") {
		t.Fatal("label concatenation collision")
	}
}

func TestSeedVariesWithRoot(t *testing.T) {
	f := func(r1, r2 int64) bool {
		if r1 == r2 {
			return true
		}
		return Seed(r1, "x") != Seed(r2, "x")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewIndexedDistinct(t *testing.T) {
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		r := NewIndexed(9, i, "chip")
		v := r.Float64()
		if seen[v] {
			t.Fatalf("duplicate first draw for index %d", i)
		}
		seen[v] = true
	}
}

func TestNewReproducibleStream(t *testing.T) {
	r1 := New(5, "a")
	r2 := New(5, "a")
	for i := 0; i < 10; i++ {
		if r1.Float64() != r2.Float64() {
			t.Fatal("streams diverged")
		}
	}
}

func TestNormVec(t *testing.T) {
	r := New(3, "norm")
	v := NormVec(r, 10000)
	if len(v) != 10000 {
		t.Fatalf("len = %d", len(v))
	}
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean of 10k standard normals = %v, want ~0", mean)
	}
	va := 0.0
	for _, x := range v {
		va += (x - mean) * (x - mean)
	}
	va /= float64(len(v) - 1)
	if va < 0.9 || va > 1.1 {
		t.Fatalf("variance = %v, want ~1", va)
	}
}
