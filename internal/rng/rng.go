// Package rng provides deterministic, label-derived random streams.
//
// EffiTest experiments must be reproducible (the paper simulates 10 000
// chips per circuit) and independently seedable per sub-experiment so that,
// e.g., changing the number of Monte-Carlo hold-time samples does not perturb
// the chip sampling stream. Streams are derived by hashing a root seed with a
// list of string labels (FNV-1a), giving stable, collision-resistant
// sub-seeds without any global state.
package rng

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// Seed derives a deterministic sub-seed from root and the labels.
func Seed(root int64, labels ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(root >> (8 * i))
	}
	h.Write(buf[:])
	for _, l := range labels {
		h.Write([]byte{0xff}) // separator so ("ab","c") != ("a","bc")
		h.Write([]byte(l))
	}
	return int64(h.Sum64())
}

// New returns a rand.Rand seeded from root and labels.
func New(root int64, labels ...string) *rand.Rand {
	return rand.New(rand.NewSource(Seed(root, labels...)))
}

// NewIndexed is a convenience for per-item streams (e.g. per-chip): it
// appends the decimal index as a final label.
func NewIndexed(root int64, index int, labels ...string) *rand.Rand {
	ls := make([]string, 0, len(labels)+1)
	ls = append(ls, labels...)
	ls = append(ls, strconv.Itoa(index))
	return New(root, ls...)
}

// NormVec fills a fresh slice of n independent standard normal samples.
func NormVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}
