package exp

import (
	"context"
	"strings"
	"testing"

	"effitest/internal/circuit"
)

// fastCfg shrinks chip counts so the harness itself can be unit-tested.
func fastCfg() Config {
	cfg := DefaultConfig()
	cfg.CostChips = 4
	cfg.YieldChips = 40
	cfg.Fig8Chips = 1
	cfg.QuantileChips = 200
	return cfg
}

func TestTable1ShapeTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo-heavy experiment test skipped in -short mode")
	}
	p, _ := circuit.ProfileByName("s9234")
	row, err := Table1(context.Background(), p, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if row.NS != 211 || row.NG != 5597 || row.NB != 2 || row.NP != 80 {
		t.Fatalf("circuit statistics wrong: %+v", row)
	}
	if row.NPT <= 0 || row.NPT >= row.NP {
		t.Fatalf("npt = %d out of range", row.NPT)
	}
	// The headline reproduction target: ≥ 94% iteration reduction.
	if row.RA < 94 {
		t.Fatalf("ra = %.2f%%, want ≥ 94%% (paper: 94.71%%)", row.RA)
	}
	// Path-wise cost is a binary search: ≈ 8–10 iterations per path.
	if row.TPV < 7 || row.TPV > 11 {
		t.Fatalf("t'v = %.2f, want ≈ 8–10", row.TPV)
	}
	// Aligned multiplexed testing must beat path-wise per tested path too.
	if row.TV >= row.TPV {
		t.Fatalf("tv %.2f not below t'v %.2f", row.TV, row.TPV)
	}
	if row.ConfiguredFraction < 0.75 {
		t.Fatalf("only %.2f of chips configurable", row.ConfiguredFraction)
	}
}

func TestTable2ShapeTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo-heavy experiment test skipped in -short mode")
	}
	p, _ := circuit.ProfileByName("s9234")
	cfg := fastCfg()
	cfg.YieldChips = 120
	row, err := Table2(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.T2 <= row.T1 {
		t.Fatal("T2 must exceed T1")
	}
	// Base yields calibrate to 50 / 84.13 (±MC noise at 120 chips).
	if row.T1NoBuffer < 35 || row.T1NoBuffer > 65 {
		t.Fatalf("T1 base yield %.1f%% far from 50%%", row.T1NoBuffer)
	}
	if row.T2NoBuffer < 72 || row.T2NoBuffer > 95 {
		t.Fatalf("T2 base yield %.1f%% far from 84%%", row.T2NoBuffer)
	}
	// Tuning must beat no-buffer yield; proposed must not beat ideal.
	if row.T1YI < row.T1NoBuffer {
		t.Fatalf("ideal %v below no-buffer %v at T1", row.T1YI, row.T1NoBuffer)
	}
	if row.T1YT > row.T1YI+1e-9 || row.T2YT > row.T2YI+1e-9 {
		t.Fatal("proposed yield beats ideal — impossible")
	}
	// Yield drop stays moderate (paper: 0.2–2.4%; allow MC noise).
	if row.T1YR > 15 || row.T2YR > 15 {
		t.Fatalf("yield drops too large: %.1f / %.1f", row.T1YR, row.T2YR)
	}
}

func TestFig7ShapeTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo-heavy experiment test skipped in -short mode")
	}
	p, _ := circuit.ProfileByName("s9234")
	cfg := fastCfg()
	cfg.YieldChips = 80
	row, err := Fig7(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Inflated randomness: buffered cases must still beat no-buffer clearly.
	if row.Ideal < row.NoBuffer {
		t.Fatalf("ideal %v below no-buffer %v", row.Ideal, row.NoBuffer)
	}
	if row.Proposed > row.Ideal+1e-9 {
		t.Fatal("proposed beats ideal")
	}
}

func TestFig8Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo-heavy experiment test skipped in -short mode")
	}
	p, _ := circuit.ProfileByName("s9234")
	row, err := Fig8(context.Background(), p, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if row.Pathwise < 7 || row.Pathwise > 11 {
		t.Fatalf("path-wise %.2f per path, want ≈ 8–10", row.Pathwise)
	}
	if row.Multiplex >= row.Pathwise {
		t.Fatalf("multiplexing %.2f not below path-wise %.2f", row.Multiplex, row.Pathwise)
	}
	if row.Proposed > row.Multiplex+1e-9 {
		t.Fatalf("alignment %.2f worse than multiplexing %.2f", row.Proposed, row.Multiplex)
	}
}

func TestProfilesResolution(t *testing.T) {
	ps, err := Profiles(nil)
	if err != nil || len(ps) != 8 {
		t.Fatalf("default profiles: %d, %v", len(ps), err)
	}
	ps, err = Profiles([]string{"s9234", "mem_ctrl"})
	if err != nil || len(ps) != 2 {
		t.Fatalf("named profiles: %v", err)
	}
	if _, err := Profiles([]string{"bogus"}); err == nil {
		t.Fatal("unknown circuit should error")
	}
	ps, err = Profiles([]string{"all"})
	if err != nil || len(ps) != 8 {
		t.Fatal("all should expand")
	}
}

func TestFormatters(t *testing.T) {
	t1 := []Table1Row{{Circuit: "s9234", NS: 211, NG: 5597, NB: 2, NP: 80, NPT: 10,
		TA: 30, TV: 3, TPA: 700, TPV: 8.75, RA: 95.7, RV: 65.7, TP: 1, TT: 0.01, TS: 0.001}}
	out := FormatTable1(t1)
	if !strings.Contains(out, "s9234") || !strings.Contains(out, "paper") {
		t.Fatal("Table 1 rendering missing rows")
	}
	t2 := []Table2Row{{Circuit: "s9234", T1YI: 77, T1YT: 75, T1YR: 2, T2YI: 95, T2YT: 94, T2YR: 1}}
	if out := FormatTable2(t2); !strings.Contains(out, "s9234") {
		t.Fatal("Table 2 rendering broken")
	}
	if out := FormatFig7([]Fig7Row{{Circuit: "x", NoBuffer: 50, Proposed: 80, Ideal: 85}}); !strings.Contains(out, "x") {
		t.Fatal("Fig 7 rendering broken")
	}
	if out := FormatFig8([]Fig8Row{{Circuit: "x", Pathwise: 9, Multiplex: 5, Proposed: 3}}); !strings.Contains(out, "x") {
		t.Fatal("Fig 8 rendering broken")
	}
}

func TestPaperValuesComplete(t *testing.T) {
	for _, p := range circuit.Table1Profiles {
		r1, ok := PaperTable1[p.Name]
		if !ok {
			t.Fatalf("missing paper Table 1 row for %s", p.Name)
		}
		if r1.NS != p.NumFF || r1.NG != p.NumGates || r1.NB != p.NumBuffers || r1.NP != p.NumPaths {
			t.Fatalf("%s: paper row disagrees with profile", p.Name)
		}
		if _, ok := PaperTable2[p.Name]; !ok {
			t.Fatalf("missing paper Table 2 row for %s", p.Name)
		}
	}
}
