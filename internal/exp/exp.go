// Package exp regenerates every table and figure of the paper's evaluation:
// Table 1 (test cost with delay alignment and statistical prediction),
// Table 2 (yield comparison at T1/T2), Figure 7 (yield with enlarged random
// variation) and Figure 8 (test comparison without statistical prediction).
// Each runner returns structured rows; the Format functions render them side
// by side with the paper's published numbers.
package exp

import (
	"fmt"
	"time"

	"effitest/internal/baseline"
	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/rng"
	"effitest/internal/tester"
	"effitest/internal/yield"
)

// Config parameterizes the experiment harness. Chip counts are deliberately
// configurable: the paper uses 10 000 simulated chips per circuit, which is
// reproducible here but slow in CI — EXPERIMENTS.md records the counts used.
type Config struct {
	Seed int64
	// Chips evaluated per circuit for Table 1 cost metrics.
	CostChips int
	// Chips evaluated per circuit for yield experiments (Table 2, Fig 7).
	YieldChips int
	// Chips for Figure 8 (expensive: all np paths are tested per chip).
	Fig8Chips int
	// QuantileChips used to estimate T1/T2 from the no-buffer critical
	// delay distribution.
	QuantileChips int
	// Fig8MaxBatch caps batch sizes in the no-prediction runs to bound the
	// alignment solve cost (0 = unlimited).
	Fig8MaxBatch int
	// Core is the EffiTest flow configuration.
	Core core.Config
}

// DefaultConfig returns harness defaults sized for minutes-scale full runs.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		CostChips:     100,
		YieldChips:    400,
		Fig8Chips:     5,
		QuantileChips: 2000,
		Fig8MaxBatch:  24,
		Core:          core.DefaultConfig(),
	}
}

// chipSeed derives the evaluation-chip stream (distinct from hold-bound
// sampling inside core).
func chipSeed(cfg Config, name string) int64 {
	return rng.Seed(cfg.Seed, "eval-chips", name)
}

// Table1Row mirrors the paper's Table 1 columns.
type Table1Row struct {
	Circuit            string
	NS, NG, NB, NP     int
	NPT                int
	TA, TV             float64 // proposed: iterations per chip, per tested path
	TPA, TPV           float64 // path-wise: iterations per chip, per path
	RA, RV             float64 // reduction ratios (%)
	TP, TT, TS         float64 // runtimes in seconds (offline, align, config)
	ConfiguredFraction float64
}

// Table1 reproduces one row of Table 1 for the given benchmark profile.
func Table1(p circuit.Profile, cfg Config) (Table1Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	plan, err := core.Prepare(c, cfg.Core)
	if err != nil {
		return Table1Row{}, err
	}
	td := yield.PeriodQuantile(c, rng.Seed(cfg.Seed, "quantile", p.Name), cfg.QuantileChips, 0.8413)

	row := Table1Row{
		Circuit: p.Name,
		NS:      p.NumFF, NG: p.NumGates, NB: p.NumBuffers, NP: p.NumPaths,
		NPT: plan.NumTested(),
		TP:  plan.PrepDuration.Seconds(),
	}

	seed := chipSeed(cfg, p.Name)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	var sumTA, sumTPA int
	var alignDur, cfgDur time.Duration
	var configured int
	for i := 0; i < cfg.CostChips; i++ {
		ch := tester.SampleChip(c, seed, i)
		out, err := plan.RunChip(ch, td)
		if err != nil {
			return row, err
		}
		sumTA += out.Iterations
		alignDur += out.AlignDuration
		cfgDur += out.ConfigDuration
		if out.Configured {
			configured++
		}

		ateBase := tester.NewATE(ch, cfg.Core.TesterResolution)
		iters, _, err := baseline.Pathwise(ateBase, c, all, cfg.Core)
		if err != nil {
			return row, err
		}
		sumTPA += iters
	}
	n := float64(cfg.CostChips)
	row.TA = float64(sumTA) / n
	row.TV = row.TA / float64(row.NPT)
	row.TPA = float64(sumTPA) / n
	row.TPV = row.TPA / float64(row.NP)
	row.RA = 100 * (row.TPA - row.TA) / row.TPA
	row.RV = 100 * (row.TPV - row.TV) / row.TPV
	row.TT = alignDur.Seconds() / n
	row.TS = cfgDur.Seconds() / n
	row.ConfiguredFraction = float64(configured) / n
	return row, nil
}

// Table2Row mirrors the paper's Table 2 (yields at T1 and T2).
type Table2Row struct {
	Circuit                string
	T1, T2                 float64
	T1YI, T1YT, T1YR       float64 // percent
	T2YI, T2YT, T2YR       float64 // percent
	T1NoBuffer, T2NoBuffer float64 // percent (sanity: ≈50 and ≈84.13)
}

// Table2 reproduces one row of Table 2.
func Table2(p circuit.Profile, cfg Config) (Table2Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Table2Row{}, err
	}
	plan, err := core.Prepare(c, cfg.Core)
	if err != nil {
		return Table2Row{}, err
	}
	qseed := rng.Seed(cfg.Seed, "quantile", p.Name)
	t1 := yield.PeriodQuantile(c, qseed, cfg.QuantileChips, 0.50)
	t2 := yield.PeriodQuantile(c, qseed, cfg.QuantileChips, 0.8413)

	chips := tester.SampleChips(c, chipSeed(cfg, p.Name), cfg.YieldChips)
	row := Table2Row{Circuit: p.Name, T1: t1, T2: t2}
	for i, T := range []float64{t1, t2} {
		yi := 100 * yield.Ideal(c, chips, T)
		st, err := yield.Proposed(plan, chips, T)
		if err != nil {
			return row, err
		}
		yt := 100 * st.Yield
		nb := 100 * yield.NoBuffer(chips, T)
		if i == 0 {
			row.T1YI, row.T1YT, row.T1YR, row.T1NoBuffer = yi, yt, yi-yt, nb
		} else {
			row.T2YI, row.T2YT, row.T2YR, row.T2NoBuffer = yi, yt, yi-yt, nb
		}
	}
	return row, nil
}

// Fig7Row is one bar group of Figure 7: yields with standard deviations
// inflated by 10% (covariances unchanged).
type Fig7Row struct {
	Circuit  string
	NoBuffer float64 // percent
	Proposed float64
	Ideal    float64
}

// Fig7 reproduces one bar group of Figure 7. The clock period is calibrated
// on the *original* circuit (T2, 84.13% base yield); the inflated randomness
// then degrades all three cases, with the buffered ones staying far ahead.
func Fig7(p circuit.Profile, cfg Config) (Fig7Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Fig7Row{}, err
	}
	t2 := yield.PeriodQuantile(c, rng.Seed(cfg.Seed, "quantile", p.Name), cfg.QuantileChips, 0.8413)
	inflated, err := c.WithInflatedSigma(1.1)
	if err != nil {
		return Fig7Row{}, err
	}
	plan, err := core.Prepare(inflated, cfg.Core)
	if err != nil {
		return Fig7Row{}, err
	}
	chips := tester.SampleChips(inflated, chipSeed(cfg, p.Name+"-fig7"), cfg.YieldChips)
	st, err := yield.Proposed(plan, chips, t2)
	if err != nil {
		return Fig7Row{}, err
	}
	return Fig7Row{
		Circuit:  p.Name,
		NoBuffer: 100 * yield.NoBuffer(chips, t2),
		Proposed: 100 * st.Yield,
		Ideal:    100 * yield.Ideal(inflated, chips, t2),
	}, nil
}

// Fig8Row is one bar group of Figure 8: test iterations per path without
// statistical prediction (all np paths measured).
type Fig8Row struct {
	Circuit   string
	Pathwise  float64 // iterations per path, path-wise stepping
	Multiplex float64 // multiplexing without alignment
	Proposed  float64 // multiplexing with delay alignment
}

// Fig8 reproduces one bar group of Figure 8.
func Fig8(p circuit.Profile, cfg Config) (Fig8Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Fig8Row{}, err
	}
	runCfg := cfg.Core
	runCfg.MaxBatch = cfg.Fig8MaxBatch
	hb, err := core.ComputeHoldBounds(c, runCfg)
	if err != nil {
		return Fig8Row{}, err
	}
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	seed := chipSeed(cfg, p.Name+"-fig8")
	var sumPW, sumMux, sumAligned int
	for i := 0; i < cfg.Fig8Chips; i++ {
		ch := tester.SampleChip(c, seed, i)

		ate1 := tester.NewATE(ch, runCfg.TesterResolution)
		pw, _, err := baseline.Pathwise(ate1, c, all, runCfg)
		if err != nil {
			return Fig8Row{}, err
		}
		sumPW += pw

		ate2 := tester.NewATE(ch, runCfg.TesterResolution)
		mux, _, err := baseline.Multiplex(ate2, c, all, hb.Lambda, runCfg, false)
		if err != nil {
			return Fig8Row{}, err
		}
		sumMux += mux

		ate3 := tester.NewATE(ch, runCfg.TesterResolution)
		al, _, err := baseline.Multiplex(ate3, c, all, hb.Lambda, runCfg, true)
		if err != nil {
			return Fig8Row{}, err
		}
		sumAligned += al
	}
	denom := float64(cfg.Fig8Chips) * float64(c.NumPaths())
	return Fig8Row{
		Circuit:   p.Name,
		Pathwise:  float64(sumPW) / denom,
		Multiplex: float64(sumMux) / denom,
		Proposed:  float64(sumAligned) / denom,
	}, nil
}

// Profiles resolves a comma-separated circuit list ("all" or empty = every
// Table 1 circuit).
func Profiles(names []string) ([]circuit.Profile, error) {
	if len(names) == 0 {
		return circuit.Table1Profiles, nil
	}
	var out []circuit.Profile
	for _, n := range names {
		if n == "all" {
			return circuit.Table1Profiles, nil
		}
		p, ok := circuit.ProfileByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown circuit %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}
