// Package exp regenerates every table and figure of the paper's evaluation:
// Table 1 (test cost with delay alignment and statistical prediction),
// Table 2 (yield comparison at T1/T2), Figure 7 (yield with enlarged random
// variation) and Figure 8 (test comparison without statistical prediction).
// Each runner returns structured rows; the Format functions render them side
// by side with the paper's published numbers.
package exp

import (
	"context"
	"fmt"
	"time"

	"effitest/internal/baseline"
	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/pool"
	"effitest/internal/rng"
	"effitest/internal/tester"
	"effitest/internal/yield"
)

// Config parameterizes the experiment harness. Chip counts are deliberately
// configurable: the paper uses 10 000 simulated chips per circuit, which is
// reproducible here but slow in CI — EXPERIMENTS.md records the counts used.
type Config struct {
	Seed int64
	// Chips evaluated per circuit for Table 1 cost metrics.
	CostChips int
	// Chips evaluated per circuit for yield experiments (Table 2, Fig 7).
	YieldChips int
	// Chips for Figure 8 (expensive: all np paths are tested per chip).
	Fig8Chips int
	// QuantileChips used to estimate T1/T2 from the no-buffer critical
	// delay distribution.
	QuantileChips int
	// Fig8MaxBatch caps batch sizes in the no-prediction runs to bound the
	// alignment solve cost (0 = unlimited).
	Fig8MaxBatch int
	// PlanCache, when non-empty, routes every offline Prepare through the
	// content-addressed plan cache at this directory, so re-running tables
	// and figures skips the per-circuit offline flow.
	PlanCache string
	// Observer, when non-nil, receives flow events (batch start/end,
	// frequency steps, chip done) from the runners that execute the
	// EffiTest flow: Table 1, Table 2 and Figure 7. The Figure 8 baselines
	// measure through raw ATE sessions outside the flow and emit nothing
	// (efftables prints its own per-circuit stage lines instead). The
	// observer must be safe for concurrent use; it never changes the
	// numbers. The CLIs wire -progress to it.
	Observer core.Observer
	// Core is the EffiTest flow configuration.
	Core core.Config
}

// runOpts bundles the observer for the core flow calls.
func (cfg Config) runOpts() core.RunOptions {
	return core.RunOptions{Observer: cfg.Observer}
}

// preparePlan runs the offline flow for one circuit, going through the
// shared plan cache when one is configured.
func preparePlan(ctx context.Context, c *circuit.Circuit, cfg Config) (*core.Plan, error) {
	if cfg.PlanCache == "" {
		return core.PrepareCtx(ctx, c, cfg.Core)
	}
	pl, _, err := core.PrepareCached(ctx, cfg.PlanCache, c, cfg.Core)
	return pl, err
}

// DefaultConfig returns harness defaults sized for minutes-scale full runs.
func DefaultConfig() Config {
	return Config{
		Seed:          1,
		CostChips:     100,
		YieldChips:    400,
		Fig8Chips:     5,
		QuantileChips: 2000,
		Fig8MaxBatch:  24,
		Core:          core.DefaultConfig(),
	}
}

// chipSeed derives the evaluation-chip stream (distinct from hold-bound
// sampling inside core).
func chipSeed(cfg Config, name string) int64 {
	return rng.Seed(cfg.Seed, "eval-chips", name)
}

// Table1Row mirrors the paper's Table 1 columns.
type Table1Row struct {
	Circuit            string
	NS, NG, NB, NP     int
	NPT                int
	TA, TV             float64 // proposed: iterations per chip, per tested path
	TPA, TPV           float64 // path-wise: iterations per chip, per path
	RA, RV             float64 // reduction ratios (%)
	TP, TT, TS         float64 // runtimes in seconds (offline, align, config)
	ConfiguredFraction float64
}

// Table1 reproduces one row of Table 1 for the given benchmark profile.
// The per-chip cost loop (proposed flow plus the path-wise baseline) fans
// out across cfg.Core.Workers goroutines and is reduced in chip order, so
// the row does not depend on the worker count.
func Table1(ctx context.Context, p circuit.Profile, cfg Config) (Table1Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Table1Row{}, err
	}
	plan, err := preparePlan(ctx, c, cfg)
	if err != nil {
		return Table1Row{}, err
	}
	td, err := yield.PeriodQuantileCtx(ctx, c, rng.Seed(cfg.Seed, "quantile", p.Name), cfg.QuantileChips, 0.8413, cfg.Core.Workers)
	if err != nil {
		return Table1Row{}, err
	}

	row := Table1Row{
		Circuit: p.Name,
		NS:      p.NumFF, NG: p.NumGates, NB: p.NumBuffers, NP: p.NumPaths,
		NPT: plan.NumTested(),
		TP:  plan.PrepDuration.Seconds(),
	}

	seed := chipSeed(cfg, p.Name)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	// One slot per chip: workers fill their own slot, the reduction below
	// runs in chip order.
	type chipCost struct {
		iters, pwIters int
		align, config  time.Duration
		configured     bool
	}
	costs := make([]chipCost, cfg.CostChips)
	err = pool.ForEach(ctx, cfg.CostChips, cfg.Core.Workers, func(i int) error {
		ch := tester.SampleChip(c, seed, i)
		out, err := plan.RunChipOpts(ctx, ch, td, cfg.runOpts())
		if err != nil {
			return err
		}
		ateBase := tester.NewATE(ch, cfg.Core.TesterResolution)
		pwIters, _, err := baseline.Pathwise(ctx, ateBase, c, all, cfg.Core)
		if err != nil {
			return err
		}
		costs[i] = chipCost{
			iters:      out.Iterations,
			pwIters:    pwIters,
			align:      out.AlignDuration,
			config:     out.ConfigDuration,
			configured: out.Configured,
		}
		return nil
	})
	if err != nil {
		return row, err
	}
	var sumTA, sumTPA int
	var alignDur, cfgDur time.Duration
	var configured int
	for _, cc := range costs {
		sumTA += cc.iters
		sumTPA += cc.pwIters
		alignDur += cc.align
		cfgDur += cc.config
		if cc.configured {
			configured++
		}
	}
	n := float64(cfg.CostChips)
	row.TA = float64(sumTA) / n
	row.TV = row.TA / float64(row.NPT)
	row.TPA = float64(sumTPA) / n
	row.TPV = row.TPA / float64(row.NP)
	row.RA = 100 * (row.TPA - row.TA) / row.TPA
	row.RV = 100 * (row.TPV - row.TV) / row.TPV
	row.TT = alignDur.Seconds() / n
	row.TS = cfgDur.Seconds() / n
	row.ConfiguredFraction = float64(configured) / n
	return row, nil
}

// Table2Row mirrors the paper's Table 2 (yields at T1 and T2).
type Table2Row struct {
	Circuit                string
	T1, T2                 float64
	T1YI, T1YT, T1YR       float64 // percent
	T2YI, T2YT, T2YR       float64 // percent
	T1NoBuffer, T2NoBuffer float64 // percent (sanity: ≈50 and ≈84.13)
}

// Table2 reproduces one row of Table 2. The proposed-flow yield runs fan
// chips across cfg.Core.Workers goroutines.
func Table2(ctx context.Context, p circuit.Profile, cfg Config) (Table2Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Table2Row{}, err
	}
	plan, err := preparePlan(ctx, c, cfg)
	if err != nil {
		return Table2Row{}, err
	}
	qseed := rng.Seed(cfg.Seed, "quantile", p.Name)
	t1, err := yield.PeriodQuantileCtx(ctx, c, qseed, cfg.QuantileChips, 0.50, cfg.Core.Workers)
	if err != nil {
		return Table2Row{}, err
	}
	t2, err := yield.PeriodQuantileCtx(ctx, c, qseed, cfg.QuantileChips, 0.8413, cfg.Core.Workers)
	if err != nil {
		return Table2Row{}, err
	}

	chips, err := tester.SampleChipsCtx(ctx, c, chipSeed(cfg, p.Name), cfg.YieldChips, cfg.Core.Workers)
	if err != nil {
		return Table2Row{}, err
	}
	row := Table2Row{Circuit: p.Name, T1: t1, T2: t2}
	for i, T := range []float64{t1, t2} {
		yiFrac, err := yield.IdealCtx(ctx, c, chips, T, cfg.Core.Workers)
		if err != nil {
			return row, err
		}
		yi := 100 * yiFrac
		st, err := yield.ProposedOpts(ctx, plan, chips, T, cfg.runOpts())
		if err != nil {
			return row, err
		}
		yt := 100 * st.Yield
		nb := 100 * yield.NoBuffer(chips, T)
		if i == 0 {
			row.T1YI, row.T1YT, row.T1YR, row.T1NoBuffer = yi, yt, yi-yt, nb
		} else {
			row.T2YI, row.T2YT, row.T2YR, row.T2NoBuffer = yi, yt, yi-yt, nb
		}
	}
	return row, nil
}

// Fig7Row is one bar group of Figure 7: yields with standard deviations
// inflated by 10% (covariances unchanged).
type Fig7Row struct {
	Circuit  string
	NoBuffer float64 // percent
	Proposed float64
	Ideal    float64
}

// Fig7 reproduces one bar group of Figure 7. The clock period is calibrated
// on the *original* circuit (T2, 84.13% base yield); the inflated randomness
// then degrades all three cases, with the buffered ones staying far ahead.
func Fig7(ctx context.Context, p circuit.Profile, cfg Config) (Fig7Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Fig7Row{}, err
	}
	t2, err := yield.PeriodQuantileCtx(ctx, c, rng.Seed(cfg.Seed, "quantile", p.Name), cfg.QuantileChips, 0.8413, cfg.Core.Workers)
	if err != nil {
		return Fig7Row{}, err
	}
	inflated, err := c.WithInflatedSigma(1.1)
	if err != nil {
		return Fig7Row{}, err
	}
	plan, err := preparePlan(ctx, inflated, cfg)
	if err != nil {
		return Fig7Row{}, err
	}
	chips, err := tester.SampleChipsCtx(ctx, inflated, chipSeed(cfg, p.Name+"-fig7"), cfg.YieldChips, cfg.Core.Workers)
	if err != nil {
		return Fig7Row{}, err
	}
	st, err := yield.ProposedOpts(ctx, plan, chips, t2, cfg.runOpts())
	if err != nil {
		return Fig7Row{}, err
	}
	ideal, err := yield.IdealCtx(ctx, inflated, chips, t2, cfg.Core.Workers)
	if err != nil {
		return Fig7Row{}, err
	}
	return Fig7Row{
		Circuit:  p.Name,
		NoBuffer: 100 * yield.NoBuffer(chips, t2),
		Proposed: 100 * st.Yield,
		Ideal:    100 * ideal,
	}, nil
}

// Fig8Row is one bar group of Figure 8: test iterations per path without
// statistical prediction (all np paths measured).
type Fig8Row struct {
	Circuit   string
	Pathwise  float64 // iterations per path, path-wise stepping
	Multiplex float64 // multiplexing without alignment
	Proposed  float64 // multiplexing with delay alignment
}

// Fig8 reproduces one bar group of Figure 8. Chips run in parallel; each
// chip measures every path three ways on its own ATE sessions.
func Fig8(ctx context.Context, p circuit.Profile, cfg Config) (Fig8Row, error) {
	c, err := circuit.Generate(p, cfg.Seed)
	if err != nil {
		return Fig8Row{}, err
	}
	runCfg := cfg.Core
	runCfg.MaxBatch = cfg.Fig8MaxBatch
	hb, err := core.ComputeHoldBounds(c, runCfg)
	if err != nil {
		return Fig8Row{}, err
	}
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	seed := chipSeed(cfg, p.Name+"-fig8")
	type chipIters struct{ pw, mux, aligned int }
	iters := make([]chipIters, cfg.Fig8Chips)
	err = pool.ForEach(ctx, cfg.Fig8Chips, runCfg.Workers, func(i int) error {
		ch := tester.SampleChip(c, seed, i)

		ate1 := tester.NewATE(ch, runCfg.TesterResolution)
		pw, _, err := baseline.Pathwise(ctx, ate1, c, all, runCfg)
		if err != nil {
			return err
		}

		ate2 := tester.NewATE(ch, runCfg.TesterResolution)
		mux, _, err := baseline.Multiplex(ctx, ate2, c, all, hb.Lambda, runCfg, false)
		if err != nil {
			return err
		}

		ate3 := tester.NewATE(ch, runCfg.TesterResolution)
		al, _, err := baseline.Multiplex(ctx, ate3, c, all, hb.Lambda, runCfg, true)
		if err != nil {
			return err
		}
		iters[i] = chipIters{pw: pw, mux: mux, aligned: al}
		return nil
	})
	if err != nil {
		return Fig8Row{}, err
	}
	var sumPW, sumMux, sumAligned int
	for _, it := range iters {
		sumPW += it.pw
		sumMux += it.mux
		sumAligned += it.aligned
	}
	denom := float64(cfg.Fig8Chips) * float64(c.NumPaths())
	return Fig8Row{
		Circuit:   p.Name,
		Pathwise:  float64(sumPW) / denom,
		Multiplex: float64(sumMux) / denom,
		Proposed:  float64(sumAligned) / denom,
	}, nil
}

// Profiles resolves a comma-separated circuit list ("all" or empty = every
// Table 1 circuit).
func Profiles(names []string) ([]circuit.Profile, error) {
	if len(names) == 0 {
		return circuit.Table1Profiles, nil
	}
	var out []circuit.Profile
	for _, n := range names {
		if n == "all" {
			return circuit.Table1Profiles, nil
		}
		p, ok := circuit.ProfileByName(n)
		if !ok {
			return nil, fmt.Errorf("exp: unknown circuit %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}
