package exp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteTable1CSV emits measured Table 1 rows as CSV (machine-readable
// counterpart of FormatTable1).
func WriteTable1CSV(w io.Writer, rows []Table1Row) error {
	cw := csv.NewWriter(w)
	header := []string{"circuit", "ns", "ng", "nb", "np", "npt",
		"ta", "tv", "tpa", "tpv", "ra_pct", "rv_pct", "tp_s", "tt_s", "ts_s", "configured_frac"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Circuit,
			strconv.Itoa(r.NS), strconv.Itoa(r.NG), strconv.Itoa(r.NB), strconv.Itoa(r.NP), strconv.Itoa(r.NPT),
			f(r.TA), f(r.TV), f(r.TPA), f(r.TPV), f(r.RA), f(r.RV), f(r.TP), f(r.TT), f(r.TS), f(r.ConfiguredFraction),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable2CSV emits measured Table 2 rows as CSV.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{"circuit", "t1_ns", "t2_ns",
		"t1_nobuffer_pct", "t1_yi_pct", "t1_yt_pct", "t1_yr_pct",
		"t2_nobuffer_pct", "t2_yi_pct", "t2_yt_pct", "t2_yr_pct"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Circuit, f(r.T1), f(r.T2),
			f(r.T1NoBuffer), f(r.T1YI), f(r.T1YT), f(r.T1YR),
			f(r.T2NoBuffer), f(r.T2YI), f(r.T2YT), f(r.T2YR)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Report bundles every measured artifact for JSON export.
type Report struct {
	Seed   int64       `json:"seed"`
	Table1 []Table1Row `json:"table1,omitempty"`
	Table2 []Table2Row `json:"table2,omitempty"`
	Fig7   []Fig7Row   `json:"fig7,omitempty"`
	Fig8   []Fig8Row   `json:"fig8,omitempty"`
}

// WriteJSON emits the report with stable indentation.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReportJSON parses a report written by WriteJSON.
func ReadReportJSON(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("exp: report decode: %w", err)
	}
	return &rep, nil
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
