package exp

import (
	"fmt"
	"strings"
)

// FormatTable1 renders measured Table 1 rows, each followed by the paper's
// published row for the same circuit.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Test Results With Delay Alignment and Statistical Prediction\n")
	fmt.Fprintf(&b, "%-14s %-8s %6s %6s %4s %5s %5s %8s %6s %9s %6s %7s %7s %8s %8s %8s\n",
		"circuit", "source", "ns", "ng", "nb", "np", "npt",
		"ta", "tv", "t'a", "t'v", "ra(%)", "rv(%)", "Tp(s)", "Tt(s)", "Ts(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %6d %6d %4d %5d %5d %8.1f %6.2f %9.1f %6.2f %7.2f %7.2f %8.2f %8.3f %8.3f\n",
			r.Circuit, "measured", r.NS, r.NG, r.NB, r.NP, r.NPT,
			r.TA, r.TV, r.TPA, r.TPV, r.RA, r.RV, r.TP, r.TT, r.TS)
		if p, ok := PaperTable1[r.Circuit]; ok {
			fmt.Fprintf(&b, "%-14s %-8s %6d %6d %4d %5d %5d %8.1f %6.2f %9.1f %6.2f %7.2f %7.2f %8.2f %8.3f %8.3f\n",
				"", "paper", p.NS, p.NG, p.NB, p.NP, p.NPT,
				p.TA, p.TV, p.TPA, p.TPV, p.RA, p.RV, p.TP, p.TT, p.TS)
		}
	}
	return b.String()
}

// FormatTable2 renders measured Table 2 rows next to the paper's.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Yield Comparison (percent)\n")
	fmt.Fprintf(&b, "%-14s %-8s | %7s %7s %7s %7s | %7s %7s %7s %7s\n",
		"circuit", "source", "T1 base", "T1 yi", "T1 yt", "T1 yr", "T2 base", "T2 yi", "T2 yt", "T2 yr")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f\n",
			r.Circuit, "measured", r.T1NoBuffer, r.T1YI, r.T1YT, r.T1YR,
			r.T2NoBuffer, r.T2YI, r.T2YT, r.T2YR)
		if p, ok := PaperTable2[r.Circuit]; ok {
			fmt.Fprintf(&b, "%-14s %-8s | %7.2f %7.2f %7.2f %7.2f | %7.2f %7.2f %7.2f %7.2f\n",
				"", "paper", PaperBaseYieldT1, p.T1YI, p.T1YT, p.T1YR,
				PaperBaseYieldT2, p.T2YI, p.T2YT, p.T2YR)
		}
	}
	return b.String()
}

// FormatFig7 renders the Figure 7 series (yields under +10% sigma).
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Yield with enlarged random variation (percent, at the original T2)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %10s\n", "circuit", "no-buffer", "proposed", "ideal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %10.2f %10.2f\n", r.Circuit, r.NoBuffer, r.Proposed, r.Ideal)
	}
	b.WriteString("(paper plots bars per circuit: ideal ≥ proposed ≫ no-buffer, with a\n")
	b.WriteString(" larger proposed-vs-ideal gap than Table 2 due to the inflated randomness)\n")
	return b.String()
}

// FormatFig8 renders the Figure 8 series (iterations per path, no
// prediction).
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: Test iterations per path without statistical prediction\n")
	fmt.Fprintf(&b, "%-14s %10s %12s %10s\n", "circuit", "path-wise", "multiplexing", "proposed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.2f %12.2f %10.2f\n", r.Circuit, r.Pathwise, r.Multiplex, r.Proposed)
	}
	b.WriteString("(paper's ordering: path-wise ≈ 8-10 > multiplexing > proposed)\n")
	return b.String()
}
