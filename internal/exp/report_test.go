package exp

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Seed: 7,
		Table1: []Table1Row{{Circuit: "s9234", NS: 211, NG: 5597, NB: 2, NP: 80, NPT: 10,
			TA: 30.5, TV: 3.05, TPA: 700, TPV: 8.75, RA: 95.6, RV: 65.1, TP: 0.1, TT: 0.01, TS: 0.001,
			ConfiguredFraction: 1}},
		Table2: []Table2Row{{Circuit: "s9234", T1: 1.1, T2: 1.2,
			T1NoBuffer: 50, T1YI: 77, T1YT: 75, T1YR: 2, T2NoBuffer: 84, T2YI: 95, T2YT: 94, T2YR: 1}},
		Fig7: []Fig7Row{{Circuit: "s9234", NoBuffer: 60, Proposed: 85, Ideal: 90}},
		Fig8: []Fig8Row{{Circuit: "s9234", Pathwise: 9, Multiplex: 6, Proposed: 3.5}},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != rep.Seed {
		t.Fatal("seed lost")
	}
	if len(got.Table1) != 1 || got.Table1[0].RA != rep.Table1[0].RA {
		t.Fatal("table1 row lost")
	}
	if got.Table2[0].T1YI != 77 || got.Fig7[0].Ideal != 90 || got.Fig8[0].Proposed != 3.5 {
		t.Fatal("rows corrupted")
	}
}

func TestReadReportJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadReportJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage should fail")
	}
}

func TestTable1CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable1CSV(&buf, sampleReport().Table1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "circuit,ns,ng") {
		t.Fatalf("header wrong: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "s9234,211,5597") {
		t.Fatalf("row wrong: %s", lines[1])
	}
	if !strings.Contains(lines[1], "95.6") {
		t.Fatal("ra missing from CSV")
	}
}

func TestTable2CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, sampleReport().Table2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "s9234") {
		t.Fatalf("bad CSV: %v", lines)
	}
}
