package exp

// Published results from the paper, used for side-by-side comparison in the
// rendered tables and in EXPERIMENTS.md. Absolute runtimes (Tp/Tt/Ts) are
// hardware-bound and reported but not compared.

// PaperTable1 holds the paper's Table 1 (test cost).
var PaperTable1 = map[string]Table1Row{
	"s9234":        {Circuit: "s9234", NS: 211, NG: 5597, NB: 2, NP: 80, NPT: 15, TA: 37, TV: 2.47, TPA: 700, TPV: 8.75, RA: 94.71, RV: 71.77, TP: 6.58, TT: 0.09, TS: 0.00},
	"s13207":       {Circuit: "s13207", NS: 638, NG: 7951, NB: 5, NP: 485, NPT: 19, TA: 39, TV: 2.05, TPA: 4001, TPV: 8.25, RA: 99.03, RV: 75.15, TP: 16.75, TT: 0.06, TS: 0.00},
	"s15850":       {Circuit: "s15850", NS: 534, NG: 9772, NB: 5, NP: 397, NPT: 22, TA: 76, TV: 3.45, TPA: 3684, TPV: 9.28, RA: 97.94, RV: 62.82, TP: 50.51, TT: 0.17, TS: 0.01},
	"s38584":       {Circuit: "s38584", NS: 1426, NG: 19253, NB: 7, NP: 370, NPT: 21, TA: 62, TV: 2.95, TPA: 3093, TPV: 8.36, RA: 98.00, RV: 64.71, TP: 90.45, TT: 0.15, TS: 0.01},
	"mem_ctrl":     {Circuit: "mem_ctrl", NS: 1065, NG: 10327, NB: 10, NP: 3016, NPT: 62, TA: 195, TV: 3.15, TPA: 27415, TPV: 9.09, RA: 99.29, RV: 65.35, TP: 622.63, TT: 0.36, TS: 0.02},
	"usb_funct":    {Circuit: "usb_funct", NS: 1746, NG: 14381, NB: 17, NP: 482, NPT: 32, TA: 114, TV: 3.56, TPA: 4569, TPV: 9.48, RA: 97.51, RV: 62.45, TP: 118.48, TT: 0.17, TS: 0.02},
	"ac97_ctrl":    {Circuit: "ac97_ctrl", NS: 2199, NG: 9208, NB: 21, NP: 780, NPT: 78, TA: 288, TV: 3.69, TPA: 7340, TPV: 9.41, RA: 96.08, RV: 60.79, TP: 81.63, TT: 0.30, TS: 0.01},
	"pci_bridge32": {Circuit: "pci_bridge32", NS: 3321, NG: 12494, NB: 32, NP: 3472, NPT: 84, TA: 298, TV: 3.55, TPA: 29061, TPV: 8.37, RA: 98.97, RV: 57.59, TP: 749.31, TT: 1.19, TS: 1.59},
}

// PaperTable2 holds the paper's Table 2 (yield percentages).
var PaperTable2 = map[string]Table2Row{
	"s9234":        {Circuit: "s9234", T1YI: 77.11, T1YT: 75.80, T1YR: 1.31, T2YI: 95.94, T2YT: 95.61, T2YR: 0.33},
	"s13207":       {Circuit: "s13207", T1YI: 72.37, T1YT: 72.09, T1YR: 0.28, T2YI: 96.42, T2YT: 96.03, T2YR: 0.39},
	"s15850":       {Circuit: "s15850", T1YI: 69.34, T1YT: 69.09, T1YR: 0.25, T2YI: 94.33, T2YT: 94.10, T2YR: 0.23},
	"s38584":       {Circuit: "s38584", T1YI: 85.97, T1YT: 85.01, T1YR: 0.96, T2YI: 98.48, T2YT: 97.10, T2YR: 1.38},
	"mem_ctrl":     {Circuit: "mem_ctrl", T1YI: 67.11, T1YT: 64.98, T1YR: 2.13, T2YI: 94.58, T2YT: 92.40, T2YR: 2.18},
	"usb_funct":    {Circuit: "usb_funct", T1YI: 71.77, T1YT: 69.40, T1YR: 2.37, T2YI: 96.57, T2YT: 94.60, T2YR: 1.97},
	"ac97_ctrl":    {Circuit: "ac97_ctrl", T1YI: 75.05, T1YT: 73.40, T1YR: 1.65, T2YI: 94.92, T2YT: 93.09, T2YR: 1.83},
	"pci_bridge32": {Circuit: "pci_bridge32", T1YI: 73.66, T1YT: 71.50, T1YR: 2.16, T2YI: 96.76, T2YT: 95.71, T2YR: 1.05},
}

// PaperBaseYields are the unbuffered yields the paper calibrates T1/T2 to.
const (
	PaperBaseYieldT1 = 50.0
	PaperBaseYieldT2 = 84.13
)
