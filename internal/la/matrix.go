// Package la provides the dense linear algebra kernels used throughout the
// EffiTest reproduction: matrices, Cholesky and LU factorizations, SPD
// inversion and a Jacobi eigensolver for symmetric matrices.
//
// The package is deliberately small and allocation-conscious: all matrices
// are dense, row-major float64, and the sizes that occur in EffiTest
// (covariance matrices over at most a few thousand paths, simplex tableaus
// over a few hundred variables) fit a straightforward dense representation.
package la

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewMatrixFrom(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("la: ragged row %d: len %d != %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add increments element (r, c) by v.
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a copy of row r.
func (m *Matrix) Row(r int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[r*m.Cols:(r+1)*m.Cols])
	return out
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, c)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("la: mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("la: mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, a := range row {
			s += a * v[c]
		}
		out[r] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddM returns m + b as a new matrix.
func (m *Matrix) AddM(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: add shape mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// SubM returns m - b as a new matrix.
func (m *Matrix) SubM(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: sub shape mismatch")
	}
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// IsSymmetric reports whether m is symmetric within tolerance tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := r + 1; c < m.Cols; c++ {
			if math.Abs(m.At(r, c)-m.At(c, r)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and b. The matrices must have the same shape.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: diff shape mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Submatrix returns the matrix formed by the given row and column index sets.
func (m *Matrix) Submatrix(rows, cols []int) *Matrix {
	out := NewMatrix(len(rows), len(cols))
	for i, r := range rows {
		for j, c := range cols {
			out.Set(i, j, m.At(r, c))
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("la: dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: axpy length mismatch")
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}
