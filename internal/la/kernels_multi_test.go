package la

import (
	"math/rand"
	"testing"
)

// batchWidths is the K axis the multi-RHS contracts are pinned across: the
// degenerate single column, tiny blocks, a prime width and a cache-line
// spanning one.
var batchWidths = []int{1, 2, 7, 64}

func randomLower(r *rand.Rand, n int) *Matrix {
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < i; k++ {
			l.Set(i, k, r.NormFloat64())
		}
		l.Set(i, i, 1+r.Float64()) // well away from zero
	}
	return l
}

func randomBlock(r *rand.Rand, rows, cols int) *Matrix {
	b := NewMatrix(rows, cols)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	return b
}

// column extracts column j of a block as a vector.
func column(b *Matrix, j int) []float64 {
	out := make([]float64, b.Rows)
	for i := range out {
		out[i] = b.At(i, j)
	}
	return out
}

// requireColumnsEqual pins every column of got bitwise against the vector
// kernel's result for that column.
func requireColumnsEqual(t *testing.T, what string, got *Matrix, vector func(j int) []float64) {
	t.Helper()
	for j := 0; j < got.Cols; j++ {
		want := vector(j)
		for i := range want {
			if got.At(i, j) != want[i] {
				t.Fatalf("%s: column %d row %d: multi %v != vector %v", what, j, i, got.At(i, j), want[i])
			}
		}
	}
}

func TestSolveLowerMultiMatchesVector(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 17} {
		l := randomLower(r, n)
		for _, k := range batchWidths {
			b := randomBlock(r, n, k)
			dst := NewMatrix(n, k)
			SolveLowerMultiTo(dst, l, b)
			requireColumnsEqual(t, "solve-lower", dst, func(j int) []float64 {
				x := make([]float64, n)
				SolveLowerTo(x, l, column(b, j))
				return x
			})

			// In-place: dst aliasing b must give the same bits.
			alias := b.Clone()
			SolveLowerMultiTo(alias, l, alias)
			for i := range alias.Data {
				if alias.Data[i] != dst.Data[i] {
					t.Fatalf("n=%d k=%d: in-place solve diverges at %d", n, k, i)
				}
			}
		}
	}
}

func TestSolveUpperTMultiMatchesVector(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 3, 17} {
		l := randomLower(r, n)
		for _, k := range batchWidths {
			b := randomBlock(r, n, k)
			dst := NewMatrix(n, k)
			SolveUpperTMultiTo(dst, l, b)
			requireColumnsEqual(t, "solve-upperT", dst, func(j int) []float64 {
				x := make([]float64, n)
				SolveUpperTTo(x, l, column(b, j))
				return x
			})

			alias := b.Clone()
			SolveUpperTMultiTo(alias, l, alias)
			for i := range alias.Data {
				if alias.Data[i] != dst.Data[i] {
					t.Fatalf("n=%d k=%d: in-place solve diverges at %d", n, k, i)
				}
			}
		}
	}
}

func TestSolveCholeskyMultiMatchesVector(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 12
	l := randomLower(r, n)
	for _, k := range batchWidths {
		b := randomBlock(r, n, k)
		dst := b.Clone()
		SolveCholeskyMultiTo(dst, l, dst)
		requireColumnsEqual(t, "solve-cholesky", dst, func(j int) []float64 {
			x := column(b, j)
			SolveCholeskyTo(x, l, x)
			return x
		})
	}
}

func TestMulMatMatchesVector(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for _, shape := range [][2]int{{1, 1}, {4, 6}, {9, 3}} {
		rows, inner := shape[0], shape[1]
		m := randomBlock(r, rows, inner)
		for _, k := range batchWidths {
			b := randomBlock(r, inner, k)
			dst := NewMatrix(rows, k)
			MulMatTo(dst, m, b)
			requireColumnsEqual(t, "mulmat", dst, func(j int) []float64 {
				x := make([]float64, rows)
				MulVecTo(x, m, column(b, j))
				return x
			})
		}
	}
}

func TestMultiKernelShapePanics(t *testing.T) {
	l := randomLower(rand.New(rand.NewSource(11)), 4)
	bad := NewMatrix(3, 2)
	for name, fn := range map[string]func(){
		"mulmat":      func() { MulMatTo(NewMatrix(4, 2), l, bad) },
		"lower":       func() { SolveLowerMultiTo(NewMatrix(4, 2), l, bad) },
		"upperT":      func() { SolveUpperTMultiTo(NewMatrix(4, 2), l, bad) },
		"mulmat-dst":  func() { MulMatTo(NewMatrix(3, 2), l, NewMatrix(4, 2)) },
		"lower-dst":   func() { SolveLowerMultiTo(NewMatrix(4, 3), l, NewMatrix(4, 2)) },
		"take-matrix": func() { new(Workspace).TakeMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: shape mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTakeMatrixAliasesArena(t *testing.T) {
	var ws Workspace
	m := ws.TakeMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	ws.Reset()
	again := ws.TakeMatrix(3, 4)
	if &again.Data[0] != &m.Data[0] {
		t.Fatal("TakeMatrix after Reset did not reuse the arena")
	}
}
