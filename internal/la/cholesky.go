package la

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a pivot
// that is not positive, i.e. the input is not symmetric positive definite.
var ErrNotSPD = errors.New("la: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L with A = L*Lᵀ.
// A must be symmetric positive definite; only the lower triangle is read.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("la: cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// CholeskyRidge factorizes A + ridge*I, retrying with geometrically growing
// ridge until the factorization succeeds or maxTries is exhausted. It returns
// the factor and the ridge actually used. This is the standard remedy for
// covariance matrices that are PSD-but-singular due to perfectly correlated
// paths (common in EffiTest's clustered path sets).
func CholeskyRidge(a *Matrix, ridge float64, maxTries int) (*Matrix, float64, error) {
	if ridge <= 0 {
		ridge = 1e-12
	}
	// First try without any ridge at all.
	if l, err := Cholesky(a); err == nil {
		return l, 0, nil
	}
	cur := ridge
	for try := 0; try < maxTries; try++ {
		b := a.Clone()
		for i := 0; i < b.Rows; i++ {
			b.Add(i, i, cur)
		}
		if l, err := Cholesky(b); err == nil {
			return l, cur, nil
		}
		cur *= 10
	}
	return nil, 0, ErrNotSPD
}

// SolveLower solves L*y = b for y where L is lower triangular with nonzero
// diagonal.
func SolveLower(l *Matrix, b []float64) []float64 {
	n := l.Rows
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	return y
}

// SolveUpperT solves Lᵀ*x = y for x given the lower-triangular L.
func SolveUpperT(l *Matrix, y []float64) []float64 {
	n := l.Rows
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// CholSolve solves A*x = b given the Cholesky factor L of A.
func CholSolve(l *Matrix, b []float64) []float64 {
	return SolveUpperT(l, SolveLower(l, b))
}

// SPDInverse inverts a symmetric positive definite matrix via Cholesky.
func SPDInverse(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		x := CholSolve(l, e)
		for r := 0; r < n; r++ {
			inv.Set(r, c, x[r])
		}
	}
	// Symmetrize to wash out round-off.
	for r := 0; r < n; r++ {
		for c := r + 1; c < n; c++ {
			v := 0.5 * (inv.At(r, c) + inv.At(c, r))
			inv.Set(r, c, v)
			inv.Set(c, r, v)
		}
	}
	return inv, nil
}
