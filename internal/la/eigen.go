package la

import (
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matrix of corresponding eigenvectors as columns: A = V * diag(vals) * Vᵀ.
//
// Jacobi is O(n³) per sweep but unconditionally stable and exact enough for
// the covariance matrices EffiTest decomposes with PCA (up to a few thousand
// paths per group in the worst case, typically tens).
func EigenSym(a *Matrix, tol float64) (vals []float64, vecs *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("la: eigensym requires a square matrix")
	}
	if !a.IsSymmetric(1e-8 * (1 + maxAbs(a))) {
		return nil, nil, errors.New("la: eigensym requires a symmetric matrix")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < tol*(1+frobNorm(m)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m.At(i, i)
	}
	// Sort by descending eigenvalue, permuting eigenvector columns along.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies a Jacobi rotation on rows/cols p,q of m and accumulates the
// rotation into v.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for i := 0; i < n; i++ {
		mpi, mqi := m.At(p, i), m.At(q, i)
		m.Set(p, i, c*mpi-s*mqi)
		m.Set(q, i, s*mpi+c*mqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	s := 0.0
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if r != c {
				s += m.At(r, c) * m.At(r, c)
			}
		}
	}
	return math.Sqrt(s)
}

func frobNorm(m *Matrix) float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func maxAbs(m *Matrix) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}
