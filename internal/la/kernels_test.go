package la

import (
	"math/rand"
	"testing"
)

func randSPD(r *rand.Rand, n int) *Matrix {
	g := NewMatrix(n, n)
	for i := range g.Data {
		g.Data[i] = r.NormFloat64()
	}
	a := g.Mul(g.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // well-conditioned
	}
	return a
}

// TestKernelsBitIdentical pins the contract the conditional-prediction fast
// path relies on: the *To kernels produce bit-for-bit the same floats as
// their allocating counterparts, including when solving fully in place.
func TestKernelsBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		a := randSPD(r, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}

		wantY := SolveLower(l, b)
		gotY := make([]float64, n)
		SolveLowerTo(gotY, l, b)
		wantX := SolveUpperT(l, wantY)
		gotX := make([]float64, n)
		SolveUpperTTo(gotX, l, wantY)
		wantC := CholSolve(l, b)
		inPlace := append([]float64{}, b...)
		SolveCholeskyTo(inPlace, l, inPlace)
		for i := 0; i < n; i++ {
			if gotY[i] != wantY[i] {
				t.Fatalf("n=%d: SolveLowerTo[%d] = %v, want %v", n, i, gotY[i], wantY[i])
			}
			if gotX[i] != wantX[i] {
				t.Fatalf("n=%d: SolveUpperTTo[%d] = %v, want %v", n, i, gotX[i], wantX[i])
			}
			if inPlace[i] != wantC[i] {
				t.Fatalf("n=%d: SolveCholeskyTo in place [%d] = %v, want %v", n, i, inPlace[i], wantC[i])
			}
		}

		m := NewMatrix(n, n+3)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		v := make([]float64, n+3)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		wantMV := m.MulVec(v)
		gotMV := make([]float64, n)
		MulVecTo(gotMV, m, v)
		for i := range wantMV {
			if gotMV[i] != wantMV[i] {
				t.Fatalf("n=%d: MulVecTo[%d] = %v, want %v", n, i, gotMV[i], wantMV[i])
			}
		}
	}
}

func TestRowView(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	rv := m.RowView(1)
	if rv[0] != 3 || rv[1] != 4 {
		t.Fatalf("RowView(1) = %v", rv)
	}
	rv[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("RowView must alias matrix storage")
	}
}

// TestWorkspaceReuse asserts the arena contract: slices taken before a grow
// stay valid, and after warm-up Take/Reset cycles never allocate.
func TestWorkspaceReuse(t *testing.T) {
	var ws Workspace
	a := ws.Take(4)
	for i := range a {
		a[i] = float64(i)
	}
	b := ws.Take(100) // forces growth; a must stay intact
	_ = b
	for i := range a {
		if a[i] != float64(i) {
			t.Fatalf("slice taken before growth was clobbered: %v", a)
		}
	}

	ws.Reset()
	ws.Require(128)
	allocs := testing.AllocsPerRun(50, func() {
		ws.Reset()
		x := ws.Take(64)
		y := ws.Take(64)
		x[0], y[0] = 1, 2
	})
	if allocs != 0 {
		t.Fatalf("warm workspace Take allocated %.1f times per run", allocs)
	}
}
