package la

import "fmt"

// This file holds the allocation-free kernel layer: in-place variants of the
// package's matrix-vector operations plus a reusable Workspace arena. The
// kernels perform exactly the same floating-point operations in exactly the
// same order as their allocating counterparts (MulVec, SolveLower,
// SolveUpperT, CholSolve), so switching a call site to the *To form never
// changes a result bit — only where the output lands.

// Workspace is a reusable arena of float64 scratch for the in-place kernels.
// A hot loop takes slices per iteration and calls Reset between iterations;
// after the arena has grown to its steady-state size, Take never allocates.
// A Workspace is not safe for concurrent use — give each worker its own.
type Workspace struct {
	buf  []float64
	used int
}

// Reset recycles the arena: every slice previously returned by Take remains
// valid (it aliases the old backing array) but the capacity is reusable.
func (w *Workspace) Reset() { w.used = 0 }

// Require grows the arena so that Takes totalling n floats will not
// allocate. It does not disturb slices already taken.
func (w *Workspace) Require(n int) {
	if w.used+n > len(w.buf) {
		w.grow(n)
	}
}

// Take returns a length-n scratch slice from the arena. The contents are
// unspecified — callers must fully overwrite before reading. Taking beyond
// the current capacity allocates a larger backing array (slices taken
// earlier stay valid on the old one); pre-size with Require to keep the
// steady state allocation-free.
func (w *Workspace) Take(n int) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("la: workspace take %d", n))
	}
	if w.used+n > len(w.buf) {
		w.grow(n)
	}
	s := w.buf[w.used : w.used+n : w.used+n]
	w.used += n
	return s
}

func (w *Workspace) grow(n int) {
	newLen := 2 * len(w.buf)
	if newLen < w.used+n {
		newLen = w.used + n
	}
	// Slices already taken keep aliasing the old array; the region below
	// w.used in the new array is simply unused until the next Reset.
	w.buf = make([]float64, newLen)
}

// RowView returns row r as a slice aliasing the matrix storage — the
// zero-copy counterpart of Row. The caller must not grow it.
func (m *Matrix) RowView(r int) []float64 {
	return m.Data[r*m.Cols : (r+1)*m.Cols : (r+1)*m.Cols]
}

// MulVecTo computes dst = m*v without allocating. dst must have length
// m.Rows and must not alias v. Bit-identical to MulVec.
func MulVecTo(dst []float64, m *Matrix, v []float64) {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("la: mulvec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("la: mulvec dst length %d != %d rows", len(dst), m.Rows))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, a := range row {
			s += a * v[c]
		}
		dst[r] = s
	}
}

// SolveLowerTo solves L*y = b into dst where L is lower triangular with
// nonzero diagonal. dst may alias b (forward substitution reads b[i] before
// writing dst[i]). Bit-identical to SolveLower.
func SolveLowerTo(dst []float64, l *Matrix, b []float64) {
	n := l.Rows
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * dst[k]
		}
		dst[i] = s / l.At(i, i)
	}
}

// SolveUpperTTo solves Lᵀ*x = y into dst given the lower-triangular L. dst
// may alias y (back substitution reads y[i] before writing dst[i]).
// Bit-identical to SolveUpperT.
func SolveUpperTTo(dst []float64, l *Matrix, y []float64) {
	n := l.Rows
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * dst[k]
		}
		dst[i] = s / l.At(i, i)
	}
}

// SolveCholeskyTo solves A*x = b into dst given the Cholesky factor L of A,
// without allocating. dst may alias b — the common fully-in-place call is
// SolveCholeskyTo(x, l, x). Bit-identical to CholSolve.
func SolveCholeskyTo(dst []float64, l *Matrix, b []float64) {
	SolveLowerTo(dst, l, b)
	SolveUpperTTo(dst, l, dst)
}
