package la

import (
	"math/rand"
	"testing"
)

func benchSPD(n int) *Matrix {
	rng := rand.New(rand.NewSource(1))
	return randomSPD(rng, n)
}

func BenchmarkCholesky64(b *testing.B) {
	a := benchSPD(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPDInverse64(b *testing.B) {
	a := benchSPD(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SPDInverse(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym64(b *testing.B) {
	a := benchSPD(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randomMatrix(rng, 64, 64)
	y := randomMatrix(rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}
