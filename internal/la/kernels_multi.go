package la

import "fmt"

// This file holds the multi-RHS (TRSM-shaped) kernel layer: the K-column
// counterparts of MulVecTo / SolveLowerTo / SolveUpperTTo / SolveCholeskyTo.
// An n×K right-hand-side block batches K independent systems that share one
// factor into a single kernel call, so the factor streams through the cache
// once per call instead of once per system.
//
// Contract shared by every kernel here: column j of the result is computed
// with exactly the same floating-point operations, in exactly the same
// order, as the corresponding vector kernel applied to column j alone — so
// batching never changes a result bit, only where the arithmetic happens.
// RHS blocks are ordinary row-major Matrix values: row i holds element i of
// all K systems contiguously, which is what keeps the inner per-column loops
// unit-stride.

// TakeMatrix returns a rows×cols matrix whose storage is arena scratch taken
// from the workspace (rows*cols floats). Like Take, the contents are
// unspecified and the matrix stays valid across Reset until the arena is
// re-taken.
func (w *Workspace) TakeMatrix(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: workspace matrix %dx%d", rows, cols))
	}
	return Matrix{Rows: rows, Cols: cols, Data: w.Take(rows * cols)}
}

// MulMatTo computes dst = m*b without allocating, where b is a K-column RHS
// block (m.Cols×K) and dst is m.Rows×K. dst must not alias b or m. Column j
// of dst is bit-identical to MulVecTo(dst_j, m, b_j).
func MulMatTo(dst, m, b *Matrix) {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("la: mulmat shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != m.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("la: mulmat dst %dx%d, want %dx%d", dst.Rows, dst.Cols, m.Rows, b.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		out := dst.RowView(r)
		for j := range out {
			out[j] = 0
		}
		// Accumulate a*b[c] in ascending c for every column at once: per
		// column this is the exact operation sequence of MulVecTo.
		for c, a := range row {
			brow := b.RowView(c)
			for j, v := range brow {
				out[j] += a * v
			}
		}
	}
}

// SolveLowerMultiTo solves L*Y = B column-by-column into dst, where L is
// lower triangular with nonzero diagonal and B is an n×K RHS block. dst may
// alias b (forward substitution reads row i before writing it). Column j is
// bit-identical to SolveLowerTo on column j.
func SolveLowerMultiTo(dst, l, b *Matrix) {
	n := l.Rows
	if b.Rows != n || dst.Rows != n || dst.Cols != b.Cols {
		panic(fmt.Sprintf("la: trsm-lower shape mismatch L %dx%d, B %dx%d, dst %dx%d",
			l.Rows, l.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < n; i++ {
		out := dst.RowView(i)
		if dst != b {
			copy(out, b.RowView(i))
		}
		lrow := l.Data[i*l.Cols : i*l.Cols+i]
		for k, a := range lrow {
			prev := dst.RowView(k)
			for j, v := range prev {
				out[j] -= a * v
			}
		}
		d := l.At(i, i)
		for j := range out {
			out[j] /= d
		}
	}
}

// SolveUpperTMultiTo solves Lᵀ*X = Y column-by-column into dst given the
// lower-triangular L, over an n×K RHS block. dst may alias b. Column j is
// bit-identical to SolveUpperTTo on column j.
func SolveUpperTMultiTo(dst, l, b *Matrix) {
	n := l.Rows
	if b.Rows != n || dst.Rows != n || dst.Cols != b.Cols {
		panic(fmt.Sprintf("la: trsm-upperT shape mismatch L %dx%d, B %dx%d, dst %dx%d",
			l.Rows, l.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := n - 1; i >= 0; i-- {
		out := dst.RowView(i)
		if dst != b {
			copy(out, b.RowView(i))
		}
		for k := i + 1; k < n; k++ {
			a := l.At(k, i)
			prev := dst.RowView(k)
			for j, v := range prev {
				out[j] -= a * v
			}
		}
		d := l.At(i, i)
		for j := range out {
			out[j] /= d
		}
	}
}

// SolveCholeskyMultiTo solves A*X = B for a K-column RHS block given the
// Cholesky factor L of A, without allocating. dst may alias b — the common
// fully-in-place call is SolveCholeskyMultiTo(x, l, x). Column j is
// bit-identical to SolveCholeskyTo on column j.
func SolveCholeskyMultiTo(dst, l, b *Matrix) {
	SolveLowerMultiTo(dst, l, b)
	SolveUpperTMultiTo(dst, l, dst)
}
