package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixFrom(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
}

func TestNewMatrixFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	NewMatrixFrom([][]float64{{1, 2}, {3}})
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 5)
	i := Identity(5)
	if d := a.Mul(i).MaxAbsDiff(a); d > 1e-14 {
		t.Fatalf("A*I != A, diff %g", d)
	}
	if d := i.Mul(a).MaxAbsDiff(a); d > 1e-14 {
		t.Fatalf("I*A != A, diff %g", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, r, c)
		return a.T().T().MaxAbsDiff(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 2)
		c := randomMatrix(rng, 2, 5)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.MaxAbsDiff(right) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 4, 6)
	v := randomVec(rng, 6)
	got := a.MulVec(v)
	vm := NewMatrix(6, 1)
	copy(vm.Data, v)
	want := a.Mul(vm)
	for i := range got {
		if !almostEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestSubmatrix(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.Submatrix([]int{0, 2}, []int{1, 2})
	want := NewMatrixFrom([][]float64{{2, 3}, {8, 9}})
	if s.MaxAbsDiff(want) != 0 {
		t.Fatalf("submatrix = %v, want %v", s.Data, want.Data)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v, want [7 9]", y)
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	if got := a.AddM(b).At(1, 1); got != 12 {
		t.Fatalf("AddM = %v, want 12", got)
	}
	if got := b.SubM(a).At(0, 0); got != 4 {
		t.Fatalf("SubM = %v, want 4", got)
	}
	if got := a.Clone().Scale(3).At(1, 0); got != 9 {
		t.Fatalf("Scale = %v, want 9", got)
	}
}

func TestRowColClone(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	c := m.Col(0)
	if r[0] != 3 || r[1] != 4 || c[0] != 1 || c[1] != 3 {
		t.Fatalf("Row/Col wrong: %v %v", r, c)
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone did not copy data")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	if !s.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	n := NewMatrixFrom([][]float64{{2, 1}, {0, 2}})
	if n.IsSymmetric(1e-9) {
		t.Fatal("expected asymmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

// randomMatrix generates entries in [-1, 1).
func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// randomSPD builds A = BBᵀ + n*I which is SPD.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := randomMatrix(rng, n, n)
	a := b.Mul(b.T())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}
