package la

import (
	"errors"
	"math"
)

// ErrSingular is returned when an LU factorization meets an (effectively)
// zero pivot.
var ErrSingular = errors.New("la: matrix is singular")

// LU holds a compact LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix // L below diagonal (unit diag implied), U on and above
	piv  []int   // row permutation
	sign int     // permutation sign, for Det
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("la: LU requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax < 1e-300 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.Data[k*n : (k+1)*n]
			rp := lu.Data[p*n : (p+1)*n]
			for i := range rk {
				rk[i], rp[i] = rp[i], rk[i]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b using the factorization.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("la: LU solve length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Inverse inverts a general square matrix via LU.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		x := f.Solve(e)
		for r := 0; r < n; r++ {
			inv.Set(r, c, x[r])
		}
	}
	return inv, nil
}
