package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return l.Mul(l.T()).MaxAbsDiff(a) < 1e-9*float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestCholeskyRidgeRecoversSingular(t *testing.T) {
	// Rank-1 PSD matrix: ones.
	a := NewMatrixFrom([][]float64{{1, 1}, {1, 1}})
	l, ridge, err := CholeskyRidge(a, 1e-10, 10)
	if err != nil {
		t.Fatalf("CholeskyRidge failed: %v", err)
	}
	if ridge <= 0 {
		t.Fatalf("expected positive ridge, got %v", ridge)
	}
	if d := l.Mul(l.T()).MaxAbsDiff(a); d > 1e-4 {
		t.Fatalf("ridge factorization too far: %g", d)
	}
}

func TestCholSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		x := randomVec(rng, n)
		b := a.MulVec(x)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		got := CholSolve(l, b)
		for i := range got {
			if !almostEq(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPDInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 10; n++ {
		a := randomSPD(rng, n)
		inv, err := SPDInverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := a.Mul(inv).MaxAbsDiff(Identity(n)); d > 1e-8 {
			t.Fatalf("n=%d: A*A⁻¹ deviates from I by %g", n, d)
		}
	}
}

func TestLUSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)) // diagonally dominant => nonsingular
		}
		x := randomVec(rng, n)
		b := a.MulVec(x)
		f64, err := FactorLU(a)
		if err != nil {
			return false
		}
		got := f64.Solve(b)
		for i := range got {
			if !almostEq(got[i], x[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 6, 1e-12) {
		t.Fatalf("Det = %v, want 6", f.Det())
	}
	// Permutation sign: swap rows of identity has det -1.
	p := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	f2, err := FactorLU(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f2.Det(), -1, 1e-12) {
		t.Fatalf("Det = %v, want -1", f2.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestInverseGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 6, 6)
	for i := 0; i < 6; i++ {
		a.Add(i, i, 6)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Mul(inv).MaxAbsDiff(Identity(6)); d > 1e-9 {
		t.Fatalf("A*A⁻¹ deviates from I by %g", d)
	}
}

func TestEigenSymReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		vals, vecs, err := EigenSym(a, 0)
		if err != nil {
			return false
		}
		// Reconstruct V diag(vals) Vᵀ.
		d := NewMatrix(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		rec := vecs.Mul(d).Mul(vecs.T())
		return rec.MaxAbsDiff(a) < 1e-7*float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 7)
	_, vecs, err := EigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := vecs.T().Mul(vecs).MaxAbsDiff(Identity(7)); d > 1e-9 {
		t.Fatalf("VᵀV deviates from I by %g", d)
	}
}

func TestEigenSymDescendingPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 6)
	vals, _, err := EigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatalf("SPD matrix produced non-positive eigenvalue %v", v)
		}
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFrom([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-10) || !almostEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector should be ±(1,1)/√2.
	v0 := vecs.Col(0)
	if !almostEq(math.Abs(v0[0]), 1/math.Sqrt2, 1e-8) || !almostEq(math.Abs(v0[1]), 1/math.Sqrt2, 1e-8) {
		t.Fatalf("eigenvector = %v", v0)
	}
}

func TestEigenSymRejects(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3), 0); err == nil {
		t.Fatal("expected error for non-square")
	}
	asym := NewMatrixFrom([][]float64{{1, 5}, {0, 1}})
	if _, _, err := EigenSym(asym, 0); err == nil {
		t.Fatal("expected error for asymmetric")
	}
}
