package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

// planEqual compares the serializable state of two plans (everything except
// the circuit pointer and derived MVNs).
func planEqual(t *testing.T, a, b *Plan) {
	t.Helper()
	if !reflect.DeepEqual(a.Cfg, b.Cfg) {
		t.Fatalf("Cfg differs:\n%+v\n%+v", a.Cfg, b.Cfg)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group count %d vs %d", len(a.Groups), len(b.Groups))
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if !reflect.DeepEqual(ga.Paths, gb.Paths) || ga.Threshold != gb.Threshold ||
			ga.NumPCs != gb.NumPCs || !reflect.DeepEqual(ga.Selected, gb.Selected) {
			t.Fatalf("group %d differs", i)
		}
	}
	if !reflect.DeepEqual(a.Tested, b.Tested) || !reflect.DeepEqual(a.Filled, b.Filled) ||
		!reflect.DeepEqual(a.Batches, b.Batches) {
		t.Fatal("tested/filled/batches differ")
	}
	if !reflect.DeepEqual(a.Hold.ByPair, b.Hold.ByPair) {
		t.Fatal("hold bounds differ")
	}
	if a.PrepDuration != b.PrepDuration {
		t.Fatalf("prep duration %v vs %v", a.PrepDuration, b.PrepDuration)
	}
}

func TestPlanBinaryRoundTrip(t *testing.T) {
	c := tinyCircuit(t, 3)
	pl, err := Prepare(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := pl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &Plan{}
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	planEqual(t, pl, got)
	if got.CircuitHash() == "" {
		t.Fatal("decoded plan lost its circuit hash")
	}
	if err := got.Bind(c); err != nil {
		t.Fatal(err)
	}
	if got.Circuit != c {
		t.Fatal("Bind did not attach the circuit")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	c := tinyCircuit(t, 3)
	pl, err := Prepare(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePlanJSON(&buf, pl); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlanJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	planEqual(t, pl, got)
	if err := got.Bind(c); err != nil {
		t.Fatal(err)
	}
}

func TestPlanSaveLoadRunsIdentically(t *testing.T) {
	c := tinyCircuit(t, 3)
	cfg := DefaultConfig()
	pl, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plan.effiplan", "plan.json"} {
		path := filepath.Join(t.TempDir(), name)
		if err := SavePlan(path, pl); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadPlan(path, c)
		if err != nil {
			t.Fatal(err)
		}
		// The acceptance bar: a restored plan runs chips bit-identically to
		// the in-memory one.
		td := 1.05 * c.TNominal
		for i := 0; i < 4; i++ {
			ch := tester.SampleChip(c, 21, i)
			a, err := pl.RunChip(ch, td)
			if err != nil {
				t.Fatal(err)
			}
			b, err := loaded.RunChip(ch, td)
			if err != nil {
				t.Fatal(err)
			}
			if a.Iterations != b.Iterations || a.ScanBits != b.ScanBits ||
				a.Passed != b.Passed || a.Configured != b.Configured || a.Xi != b.Xi ||
				!reflect.DeepEqual(a.X, b.X) ||
				!reflect.DeepEqual(a.Bounds.Lo, b.Bounds.Lo) || !reflect.DeepEqual(a.Bounds.Hi, b.Bounds.Hi) {
				t.Fatalf("%s: chip %d outcome differs between in-memory and loaded plan", name, i)
			}
		}
	}
}

func TestPlanBindRejectsWrongCircuit(t *testing.T) {
	c := tinyCircuit(t, 3)
	other, err := circuit.Generate(circuit.TinyProfile("bindother", 24, 200, 3, 30), 9)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Prepare(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := pl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got := &Plan{}
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := got.Bind(other); !errors.Is(err, ErrPlanCircuitMismatch) {
		t.Fatalf("Bind(other) = %v, want ErrPlanCircuitMismatch", err)
	}
}

func TestPlanDecodeRejectsCorruption(t *testing.T) {
	c := tinyCircuit(t, 3)
	pl, err := Prepare(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := pl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(data); n += 7 {
		if err := new(Plan).UnmarshalBinary(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Version skew.
	skew := append([]byte{}, data...)
	skew[len(planMagic)] = PlanFormatVersion + 1
	if err := new(Plan).UnmarshalBinary(skew); !errors.Is(err, ErrPlanVersion) {
		t.Fatalf("version skew = %v, want ErrPlanVersion", err)
	}
	// Wrong magic.
	if err := new(Plan).UnmarshalBinary([]byte("not a plan at all")); !errors.Is(err, ErrPlanFormat) {
		t.Fatalf("bad magic = %v, want ErrPlanFormat", err)
	}
	// Trailing garbage.
	if err := new(Plan).UnmarshalBinary(append(append([]byte{}, data...), 0xFF)); !errors.Is(err, ErrPlanFormat) {
		t.Fatalf("trailing bytes = %v, want ErrPlanFormat", err)
	}
	// An out-of-range path id decodes but must fail Bind's validation.
	bad := &Plan{}
	if err := bad.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	bad.Tested[0] = c.NumPaths() + 5
	if err := bad.Bind(c); !errors.Is(err, ErrPlanFormat) {
		t.Fatalf("out-of-range path id Bind = %v, want ErrPlanFormat", err)
	}
}

func TestPlanCacheHitSkipsPrepare(t *testing.T) {
	c := tinyCircuit(t, 3)
	cfg := DefaultConfig()
	pc, err := NewPlanCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	if pl, err := pc.Get(c, cfg); err != nil || pl != nil {
		t.Fatalf("cold Get = (%v, %v), want miss", pl, err)
	}
	pl, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Put(pl); err != nil {
		t.Fatal(err)
	}

	// Warm hit, including with a different worker count (excluded from the
	// key but adopted from the live request).
	warmCfg := cfg
	warmCfg.Workers = 7
	warm, err := pc.Get(c, warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm == nil {
		t.Fatal("warm Get missed")
	}
	if warm.Cfg.Workers != 7 {
		t.Fatalf("cached plan Workers = %d, want the live request's 7", warm.Cfg.Workers)
	}
	td := 1.05 * c.TNominal
	ch := tester.SampleChip(c, 5, 0)
	a, err := pl.RunChip(ch, td)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.RunChip(ch, td)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.Passed != b.Passed || !reflect.DeepEqual(a.X, b.X) {
		t.Fatal("cached plan ran differently")
	}

	// A different config must miss.
	cfg2 := cfg
	cfg2.Eps = cfg.Eps * 2
	if pl2, err := pc.Get(c, cfg2); err != nil || pl2 != nil {
		t.Fatalf("different-config Get = (%v, %v), want miss", pl2, err)
	}
}

func TestPrepareCtxCancellation(t *testing.T) {
	c := tinyCircuit(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PrepareCtx(ctx, c, DefaultConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrepareCtx(cancelled) = %v, want context.Canceled", err)
	}
}
