package core

import "time"

// Event is a typed notification emitted by the flow as it executes. Every
// concrete event type embeds nothing and carries plain values, so metrics
// sinks can switch on the type without reaching back into live flow state.
//
// Chip fields identify the die by Chip.Index (the manufacturing index), not
// a stream position: the same chip produces the same events wherever it
// appears in a fleet.
type Event interface{ event() }

// PrepareDoneEvent fires once when the offline plan becomes available —
// freshly computed, restored from a plan cache, or supplied pre-built.
type PrepareDoneEvent struct {
	Circuit  string
	Groups   int
	Tested   int
	Batches  int
	Duration time.Duration
	CacheHit bool // the plan came from a cache or a loaded artifact
}

// BatchStartEvent fires when a chip begins measuring one test batch.
type BatchStartEvent struct {
	Chip  int // Chip.Index
	Batch int // batch position in Plan.Batches
	Paths int // paths in the batch
}

// BatchEndEvent fires when a batch's every path is resolved (or the batch
// errored; Err carries the cause).
type BatchEndEvent struct {
	Chip       int
	Batch      int
	Iterations int
	AlignTime  time.Duration
	Err        error
}

// FrequencyStepEvent fires for every tester iteration: one clock period
// applied to one batch.
type FrequencyStepEvent struct {
	Chip      int
	Batch     int
	Requested float64 // period asked of the transport (ns)
	Applied   float64 // period the transport actually produced (ns)
	Active    int     // unresolved paths the step was applied to
}

// AlignSolveEvent fires after each §3.3 alignment solve.
type AlignSolveEvent struct {
	Chip     int
	Batch    int
	Period   float64 // solved test period T (ns)
	Duration time.Duration
}

// PredictEvent fires once per chip, after §3.4's conditional prediction of
// the untested paths. Duration is the chip's share of the statistical
// prediction runtime — the component the paper folds into Tp — spent
// applying the plan's baked predictors (AlignSolveEvent durations are the
// matching Tt component). Groups and Predicted describe the baked kernel
// structure and are zero when the plan runs the naive prediction path.
type PredictEvent struct {
	Chip      int
	Groups    int // correlation groups with at least one measured path
	Predicted int // untested paths whose windows were predicted
	Duration  time.Duration
}

// ChipDoneEvent fires when one chip's online flow finishes, successfully or
// not (Err carries the per-chip failure).
type ChipDoneEvent struct {
	Chip       int
	Iterations int
	Configured bool
	Passed     bool
	Err        error
}

func (PrepareDoneEvent) event()   {}
func (BatchStartEvent) event()    {}
func (BatchEndEvent) event()      {}
func (FrequencyStepEvent) event() {}
func (AlignSolveEvent) event()    {}
func (PredictEvent) event()       {}
func (ChipDoneEvent) event()      {}

// Observer receives flow events. Chips execute on a worker pool, so Observe
// is called concurrently and must be safe for concurrent use; it runs
// inline on the hot path, so implementations should be quick (count, sample
// or enqueue — not block).
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(e).
func (f ObserverFunc) Observe(e Event) { f(e) }

// observe emits e to obs when one is configured.
func observe(obs Observer, e Event) {
	if obs != nil {
		obs.Observe(e)
	}
}
