package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

// Bounds tracks the evolving [lower, upper] delay window of every path
// (indexed by path id). Initialized to μ±3σ per the paper; frequency steps
// tighten one side per iteration.
type Bounds struct {
	Lo, Hi []float64
}

// InitBounds builds the μ±3σ starting windows for all paths of a circuit.
func InitBounds(c *circuit.Circuit) *Bounds {
	n := c.NumPaths()
	b := &Bounds{Lo: make([]float64, n), Hi: make([]float64, n)}
	for i := 0; i < n; i++ {
		mu := c.Paths[i].Max.Mean
		sd := c.Paths[i].Max.Sigma()
		b.Lo[i] = mu - 3*sd
		b.Hi[i] = mu + 3*sd
		if b.Lo[i] < 0 {
			b.Lo[i] = 0
		}
	}
	return b
}

// Width returns the current window width of path p.
func (b *Bounds) Width(p int) float64 { return b.Hi[p] - b.Lo[p] }

// LambdaFunc returns the hold bound λ for an FF pair, or -Inf when
// unconstrained.
type LambdaFunc func(from, to int) float64

// NoHoldBounds is a LambdaFunc imposing no constraints.
func NoHoldBounds(from, to int) float64 { return math.Inf(-1) }

// RunBatchTest executes Procedure 2 on one batch: repeatedly solve the
// alignment problem for a clock period and buffer values, apply one
// frequency step to the whole batch, and tighten each path's window from its
// own pass/fail bit; a path is removed once its window is narrower than ε.
//
// The measurement transport is any tester.Session — the simulated ATE, a
// trace replayer, or an instrumented wrapper; the flow only ever sees
// pass/fail bits and applied periods.
//
// It returns the number of tester iterations spent and the time spent in the
// alignment solver (the paper's Tt component). The context is checked before
// every frequency step, so cancelling it aborts a long batch promptly.
func RunBatchTest(ctx context.Context, sess tester.Session, c *circuit.Circuit, batch []int, b *Bounds, lambda LambdaFunc, cfg Config) (int, time.Duration, error) {
	return runBatchTest(ctx, sess, c, batch, b, lambda, cfg, nil, 0, 0, &chipScratch{})
}

// runBatchTest is RunBatchTest with observer plumbing (chip is the die
// index and batchIdx the batch's position in the plan, both only used to
// tag events) and a caller-owned scratch: the items, rank and active
// buffers the loop refills every frequency step live there, so a warm
// scratch makes the bookkeeping of the inner loop allocation-free.
func runBatchTest(ctx context.Context, sess tester.Session, c *circuit.Circuit, batch []int, b *Bounds, lambda LambdaFunc, cfg Config, obs Observer, chip, batchIdx int, scr *chipScratch) (int, time.Duration, error) {
	active := scr.active[:0]
	for _, p := range batch {
		if b.Width(p) >= cfg.Eps {
			active = append(active, p)
		}
	}
	scr.active = active[:0] // keep a grown backing array for the next batch
	iters := 0
	var alignDur time.Duration
	maxIters := cfg.MaxIterPerPath * len(batch)
	if maxIters == 0 {
		maxIters = 64 * len(batch)
	}
	var prevX []float64

	for len(active) > 0 {
		if err := ctx.Err(); err != nil {
			return iters, alignDur, err
		}
		if iters >= maxIters {
			return iters, alignDur, fmt.Errorf("core: batch did not converge in %d iterations", maxIters)
		}
		items := scr.items[:0]
		for _, p := range active {
			pt := &c.Paths[p]
			items = append(items, alignItem{
				path: p, from: pt.From, to: pt.To,
				lo: b.Lo[p], hi: b.Hi[p],
				lambda: lambda(pt.From, pt.To),
			})
		}
		scr.items = items[:0]
		scr.order = assignWeightsInto(items, cfg.WeightK0, cfg.WeightKd, scr.order)

		start := time.Now()
		res, err := alignSolve(c, items, prevX, cfg, &scr.al)
		solveDur := time.Since(start)
		alignDur += solveDur
		if err != nil {
			return iters, alignDur, err
		}
		if obs != nil {
			obs.Observe(AlignSolveEvent{Chip: chip, Batch: batchIdx, Period: res.T, Duration: solveDur})
		}
		prevX = res.X

		applied, pass, err := sess.Step(res.T, res.X, active)
		if err != nil {
			return iters, alignDur, err
		}
		iters++
		if obs != nil {
			obs.Observe(FrequencyStepEvent{Chip: chip, Batch: batchIdx, Requested: res.T, Applied: applied, Active: len(active)})
		}

		progressed := false
		next := active[:0]
		for i, p := range active {
			pt := &c.Paths[p]
			tTilde := applied - res.X[pt.From] + res.X[pt.To]
			if pass[i] {
				if tTilde < b.Hi[p] {
					b.Hi[p] = tTilde
					progressed = true
				}
			} else {
				if tTilde > b.Lo[p] {
					b.Lo[p] = tTilde
					progressed = true
				}
			}
			if b.Width(p) >= cfg.Eps {
				next = append(next, p)
			}
		}
		active = next

		if !progressed && len(active) > 0 {
			// Alignment could not place T inside any window (e.g. disjoint
			// ranges beyond buffer reach, Figure 6e). Bisect the highest
			// priority path alone to guarantee progress.
			p := active[0]
			pt := &c.Paths[p]
			tSolo := (b.Lo[p]+b.Hi[p])/2 + res.X[pt.From] - res.X[pt.To]
			if tSolo < 0 {
				tSolo = 0
			}
			appliedSolo, passSolo, err := sess.Step(tSolo, res.X, []int{p})
			if err != nil {
				return iters, alignDur, err
			}
			iters++
			if obs != nil {
				obs.Observe(FrequencyStepEvent{Chip: chip, Batch: batchIdx, Requested: tSolo, Applied: appliedSolo, Active: 1})
			}
			tt := appliedSolo - res.X[pt.From] + res.X[pt.To]
			if passSolo[0] {
				if tt < b.Hi[p] {
					b.Hi[p] = tt
				}
			} else {
				if tt > b.Lo[p] {
					b.Lo[p] = tt
				}
			}
			if b.Width(p) < cfg.Eps {
				nn := active[:0]
				for _, q := range active {
					if q != p {
						nn = append(nn, q)
					}
				}
				active = nn
			}
		}
	}
	return iters, alignDur, nil
}
