package core

import (
	"context"
	"testing"

	"effitest/internal/tester"
)

// batchTestWidths is the K axis the batched prediction path is pinned
// across, matching the multi-RHS kernel tests in internal/la.
var batchTestWidths = []int{1, 2, 7, 64}

// measuredBounds runs n chips and returns copies of their measured bounds,
// ready to be re-predicted through either path.
func measuredBounds(t *testing.T, pl *Plan, n int) []*Bounds {
	t.Helper()
	c := pl.Circuit
	chips := make([]*tester.Chip, n)
	for i := range chips {
		chips[i] = tester.SampleChip(c, 31, i)
	}
	outs, err := pl.RunChipsAll(context.Background(), chips, c.TNominal, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs := make([]*Bounds, n)
	for i, out := range outs {
		b := InitBounds(c)
		copy(b.Lo, out.Bounds.Lo)
		copy(b.Hi, out.Bounds.Hi)
		bs[i] = b
	}
	return bs
}

func cloneBounds(c *Bounds, pl *Plan) *Bounds {
	b := InitBounds(pl.Circuit)
	copy(b.Lo, c.Lo)
	copy(b.Hi, c.Hi)
	return b
}

// TestPredictIntoBatchMatchesSequential pins the batched multi-RHS
// prediction path bitwise against the per-chip vector path across every
// batch width, including the degenerate K=1 and a width far beyond the
// auto default.
func TestPredictIntoBatchMatchesSequential(t *testing.T) {
	_, pl := kernelTestPlan(t)
	maxK := batchTestWidths[len(batchTestWidths)-1]
	src := measuredBounds(t, pl, maxK)

	scr := pl.getScratch()
	defer pl.putScratch(scr)
	for _, k := range batchTestWidths {
		want := make([]*Bounds, k)
		for i := 0; i < k; i++ {
			want[i] = cloneBounds(src[i], pl)
			pl.kernels.predictBounds(want[i], &scr.ws)
		}
		got := make([]*Bounds, k)
		for i := 0; i < k; i++ {
			got[i] = cloneBounds(src[i], pl)
		}
		pl.kernels.predictInto(got, scr, 1)
		for i := 0; i < k; i++ {
			for p := range want[i].Lo {
				if got[i].Lo[p] != want[i].Lo[p] || got[i].Hi[p] != want[i].Hi[p] {
					t.Fatalf("k=%d chip %d path %d: batch [%v, %v] != sequential [%v, %v]",
						k, i, p, got[i].Lo[p], got[i].Hi[p], want[i].Lo[p], want[i].Hi[p])
				}
			}
		}
	}
}

// TestPredictIntoParallelMatchesSequential pins the within-chip
// group-parallel sweep bitwise against the sequential one: groups partition
// the path set, so fan-out must never change a bit, at any worker count.
func TestPredictIntoParallelMatchesSequential(t *testing.T) {
	_, pl := kernelTestPlan(t)
	src := measuredBounds(t, pl, 7)

	scr := pl.getScratch()
	defer pl.putScratch(scr)
	want := make([]*Bounds, len(src))
	for i := range src {
		want[i] = cloneBounds(src[i], pl)
	}
	pl.kernels.predictInto(want, scr, 1)

	for _, workers := range []int{2, 8} {
		got := make([]*Bounds, len(src))
		for i := range src {
			got[i] = cloneBounds(src[i], pl)
		}
		pl.kernels.predictInto(got, scr, workers)
		for i := range got {
			for p := range want[i].Lo {
				if got[i].Lo[p] != want[i].Lo[p] || got[i].Hi[p] != want[i].Hi[p] {
					t.Fatalf("workers=%d chip %d path %d: parallel [%v, %v] != sequential [%v, %v]",
						workers, i, p, got[i].Lo[p], got[i].Hi[p], want[i].Lo[p], want[i].Hi[p])
				}
			}
		}
	}
}

// TestPredictIntoBatchZeroAlloc asserts the sequential batched prediction
// path performs zero heap allocations once the worker scratch is warm — the
// batch scratch blocks live in the same arena as the vector path's.
func TestPredictIntoBatchZeroAlloc(t *testing.T) {
	_, pl := kernelTestPlan(t)
	bs := measuredBounds(t, pl, 8)

	scr := pl.getScratch()
	defer pl.putScratch(scr)
	pl.kernels.predictInto(bs, scr, 1) // warm-up: grows the arena to the batch high-water mark
	allocs := testing.AllocsPerRun(100, func() {
		pl.kernels.predictInto(bs, scr, 1)
	})
	if allocs != 0 {
		t.Fatalf("batched prediction allocated %.1f times per run after warm-up", allocs)
	}
}

// TestBindLazyKernelBake asserts Bind defers the per-group Cholesky bake:
// a warm plan load must do no eager kernel work, the first chip run must
// bake exactly once, and the lazily baked plan must match the eagerly
// prepared one bitwise.
func TestBindLazyKernelBake(t *testing.T) {
	c, eager := kernelTestPlan(t)
	data, err := eager.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pl, err := DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Bind(c); err != nil {
		t.Fatal(err)
	}
	if pl.kernels != nil || pl.bakedKernels() != nil {
		t.Fatal("Bind baked prediction kernels eagerly; the bake must defer to first use")
	}
	if pl.lazy == nil {
		t.Fatal("Bind installed no lazy kernel state")
	}

	ch := tester.SampleChip(c, 9, 4)
	want, err := eager.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}
	if pl.bakedKernels() == nil {
		t.Fatal("first chip run did not bake the kernels")
	}
	if got.Iterations != want.Iterations || got.Passed != want.Passed || got.Xi != want.Xi {
		t.Fatalf("lazily bound plan diverges: (%d, %v, %v) vs (%d, %v, %v)",
			got.Iterations, got.Passed, got.Xi, want.Iterations, want.Passed, want.Xi)
	}
	for p := range want.Bounds.Lo {
		if got.Bounds.Lo[p] != want.Bounds.Lo[p] || got.Bounds.Hi[p] != want.Bounds.Hi[p] {
			t.Fatalf("path %d: lazily bound bounds diverge", p)
		}
	}
}

// TestResolvePredictBatch pins the auto batch-width policy.
func TestResolvePredictBatch(t *testing.T) {
	pl := &Plan{}
	cases := []struct {
		cfg  int // Cfg.PredictBatch
		n, w int // population (−1 = unbounded), workers
		want int
	}{
		{0, 100, 4, defaultPredictBatch}, // auto, plenty of chips
		{0, 100, 100, 1},                 // one chip per worker: nothing to batch
		{0, 6, 4, 2},                     // small fleet: even share caps the width
		{0, -1, 4, 1},                    // unbounded source: auto never batches
		{3, -1, 4, 3},                    // unbounded source: explicit width honored
		{1, 100, 4, 1},                   // explicitly disabled
		{16, 100, 4, 16},                 // explicit width beyond auto
		{16, 8, 4, 2},                    // explicit width still capped by the share
	}
	for _, tc := range cases {
		pl.Cfg.PredictBatch = tc.cfg
		if got := pl.resolvePredictBatch(tc.n, tc.w); got != tc.want {
			t.Errorf("resolvePredictBatch(cfg=%d, n=%d, w=%d) = %d, want %d",
				tc.cfg, tc.n, tc.w, got, tc.want)
		}
	}
}
