package core

import (
	"context"
	"math"
	"testing"

	"effitest/internal/tester"
)

// TestAlignModesProduceSameMeasurements verifies that on a whole-chip run,
// the default heuristic, the fast MILP and the paper big-M ILP all measure
// the same delays (within tester resolution) even if they pick different
// intermediate buffer values: the measured windows must all bracket the same
// truth with the same ε.
func TestAlignModesProduceSameMeasurements(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-ILP ablation (minutes under -race) skipped in -short mode")
	}
	c := tinyCircuit(t, 9)
	ch := tester.SampleChip(c, 17, 0)
	modes := []AlignMode{AlignHeuristic, AlignFastMILP, AlignPaperILP}
	// The big-M ILP costs seconds per batch; two batches suffice to compare
	// measured values across solvers.
	allBatches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	if len(allBatches) > 2 {
		allBatches = allBatches[:2]
	}
	var measured []int
	for _, b := range allBatches {
		measured = append(measured, b...)
	}
	results := make([]*Bounds, len(modes))
	for mi, mode := range modes {
		cfg := DefaultConfig()
		cfg.AlignMode = mode
		b := InitBounds(c)
		ate := tester.NewATE(ch, cfg.TesterResolution)
		for _, batch := range allBatches {
			if _, _, err := RunBatchTest(context.Background(), ate, c, batch, b, NoHoldBounds, cfg); err != nil {
				t.Fatalf("mode %v: %v", mode, err)
			}
		}
		results[mi] = b
	}
	cfg := DefaultConfig()
	for _, p := range measured {
		for mi := range modes {
			if w := results[mi].Hi[p] - results[mi].Lo[p]; w >= cfg.Eps {
				t.Fatalf("mode %v: path %d unresolved (width %v)", modes[mi], p, w)
			}
			// All modes must agree on the measured delay to within
			// ε + resolution.
			d0 := (results[0].Lo[p] + results[0].Hi[p]) / 2
			di := (results[mi].Lo[p] + results[mi].Hi[p]) / 2
			if math.Abs(d0-di) > cfg.Eps+2*cfg.TesterResolution {
				t.Fatalf("path %d: mode %v measured %v, mode %v measured %v",
					p, modes[0], d0, modes[mi], di)
			}
		}
	}
}

// TestSlotFillAblation: filling empty slots increases the tested set and
// never increases the per-tested-path iteration cost dramatically.
func TestSlotFillAblation(t *testing.T) {
	c := tinyCircuit(t, 10)
	on := DefaultConfig()
	off := DefaultConfig()
	off.FillSlots = false
	planOn, err := Prepare(c, on)
	if err != nil {
		t.Fatal(err)
	}
	planOff, err := Prepare(c, off)
	if err != nil {
		t.Fatal(err)
	}
	if planOn.NumTested() < planOff.NumTested() {
		t.Fatalf("filling reduced npt: %d < %d", planOn.NumTested(), planOff.NumTested())
	}
	if len(planOff.Filled) != 0 {
		t.Fatal("no-fill plan recorded fills")
	}
	// Filled paths are measured: their final windows must be < ε.
	if len(planOn.Filled) > 0 {
		ch := tester.SampleChip(c, 23, 0)
		td := chipQuantile(c, 0.9)
		out, err := planOn.RunChip(ch, td)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range planOn.Filled {
			if w := out.Bounds.Hi[p] - out.Bounds.Lo[p]; w >= on.Eps {
				t.Fatalf("filled path %d not actually measured (width %v)", p, w)
			}
		}
	}
}

// TestMaxBatchAblation: capping batches must not change measurement
// correctness, only the batch structure.
func TestMaxBatchAblation(t *testing.T) {
	c := tinyCircuit(t, 11)
	for _, cap := range []int{0, 4, 16} {
		cfg := DefaultConfig()
		cfg.MaxBatch = cap
		plan, err := Prepare(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cap > 0 {
			for bi, b := range plan.Batches {
				if len(b) > cap {
					t.Fatalf("cap %d: batch %d has %d paths", cap, bi, len(b))
				}
			}
		}
		ch := tester.SampleChip(c, 29, 0)
		td := chipQuantile(c, 0.9)
		out, err := plan.RunChip(ch, td)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range plan.Tested {
			if w := out.Bounds.Hi[p] - out.Bounds.Lo[p]; w >= cfg.Eps {
				t.Fatalf("cap %d: tested path %d unresolved", cap, p)
			}
		}
	}
}

// TestFlowDeterminism: identical configuration and chip must give identical
// outcomes (iteration counts, bounds, buffer values).
func TestFlowDeterminism(t *testing.T) {
	c := tinyCircuit(t, 12)
	cfg := DefaultConfig()
	plan1, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ch := tester.SampleChip(c, 31, 4)
	td := chipQuantile(c, 0.85)
	o1, err := plan1.RunChip(ch, td)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := plan2.RunChip(ch, td)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Iterations != o2.Iterations || o1.Passed != o2.Passed || o1.Configured != o2.Configured {
		t.Fatalf("non-deterministic flow: %+v vs %+v", o1, o2)
	}
	for f := 0; f < c.NumFF; f++ {
		if o1.X[f] != o2.X[f] {
			t.Fatalf("buffer %d configured differently: %v vs %v", f, o1.X[f], o2.X[f])
		}
	}
}

// TestHoldBoundsRestrictConfiguration: with crushing hold bounds the flow
// must fail gracefully (unconfigurable chips, no panic).
func TestHoldBoundsRestrictConfiguration(t *testing.T) {
	c := tinyCircuit(t, 13)
	cfg := DefaultConfig()
	plan, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite λ with impossible bounds (beyond any buffer range).
	span := 0.0
	for _, b := range c.Buffered {
		if w := c.Buf.Hi[b] - c.Buf.Lo[b]; w > span {
			span = w
		}
	}
	for pair := range plan.Hold.ByPair {
		plan.Hold.ByPair[pair] = 10 * span
	}
	ch := tester.SampleChip(c, 37, 0)
	out, err := plan.RunChip(ch, chipQuantile(c, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if out.Configured || out.Passed {
		t.Fatal("impossible hold bounds must make configuration infeasible")
	}
}

func BenchmarkAlignSolveHeuristic(b *testing.B) {
	c, err := tinyCircuitErr(24, 200, 6, 30, 3)
	if err != nil {
		b.Fatal(err)
	}
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	items := batchItems(c, batches[0], nil)
	assignWeights(items, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alignHeuristic(c, items, nil, &alignScratch{})
	}
}

func BenchmarkAlignSolveFastMILP(b *testing.B) {
	c, err := tinyCircuitErr(24, 200, 6, 30, 3)
	if err != nil {
		b.Fatal(err)
	}
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	items := batchItems(c, batches[0], nil)
	assignWeights(items, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alignMILP(c, items, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigureScalable(b *testing.B) {
	c, err := tinyCircuitErr(40, 400, 6, 60, 5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 100
	hb, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ch := tester.SampleChip(c, 3, 0)
	bounds := InitBounds(c)
	for p := range c.Paths {
		bounds.Lo[p] = ch.TrueMax[p] - 0.001
		bounds.Hi[p] = ch.TrueMax[p] + 0.001
	}
	td := chipQuantile(c, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := configureScalable(c, bounds, hb, td); err != nil {
			b.Fatal(err)
		}
	}
}
