package core

import (
	"fmt"
	"math"

	"effitest/internal/circuit"
	"effitest/internal/la"
	"effitest/internal/stats"
)

// PredictSigmas returns, for every path, the conditional standard deviation
// σ' it would have after the given tested paths of its group are measured
// (Eq. 5). Tested paths get NaN. Because σ' does not depend on the measured
// values (only on the covariance), this is computable before any testing —
// that is what §3.2 exploits to pick slot-filler paths.
func PredictSigmas(c *circuit.Circuit, groups []Group, tested []int) ([]float64, error) {
	testedSet := make(map[int]bool, len(tested))
	for _, p := range tested {
		testedSet[p] = true
	}
	out := make([]float64, c.NumPaths())
	for i := range out {
		out[i] = math.NaN()
	}
	for _, g := range groups {
		known, unknown := splitGroup(g, testedSet)
		if len(unknown) == 0 {
			continue
		}
		mvn, err := groupMVN(c, g)
		if err != nil {
			return nil, err
		}
		localKnown := localIndices(g.Paths, known)
		localUnknown := localIndices(g.Paths, unknown)
		// Observed values do not matter for σ'; use the means.
		obs := make([]float64, len(localKnown))
		for i, k := range known {
			obs[i] = c.Paths[k].Max.Mean
		}
		cond, err := mvn.Conditional(localUnknown, localKnown, obs)
		if err != nil {
			return nil, err
		}
		for i, p := range unknown {
			out[p] = math.Sqrt(math.Max(cond.Sigma.At(i, i), 0))
		}
	}
	return out, nil
}

// PredictBounds runs §3.4's conditional estimation: for every untested path,
// the conditional mean (Eq. 4) is computed from the *upper* bounds of the
// tested delays (conservative per the paper), the conditional sigma from
// Eq. 5, and the path's window is set to μ' ± 3σ'. Tested paths keep their
// measured windows. The bounds struct is updated in place.
func PredictBounds(c *circuit.Circuit, groups []Group, tested []int, b *Bounds) error {
	testedSet := make(map[int]bool, len(tested))
	for _, p := range tested {
		testedSet[p] = true
	}
	for _, g := range groups {
		known, unknown := splitGroup(g, testedSet)
		if len(unknown) == 0 {
			continue
		}
		if len(known) == 0 {
			// No measurement available: fall back to the prior ±3σ window
			// (already in b). This only happens for groups whose selected
			// paths were all unresolvable, which the flow treats as a
			// degraded but legal outcome.
			continue
		}
		mvn, err := groupMVN(c, g)
		if err != nil {
			return err
		}
		localKnown := localIndices(g.Paths, known)
		localUnknown := localIndices(g.Paths, unknown)
		obs := make([]float64, len(known))
		for i, k := range known {
			obs[i] = b.Hi[k] // conservative: measured upper bounds
		}
		cond, err := mvn.Conditional(localUnknown, localKnown, obs)
		if err != nil {
			return err
		}
		for i, p := range unknown {
			sigma := math.Sqrt(math.Max(cond.Sigma.At(i, i), 0))
			mu := cond.Mu[i]
			lo := mu - 3*sigma
			if lo < 0 {
				lo = 0
			}
			b.Lo[p] = lo
			b.Hi[p] = mu + 3*sigma
		}
	}
	return nil
}

func splitGroup(g Group, testedSet map[int]bool) (known, unknown []int) {
	for _, p := range g.Paths {
		if testedSet[p] {
			known = append(known, p)
		} else {
			unknown = append(unknown, p)
		}
	}
	return known, unknown
}

func localIndices(members []int, subset []int) []int {
	pos := make(map[int]int, len(members))
	for i, m := range members {
		pos[m] = i
	}
	out := make([]int, len(subset))
	for i, s := range subset {
		out[i] = pos[s]
	}
	return out
}

func groupMVN(c *circuit.Circuit, g Group) (*stats.MVN, error) {
	if g.mvn != nil {
		return g.mvn, nil
	}
	cov := c.CovMatrix()
	n := len(g.Paths)
	sigma := la.NewMatrix(n, n)
	mu := make([]float64, n)
	for i, a := range g.Paths {
		mu[i] = c.Paths[a].Max.Mean
		for j, b := range g.Paths {
			sigma.Set(i, j, cov[a][b])
		}
	}
	mvn, err := stats.NewMVN(mu, sigma)
	if err != nil {
		return nil, fmt.Errorf("core: group MVN: %w", err)
	}
	return mvn, nil
}
