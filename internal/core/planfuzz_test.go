package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"effitest/internal/circuit"
)

// fuzzPlanArtifacts builds one small valid binary and JSON artifact to seed
// the fuzzer (plus the circuit to Bind against).
func fuzzPlanArtifacts(tb testing.TB) (*circuit.Circuit, []byte, []byte) {
	tb.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("fuzzplan", 12, 96, 2, 14), 7)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 40 // keep per-process seeding fast
	pl, err := Prepare(c, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	bin, err := pl.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	var js bytes.Buffer
	if err := EncodePlanJSON(&js, pl); err != nil {
		tb.Fatal(err)
	}
	return c, bin, js.Bytes()
}

// FuzzPlanDecode asserts the plan codec's safety contract: arbitrary input
// — truncated, bit-flipped, version-skewed, or valid-but-tampered — must
// either decode or return a typed error. It must never panic, hang, or
// allocate unboundedly; and whatever decodes must survive Bind's
// range validation without out-of-range access.
func FuzzPlanDecode(f *testing.F) {
	c, bin, js := fuzzPlanArtifacts(f)

	f.Add(bin)
	f.Add(js)
	f.Add(bin[:len(bin)/2])        // truncated
	f.Add(bin[:len(planMagic)+1])  // header only
	f.Add([]byte("EFTPLAN\x00"))   // magic, nothing else
	f.Add([]byte("{}"))            // JSON, wrong shape
	f.Add([]byte(`{"format":99}`)) // JSON version skew
	f.Add([]byte{})                // empty
	skew := append([]byte{}, bin...)
	skew[len(planMagic)] ^= 0x7F // corrupt the version byte
	f.Add(skew)
	flip := append([]byte{}, bin...)
	flip[len(flip)/2] ^= 0xFF // flip a payload bit
	f.Add(flip)
	// Previous-format artifacts (PR 3/4 plan caches): must be rejected with
	// the typed version error, never decoded into garbage kernels.
	f.Add(v1BinaryArtifact(f, bin))
	f.Add(v1JSONArtifact(f, js))

	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := DecodePlan(data)
		if err != nil {
			return // rejected cleanly: the contract holds
		}
		// Whatever decoded must also bind safely (possibly with an error,
		// e.g. fingerprint mismatch or out-of-range ids) — never panic.
		_ = pl.Bind(c)
	})
}

// TestRegenFuzzCorpusSeeds regenerates the checked-in FuzzPlanDecode corpus
// entries that track the current plan format version. Run it after a
// PlanFormatVersion bump:
//
//	EFFITEST_UPDATE_FUZZ_CORPUS=1 go test -run TestRegenFuzzCorpusSeeds ./internal/core/
func TestRegenFuzzCorpusSeeds(t *testing.T) {
	if os.Getenv("EFFITEST_UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set EFFITEST_UPDATE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	_, bin, js := fuzzPlanArtifacts(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzPlanDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		t.Helper()
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("valid_binary", bin)
	write("valid_json", js)
	write("truncated", bin[:len(bin)/2])
	flip := append([]byte{}, bin...)
	flip[len(flip)/2] ^= 0xFF
	write("payload_flip", flip)
	skew := append([]byte{}, bin...)
	skew[len(planMagic)] ^= 0x7F
	write("version_skew", skew)
	write("version_v1_binary", v1BinaryArtifact(t, bin))
	write("version_v1_json", v1JSONArtifact(t, js))
}
