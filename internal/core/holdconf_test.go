package core

import (
	"effitest/internal/circuit"
	"math"
	"testing"

	"effitest/internal/tester"
)

func TestHoldBoundsYieldTarget(t *testing.T) {
	c := tinyCircuit(t, 1)
	cfg := DefaultConfig()
	cfg.HoldSamples = 200
	hb, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if y := HoldYieldEstimate(c, hb, cfg); y < cfg.HoldYield-1e-9 {
		t.Fatalf("hold yield %v below target %v", y, cfg.HoldYield)
	}
}

func TestHoldBoundsGreedyVsExact(t *testing.T) {
	// On a tiny instance the greedy Σλ must match the exact MILP closely
	// (equal in most seeds; never better, since the MILP is optimal).
	c, err := tinyCircuitErr(8, 40, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 12
	cfg.HoldYield = 0.80 // allow 2 of 12 samples dropped
	greedy, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ComputeHoldBoundsExact(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, es := greedy.SumLambda(), exact.SumLambda()
	if gs < es-1e-6 {
		t.Fatalf("greedy Σλ %v below exact optimum %v — exact solver wrong", gs, es)
	}
	if gs > es+0.25*math.Abs(es)+1e-6 {
		t.Fatalf("greedy Σλ %v too far above exact %v", gs, es)
	}
	// Both must still satisfy the yield.
	if y := HoldYieldEstimate(c, exact, cfg); y < cfg.HoldYield-1e-9 {
		t.Fatalf("exact bounds yield %v below %v", y, cfg.HoldYield)
	}
}

func TestHoldBoundsDroppingHelps(t *testing.T) {
	// With Y < 1 the bounds must be no larger than the Y=1 bounds.
	c := tinyCircuit(t, 2)
	cfg := DefaultConfig()
	cfg.HoldSamples = 100
	cfg.HoldYield = 1.0
	strict, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HoldYield = 0.95
	relaxed, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.SumLambda() > strict.SumLambda()+1e-9 {
		t.Fatalf("relaxed Σλ %v exceeds strict %v", relaxed.SumLambda(), strict.SumLambda())
	}
}

func TestHoldBoundsConfigValidation(t *testing.T) {
	c := tinyCircuit(t, 3)
	cfg := DefaultConfig()
	cfg.HoldSamples = 0
	if _, err := ComputeHoldBounds(c, cfg); err == nil {
		t.Fatal("zero samples should fail")
	}
	cfg = DefaultConfig()
	cfg.HoldYield = 1.5
	if _, err := ComputeHoldBounds(c, cfg); err == nil {
		t.Fatal("bad yield should fail")
	}
}

func TestLambdaDefault(t *testing.T) {
	var hb *HoldBounds
	if !math.IsInf(hb.Lambda(1, 2), -1) {
		t.Fatal("nil bounds should be unconstrained")
	}
	hb = &HoldBounds{ByPair: map[[2]int]float64{{1, 2}: 0.5}}
	if hb.Lambda(1, 2) != 0.5 {
		t.Fatal("lookup failed")
	}
	if !math.IsInf(hb.Lambda(2, 1), -1) {
		t.Fatal("reverse pair should be unconstrained")
	}
}

func TestConfigureScalableMatchesMILP(t *testing.T) {
	// The key ablation cross-check: both solvers of Eqs. (15)–(18) must
	// agree on feasibility and (nearly) on the achieved ξ.
	c, err := tinyCircuitErr(10, 60, 2, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 50
	hb, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for chipIdx := 0; chipIdx < 6; chipIdx++ {
		ch := tester.SampleChip(c, 31, chipIdx)
		b := InitBounds(c)
		// Simulate exact measurement.
		for p := range c.Paths {
			b.Lo[p] = ch.TrueMax[p] - 0.001
			b.Hi[p] = ch.TrueMax[p] + 0.001
		}
		td := chipQuantile(c, 0.65)
		s, err := configureScalable(c, b, hb, td)
		if err != nil {
			t.Fatal(err)
		}
		m, err := configureMILP(c, b, hb, td)
		if err != nil {
			t.Fatal(err)
		}
		if s.Feasible != m.Feasible {
			t.Fatalf("chip %d: feasibility disagreement scalable=%v milp=%v",
				chipIdx, s.Feasible, m.Feasible)
		}
		if !s.Feasible {
			continue
		}
		// ξ values may differ by lattice granularity; both must be valid
		// objective values, and neither may beat the other by more than one
		// step.
		step := c.Buf.StepSize(c.Buffered[0])
		if math.Abs(s.Xi-m.Xi) > step+1e-6 {
			t.Fatalf("chip %d: ξ mismatch scalable %v vs milp %v (step %v)",
				chipIdx, s.Xi, m.Xi, step)
		}
		verifyConfiguration(t, c, b, hb, td, s.X, s.Xi)
		verifyConfiguration(t, c, b, hb, td, m.X, m.Xi)
	}
}

// verifyConfiguration checks the configuration model directly on a
// solution: for every path there must exist an assumed delay D' in
// [l, min(u, Td - xi + xj)] with u - D' ≤ ξ, buffers must be on their
// lattices, and hold bounds must hold.
func verifyConfiguration(t *testing.T, c *circuit.Circuit, b *Bounds, hb *HoldBounds, td float64, x []float64, xi float64) {
	t.Helper()
	const tol = 1e-6
	for p := range c.Paths {
		pt := &c.Paths[p]
		dMax := math.Min(b.Hi[p], td-(x[pt.From]-x[pt.To]))
		if dMax < b.Lo[p]-tol {
			t.Fatalf("path %d: no feasible assumed delay (dMax %v < l %v)", p, dMax, b.Lo[p])
		}
		if shortfall := b.Hi[p] - dMax; shortfall > xi+tol {
			t.Fatalf("path %d: shortfall %v exceeds ξ %v", p, shortfall, xi)
		}
		if lam := hb.Lambda(pt.From, pt.To); !math.IsInf(lam, -1) {
			if x[pt.From]-x[pt.To] < lam-tol {
				t.Fatalf("path %d: hold bound violated", p)
			}
		}
	}
	for f := 0; f < c.NumFF; f++ {
		if !c.Buf.Buffered[f] {
			if x[f] != 0 {
				t.Fatalf("unbuffered FF %d moved", f)
			}
			continue
		}
		if math.Abs(c.Buf.Quantize(f, x[f])-x[f]) > 1e-9 {
			t.Fatalf("buffer %d off lattice: %v", f, x[f])
		}
	}
}

// tinyCircuitErr generates a custom-size tiny circuit.
func tinyCircuitErr(ffs, gates, bufs, paths int, seed int64) (*circuit.Circuit, error) {
	return circuit.Generate(circuit.TinyProfile("custom", ffs, gates, bufs, paths), seed)
}
