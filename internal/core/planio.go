package core

// This file implements plan serialization: a versioned binary codec
// (MarshalBinary / UnmarshalBinary) and an equivalent JSON form, plus
// SavePlan / LoadPlan file helpers. A serialized plan is a self-describing
// artifact — it embeds the circuit fingerprint it was prepared for and the
// full flow configuration — so the expensive offline Prepare can run once
// and its result be shared across processes and machines. A decoded plan is
// inert until Bind re-attaches the circuit (verifying the fingerprint) and
// recomputes the derived per-group distributions.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"effitest/internal/circuit"
)

// PlanFormatVersion is the serialization version of plan artifacts; bumped
// on any change to the encoded layout or to the offline flow's semantics,
// so stale artifacts fail to load instead of silently running an outdated
// plan.
//
// Version history:
//
//	1 — initial artifact format.
//	2 — plans carry baked conditional-prediction kernels (kernels.go).
//	    The encoded layout is unchanged — kernels are derived state,
//	    recomputed on Bind — but v1 artifacts predate the kernel contract,
//	    so they are rejected (ErrPlanVersion) and plan caches self-heal by
//	    re-preparing under the new version's key.
const PlanFormatVersion = 2

// planMagic opens every binary plan artifact.
var planMagic = []byte("EFTPLAN\x00")

// Plan decode errors; match with errors.Is.
var (
	// ErrPlanFormat reports a corrupt, truncated or non-plan input.
	ErrPlanFormat = errors.New("core: malformed plan artifact")
	// ErrPlanVersion reports an artifact from a different format version.
	ErrPlanVersion = errors.New("core: plan artifact version mismatch")
	// ErrPlanCircuitMismatch reports a Bind against a circuit whose
	// fingerprint differs from the one the plan was prepared for.
	ErrPlanCircuitMismatch = errors.New("core: plan was prepared for a different circuit")
)

// CircuitHash returns the fingerprint of the circuit a decoded plan was
// prepared for (empty until the plan is marshalled or unmarshalled).
func (pl *Plan) CircuitHash() string { return pl.circuitHash }

// ---- binary codec ----

type planEncoder struct{ buf []byte }

func (e *planEncoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *planEncoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *planEncoder) float(v float64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *planEncoder) boolByte(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *planEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *planEncoder) ints(xs []int) {
	e.uvarint(uint64(len(xs)))
	for _, x := range xs {
		e.varint(int64(x))
	}
}

type planDecoder struct {
	buf []byte
	pos int
}

func (d *planDecoder) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrPlanFormat, what, d.pos)
}

func (d *planDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *planDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.pos += n
	return v, nil
}

func (d *planDecoder) intVal() (int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, d.fail("integer out of range")
	}
	return int(v), nil
}

func (d *planDecoder) float() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, d.fail("truncated float")
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *planDecoder) boolByte() (bool, error) {
	if d.pos >= len(d.buf) {
		return false, d.fail("truncated bool")
	}
	b := d.buf[d.pos]
	d.pos++
	if b > 1 {
		return false, d.fail("bad bool")
	}
	return b == 1, nil
}

// count reads a collection length and rejects lengths that cannot fit in
// the remaining input (each element takes ≥ min bytes), so corrupted
// headers cannot trigger huge allocations.
func (d *planDecoder) count(min int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if v > uint64((len(d.buf)-d.pos)/min) {
		return 0, d.fail("implausible collection length")
	}
	return int(v), nil
}

func (d *planDecoder) str(maxLen int) (string, error) {
	n, err := d.count(1)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", d.fail("string too long")
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *planDecoder) ints() ([]int, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = d.intVal(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// encodeConfig writes every Config field in fixed order; decodeConfig is
// its exact mirror. Adding a Config field requires extending both and
// bumping PlanFormatVersion. PredictBatch is deliberately not serialized:
// like Workers it never shapes the plan, and a loaded plan adopts the live
// request's value (the plan cache and the engine both overwrite Cfg before
// running chips), so decoded artifacts default to automatic batching.
func encodeConfig(e *planEncoder, cfg Config) {
	e.varint(cfg.Seed)
	e.float(cfg.Eps)
	e.float(cfg.CorrStart)
	e.float(cfg.CorrStep)
	e.float(cfg.CorrFloor)
	e.float(cfg.PCKaiser)
	e.varint(int64(cfg.MaxGroupSize))
	e.boolByte(cfg.FillSlots)
	e.float(cfg.FillSigmaFrac)
	e.varint(int64(cfg.MaxBatch))
	e.varint(int64(cfg.AlignMode))
	e.varint(int64(cfg.ConfigMode))
	e.float(cfg.WeightK0)
	e.float(cfg.WeightKd)
	e.float(cfg.HoldYield)
	e.varint(int64(cfg.HoldSamples))
	e.float(cfg.TesterResolution)
	e.varint(int64(cfg.MaxIterPerPath))
	e.varint(int64(cfg.Workers))
}

func decodeConfig(d *planDecoder) (Config, error) {
	var cfg Config
	var err error
	fail := func(e error) (Config, error) { return Config{}, e }
	if cfg.Seed, err = d.varint(); err != nil {
		return fail(err)
	}
	for _, dst := range []*float64{&cfg.Eps, &cfg.CorrStart, &cfg.CorrStep, &cfg.CorrFloor, &cfg.PCKaiser} {
		if *dst, err = d.float(); err != nil {
			return fail(err)
		}
	}
	if cfg.MaxGroupSize, err = d.intVal(); err != nil {
		return fail(err)
	}
	if cfg.FillSlots, err = d.boolByte(); err != nil {
		return fail(err)
	}
	if cfg.FillSigmaFrac, err = d.float(); err != nil {
		return fail(err)
	}
	if cfg.MaxBatch, err = d.intVal(); err != nil {
		return fail(err)
	}
	var m int
	if m, err = d.intVal(); err != nil {
		return fail(err)
	}
	cfg.AlignMode = AlignMode(m)
	if m, err = d.intVal(); err != nil {
		return fail(err)
	}
	cfg.ConfigMode = ConfigureMode(m)
	for _, dst := range []*float64{&cfg.WeightK0, &cfg.WeightKd, &cfg.HoldYield} {
		if *dst, err = d.float(); err != nil {
			return fail(err)
		}
	}
	if cfg.HoldSamples, err = d.intVal(); err != nil {
		return fail(err)
	}
	if cfg.TesterResolution, err = d.float(); err != nil {
		return fail(err)
	}
	if cfg.MaxIterPerPath, err = d.intVal(); err != nil {
		return fail(err)
	}
	if cfg.Workers, err = d.intVal(); err != nil {
		return fail(err)
	}
	return cfg, nil
}

// MarshalBinary encodes the plan as a versioned, self-describing binary
// artifact. The plan must still be bound to its circuit (the fingerprint is
// embedded so decoding can verify what the plan belongs to).
func (pl *Plan) MarshalBinary() ([]byte, error) {
	hash := pl.circuitHash
	name := pl.circuitName
	if pl.Circuit != nil {
		var err error
		if hash, err = circuit.Fingerprint(pl.Circuit); err != nil {
			return nil, err
		}
		name = pl.Circuit.Name
	}
	if hash == "" {
		return nil, fmt.Errorf("core: cannot marshal a plan with no circuit")
	}
	e := &planEncoder{buf: append([]byte{}, planMagic...)}
	e.uvarint(PlanFormatVersion)
	e.str(hash)
	e.str(name)
	encodeConfig(e, pl.Cfg)
	e.uvarint(uint64(len(pl.Groups)))
	for _, g := range pl.Groups {
		e.ints(g.Paths)
		e.float(g.Threshold)
		e.varint(int64(g.NumPCs))
		e.ints(g.Selected)
	}
	e.ints(pl.Tested)
	e.ints(pl.Filled)
	e.uvarint(uint64(len(pl.Batches)))
	for _, b := range pl.Batches {
		e.ints(b)
	}
	e.boolByte(pl.Hold != nil)
	if pl.Hold != nil {
		pairs := sortedHoldPairs(pl.Hold)
		e.uvarint(uint64(len(pairs)))
		for _, p := range pairs {
			e.varint(int64(p.pair[0]))
			e.varint(int64(p.pair[1]))
			e.float(p.lambda)
		}
	}
	e.varint(int64(pl.PrepDuration))
	return e.buf, nil
}

// UnmarshalBinary decodes a binary plan artifact. The result is unbound:
// call Bind with the matching circuit before running chips. Corrupt,
// truncated or version-skewed input returns a typed error (ErrPlanFormat /
// ErrPlanVersion) — never a panic.
func (pl *Plan) UnmarshalBinary(data []byte) error {
	if !bytes.HasPrefix(data, planMagic) {
		return fmt.Errorf("%w: missing magic", ErrPlanFormat)
	}
	d := &planDecoder{buf: data, pos: len(planMagic)}
	ver, err := d.uvarint()
	if err != nil {
		return err
	}
	if ver != PlanFormatVersion {
		return fmt.Errorf("%w: artifact version %d, this build reads %d", ErrPlanVersion, ver, PlanFormatVersion)
	}
	hash, err := d.str(128)
	if err != nil {
		return err
	}
	name, err := d.str(1 << 12)
	if err != nil {
		return err
	}
	cfg, err := decodeConfig(d)
	if err != nil {
		return err
	}
	ng, err := d.count(2)
	if err != nil {
		return err
	}
	groups := make([]Group, ng)
	for i := range groups {
		if groups[i].Paths, err = d.ints(); err != nil {
			return err
		}
		if groups[i].Threshold, err = d.float(); err != nil {
			return err
		}
		if groups[i].NumPCs, err = d.intVal(); err != nil {
			return err
		}
		if groups[i].Selected, err = d.ints(); err != nil {
			return err
		}
	}
	tested, err := d.ints()
	if err != nil {
		return err
	}
	filled, err := d.ints()
	if err != nil {
		return err
	}
	nb, err := d.count(1)
	if err != nil {
		return err
	}
	batches := make([][]int, nb)
	for i := range batches {
		if batches[i], err = d.ints(); err != nil {
			return err
		}
	}
	var hold *HoldBounds
	hasHold, err := d.boolByte()
	if err != nil {
		return err
	}
	if hasHold {
		np, err := d.count(10)
		if err != nil {
			return err
		}
		hold = &HoldBounds{ByPair: make(map[[2]int]float64, np)}
		for i := 0; i < np; i++ {
			from, err := d.intVal()
			if err != nil {
				return err
			}
			to, err := d.intVal()
			if err != nil {
				return err
			}
			lam, err := d.float()
			if err != nil {
				return err
			}
			hold.ByPair[[2]int{from, to}] = lam
		}
	}
	durNs, err := d.varint()
	if err != nil {
		return err
	}
	if d.pos != len(d.buf) {
		return d.fail("trailing bytes")
	}

	*pl = Plan{
		Cfg:          cfg,
		Groups:       groups,
		Tested:       tested,
		Filled:       filled,
		Batches:      batches,
		Hold:         hold,
		PrepDuration: time.Duration(durNs),
		circuitHash:  hash,
		circuitName:  name,
	}
	return nil
}

type holdPair struct {
	pair   [2]int
	lambda float64
}

func sortedHoldPairs(h *HoldBounds) []holdPair {
	out := make([]holdPair, 0, len(h.ByPair))
	for p, l := range h.ByPair {
		out = append(out, holdPair{p, l})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pair[0] != out[j].pair[0] {
			return out[i].pair[0] < out[j].pair[0]
		}
		return out[i].pair[1] < out[j].pair[1]
	})
	return out
}

// ---- JSON codec ----

type planJSONGroup struct {
	Paths     []int   `json:"paths"`
	Threshold float64 `json:"threshold"`
	NumPCs    int     `json:"num_pcs"`
	Selected  []int   `json:"selected"`
}

type planJSONHold struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Lambda float64 `json:"lambda"`
}

type planJSON struct {
	Format      int             `json:"format"`
	CircuitHash string          `json:"circuit_hash"`
	Circuit     string          `json:"circuit"`
	Config      Config          `json:"config"`
	Groups      []planJSONGroup `json:"groups"`
	Tested      []int           `json:"tested"`
	Filled      []int           `json:"filled,omitempty"`
	Batches     [][]int         `json:"batches"`
	Hold        []planJSONHold  `json:"hold,omitempty"`
	PrepNs      int64           `json:"prep_duration_ns"`
}

// EncodePlanJSON writes the plan's JSON artifact form — the same data as
// MarshalBinary, human-readable and diffable. Go's float64 JSON encoding is
// shortest-round-trip, so the JSON form is as bit-exact as the binary one.
func EncodePlanJSON(w io.Writer, pl *Plan) error {
	hash := pl.circuitHash
	name := pl.circuitName
	if pl.Circuit != nil {
		var err error
		if hash, err = circuit.Fingerprint(pl.Circuit); err != nil {
			return err
		}
		name = pl.Circuit.Name
	}
	if hash == "" {
		return fmt.Errorf("core: cannot marshal a plan with no circuit")
	}
	pj := planJSON{
		Format:      PlanFormatVersion,
		CircuitHash: hash,
		Circuit:     name,
		Config:      pl.Cfg,
		Tested:      pl.Tested,
		Filled:      pl.Filled,
		Batches:     pl.Batches,
		PrepNs:      int64(pl.PrepDuration),
	}
	for _, g := range pl.Groups {
		pj.Groups = append(pj.Groups, planJSONGroup{Paths: g.Paths, Threshold: g.Threshold, NumPCs: g.NumPCs, Selected: g.Selected})
	}
	if pl.Hold != nil {
		for _, p := range sortedHoldPairs(pl.Hold) {
			pj.Hold = append(pj.Hold, planJSONHold{From: p.pair[0], To: p.pair[1], Lambda: p.lambda})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pj)
}

// DecodePlanJSON reads a JSON plan artifact; like UnmarshalBinary the
// result is unbound until Bind.
func DecodePlanJSON(r io.Reader) (*Plan, error) {
	var pj planJSON
	if err := json.NewDecoder(r).Decode(&pj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPlanFormat, err)
	}
	if pj.Format != PlanFormatVersion {
		return nil, fmt.Errorf("%w: artifact version %d, this build reads %d", ErrPlanVersion, pj.Format, PlanFormatVersion)
	}
	pl := &Plan{
		Cfg:          pj.Config,
		Tested:       pj.Tested,
		Filled:       pj.Filled,
		Batches:      pj.Batches,
		PrepDuration: time.Duration(pj.PrepNs),
		circuitHash:  pj.CircuitHash,
		circuitName:  pj.Circuit,
	}
	for _, g := range pj.Groups {
		pl.Groups = append(pl.Groups, Group{Paths: g.Paths, Threshold: g.Threshold, NumPCs: g.NumPCs, Selected: g.Selected})
	}
	if len(pj.Hold) > 0 {
		pl.Hold = &HoldBounds{ByPair: make(map[[2]int]float64, len(pj.Hold))}
		for _, h := range pj.Hold {
			pl.Hold.ByPair[[2]int{h.From, h.To}] = h.Lambda
		}
	}
	return pl, nil
}

// ---- binding and validation ----

// Bind attaches a decoded plan to its circuit: the circuit's fingerprint
// must match the one embedded in the artifact (ErrPlanCircuitMismatch
// otherwise), every path / flip-flop index is range-checked against the
// circuit, the flow configuration is re-validated, and the derived
// per-group distributions are recomputed. After a successful Bind the plan
// behaves exactly like one produced by Prepare on this process, with one
// deliberate difference in timing: the conditional-prediction kernels are
// baked lazily, by the first chip run on the plan, instead of eagerly here
// — so a warm plan-cache load stays cheap and a process that only inspects
// or re-serves the plan never pays the per-group Cholesky work. A kernel
// bake failure (possible only on a tampered-but-plausible artifact)
// correspondingly surfaces on that first chip run rather than from Bind.
func (pl *Plan) Bind(c *circuit.Circuit) error {
	hash, err := circuit.Fingerprint(c)
	if err != nil {
		return err
	}
	return pl.bindWithFingerprint(context.Background(), c, hash)
}

// bindWithFingerprint is Bind with the circuit's fingerprint already
// computed (the plan cache hashes the circuit for its key anyway; hashing
// a large netlist twice per warm load would double the hot-path cost) and
// with cancellation over the per-group MVN recomputation.
func (pl *Plan) bindWithFingerprint(ctx context.Context, c *circuit.Circuit, hash string) error {
	if pl.circuitHash != "" && pl.circuitHash != hash {
		return fmt.Errorf("%w: artifact for %q (%.12s…), got %q (%.12s…)",
			ErrPlanCircuitMismatch, pl.circuitName, pl.circuitHash, c.Name, hash)
	}
	if err := pl.Cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrPlanFormat, err)
	}
	if err := pl.validateAgainst(c); err != nil {
		return err
	}
	pl.Circuit = c
	pl.circuitHash = hash
	pl.circuitName = c.Name
	if err := precomputeGroupMVNs(ctx, c, pl.Groups); err != nil {
		// A range-valid but semantically broken artifact (e.g. a tampered
		// group whose covariance is singular) surfaces here. Cancellation
		// surfaces as the context's error, not a format error.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return fmt.Errorf("%w: %v", ErrPlanFormat, err)
	}
	// The conditional-prediction kernels are derived state like the group
	// MVNs — recomputed, never shipped — but baking them (a ridged Cholesky
	// per group) is the expensive tail of a warm plan-cache load, and a
	// process that binds a plan to inspect or re-serve it never needs them.
	// Defer the bake to first use: the first chip executed on this plan
	// pays it once, under the plan's Workers fan-out.
	pl.lazy = &lazyKernels{}
	pl.scratch = &sync.Pool{New: func() any { return pl.newChipScratch() }}
	return nil
}

// validateAgainst range-checks every index the plan carries, so a decoded
// artifact can never cause out-of-range access in the online flow.
func (pl *Plan) validateAgainst(c *circuit.Circuit) error {
	np, nf := c.NumPaths(), c.NumFF
	checkPaths := func(what string, ids []int) error {
		for _, p := range ids {
			if p < 0 || p >= np {
				return fmt.Errorf("%w: %s path id %d out of range [0,%d)", ErrPlanFormat, what, p, np)
			}
		}
		return nil
	}
	for gi, g := range pl.Groups {
		if len(g.Paths) == 0 {
			return fmt.Errorf("%w: group %d is empty", ErrPlanFormat, gi)
		}
		if err := checkPaths("group", g.Paths); err != nil {
			return err
		}
		if err := checkPaths("selected", g.Selected); err != nil {
			return err
		}
	}
	if err := checkPaths("tested", pl.Tested); err != nil {
		return err
	}
	if err := checkPaths("filled", pl.Filled); err != nil {
		return err
	}
	for _, b := range pl.Batches {
		if err := checkPaths("batch", b); err != nil {
			return err
		}
	}
	if pl.Hold != nil {
		for p := range pl.Hold.ByPair {
			if p[0] < 0 || p[0] >= nf || p[1] < 0 || p[1] >= nf {
				return fmt.Errorf("%w: hold pair (%d,%d) out of range [0,%d)", ErrPlanFormat, p[0], p[1], nf)
			}
		}
	}
	return nil
}

// ---- file helpers ----

// SavePlan writes the plan to path atomically (temp file + rename). A
// ".json" extension selects the JSON artifact form; anything else the
// binary form.
func SavePlan(path string, pl *Plan) error {
	var buf bytes.Buffer
	if strings.EqualFold(filepath.Ext(path), ".json") {
		if err := EncodePlanJSON(&buf, pl); err != nil {
			return err
		}
	} else {
		data, err := pl.MarshalBinary()
		if err != nil {
			return err
		}
		buf.Write(data)
	}
	return writeFileAtomic(path, buf.Bytes())
}

// LoadPlan reads a plan artifact (binary or JSON, sniffed by content) and
// binds it to the circuit.
func LoadPlan(path string, c *circuit.Circuit) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pl, err := DecodePlan(data)
	if err != nil {
		return nil, fmt.Errorf("core: load plan %s: %w", path, err)
	}
	if err := pl.Bind(c); err != nil {
		return nil, fmt.Errorf("core: load plan %s: %w", path, err)
	}
	return pl, nil
}

// DecodePlan decodes a plan artifact in either serialization form, sniffing
// the binary magic. The result is unbound until Bind.
func DecodePlan(data []byte) (*Plan, error) {
	if bytes.HasPrefix(data, planMagic) {
		pl := &Plan{}
		if err := pl.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return pl, nil
	}
	return DecodePlanJSON(bytes.NewReader(data))
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".plan-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
