package core

import (
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/rng"
)

func TestAssignWeightsMiddleHighest(t *testing.T) {
	items := []alignItem{
		{lo: 0, hi: 2},  // center 1
		{lo: 4, hi: 6},  // center 5
		{lo: 8, hi: 10}, // center 9
	}
	assignWeights(items, 1000, 1)
	if items[1].weight != 1000 {
		t.Fatalf("middle weight %v, want 1000", items[1].weight)
	}
	if items[0].weight != 999 || items[2].weight != 999 {
		t.Fatalf("outer weights %v %v, want 999", items[0].weight, items[2].weight)
	}
}

func TestWeightedMedian(t *testing.T) {
	if v := weightedMedian([]float64{1, 5, 9}, []float64{1, 1, 1}); v != 5 {
		t.Fatalf("median = %v", v)
	}
	// Heavy weight pulls the median.
	if v := weightedMedian([]float64{1, 5, 9}, []float64{10, 1, 1}); v != 1 {
		t.Fatalf("weighted median = %v", v)
	}
}

func TestAlignOffKeepsBuffersZero(t *testing.T) {
	c := tinyCircuit(t, 1)
	items := batchItems(c, []int{0, 1}, nil)
	assignWeights(items, 1000, 1)
	res := alignOff(c, items, &alignScratch{})
	for f, v := range res.X {
		if v != 0 {
			t.Fatalf("buffer %d moved in AlignOff: %v", f, v)
		}
	}
	if res.T <= 0 {
		t.Fatalf("T = %v", res.T)
	}
}

// batchItems builds align items for the given paths with ±3σ windows.
func batchItems(c *circuit.Circuit, paths []int, lambda LambdaFunc) []alignItem {
	if lambda == nil {
		lambda = NoHoldBounds
	}
	items := make([]alignItem, len(paths))
	for i, p := range paths {
		pt := &c.Paths[p]
		mu, sd := pt.Max.Mean, pt.Max.Sigma()
		items[i] = alignItem{
			path: p, from: pt.From, to: pt.To,
			lo: mu - 3*sd, hi: mu + 3*sd,
			lambda: lambda(pt.From, pt.To),
		}
	}
	return items
}

func TestAlignModesAgreeOnObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("MILP cross-check skipped in -short mode")
	}
	// The fast MILP and the paper's big-M MILP must find equal objectives
	// (they are provably the same model); the heuristic must come close.
	c := tinyCircuit(t, 2)
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	r := rng.New(7, "alignmodes")
	checked := 0
	for _, batch := range batches {
		if len(batch) < 2 || len(batch) > 5 {
			continue
		}
		if checked >= 3 {
			break
		}
		checked++
		items := batchItems(c, batch, nil)
		// Perturb windows so centers differ.
		for i := range items {
			shift := 0.05 * r.NormFloat64()
			items[i].lo += shift
			items[i].hi += shift
		}
		assignWeights(items, 1000, 1)

		fast, err := alignMILP(c, items, false)
		if err != nil {
			t.Fatal(err)
		}
		paper, err := alignMILP(c, items, true)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fast.Obj-paper.Obj) > 1e-5*(1+math.Abs(fast.Obj)) {
			t.Fatalf("fast %v vs paper %v objective mismatch", fast.Obj, paper.Obj)
		}
		heur := alignHeuristic(c, items, nil, &alignScratch{})
		if heur.Obj < fast.Obj-1e-6 {
			t.Fatalf("heuristic %v beat exact %v — exact solver is wrong", heur.Obj, fast.Obj)
		}
		if heur.Obj > fast.Obj*1.5+1e-6 {
			t.Fatalf("heuristic %v too far above exact %v", heur.Obj, fast.Obj)
		}
	}
	if checked == 0 {
		t.Skip("no suitably sized batches")
	}
}

func TestAlignmentReducesObjectiveVsNoAlignment(t *testing.T) {
	// The whole point of §3.3: moving buffers lets one T partition more
	// ranges. On a batch with spread-out centers the aligned objective must
	// beat the buffers-at-zero objective.
	c := tinyCircuit(t, 3)
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	improvedSomewhere := false
	for _, batch := range batches {
		if len(batch) < 3 {
			continue
		}
		items := batchItems(c, batch, nil)
		assignWeights(items, 1000, 1)
		off := alignOff(c, items, &alignScratch{})
		heur := alignHeuristic(c, items, nil, &alignScratch{})
		if heur.Obj < off.Obj-1e-9 {
			improvedSomewhere = true
		}
		if heur.Obj > off.Obj+1e-9 {
			t.Fatalf("alignment made objective worse: %v vs %v", heur.Obj, off.Obj)
		}
	}
	if !improvedSomewhere {
		t.Fatal("alignment never improved any batch — buffers unused")
	}
}

func TestAlignRespectsLattice(t *testing.T) {
	c := tinyCircuit(t, 4)
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	items := batchItems(c, batches[0], nil)
	assignWeights(items, 1000, 1)
	res := alignHeuristic(c, items, nil, &alignScratch{})
	for f := 0; f < c.NumFF; f++ {
		if !c.Buf.Buffered[f] {
			if res.X[f] != 0 {
				t.Fatalf("unbuffered FF %d moved", f)
			}
			continue
		}
		if q := c.Buf.Quantize(f, res.X[f]); math.Abs(q-res.X[f]) > 1e-9 {
			t.Fatalf("buffer %d off lattice: %v", f, res.X[f])
		}
		if res.X[f] < c.Buf.Lo[f]-1e-12 || res.X[f] > c.Buf.Hi[f]+1e-12 {
			t.Fatalf("buffer %d out of range: %v", f, res.X[f])
		}
	}
}

func TestAlignRespectsHoldBounds(t *testing.T) {
	c := tinyCircuit(t, 5)
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	// Impose a mild hold bound on every batch arc.
	lambda := func(from, to int) float64 {
		step := 0.0
		if c.Buf.Buffered[from] {
			step = c.Buf.StepSize(from)
		} else if c.Buf.Buffered[to] {
			step = c.Buf.StepSize(to)
		}
		return -4 * step // within easy reach but binding for big shifts
	}
	for _, batch := range batches[:minInt(3, len(batches))] {
		items := batchItems(c, batch, lambda)
		assignWeights(items, 1000, 1)
		res := alignHeuristic(c, items, nil, &alignScratch{})
		for _, it := range items {
			if res.X[it.from]-res.X[it.to] < it.lambda-1e-9 {
				t.Fatalf("hold bound violated: x%d-x%d = %v < %v",
					it.from, it.to, res.X[it.from]-res.X[it.to], it.lambda)
			}
		}
	}
}

func TestAlignMILPRespectsHoldBounds(t *testing.T) {
	c := tinyCircuit(t, 6)
	batches := FormBatches(c, rangeInts(c.NumPaths()), DefaultConfig())
	var batch []int
	for _, b := range batches {
		if len(b) >= 2 && len(b) <= 4 {
			batch = b
			break
		}
	}
	if batch == nil {
		t.Skip("no small batch")
	}
	lambda := func(from, to int) float64 { return -0.01 }
	items := batchItems(c, batch, lambda)
	assignWeights(items, 1000, 1)
	res, err := alignMILP(c, items, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if res.X[it.from]-res.X[it.to] < it.lambda-1e-6 {
			t.Fatalf("MILP hold bound violated")
		}
	}
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
