package core

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"

	"effitest/internal/pool"
	"effitest/internal/tester"
)

// ChipResult is one element of the stream produced by Plan.RunChips: the
// chip's position in the input slice, the chip itself, and either its
// outcome or its per-chip error. A failing chip does not stop the other
// chips — in a binning pipeline a per-chip failure is itself a result.
type ChipResult struct {
	Index   int
	Chip    *tester.Chip
	Outcome *ChipOutcome
	Err     error
}

// RunChips executes the online flow on every chip at period Td, fanning the
// chips across a bounded worker pool (`workers` as in Config.Workers: 0 =
// all CPUs, 1 = sequential) and streaming one ChipResult per chip, strictly
// in input order. Outcomes are bit-identical to a sequential loop of
// RunChip calls at any worker count: chips never share mutable state, and a
// reorder buffer restores input order.
//
// The returned sequence is single-use. Breaking out of the range stops the
// remaining chips and releases every worker — no cancellation needed for
// early exit. Cancelling the context aborts in-flight chips promptly; the
// remaining results still arrive, carrying the context's error, so the
// stream always yields exactly len(chips) results unless the consumer
// breaks first.
func (pl *Plan) RunChips(ctx context.Context, chips []*tester.Chip, Td float64, workers int) iter.Seq[ChipResult] {
	return func(yield func(ChipResult) bool) {
		if len(chips) == 0 {
			return
		}
		w := pool.Resolve(workers)
		if w > len(chips) {
			w = len(chips)
		}
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		inner := make(chan ChipResult, w)
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(chips) {
						return
					}
					r := ChipResult{Index: i, Chip: chips[i]}
					if r.Err = ctx.Err(); r.Err == nil {
						r.Outcome, r.Err = pl.RunChipCtx(ctx, chips[i], Td)
					}
					inner <- r
				}
			}()
		}
		go func() {
			wg.Wait()
			close(inner)
		}()
		// On early exit (consumer break), cancel and drain inner so the
		// workers can finish and terminate; claims made after cancellation
		// resolve instantly. After a complete iteration this is a no-op on
		// an already closed, empty channel.
		defer func() {
			cancel()
			for range inner {
			}
		}()

		// Reorder buffer: workers finish out of order, the stream is
		// emitted in index order.
		pending := make(map[int]ChipResult, w)
		sendNext := 0
		for r := range inner {
			pending[r.Index] = r
			for {
				q, ok := pending[sendNext]
				if !ok {
					break
				}
				delete(pending, sendNext)
				sendNext++
				if !yield(q) {
					return
				}
			}
		}
	}
}

// RunChipsAll runs RunChips and collects every outcome, returning the
// lowest-index per-chip error (exactly what a sequential loop would have
// hit first) if any chip failed. The outcome slice is parallel to chips.
func (pl *Plan) RunChipsAll(ctx context.Context, chips []*tester.Chip, Td float64, workers int) ([]*ChipOutcome, error) {
	outs := make([]*ChipOutcome, len(chips))
	for r := range pl.RunChips(ctx, chips, Td, workers) {
		if r.Err != nil {
			// Results stream in index order, so the first error seen is the
			// lowest-index one; breaking stops the remaining chips.
			return nil, r.Err
		}
		outs[r.Index] = r.Outcome
	}
	return outs, nil
}
