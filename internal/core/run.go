package core

import (
	"context"
	"iter"
	"slices"
	"sync"

	"effitest/internal/pool"
	"effitest/internal/tester"
)

// ChipResult is one element of the streams produced by Plan.RunChips and
// Plan.Stream: the chip's position in the input, the chip itself, and
// either its outcome or its per-chip error. A failing chip does not stop
// the other chips — in a binning pipeline a per-chip failure is itself a
// result.
type ChipResult struct {
	Index   int
	Chip    *tester.Chip
	Outcome *ChipOutcome
	Err     error
}

// RunChips executes the online flow on every chip at period Td, fanning the
// chips across a bounded worker pool (`workers` as in Config.Workers: 0 =
// all CPUs, 1 = sequential) and streaming one ChipResult per chip, strictly
// in input order. Outcomes are bit-identical to a sequential loop of
// RunChip calls at any worker count: chips never share mutable state, and a
// reorder buffer restores input order.
//
// The returned sequence is single-use. Breaking out of the range stops the
// remaining chips and releases every worker — no cancellation needed for
// early exit. Cancelling the context aborts in-flight chips promptly; the
// remaining results still arrive, carrying the context's error, so the
// stream always yields exactly len(chips) results unless the consumer
// breaks first.
//
// RunChips is a slice adapter over the streaming core (see Stream).
func (pl *Plan) RunChips(ctx context.Context, chips []*tester.Chip, Td float64, workers int) iter.Seq[ChipResult] {
	return pl.RunChipsOpts(ctx, chips, Td, workers, RunOptions{})
}

// RunChipsOpts is RunChips with a pluggable measurement backend and event
// observer.
func (pl *Plan) RunChipsOpts(ctx context.Context, chips []*tester.Chip, Td float64, workers int, opts RunOptions) iter.Seq[ChipResult] {
	if len(chips) == 0 {
		return func(func(ChipResult) bool) {}
	}
	total := pool.Resolve(workers)
	w := total
	if w > len(chips) {
		w = len(chips)
	}
	// Leftover worker budget goes into the chips: when fewer chips than
	// workers are in flight, each chip's prediction phase fans its
	// correlation groups across the idle share of the pool.
	pw := total / w
	// drainAll: a slice's population is already materialized, so under
	// cancellation every chip still gets its (error-tagged) result and the
	// stream length stays len(chips).
	return pl.stream(ctx, slices.Values(chips), Td, w, pl.resolvePredictBatch(len(chips), w), pw, opts, true)
}

// Stream executes the online flow over an unbounded chip source: chips are
// pulled from the sequence on demand, fanned across the worker pool, and
// their results streamed in input order — the population is never
// materialized, so a generator can feed millions of chips through a hard
// fixed-memory window of 3×workers in-flight chips (one slow chip cannot
// let the rest of the pool run ahead of the consumer unboundedly).
//
// Semantics differ from RunChips in one deliberate way: cancelling the
// context stops pulling from the source (an unbounded source can never be
// drained), so the stream ends — promptly even when the source itself is
// blocked mid-pull — after the chips already being executed finish;
// chips queued but not yet picked up by a worker are dropped. Breaking out
// of the range likewise stops the source and releases the workers.
//
// Prediction batching is opt-in here, unlike RunChips: Config.PredictBatch
// = 0 (auto) streams chip by chip, because a batch only dispatches once
// full and a stalling generator would strand a partial batch for as long
// as it stalls. Setting PredictBatch = K > 1 explicitly accepts that
// latency (and a 3×workers×K in-flight window) in exchange for the batched
// prediction kernels.
func (pl *Plan) Stream(ctx context.Context, chips iter.Seq[*tester.Chip], Td float64, workers int, opts RunOptions) iter.Seq[ChipResult] {
	w := pool.Resolve(workers)
	return pl.stream(ctx, chips, Td, w, pl.resolvePredictBatch(-1, w), 1, opts, false)
}

// defaultPredictBatch is the auto batch width (Config.PredictBatch = 0):
// wide enough that a group's Cholesky factor amortizes over several chips,
// narrow enough that batching adds at most K-1 chips of latency before a
// result can stream out.
const defaultPredictBatch = 8

// resolvePredictBatch maps Cfg.PredictBatch to the effective chips-per-job
// count for a population of n chips (n < 0: unknown/unbounded) on w
// workers. Batches never exceed an even share of a known population, so a
// small fleet still spreads across every worker. An unbounded source only
// batches on explicit request: a generator may stall mid-pull for
// arbitrarily long, and chips held in a partially filled batch would sit
// unexecuted for exactly that long — automatic batching must not trade
// that latency (and the wider in-flight window) silently, so auto resolves
// to 1 there.
func (pl *Plan) resolvePredictBatch(n, w int) int {
	k := pl.Cfg.PredictBatch
	if k <= 0 {
		if n < 0 {
			return 1
		}
		k = defaultPredictBatch
	}
	if n >= 0 {
		if share := (n + w - 1) / w; k > share {
			k = share
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// stream is the shared fan-out core: one producer goroutine pulls chips
// from src and hands jobs of up to kb consecutive chips to w workers; a
// reorder buffer re-establishes input order on the way out. kb > 1 engages
// the batched prediction path (runChipBatch) — per-chip results, order and
// the in-flight window are unchanged, only the §3.4 kernel calls fuse. pw
// is the within-chip prediction fan-out each worker may use. drainAll
// selects the cancellation contract: true keeps producing after ctx
// cancellation (slice semantics — every chip gets a result), false stops
// the producer (unbounded-source semantics).
func (pl *Plan) stream(ctx context.Context, src iter.Seq[*tester.Chip], Td float64, w, kb, pw int, opts RunOptions, drainAll bool) iter.Seq[ChipResult] {
	if kb < 1 {
		kb = 1
	}
	if pw < 1 {
		pw = 1
	}
	return func(yield func(ChipResult) bool) {
		runCtx, cancelRun := context.WithCancel(ctx)
		defer cancelRun()
		// abort closes when the consumer breaks (or the stream returns):
		// it unblocks the producer and any worker parked on a channel send,
		// independent of the external context.
		abort := make(chan struct{})
		var abortOnce sync.Once
		closeAbort := func() { abortOnce.Do(func() { close(abort) }) }
		defer closeAbort()

		type job struct {
			first int
			chips []*tester.Chip
		}
		jobs := make(chan job, w)
		// window caps chips in flight (pulled from the source but not yet
		// yielded) at 3×w×kb, making the documented fixed-memory window a
		// hard guarantee: without it, one slow chip lets the other workers
		// run ahead and pile completed results into the reorder buffer
		// without bound. The producer acquires a slot per chip pulled; the
		// reorder loop releases it when the chip's result is yielded. Scaling
		// by kb keeps the producer able to fill w whole batches ahead — a
		// batch never needs more slots than the window holds, so batching
		// cannot deadlock the producer.
		window := make(chan struct{}, 3*w*kb)
		go func() {
			defer close(jobs)
			i := 0
			var batch []*tester.Chip
			// flush hands the accumulated batch to a worker; false = torn
			// down, stop producing.
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				j := job{first: i - len(batch), chips: batch}
				batch = nil
				if drainAll {
					select {
					case jobs <- j:
					case <-abort:
						return false
					}
				} else {
					select {
					case jobs <- j:
					case <-abort:
						return false
					case <-runCtx.Done():
						return false
					}
				}
				return true
			}
			for ch := range src {
				if drainAll {
					select {
					case window <- struct{}{}:
					case <-abort:
						return
					}
				} else {
					if runCtx.Err() != nil {
						return
					}
					select {
					case window <- struct{}{}:
					case <-abort:
						return
					case <-runCtx.Done():
						return
					}
				}
				if batch == nil {
					batch = make([]*tester.Chip, 0, kb)
				}
				batch = append(batch, ch)
				i++
				if len(batch) >= kb && !flush() {
					return
				}
			}
			flush()
		}()

		inner := make(chan ChipResult, w)
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				// One scratch per worker for its whole chip stream: the
				// prediction workspace and alignment buffers are reused
				// across every chip this goroutine executes.
				scr := pl.getScratch()
				defer pl.putScratch(scr)
				for {
					var j job
					var ok bool
					if drainAll {
						// Slice semantics: every chip gets a result, so
						// keep claiming even after cancellation (claims
						// resolve instantly to error-tagged results).
						j, ok = <-jobs
					} else {
						// Unbounded-source semantics: the producer may be
						// parked inside a blocking source pull that
						// cancellation cannot interrupt, so a worker
						// waiting for it must also watch the context —
						// otherwise a cancelled stream over a stalled
						// source would hang instead of ending.
						select {
						case j, ok = <-jobs:
						case <-runCtx.Done():
							return
						case <-abort:
							return
						}
					}
					if !ok {
						return
					}
					if len(j.chips) == 1 {
						// Single chip: the exact pre-batching code path.
						r := ChipResult{Index: j.first, Chip: j.chips[0]}
						if r.Err = runCtx.Err(); r.Err == nil {
							r.Outcome, r.Err = pl.runChipScratch(runCtx, j.chips[0], Td, opts, scr, pw)
						}
						select {
						case inner <- r:
						case <-abort:
							return
						}
						continue
					}
					for _, r := range pl.runChipBatch(runCtx, j.first, j.chips, Td, opts, scr, pw) {
						select {
						case inner <- r:
						case <-abort:
							return
						}
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(inner)
		}()

		// Reorder buffer: workers finish out of order, the stream is
		// emitted in index order. Claims are contiguous from 0, so the
		// buffer never holds more than the in-flight window.
		pending := make(map[int]ChipResult, w)
		sendNext := 0
		for r := range inner {
			pending[r.Index] = r
			for {
				q, ok := pending[sendNext]
				if !ok {
					break
				}
				delete(pending, sendNext)
				sendNext++
				if !yield(q) {
					return
				}
				// Free the yielded chip's window slot; every result holds
				// exactly one, so this never blocks.
				<-window
			}
		}
	}
}

// RunChipsAll runs RunChips and collects every outcome, returning the
// lowest-index per-chip error (exactly what a sequential loop would have
// hit first) if any chip failed. The outcome slice is parallel to chips.
func (pl *Plan) RunChipsAll(ctx context.Context, chips []*tester.Chip, Td float64, workers int) ([]*ChipOutcome, error) {
	return pl.RunChipsAllOpts(ctx, chips, Td, workers, RunOptions{})
}

// RunChipsAllOpts is RunChipsAll with a pluggable measurement backend and
// event observer.
func (pl *Plan) RunChipsAllOpts(ctx context.Context, chips []*tester.Chip, Td float64, workers int, opts RunOptions) ([]*ChipOutcome, error) {
	outs := make([]*ChipOutcome, len(chips))
	for r := range pl.RunChipsOpts(ctx, chips, Td, workers, opts) {
		if r.Err != nil {
			// Results stream in index order, so the first error seen is the
			// lowest-index one; breaking stops the remaining chips.
			return nil, r.Err
		}
		outs[r.Index] = r.Outcome
	}
	return outs, nil
}
