package core

import (
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

func kernelTestPlan(t *testing.T) (*circuit.Circuit, *Plan) {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("kerneltest", 48, 480, 4, 56), 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 60
	pl, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, pl
}

// TestBakedKernelsMatchNaivePredict pins the baked fast path bitwise
// against PredictBounds/PredictSigmas on measured bounds from a real chip
// run (the root-level differential suite covers the full conformance
// matrix; this is the white-box core variant).
func TestBakedKernelsMatchNaivePredict(t *testing.T) {
	c, pl := kernelTestPlan(t)
	if pl.kernels == nil {
		t.Fatal("Prepare left no baked kernels")
	}

	ch := tester.SampleChip(c, 9, 0)
	out, err := pl.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}

	// Replay prediction on copies of the measured bounds through both paths.
	mk := func() *Bounds {
		b := InitBounds(c)
		copy(b.Lo, out.Bounds.Lo)
		copy(b.Hi, out.Bounds.Hi)
		return b
	}
	naive := mk()
	if err := PredictBounds(c, pl.Groups, pl.Tested, naive); err != nil {
		t.Fatal(err)
	}
	fast := mk()
	scr := pl.getScratch()
	defer pl.putScratch(scr)
	pl.kernels.predictBounds(fast, &scr.ws)
	for p := range naive.Lo {
		if naive.Lo[p] != fast.Lo[p] || naive.Hi[p] != fast.Hi[p] {
			t.Fatalf("path %d: naive [%v, %v] != kernel [%v, %v]",
				p, naive.Lo[p], naive.Hi[p], fast.Lo[p], fast.Hi[p])
		}
	}

	sigNaive, err := PredictSigmas(c, pl.Groups, pl.Tested)
	if err != nil {
		t.Fatal(err)
	}
	sigFast := pl.PredictorSigmas()
	for p := range sigNaive {
		if math.IsNaN(sigNaive[p]) != math.IsNaN(sigFast[p]) {
			t.Fatalf("path %d: NaN disagreement: %v vs %v", p, sigNaive[p], sigFast[p])
		}
		if !math.IsNaN(sigNaive[p]) && sigNaive[p] != sigFast[p] {
			t.Fatalf("path %d: σ′ %v (naive) != %v (kernel)", p, sigNaive[p], sigFast[p])
		}
	}
}

// TestPredictBoundsKernelZeroAlloc asserts the per-chip prediction fast
// path performs zero heap allocations once the worker scratch is warm —
// the contract that keeps fleet throughput off the garbage collector.
func TestPredictBoundsKernelZeroAlloc(t *testing.T) {
	c, pl := kernelTestPlan(t)
	ch := tester.SampleChip(c, 9, 1)
	out, err := pl.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}
	b := InitBounds(c)
	copy(b.Lo, out.Bounds.Lo)
	copy(b.Hi, out.Bounds.Hi)

	scr := pl.getScratch()
	defer pl.putScratch(scr)
	pl.kernels.predictBounds(b, &scr.ws) // warm-up
	allocs := testing.AllocsPerRun(100, func() {
		pl.kernels.predictBounds(b, &scr.ws)
	})
	if allocs != 0 {
		t.Fatalf("per-chip prediction allocated %.1f times per run after warm-up", allocs)
	}
}

// TestWithoutPredictorKernelsFallsBack covers the naive fallback used by
// the differential suite: a plan stripped of its kernels must still run
// chips (through PredictBounds) and produce an outcome.
func TestWithoutPredictorKernelsFallsBack(t *testing.T) {
	c, pl := kernelTestPlan(t)
	naive := pl.WithoutPredictorKernels()
	if naive.kernels != nil {
		t.Fatal("WithoutPredictorKernels kept the kernels")
	}
	if pl.kernels == nil {
		t.Fatal("WithoutPredictorKernels mutated the original plan")
	}
	ch := tester.SampleChip(c, 9, 2)
	want, err := pl.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := naive.RunChip(ch, c.TNominal)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations || got.Passed != want.Passed || got.Xi != want.Xi {
		t.Fatalf("naive fallback diverges: (%d, %v, %v) vs (%d, %v, %v)",
			got.Iterations, got.Passed, got.Xi, want.Iterations, want.Passed, want.Xi)
	}
}
