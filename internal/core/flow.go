package core

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"effitest/internal/circuit"
	"effitest/internal/pool"
	"effitest/internal/tester"
)

// ErrChipCircuitMismatch is returned when a chip is run against a plan
// prepared for a different circuit instance.
var ErrChipCircuitMismatch = errors.New("core: chip belongs to a different circuit")

// Plan is the offline (per-circuit, tester-free) part of EffiTest: path
// groups with their PCA selections, the test batches, and the hold-time
// tuning bounds. Its construction time is the paper's Tp.
type Plan struct {
	Circuit *circuit.Circuit
	Cfg     Config

	Groups  []Group
	Tested  []int // all paths measured on the tester (selected + fills)
	Filled  []int // subset of Tested added by slot filling
	Batches [][]int
	Hold    *HoldBounds

	PrepDuration time.Duration

	// circuitHash / circuitName identify the circuit a serialized plan was
	// prepared for (see planio.go); set by Prepare, the codecs and Bind.
	circuitHash string
	circuitName string

	// kernels holds the baked per-group conditional predictors (see
	// kernels.go) and scratch the pool of per-worker workspaces. Both are
	// derived state — never serialized, read-only afterwards, shared safely
	// by shallow copies. Prepare bakes kernels eagerly; Bind instead sets
	// lazy, and the first chip run bakes through it (the pointer is shared
	// by shallow copies, so the bake happens exactly once).
	kernels *predictKernels
	lazy    *lazyKernels
	scratch *sync.Pool
}

// Prepare runs the offline flow of Figure 4: path selection for prediction,
// test multiplexing (with slot filling), and hold-bound computation.
func Prepare(c *circuit.Circuit, cfg Config) (*Plan, error) {
	return PrepareCtx(context.Background(), c, cfg)
}

// PrepareCtx is Prepare with cancellation: the context is checked between
// the offline stages and between per-group solves inside them, so on a
// large circuit a cancelled PrepareCtx returns promptly with the context's
// error instead of finishing minutes of path selection first.
func PrepareCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	groups, tested, err := selectPathsCtx(ctx, c, cfg)
	if err != nil {
		return nil, err
	}
	// Precompute each group's joint distribution once: the per-chip
	// conditional prediction reuses it across the whole fleet instead of
	// rebuilding covariance submatrices chip by chip.
	if err := precomputeGroupMVNs(ctx, c, groups); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	batches := FormBatches(c, tested, cfg)
	var filled []int
	if cfg.FillSlots {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sig, err := PredictSigmas(c, groups, tested)
		if err != nil {
			return nil, err
		}
		batches, filled = FillSlots(c, batches, tested, sig, cfg)
		if len(filled) > 0 {
			tested = append(append([]int{}, tested...), filled...)
			sort.Ints(tested)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hb, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		return nil, err
	}
	pl := &Plan{
		Circuit: c,
		Cfg:     cfg,
		Groups:  groups,
		Tested:  tested,
		Filled:  filled,
		Batches: batches,
		Hold:    hb,
	}
	// Bake the conditional-prediction kernels for the final tested set: the
	// ridged Cholesky factors, cross-covariance gains and conditional
	// sigmas the per-chip flow applies without re-factorizing (kernels.go).
	if err := pl.bakeKernels(ctx); err != nil {
		return nil, err
	}
	pl.PrepDuration = time.Since(start)
	return pl, nil
}

// precomputeGroupMVNs attaches each multi-path group's joint delay
// distribution (used by Prepare, and by Bind when a plan is restored from a
// serialized artifact — the MVN is derived state, recomputed rather than
// shipped).
func precomputeGroupMVNs(ctx context.Context, c *circuit.Circuit, groups []Group) error {
	for i := range groups {
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(groups[i].Paths) < 2 {
			continue
		}
		mvn, err := groupMVN(c, groups[i])
		if err != nil {
			return err
		}
		groups[i].mvn = mvn
	}
	return nil
}

// NumTested returns the paper's npt.
func (pl *Plan) NumTested() int { return len(pl.Tested) }

// RunOptions selects the pluggable pieces of chip execution: the
// measurement transport and the event sink. The zero value is the default
// flow — in-process simulated ATE, no events.
type RunOptions struct {
	// Backend is the measurement transport (nil = tester.SimBackend{}).
	Backend tester.Backend
	// Observer receives typed flow events (nil = none). Chips run
	// concurrently, so the observer must be safe for concurrent use.
	Observer Observer
}

func (o RunOptions) backend() tester.Backend {
	if o.Backend == nil {
		return tester.SimBackend{}
	}
	return o.Backend
}

// ChipOutcome is the per-chip result of the online flow.
type ChipOutcome struct {
	Iterations int   // tester frequency steps (the paper's per-chip ta term)
	ScanBits   int64 // configuration bits shifted through the scan chain

	AlignDuration   time.Duration // Tt component
	ConfigDuration  time.Duration // Ts component
	PredictDuration time.Duration // Tp component spent per chip (§3.4 prediction)

	Bounds     *Bounds   // final per-path delay windows (measured/predicted)
	X          []float64 // configured buffer values
	Xi         float64
	Configured bool // a feasible configuration was found
	Passed     bool // final pass/fail test at Td (setup + hold)
}

// RunChip executes the online flow on one manufactured chip: aligned delay
// test of every batch, conditional prediction of the untested paths, buffer
// configuration, and the final pass/fail test.
func (pl *Plan) RunChip(ch *tester.Chip, Td float64) (*ChipOutcome, error) {
	return pl.RunChipCtx(context.Background(), ch, Td)
}

// RunChipCtx is RunChip with cancellation: the context is checked on every
// batch and every tester iteration inside a batch, so a cancelled run
// aborts promptly with the context's error. RunChipCtx is safe for
// concurrent use on distinct chips — each run owns its measurement session
// and bounds, and the plan is read-only after Prepare.
func (pl *Plan) RunChipCtx(ctx context.Context, ch *tester.Chip, Td float64) (*ChipOutcome, error) {
	return pl.RunChipOpts(ctx, ch, Td, RunOptions{})
}

// RunChipOpts is RunChipCtx with a pluggable measurement backend and an
// event observer. The observer sees BatchStart/End, AlignSolve,
// FrequencyStep, Predict and ChipDone events for this chip (identified by
// Chip.Index); a nil backend means the in-process simulated ATE.
func (pl *Plan) RunChipOpts(ctx context.Context, ch *tester.Chip, Td float64, opts RunOptions) (*ChipOutcome, error) {
	scr := pl.getScratch()
	defer pl.putScratch(scr)
	return pl.runChipScratch(ctx, ch, Td, opts, scr, pool.Resolve(pl.Cfg.Workers))
}

// measureChip runs the measurement phase — aligned delay test of every
// batch — returning the partial outcome (iterations, scan bits, alignment
// time) and the per-path bounds with the tested paths resolved.
func (pl *Plan) measureChip(ctx context.Context, ch *tester.Chip, opts RunOptions, scr *chipScratch) (*ChipOutcome, *Bounds, error) {
	c, cfg, obs := pl.Circuit, pl.Cfg, opts.Observer
	out := &ChipOutcome{}
	b := InitBounds(c)
	sess, err := opts.backend().Open(ch, cfg.TesterResolution)
	if err != nil {
		return nil, nil, err
	}
	lambda := pl.Hold.Lambda
	for bi, batch := range pl.Batches {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		observe(obs, BatchStartEvent{Chip: ch.Index, Batch: bi, Paths: len(batch)})
		iters, alignDur, err := runBatchTest(ctx, sess, c, batch, b, lambda, cfg, obs, ch.Index, bi, scr)
		observe(obs, BatchEndEvent{Chip: ch.Index, Batch: bi, Iterations: iters, AlignTime: alignDur, Err: err})
		if err != nil {
			return nil, nil, err
		}
		out.Iterations += iters
		out.AlignDuration += alignDur
	}
	_, out.ScanBits = sess.Counters()
	return out, b, nil
}

// finishChip runs the configuration phase: final buffer values (Eqs. 15–18)
// and the pass/fail test at Td.
func (pl *Plan) finishChip(ch *tester.Chip, Td float64, out *ChipOutcome, b *Bounds) error {
	out.Bounds = b
	cfgStart := time.Now()
	res, err := Configure(pl.Circuit, b, pl.Hold, Td, pl.Cfg)
	out.ConfigDuration = time.Since(cfgStart)
	if err != nil {
		return err
	}
	out.Configured = res.Feasible
	if res.Feasible {
		out.X = res.X
		out.Xi = res.Xi
		out.Passed = ch.PassesAt(Td, res.X) && ch.HoldOK(res.X)
	} else {
		out.X = make([]float64, pl.Circuit.NumFF)
	}
	return nil
}

// chipDone emits the terminal per-chip event.
func chipDone(obs Observer, chip int, out *ChipOutcome, err error) {
	if obs == nil {
		return
	}
	e := ChipDoneEvent{Chip: chip, Err: err}
	if out != nil {
		e.Iterations = out.Iterations
		e.Configured = out.Configured
		e.Passed = out.Passed
	}
	obs.Observe(e)
}

// runChipScratch is RunChipOpts over a caller-owned scratch: the worker
// pool hands each worker one scratch for its whole chip stream, so the hot
// prediction and alignment state is reused instead of reallocated per chip.
// pw is the within-chip prediction fan-out (subworkers sweeping the
// correlation groups of one chip in parallel; ≤1 = sequential).
func (pl *Plan) runChipScratch(ctx context.Context, ch *tester.Chip, Td float64, opts RunOptions, scr *chipScratch, pw int) (out *ChipOutcome, err error) {
	if ch.Circuit != pl.Circuit {
		return nil, ErrChipCircuitMismatch
	}
	obs := opts.Observer
	if obs != nil {
		defer func() { chipDone(obs, ch.Index, out, err) }()
	}
	out, b, err := pl.measureChip(ctx, ch, opts, scr)
	if err != nil {
		return nil, err
	}

	ks, err := pl.predictorKernels(ctx)
	if err != nil {
		return nil, err
	}
	predStart := time.Now()
	if ks != nil {
		// Fast path: the baked kernels reduce §3.4's conditional estimation
		// to a triangular solve + matvec per group, allocation-free over the
		// worker's scratch, bit-identical to the naive path below.
		scr.bounds = append(scr.bounds[:0], b)
		ks.predictInto(scr.bounds, scr, pw)
	} else if err := PredictBounds(pl.Circuit, pl.Groups, pl.Tested, b); err != nil {
		return nil, err
	}
	out.PredictDuration = time.Since(predStart)
	if obs != nil {
		e := PredictEvent{Chip: ch.Index, Duration: out.PredictDuration}
		if ks != nil {
			e.Groups = ks.predGroups
			e.Predicted = ks.predPaths
		}
		obs.Observe(e)
	}

	if err := pl.finishChip(ch, Td, out, b); err != nil {
		return nil, err
	}
	return out, nil
}

// runChipBatch executes a contiguous run of chips as one scheduling unit:
// measurement chip by chip, then §3.4 prediction batched across every chip
// that measured cleanly — one TRSM-shaped multi-RHS kernel call per
// correlation group — then configuration chip by chip. Outcomes are
// bit-identical to per-chip execution (the batched kernels are column-wise
// identical to the vector kernels) and a chip's failure stays its own
// result: the rest of the batch proceeds without it. The returned slice is
// parallel to chips, entry i carrying Index first+i.
//
// The batch's prediction wall time is attributed evenly: each predicted
// chip's PredictDuration is the batch total divided by the batch's live
// chip count.
func (pl *Plan) runChipBatch(ctx context.Context, first int, chips []*tester.Chip, Td float64, opts RunOptions, scr *chipScratch, pw int) []ChipResult {
	obs := opts.Observer
	res := make([]ChipResult, len(chips))
	bs := make([]*Bounds, len(chips))
	for i, ch := range chips {
		res[i] = ChipResult{Index: first + i, Chip: ch}
		if ch.Circuit != pl.Circuit {
			// Mirror runChipScratch: a mismatched chip fails before the
			// observer is engaged, so no ChipDone event.
			res[i].Err = ErrChipCircuitMismatch
			continue
		}
		if err := ctx.Err(); err != nil {
			res[i].Err = err
			chipDone(obs, ch.Index, nil, err)
			continue
		}
		out, b, err := pl.measureChip(ctx, ch, opts, scr)
		if err != nil {
			res[i].Err = err
			chipDone(obs, ch.Index, nil, err)
			continue
		}
		res[i].Outcome = out
		bs[i] = b
	}

	// Batched prediction over the survivors.
	live := scr.bounds[:0]
	for _, b := range bs {
		if b != nil {
			live = append(live, b)
		}
	}
	scr.bounds = live
	ks, kerr := pl.predictorKernels(ctx)
	var share time.Duration
	if kerr == nil && ks != nil && len(live) > 0 {
		predStart := time.Now()
		ks.predictInto(live, scr, pw)
		share = time.Since(predStart) / time.Duration(len(live))
	}

	for i, ch := range chips {
		if res[i].Err != nil || bs[i] == nil {
			continue
		}
		out, b := res[i].Outcome, bs[i]
		if kerr != nil {
			res[i].Outcome, res[i].Err = nil, kerr
			chipDone(obs, ch.Index, nil, kerr)
			continue
		}
		if ks == nil {
			// Naive fallback (plans without kernels), still per chip.
			predStart := time.Now()
			if err := PredictBounds(pl.Circuit, pl.Groups, pl.Tested, b); err != nil {
				res[i].Outcome, res[i].Err = nil, err
				chipDone(obs, ch.Index, nil, err)
				continue
			}
			out.PredictDuration = time.Since(predStart)
		} else {
			out.PredictDuration = share
		}
		if obs != nil {
			e := PredictEvent{Chip: ch.Index, Duration: out.PredictDuration}
			if ks != nil {
				e.Groups = ks.predGroups
				e.Predicted = ks.predPaths
			}
			obs.Observe(e)
		}
		if err := pl.finishChip(ch, Td, out, b); err != nil {
			res[i].Outcome, res[i].Err = nil, err
			chipDone(obs, ch.Index, nil, err)
			continue
		}
		chipDone(obs, ch.Index, out, nil)
	}
	return res
}
