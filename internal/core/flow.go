package core

import (
	"context"
	"errors"
	"sort"
	"time"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

// ErrChipCircuitMismatch is returned when a chip is run against a plan
// prepared for a different circuit instance.
var ErrChipCircuitMismatch = errors.New("core: chip belongs to a different circuit")

// Plan is the offline (per-circuit, tester-free) part of EffiTest: path
// groups with their PCA selections, the test batches, and the hold-time
// tuning bounds. Its construction time is the paper's Tp.
type Plan struct {
	Circuit *circuit.Circuit
	Cfg     Config

	Groups  []Group
	Tested  []int // all paths measured on the tester (selected + fills)
	Filled  []int // subset of Tested added by slot filling
	Batches [][]int
	Hold    *HoldBounds

	PrepDuration time.Duration
}

// Prepare runs the offline flow of Figure 4: path selection for prediction,
// test multiplexing (with slot filling), and hold-bound computation.
func Prepare(c *circuit.Circuit, cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	groups, tested, err := SelectPaths(c, cfg)
	if err != nil {
		return nil, err
	}
	// Precompute each group's joint distribution once: the per-chip
	// conditional prediction reuses it across the whole fleet instead of
	// rebuilding covariance submatrices chip by chip.
	for i := range groups {
		if len(groups[i].Paths) < 2 {
			continue
		}
		mvn, err := groupMVN(c, groups[i])
		if err != nil {
			return nil, err
		}
		groups[i].mvn = mvn
	}
	batches := FormBatches(c, tested, cfg)
	var filled []int
	if cfg.FillSlots {
		sig, err := PredictSigmas(c, groups, tested)
		if err != nil {
			return nil, err
		}
		batches, filled = FillSlots(c, batches, tested, sig, cfg)
		if len(filled) > 0 {
			tested = append(append([]int{}, tested...), filled...)
			sort.Ints(tested)
		}
	}
	hb, err := ComputeHoldBounds(c, cfg)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Circuit:      c,
		Cfg:          cfg,
		Groups:       groups,
		Tested:       tested,
		Filled:       filled,
		Batches:      batches,
		Hold:         hb,
		PrepDuration: time.Since(start),
	}, nil
}

// NumTested returns the paper's npt.
func (pl *Plan) NumTested() int { return len(pl.Tested) }

// ChipOutcome is the per-chip result of the online flow.
type ChipOutcome struct {
	Iterations int   // tester frequency steps (the paper's per-chip ta term)
	ScanBits   int64 // configuration bits shifted through the scan chain

	AlignDuration  time.Duration // Tt component
	ConfigDuration time.Duration // Ts component

	Bounds     *Bounds   // final per-path delay windows (measured/predicted)
	X          []float64 // configured buffer values
	Xi         float64
	Configured bool // a feasible configuration was found
	Passed     bool // final pass/fail test at Td (setup + hold)
}

// RunChip executes the online flow on one manufactured chip: aligned delay
// test of every batch, conditional prediction of the untested paths, buffer
// configuration, and the final pass/fail test.
func (pl *Plan) RunChip(ch *tester.Chip, Td float64) (*ChipOutcome, error) {
	return pl.RunChipCtx(context.Background(), ch, Td)
}

// RunChipCtx is RunChip with cancellation: the context is checked on every
// batch and every tester iteration inside a batch, so a cancelled run
// aborts promptly with the context's error. RunChipCtx is safe for
// concurrent use on distinct chips — each run owns its ATE session and
// bounds, and the plan is read-only after Prepare.
func (pl *Plan) RunChipCtx(ctx context.Context, ch *tester.Chip, Td float64) (*ChipOutcome, error) {
	if ch.Circuit != pl.Circuit {
		return nil, ErrChipCircuitMismatch
	}
	c := pl.Circuit
	cfg := pl.Cfg
	out := &ChipOutcome{}

	b := InitBounds(c)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	lambda := pl.Hold.Lambda
	for _, batch := range pl.Batches {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iters, alignDur, err := RunBatchTest(ctx, ate, c, batch, b, lambda, cfg)
		if err != nil {
			return nil, err
		}
		out.Iterations += iters
		out.AlignDuration += alignDur
	}
	out.ScanBits = ate.ScanBits

	if err := PredictBounds(c, pl.Groups, pl.Tested, b); err != nil {
		return nil, err
	}
	out.Bounds = b

	cfgStart := time.Now()
	res, err := Configure(c, b, pl.Hold, Td, cfg)
	out.ConfigDuration = time.Since(cfgStart)
	if err != nil {
		return nil, err
	}
	out.Configured = res.Feasible
	if res.Feasible {
		out.X = res.X
		out.Xi = res.Xi
		out.Passed = ch.PassesAt(Td, res.X) && ch.HoldOK(res.X)
	} else {
		out.X = make([]float64, c.NumFF)
	}
	return out, nil
}
