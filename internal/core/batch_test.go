package core

import (
	"math"
	"testing"
)

func TestFormBatchesNoConflicts(t *testing.T) {
	c := tinyCircuit(t, 1)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	batches := FormBatches(c, all, DefaultConfig())
	covered := map[int]bool{}
	for bi, batch := range batches {
		srcs := map[int]bool{}
		dsts := map[int]bool{}
		for _, p := range batch {
			if covered[p] {
				t.Fatalf("path %d in multiple batches", p)
			}
			covered[p] = true
			pt := &c.Paths[p]
			if srcs[pt.From] {
				t.Fatalf("batch %d: two paths leave FF %d", bi, pt.From)
			}
			if dsts[pt.To] {
				t.Fatalf("batch %d: two paths converge at FF %d", bi, pt.To)
			}
			srcs[pt.From] = true
			dsts[pt.To] = true
		}
	}
	if len(covered) != c.NumPaths() {
		t.Fatalf("only %d of %d paths batched", len(covered), c.NumPaths())
	}
}

func TestFormBatchesRespectsExclusive(t *testing.T) {
	c := tinyCircuit(t, 2)
	// Find two batch-compatible paths and mark them exclusive.
	var a, b = -1, -1
	for i := 0; i < c.NumPaths() && a < 0; i++ {
		for j := i + 1; j < c.NumPaths(); j++ {
			if c.Paths[i].From != c.Paths[j].From && c.Paths[i].To != c.Paths[j].To {
				a, b = i, j
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no compatible pair")
	}
	c.Exclusive = append(c.Exclusive, [2]int{a, b})
	batches := FormBatches(c, []int{a, b}, DefaultConfig())
	if len(batches) != 2 {
		t.Fatalf("exclusive pair shared a batch: %v", batches)
	}
}

func TestFormBatchesSeriesChainsAllowed(t *testing.T) {
	// Paths u->v and v->w share FF v as sink/source — the paper's series
	// example; they must be batchable together.
	c := tinyCircuit(t, 3)
	var a, b = -1, -1
	for i := 0; i < c.NumPaths() && a < 0; i++ {
		for j := 0; j < c.NumPaths(); j++ {
			if i == j {
				continue
			}
			if c.Paths[i].To == c.Paths[j].From &&
				c.Paths[i].From != c.Paths[j].From && c.Paths[i].To != c.Paths[j].To {
				a, b = i, j
				break
			}
		}
	}
	if a < 0 {
		t.Skip("no series pair in tiny circuit")
	}
	batches := FormBatches(c, []int{a, b}, DefaultConfig())
	if len(batches) != 1 {
		t.Fatalf("series chain split into %d batches", len(batches))
	}
}

func TestFormBatchesLowerBound(t *testing.T) {
	// The number of batches must be at least the max endpoint contention.
	c := tinyCircuit(t, 4)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	src := map[int]int{}
	dst := map[int]int{}
	maxDeg := 0
	for _, p := range all {
		src[c.Paths[p].From]++
		dst[c.Paths[p].To]++
	}
	for _, v := range src {
		if v > maxDeg {
			maxDeg = v
		}
	}
	for _, v := range dst {
		if v > maxDeg {
			maxDeg = v
		}
	}
	batches := FormBatches(c, all, DefaultConfig())
	if len(batches) < maxDeg {
		t.Fatalf("%d batches below conflict lower bound %d", len(batches), maxDeg)
	}
	// Greedy should stay within 2x the lower bound on these circuits.
	if len(batches) > 2*maxDeg+1 {
		t.Fatalf("%d batches far above lower bound %d", len(batches), maxDeg)
	}
}

func TestMaxBatchCap(t *testing.T) {
	c := tinyCircuit(t, 5)
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	cfg := DefaultConfig()
	cfg.MaxBatch = 2
	for _, batch := range FormBatches(c, all, cfg) {
		if len(batch) > 2 {
			t.Fatalf("batch size %d exceeds cap", len(batch))
		}
	}
}

func TestFillSlotsAddsHighVarianceCompatible(t *testing.T) {
	c := tinyCircuit(t, 6)
	cfg := DefaultConfig()
	groups, tested, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := FormBatches(c, tested, cfg)
	sig, err := PredictSigmas(c, groups, tested)
	if err != nil {
		t.Fatal(err)
	}
	newBatches, added := FillSlots(c, batches, tested, sig, cfg)

	// Added paths must not be already tested, must carry valid sigma, and
	// the new batches must still be conflict-free.
	testedSet := map[int]bool{}
	for _, p := range tested {
		testedSet[p] = true
	}
	for _, p := range added {
		if testedSet[p] {
			t.Fatalf("added already-tested path %d", p)
		}
		if math.IsNaN(sig[p]) {
			t.Fatalf("added path %d has no predicted sigma", p)
		}
	}
	for bi, batch := range newBatches {
		srcs := map[int]bool{}
		dsts := map[int]bool{}
		for _, p := range batch {
			pt := &c.Paths[p]
			if srcs[pt.From] || dsts[pt.To] {
				t.Fatalf("batch %d conflict after filling", bi)
			}
			srcs[pt.From] = true
			dsts[pt.To] = true
		}
	}
	// Batch count unchanged; total paths grew by len(added).
	if len(newBatches) != len(batches) {
		t.Fatal("filling changed batch count")
	}
	tot0, tot1 := 0, 0
	for _, b := range batches {
		tot0 += len(b)
	}
	for _, b := range newBatches {
		tot1 += len(b)
	}
	if tot1 != tot0+len(added) {
		t.Fatalf("path accounting wrong: %d -> %d with %d added", tot0, tot1, len(added))
	}
}
