package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"
)

// v1BinaryArtifact downgrades a current binary artifact to format version 1
// (the version field is a single-byte uvarint right after the magic for all
// versions < 128).
func v1BinaryArtifact(tb testing.TB, bin []byte) []byte {
	tb.Helper()
	old := append([]byte{}, bin...)
	if old[len(planMagic)] != PlanFormatVersion {
		tb.Fatalf("artifact version byte = %d, want %d", old[len(planMagic)], PlanFormatVersion)
	}
	old[len(planMagic)] = 1
	return old
}

// v1JSONArtifact downgrades a current JSON artifact to format version 1.
func v1JSONArtifact(tb testing.TB, js []byte) []byte {
	tb.Helper()
	var m map[string]any
	if err := json.Unmarshal(js, &m); err != nil {
		tb.Fatal(err)
	}
	m["format"] = 1
	out, err := json.Marshal(m)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// TestPlanDecodeRejectsV1Artifacts pins the v1→v2 compatibility contract:
// artifacts written before the prediction-kernel bake (PR 3/4 plan caches
// and exports) are rejected with the typed ErrPlanVersion — never decoded
// into a plan with garbage kernels.
func TestPlanDecodeRejectsV1Artifacts(t *testing.T) {
	_, bin, js := fuzzPlanArtifacts(t)

	if _, err := DecodePlan(v1BinaryArtifact(t, bin)); !errors.Is(err, ErrPlanVersion) {
		t.Fatalf("v1 binary artifact: got %v, want ErrPlanVersion", err)
	}
	if _, err := DecodePlanJSON(bytes.NewReader(v1JSONArtifact(t, js))); !errors.Is(err, ErrPlanVersion) {
		t.Fatalf("v1 JSON artifact: got %v, want ErrPlanVersion", err)
	}
	// Future versions are rejected the same way — decode never guesses.
	future := append([]byte{}, bin...)
	future[len(planMagic)] = PlanFormatVersion + 1
	if _, err := DecodePlan(future); !errors.Is(err, ErrPlanVersion) {
		t.Fatalf("future binary artifact: got %v, want ErrPlanVersion", err)
	}
}

// TestPlanCacheSelfHealsAcrossVersions proves a cache directory carrying
// stale artifacts recovers by itself: the version is part of the cache key
// (old entries are simply never looked up), and even a v1 artifact planted
// at a current key reads as a miss that the next Prepare overwrites.
func TestPlanCacheSelfHealsAcrossVersions(t *testing.T) {
	c, bin, _ := fuzzPlanArtifacts(t)
	cfg := DefaultConfig()
	cfg.HoldSamples = 40

	dir := t.TempDir()
	pc, err := NewPlanCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := pc.Key(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pc.Path(key), v1BinaryArtifact(t, bin), 0o644); err != nil {
		t.Fatal(err)
	}
	if pl, err := pc.Get(c, cfg); err != nil || pl != nil {
		t.Fatalf("stale v1 entry should read as a miss, got plan=%v err=%v", pl, err)
	}
	pl, hit, err := PrepareCached(context.Background(), dir, c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("stale entry must not count as a cache hit")
	}
	if pl.kernels == nil {
		t.Fatal("re-prepared plan has no baked kernels")
	}
	// The overwritten entry now loads — kernels defer to first use.
	warm, err := pc.Get(c, cfg)
	if err != nil || warm == nil {
		t.Fatalf("self-healed entry should hit, got plan=%v err=%v", warm, err)
	}
	if warm.lazy == nil {
		t.Fatal("cache-loaded plan has no lazy kernel state")
	}
	if ks, err := warm.predictorKernels(context.Background()); err != nil || ks == nil {
		t.Fatalf("cache-loaded plan could not bake kernels on demand: ks=%v err=%v", ks, err)
	}
}
