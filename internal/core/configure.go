package core

import (
	"fmt"
	"math"

	"effitest/internal/circuit"
	"effitest/internal/lp"
	"effitest/internal/mip"
	"effitest/internal/skew"
)

// ConfigureResult is the outcome of buffer-value configuration (Eqs. 15–18).
type ConfigureResult struct {
	X        []float64 // per-FF buffer values (lattice points; unbuffered 0)
	Xi       float64   // achieved objective ξ: max shortfall from upper bounds
	Feasible bool
}

// Configure determines final buffer values from the per-path delay windows
// in b (measured or predicted) so that the chip meets period Td while the
// assumed delays stay as close to their upper bounds as possible (minimize
// ξ of Eqs. 15–17), subject to buffer ranges (18) and hold bounds (21).
func Configure(c *circuit.Circuit, b *Bounds, hb *HoldBounds, Td float64, cfg Config) (ConfigureResult, error) {
	switch cfg.ConfigMode {
	case ConfigureScalable:
		return configureScalable(c, b, hb, Td)
	case ConfigureMILP:
		return configureMILP(c, b, hb, Td)
	default:
		return ConfigureResult{}, fmt.Errorf("core: unknown configure mode %d", cfg.ConfigMode)
	}
}

// pairBound aggregates parallel paths between the same FF pair: every path's
// constraints must hold, so the pair's effective bounds are the maxima.
type pairBound struct {
	from, to int
	u, l     float64
	lambda   float64
}

func pairBounds(c *circuit.Circuit, b *Bounds, hb *HoldBounds) []pairBound {
	idx := map[[2]int]int{}
	var out []pairBound
	for i := range c.Paths {
		p := &c.Paths[i]
		key := [2]int{p.From, p.To}
		j, ok := idx[key]
		if !ok {
			j = len(out)
			idx[key] = j
			out = append(out, pairBound{
				from: p.From, to: p.To,
				u: math.Inf(-1), l: math.Inf(-1),
				lambda: hb.Lambda(p.From, p.To),
			})
		}
		out[j].u = math.Max(out[j].u, b.Hi[i])
		out[j].l = math.Max(out[j].l, b.Lo[i])
	}
	return out
}

// configureScalable solves the model by bisection on ξ. For a fixed ξ the
// constraints reduce to differences on the buffer lattice:
//
//	x_i - x_j ≤ Td - max(u_ij - ξ, l_ij)   (from 15–17)
//	x_i - x_j ≥ λ_ij                        (21)
//
// which FeasibleDiscrete decides exactly. ξ saturates at max(u-l), so the
// search space is closed; 48 bisection steps give ~1e-14 relative precision.
func configureScalable(c *circuit.Circuit, b *Bounds, hb *HoldBounds, Td float64) (ConfigureResult, error) {
	pbs := pairBounds(c, b, hb)
	arcsAt := func(xi float64) []skew.Timing {
		arcs := make([]skew.Timing, len(pbs))
		for i, pb := range pbs {
			arcs[i] = skew.Timing{
				From: pb.from, To: pb.to,
				Setup: math.Max(pb.u-xi, pb.l),
				Hold:  pb.lambda,
			}
		}
		return arcs
	}
	xiMax := 0.0
	for _, pb := range pbs {
		if w := pb.u - pb.l; w > xiMax {
			xiMax = w
		}
	}
	xSat, ok := skew.FeasibleDiscrete(Td, arcsAt(xiMax), c.Buf)
	if !ok {
		return ConfigureResult{Feasible: false}, nil
	}
	// ξ = 0 may already work (chip comfortably meets Td at the upper
	// bounds).
	if x0, ok := skew.FeasibleDiscrete(Td, arcsAt(0), c.Buf); ok {
		return ConfigureResult{X: x0, Xi: 0, Feasible: true}, nil
	}
	lo, hi := 0.0, xiMax
	bestX := xSat
	for it := 0; it < 48; it++ {
		mid := (lo + hi) / 2
		if x, ok := skew.FeasibleDiscrete(Td, arcsAt(mid), c.Buf); ok {
			hi = mid
			bestX = x
		} else {
			lo = mid
		}
	}
	return ConfigureResult{X: bestX, Xi: hi, Feasible: true}, nil
}

// configureMILP is the literal MILP of Eqs. (15)–(18) plus (21): variables
// ξ, one assumed delay D'ij per path, and integer lattice steps per buffer.
// Cross-check/ablation use; cost grows with path count.
func configureMILP(c *circuit.Circuit, b *Bounds, hb *HoldBounds, Td float64) (ConfigureResult, error) {
	p := mip.NewProblem()
	xi := p.AddVar("xi", 0, lp.Inf, 1)

	type bufVar struct {
		v    int
		lo   float64
		step float64
	}
	bufOf := map[int]bufVar{}
	xTerm := func(f int, sign float64) (lp.Term, float64, bool) {
		if !c.Buf.Buffered[f] {
			return lp.Term{}, 0, false
		}
		bv, ok := bufOf[f]
		if !ok {
			bv = bufVar{
				v:    p.AddIntVar(fmt.Sprintf("n%d", f), 0, float64(c.Buf.Steps), 0),
				lo:   c.Buf.Lo[f],
				step: c.Buf.StepSize(f),
			}
			bufOf[f] = bv
		}
		return lp.Term{Var: bv.v, Coef: sign * bv.step}, sign * bv.lo, true
	}

	for i := range c.Paths {
		pt := &c.Paths[i]
		d := p.AddVar(fmt.Sprintf("D%d", i), b.Lo[i], b.Hi[i], 0)
		// (16) D' + x_i - x_j ≤ Td.
		terms := []lp.Term{{Var: d, Coef: 1}}
		rhs := Td
		if t, off, ok := xTerm(pt.From, 1); ok {
			terms = append(terms, t)
			rhs -= off
		}
		if t, off, ok := xTerm(pt.To, -1); ok {
			terms = append(terms, t)
			rhs -= off
		}
		p.AddConstraint("setup", terms, lp.LE, rhs)
		// (17) ξ ≥ u - D'.
		p.AddConstraint("xi", []lp.Term{{Var: xi, Coef: 1}, {Var: d, Coef: 1}}, lp.GE, b.Hi[i])
	}

	// (21) hold bounds per pair.
	for pair, lam := range holdPairs(c, hb) {
		var terms []lp.Term
		rhs := lam
		if t, off, ok := xTerm(pair[0], 1); ok {
			terms = append(terms, t)
			rhs -= off
		}
		if t, off, ok := xTerm(pair[1], -1); ok {
			terms = append(terms, t)
			rhs -= off
		}
		if len(terms) > 0 {
			p.AddConstraint("hold", terms, lp.GE, rhs)
		} else if rhs > 0 {
			return ConfigureResult{Feasible: false}, nil
		}
	}

	sol, err := p.Solve()
	if err != nil {
		return ConfigureResult{}, err
	}
	if sol.Status == lp.StatusInfeasible {
		return ConfigureResult{Feasible: false}, nil
	}
	if sol.Status != lp.StatusOptimal {
		return ConfigureResult{}, fmt.Errorf("core: configuration MILP %v", sol.Status)
	}
	x := make([]float64, c.NumFF)
	for f, bv := range bufOf {
		x[f] = bv.lo + bv.step*math.Round(sol.X[bv.v])
	}
	return ConfigureResult{X: x, Xi: sol.X[xi], Feasible: true}, nil
}

func holdPairs(c *circuit.Circuit, hb *HoldBounds) map[[2]int]float64 {
	out := map[[2]int]float64{}
	for i := range c.Paths {
		key := [2]int{c.Paths[i].From, c.Paths[i].To}
		if _, ok := out[key]; ok {
			continue
		}
		if lam := hb.Lambda(key[0], key[1]); !math.IsInf(lam, -1) {
			out[key] = lam
		}
	}
	return out
}
