package core

import (
	"fmt"
	"math"
	"sort"

	"effitest/internal/circuit"
	"effitest/internal/lp"
	"effitest/internal/mip"
	"effitest/internal/rng"
	"effitest/internal/tester"
)

// HoldBounds carries the per-FF-pair lower bounds λij on x_i - x_j that keep
// the hold-time yield at the configured level (§3.5). A pair absent from the
// map is unconstrained.
type HoldBounds struct {
	ByPair map[[2]int]float64
}

// Lambda returns the bound for (from, to) or -Inf.
func (h *HoldBounds) Lambda(from, to int) float64 {
	if h == nil {
		return math.Inf(-1)
	}
	if v, ok := h.ByPair[[2]int{from, to}]; ok {
		return v
	}
	return math.Inf(-1)
}

// ComputeHoldBounds samples the short-path hold quantities d_ij = h_j - d_ij
// M times (Eq. 19) and chooses λij as small as possible while at least
// Y·M samples remain fully covered (Eq. 20): a sample is covered when
// λij ≥ d_ij,k for every pair. The greedy implementation drops the
// ⌊(1-Y)M⌋ samples whose removal shrinks Σλ most; an exact MILP variant is
// available for cross-checks (ComputeHoldBoundsExact).
func ComputeHoldBounds(c *circuit.Circuit, cfg Config) (*HoldBounds, error) {
	m := cfg.HoldSamples
	if m <= 0 {
		return nil, fmt.Errorf("core: HoldSamples must be positive, got %d", m)
	}
	if cfg.HoldYield <= 0 || cfg.HoldYield > 1 {
		return nil, fmt.Errorf("core: HoldYield %v out of (0,1]", cfg.HoldYield)
	}
	pairs, samples := sampleHoldQuantities(c, cfg.Seed, m)
	drop := int(math.Floor((1 - cfg.HoldYield) * float64(m)))
	dropped := make([]bool, m)
	for d := 0; d < drop; d++ {
		best, bestGain := -1, 0.0
		// Gain of dropping sample k = Σ over pairs where k attains the
		// current unique max of (max - second max).
		gain := make([]float64, m)
		for pi := range pairs {
			mx, second, mxk := pairTop2(samples, pi, dropped)
			if mxk >= 0 {
				gain[mxk] += mx - second
			}
		}
		for k := 0; k < m; k++ {
			if !dropped[k] && gain[k] > bestGain {
				best, bestGain = k, gain[k]
			}
		}
		if best < 0 {
			break // nothing to gain
		}
		dropped[best] = true
	}
	hb := &HoldBounds{ByPair: make(map[[2]int]float64, len(pairs))}
	for pi, pair := range pairs {
		mx := math.Inf(-1)
		for k := 0; k < m; k++ {
			if !dropped[k] && samples[pi][k] > mx {
				mx = samples[pi][k]
			}
		}
		hb.ByPair[pair] = mx
	}
	return hb, nil
}

// sampleHoldQuantities returns the unique (from,to) pairs and, per pair, M
// samples of d_ij = h - min-delay (max over parallel short paths of the
// pair, since each must satisfy the bound).
func sampleHoldQuantities(c *circuit.Circuit, seed int64, m int) ([][2]int, [][]float64) {
	pairIdx := map[[2]int]int{}
	var pairs [][2]int
	for i := range c.Paths {
		key := [2]int{c.Paths[i].From, c.Paths[i].To}
		if _, ok := pairIdx[key]; !ok {
			pairIdx[key] = len(pairs)
			pairs = append(pairs, key)
		}
	}
	samples := make([][]float64, len(pairs))
	for i := range samples {
		samples[i] = make([]float64, m)
		for k := range samples[i] {
			samples[i][k] = math.Inf(-1)
		}
	}
	holdSeed := rng.Seed(seed, "holdsamples", c.Name)
	for k := 0; k < m; k++ {
		ch := tester.SampleChip(c, holdSeed, k)
		for i := range c.Paths {
			pi := pairIdx[[2]int{c.Paths[i].From, c.Paths[i].To}]
			d := c.HoldTime - ch.TrueMin[i]
			if d > samples[pi][k] {
				samples[pi][k] = d
			}
		}
	}
	return pairs, samples
}

// pairTop2 returns the max, second max and the index of the (unique) max
// among non-dropped samples of pair pi; mxk is -1 when the max is attained
// by more than one sample (dropping one then gains nothing).
func pairTop2(samples [][]float64, pi int, dropped []bool) (mx, second float64, mxk int) {
	mx, second, mxk = math.Inf(-1), math.Inf(-1), -1
	count := 0
	for k, v := range samples[pi] {
		if dropped[k] {
			continue
		}
		switch {
		case v > mx:
			second = mx
			mx, mxk, count = v, k, 1
		case v == mx:
			count++
		case v > second:
			second = v
		}
	}
	if count > 1 || math.IsInf(second, -1) {
		mxk = -1
	}
	return mx, second, mxk
}

// ComputeHoldBoundsExact solves Eqs. (19)–(20) as a literal MILP (binary
// coverage variable per sample, big-M activation). Exponential in the worst
// case — use only for small M in tests and ablations.
func ComputeHoldBoundsExact(c *circuit.Circuit, cfg Config) (*HoldBounds, error) {
	m := cfg.HoldSamples
	pairs, samples := sampleHoldQuantities(c, cfg.Seed, m)

	prob := mip.NewProblem()
	lam := make([]int, len(pairs))
	lo := make([]float64, len(pairs))
	for pi := range pairs {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range samples[pi] {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
		}
		lo[pi] = mn
		lam[pi] = prob.AddVar(fmt.Sprintf("lam%d", pi), mn, mx, 1)
	}
	ys := make([]int, m)
	bigM := 0.0
	for pi := range pairs {
		for _, v := range samples[pi] {
			bigM = math.Max(bigM, v-lo[pi])
		}
	}
	bigM += 1
	for k := 0; k < m; k++ {
		ys[k] = prob.AddBinVar(fmt.Sprintf("y%d", k), 0)
		for pi := range pairs {
			// λ_pi ≥ d_pi,k - M(1-y_k)
			prob.AddConstraint("cover",
				[]lp.Term{{Var: lam[pi], Coef: 1}, {Var: ys[k], Coef: -bigM}},
				lp.GE, samples[pi][k]-bigM)
		}
	}
	terms := make([]lp.Term, m)
	for k := range ys {
		terms[k] = lp.Term{Var: ys[k], Coef: 1}
	}
	prob.AddConstraint("yield", terms, lp.GE, math.Ceil(cfg.HoldYield*float64(m)))
	sol, err := prob.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("core: hold-bound MILP %v", sol.Status)
	}
	hb := &HoldBounds{ByPair: make(map[[2]int]float64, len(pairs))}
	for pi, pair := range pairs {
		hb.ByPair[pair] = sol.X[lam[pi]]
	}
	return hb, nil
}

// HoldYieldEstimate replays the sampled hold quantities against bounds and
// returns the fraction of samples fully covered — a direct check of
// Eq. (20).
func HoldYieldEstimate(c *circuit.Circuit, hb *HoldBounds, cfg Config) float64 {
	pairs, samples := sampleHoldQuantities(c, cfg.Seed, cfg.HoldSamples)
	covered := 0
	for k := 0; k < cfg.HoldSamples; k++ {
		ok := true
		for pi, pair := range pairs {
			if samples[pi][k] > hb.Lambda(pair[0], pair[1])+1e-12 {
				ok = false
				break
			}
		}
		if ok {
			covered++
		}
	}
	return float64(covered) / float64(cfg.HoldSamples)
}

// SumLambda returns Σλ (the §3.5 objective) for reporting and ablations.
func (h *HoldBounds) SumLambda() float64 {
	keys := make([][2]int, 0, len(h.ByPair))
	for k := range h.ByPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	s := 0.0
	for _, k := range keys {
		s += h.ByPair[k]
	}
	return s
}
