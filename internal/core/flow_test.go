package core

import (
	"context"
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/stats"
	"effitest/internal/tester"
)

func TestRunBatchTestConvergesAndBrackets(t *testing.T) {
	// The central correctness property of Procedure 2: after the batch test,
	// every path's window is narrower than ε and still brackets the true
	// delay (when the true delay started inside the ±3σ window).
	c := tinyCircuit(t, 1)
	cfg := DefaultConfig()
	ch := tester.SampleChip(c, 11, 0)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	b := InitBounds(c)
	batches := FormBatches(c, rangeInts(c.NumPaths()), cfg)
	for _, batch := range batches {
		if _, _, err := RunBatchTest(context.Background(), ate, c, batch, b, NoHoldBounds, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < c.NumPaths(); p++ {
		if w := b.Width(p); w >= cfg.Eps {
			t.Fatalf("path %d window %v not resolved", p, w)
		}
		truth := ch.TrueMax[p]
		mu, sd := c.Paths[p].Max.Mean, c.Paths[p].Max.Sigma()
		if truth < mu-3*sd || truth > mu+3*sd {
			continue // outside the initial window: bracketing not guaranteed
		}
		// The tester's resolution rounding can offset bounds by one grid
		// step.
		slack := cfg.TesterResolution + 1e-9
		if truth < b.Lo[p]-slack || truth > b.Hi[p]+slack {
			t.Fatalf("path %d: true delay %v outside final window [%v, %v]",
				p, truth, b.Lo[p], b.Hi[p])
		}
	}
}

func TestRunBatchTestIterationsNearLog2(t *testing.T) {
	// A batch of m paths with aligned windows should need roughly
	// log2(width/ε) iterations in total — far fewer than m·log2(width/ε).
	c := tinyCircuit(t, 2)
	cfg := DefaultConfig()
	ch := tester.SampleChip(c, 13, 0)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	b := InitBounds(c)
	batches := FormBatches(c, rangeInts(c.NumPaths()), cfg)
	var batch []int
	for _, bb := range batches {
		if len(bb) >= 3 {
			batch = bb
			break
		}
	}
	if batch == nil {
		t.Skip("no multi-path batch")
	}
	maxW := 0.0
	for _, p := range batch {
		if w := b.Width(p); w > maxW {
			maxW = w
		}
	}
	iters, _, err := RunBatchTest(context.Background(), ate, c, batch, b, NoHoldBounds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPathBinary := int(math.Ceil(math.Log2(maxW / cfg.Eps)))
	naive := perPathBinary * len(batch)
	if iters >= naive {
		t.Fatalf("aligned batch used %d iterations, no better than naive %d", iters, naive)
	}
	if iters < perPathBinary {
		t.Fatalf("iterations %d below the information bound %d", iters, perPathBinary)
	}
}

func TestPredictSigmasShrink(t *testing.T) {
	c := tinyCircuit(t, 3)
	cfg := DefaultConfig()
	groups, tested, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := PredictSigmas(c, groups, tested)
	if err != nil {
		t.Fatal(err)
	}
	testedSet := map[int]bool{}
	for _, p := range tested {
		testedSet[p] = true
	}
	for p := 0; p < c.NumPaths(); p++ {
		if testedSet[p] {
			if !math.IsNaN(sig[p]) {
				t.Fatalf("tested path %d has predicted sigma", p)
			}
			continue
		}
		prior := c.Paths[p].Max.Sigma()
		if math.IsNaN(sig[p]) || sig[p] > prior+1e-9 {
			t.Fatalf("path %d: conditional sigma %v vs prior %v", p, sig[p], prior)
		}
	}
}

func TestPredictBoundsBracketTruth(t *testing.T) {
	// After measuring tested paths exactly (simulate with a tight window
	// around the truth), prediction windows should contain the true delays
	// of untested paths in the vast majority of chips (3σ ≈ 99.7% per path;
	// allow a generous margin for the conservative upper-bound bias).
	c := tinyCircuit(t, 4)
	cfg := DefaultConfig()
	groups, tested, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testedSet := map[int]bool{}
	for _, p := range tested {
		testedSet[p] = true
	}
	total, inside := 0, 0
	for chipIdx := 0; chipIdx < 30; chipIdx++ {
		ch := tester.SampleChip(c, 99, chipIdx)
		b := InitBounds(c)
		for _, p := range tested {
			b.Lo[p] = ch.TrueMax[p] - cfg.Eps/2
			b.Hi[p] = ch.TrueMax[p] + cfg.Eps/2
		}
		if err := PredictBounds(c, groups, tested, b); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < c.NumPaths(); p++ {
			if testedSet[p] {
				continue
			}
			total++
			if ch.TrueMax[p] >= b.Lo[p]-1e-9 && ch.TrueMax[p] <= b.Hi[p]+1e-9 {
				inside++
			}
		}
	}
	if total == 0 {
		t.Skip("everything tested")
	}
	if frac := float64(inside) / float64(total); frac < 0.95 {
		t.Fatalf("prediction bracketed only %.1f%% of untested true delays", 100*frac)
	}
}

func TestPrepareAndRunChipEndToEnd(t *testing.T) {
	c := tinyCircuit(t, 5)
	cfg := DefaultConfig()
	plan, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTested() == 0 || plan.NumTested() > c.NumPaths() {
		t.Fatalf("npt = %d", plan.NumTested())
	}
	if len(plan.Batches) == 0 {
		t.Fatal("no batches")
	}
	// Td at a comfortable level: every chip should configure and pass.
	td := chipQuantile(c, 0.9)
	passed, configured := 0, 0
	const chips = 25
	for i := 0; i < chips; i++ {
		ch := tester.SampleChip(c, 7, i)
		out, err := plan.RunChip(ch, td)
		if err != nil {
			t.Fatal(err)
		}
		if out.Iterations <= 0 {
			t.Fatal("no tester iterations recorded")
		}
		if out.Configured {
			configured++
			// Configured chips must have lattice buffer values within range.
			for f := 0; f < c.NumFF; f++ {
				if !c.Buf.Buffered[f] && out.X[f] != 0 {
					t.Fatalf("unbuffered FF %d moved", f)
				}
			}
		}
		if out.Passed {
			passed++
		}
	}
	if configured < chips*3/4 {
		t.Fatalf("only %d/%d chips configurable at q90 period", configured, chips)
	}
	if passed < configured*3/4 {
		t.Fatalf("only %d/%d configured chips passed", passed, configured)
	}
}

func TestRunChipImprovesOverNoBuffers(t *testing.T) {
	// At a period below the no-tuning critical delay quantile, tuning must
	// rescue a meaningful fraction of chips.
	c := tinyCircuit(t, 6)
	cfg := DefaultConfig()
	plan, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	td := chipQuantile(c, 0.5) // 50% of chips fail without buffers
	const chips = 40
	noBuf, proposed := 0, 0
	zeros := make([]float64, c.NumFF)
	for i := 0; i < chips; i++ {
		ch := tester.SampleChip(c, 21, i)
		if ch.PassesAt(td, zeros) {
			noBuf++
		}
		out, err := plan.RunChip(ch, td)
		if err != nil {
			t.Fatal(err)
		}
		if out.Passed {
			proposed++
		}
	}
	if proposed <= noBuf {
		t.Fatalf("tuning did not improve yield: %d vs %d of %d", proposed, noBuf, chips)
	}
}

// chipQuantile estimates the q-quantile of the no-buffer critical delay of
// the circuit by Monte Carlo.
func chipQuantile(c *circuit.Circuit, q float64) float64 {
	const n = 400
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = tester.SampleChip(c, 555, i).CriticalDelay()
	}
	return stats.Quantile(xs, q)
}
