package core

import (
	"math"
	"sort"

	"effitest/internal/circuit"
)

// conflictChecker answers whether two paths may share a test batch.
// Two paths conflict when they converge at the same flip-flop (a latch
// failure there could not be attributed) or leave from the same flip-flop
// (one launch vector cannot sensitize both), or when ATPG logic masking
// marks them mutually exclusive (§3.2). Series arrangements — the sink of
// one path being the source of another — are allowed; that is exactly the
// paper's chain p14, p46, p67, ...
type conflictChecker struct {
	exclusive map[[2]int]bool
}

func newConflictChecker(c *circuit.Circuit) *conflictChecker {
	ex := make(map[[2]int]bool, 2*len(c.Exclusive))
	for _, e := range c.Exclusive {
		ex[[2]int{e[0], e[1]}] = true
		ex[[2]int{e[1], e[0]}] = true
	}
	return &conflictChecker{exclusive: ex}
}

func (cc *conflictChecker) conflict(c *circuit.Circuit, a, b int) bool {
	pa, pb := &c.Paths[a], &c.Paths[b]
	if pa.From == pb.From || pa.To == pb.To {
		return true
	}
	return cc.exclusive[[2]int{a, b}]
}

// batchState tracks the sources/sinks used inside one batch for O(1)
// compatibility checks.
type batchState struct {
	paths   []int
	sources map[int]bool
	sinks   map[int]bool
}

func newBatchState() *batchState {
	return &batchState{sources: map[int]bool{}, sinks: map[int]bool{}}
}

func (b *batchState) compatible(c *circuit.Circuit, cc *conflictChecker, p int) bool {
	pt := &c.Paths[p]
	if b.sources[pt.From] || b.sinks[pt.To] {
		return false
	}
	for _, q := range b.paths {
		if cc.exclusive[[2]int{p, q}] {
			return false
		}
	}
	return true
}

func (b *batchState) add(c *circuit.Circuit, p int) {
	pt := &c.Paths[p]
	b.paths = append(b.paths, p)
	b.sources[pt.From] = true
	b.sinks[pt.To] = true
}

// FormBatches partitions the given paths into test batches using greedy
// first-fit over the conflict structure (the paper notes a DFS or a simple
// ILP suffices; first-fit over endpoint-degree-sorted paths is within one
// batch of optimal on all generated circuits). Paths are ordered by
// descending endpoint contention so the tightest flip-flops are packed
// first.
func FormBatches(c *circuit.Circuit, paths []int, cfg Config) [][]int {
	cc := newConflictChecker(c)
	// Contention: how many of the given paths share this path's source/sink.
	srcCount := map[int]int{}
	dstCount := map[int]int{}
	for _, p := range paths {
		srcCount[c.Paths[p].From]++
		dstCount[c.Paths[p].To]++
	}
	order := make([]int, len(paths))
	copy(order, paths)
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		ca := srcCount[c.Paths[a].From] + dstCount[c.Paths[a].To]
		cb := srcCount[c.Paths[b].From] + dstCount[c.Paths[b].To]
		if ca != cb {
			return ca > cb
		}
		return a < b
	})

	var batches []*batchState
	for _, p := range order {
		placed := false
		for _, b := range batches {
			if cfg.MaxBatch > 0 && len(b.paths) >= cfg.MaxBatch {
				continue
			}
			if b.compatible(c, cc, p) {
				b.add(c, p)
				placed = true
				break
			}
		}
		if !placed {
			nb := newBatchState()
			nb.add(c, p)
			batches = append(batches, nb)
		}
	}
	out := make([][]int, len(batches))
	for i, b := range batches {
		sort.Ints(b.paths)
		out[i] = b.paths
	}
	return out
}

// FillSlots implements §3.2's empty-slot heuristic: paths whose predicted
// (conditional) variance is largest are added to batches they are compatible
// with, so their delays get measured for free. predSigma maps path id to the
// conditional standard deviation after prediction (NaN/ignored for already
// tested paths). Only paths whose conditional sigma stays above
// cfg.FillSigmaFrac of their prior sigma are considered — well-predicted
// paths gain nothing from a measurement. It returns the updated batches and
// the ids of the added paths.
func FillSlots(c *circuit.Circuit, batches [][]int, tested []int, predSigma []float64, cfg Config) ([][]int, []int) {
	cc := newConflictChecker(c)
	testedSet := make(map[int]bool, len(tested))
	for _, p := range tested {
		testedSet[p] = true
	}
	type cand struct {
		p     int
		sigma float64
	}
	var cands []cand
	for p := 0; p < c.NumPaths(); p++ {
		if testedSet[p] {
			continue
		}
		s := predSigma[p]
		if math.IsNaN(s) || s <= 0 {
			continue
		}
		if prior := c.Paths[p].Max.Sigma(); prior > 0 && s < cfg.FillSigmaFrac*prior {
			continue
		}
		cands = append(cands, cand{p, s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].sigma != cands[j].sigma {
			return cands[i].sigma > cands[j].sigma
		}
		return cands[i].p < cands[j].p
	})

	states := make([]*batchState, len(batches))
	for i, b := range batches {
		st := newBatchState()
		for _, p := range b {
			st.add(c, p)
		}
		states[i] = st
	}
	var added []int
	for _, cd := range cands {
		for _, st := range states {
			if cfg.MaxBatch > 0 && len(st.paths) >= cfg.MaxBatch {
				continue
			}
			if st.compatible(c, cc, cd.p) {
				st.add(c, cd.p)
				added = append(added, cd.p)
				break
			}
		}
	}
	out := make([][]int, len(states))
	for i, st := range states {
		sort.Ints(st.paths)
		out[i] = st.paths
	}
	sort.Ints(added)
	return out, added
}
