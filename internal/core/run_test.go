package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/tester"
)

func runTestPlan(t testing.TB) (*Plan, []*tester.Chip, float64) {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("run", 36, 360, 4, 44), 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.HoldSamples = 100
	pl, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chips := tester.SampleChips(c, 5, 12)
	td := c.TNominal * 1.05
	return pl, chips, td
}

// sameOutcome compares everything except wall-clock durations, which
// legitimately vary run to run.
func sameOutcome(a, b *ChipOutcome) bool {
	return a.Iterations == b.Iterations &&
		a.ScanBits == b.ScanBits &&
		a.Configured == b.Configured &&
		a.Passed == b.Passed &&
		a.Xi == b.Xi &&
		reflect.DeepEqual(a.X, b.X) &&
		reflect.DeepEqual(a.Bounds.Lo, b.Bounds.Lo) &&
		reflect.DeepEqual(a.Bounds.Hi, b.Bounds.Hi)
}

func TestRunChipsParallelMatchesSequential(t *testing.T) {
	pl, chips, td := runTestPlan(t)
	ctx := context.Background()

	// Ground truth: plain sequential RunChip loop.
	want := make([]*ChipOutcome, len(chips))
	for i, ch := range chips {
		out, err := pl.RunChip(ch, td)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	for _, workers := range []int{1, 2, 8} {
		outs, err := pl.RunChipsAll(ctx, chips, td, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range outs {
			if !sameOutcome(want[i], outs[i]) {
				t.Fatalf("workers=%d: chip %d outcome diverged from sequential", workers, i)
			}
		}
	}
}

func TestRunChipsStreamsInOrder(t *testing.T) {
	pl, chips, td := runTestPlan(t)
	next := 0
	for r := range pl.RunChips(context.Background(), chips, td, 4) {
		if r.Err != nil {
			t.Fatalf("chip %d: %v", r.Index, r.Err)
		}
		if r.Index != next {
			t.Fatalf("out-of-order result: got index %d, want %d", r.Index, next)
		}
		if r.Chip != chips[r.Index] {
			t.Fatalf("result %d carries the wrong chip", r.Index)
		}
		next++
	}
	if next != len(chips) {
		t.Fatalf("stream carried %d results, want %d", next, len(chips))
	}
}

func TestRunChipsCancelledContext(t *testing.T) {
	pl, chips, td := runTestPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := pl.RunChipsAll(ctx, chips, td, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChipsAll error = %v, want context.Canceled", err)
	}
	if _, err := pl.RunChipCtx(ctx, chips[0], td); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunChipCtx error = %v, want context.Canceled", err)
	}
}

func TestRunChipCircuitMismatch(t *testing.T) {
	pl, _, td := runTestPlan(t)
	other, err := circuit.Generate(circuit.TinyProfile("other", 20, 160, 2, 20), 3)
	if err != nil {
		t.Fatal(err)
	}
	ch := tester.SampleChip(other, 1, 0)
	if _, err := pl.RunChip(ch, td); !errors.Is(err, ErrChipCircuitMismatch) {
		t.Fatalf("error = %v, want ErrChipCircuitMismatch", err)
	}
}
