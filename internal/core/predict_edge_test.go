package core

import (
	"testing"
)

// TestPredictBoundsNoMeasurementsFallsBack covers the degraded path where a
// group has no tested member: the prior ±3σ windows must survive untouched.
func TestPredictBoundsNoMeasurementsFallsBack(t *testing.T) {
	c := tinyCircuit(t, 14)
	groups, _, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := InitBounds(c)
	prior := InitBounds(c)
	// Claim nothing was tested at all.
	if err := PredictBounds(c, groups, nil, b); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.NumPaths(); p++ {
		if b.Lo[p] != prior.Lo[p] || b.Hi[p] != prior.Hi[p] {
			t.Fatalf("path %d: windows changed without measurements", p)
		}
	}
}

// TestPredictBoundsConservativeBias: because the conditional mean uses the
// *upper* bounds of the measured windows, predictions must be biased upward
// relative to conditioning on the window midpoints.
func TestPredictBoundsConservativeBias(t *testing.T) {
	c := tinyCircuit(t, 15)
	cfg := DefaultConfig()
	groups, tested, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	testedSet := map[int]bool{}
	for _, p := range tested {
		testedSet[p] = true
	}
	// Give every tested path an artificial window of width 2w centered on
	// its mean.
	const w = 0.01
	bUpper := InitBounds(c)
	for _, p := range tested {
		mu := c.Paths[p].Max.Mean
		bUpper.Lo[p] = mu - w
		bUpper.Hi[p] = mu + w
	}
	if err := PredictBounds(c, groups, tested, bUpper); err != nil {
		t.Fatal(err)
	}
	// Conditioning on exact means (zero-width windows) gives the unbiased
	// reference.
	bMid := InitBounds(c)
	for _, p := range tested {
		mu := c.Paths[p].Max.Mean
		bMid.Lo[p] = mu
		bMid.Hi[p] = mu
	}
	if err := PredictBounds(c, groups, tested, bMid); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.NumPaths(); p++ {
		if testedSet[p] {
			continue
		}
		upperMid := (bUpper.Lo[p] + bUpper.Hi[p]) / 2
		refMid := (bMid.Lo[p] + bMid.Hi[p]) / 2
		if upperMid < refMid-1e-9 {
			t.Fatalf("path %d: upper-bound conditioning gave a lower prediction (%v < %v)",
				p, upperMid, refMid)
		}
	}
}
