package core

import (
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/tester"
	"effitest/internal/variation"
)

// TestFlowOnQuadTreeModel runs the complete EffiTest flow on a circuit whose
// spatial correlations come from the Chang–Sapatnekar quad-tree model
// instead of the default exponential grid: the algorithms are model-agnostic
// and must work unchanged.
func TestFlowOnQuadTreeModel(t *testing.T) {
	gen := circuit.DefaultGenConfig()
	gen.Variation.Kind = variation.KindQuadTree
	gen.Variation.QuadTree = variation.QuadTreeConfig{Levels: 4}
	c, err := circuit.GenerateWith(circuit.TinyProfile("quad", 24, 200, 3, 30), 5, gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	plan, err := Prepare(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTested() == 0 || plan.NumTested() >= c.NumPaths() {
		t.Fatalf("npt = %d of %d", plan.NumTested(), c.NumPaths())
	}
	ch := tester.SampleChip(c, 7, 0)
	td := chipQuantile(c, 0.9)
	out, err := plan.RunChip(ch, td)
	if err != nil {
		t.Fatal(err)
	}
	if out.Iterations <= 0 {
		t.Fatal("no iterations")
	}
	// Measured paths resolved and bracketing as usual.
	for _, p := range plan.Tested {
		if w := out.Bounds.Hi[p] - out.Bounds.Lo[p]; w >= cfg.Eps {
			t.Fatalf("path %d unresolved under quad-tree model", p)
		}
	}
}
