package core

import (
	"context"
	"fmt"
	"sort"

	"effitest/internal/circuit"
	"effitest/internal/la"
	"effitest/internal/stats"
)

// Group is one correlation group from Procedure 1.
type Group struct {
	Paths     []int   // circuit path ids, ascending
	Threshold float64 // correlation threshold at extraction time
	NumPCs    int     // shared principal components found
	Selected  []int   // path ids chosen for frequency-stepping test

	// mvn is the group's joint delay distribution, precomputed by Prepare
	// so the per-chip conditional prediction (a hot, parallel path) does
	// not rebuild it for every chip. Read-only once set.
	mvn *stats.MVN
}

// SelectPaths implements Procedure 1: extract correlation groups with a
// decreasing threshold schedule, decompose each group's covariance with PCA,
// and pick one representative path per shared principal component (the path
// with the largest absolute coefficient for that component, excluding paths
// already picked).
//
// It returns the groups and the union of selected path ids (sorted).
func SelectPaths(c *circuit.Circuit, cfg Config) ([]Group, []int, error) {
	return selectPathsCtx(context.Background(), c, cfg)
}

// selectPathsCtx is SelectPaths with cancellation, checked once per
// extracted group — the granularity at which the expensive work (component
// search + PCA) happens.
func selectPathsCtx(ctx context.Context, c *circuit.Circuit, cfg Config) ([]Group, []int, error) {
	n := c.NumPaths()
	corr := c.CorrMatrix()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	th := cfg.CorrStart

	var groups []Group
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		seed := -1
		for p := 0; p < n && seed < 0; p++ {
			if !alive[p] {
				continue
			}
			for q := 0; q < n; q++ {
				if q != p && alive[q] && corr[p][q] >= th {
					seed = p
					break
				}
			}
		}
		if seed < 0 {
			th -= cfg.CorrStep
			if th < cfg.CorrFloor {
				// Remaining paths are weakly correlated with everything:
				// they form singleton groups and are tested directly.
				for p := 0; p < n; p++ {
					if alive[p] {
						groups = append(groups, Group{
							Paths:     []int{p},
							Threshold: th + cfg.CorrStep,
							NumPCs:    1,
							Selected:  []int{p},
						})
						alive[p] = false
						remaining--
					}
				}
				break
			}
			continue
		}

		// Extract the whole connected component of the ≥th correlation graph
		// containing the seed: physical clusters form dense blobs, so the
		// component captures the cluster even when some pairwise
		// correlations dip slightly below the threshold.
		members := []int{seed}
		inComp := map[int]bool{seed: true}
		stack := []int{seed}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for q := 0; q < n; q++ {
				if q != u && alive[q] && !inComp[q] && corr[u][q] >= th {
					inComp[q] = true
					members = append(members, q)
					stack = append(stack, q)
				}
			}
		}
		if cfg.MaxGroupSize > 0 && len(members) > cfg.MaxGroupSize {
			// Keep the seed plus its most correlated neighbours.
			sort.Slice(members[1:], func(a, b int) bool {
				return corr[seed][members[1+a]] > corr[seed][members[1+b]]
			})
			members = members[:cfg.MaxGroupSize]
		}
		sort.Ints(members)
		for _, m := range members {
			alive[m] = false
		}
		remaining -= len(members)

		g, err := analyzeGroup(c, members, th, cfg)
		if err != nil {
			return nil, nil, err
		}
		groups = append(groups, g)
	}

	var tested []int
	seen := map[int]bool{}
	for _, g := range groups {
		for _, p := range g.Selected {
			if !seen[p] {
				seen[p] = true
				tested = append(tested, p)
			}
		}
	}
	sort.Ints(tested)
	return groups, tested, nil
}

// analyzeGroup runs PCA on a group's covariance and selects representative
// paths per shared component.
func analyzeGroup(c *circuit.Circuit, members []int, th float64, cfg Config) (Group, error) {
	if len(members) == 1 {
		return Group{Paths: members, Threshold: th, NumPCs: 1, Selected: []int{members[0]}}, nil
	}
	cov := c.CovMatrix()
	sub := la.NewMatrix(len(members), len(members))
	for i, a := range members {
		for j, b := range members {
			sub.Set(i, j, cov[a][b])
		}
	}
	pca, err := stats.NewPCA(sub)
	if err != nil {
		return Group{}, fmt.Errorf("core: group PCA failed: %w", err)
	}
	k := sharedComponents(pca, cfg.PCKaiser)
	reps := pca.SelectRepresentatives(k)
	selected := make([]int, len(reps))
	for i, r := range reps {
		selected[i] = members[r]
	}
	sort.Ints(selected)
	return Group{Paths: members, Threshold: th, NumPCs: k, Selected: selected}, nil
}

// sharedComponents counts the components that carry correlation information:
// eigenvalues above kaiser × mean eigenvalue (at least one).
func sharedComponents(p *stats.PCA, kaiser float64) int {
	total := p.TotalVar()
	n := len(p.Vars)
	if total <= 0 || n == 0 {
		return 1
	}
	mean := total / float64(n)
	k := 0
	for _, v := range p.Vars {
		if v > kaiser*mean {
			k++
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}
