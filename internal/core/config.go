// Package core implements EffiTest itself: statistical path selection
// (Procedure 1), path test multiplexing (§3.2), aligned delay test using the
// circuit's own tuning buffers (Procedure 2, Eqs. 7–14), conditional delay
// prediction (§3.4, Eqs. 4–5), hold-time tuning bounds (§3.5, Eqs. 19–21)
// and final buffer configuration (Eqs. 15–18), plus the end-to-end flow of
// the paper's Figure 4 with all of Table 1's cost metrics.
package core

import (
	"fmt"
	"math"
	"time"
)

// AlignMode selects how the per-iteration alignment problem (Eqs. 7–14) is
// solved.
type AlignMode int

const (
	// AlignHeuristic uses weighted-median coordinate descent over the buffer
	// lattice: the default, fast enough for thousands of simulated chips.
	AlignHeuristic AlignMode = iota
	// AlignFastMILP solves an exact MILP in which η ≥ ±(T - center) replaces
	// the paper's big-M binaries. Minimizing a positively weighted sum makes
	// this relaxation exact, so the optimum equals AlignPaperILP's.
	AlignFastMILP
	// AlignPaperILP is the faithful big-M formulation of Eqs. (7)–(14),
	// with the (implied) case-selection constraint z⁺ + z⁻ = 1.
	AlignPaperILP
	// AlignOff freezes all buffers at zero during test; the clock period is
	// still chosen as the weighted median of the active delay-range centers.
	// This is Figure 8's "path multiplexing without delay alignment" case.
	AlignOff
)

// String names the mode.
func (m AlignMode) String() string {
	switch m {
	case AlignHeuristic:
		return "heuristic"
	case AlignFastMILP:
		return "fast-milp"
	case AlignPaperILP:
		return "paper-ilp"
	case AlignOff:
		return "off"
	default:
		return "unknown"
	}
}

// ConfigureMode selects the final buffer-configuration solver (Eqs. 15–18).
type ConfigureMode int

const (
	// ConfigureScalable solves the model by bisection on ξ over an
	// integer-lattice difference-constraint system — exact and fast at any
	// circuit size.
	ConfigureScalable ConfigureMode = iota
	// ConfigureMILP solves the literal MILP; intended for small instances
	// and cross-checks.
	ConfigureMILP
)

// Config carries all EffiTest flow parameters. DefaultConfig documents the
// paper-aligned defaults.
type Config struct {
	// Seed drives every random stream (hold sampling, tie-breaking).
	Seed int64

	// Eps is the delay-range termination threshold ε of Procedure 2 (ns):
	// a path is resolved when u-l < Eps.
	Eps float64

	// CorrStart/CorrStep/CorrFloor drive Procedure 1's correlation-threshold
	// schedule (0.95, 0.05, and a floor below which remaining paths become
	// singleton groups).
	CorrStart, CorrStep, CorrFloor float64

	// PCKaiser sets the principal-component count per group: components with
	// eigenvalue > PCKaiser × (mean eigenvalue) are counted as shared PCs.
	PCKaiser float64
	// MaxGroupSize caps a correlation group (guards the PCA eigensolver).
	MaxGroupSize int

	// FillSlots enables §3.2's empty-slot filling with high-variance paths.
	FillSlots bool
	// FillSigmaFrac restricts slot filling to paths whose conditional sigma
	// exceeds this fraction of their prior sigma (only badly predicted paths
	// are worth a free measurement).
	FillSigmaFrac float64
	// MaxBatch caps a batch's size (0 = unlimited).
	MaxBatch int

	// AlignMode / ConfigMode select solvers (see the mode types).
	AlignMode  AlignMode
	ConfigMode ConfigureMode

	// WeightK0 and WeightKd are the center-priority weights of §3.3
	// (k0 ≫ kd).
	WeightK0, WeightKd float64

	// HoldYield is Y in Eq. (20) (paper: 0.99); HoldSamples is the
	// Monte-Carlo sample count M of §3.5.
	HoldYield   float64
	HoldSamples int

	// TesterResolution is the ATE clock-period granularity (ns).
	TesterResolution float64

	// MaxIterPerPath bounds test iterations per batch as
	// MaxIterPerPath × batch size (safety net against pathological cases).
	MaxIterPerPath int

	// Workers bounds the goroutines used when many chips are executed
	// together (Plan.RunChips and everything built on it). 0 means one
	// worker per logical CPU; 1 forces sequential execution. Results are
	// bit-identical at any worker count — chips never share mutable state
	// and aggregation happens in chip order.
	Workers int

	// PredictBatch sets how many in-flight chips RunChips/Stream group into
	// one §3.4 conditional-prediction kernel call per correlation group (the
	// TRSM-shaped multi-RHS path): the per-group Cholesky factor then
	// streams through the cache once per K chips instead of once per chip.
	// 0 (the default) picks a width automatically; 1 disables batching.
	// Like Workers this is purely an execution knob — results are
	// bit-identical at any batch size, it never shapes a plan, it is
	// excluded from ConfigFingerprint, and it is not serialized into plan
	// artifacts (a loaded plan adopts the live request's value).
	PredictBatch int
}

// DefaultConfig returns the paper-aligned defaults.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Eps:              0.002, // 2 ps: ≈ 8–9 binary-search steps over a ±3σ window
		CorrStart:        0.95,
		CorrStep:         0.05,
		CorrFloor:        0.45,
		PCKaiser:         1.0,
		MaxGroupSize:     600,
		FillSlots:        true,
		FillSigmaFrac:    0,
		MaxBatch:         16,
		AlignMode:        AlignHeuristic,
		ConfigMode:       ConfigureScalable,
		WeightK0:         1000,
		WeightKd:         1,
		HoldYield:        0.99,
		HoldSamples:      500,
		TesterResolution: 1e-4, // 0.1 ps clock generator granularity
		MaxIterPerPath:   64,
	}
}

// Validate rejects configurations the flow cannot run with. Prepare (and
// therefore the engine constructor) calls it, so an invalid option surfaces
// as a construction error instead of a hang or a panic deep in the online
// flow (e.g. Eps ≤ 0 would never let a batch terminate).
func (cfg Config) Validate() error {
	check := func(ok bool, field string, v any, want string) error {
		if ok {
			return nil
		}
		return fmt.Errorf("core: invalid config: %s = %v, want %s", field, v, want)
	}
	finitePos := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 }
	for _, err := range []error{
		check(finitePos(cfg.Eps), "Eps", cfg.Eps, "a positive delay threshold in ns"),
		check(cfg.Workers >= 0, "Workers", cfg.Workers, "≥ 0 (0 = one per CPU)"),
		check(cfg.PredictBatch >= 0, "PredictBatch", cfg.PredictBatch, "≥ 0 (0 = auto, 1 = no batching)"),
		check(cfg.MaxBatch >= 0, "MaxBatch", cfg.MaxBatch, "≥ 0 (0 = unlimited)"),
		check(cfg.MaxGroupSize >= 0, "MaxGroupSize", cfg.MaxGroupSize, "≥ 0 (0 = uncapped)"),
		check(cfg.MaxIterPerPath >= 0, "MaxIterPerPath", cfg.MaxIterPerPath, "≥ 0 (0 = default cap)"),
		check(cfg.HoldSamples > 0, "HoldSamples", cfg.HoldSamples, "a positive Monte-Carlo sample count"),
		check(!math.IsNaN(cfg.HoldYield) && cfg.HoldYield > 0 && cfg.HoldYield <= 1,
			"HoldYield", cfg.HoldYield, "a target in (0, 1]"),
		check(finitePos(cfg.TesterResolution), "TesterResolution", cfg.TesterResolution, "a positive period granularity in ns"),
		check(finitePos(cfg.WeightK0) && finitePos(cfg.WeightKd), "WeightK0/WeightKd",
			[2]float64{cfg.WeightK0, cfg.WeightKd}, "positive §3.3 priority weights"),
	} {
		if err != nil {
			return err
		}
	}
	return nil
}

// Durations collects the paper's runtime columns.
type Durations struct {
	Prep   time.Duration // Tp: grouping, selection, multiplexing, hold bounds
	Align  time.Duration // Tt: computing T and buffer values during test
	Config time.Duration // Ts: final buffer-value determination
}
