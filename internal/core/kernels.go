package core

// This file holds the plan-time prediction kernels: the conditional
// structure of §3.2/§3.4 — which tested paths condition which untested
// paths, per correlation group — is fixed the moment the Plan's tested set
// is final, so Prepare (and Bind, when a plan is restored from an artifact)
// prefactorizes it once. Per chip, conditional prediction then reduces to
// one triangular solve + matrix-vector product per group over a pooled
// scratch workspace: no maps, no matrix allocation, no re-factorization,
// and results bit-identical to the naive groupMVN+Conditional path (pinned
// by the differential tests).

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"effitest/internal/circuit"
	"effitest/internal/la"
	"effitest/internal/pool"
	"effitest/internal/stats"
)

// groupKernel is one correlation group's baked conditional predictor.
type groupKernel struct {
	group   int   // index into Plan.Groups
	known   []int // global tested path ids, in group order
	unknown []int // global predicted path ids, in group order
	// pred is nil when the group has no measured path; PredictBounds then
	// keeps the prior ±3σ windows and sigma holds the marginal prior σ.
	pred *stats.CondPredictor
	// sigma is the conditional σ′ per unknown path (Eq. 5) — it depends
	// only on the covariance, never on a chip's measurements, so it is a
	// plan-time constant.
	sigma []float64
}

// predictKernels is the baked prediction state of one Plan.
type predictKernels struct {
	groups     []groupKernel
	scratchLen int // workspace floats predictBounds takes for its largest group
	predGroups int // groups with at least one measured path
	predPaths  int // untested paths predicted per chip
}

// bakePredictKernels prefactorizes the conditional predictors for the given
// tested set: per group, the ridged Cholesky of Σ_t, the cross-covariance
// gain and the conditional sigmas. Groups are independent, so the bake fans
// out across workers goroutines (0 = all CPUs) — on a large circuit this is
// the expensive tail of Prepare/Bind, and warm plan-cache loads pay it on
// every process start. Results are deterministic: each group's kernel is a
// pure function of (circuit, group, tested) and the output keeps group
// order.
func bakePredictKernels(ctx context.Context, c *circuit.Circuit, groups []Group, tested []int, workers int) (*predictKernels, error) {
	testedSet := make(map[int]bool, len(tested))
	for _, p := range tested {
		testedSet[p] = true
	}
	// The group covariance cache on the circuit is filled lazily; touch it
	// once up front so the parallel bake reads it without contention.
	c.CovMatrix()

	perGroup := make([]*groupKernel, len(groups))
	bakeOne := func(gi int) error {
		g := &groups[gi]
		known, unknown := splitGroup(*g, testedSet)
		if len(unknown) == 0 {
			return nil
		}
		mvn, err := groupMVN(c, *g)
		if err != nil {
			return err
		}
		gk := &groupKernel{group: gi, known: known, unknown: unknown, sigma: make([]float64, len(unknown))}
		localUnknown := localIndices(g.Paths, unknown)
		if len(known) == 0 {
			// No measured path: σ′ degrades to the marginal prior sigma —
			// the same values the naive PredictSigmas reports through
			// Conditional's zero-known arm.
			sub := mvn.Sigma.Submatrix(localUnknown, localUnknown)
			for i := range unknown {
				gk.sigma[i] = math.Sqrt(math.Max(sub.At(i, i), 0))
			}
		} else {
			localKnown := localIndices(g.Paths, known)
			pred, err := mvn.Predictor(localUnknown, localKnown)
			if err != nil {
				return fmt.Errorf("core: group %d predictor: %w", gi, err)
			}
			gk.pred = pred
			for i := range unknown {
				gk.sigma[i] = math.Sqrt(math.Max(pred.SigmaPrime.At(i, i), 0))
			}
		}
		perGroup[gi] = gk
		return nil
	}
	if err := pool.ForEach(ctx, len(groups), workers, bakeOne); err != nil {
		return nil, err
	}

	ks := &predictKernels{}
	for _, gk := range perGroup {
		if gk == nil {
			continue
		}
		if gk.pred != nil {
			if need := len(gk.known) + len(gk.unknown) + gk.pred.ScratchLen(); need > ks.scratchLen {
				ks.scratchLen = need
			}
			ks.predGroups++
			ks.predPaths += len(gk.unknown)
		}
		ks.groups = append(ks.groups, *gk)
	}
	return ks, nil
}

// predictOne applies one baked group predictor to a single chip's bounds:
// gather the measured upper bounds, one triangular solve + matvec (Eq. 4),
// scatter the μ′ ± 3σ′ windows back. Allocation-free once ws is warm.
func (gk *groupKernel) predictOne(b *Bounds, ws *la.Workspace) {
	ws.Reset()
	obs := ws.Take(len(gk.known))
	for j, k := range gk.known {
		obs[j] = b.Hi[k] // conservative: measured upper bounds
	}
	mu := ws.Take(len(gk.unknown))
	gk.pred.MuTo(mu, obs, ws)
	for j, p := range gk.unknown {
		sigma := gk.sigma[j]
		m := mu[j]
		lo := m - 3*sigma
		if lo < 0 {
			lo = 0
		}
		b.Lo[p] = lo
		b.Hi[p] = m + 3*sigma
	}
}

// predictMulti applies one baked group predictor to K chips at once through
// the TRSM-shaped multi-RHS kernels: the group's Cholesky factor and
// cross-covariance stream through the cache once per batch instead of once
// per chip. Column j of the observation block is chip j's measurements, so
// each chip's result is bit-identical to predictOne (the multi kernels are
// column-wise identical to the vector kernels). A single chip takes the
// vector path — batching buys nothing there and the strided gather would
// only cost.
func (gk *groupKernel) predictMulti(bs []*Bounds, ws *la.Workspace) {
	if len(bs) == 1 {
		gk.predictOne(bs[0], ws)
		return
	}
	ws.Reset()
	obs := ws.TakeMatrix(len(gk.known), len(bs))
	for i, k := range gk.known {
		row := obs.RowView(i)
		for j, b := range bs {
			row[j] = b.Hi[k] // conservative: measured upper bounds
		}
	}
	mu := ws.TakeMatrix(len(gk.unknown), len(bs))
	gk.pred.MuBatchTo(&mu, &obs, ws)
	for i, p := range gk.unknown {
		sigma := gk.sigma[i]
		row := mu.RowView(i)
		for j, b := range bs {
			m := row[j]
			lo := m - 3*sigma
			if lo < 0 {
				lo = 0
			}
			b.Lo[p] = lo
			b.Hi[p] = m + 3*sigma
		}
	}
}

// predictBounds is the per-chip fast path of PredictBounds: apply every
// baked group predictor to the measured upper bounds in b and write the
// μ′ ± 3σ′ windows back. Bit-identical to the naive path; allocation-free
// once ws is warm (Require(scratchLen)).
func (ks *predictKernels) predictBounds(b *Bounds, ws *la.Workspace) {
	for i := range ks.groups {
		gk := &ks.groups[i]
		if gk.pred == nil {
			// No measurement available: keep the prior ±3σ windows, exactly
			// like the naive path's degraded-group fallback.
			continue
		}
		gk.predictOne(b, ws)
	}
}

// predictInto runs §3.4 prediction for a batch of chips' bounds, fanning
// across groups when workers > 1. Groups partition the path set, so two
// groups never write the same Bounds entry: the parallel sweep is race-free
// and — because each group's arithmetic is untouched — bit-identical to the
// sequential one at any worker count. Each subworker predicts over its own
// workspace from scr.sub; the sequential path uses scr.ws and stays
// allocation-free once warm.
func (ks *predictKernels) predictInto(bs []*Bounds, scr *chipScratch, workers int) {
	if len(bs) == 0 {
		return
	}
	if workers > ks.predGroups {
		workers = ks.predGroups
	}
	if workers <= 1 {
		for i := range ks.groups {
			gk := &ks.groups[i]
			if gk.pred == nil {
				continue
			}
			gk.predictMulti(bs, &scr.ws)
		}
		return
	}
	sub := scr.requireSub(workers)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		ws := &sub[w]
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(ks.groups) {
					return
				}
				gk := &ks.groups[i]
				if gk.pred == nil {
					continue
				}
				gk.predictMulti(bs, ws)
			}
		}()
	}
	wg.Wait()
}

// predictSigmas scatters the baked σ′ into a per-path slice — the kernel
// counterpart of PredictSigmas evaluated at the plan's own tested set
// (tested paths get NaN).
func (ks *predictKernels) predictSigmas(numPaths int) []float64 {
	out := make([]float64, numPaths)
	for i := range out {
		out[i] = math.NaN()
	}
	for i := range ks.groups {
		gk := &ks.groups[i]
		for j, p := range gk.unknown {
			out[p] = gk.sigma[j]
		}
	}
	return out
}

// bakeKernels prefactorizes the per-group conditional predictors and sets
// up the per-worker scratch pool. Prepare calls it eagerly: the kernels are
// derived state — recomputed, never serialized — so plan artifacts stay
// compact and version-independent of the kernel layout. Bind instead
// defers the bake behind a lazyKernels (see below).
func (pl *Plan) bakeKernels(ctx context.Context) error {
	ks, err := bakePredictKernels(ctx, pl.Circuit, pl.Groups, pl.Tested, pl.Cfg.Workers)
	if err != nil {
		return err
	}
	pl.kernels = ks
	pl.scratch = &sync.Pool{New: func() any { return pl.newChipScratch() }}
	return nil
}

// lazyKernels defers bakePredictKernels to the first chip that needs it.
// Baking is the expensive tail of a warm plan-cache load — one ridged
// Cholesky per group — and a process that loads a plan only to inspect or
// re-serve it should not pay it, so Bind installs this instead of baking
// eagerly. The state is held behind a pointer shared by every shallow copy
// of the plan (resolvePlan and WithoutPredictorKernels copy Plan by value),
// so the bake happens once no matter which copy runs the first chip.
type lazyKernels struct {
	mu  sync.Mutex
	ks  atomic.Pointer[predictKernels]
	err error // sticky bake failure (never a caller's context error)
}

// predictorKernels resolves the plan's baked kernels, baking them on first
// use for lazily-bound plans. It returns (nil, nil) for plans deliberately
// built without kernels (hand-assembled literals, WithoutPredictorKernels) —
// callers then take the naive prediction path. A bake failure is sticky and
// returned to every subsequent chip; a context cancellation during the bake
// is returned to that caller only, leaving the plan bakeable.
func (pl *Plan) predictorKernels(ctx context.Context) (*predictKernels, error) {
	if pl.kernels != nil {
		return pl.kernels, nil
	}
	lz := pl.lazy
	if lz == nil {
		return nil, nil
	}
	if ks := lz.ks.Load(); ks != nil {
		return ks, nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if ks := lz.ks.Load(); ks != nil {
		return ks, nil
	}
	if lz.err != nil {
		return nil, lz.err
	}
	ks, err := bakePredictKernels(ctx, pl.Circuit, pl.Groups, pl.Tested, pl.Cfg.Workers)
	if err != nil {
		if ctx.Err() == nil {
			lz.err = err
		}
		return nil, err
	}
	lz.ks.Store(ks)
	return ks, nil
}

// bakedKernels returns the kernels if they exist right now — eager or
// already lazily baked — without triggering a bake.
func (pl *Plan) bakedKernels() *predictKernels {
	if pl.kernels != nil {
		return pl.kernels
	}
	if pl.lazy != nil {
		return pl.lazy.ks.Load()
	}
	return nil
}

// PredictorSigmas returns the baked conditional σ′ per path for the plan's
// tested set (baking lazily-bound plans on demand), or nil when the plan
// has no kernels at all (a hand-assembled literal or a kernel bake
// failure). The differential tests pin it bitwise against PredictSigmas.
func (pl *Plan) PredictorSigmas() []float64 {
	ks, err := pl.predictorKernels(context.Background())
	if err != nil || ks == nil {
		return nil
	}
	return ks.predictSigmas(pl.Circuit.NumPaths())
}

// WithoutPredictorKernels returns a shallow copy of the plan with the baked
// predictors dropped, forcing chip execution onto the naive per-chip
// groupMVN+Conditional path. It exists so the differential tests can pin
// the two paths bit-identical; production code never needs it.
func (pl *Plan) WithoutPredictorKernels() *Plan {
	cp := *pl
	cp.kernels = nil
	cp.lazy = nil
	return &cp
}

// chipScratch is the reusable per-worker state of the online flow: the
// numeric workspace of the prediction kernels plus the alignment buffers
// runBatchTest refills on every frequency step.
type chipScratch struct {
	ws     la.Workspace
	sub    []la.Workspace // per-subworker arenas for within-chip group parallelism
	bounds []*Bounds      // gather buffer for the batched prediction phase
	items  []alignItem
	order  []int // assignWeights rank buffer
	active []int
	al     alignScratch
}

// requireSub hands out n independent workspaces for the within-chip
// parallel predict sweep, growing (and keeping) them across chips so the
// arenas warm up once per worker.
func (scr *chipScratch) requireSub(n int) []la.Workspace {
	for len(scr.sub) < n {
		scr.sub = append(scr.sub, la.Workspace{})
	}
	return scr.sub
}

// newChipScratch sizes a scratch for this plan: the kernel workspace at its
// baked high-water mark and the alignment buffers at the largest batch.
func (pl *Plan) newChipScratch() *chipScratch {
	scr := &chipScratch{}
	if ks := pl.bakedKernels(); ks != nil {
		scr.ws.Require(ks.scratchLen)
	}
	maxBatch := 0
	for _, b := range pl.Batches {
		if len(b) > maxBatch {
			maxBatch = len(b)
		}
	}
	scr.items = make([]alignItem, 0, maxBatch)
	scr.order = make([]int, 0, maxBatch)
	scr.active = make([]int, 0, maxBatch)
	return scr
}

// getScratch hands out a pooled scratch (workers hold one across many
// chips); a plan built without bakeKernels — a hand-assembled literal in a
// test — degrades to a fresh scratch per call.
func (pl *Plan) getScratch() *chipScratch {
	if pl.scratch == nil {
		return pl.newChipScratch()
	}
	return pl.scratch.Get().(*chipScratch)
}

func (pl *Plan) putScratch(scr *chipScratch) {
	if pl.scratch != nil {
		pl.scratch.Put(scr)
	}
}
