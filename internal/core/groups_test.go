package core

import (
	"testing"

	"effitest/internal/circuit"
)

func tinyCircuit(t *testing.T, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("tiny", 24, 200, 3, 30), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelectPathsCoversEveryPath(t *testing.T) {
	c := tinyCircuit(t, 1)
	groups, tested, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, c.NumPaths())
	for _, g := range groups {
		for _, p := range g.Paths {
			if seen[p] {
				t.Fatalf("path %d in two groups", p)
			}
			seen[p] = true
		}
	}
	for p, s := range seen {
		if !s {
			t.Fatalf("path %d not grouped", p)
		}
	}
	if len(tested) == 0 {
		t.Fatal("no paths selected for test")
	}
	if len(tested) >= c.NumPaths() {
		t.Fatalf("selection did not reduce: %d of %d", len(tested), c.NumPaths())
	}
}

func TestSelectPathsSelectedBelongToGroup(t *testing.T) {
	c := tinyCircuit(t, 2)
	groups, _, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		if g.NumPCs < 1 {
			t.Fatalf("group %d has %d PCs", gi, g.NumPCs)
		}
		if len(g.Selected) != g.NumPCs && len(g.Selected) != len(g.Paths) {
			// Selected = min(NumPCs, |group|).
			t.Fatalf("group %d: %d selected for %d PCs (size %d)",
				gi, len(g.Selected), g.NumPCs, len(g.Paths))
		}
		inGroup := map[int]bool{}
		for _, p := range g.Paths {
			inGroup[p] = true
		}
		for _, s := range g.Selected {
			if !inGroup[s] {
				t.Fatalf("group %d selected foreign path %d", gi, s)
			}
		}
	}
}

func TestSelectPathsDeterministic(t *testing.T) {
	c := tinyCircuit(t, 3)
	_, t1, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatal("non-deterministic selection size")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("non-deterministic selection")
		}
	}
}

func TestSelectPathsReductionOnClusteredCircuit(t *testing.T) {
	// Clustered circuits should need far fewer tested paths than np — the
	// paper reports ~2-20%. Allow up to 60% on tiny circuits.
	c := tinyCircuit(t, 4)
	_, tested, err := SelectPaths(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(tested)) / float64(c.NumPaths())
	if frac > 0.6 {
		t.Fatalf("tested fraction %.2f too high for clustered circuit", frac)
	}
}

func TestSelectPathsThresholdSchedule(t *testing.T) {
	c := tinyCircuit(t, 5)
	cfg := DefaultConfig()
	groups, _, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if g.Threshold > cfg.CorrStart+1e-12 {
			t.Fatalf("group threshold %v above start %v", g.Threshold, cfg.CorrStart)
		}
	}
}

func TestGroupSizeCap(t *testing.T) {
	c := tinyCircuit(t, 6)
	cfg := DefaultConfig()
	cfg.MaxGroupSize = 4
	groups, _, err := SelectPaths(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range groups {
		if len(g.Paths) > 4 {
			t.Fatalf("group %d size %d exceeds cap", gi, len(g.Paths))
		}
	}
}
