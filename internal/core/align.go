package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"effitest/internal/circuit"
	"effitest/internal/lp"
	"effitest/internal/mip"
)

// alignItem is one unresolved path inside a batch during aligned testing.
type alignItem struct {
	path     int     // circuit path id
	from, to int     // FF endpoints
	lo, hi   float64 // current bounds [l, u] on the path delay D
	lambda   float64 // hold bound λ for (from,to); -Inf when absent
	weight   float64 // §3.3 center priority
}

func (it alignItem) center() float64 { return (it.lo + it.hi) / 2 }

// assignWeights implements the paper's weighting: sort the range centers,
// give k0 to the middle of the sorted list and decrease by kd per rank step
// away from the middle (k0 ≫ kd keeps middle ranges slightly prioritized,
// resolving the non-overlapping tie of Figure 6e).
func assignWeights(items []alignItem, k0, kd float64) {
	assignWeightsInto(items, k0, kd, nil)
}

// assignWeightsInto is assignWeights over a caller-owned rank buffer, so
// the per-frequency-step hot loop reuses one allocation; it returns the
// (possibly grown) buffer for the caller to keep.
func assignWeightsInto(items []alignItem, k0, kd float64, idx []int) []int {
	idx = idx[:0]
	for i := range items {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return items[idx[a]].center() < items[idx[b]].center() })
	mid := (len(idx) - 1) / 2
	for rank, i := range idx {
		w := k0 - kd*math.Abs(float64(rank-mid))
		if w < 1 {
			w = 1
		}
		items[i].weight = w
	}
	return idx
}

// alignResult carries the per-iteration solve outcome: the clock period to
// apply and the buffer values (full per-FF vector; unbuffered FFs at 0).
type alignResult struct {
	T   float64
	X   []float64
	Obj float64
}

// alignScratch holds the heuristic solvers' reusable buffers. One lives in
// every chipScratch, so the per-frequency-step solves of a whole chip
// stream share a handful of allocations. The returned alignResult.X
// aliases the scratch and is valid until the next solve on it — exactly
// the lifetime runBatchTest needs (step the tester, update bounds, warm-
// start the next solve).
type alignScratch struct {
	x, bestX  []float64
	restart   [3][]float64
	vals, wts []float64
	vw        valsWeights // reused sort adapter; repointed per median call
	bufs      []int
}

// resizeF returns s with length n, reusing its capacity when possible.
// Contents are unspecified.
func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// alignSolve dispatches on the configured mode. Buffered FFs not touched by
// the batch keep their previous values (vector prev, may be nil for all-
// zero). A nil scr degrades to one-shot buffers.
func alignSolve(c *circuit.Circuit, items []alignItem, prev []float64, cfg Config, scr *alignScratch) (alignResult, error) {
	if scr == nil {
		scr = &alignScratch{}
	}
	switch cfg.AlignMode {
	case AlignOff:
		return alignOff(c, items, scr), nil
	case AlignHeuristic:
		return alignHeuristic(c, items, prev, scr), nil
	case AlignFastMILP:
		return alignMILP(c, items, false)
	case AlignPaperILP:
		return alignMILP(c, items, true)
	default:
		return alignResult{}, fmt.Errorf("core: unknown align mode %d", cfg.AlignMode)
	}
}

// valsWeights sorts two parallel slices by value without allocating.
type valsWeights struct{ v, w []float64 }

func (x valsWeights) Len() int           { return len(x.v) }
func (x valsWeights) Less(a, b int) bool { return x.v[a] < x.v[b] }
func (x valsWeights) Swap(a, b int) {
	x.v[a], x.v[b] = x.v[b], x.v[a]
	x.w[a], x.w[b] = x.w[b], x.w[a]
}

// weightedMedian returns the value minimizing Σ w|t - v| — the classical
// weighted median. It sorts vals and weights in place (callers recompute
// them before every call).
func weightedMedian(vals, weights []float64) float64 {
	return weightedMedianVW(&valsWeights{vals, weights})
}

// weightedMedianVW is weightedMedian over a reusable adapter: repointing
// and passing the same *valsWeights every call avoids boxing the slice
// pair into a sort.Interface on the hot path.
//
// Small inputs — every batch under the default MaxBatch — take a direct
// insertion sort over the parallel slices instead of sort.Sort's interface
// machinery, which otherwise dominates the whole online flow's CPU. The
// two sorts may order exact-tie values differently, but the weighted
// median is invariant to tie order: the prefix sum crosses total/2 at the
// same value either way (tie groups contribute the same weight sum
// wherever their members sit within the group).
func weightedMedianVW(vw *valsWeights) float64 {
	if len(vw.v) <= 32 {
		insertionSortVW(vw.v, vw.w)
	} else {
		sort.Sort(vw)
	}
	total := 0.0
	for _, w := range vw.w {
		total += w
	}
	acc := 0.0
	for i, w := range vw.w {
		acc += w
		if acc >= total/2 {
			return vw.v[i]
		}
	}
	return vw.v[len(vw.v)-1]
}

// insertionSortVW sorts the parallel (value, weight) slices by value.
func insertionSortVW(v, w []float64) {
	for i := 1; i < len(v); i++ {
		vi, wi := v[i], w[i]
		j := i - 1
		for j >= 0 && v[j] > vi {
			v[j+1], w[j+1] = v[j], w[j]
			j--
		}
		v[j+1], w[j+1] = vi, wi
	}
}

// alignOff keeps buffers at zero and picks the weighted median of centers.
func alignOff(c *circuit.Circuit, items []alignItem, scr *alignScratch) alignResult {
	scr.vals = resizeF(scr.vals, len(items))
	scr.wts = resizeF(scr.wts, len(items))
	for i, it := range items {
		scr.vals[i] = it.center()
		scr.wts[i] = it.weight
	}
	scr.x = resizeF(scr.x, c.NumFF)
	x := scr.x
	clear(x)
	scr.vw.v, scr.vw.w = scr.vals, scr.wts
	t := weightedMedianVW(&scr.vw)
	return alignResult{T: t, X: x, Obj: alignObjective(items, t, x)}
}

// alignObjective evaluates Σ w|T - (center + x_i - x_j)|.
func alignObjective(items []alignItem, T float64, x []float64) float64 {
	s := 0.0
	for _, it := range items {
		s += it.weight * math.Abs(T-(it.center()+x[it.from]-x[it.to]))
	}
	return s
}

// holdViolated reports whether any item's hold bound is violated by x.
func holdViolated(items []alignItem, x []float64) bool {
	for _, it := range items {
		if !math.IsInf(it.lambda, -1) && x[it.from]-x[it.to] < it.lambda-1e-12 {
			return true
		}
	}
	return false
}

// alignHeuristic is weighted-median coordinate descent over the buffer
// lattice: T is re-optimized in closed form; each touched buffer scans its
// lattice, skipping values that violate any hold bound of the batch.
func alignHeuristic(c *circuit.Circuit, items []alignItem, prev []float64, scr *alignScratch) alignResult {
	scr.x = resizeF(scr.x, c.NumFF)
	x := scr.x
	if prev != nil {
		copy(x, prev) // a warm re-solve may hand back x itself; copy is a no-op then
	} else {
		clear(x)
	}
	// Collect touched buffered FFs (a batch touches at most 2×len(items),
	// so a linear membership scan beats a map).
	bufs := scr.bufs[:0]
	for _, it := range items {
		for _, f := range [2]int{it.from, it.to} {
			if c.Buf.Buffered[f] && !slices.Contains(bufs, f) {
				bufs = append(bufs, f)
			}
		}
	}
	scr.bufs = bufs
	sort.Ints(bufs)
	// Quantize any inherited values and repair hold feasibility.
	for _, f := range bufs {
		x[f] = c.Buf.Quantize(f, x[f])
	}
	repairHolds(c, items, bufs, x)

	scr.vals = resizeF(scr.vals, len(items))
	scr.wts = resizeF(scr.wts, len(items))
	vals, ws := scr.vals, scr.wts
	// evalBestT returns the objective with T re-optimized in closed form
	// (the weighted median of the shifted centers) for the current x.
	evalBestT := func() (float64, float64) {
		for i, it := range items {
			vals[i] = it.center() + x[it.from] - x[it.to]
			ws[i] = it.weight
		}
		scr.vw.v, scr.vw.w = vals, ws
		t := weightedMedianVW(&scr.vw)
		if t < 0 {
			t = 0
		}
		return t, alignObjective(items, t, x)
	}

	latticeValue := func(f, k int) float64 { return c.Buf.Lo[f] + float64(k)*c.Buf.StepSize(f) }
	steps := c.Buf.Steps
	if steps < 0 {
		steps = 0
	}

	if len(bufs) <= 2 && steps > 0 && steps <= 64 {
		// Exhaustive lattice search: exact for one- and two-buffer batches
		// (common on circuits with few buffers).
		scr.bestX = resizeF(scr.bestX, c.NumFF)
		bestX := scr.bestX
		copy(bestX, x)
		_, best := evalBestT()
		if holdViolated(items, x) {
			best = math.Inf(1)
		}
		scan := func() {
			if _, obj := evalBestT(); obj < best-1e-12 && !holdViolated(items, x) {
				best = obj
				copy(bestX, x)
			}
		}
		switch len(bufs) {
		case 1:
			for k := 0; k <= steps; k++ {
				x[bufs[0]] = latticeValue(bufs[0], k)
				scan()
			}
		case 2:
			for k0 := 0; k0 <= steps; k0++ {
				x[bufs[0]] = latticeValue(bufs[0], k0)
				for k1 := 0; k1 <= steps; k1++ {
					x[bufs[1]] = latticeValue(bufs[1], k1)
					scan()
				}
			}
		}
		copy(x, bestX)
		t, obj := evalBestT()
		return alignResult{T: t, X: x, Obj: obj}
	}

	// Multi-start coordinate descent for batches touching many buffers.
	descend := func() float64 {
		repairHolds(c, items, bufs, x)
		_, best := evalBestT()
		const maxPasses = 25
		for pass := 0; pass < maxPasses; pass++ {
			improved := false
			for _, f := range bufs {
				cur := x[f]
				bestV, bestObj := cur, best
				for k := 0; k <= steps; k++ {
					v := latticeValue(f, k)
					if v == cur {
						continue
					}
					x[f] = v
					if holdViolated(items, x) {
						continue
					}
					if _, obj := evalBestT(); obj < bestObj-1e-12 {
						bestObj, bestV = obj, v
					}
				}
				x[f] = bestV
				if bestObj < best-1e-12 {
					best = bestObj
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		return best
	}

	scr.bestX = resizeF(scr.bestX, c.NumFF)
	bestX := scr.bestX
	bestObj := descend()
	copy(bestX, x)
	if prev != nil {
		// Warm-started re-solve within a batch: bounds moved only a little,
		// so a single descent from the previous optimum suffices.
		copy(x, bestX)
		t, obj := evalBestT()
		return alignResult{T: t, X: x, Obj: obj}
	}
	// Cold start: restart from all-zero (quantized) and two deterministic
	// spreads derived from the batch contents.
	restarts := scr.restart[:] // aliases scr.restart, so grown buffers persist
	for ri := range restarts {
		restarts[ri] = resizeF(restarts[ri], c.NumFF)
		rx := restarts[ri]
		clear(rx)
		for bi, f := range bufs {
			switch ri {
			case 0:
				rx[f] = c.Buf.Quantize(f, 0)
			case 1:
				// Alternate extremes by position.
				if bi%2 == 0 {
					rx[f] = c.Buf.Lo[f]
				} else {
					rx[f] = c.Buf.Hi[f]
				}
			default:
				if bi%2 == 1 {
					rx[f] = c.Buf.Lo[f]
				} else {
					rx[f] = c.Buf.Hi[f]
				}
			}
		}
	}
	for _, rx := range restarts {
		copy(x, rx)
		if obj := descend(); obj < bestObj-1e-12 {
			bestObj = obj
			copy(bestX, x)
		}
	}
	copy(x, bestX)
	t, obj := evalBestT()
	return alignResult{T: t, X: x, Obj: obj}
}

// repairHolds makes x hold-feasible for the batch: as long as some item's
// bound is violated, raise its source buffer or lower its sink buffer by one
// lattice step where possible.
func repairHolds(c *circuit.Circuit, items []alignItem, bufs []int, x []float64) {
	for round := 0; round < 4*len(items)+8; round++ {
		fixed := true
		for _, it := range items {
			if math.IsInf(it.lambda, -1) {
				continue
			}
			if x[it.from]-x[it.to] >= it.lambda-1e-12 {
				continue
			}
			fixed = false
			sf, st := c.Buf.StepSize(it.from), c.Buf.StepSize(it.to)
			if c.Buf.Buffered[it.from] && x[it.from]+sf <= c.Buf.Hi[it.from]+1e-12 {
				x[it.from] = c.Buf.Quantize(it.from, x[it.from]+sf)
			} else if c.Buf.Buffered[it.to] && x[it.to]-st >= c.Buf.Lo[it.to]-1e-12 {
				x[it.to] = c.Buf.Quantize(it.to, x[it.to]-st)
			}
		}
		if fixed {
			return
		}
	}
}

// alignMILP builds and solves the alignment model exactly. With paperBigM
// true it is the faithful Eqs. (7)–(14) big-M formulation (plus the implied
// z⁺+z⁻=1); otherwise the equivalent direct absolute-value model. Buffer
// values are integer lattice points in both cases.
func alignMILP(c *circuit.Circuit, items []alignItem, paperBigM bool) (alignResult, error) {
	p := mip.NewProblem()

	tMax := 0.0
	span := 0.0
	for _, it := range items {
		for _, f := range [2]int{it.from, it.to} {
			if c.Buf.Buffered[f] {
				if w := c.Buf.Hi[f] - c.Buf.Lo[f]; w > span {
					span = w
				}
			}
		}
		if it.hi > tMax {
			tMax = it.hi
		}
	}
	tMax += 2*span + 1

	tVar := p.AddVar("T", 0, tMax, 0)

	// One integer step variable per touched buffered FF.
	type bufVar struct {
		v    int
		lo   float64
		step float64
	}
	bufOf := map[int]bufVar{}
	xTerm := func(f int, sign float64) (lp.Term, float64, bool) {
		// Returns the term for x_f = lo + step·n and the constant offset
		// contributed; ok=false when the FF is unbuffered (x=0).
		if !c.Buf.Buffered[f] {
			return lp.Term{}, 0, false
		}
		bv, ok := bufOf[f]
		if !ok {
			bv = bufVar{
				v:    p.AddIntVar(fmt.Sprintf("n%d", f), 0, float64(c.Buf.Steps), 0),
				lo:   c.Buf.Lo[f],
				step: c.Buf.StepSize(f),
			}
			bufOf[f] = bv
		}
		return lp.Term{Var: bv.v, Coef: sign * bv.step}, sign * bv.lo, true
	}

	etas := make([]int, len(items))
	bigM := 4 * (tMax + span + 10)
	for i, it := range items {
		etas[i] = p.AddVar(fmt.Sprintf("eta%d", i), 0, lp.Inf, it.weight)
		c0 := it.center()

		// Build the linear expression e := T - c0 - (x_i - x_j) as terms +
		// constant: e = T - x_i + x_j - c0.
		var baseTerms []lp.Term
		baseConst := -c0
		baseTerms = append(baseTerms, lp.Term{Var: tVar, Coef: 1})
		if t, off, ok := xTerm(it.from, -1); ok {
			baseTerms = append(baseTerms, t)
			baseConst += off
		}
		if t, off, ok := xTerm(it.to, 1); ok {
			baseTerms = append(baseTerms, t)
			baseConst += off
		}

		if !paperBigM {
			// η ≥ e  and  η ≥ -e.
			t1 := append([]lp.Term{{Var: etas[i], Coef: 1}}, negateTerms(baseTerms)...)
			p.AddConstraint("absP", t1, lp.GE, baseConst)
			t2 := append([]lp.Term{{Var: etas[i], Coef: 1}}, baseTerms...)
			p.AddConstraint("absN", t2, lp.GE, -baseConst)
		} else {
			zp := p.AddBinVar(fmt.Sprintf("zp%d", i), 0)
			zn := p.AddBinVar(fmt.Sprintf("zn%d", i), 0)
			// (8)  e ≤ M z⁺
			p.AddConstraint("eq8", append(cloneTerms(baseTerms), lp.Term{Var: zp, Coef: -bigM}), lp.LE, -baseConst)
			// (9)  e - η ≤ M(1-z⁺)
			p.AddConstraint("eq9", append(cloneTerms(baseTerms),
				lp.Term{Var: etas[i], Coef: -1}, lp.Term{Var: zp, Coef: bigM}), lp.LE, -baseConst+bigM)
			// (10) -e + η ≤ M(1-z⁺)
			p.AddConstraint("eq10", append(negateTerms(baseTerms),
				lp.Term{Var: etas[i], Coef: 1}, lp.Term{Var: zp, Coef: bigM}), lp.LE, baseConst+bigM)
			// (11) -e ≤ M z⁻
			p.AddConstraint("eq11", append(negateTerms(baseTerms), lp.Term{Var: zn, Coef: -bigM}), lp.LE, baseConst)
			// (12) -e - η ≤ M(1-z⁻)
			p.AddConstraint("eq12", append(negateTerms(baseTerms),
				lp.Term{Var: etas[i], Coef: -1}, lp.Term{Var: zn, Coef: bigM}), lp.LE, baseConst+bigM)
			// (13) e + η ≤ M(1-z⁻)
			p.AddConstraint("eq13", append(cloneTerms(baseTerms),
				lp.Term{Var: etas[i], Coef: 1}, lp.Term{Var: zn, Coef: bigM}), lp.LE, -baseConst+bigM)
			// Implied case selection: exactly one side active.
			p.AddConstraint("zsum", []lp.Term{{Var: zp, Coef: 1}, {Var: zn, Coef: 1}}, lp.EQ, 1)
		}

		// Hold bound (21): x_i - x_j ≥ λ.
		if !math.IsInf(it.lambda, -1) {
			var ht []lp.Term
			hc := it.lambda
			if t, off, ok := xTerm(it.from, 1); ok {
				ht = append(ht, t)
				hc -= off
			}
			if t, off, ok := xTerm(it.to, -1); ok {
				ht = append(ht, t)
				hc -= off
			}
			if len(ht) > 0 {
				p.AddConstraint("hold", ht, lp.GE, hc)
			} else if hc > 0 {
				return alignResult{}, fmt.Errorf("core: hold bound %v unsatisfiable without buffers", it.lambda)
			}
		}
	}

	sol, err := p.Solve()
	if err != nil {
		return alignResult{}, err
	}
	if sol.Status != lp.StatusOptimal {
		return alignResult{}, fmt.Errorf("core: alignment MILP %v", sol.Status)
	}
	x := make([]float64, c.NumFF)
	for f, bv := range bufOf {
		x[f] = bv.lo + bv.step*math.Round(sol.X[bv.v])
	}
	res := alignResult{T: sol.X[tVar], X: x}
	its := make([]alignItem, len(items))
	copy(its, items)
	res.Obj = alignObjective(its, res.T, x)
	return res, nil
}

func cloneTerms(ts []lp.Term) []lp.Term {
	out := make([]lp.Term, len(ts))
	copy(out, ts)
	return out
}

func negateTerms(ts []lp.Term) []lp.Term {
	out := make([]lp.Term, len(ts))
	for i, t := range ts {
		out[i] = lp.Term{Var: t.Var, Coef: -t.Coef}
	}
	return out
}
