package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"effitest/internal/circuit"
)

// PlanCache is a content-addressed on-disk cache of prepared plans, keyed
// by (circuit fingerprint, configuration fingerprint, plan format version).
// The offline Prepare — path selection, batching, hold bounds — is the
// expensive, tester-free stage of the flow; with a shared cache directory
// it runs once per (circuit, config) fleet-wide and every other process
// loads the artifact in milliseconds.
//
// Entries are immutable: a key fully determines the plan bytes, so
// concurrent writers racing on the same key write identical content and
// atomic rename makes the race harmless. A corrupt or version-skewed entry
// reads as a miss and is overwritten by the next Put.
type PlanCache struct {
	dir string
}

// NewPlanCache opens (creating if needed) a plan cache rooted at dir.
func NewPlanCache(dir string) (*PlanCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("core: plan cache directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: plan cache: %w", err)
	}
	return &PlanCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (pc *PlanCache) Dir() string { return pc.dir }

// ConfigFingerprint hashes every Prepare-relevant configuration field.
// Workers and PredictBatch are deliberately excluded: they only shape
// online parallelism and kernel batching, never the plan, so fleets running
// the same flow at different widths share cache entries.
func ConfigFingerprint(cfg Config) string {
	h := sha256.New()
	key := cfg
	key.Workers = 0
	key.PredictBatch = 0
	// %#v prints field names too, so reordering or renaming Config fields
	// changes the fingerprint — exactly the conservative behaviour a cache
	// key wants.
	fmt.Fprintf(h, "%#v", key)
	return hex.EncodeToString(h.Sum(nil))
}

// Key returns the cache key for (circuit, config): a hex SHA-256 digest.
func (pc *PlanCache) Key(c *circuit.Circuit, cfg Config) (string, error) {
	cfp, err := circuit.Fingerprint(c)
	if err != nil {
		return "", err
	}
	return pc.keyFrom(cfp, cfg), nil
}

func (pc *PlanCache) keyFrom(circuitFP string, cfg Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "effitest-plan|v%d|circuit:%s|config:%s", PlanFormatVersion, circuitFP, ConfigFingerprint(cfg))
	return hex.EncodeToString(h.Sum(nil))
}

// Path returns the on-disk location of a cache key.
func (pc *PlanCache) Path(key string) string {
	return filepath.Join(pc.dir, key+".effiplan")
}

// Get looks up the plan for (circuit, config) and returns it bound to c and
// ready to run, or (nil, nil) on a miss. Corrupt, truncated or
// version-skewed entries are treated as misses — the cache self-heals on
// the next Put. The caller's config must be valid (Validate), because the
// returned plan adopts it wholesale: the key covers every field except
// Workers, and online parallelism should follow the live request, not
// whatever width the writing process used.
func (pc *PlanCache) Get(c *circuit.Circuit, cfg Config) (*Plan, error) {
	return pc.getCtx(context.Background(), c, cfg)
}

// getCtx is Get with cancellation of the bind work (the kernel bake is the
// expensive tail of a warm load). A cancelled context is an error, never a
// silent miss — a miss would trigger a full re-Prepare.
func (pc *PlanCache) getCtx(ctx context.Context, c *circuit.Circuit, cfg Config) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfp, err := circuit.Fingerprint(c)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(pc.Path(pc.keyFrom(cfp, cfg)))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: plan cache: %w", err)
	}
	pl, err := DecodePlan(data)
	if err != nil {
		return nil, nil // corrupt entry: miss, Put will overwrite
	}
	// Adopt the live request's config before binding: the cache key pins
	// every field except Workers, and the bind-time kernel bake should fan
	// out at the caller's width, not the writing process's.
	pl.Cfg = cfg
	if err := pl.bindWithFingerprint(ctx, c, cfp); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, nil // stale or tampered entry: miss
	}
	return pl, nil
}

// PrepareCached is PrepareCtx through a plan cache rooted at dir: a warm
// hit loads the artifact and skips the offline flow entirely; a miss
// prepares and stores it for every later process. The returned flag
// reports whether Prepare was skipped.
func PrepareCached(ctx context.Context, dir string, c *circuit.Circuit, cfg Config) (*Plan, bool, error) {
	pc, err := NewPlanCache(dir)
	if err != nil {
		return nil, false, err
	}
	if pl, err := pc.getCtx(ctx, c, cfg); err != nil {
		return nil, false, err
	} else if pl != nil {
		return pl, true, nil
	}
	pl, err := PrepareCtx(ctx, c, cfg)
	if err != nil {
		return nil, false, err
	}
	if err := pc.Put(pl); err != nil {
		return nil, false, fmt.Errorf("core: storing plan in cache: %w", err)
	}
	return pl, false, nil
}

// Put stores the plan under its (circuit, config) key, atomically.
func (pc *PlanCache) Put(pl *Plan) error {
	if pl.Circuit == nil {
		return fmt.Errorf("core: plan cache: cannot store an unbound plan")
	}
	key, err := pc.Key(pl.Circuit, pl.Cfg)
	if err != nil {
		return err
	}
	data, err := pl.MarshalBinary()
	if err != nil {
		return err
	}
	return writeFileAtomic(pc.Path(key), data)
}
