// Package ssta implements first-order canonical-form statistical static
// timing analysis: delays are affine functions of a shared basis of
// independent standard-normal factors plus an independent random term.
//
//	d = Mean + Σ_k Coef[k]·z_k + Rand·ε
//
// with z the chip-wide variation factors (from package variation's spatial
// grid) and ε private to the delay. Sums, scaling, covariance and Clark's
// max operation are provided; package circuit builds path delays as sums of
// gate canonicals, and the resulting covariance matrices drive EffiTest's
// statistical prediction.
package ssta

import (
	"fmt"
	"math"

	"effitest/internal/la"
	"effitest/internal/stats"
)

// Canon is a first-order canonical delay form.
type Canon struct {
	Mean float64
	Coef []float64 // loadings on the shared factor basis
	Rand float64   // sigma of the independent random part (>= 0)
}

// NewCanon builds a canonical form; coef is copied.
func NewCanon(mean float64, coef []float64, rnd float64) Canon {
	c := make([]float64, len(coef))
	copy(c, coef)
	return Canon{Mean: mean, Coef: c, Rand: math.Abs(rnd)}
}

// Deterministic returns a canonical form with no variation.
func Deterministic(mean float64, basis int) Canon {
	return Canon{Mean: mean, Coef: make([]float64, basis), Rand: 0}
}

// Var returns the total variance.
func (c Canon) Var() float64 {
	v := c.Rand * c.Rand
	for _, a := range c.Coef {
		v += a * a
	}
	return v
}

// Sigma returns the standard deviation.
func (c Canon) Sigma() float64 { return math.Sqrt(c.Var()) }

// Add returns the sum of two canonical forms over the same basis. The
// independent parts combine in quadrature (they are independent by
// construction).
func Add(a, b Canon) Canon {
	if len(a.Coef) != len(b.Coef) {
		panic(fmt.Sprintf("ssta: basis mismatch %d vs %d", len(a.Coef), len(b.Coef)))
	}
	coef := make([]float64, len(a.Coef))
	for i := range coef {
		coef[i] = a.Coef[i] + b.Coef[i]
	}
	return Canon{
		Mean: a.Mean + b.Mean,
		Coef: coef,
		Rand: math.Hypot(a.Rand, b.Rand),
	}
}

// Scale returns s*c.
func Scale(c Canon, s float64) Canon {
	coef := make([]float64, len(c.Coef))
	for i := range coef {
		coef[i] = s * c.Coef[i]
	}
	return Canon{Mean: s * c.Mean, Coef: coef, Rand: math.Abs(s) * c.Rand}
}

// ShiftMean returns c with its mean moved by delta.
func ShiftMean(c Canon, delta float64) Canon {
	coef := make([]float64, len(c.Coef))
	copy(coef, c.Coef)
	return Canon{Mean: c.Mean + delta, Coef: coef, Rand: c.Rand}
}

// Cov returns the covariance of two canonical forms (independent parts never
// co-vary across distinct delays).
func Cov(a, b Canon) float64 {
	if len(a.Coef) != len(b.Coef) {
		panic("ssta: basis mismatch in Cov")
	}
	return la.Dot(a.Coef, b.Coef)
}

// Corr returns the correlation coefficient of two canonical forms, zero if
// either is deterministic.
func Corr(a, b Canon) float64 {
	sa, sb := a.Sigma(), b.Sigma()
	if sa == 0 || sb == 0 {
		return 0
	}
	return Cov(a, b) / (sa * sb)
}

// Sample realizes the delay for factor vector z and private standard-normal
// draw eps.
func (c Canon) Sample(z []float64, eps float64) float64 {
	if len(z) != len(c.Coef) {
		panic("ssta: factor vector length mismatch")
	}
	return c.Mean + la.Dot(c.Coef, z) + c.Rand*eps
}

// CovMatrix builds the covariance matrix of a set of canonical delays
// (diagonal includes the independent variances).
func CovMatrix(cs []Canon) *la.Matrix {
	n := len(cs)
	m := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := Cov(cs[i], cs[j])
			if i == j {
				v += cs[i].Rand * cs[i].Rand
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// CorrMatrix builds the correlation matrix of a set of canonical delays.
func CorrMatrix(cs []Canon) *la.Matrix {
	n := len(cs)
	cov := CovMatrix(cs)
	out := la.NewMatrix(n, n)
	sd := make([]float64, n)
	for i := 0; i < n; i++ {
		sd[i] = math.Sqrt(cov.At(i, i))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				out.Set(i, j, 1)
			} else if sd[i] > 0 && sd[j] > 0 {
				out.Set(i, j, cov.At(i, j)/(sd[i]*sd[j]))
			}
		}
	}
	return out
}

// Max returns Clark's moment-matching approximation of max(a, b) as a new
// canonical form. The correlated coefficients are blended with the tightness
// probability; the independent sigma is set to preserve the Clark variance
// (clamped at zero if the blended coefficients already exceed it).
func Max(a, b Canon) Canon {
	va, vb := a.Var(), b.Var()
	cov := Cov(a, b)
	theta := math.Sqrt(math.Max(va+vb-2*cov, 0))
	if theta < 1e-15 {
		// Equal up to a mean shift: max is simply the larger-mean form.
		if a.Mean >= b.Mean {
			return NewCanon(a.Mean, a.Coef, a.Rand)
		}
		return NewCanon(b.Mean, b.Coef, b.Rand)
	}
	alpha := (a.Mean - b.Mean) / theta
	phi := stats.StdPDF(alpha)
	Phi := stats.StdCDF(alpha)
	PhiC := 1 - Phi

	mean := a.Mean*Phi + b.Mean*PhiC + theta*phi
	second := (a.Mean*a.Mean+va)*Phi + (b.Mean*b.Mean+vb)*PhiC + (a.Mean+b.Mean)*theta*phi
	variance := math.Max(second-mean*mean, 0)

	coef := make([]float64, len(a.Coef))
	sumsq := 0.0
	for i := range coef {
		coef[i] = Phi*a.Coef[i] + PhiC*b.Coef[i]
		sumsq += coef[i] * coef[i]
	}
	rnd := 0.0
	if variance > sumsq {
		rnd = math.Sqrt(variance - sumsq)
	} else if sumsq > 0 && variance > 0 {
		// Shrink coefficients to match the Clark variance exactly.
		s := math.Sqrt(variance / sumsq)
		for i := range coef {
			coef[i] *= s
		}
	}
	return Canon{Mean: mean, Coef: coef, Rand: rnd}
}

// MaxAll folds Max over a non-empty set of canonical forms.
func MaxAll(cs []Canon) Canon {
	if len(cs) == 0 {
		panic("ssta: MaxAll of empty set")
	}
	acc := cs[0]
	for _, c := range cs[1:] {
		acc = Max(acc, c)
	}
	return acc
}
