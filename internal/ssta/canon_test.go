package ssta

import (
	"math"
	"testing"

	"effitest/internal/rng"
	"effitest/internal/stats"
)

func TestCanonVarSigma(t *testing.T) {
	c := NewCanon(5, []float64{3, 4}, 0)
	if c.Var() != 25 || c.Sigma() != 5 {
		t.Fatalf("var=%v sigma=%v", c.Var(), c.Sigma())
	}
	c2 := NewCanon(5, nil, 2)
	if c2.Var() != 4 {
		t.Fatalf("rand-only var = %v", c2.Var())
	}
}

func TestAddMeansAndCoefs(t *testing.T) {
	a := NewCanon(1, []float64{1, 0}, 3)
	b := NewCanon(2, []float64{2, 5}, 4)
	s := Add(a, b)
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Coef[0] != 3 || s.Coef[1] != 5 {
		t.Fatalf("coef = %v", s.Coef)
	}
	if s.Rand != 5 { // 3-4-5 triangle
		t.Fatalf("rand = %v", s.Rand)
	}
}

func TestScaleNegative(t *testing.T) {
	a := NewCanon(2, []float64{1, -2}, 3)
	s := Scale(a, -2)
	if s.Mean != -4 || s.Coef[0] != -2 || s.Coef[1] != 4 || s.Rand != 6 {
		t.Fatalf("scale wrong: %+v", s)
	}
}

func TestCovCorr(t *testing.T) {
	a := NewCanon(0, []float64{1, 0}, 0)
	b := NewCanon(0, []float64{1, 0}, 0)
	if Corr(a, b) != 1 {
		t.Fatalf("identical forms should have corr 1")
	}
	c := NewCanon(0, []float64{0, 1}, 0)
	if Corr(a, c) != 0 {
		t.Fatalf("orthogonal forms should have corr 0")
	}
	// Independent rand reduces correlation below 1.
	d := NewCanon(0, []float64{1, 0}, 1)
	if cr := Corr(a, d); math.Abs(cr-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("corr = %v, want %v", cr, 1/math.Sqrt2)
	}
	if Corr(a, Deterministic(3, 2)) != 0 {
		t.Fatal("deterministic corr must be 0")
	}
}

func TestSampleMatchesMoments(t *testing.T) {
	c := NewCanon(10, []float64{0.5, -0.25}, 0.3)
	r := rng.New(2, "canonsample")
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		z := []float64{r.NormFloat64(), r.NormFloat64()}
		xs[i] = c.Sample(z, r.NormFloat64())
	}
	if m := stats.Mean(xs); math.Abs(m-10) > 0.01 {
		t.Fatalf("sample mean %v", m)
	}
	if s := stats.StdDev(xs); math.Abs(s-c.Sigma()) > 0.01 {
		t.Fatalf("sample sd %v vs %v", s, c.Sigma())
	}
}

func TestCovMatrixIncludesRandOnDiagonal(t *testing.T) {
	cs := []Canon{
		NewCanon(0, []float64{1}, 2),
		NewCanon(0, []float64{1}, 0),
	}
	m := CovMatrix(cs)
	if m.At(0, 0) != 5 { // 1 + 4
		t.Fatalf("Σ[0][0] = %v, want 5", m.At(0, 0))
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Fatalf("off-diagonal = %v", m.At(0, 1))
	}
	if m.At(1, 1) != 1 {
		t.Fatalf("Σ[1][1] = %v", m.At(1, 1))
	}
}

func TestCorrMatrix(t *testing.T) {
	cs := []Canon{
		NewCanon(0, []float64{1, 0}, 0),
		NewCanon(0, []float64{1, 0}, 1),
		NewCanon(0, []float64{0, 2}, 0),
	}
	m := CorrMatrix(cs)
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Fatal("diag must be 1")
	}
	if math.Abs(m.At(0, 1)-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("corr01 = %v", m.At(0, 1))
	}
	if m.At(0, 2) != 0 {
		t.Fatalf("corr02 = %v", m.At(0, 2))
	}
}

func TestClarkMaxDominance(t *testing.T) {
	// max(a,b) mean must be >= both means; for well-separated inputs it
	// approaches the larger.
	a := NewCanon(10, []float64{1}, 0)
	b := NewCanon(0, []float64{0.5}, 0)
	m := Max(a, b)
	if m.Mean < 10-1e-9 {
		t.Fatalf("max mean %v < 10", m.Mean)
	}
	if m.Mean > 10.01 {
		t.Fatalf("max mean %v too large for separated inputs", m.Mean)
	}
}

func TestClarkMaxSymmetricAgainstMC(t *testing.T) {
	// Two iid N(0,1): E[max] = 1/√π, Var[max] = 1 - 1/π.
	a := NewCanon(0, []float64{1, 0}, 0)
	b := NewCanon(0, []float64{0, 1}, 0)
	m := Max(a, b)
	wantMean := 1 / math.Sqrt(math.Pi)
	wantVar := 1 - 1/math.Pi
	if math.Abs(m.Mean-wantMean) > 1e-9 {
		t.Fatalf("Clark mean %v, want %v", m.Mean, wantMean)
	}
	if math.Abs(m.Var()-wantVar) > 1e-9 {
		t.Fatalf("Clark var %v, want %v", m.Var(), wantVar)
	}
}

func TestClarkMaxEqualForms(t *testing.T) {
	// With no private random part, two identical forms are the same random
	// variable, so max(a,a) == a exactly.
	a := NewCanon(3, []float64{1, 2}, 0)
	m := Max(a, a)
	if m.Mean != 3 || m.Var() != a.Var() {
		t.Fatalf("max(a,a) = %+v, want a", m)
	}
	// With a private random part the two arguments are distinct variables
	// sharing factors, so the max is strictly larger in mean.
	b := NewCanon(3, []float64{1, 2}, 0.5)
	mb := Max(b, b)
	if mb.Mean <= 3 {
		t.Fatalf("max of iid-beyond-correlation forms should exceed the mean, got %v", mb.Mean)
	}
}

func TestClarkMaxAgainstMonteCarlo(t *testing.T) {
	a := NewCanon(1.0, []float64{0.4, 0.1}, 0.2)
	b := NewCanon(1.1, []float64{0.3, -0.2}, 0.1)
	m := Max(a, b)
	r := rng.New(8, "clarkmc")
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		z := []float64{r.NormFloat64(), r.NormFloat64()}
		da := a.Sample(z, r.NormFloat64())
		db := b.Sample(z, r.NormFloat64())
		xs[i] = math.Max(da, db)
	}
	if d := math.Abs(stats.Mean(xs) - m.Mean); d > 0.005 {
		t.Fatalf("Clark mean off by %v", d)
	}
	if d := math.Abs(stats.StdDev(xs) - m.Sigma()); d > 0.01 {
		t.Fatalf("Clark sigma off by %v (mc %v clark %v)", d, stats.StdDev(xs), m.Sigma())
	}
}

func TestMaxAll(t *testing.T) {
	cs := []Canon{
		NewCanon(1, []float64{0}, 0.1),
		NewCanon(5, []float64{0}, 0.1),
		NewCanon(3, []float64{0}, 0.1),
	}
	m := MaxAll(cs)
	if m.Mean < 5-1e-9 {
		t.Fatalf("MaxAll mean %v < 5", m.Mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MaxAll(nil) should panic")
		}
	}()
	MaxAll(nil)
}

func TestShiftMean(t *testing.T) {
	a := NewCanon(2, []float64{1}, 1)
	s := ShiftMean(a, 3)
	if s.Mean != 5 || s.Var() != a.Var() {
		t.Fatalf("shift = %+v", s)
	}
}

func TestBasisMismatchPanics(t *testing.T) {
	a := NewCanon(0, []float64{1}, 0)
	b := NewCanon(0, []float64{1, 2}, 0)
	for name, f := range map[string]func(){
		"add": func() { Add(a, b) },
		"cov": func() { Cov(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
