package circuit

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	c := tinyCircuit(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	// Every buffered FF on a path appears double-circled.
	for _, b := range c.Buffered {
		onPath := false
		for i := range c.Paths {
			if c.Paths[i].From == b || c.Paths[i].To == b {
				onPath = true
				break
			}
		}
		if onPath && !strings.Contains(out, "doublecircle") {
			t.Fatal("buffered FFs should be double-circled")
		}
	}
	// One edge per path.
	if got := strings.Count(out, "->"); got != c.NumPaths() {
		t.Fatalf("%d edges for %d paths", got, c.NumPaths())
	}
}
