package circuit

import (
	"bytes"
	"math"
	"testing"

	"effitest/internal/ssta"
)

func tinyCircuit(t *testing.T) *Circuit {
	t.Helper()
	p := TinyProfile("tiny", 20, 160, 3, 24)
	c, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateMatchesProfileCounts(t *testing.T) {
	for _, p := range []Profile{
		TinyProfile("a", 20, 160, 3, 24),
		TinyProfile("b", 50, 400, 5, 60),
	} {
		c, err := Generate(p, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if c.NumFF != p.NumFF {
			t.Errorf("%s: ffs %d != %d", p.Name, c.NumFF, p.NumFF)
		}
		if c.NumGates() != p.NumGates {
			t.Errorf("%s: gates %d != %d", p.Name, c.NumGates(), p.NumGates)
		}
		if c.NumBuffers() != p.NumBuffers {
			t.Errorf("%s: buffers %d != %d", p.Name, c.NumBuffers(), p.NumBuffers)
		}
		if c.NumPaths() != p.NumPaths {
			t.Errorf("%s: paths %d != %d", p.Name, c.NumPaths(), p.NumPaths)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := TinyProfile("det", 20, 160, 3, 24)
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.TNominal != b.TNominal {
		t.Fatal("same seed produced different TNominal")
	}
	for i := range a.Paths {
		if a.Paths[i].Max.Mean != b.Paths[i].Max.Mean || a.Paths[i].From != b.Paths[i].From {
			t.Fatalf("path %d differs between identical seeds", i)
		}
	}
	c, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Paths {
		if a.Paths[i].Max.Mean != c.Paths[i].Max.Mean {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestGenerateEveryPathTouchesBuffer(t *testing.T) {
	c := tinyCircuit(t)
	for _, p := range c.Paths {
		if !c.IsBuffered(p.From) && !c.IsBuffered(p.To) {
			t.Fatalf("path %d touches no buffer", p.ID)
		}
	}
}

func TestGenerateClusterCorrelationStructure(t *testing.T) {
	// A cluster is a pipeline of regions: paths in the same region are very
	// highly correlated (they drive statistical prediction), while paths in
	// different regions — even of the same cluster — see different regional
	// variation (that imbalance is what tuning exploits). So: many
	// near-perfectly correlated pairs must exist inside clusters, and
	// cross-cluster correlation must sit clearly below them.
	c := tinyCircuit(t)
	corr := c.CorrMatrix()
	var intraHi int // same-cluster pairs with corr >= 0.9 (region mates)
	var sumOut float64
	var nOut int
	for i := 0; i < len(c.Paths); i++ {
		for j := i + 1; j < len(c.Paths); j++ {
			if c.Paths[i].Cluster == c.Paths[j].Cluster {
				if corr[i][j] >= 0.9 {
					intraHi++
				}
			} else {
				sumOut += corr[i][j]
				nOut++
			}
		}
	}
	if intraHi < len(c.Paths)/2 {
		t.Errorf("only %d high-correlation intra-cluster pairs; prediction needs region mates", intraHi)
	}
	if nOut > 0 {
		if avgOut := sumOut / float64(nOut); avgOut > 0.7 {
			t.Errorf("cross-cluster correlation %v too high; clusters not separated", avgOut)
		}
	}
}

func TestGeneratePathSigmaReasonable(t *testing.T) {
	c := tinyCircuit(t)
	for _, p := range c.Paths {
		rel := p.Max.Sigma() / p.Max.Mean
		if rel < 0.03 || rel > 0.25 {
			t.Fatalf("path %d relative sigma %v outside sane band", p.ID, rel)
		}
	}
}

func TestGenerateBufferRange(t *testing.T) {
	c := tinyCircuit(t)
	tau := c.TNominal / 8
	for _, b := range c.Buffered {
		if math.Abs((c.Buf.Hi[b]-c.Buf.Lo[b])-tau) > 1e-9 {
			t.Fatalf("buffer range %v, want τ = %v", c.Buf.Hi[b]-c.Buf.Lo[b], tau)
		}
	}
	if c.Buf.Steps != 20 {
		t.Fatalf("steps = %d, want 20", c.Buf.Steps)
	}
}

func TestCovMatrixConsistency(t *testing.T) {
	c := tinyCircuit(t)
	cov := c.CovMatrix()
	for i := range c.Paths {
		if math.Abs(cov[i][i]-c.Paths[i].Max.Var()) > 1e-9 {
			t.Fatalf("diag %d: %v vs %v", i, cov[i][i], c.Paths[i].Max.Var())
		}
		for j := range c.Paths {
			if math.Abs(cov[i][j]-cov[j][i]) > 1e-12 {
				t.Fatal("cov not symmetric")
			}
		}
	}
	corr := c.CorrMatrix()
	for i := range c.Paths {
		if corr[i][i] != 1 {
			t.Fatal("corr diagonal must be 1")
		}
		for j := range c.Paths {
			if corr[i][j] < -1-1e-9 || corr[i][j] > 1+1e-9 {
				t.Fatalf("corr[%d][%d] = %v out of range", i, j, corr[i][j])
			}
		}
	}
}

func TestWithInflatedSigma(t *testing.T) {
	c := tinyCircuit(t)
	inf, err := c.WithInflatedSigma(1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Paths {
		want := 1.1 * c.Paths[i].Max.Sigma()
		if got := inf.Paths[i].Max.Sigma(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("path %d sigma %v, want %v", i, got, want)
		}
		// Covariance (correlated part) unchanged.
		for j := i + 1; j < len(c.Paths); j++ {
			if math.Abs(ssta.Cov(inf.Paths[i].Max, inf.Paths[j].Max)-ssta.Cov(c.Paths[i].Max, c.Paths[j].Max)) > 1e-12 {
				t.Fatal("covariance changed by sigma inflation")
			}
		}
	}
	// Original untouched.
	if c.Paths[0].Max.Sigma() == inf.Paths[0].Max.Sigma() {
		t.Fatal("original circuit mutated")
	}
	if _, err := c.WithInflatedSigma(0.9); err == nil {
		t.Fatal("deflation should be rejected")
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []Profile{
		{Name: "", NumFF: 10, NumGates: 100, NumBuffers: 1, NumPaths: 5},
		{Name: "x", NumFF: 1, NumGates: 100, NumBuffers: 1, NumPaths: 5},
		{Name: "x", NumFF: 10, NumGates: 100, NumBuffers: 10, NumPaths: 5},
		{Name: "x", NumFF: 10, NumGates: 100, NumBuffers: 0, NumPaths: 5},
		{Name: "x", NumFF: 10, NumGates: 8, NumBuffers: 1, NumPaths: 5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d should be invalid", i)
		}
	}
	for _, p := range Table1Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("published profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, ok := ProfileByName("s9234")
	if !ok || p.NumFF != 211 || p.NumGates != 5597 || p.NumBuffers != 2 || p.NumPaths != 80 {
		t.Fatalf("s9234 lookup wrong: %+v ok=%v", p, ok)
	}
	if _, ok := ProfileByName("nonexistent"); ok {
		t.Fatal("bogus name should not resolve")
	}
}

func TestNetlistRoundTrip(t *testing.T) {
	c := tinyCircuit(t)
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ParseNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != c.Name || got.NumFF != c.NumFF || got.NumGates() != c.NumGates() ||
		got.NumPaths() != c.NumPaths() || got.NumBuffers() != c.NumBuffers() {
		t.Fatal("counts differ after round trip")
	}
	if got.TNominal != c.TNominal || got.SetupTime != c.SetupTime || got.HoldTime != c.HoldTime {
		t.Fatal("scalars differ after round trip")
	}
	for i := range c.Paths {
		a, b := c.Paths[i], got.Paths[i]
		if a.From != b.From || a.To != b.To || a.Cluster != b.Cluster {
			t.Fatalf("path %d structure differs", i)
		}
		if math.Abs(a.Max.Mean-b.Max.Mean) > 1e-12 || math.Abs(a.Max.Sigma()-b.Max.Sigma()) > 1e-12 {
			t.Fatalf("path %d canonical differs: %v/%v vs %v/%v", i,
				a.Max.Mean, a.Max.Sigma(), b.Max.Mean, b.Max.Sigma())
		}
		if math.Abs(a.Min.Mean-b.Min.Mean) > 1e-12 {
			t.Fatalf("path %d min delay differs", i)
		}
	}
	if len(got.Exclusive) != len(c.Exclusive) {
		t.Fatal("exclusive pairs differ")
	}
}

func TestParseNetlistErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus header\nend\n",
		"effitest-netlist v1\nunknowndirective x\nend\n",
		"effitest-netlist v1\ncircuit x\n",           // missing end
		"effitest-netlist v1\ngate 5 0 0 0.1\nend\n", // non-dense gate ids
	}
	for i, s := range cases {
		if _, err := ParseNetlist(bytes.NewBufferString(s)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := tinyCircuit(t)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Circuit){
		func(c *Circuit) { c.Paths[0].From = c.Paths[0].To },
		func(c *Circuit) { c.Paths[0].Gates = []int{99999} },
		func(c *Circuit) { c.Paths[0].ID = 5 },
		func(c *Circuit) { c.TNominal = -1 },
		func(c *Circuit) { c.Exclusive = append(c.Exclusive, [2]int{0, 0}) },
		func(c *Circuit) { c.Gates[0].Nominal = -1 },
		func(c *Circuit) {
			// Point a path at two unbuffered FFs.
			var u1, u2 int = -1, -1
			for ff := 0; ff < c.NumFF; ff++ {
				if !c.IsBuffered(ff) {
					if u1 < 0 {
						u1 = ff
					} else {
						u2 = ff
						break
					}
				}
			}
			c.Paths[0].From, c.Paths[0].To = u1, u2
		},
	}
	for i, mut := range mutations {
		cc := tinyCircuit(t)
		mut(cc)
		if err := cc.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestHoldBoundMean(t *testing.T) {
	c := tinyCircuit(t)
	for i := range c.Paths {
		want := c.HoldTime - c.Paths[i].Min.Mean
		if got := c.HoldBoundMean(i); got != want {
			t.Fatalf("path %d hold bound %v, want %v", i, got, want)
		}
	}
}
