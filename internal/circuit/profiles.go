package circuit

import "fmt"

// Profile describes a benchmark circuit's published statistics (the paper's
// Table 1: ns flip-flops, ng gates, nb tuning buffers, np paths whose delays
// are required for buffer configuration).
type Profile struct {
	Name       string
	NumFF      int // ns
	NumGates   int // ng
	NumBuffers int // nb
	NumPaths   int // np
}

// Table1Profiles lists the eight ISCAS89/TAU13 circuits of the paper's
// evaluation with their published statistics.
var Table1Profiles = []Profile{
	{Name: "s9234", NumFF: 211, NumGates: 5597, NumBuffers: 2, NumPaths: 80},
	{Name: "s13207", NumFF: 638, NumGates: 7951, NumBuffers: 5, NumPaths: 485},
	{Name: "s15850", NumFF: 534, NumGates: 9772, NumBuffers: 5, NumPaths: 397},
	{Name: "s38584", NumFF: 1426, NumGates: 19253, NumBuffers: 7, NumPaths: 370},
	{Name: "mem_ctrl", NumFF: 1065, NumGates: 10327, NumBuffers: 10, NumPaths: 3016},
	{Name: "usb_funct", NumFF: 1746, NumGates: 14381, NumBuffers: 17, NumPaths: 482},
	{Name: "ac97_ctrl", NumFF: 2199, NumGates: 9208, NumBuffers: 21, NumPaths: 780},
	{Name: "pci_bridge32", NumFF: 3321, NumGates: 12494, NumBuffers: 32, NumPaths: 3472},
}

// ProfileByName looks up a Table-1 profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Table1Profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Validate checks a profile for internal consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("circuit: profile has no name")
	}
	if p.NumFF <= 1 {
		return fmt.Errorf("circuit: profile %s: need at least 2 FFs", p.Name)
	}
	if p.NumBuffers < 1 || p.NumBuffers >= p.NumFF {
		return fmt.Errorf("circuit: profile %s: buffer count %d out of range", p.Name, p.NumBuffers)
	}
	if p.NumPaths < 1 {
		return fmt.Errorf("circuit: profile %s: no paths", p.Name)
	}
	if p.NumGates < 2*p.NumPaths {
		return fmt.Errorf("circuit: profile %s: %d gates cannot host %d paths (need >= 2 gates per path)",
			p.Name, p.NumGates, p.NumPaths)
	}
	return nil
}

// TinyProfile returns a small synthetic profile for tests and examples.
func TinyProfile(name string, ffs, gates, bufs, paths int) Profile {
	return Profile{Name: name, NumFF: ffs, NumGates: gates, NumBuffers: bufs, NumPaths: paths}
}
