package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"effitest/internal/buffers"
	"effitest/internal/skew"
	"effitest/internal/ssta"
	"effitest/internal/variation"
)

// The netlist format is a line-oriented text form that captures circuit
// structure (FFs, gates with placement, paths, buffers, exclusions) plus the
// variation-model configuration. Statistical delay forms are derived data:
// the parser reconstructs every canonical form from the gates, so a
// write/parse round trip reproduces the circuit exactly.

const netlistHeader = "effitest-netlist v1"

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteNetlist serializes the circuit. Only the default grid variation
// model is serializable; quad-tree models are a programmatic option.
func WriteNetlist(w io.Writer, c *Circuit) error {
	cfg := c.Model.Cfg
	if cfg.Kind != variation.KindGrid {
		return fmt.Errorf("netlist: only the grid variation model is serializable (got kind %d)", cfg.Kind)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, netlistHeader)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	fmt.Fprintf(bw, "ffs %d\n", c.NumFF)
	fmt.Fprintf(bw, "setup %s\n", ff(c.SetupTime))
	fmt.Fprintf(bw, "hold %s\n", ff(c.HoldTime))
	fmt.Fprintf(bw, "tnominal %s\n", ff(c.TNominal))
	fmt.Fprintf(bw, "variation %d %d %s %s %s %s %s %s %s %s %s\n",
		cfg.GridW, cfg.GridH,
		ff(cfg.SigmaL), ff(cfg.SigmaTox), ff(cfg.SigmaVth),
		ff(cfg.CorrGlobal), ff(cfg.CorrDecay),
		ff(cfg.SensL), ff(cfg.SensTox), ff(cfg.SensVth), ff(cfg.SigmaRand))
	for i, b := range c.Buffered {
		d := c.Devices.Devices[i]
		fmt.Fprintf(bw, "buffer %d %s %s %d\n", b, ff(d.Lo), ff(d.Hi), d.Steps)
	}
	for _, g := range c.Gates {
		fmt.Fprintf(bw, "gate %d %d %d %s\n", g.ID, g.CellX, g.CellY, ff(g.Nominal))
	}
	for _, p := range c.Paths {
		ids := make([]string, len(p.Gates))
		for i, g := range p.Gates {
			ids[i] = strconv.Itoa(g)
		}
		fmt.Fprintf(bw, "path %d %d %d %d %s %s\n",
			p.ID, p.From, p.To, p.Cluster, ff(p.MinScale), strings.Join(ids, ","))
	}
	for _, e := range c.Exclusive {
		fmt.Fprintf(bw, "exclusive %d %d\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ParseNetlist reads a circuit back from the text form, reconstructing all
// statistical delay forms from the gates and variation model.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			ln := strings.TrimSpace(sc.Text())
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			return ln, true
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netlist line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	ln, ok := next()
	if !ok || ln != netlistHeader {
		return nil, fail("missing header %q", netlistHeader)
	}

	c := &Circuit{}
	var cfg variation.Config
	var haveVar bool
	var bufFF []int
	var bufDev []buffers.Device
	type rawPath struct {
		id, from, to, cluster int
		minScale              float64
		gates                 []int
	}
	var rawPaths []rawPath

	for {
		ln, ok := next()
		if !ok {
			return nil, fail("missing end marker")
		}
		fields := strings.Fields(ln)
		switch fields[0] {
		case "end":
			goto done
		case "circuit":
			if len(fields) != 2 {
				return nil, fail("circuit wants 1 arg")
			}
			c.Name = fields[1]
		case "ffs":
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad ff count: %v", err)
			}
			c.NumFF = v
		case "setup", "hold", "tnominal":
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fail("bad %s: %v", fields[0], err)
			}
			switch fields[0] {
			case "setup":
				c.SetupTime = v
			case "hold":
				c.HoldTime = v
			default:
				c.TNominal = v
			}
		case "variation":
			if len(fields) != 12 {
				return nil, fail("variation wants 11 args")
			}
			ints := [2]int{}
			for i := 0; i < 2; i++ {
				v, err := strconv.Atoi(fields[1+i])
				if err != nil {
					return nil, fail("bad variation grid: %v", err)
				}
				ints[i] = v
			}
			fs := [9]float64{}
			for i := 0; i < 9; i++ {
				v, err := strconv.ParseFloat(fields[3+i], 64)
				if err != nil {
					return nil, fail("bad variation field: %v", err)
				}
				fs[i] = v
			}
			cfg = variation.Config{
				GridW: ints[0], GridH: ints[1],
				SigmaL: fs[0], SigmaTox: fs[1], SigmaVth: fs[2],
				CorrGlobal: fs[3], CorrDecay: fs[4],
				SensL: fs[5], SensTox: fs[6], SensVth: fs[7],
				SigmaRand: fs[8],
			}
			haveVar = true
		case "buffer":
			if len(fields) != 5 {
				return nil, fail("buffer wants 4 args")
			}
			ffid, err1 := strconv.Atoi(fields[1])
			lo, err2 := strconv.ParseFloat(fields[2], 64)
			hi, err3 := strconv.ParseFloat(fields[3], 64)
			steps, err4 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fail("bad buffer line")
			}
			bufFF = append(bufFF, ffid)
			bufDev = append(bufDev, buffers.Device{FF: ffid, Lo: lo, Hi: hi, Steps: steps})
		case "gate":
			if len(fields) != 5 {
				return nil, fail("gate wants 4 args")
			}
			id, err1 := strconv.Atoi(fields[1])
			x, err2 := strconv.Atoi(fields[2])
			y, err3 := strconv.Atoi(fields[3])
			nom, err4 := strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fail("bad gate line")
			}
			if id != len(c.Gates) {
				return nil, fail("gate ids must be dense and ascending, got %d", id)
			}
			c.Gates = append(c.Gates, Gate{ID: id, CellX: x, CellY: y, Nominal: nom})
		case "path":
			if len(fields) != 7 {
				return nil, fail("path wants 6 args")
			}
			id, err1 := strconv.Atoi(fields[1])
			from, err2 := strconv.Atoi(fields[2])
			to, err3 := strconv.Atoi(fields[3])
			cluster, err4 := strconv.Atoi(fields[4])
			minScale, err5 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return nil, fail("bad path line")
			}
			var gates []int
			for _, s := range strings.Split(fields[6], ",") {
				g, err := strconv.Atoi(s)
				if err != nil {
					return nil, fail("bad gate ref %q", s)
				}
				gates = append(gates, g)
			}
			rawPaths = append(rawPaths, rawPath{id, from, to, cluster, minScale, gates})
		case "exclusive":
			if len(fields) != 3 {
				return nil, fail("exclusive wants 2 args")
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad exclusive line")
			}
			c.Exclusive = append(c.Exclusive, [2]int{a, b})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveVar {
		return nil, fmt.Errorf("netlist: missing variation line")
	}
	model, err := variation.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Model = model

	c.Buffered = bufFF
	c.Devices = buffers.Chain{Devices: bufDev}
	c.Buf = skew.Buffers{
		N:        c.NumFF,
		Buffered: make([]bool, c.NumFF),
		Lo:       make([]float64, c.NumFF),
		Hi:       make([]float64, c.NumFF),
	}
	for _, d := range bufDev {
		if d.FF < 0 || d.FF >= c.NumFF {
			return nil, fmt.Errorf("netlist: buffer FF %d out of range", d.FF)
		}
		c.Buf.Buffered[d.FF] = true
		c.Buf.Lo[d.FF] = d.Lo
		c.Buf.Hi[d.FF] = d.Hi
		c.Buf.Steps = d.Steps
	}

	// Rebuild canonical forms from gates.
	for _, rp := range rawPaths {
		if rp.id != len(c.Paths) {
			return nil, fmt.Errorf("netlist: path ids must be dense and ascending, got %d", rp.id)
		}
		var canon ssta.Canon
		for k, gid := range rp.gates {
			if gid < 0 || gid >= len(c.Gates) {
				return nil, fmt.Errorf("netlist: path %d references gate %d", rp.id, gid)
			}
			g := c.Gates[gid]
			gc := model.GateCanon(g.Nominal, g.CellX, g.CellY)
			if k == 0 {
				canon = gc
			} else {
				canon = ssta.Add(canon, gc)
			}
		}
		c.Paths = append(c.Paths, Path{
			ID: rp.id, From: rp.from, To: rp.to, Gates: rp.gates,
			Cluster: rp.cluster, MinScale: rp.minScale,
			Max: ssta.ShiftMean(canon, c.SetupTime),
			Min: ssta.Scale(canon, rp.minScale),
		})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return c, nil
}
