package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"effitest/internal/buffers"
	"effitest/internal/skew"
	"effitest/internal/ssta"
	"effitest/internal/variation"
)

// The netlist format is a line-oriented text form that captures circuit
// structure (FFs, gates with placement, paths, buffers, exclusions) plus the
// variation-model configuration. Statistical delay forms are derived data:
// the parser reconstructs every canonical form from the gates, so a
// write/parse round trip reproduces the circuit exactly.

const netlistHeader = "effitest-netlist v1"

// Parser hardening bounds. Netlists are an interchange format, so the
// parser must fail cleanly on hostile input instead of allocating
// unboundedly: the flip-flop count sizes several arrays up front, and the
// variation grid is Cholesky-factorized (O(cells³)). Larger models remain
// available programmatically.
const (
	maxNetlistFF        = 1 << 20
	maxNetlistGridCells = 1024
	maxNetlistSteps     = 1 << 20
)

// netlistArity maps every directive to its fixed argument count.
var netlistArity = map[string]int{
	"end": 0, "circuit": 1, "ffs": 1, "setup": 1, "hold": 1, "tnominal": 1,
	"variation": 11, "buffer": 4, "gate": 4, "path": 6, "exclusive": 2,
}

// parseFinite parses a float and rejects NaN/±Inf: every numeric quantity
// in a netlist is a physical delay, sigma or scale, and a non-finite value
// would sail through downstream validation (NaN compares false against
// every bound) and corrupt the statistical model.
func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v, nil
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteNetlist serializes the circuit. Only the default grid variation
// model is serializable; quad-tree models are a programmatic option.
func WriteNetlist(w io.Writer, c *Circuit) error {
	cfg := c.Model.Cfg
	if cfg.Kind != variation.KindGrid {
		return fmt.Errorf("netlist: only the grid variation model is serializable (got kind %d)", cfg.Kind)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, netlistHeader)
	fmt.Fprintf(bw, "circuit %s\n", c.Name)
	fmt.Fprintf(bw, "ffs %d\n", c.NumFF)
	fmt.Fprintf(bw, "setup %s\n", ff(c.SetupTime))
	fmt.Fprintf(bw, "hold %s\n", ff(c.HoldTime))
	fmt.Fprintf(bw, "tnominal %s\n", ff(c.TNominal))
	fmt.Fprintf(bw, "variation %d %d %s %s %s %s %s %s %s %s %s\n",
		cfg.GridW, cfg.GridH,
		ff(cfg.SigmaL), ff(cfg.SigmaTox), ff(cfg.SigmaVth),
		ff(cfg.CorrGlobal), ff(cfg.CorrDecay),
		ff(cfg.SensL), ff(cfg.SensTox), ff(cfg.SensVth), ff(cfg.SigmaRand))
	for i, b := range c.Buffered {
		d := c.Devices.Devices[i]
		fmt.Fprintf(bw, "buffer %d %s %s %d\n", b, ff(d.Lo), ff(d.Hi), d.Steps)
	}
	for _, g := range c.Gates {
		fmt.Fprintf(bw, "gate %d %d %d %s\n", g.ID, g.CellX, g.CellY, ff(g.Nominal))
	}
	for _, p := range c.Paths {
		ids := make([]string, len(p.Gates))
		for i, g := range p.Gates {
			ids[i] = strconv.Itoa(g)
		}
		fmt.Fprintf(bw, "path %d %d %d %d %s %s\n",
			p.ID, p.From, p.To, p.Cluster, ff(p.MinScale), strings.Join(ids, ","))
	}
	for _, e := range c.Exclusive {
		fmt.Fprintf(bw, "exclusive %d %d\n", e[0], e[1])
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ParseNetlist reads a circuit back from the text form, reconstructing all
// statistical delay forms from the gates and variation model.
func ParseNetlist(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			ln := strings.TrimSpace(sc.Text())
			if ln == "" || strings.HasPrefix(ln, "#") {
				continue
			}
			return ln, true
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("netlist line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	ln, ok := next()
	if !ok || ln != netlistHeader {
		return nil, fail("missing header %q", netlistHeader)
	}

	c := &Circuit{}
	var cfg variation.Config
	var haveVar bool
	var bufFF []int
	var bufDev []buffers.Device
	type rawPath struct {
		id, from, to, cluster int
		minScale              float64
		gates                 []int
	}
	var rawPaths []rawPath

	for {
		ln, ok := next()
		if !ok {
			return nil, fail("missing end marker")
		}
		fields := strings.Fields(ln)
		// Every directive has a fixed arity; checking it here keeps the
		// per-case code free of index-out-of-range hazards on truncated
		// lines.
		if want, known := netlistArity[fields[0]]; known && len(fields) != want+1 {
			return nil, fail("%s wants %d args, got %d", fields[0], want, len(fields)-1)
		}
		switch fields[0] {
		case "end":
			goto done
		case "circuit":
			c.Name = fields[1]
		case "ffs":
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad ff count: %v", err)
			}
			if v < 1 || v > maxNetlistFF {
				return nil, fail("ff count %d outside [1, %d]", v, maxNetlistFF)
			}
			c.NumFF = v
		case "setup", "hold", "tnominal":
			v, err := parseFinite(fields[1])
			if err != nil {
				return nil, fail("bad %s: %v", fields[0], err)
			}
			switch fields[0] {
			case "setup":
				c.SetupTime = v
			case "hold":
				c.HoldTime = v
			default:
				c.TNominal = v
			}
		case "variation":
			ints := [2]int{}
			for i := 0; i < 2; i++ {
				v, err := strconv.Atoi(fields[1+i])
				if err != nil {
					return nil, fail("bad variation grid: %v", err)
				}
				ints[i] = v
			}
			// Bound each dimension before multiplying: the product of two
			// huge ints can wrap past the cell cap.
			if ints[0] < 1 || ints[1] < 1 ||
				ints[0] > maxNetlistGridCells || ints[1] > maxNetlistGridCells ||
				ints[0]*ints[1] > maxNetlistGridCells {
				return nil, fail("variation grid %dx%d outside [1,1]..[%d cells]", ints[0], ints[1], maxNetlistGridCells)
			}
			fs := [9]float64{}
			for i := 0; i < 9; i++ {
				v, err := parseFinite(fields[3+i])
				if err != nil {
					return nil, fail("bad variation field: %v", err)
				}
				fs[i] = v
			}
			if fs[0] < 0 || fs[1] < 0 || fs[2] < 0 || fs[8] < 0 {
				return nil, fail("variation sigmas must be non-negative")
			}
			if fs[4] <= 0 {
				return nil, fail("variation correlation decay must be positive")
			}
			cfg = variation.Config{
				GridW: ints[0], GridH: ints[1],
				SigmaL: fs[0], SigmaTox: fs[1], SigmaVth: fs[2],
				CorrGlobal: fs[3], CorrDecay: fs[4],
				SensL: fs[5], SensTox: fs[6], SensVth: fs[7],
				SigmaRand: fs[8],
			}
			haveVar = true
		case "buffer":
			ffid, err1 := strconv.Atoi(fields[1])
			lo, err2 := parseFinite(fields[2])
			hi, err3 := parseFinite(fields[3])
			steps, err4 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fail("bad buffer line")
			}
			if lo > hi {
				return nil, fail("buffer range [%g,%g] inverted", lo, hi)
			}
			if steps < 0 || steps > maxNetlistSteps {
				return nil, fail("buffer steps %d outside [0, %d]", steps, maxNetlistSteps)
			}
			bufFF = append(bufFF, ffid)
			bufDev = append(bufDev, buffers.Device{FF: ffid, Lo: lo, Hi: hi, Steps: steps})
		case "gate":
			id, err1 := strconv.Atoi(fields[1])
			x, err2 := strconv.Atoi(fields[2])
			y, err3 := strconv.Atoi(fields[3])
			nom, err4 := parseFinite(fields[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fail("bad gate line")
			}
			if id != len(c.Gates) {
				return nil, fail("gate ids must be dense and ascending, got %d", id)
			}
			c.Gates = append(c.Gates, Gate{ID: id, CellX: x, CellY: y, Nominal: nom})
		case "path":
			id, err1 := strconv.Atoi(fields[1])
			from, err2 := strconv.Atoi(fields[2])
			to, err3 := strconv.Atoi(fields[3])
			cluster, err4 := strconv.Atoi(fields[4])
			minScale, err5 := parseFinite(fields[5])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
				return nil, fail("bad path line")
			}
			if minScale < 0 {
				return nil, fail("path min-scale %g negative", minScale)
			}
			var gates []int
			for _, s := range strings.Split(fields[6], ",") {
				g, err := strconv.Atoi(s)
				if err != nil {
					return nil, fail("bad gate ref %q", s)
				}
				gates = append(gates, g)
			}
			rawPaths = append(rawPaths, rawPath{id, from, to, cluster, minScale, gates})
		case "exclusive":
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad exclusive line")
			}
			c.Exclusive = append(c.Exclusive, [2]int{a, b})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
done:
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveVar {
		return nil, fmt.Errorf("netlist: missing variation line")
	}
	model, err := variation.New(cfg)
	if err != nil {
		return nil, err
	}
	c.Model = model

	c.Buffered = bufFF
	c.Devices = buffers.Chain{Devices: bufDev}
	c.Buf = skew.Buffers{
		N:        c.NumFF,
		Buffered: make([]bool, c.NumFF),
		Lo:       make([]float64, c.NumFF),
		Hi:       make([]float64, c.NumFF),
	}
	for _, d := range bufDev {
		if d.FF < 0 || d.FF >= c.NumFF {
			return nil, fmt.Errorf("netlist: buffer FF %d out of range", d.FF)
		}
		c.Buf.Buffered[d.FF] = true
		c.Buf.Lo[d.FF] = d.Lo
		c.Buf.Hi[d.FF] = d.Hi
		c.Buf.Steps = d.Steps
	}

	// Rebuild canonical forms from gates.
	for _, rp := range rawPaths {
		if rp.id != len(c.Paths) {
			return nil, fmt.Errorf("netlist: path ids must be dense and ascending, got %d", rp.id)
		}
		var canon ssta.Canon
		for k, gid := range rp.gates {
			if gid < 0 || gid >= len(c.Gates) {
				return nil, fmt.Errorf("netlist: path %d references gate %d", rp.id, gid)
			}
			g := c.Gates[gid]
			gc := model.GateCanon(g.Nominal, g.CellX, g.CellY)
			if k == 0 {
				canon = gc
			} else {
				canon = ssta.Add(canon, gc)
			}
		}
		c.Paths = append(c.Paths, Path{
			ID: rp.id, From: rp.from, To: rp.to, Gates: rp.gates,
			Cluster: rp.cluster, MinScale: rp.minScale,
			Max: ssta.ShiftMean(canon, c.SetupTime),
			Min: ssta.Scale(canon, rp.minScale),
		})
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	return c, nil
}
