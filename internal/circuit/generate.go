package circuit

import (
	"fmt"
	"math"

	"effitest/internal/buffers"
	"effitest/internal/rng"
	"effitest/internal/skew"
	"effitest/internal/ssta"
	"effitest/internal/variation"
)

// GenConfig tunes the benchmark generator. The zero value is not valid; use
// DefaultGenConfig.
type GenConfig struct {
	Variation variation.Config

	// PathNominal is the target nominal path delay in ns; individual paths
	// draw from PathNominal·U[1-PathSpread/2, 1+PathSpread/2].
	PathNominal float64
	PathSpread  float64

	// MaxGatesPerPath caps the statistical gate chain of a path; the actual
	// chain length is also limited by the gate budget (0.8·ng/np).
	MaxGatesPerPath int

	// CrossClusterFrac is the fraction of paths connecting two different
	// buffered clusters.
	CrossClusterFrac float64
	// IntraClusterFrac is the fraction of paths connecting two buffers of
	// the same cluster (the chains of the paper's Figure 5).
	IntraClusterFrac float64
	// BuffersPerCluster groups this many tuning buffers into one physical
	// cluster (Figure 5 shows clusters containing several buffered FFs).
	BuffersPerCluster int

	// ClusterJitter is the cell radius over which a cluster's gates spread;
	// ClusterTightness is the probability that a gate lands exactly on the
	// anchor cell (physical proximity drives the §3.1 correlations).
	ClusterJitter    int
	ClusterTightness float64

	// MinScaleLo/Hi bound the uniform draw of the short-path (min-delay)
	// scale factor relative to the max delay.
	MinScaleLo, MinScaleHi float64

	// ExclusiveFrac controls how many ATPG logic-masking pairs are emitted:
	// ExclusiveFrac·np pairs.
	ExclusiveFrac float64

	// SetupTime and HoldTime are folded into path bounds (ns).
	SetupTime, HoldTime float64

	// BufferRangeDiv sets the buffer range: τ = TNominal / BufferRangeDiv
	// (the paper uses 8); BufferSteps is the lattice resolution (paper: 20).
	BufferRangeDiv float64
	BufferSteps    int
}

// DefaultGenConfig returns the paper-calibrated generator configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Variation:         variation.DefaultConfig(),
		PathNominal:       1.0,
		PathSpread:        0.18,
		MaxGatesPerPath:   10,
		CrossClusterFrac:  0.05,
		IntraClusterFrac:  0.10,
		BuffersPerCluster: 3,
		ClusterJitter:     1,
		ClusterTightness:  1.0,
		MinScaleLo:        0.30,
		MinScaleHi:        0.45,
		ExclusiveFrac:     0.02,
		SetupTime:         0.02,
		HoldTime:          0.02,
		BufferRangeDiv:    8,
		BufferSteps:       20,
	}
}

// Generate builds a deterministic benchmark circuit for the profile and
// seed using the default generator configuration.
func Generate(p Profile, seed int64) (*Circuit, error) {
	return GenerateWith(p, seed, DefaultGenConfig())
}

// GenerateWith builds a deterministic benchmark circuit.
//
// Structure: each tuning buffer anchors a physical cluster (a cell on the
// variation grid). Paths attach to their cluster's buffered FF — converging
// (sink buffered), leaving (source buffered), or crossing to another
// cluster's buffer — with chain lengths set by the profile's gate budget.
// Gates of a cluster land within ClusterJitter cells of the anchor, giving
// the high intra-cluster delay correlation the paper's §3.1 relies on.
// Remaining gates become non-critical filler so ng matches the profile.
func GenerateWith(p Profile, seed int64, cfg GenConfig) (*Circuit, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	model, err := variation.New(cfg.Variation)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed, "circuit", p.Name)

	nb, ns, np, ng := p.NumBuffers, p.NumFF, p.NumPaths, p.NumGates

	// Buffered FFs: spread through the id space for realism.
	buffered := make([]int, nb)
	for i := range buffered {
		buffered[i] = i * (ns / nb)
	}
	isBuf := make([]bool, ns)
	for _, b := range buffered {
		isBuf[b] = true
	}

	// Group buffers into physical clusters (Figure 5: a cluster hosts
	// several buffered FFs whose paths chain through each other).
	bpc := cfg.BuffersPerCluster
	if bpc < 1 {
		bpc = 1
	}
	nc := (nb + bpc - 1) / bpc
	clusterBufs := make([][]int, nc)
	for i, b := range buffered {
		clusterBufs[i%nc] = append(clusterBufs[i%nc], b)
	}

	// Cluster anchors on the variation grid, spaced on a coarse lattice so
	// different clusters decorrelate. Each cluster is a pipeline: its
	// buffers sit at the boundaries of a chain of adjacent grid regions
	// (R_0 → b_0 → R_1 → b_1 → ...), so the logic feeding a buffer and the
	// logic it launches into see *different* regional variation — the
	// imbalance post-silicon tuning exists to fix.
	gw, gh := cfg.Variation.GridW, cfg.Variation.GridH
	side := int(math.Ceil(math.Sqrt(float64(nc))))
	regionX := make([][]int, nc) // per cluster: bpc+1 region cells
	regionY := make([][]int, nc)
	for c := 0; c < nc; c++ {
		ax := clampInt((c%side)*gw/side+r.Intn(2), 0, gw-1)
		ay := clampInt((c/side)*gh/side+r.Intn(2), 0, gh-1)
		nRegions := len(clusterBufs[c]) + 1
		regionX[c] = make([]int, nRegions)
		regionY[c] = make([]int, nRegions)
		for j := 0; j < nRegions; j++ {
			// Walk right, wrapping down a row at the grid edge.
			x := ax + j
			y := ay
			for x >= gw {
				x -= gw
				y = clampInt(y+1, 0, gh-1)
			}
			regionX[c][j] = x
			regionY[c][j] = y
		}
	}

	// Unbuffered FF pools per cluster (round-robin partition).
	pools := make([][]int, nc)
	ci := 0
	for ff := 0; ff < ns; ff++ {
		if isBuf[ff] {
			continue
		}
		pools[ci%nc] = append(pools[ci%nc], ff)
		ci++
	}
	poolNext := make([]int, nc)
	nextEndpoint := func(c int) int {
		pool := pools[c]
		if len(pool) == 0 {
			// Degenerate: no unbuffered FF in the pool; fall back to any
			// other FF.
			return (clusterBufs[c][0] + 1) % ns
		}
		ff := pool[poolNext[c]%len(pool)]
		poolNext[c]++
		return ff
	}
	// Gate chain length budget: keep ~10% of gates as filler. Longer chains
	// average out per-gate randomness, which is what gives physically
	// clustered paths their high mutual correlation.
	chainLen := int(math.Floor(0.9 * float64(ng) / float64(np)))
	if chainLen < 2 {
		chainLen = 2
	}
	if chainLen > cfg.MaxGatesPerPath {
		chainLen = cfg.MaxGatesPerPath
	}

	c := &Circuit{
		Name:      p.Name,
		NumFF:     ns,
		Buffered:  buffered,
		SetupTime: cfg.SetupTime,
		HoldTime:  cfg.HoldTime,
		Model:     model,
	}

	gateBudget := ng
	// newGate places a gate in the given region cell, with optional jitter.
	newGate := func(cellX, cellY int, nominal float64) int {
		id := len(c.Gates)
		x, y := cellX, cellY
		if r.Float64() >= cfg.ClusterTightness {
			x = clampInt(x+r.Intn(2*cfg.ClusterJitter+1)-cfg.ClusterJitter, 0, gw-1)
			y = clampInt(y+r.Intn(2*cfg.ClusterJitter+1)-cfg.ClusterJitter, 0, gh-1)
		}
		c.Gates = append(c.Gates, Gate{ID: id, CellX: x, CellY: y, Nominal: nominal})
		gateBudget--
		return id
	}

	zeroBasis := make([]float64, model.BasisSize())
	for i := 0; i < np; i++ {
		cluster := i % nc
		bs := clusterBufs[cluster]
		// Path kind: converge / leave / intra-cluster buffer chain /
		// cross-cluster. Each path's gates live in the region(s) its
		// endpoints border.
		var from, to int
		// regions lists (cluster, regionIndex) pairs the gate chain spans.
		type regRef struct{ c, j int }
		var regions []regRef
		kind := r.Float64()
		switch {
		case nc > 1 && kind < cfg.CrossClusterFrac:
			// Cross paths connect adjacent clusters only: physically a
			// cluster talks to its neighbours, and this keeps the number of
			// distinct weakly-correlated path families linear in the number
			// of clusters.
			other := (cluster + 1) % nc
			from = bs[len(bs)-1]
			to = clusterBufs[other][0]
			regions = []regRef{{cluster, len(bs)}, {other, 0}}
		case len(bs) > 1 && kind < cfg.CrossClusterFrac+cfg.IntraClusterFrac:
			// Directed chain segment b_a -> b_{a+1}: acyclic like the
			// paper's 1→4→6→7, so tuning can tilt skew along the chain
			// without closing a tight timing loop. Its logic sits in the
			// region between the two buffers.
			a := r.Intn(len(bs) - 1)
			from, to = bs[a], bs[a+1]
			regions = []regRef{{cluster, a + 1}}
		case i%2 == 0:
			// Converging path: upstream logic feeds buffer b_j from the
			// region before it.
			j := r.Intn(len(bs))
			from, to = nextEndpoint(cluster), bs[j]
			regions = []regRef{{cluster, j}}
		default:
			// Leaving path: buffer b_j launches into the region after it.
			j := r.Intn(len(bs))
			from, to = bs[j], nextEndpoint(cluster)
			regions = []regRef{{cluster, j + 1}}
		}
		if from == to { // collision safeguard
			to = nextEndpoint(cluster)
			if from == to {
				to = (from + 1) % ns
			}
		}
		cellFor := func(k, L int) (int, int) {
			// Spread the chain over its regions: first half in the first
			// region, second half in the last (single-region paths are
			// unaffected).
			rr := regions[0]
			if len(regions) > 1 && k >= L/2 {
				rr = regions[1]
			}
			return regionX[rr.c][rr.j], regionY[rr.c][rr.j]
		}

		L := chainLen
		if L > 2 && r.Float64() < 0.5 {
			L += r.Intn(3) - 1
		}
		// Never exceed the remaining budget (reserve 1 gate per remaining
		// path).
		remainingPaths := np - i - 1
		if maxL := gateBudget - 2*remainingPaths; L > maxL {
			L = maxL
		}
		if L < 2 {
			L = 2
		}

		target := cfg.PathNominal * (1 - cfg.PathSpread/2 + cfg.PathSpread*r.Float64())
		// Split target across L gates with jitter, then renormalize.
		weights := make([]float64, L)
		sum := 0.0
		for k := range weights {
			weights[k] = 0.8 + 0.4*r.Float64()
			sum += weights[k]
		}
		gates := make([]int, L)
		canon := ssta.Canon{Mean: 0, Coef: zeroBasis, Rand: 0}
		first := true
		for k := 0; k < L; k++ {
			nom := target * weights[k] / sum
			cx, cy := cellFor(k, L)
			id := newGate(cx, cy, nom)
			g := c.Gates[id]
			gc := model.GateCanon(g.Nominal, g.CellX, g.CellY)
			if first {
				canon = gc
				first = false
			} else {
				canon = ssta.Add(canon, gc)
			}
			gates[k] = id
		}
		minScale := cfg.MinScaleLo + (cfg.MinScaleHi-cfg.MinScaleLo)*r.Float64()
		path := Path{
			ID:       i,
			From:     from,
			To:       to,
			Gates:    gates,
			Cluster:  cluster,
			MinScale: minScale,
			Max:      ssta.ShiftMean(canon, cfg.SetupTime),
			Min:      ssta.Scale(canon, minScale),
		}
		c.Paths = append(c.Paths, path)
	}

	// Filler gates: non-critical logic so ng matches the profile, scattered
	// across the whole die.
	for gateBudget > 0 {
		newGate(r.Intn(gw), r.Intn(gh), 0.05+0.1*r.Float64())
	}

	// Nominal period from the statistical critical delay (Clark max mean).
	c.TNominal = ssta.MaxAll(c.MaxCanons()).Mean

	tau := c.TNominal / cfg.BufferRangeDiv
	c.Buf = skew.Uniform(ns, buffered, -tau/2, tau/2, cfg.BufferSteps)
	devs := make([]buffers.Device, nb)
	for i, b := range buffered {
		devs[i] = buffers.Device{FF: b, Lo: -tau / 2, Hi: tau / 2, Steps: cfg.BufferSteps}
	}
	c.Devices = buffers.Chain{Devices: devs}

	// ATPG logic-masking exclusions among otherwise batchable pairs.
	nExcl := int(cfg.ExclusiveFrac * float64(np))
	for k := 0; k < nExcl; k++ {
		a, b := r.Intn(np), r.Intn(np)
		if a == b {
			continue
		}
		pa, pb := c.Paths[a], c.Paths[b]
		if pa.From == pb.From || pa.To == pb.To {
			continue // already conflicting structurally
		}
		c.Exclusive = append(c.Exclusive, [2]int{a, b})
	}

	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("circuit: generated circuit invalid: %w", err)
	}
	return c, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
