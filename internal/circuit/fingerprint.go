package circuit

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of the circuit: the SHA-256 of
// its canonical netlist serialization, which covers everything the flow
// consumes (paths with canonical delay forms, buffer lattices, exclusive
// pairs, the variation model and the timing constants). Two circuits with
// the same fingerprint are interchangeable inputs to Prepare, so the hash
// keys plan artifacts and the on-disk plan cache.
func Fingerprint(c *Circuit) (string, error) {
	h := sha256.New()
	if err := WriteNetlist(h, c); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
