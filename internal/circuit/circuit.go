// Package circuit models the timing view EffiTest consumes: flip-flops,
// logic gates placed on the variation grid, combinational timing paths with
// statistical max/min delays in canonical form, and post-silicon tunable
// buffer placement. It also provides a seeded benchmark generator that
// reproduces the published per-circuit statistics of the paper's Table 1
// (flip-flop/gate/buffer/path counts for the ISCAS89 and TAU13 circuits) —
// see DESIGN.md for why this substitution preserves the algorithms' inputs.
package circuit

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"effitest/internal/buffers"
	"effitest/internal/skew"
	"effitest/internal/ssta"
	"effitest/internal/variation"
)

// Gate is one logic gate: a nominal delay at a grid location.
type Gate struct {
	ID           int
	CellX, CellY int
	Nominal      float64 // ns
}

// Path is a combinational timing path between two flip-flops. Max is the
// canonical max-delay D̄ij with the sink setup time folded in (the paper's
// Dij); Min is the canonical min-delay d_ij used for hold analysis. MinScale
// records the generator's short-path scale factor so netlists round-trip.
type Path struct {
	ID       int
	From, To int
	Gates    []int
	Cluster  int
	MinScale float64
	Max      ssta.Canon
	Min      ssta.Canon
}

// Circuit is a complete benchmark instance.
type Circuit struct {
	Name     string
	NumFF    int
	Gates    []Gate
	Paths    []Path
	Buffered []int // flip-flop ids carrying tuning buffers, ascending

	// Buf describes the buffer value space (ranges + lattice); Devices is
	// the scan-chain device view of the same buffers.
	Buf     skew.Buffers
	Devices buffers.Chain

	// Exclusive lists path-id pairs that ATPG cannot sensitize together
	// (logic masking); they must not share a test batch.
	Exclusive [][2]int

	// TNominal is the nominal (pre-tuning) critical-path delay estimate used
	// to size buffer ranges (τ = TNominal/8 per the paper's setup).
	TNominal float64
	// SetupTime and HoldTime are the uniform FF setup/hold times folded into
	// the path delay bounds.
	SetupTime, HoldTime float64

	// Model is the process-variation model whose factor basis all canonical
	// forms share.
	Model *variation.Model

	covCache *covCacheT
}

type covCacheT struct {
	cov  [][]float64
	corr [][]float64
}

// NumPaths returns the number of timing paths.
func (c *Circuit) NumPaths() int { return len(c.Paths) }

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumBuffers returns the number of tunable buffers.
func (c *Circuit) NumBuffers() int { return len(c.Buffered) }

// MaxCanons returns the max-delay canonical forms of all paths, in path
// order (shared backing with the circuit; callers must not modify).
func (c *Circuit) MaxCanons() []ssta.Canon {
	out := make([]ssta.Canon, len(c.Paths))
	for i := range c.Paths {
		out[i] = c.Paths[i].Max
	}
	return out
}

// Means returns the mean max delay per path.
func (c *Circuit) Means() []float64 {
	out := make([]float64, len(c.Paths))
	for i := range c.Paths {
		out[i] = c.Paths[i].Max.Mean
	}
	return out
}

// Cov returns the covariance of two paths' max delays (including private
// variance on the diagonal).
func (c *Circuit) Cov(i, j int) float64 {
	v := ssta.Cov(c.Paths[i].Max, c.Paths[j].Max)
	if i == j {
		v += c.Paths[i].Max.Rand * c.Paths[i].Max.Rand
	}
	return v
}

// CovMatrix returns the full path-delay covariance matrix as row slices,
// computed once and cached.
func (c *Circuit) CovMatrix() [][]float64 {
	c.ensureCov()
	return c.covCache.cov
}

// CorrMatrix returns the full path-delay correlation matrix, cached.
func (c *Circuit) CorrMatrix() [][]float64 {
	c.ensureCov()
	return c.covCache.corr
}

// covMu serializes lazy covariance-cache construction so that concurrent
// chip runs (which hit CovMatrix through conditional prediction) are
// race-free. The matrix is computed once per circuit — normally during
// Prepare — so contention is a non-issue.
var covMu sync.Mutex

func (c *Circuit) ensureCov() {
	covMu.Lock()
	defer covMu.Unlock()
	if c.covCache != nil {
		return
	}
	n := len(c.Paths)
	cov := make([][]float64, n)
	for i := range cov {
		cov[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := c.Cov(i, j)
			cov[i][j] = v
			cov[j][i] = v
		}
	}
	corr := make([][]float64, n)
	sd := make([]float64, n)
	for i := 0; i < n; i++ {
		sd[i] = math.Sqrt(cov[i][i])
		corr[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				corr[i][j] = 1
			} else if sd[i] > 0 && sd[j] > 0 {
				corr[i][j] = cov[i][j] / (sd[i] * sd[j])
			}
		}
	}
	c.covCache = &covCacheT{cov: cov, corr: corr}
}

// IsBuffered reports whether flip-flop ff carries a tuning buffer.
func (c *Circuit) IsBuffered(ff int) bool {
	return ff >= 0 && ff < c.NumFF && c.Buf.Buffered[ff]
}

// HoldBoundMean returns the mean of the paper's d_ij = h_j - d_ij(min) for
// path p: the statistical quantity sampled when computing hold-time tuning
// bounds λ.
func (c *Circuit) HoldBoundMean(p int) float64 {
	return c.HoldTime - c.Paths[p].Min.Mean
}

// WithInflatedSigma returns a copy of the circuit in which every path's
// max-delay standard deviation is inflated by the given factor without
// changing any path-to-path covariance — the paper's Figure 7 experiment
// ("we manually increased the standard deviations of all delays by 10%.
// Since we did not change the covariance matrix ... this change led to a
// large increase in the purely random parts"). Only the private Rand terms
// grow.
func (c *Circuit) WithInflatedSigma(factor float64) (*Circuit, error) {
	if factor < 1 {
		return nil, errors.New("circuit: inflation factor must be >= 1")
	}
	out := *c
	out.covCache = nil
	out.Paths = make([]Path, len(c.Paths))
	copy(out.Paths, c.Paths)
	for i := range out.Paths {
		p := &out.Paths[i]
		v := p.Max.Var()
		target := factor * factor * v
		corrPart := v - p.Max.Rand*p.Max.Rand
		newRand := math.Sqrt(target - corrPart)
		mx := p.Max
		p.Max = ssta.Canon{Mean: mx.Mean, Coef: mx.Coef, Rand: newRand}
	}
	return &out, nil
}

// Validate checks structural invariants; generators and parsers run it
// before returning a circuit.
func (c *Circuit) Validate() error {
	if c.NumFF <= 0 {
		return errors.New("circuit: no flip-flops")
	}
	if len(c.Buf.Buffered) != c.NumFF {
		return fmt.Errorf("circuit: buffer mask length %d != %d FFs", len(c.Buf.Buffered), c.NumFF)
	}
	seen := make(map[int]bool, len(c.Buffered))
	for _, b := range c.Buffered {
		if b < 0 || b >= c.NumFF {
			return fmt.Errorf("circuit: buffered FF %d out of range", b)
		}
		if seen[b] {
			return fmt.Errorf("circuit: duplicate buffer at FF %d", b)
		}
		seen[b] = true
		if !c.Buf.Buffered[b] {
			return fmt.Errorf("circuit: FF %d listed buffered but mask disagrees", b)
		}
	}
	for i, g := range c.Gates {
		if g.ID != i {
			return fmt.Errorf("circuit: gate %d has id %d", i, g.ID)
		}
		if g.Nominal <= 0 {
			return fmt.Errorf("circuit: gate %d has non-positive delay", i)
		}
	}
	basis := 0
	if c.Model != nil {
		basis = c.Model.BasisSize()
	}
	for i, p := range c.Paths {
		if p.ID != i {
			return fmt.Errorf("circuit: path %d has id %d", i, p.ID)
		}
		if p.From == p.To {
			return fmt.Errorf("circuit: path %d is a self-loop at FF %d", i, p.From)
		}
		if p.From < 0 || p.From >= c.NumFF || p.To < 0 || p.To >= c.NumFF {
			return fmt.Errorf("circuit: path %d endpoints out of range", i)
		}
		if !c.IsBuffered(p.From) && !c.IsBuffered(p.To) {
			return fmt.Errorf("circuit: path %d touches no buffer; its delay is not required", i)
		}
		for _, g := range p.Gates {
			if g < 0 || g >= len(c.Gates) {
				return fmt.Errorf("circuit: path %d references gate %d", i, g)
			}
		}
		if basis > 0 && len(p.Max.Coef) != basis {
			return fmt.Errorf("circuit: path %d canonical basis %d != model %d", i, len(p.Max.Coef), basis)
		}
		if p.Max.Mean <= 0 {
			return fmt.Errorf("circuit: path %d has non-positive mean delay", i)
		}
		if p.Min.Mean > p.Max.Mean {
			return fmt.Errorf("circuit: path %d min delay exceeds max", i)
		}
	}
	for _, e := range c.Exclusive {
		if e[0] < 0 || e[0] >= len(c.Paths) || e[1] < 0 || e[1] >= len(c.Paths) || e[0] == e[1] {
			return fmt.Errorf("circuit: bad exclusive pair %v", e)
		}
	}
	if c.TNominal <= 0 {
		return errors.New("circuit: non-positive nominal period")
	}
	return nil
}
