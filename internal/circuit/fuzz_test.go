package circuit

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// validNetlistSeed serializes a small generated circuit, giving the fuzzer
// a structurally valid starting point to mutate.
func validNetlistSeed(tb testing.TB) []byte {
	tb.Helper()
	c, err := Generate(TinyProfile("fuzzseed", 12, 120, 2, 14), 1)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, c); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParseNetlist feeds arbitrary bytes to the netlist parser. The parser
// must never panic, hang or allocate unboundedly; whenever it accepts an
// input, the resulting circuit must be internally valid and must survive a
// write→parse round trip unchanged (the format's documented contract).
func FuzzParseNetlist(f *testing.F) {
	f.Add(validNetlistSeed(f))
	f.Add([]byte(""))
	f.Add([]byte("effitest-netlist v1\nend\n"))
	f.Add([]byte("effitest-netlist v1\nffs\n"))         // truncated directive
	f.Add([]byte("effitest-netlist v1\nffs -5\nend\n")) // negative count
	f.Add([]byte("effitest-netlist v1\nffs 99999999999999999999\nend\n"))
	f.Add([]byte("effitest-netlist v1\ncircuit x\nffs 4\nsetup NaN\nend\n"))
	f.Add([]byte("effitest-netlist v1\nvariation 9000000 9000000 .1 .1 .1 .2 1 .5 .4 .7 .03\nend\n"))
	f.Add([]byte("effitest-netlist v1\nbuffer 0 0.5 -0.5 8\nend\n"))
	f.Add([]byte("# comment\n\neffitest-netlist v1\ngate 0 1 2\nend\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseNetlist(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid circuit: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, c); err != nil {
			t.Fatalf("accepted circuit does not serialize: %v", err)
		}
		c2, err := ParseNetlist(&buf)
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, truncate(buf.String(), 2000))
		}
		requireEqualCircuits(t, c, c2)
	})
}

// FuzzNetlistRoundTrip drives the generator across its parameter space and
// asserts the full-fidelity contract WriteNetlist→ParseNetlist: identical
// structure and bit-identical canonical delay statistics.
func FuzzNetlistRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(2), uint8(14))
	f.Add(int64(7), uint8(40), uint8(5), uint8(48))
	f.Add(int64(42), uint8(3), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, ffs, bufs, paths uint8) {
		// Clamp to profiles the generator documents as valid; the point
		// here is round-trip fidelity, not generator input validation.
		nf := 2 + int(ffs)%200
		nb := 1 + int(bufs)%(nf-1)
		np := 1 + int(paths)
		p := TinyProfile("rt", nf, 10*np+2*nf, nb, np)
		c, err := Generate(p, seed)
		if err != nil {
			t.Skipf("generator rejected profile %+v: %v", p, err)
		}
		var buf bytes.Buffer
		if err := WriteNetlist(&buf, c); err != nil {
			t.Fatal(err)
		}
		c2, err := ParseNetlist(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		requireEqualCircuits(t, c, c2)
	})
}

// requireEqualCircuits asserts structural identity plus bit-identical
// per-path delay statistics (mean and sigma of both canonical forms).
func requireEqualCircuits(t *testing.T, a, b *Circuit) {
	t.Helper()
	if a.Name != b.Name || a.NumFF != b.NumFF || len(a.Gates) != len(b.Gates) ||
		len(a.Paths) != len(b.Paths) || len(a.Buffered) != len(b.Buffered) ||
		len(a.Exclusive) != len(b.Exclusive) {
		t.Fatalf("round trip changed structure: %s/%d/%d/%d vs %s/%d/%d/%d",
			a.Name, a.NumFF, len(a.Gates), len(a.Paths),
			b.Name, b.NumFF, len(b.Gates), len(b.Paths))
	}
	if a.SetupTime != b.SetupTime || a.HoldTime != b.HoldTime || a.TNominal != b.TNominal {
		t.Fatal("round trip changed timing constants")
	}
	for i := range a.Paths {
		pa, pb := &a.Paths[i], &b.Paths[i]
		if pa.From != pb.From || pa.To != pb.To || pa.Cluster != pb.Cluster {
			t.Fatalf("path %d endpoints changed", i)
		}
		if pa.Max.Mean != pb.Max.Mean || pa.Min.Mean != pb.Min.Mean {
			t.Fatalf("path %d canonical means changed: %v/%v vs %v/%v",
				i, pa.Max.Mean, pa.Min.Mean, pb.Max.Mean, pb.Min.Mean)
		}
		if sa, sb := pa.Max.Sigma(), pb.Max.Sigma(); sa != sb && !(math.IsNaN(sa) && math.IsNaN(sb)) {
			t.Fatalf("path %d sigma changed: %v vs %v", i, sa, sb)
		}
	}
	for i := range a.Buffered {
		fa := a.Buffered[i]
		if fa != b.Buffered[i] {
			t.Fatalf("buffer placement changed at %d", i)
		}
		if a.Buf.Lo[fa] != b.Buf.Lo[fa] || a.Buf.Hi[fa] != b.Buf.Hi[fa] {
			t.Fatalf("buffer range changed at FF %d", fa)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// TestParseNetlistRejectsHostileInputs pins the parser hardening the
// fuzzer drove: every one of these previously panicked (index out of
// range, negative make) or allocated unboundedly.
func TestParseNetlistRejectsHostileInputs(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"truncated-ffs", "effitest-netlist v1\nffs\n"},
		{"truncated-setup", "effitest-netlist v1\nsetup\n"},
		{"truncated-circuit", "effitest-netlist v1\ncircuit\n"},
		{"negative-ffs", "effitest-netlist v1\nffs -5\nend\n"},
		{"huge-ffs", "effitest-netlist v1\nffs 10000000000\nend\n"},
		{"huge-grid", "effitest-netlist v1\nffs 4\nvariation 100000 100000 .1 .1 .1 .25 1.2 .5 .4 .7 .03\nend\n"},
		{"overflow-grid", "effitest-netlist v1\nffs 4\nvariation 4294967296 4294967296 .1 .1 .1 .25 1.2 .5 .4 .7 .03\ngate 0 0 0 0.1\nend\n"},
		{"nan-setup", "effitest-netlist v1\nffs 4\nsetup NaN\nend\n"},
		{"inf-tnominal", "effitest-netlist v1\nffs 4\ntnominal +Inf\nend\n"},
		{"nan-variation", "effitest-netlist v1\nffs 4\nvariation 4 4 NaN .1 .1 .25 1.2 .5 .4 .7 .03\nend\n"},
		{"zero-decay", "effitest-netlist v1\nffs 4\nvariation 4 4 .1 .1 .1 .25 0 .5 .4 .7 .03\nend\n"},
		{"inverted-buffer", "effitest-netlist v1\nffs 4\nbuffer 0 0.5 -0.5 8\nend\n"},
		{"negative-steps", "effitest-netlist v1\nffs 4\nbuffer 0 -0.5 0.5 -8\nend\n"},
		{"nan-gate", "effitest-netlist v1\nffs 4\ngate 0 0 0 NaN\nend\n"},
		{"negative-minscale", "effitest-netlist v1\nffs 4\ngate 0 0 0 0.1\npath 0 0 1 0 -1 0\nend\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := ParseNetlist(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("parser accepted hostile input, circuit = %+v", c)
			}
		})
	}
}
