package circuit

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT emits the timing graph in Graphviz DOT form: flip-flops as nodes
// (buffered ones double-circled and labeled with their tuning range), paths
// as edges labeled with the nominal max delay. Clusters group by the
// generator's cluster id. Intended for inspection of small circuits;
// rendering a 3000-path graph is Graphviz's problem, not ours.
func WriteDOT(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", c.Name)
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=circle, fontsize=10];")

	// Only emit FFs that appear on some path (benchmarks have many idle
	// FFs).
	used := map[int]bool{}
	for i := range c.Paths {
		used[c.Paths[i].From] = true
		used[c.Paths[i].To] = true
	}
	for ff := 0; ff < c.NumFF; ff++ {
		if !used[ff] {
			continue
		}
		if c.IsBuffered(ff) {
			fmt.Fprintf(bw, "  ff%d [shape=doublecircle, label=\"FF%d\\n[%.3f,%.3f]\"];\n",
				ff, ff, c.Buf.Lo[ff], c.Buf.Hi[ff])
		} else {
			fmt.Fprintf(bw, "  ff%d [label=\"FF%d\"];\n", ff, ff)
		}
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		fmt.Fprintf(bw, "  ff%d -> ff%d [label=\"p%d: %.3f\", fontsize=8];\n",
			p.From, p.To, p.ID, p.Max.Mean)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
