package variation

import (
	"errors"
	"math"

	"effitest/internal/ssta"
)

// Kind selects the spatial-correlation model.
type Kind int

const (
	// KindGrid is the exponential-decay grid model (the default; see the
	// package comment).
	KindGrid Kind = iota
	// KindQuadTree is the Chang–Sapatnekar hierarchical model (the paper's
	// SSTA reference [17]): the chip is recursively quartered; each level
	// contributes an independent variable per cell, and a gate's parameter
	// is the sum over levels of its covering cells' variables. Correlation
	// between two gates equals the variance share of the levels whose cells
	// they share — naturally decreasing with distance, with the root level
	// as the global floor.
	KindQuadTree
)

// QuadTreeConfig parameterizes KindQuadTree.
type QuadTreeConfig struct {
	Levels int // ≥ 1; level l has 4^l cells
	// LevelWeight[l] is the variance fraction of level l; if empty, the
	// root takes CorrGlobal of the variance and the remaining levels split
	// the rest evenly.
	LevelWeights []float64
}

// quadTree holds the precomputed per-level layout for a quad-tree model.
type quadTree struct {
	levels  int
	weights []float64 // variance fraction per level, sums to 1
	offsets []int     // factor offset of each level within one parameter block
	cells   int       // total cells over all levels (per parameter)
}

// newQuadTree validates and builds the level tables.
func newQuadTree(cfg Config) (*quadTree, error) {
	q := cfg.QuadTree
	if q.Levels < 1 {
		return nil, errors.New("variation: quad-tree needs at least 1 level")
	}
	weights := q.LevelWeights
	if len(weights) == 0 {
		weights = make([]float64, q.Levels)
		if q.Levels == 1 {
			weights[0] = 1
		} else {
			weights[0] = cfg.CorrGlobal
			rest := (1 - cfg.CorrGlobal) / float64(q.Levels-1)
			for l := 1; l < q.Levels; l++ {
				weights[l] = rest
			}
		}
	}
	if len(weights) != q.Levels {
		return nil, errors.New("variation: quad-tree weight count must match levels")
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("variation: negative quad-tree level weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, errors.New("variation: quad-tree level weights must sum to 1")
	}
	qt := &quadTree{levels: q.Levels, weights: weights}
	qt.offsets = make([]int, q.Levels)
	at := 0
	for l := 0; l < q.Levels; l++ {
		qt.offsets[l] = at
		at += 1 << (2 * l) // 4^l cells
	}
	qt.cells = at
	return qt, nil
}

// cellAt returns the level-l cell index covering normalized coordinates
// (u, v) in [0, 1).
func (qt *quadTree) cellAt(l int, u, v float64) int {
	side := 1 << l
	x := int(u * float64(side))
	y := int(v * float64(side))
	if x >= side {
		x = side - 1
	}
	if y >= side {
		y = side - 1
	}
	return y*side + x
}

// gateCanonQuad builds the canonical form of a gate under the quad-tree
// model. Grid coordinates are normalized by the configured grid size so the
// same placement code works for both models.
func (m *Model) gateCanonQuad(d0 float64, x, y int) ssta.Canon {
	u := (float64(x) + 0.5) / float64(m.Cfg.GridW)
	v := (float64(y) + 0.5) / float64(m.Cfg.GridH)
	coef := make([]float64, m.BasisSize())
	perParam := m.qt.cells
	for p := Param(0); p < numParams; p++ {
		scale := d0 * m.paramSens(p) * m.paramSigma(p)
		base := int(p) * perParam
		for l := 0; l < m.qt.levels; l++ {
			w := math.Sqrt(m.qt.weights[l])
			cell := m.qt.cellAt(l, u, v)
			coef[base+m.qt.offsets[l]+cell] = scale * w
		}
	}
	return ssta.Canon{Mean: d0, Coef: coef, Rand: d0 * m.Cfg.SigmaRand}
}

// QuadCellCorr returns the modeled correlation between two normalized
// positions under the quad-tree model: the summed weight of levels whose
// cells cover both points.
func (m *Model) QuadCellCorr(u1, v1, u2, v2 float64) float64 {
	if m.qt == nil {
		return math.NaN()
	}
	corr := 0.0
	for l := 0; l < m.qt.levels; l++ {
		if m.qt.cellAt(l, u1, v1) == m.qt.cellAt(l, u2, v2) {
			corr += m.qt.weights[l]
		}
	}
	return corr
}
