package variation

import (
	"math"
	"testing"

	"effitest/internal/ssta"
)

func quadConfig(levels int) Config {
	cfg := DefaultConfig()
	cfg.Kind = KindQuadTree
	cfg.QuadTree = QuadTreeConfig{Levels: levels}
	return cfg
}

func TestQuadTreeBasisSize(t *testing.T) {
	m, err := New(quadConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 4 + 16 = 21 cells per parameter, 3 parameters.
	if m.BasisSize() != 21*3 {
		t.Fatalf("basis = %d, want 63", m.BasisSize())
	}
}

func TestQuadTreeValidation(t *testing.T) {
	cfg := quadConfig(0)
	if _, err := New(cfg); err == nil {
		t.Fatal("zero levels should fail")
	}
	cfg = quadConfig(2)
	cfg.QuadTree.LevelWeights = []float64{0.5, 0.4} // sums to 0.9
	if _, err := New(cfg); err == nil {
		t.Fatal("non-normalized weights should fail")
	}
	cfg.QuadTree.LevelWeights = []float64{1.5, -0.5}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative weight should fail")
	}
	cfg.QuadTree.LevelWeights = []float64{1}
	if _, err := New(cfg); err == nil {
		t.Fatal("weight count mismatch should fail")
	}
}

func TestQuadTreeSameCellFullCorrelation(t *testing.T) {
	m, err := New(quadConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	a := m.GateCanon(100, 1, 1)
	b := m.GateCanon(100, 1, 1)
	// Same position: correlated parts identical.
	if d := ssta.Cov(a, b) - corrVar(a); math.Abs(d) > 1e-9 {
		t.Fatalf("same-cell covariance off by %v", d)
	}
}

func TestQuadTreeCorrelationDecreasesWithDistance(t *testing.T) {
	m, err := New(quadConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ref := m.GateCanon(100, 0, 0)
	prev := 2.0
	// Moving right across the grid, correlation must be non-increasing at
	// quad-tree boundaries and reach the root share far away.
	for _, x := range []int{0, 1, 3, 7} {
		g := m.GateCanon(100, x, 0)
		corr := ssta.Cov(ref, g) / math.Sqrt(corrVar(ref)*corrVar(g))
		if corr > prev+1e-9 {
			t.Fatalf("correlation increased with distance at x=%d: %v > %v", x, corr, prev)
		}
		prev = corr
	}
	// Opposite corners share only the root level.
	far := m.GateCanon(100, 7, 7)
	corr := ssta.Cov(ref, far) / math.Sqrt(corrVar(ref)*corrVar(far))
	want := m.QuadCellCorr(0.03, 0.03, 0.97, 0.97)
	if math.Abs(corr-want) > 1e-9 {
		t.Fatalf("far corner corr %v, model %v", corr, want)
	}
	if want > 0.3 {
		t.Fatalf("opposite corners should only share the root level, corr %v", want)
	}
}

func TestQuadCellCorrMatchesCanon(t *testing.T) {
	m, err := New(quadConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	g1 := m.GateCanon(1, 2, 5)
	g2 := m.GateCanon(1, 3, 5)
	u1, v1 := (2.0+0.5)/8, (5.0+0.5)/8
	u2, v2 := (3.0+0.5)/8, (5.0+0.5)/8
	want := m.QuadCellCorr(u1, v1, u2, v2)
	got := ssta.Cov(g1, g2) / math.Sqrt(corrVar(g1)*corrVar(g2))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("canon corr %v vs model %v", got, want)
	}
}

func TestQuadTreeGateSigmaMatchesGridModel(t *testing.T) {
	// Total per-gate sigma must be the same for both spatial models (the
	// parameter sigmas are the physics; the spatial model only distributes
	// correlation).
	grid, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	quad, err := New(quadConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	g1 := grid.GateCanon(100, 4, 4)
	g2 := quad.GateCanon(100, 4, 4)
	if d := math.Abs(g1.Sigma() - g2.Sigma()); d > 1e-9 {
		t.Fatalf("gate sigma differs between models by %v", d)
	}
}

func TestQuadTreeSingleLevelIsGlobal(t *testing.T) {
	m, err := New(quadConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.GateCanon(1, 0, 0)
	b := m.GateCanon(1, 7, 7)
	corr := ssta.Cov(a, b) / math.Sqrt(corrVar(a)*corrVar(b))
	if math.Abs(corr-1) > 1e-9 {
		t.Fatalf("single-level model must be fully correlated, got %v", corr)
	}
}

func TestQuadTreeCircuitGeneration(t *testing.T) {
	// The whole flow runs on a quad-tree circuit (programmatic option).
	// Imported lazily here to avoid a dependency cycle: use the generator's
	// config hook.
	cfg := quadConfig(4)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BasisSize() != (1+4+16+64)*3 {
		t.Fatalf("basis = %d", m.BasisSize())
	}
}
