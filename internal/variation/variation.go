// Package variation models spatially correlated process variation over a
// chip, following the paper's experimental setup: per-parameter standard
// deviations of 15.7 % (transistor length), 5.3 % (oxide thickness) and
// 4.4 % (threshold voltage) of nominal, correlation 1 for side-by-side
// gates (same grid cell) and a global correlation floor of 0.25.
//
// The chip is divided into a rectangular grid. Each parameter gets one
// random variable per cell; the cell-to-cell correlation is
//
//	ρ(c, c') = g + (1-g)·exp(-dist(c, c')/decay)
//
// with g the global floor. The correlation matrix is Cholesky-factorized so
// every cell variable is an affine combination of independent standard
// normals — these normals form the shared factor basis of the ssta
// canonical forms. Gates in the same cell see exactly the same parameter
// values (correlation 1), matching the paper.
package variation

import (
	"errors"
	"fmt"
	"math"

	"effitest/internal/la"
	"effitest/internal/ssta"
)

// Param identifies a process parameter.
type Param int

// The three modeled process parameters.
const (
	ParamLength Param = iota
	ParamTox
	ParamVth
	numParams
)

// String returns the parameter name.
func (p Param) String() string {
	switch p {
	case ParamLength:
		return "transistor-length"
	case ParamTox:
		return "oxide-thickness"
	case ParamVth:
		return "threshold-voltage"
	default:
		return fmt.Sprintf("param(%d)", int(p))
	}
}

// Config sets up a variation model. All sigma values are relative to
// nominal (e.g. 0.157 = 15.7 %).
type Config struct {
	Kind Kind // spatial model: KindGrid (default) or KindQuadTree

	GridW, GridH int     // grid resolution (cells); also normalizes quad-tree coords
	SigmaL       float64 // transistor length sigma
	SigmaTox     float64 // oxide thickness sigma
	SigmaVth     float64 // threshold voltage sigma
	CorrGlobal   float64 // correlation floor between far-apart cells
	CorrDecay    float64 // e-folding distance (in cells) of the local part

	// QuadTree parameterizes KindQuadTree (ignored for KindGrid).
	QuadTree QuadTreeConfig

	// Delay sensitivities: relative delay change per relative parameter
	// change. Gate delay d = d0·(1 + SensL·δL + SensTox·δTox + SensVth·δVth
	// + SigmaRand·ε).
	SensL, SensTox, SensVth float64
	SigmaRand               float64 // per-gate independent sigma (relative)
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		GridW: 8, GridH: 8,
		SigmaL:     0.157,
		SigmaTox:   0.053,
		SigmaVth:   0.044,
		CorrGlobal: 0.25,
		CorrDecay:  1.2,
		SensL:      0.55,
		SensTox:    0.45,
		SensVth:    0.75,
		SigmaRand:  0.03,
	}
}

// Model is a ready-to-use spatial variation model. For KindGrid the factor
// basis has GridW·GridH·3 entries (one block of cell factors per parameter);
// for KindQuadTree it has (Σ_l 4^l)·3 entries.
type Model struct {
	Cfg   Config
	Cells int
	chol  *la.Matrix // grid model: Cholesky factor of the cell correlation
	qt    *quadTree  // quad-tree model tables
}

// New builds the model (factorizing the cell correlation matrix for the
// grid kind; building level tables for the quad-tree kind).
func New(cfg Config) (*Model, error) {
	if cfg.GridW <= 0 || cfg.GridH <= 0 {
		return nil, errors.New("variation: grid dimensions must be positive")
	}
	if cfg.CorrGlobal < 0 || cfg.CorrGlobal > 1 {
		return nil, errors.New("variation: CorrGlobal must be in [0,1]")
	}
	switch cfg.Kind {
	case KindGrid:
		cells := cfg.GridW * cfg.GridH
		corr := la.NewMatrix(cells, cells)
		for a := 0; a < cells; a++ {
			ax, ay := a%cfg.GridW, a/cfg.GridW
			for b := 0; b < cells; b++ {
				bx, by := b%cfg.GridW, b/cfg.GridW
				d := math.Hypot(float64(ax-bx), float64(ay-by))
				rho := cfg.CorrGlobal + (1-cfg.CorrGlobal)*math.Exp(-d/cfg.CorrDecay)
				corr.Set(a, b, rho)
			}
		}
		l, _, err := la.CholeskyRidge(corr, 1e-10, 12)
		if err != nil {
			return nil, fmt.Errorf("variation: correlation matrix: %w", err)
		}
		return &Model{Cfg: cfg, Cells: cells, chol: l}, nil
	case KindQuadTree:
		qt, err := newQuadTree(cfg)
		if err != nil {
			return nil, err
		}
		return &Model{Cfg: cfg, Cells: qt.cells, qt: qt}, nil
	default:
		return nil, fmt.Errorf("variation: unknown model kind %d", cfg.Kind)
	}
}

// BasisSize returns the number of shared factors (cells × parameters).
func (m *Model) BasisSize() int { return m.Cells * int(numParams) }

// CellIndex maps grid coordinates to a cell id; coordinates are clamped to
// the grid.
func (m *Model) CellIndex(x, y int) int {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= m.Cfg.GridW {
		x = m.Cfg.GridW - 1
	}
	if y >= m.Cfg.GridH {
		y = m.Cfg.GridH - 1
	}
	return y*m.Cfg.GridW + x
}

func (m *Model) paramSigma(p Param) float64 {
	switch p {
	case ParamLength:
		return m.Cfg.SigmaL
	case ParamTox:
		return m.Cfg.SigmaTox
	default:
		return m.Cfg.SigmaVth
	}
}

func (m *Model) paramSens(p Param) float64 {
	switch p {
	case ParamLength:
		return m.Cfg.SensL
	case ParamTox:
		return m.Cfg.SensTox
	default:
		return m.Cfg.SensVth
	}
}

// GateCanon returns the canonical delay form of a gate with nominal delay d0
// located in cell (x, y): mean d0, factor loadings from the three parameter
// blocks, and the private random term d0·SigmaRand.
func (m *Model) GateCanon(d0 float64, x, y int) ssta.Canon {
	if m.qt != nil {
		return m.gateCanonQuad(d0, x, y)
	}
	cell := m.CellIndex(x, y)
	coef := make([]float64, m.BasisSize())
	for p := Param(0); p < numParams; p++ {
		scale := d0 * m.paramSens(p) * m.paramSigma(p)
		base := int(p) * m.Cells
		// Cell variable = Σ_k chol[cell][k] z_k (unit variance by
		// construction), scaled into delay units.
		for k := 0; k <= cell; k++ {
			coef[base+k] = scale * m.chol.At(cell, k)
		}
	}
	return ssta.Canon{Mean: d0, Coef: coef, Rand: d0 * m.Cfg.SigmaRand}
}

// CellCorr returns the modeled correlation between two cells.
func (m *Model) CellCorr(a, b int) float64 {
	ax, ay := a%m.Cfg.GridW, a/m.Cfg.GridW
	bx, by := b%m.Cfg.GridW, b/m.Cfg.GridW
	d := math.Hypot(float64(ax-bx), float64(ay-by))
	return m.Cfg.CorrGlobal + (1-m.Cfg.CorrGlobal)*math.Exp(-d/m.Cfg.CorrDecay)
}
