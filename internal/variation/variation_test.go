package variation

import (
	"math"
	"testing"

	"effitest/internal/rng"
	"effitest/internal/ssta"
	"effitest/internal/stats"
)

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridW = 0
	if _, err := New(cfg); err == nil {
		t.Error("expected error for zero grid")
	}
	cfg = DefaultConfig()
	cfg.CorrGlobal = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("expected error for correlation > 1")
	}
}

func TestSameCellGatesFullyCorrelated(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := m.GateCanon(100, 3, 3)
	b := m.GateCanon(100, 3, 3)
	// Correlated parts identical; only the private Rand differs.
	if cv := ssta.Cov(a, b); math.Abs(cv-corrVar(a)) > 1e-9 {
		t.Fatalf("same-cell covariance %v != correlated variance %v", cv, corrVar(a))
	}
}

// corrVar returns the correlated (factor) variance of a canon.
func corrVar(c ssta.Canon) float64 {
	s := 0.0
	for _, v := range c.Coef {
		s += v * v
	}
	return s
}

func TestDistantCellsNearGlobalFloor(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.GateCanon(100, 0, 0)
	b := m.GateCanon(100, 7, 7)
	// Correlation of the correlated parts should approach CorrGlobal.
	corr := ssta.Cov(a, b) / math.Sqrt(corrVar(a)*corrVar(b))
	if corr < cfg.CorrGlobal-0.02 || corr > cfg.CorrGlobal+0.1 {
		t.Fatalf("far-cell corr = %v, want ≈ %v", corr, cfg.CorrGlobal)
	}
	// And be lower than adjacent-cell correlation.
	c := m.GateCanon(100, 0, 1)
	adj := ssta.Cov(a, c) / math.Sqrt(corrVar(a)*corrVar(c))
	if adj <= corr {
		t.Fatalf("adjacent corr %v should exceed far corr %v", adj, corr)
	}
}

func TestCellCorrMatchesRealizedCorrelation(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.GateCanon(1, 2, 2)
	b := m.GateCanon(1, 4, 2)
	// Per-parameter correlation equals the cell correlation; the blended
	// delay correlation of the correlated parts must match it too because
	// all three parameter blocks share the same spatial structure.
	want := m.CellCorr(m.CellIndex(2, 2), m.CellIndex(4, 2))
	got := ssta.Cov(a, b) / math.Sqrt(corrVar(a)*corrVar(b))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("realized corr %v vs model %v", got, want)
	}
}

func TestGateCanonMeanAndSigma(t *testing.T) {
	cfg := DefaultConfig()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d0 := 100.0
	g := m.GateCanon(d0, 1, 1)
	if g.Mean != d0 {
		t.Fatalf("mean = %v", g.Mean)
	}
	// Relative sigma should equal sqrt(Σ (sens·sigma)² + sigmaRand²).
	want := d0 * math.Sqrt(
		cfg.SensL*cfg.SensL*cfg.SigmaL*cfg.SigmaL+
			cfg.SensTox*cfg.SensTox*cfg.SigmaTox*cfg.SigmaTox+
			cfg.SensVth*cfg.SensVth*cfg.SigmaVth*cfg.SigmaVth+
			cfg.SigmaRand*cfg.SigmaRand)
	if math.Abs(g.Sigma()-want) > 1e-9 {
		t.Fatalf("sigma = %v, want %v", g.Sigma(), want)
	}
	if g.Rand != d0*cfg.SigmaRand {
		t.Fatalf("rand = %v", g.Rand)
	}
}

func TestCellIndexClamps(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.CellIndex(-5, -5) != 0 {
		t.Error("negative coords should clamp to 0")
	}
	if m.CellIndex(100, 100) != m.Cells-1 {
		t.Error("large coords should clamp to last cell")
	}
}

func TestBasisSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 4, 5
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.BasisSize() != 4*5*3 {
		t.Fatalf("basis = %d", m.BasisSize())
	}
}

func TestSampledCorrelationMatchesModel(t *testing.T) {
	// Monte-Carlo check: realized gate delays across chips reproduce the
	// modeled correlation.
	cfg := DefaultConfig()
	cfg.GridW, cfg.GridH = 4, 4
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g1 := m.GateCanon(100, 0, 0)
	g2 := m.GateCanon(100, 1, 0)
	want := ssta.Corr(g1, g2)
	r := rng.New(13, "varmc")
	n := 40000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		z := rng.NormVec(r, m.BasisSize())
		xs[i] = g1.Sample(z, r.NormFloat64())
		ys[i] = g2.Sample(z, r.NormFloat64())
	}
	got := stats.Correlation(xs, ys)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("MC corr %v vs model %v", got, want)
	}
}

func TestParamString(t *testing.T) {
	if ParamLength.String() == "" || ParamTox.String() == "" || ParamVth.String() == "" {
		t.Error("param names empty")
	}
	if Param(9).String() == "" {
		t.Error("unknown param should still print")
	}
}
