package tester

// Session is one measurement session on one chip: the transport Procedure 2
// drives. A session applies buffer settings and a clock period in a single
// frequency-stepping iteration and reports per-path pass/fail, and accounts
// what the transport spent doing it.
//
// *ATE (the in-process simulated tester) is the canonical implementation;
// replay and fault-injecting sessions wrap or replace it. A session is used
// by one chip run at a time and need not be safe for concurrent use.
type Session interface {
	// Step applies one frequency-stepping iteration: configure the buffers
	// to x (full per-FF vector), clock the batch's paths at period T, and
	// report per-path pass (true = setup met). It returns the period the
	// hardware actually applied (e.g. rounded to the clock-generator grid)
	// so the caller updates delay bounds consistently with reality.
	//
	// The x and batch slices are only valid for the duration of the call —
	// the flow reuses its solver buffers across iterations — so an
	// implementation that stores them (a trace recorder, a hardware queue)
	// must copy. Symmetrically, the caller treats the returned pass slice
	// as valid only until the next Step.
	Step(T float64, x []float64, batch []int) (applied float64, pass []bool, err error)
	// Counters reports the session's accounting so far: frequency-step
	// iterations applied and configuration bits shifted through the scan
	// chain.
	Counters() (iterations int, scanBits int64)
}

// Backend is the measurement transport of the EffiTest flow: it opens one
// Session per chip. The engine holds a single Backend for a whole fleet, so
// implementations must be safe for concurrent Open calls (sessions
// themselves are single-chip, single-goroutine).
//
// Three implementations ship with the package:
//
//   - SimBackend: the in-process simulated ATE (the default);
//   - RecordBackend / ReplayBackend: record measurement traces and replay
//     them later for deterministic offline re-runs;
//   - FaultBackend: injects typed faults for resilience testing.
type Backend interface {
	Open(ch *Chip, resolution float64) (Session, error)
}

// Counters reports the ATE session accounting, making *ATE a Session.
func (a *ATE) Counters() (iterations int, scanBits int64) {
	return a.Iterations, a.ScanBits
}

// SimBackend is the default measurement transport: an in-process simulated
// ATE session per chip. The zero value is ready to use and noiseless; set
// Jitter (and JitterSeed) to model clock-edge placement noise.
type SimBackend struct {
	// Jitter is the standard deviation of per-application clock-edge noise
	// in ns (0 = noiseless).
	Jitter float64
	// JitterSeed seeds the deterministic per-chip noise streams.
	JitterSeed int64
}

// Open starts a simulated ATE session on the chip.
func (sb SimBackend) Open(ch *Chip, resolution float64) (Session, error) {
	if sb.Jitter > 0 {
		return NewNoisyATE(ch, resolution, sb.Jitter, sb.JitterSeed), nil
	}
	return NewATE(ch, resolution), nil
}
