package tester

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"
)

// TraceFormat is the serialization version of measurement traces; bumped on
// any incompatible change so stale recordings fail loudly instead of
// replaying garbage.
const TraceFormat = 1

// Replay errors. Both are wrapped with per-step detail; match with
// errors.Is.
var (
	// ErrTraceDivergence reports a replayed Step whose request (period or
	// batch) differs from what was recorded — the flow being re-run is not
	// the flow that produced the trace.
	ErrTraceDivergence = errors.New("tester: replay diverged from recorded trace")
	// ErrTraceExhausted reports a Step or session open beyond the end of
	// the recording.
	ErrTraceExhausted = errors.New("tester: replay trace exhausted")
)

// StepRecord is one recorded frequency-stepping iteration.
type StepRecord struct {
	T        float64 `json:"t"`
	Applied  float64 `json:"applied"`
	Batch    []int   `json:"batch"`
	Pass     []bool  `json:"pass"`
	ScanBits int64   `json:"scan_bits"` // cumulative session scan bits after this step
}

// SessionTrace is the recording of one measurement session on one chip.
type SessionTrace struct {
	Steps []StepRecord `json:"steps"`
}

// ChipTrace holds a chip's recorded sessions in open order.
type ChipTrace struct {
	Chip     int             `json:"chip"`
	Sessions []*SessionTrace `json:"sessions"`
}

// Trace is a serializable recording of every measurement a backend
// performed over a fleet: per chip (by Chip.Index), the sessions in open
// order, each with its frequency steps and accounting. A trace recorded
// once can be replayed any number of times for deterministic offline
// re-runs without a tester.
type Trace struct {
	Format     int          `json:"format"`
	Circuit    string       `json:"circuit"`
	Resolution float64      `json:"resolution"`
	Chips      []*ChipTrace `json:"chips"`
}

// WriteTrace serializes the trace as JSON (chips sorted by index).
func WriteTrace(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ReadTrace deserializes a JSON trace and validates its format version.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("tester: decode trace: %w", err)
	}
	if tr.Format != TraceFormat {
		return nil, fmt.Errorf("tester: trace format %d, want %d", tr.Format, TraceFormat)
	}
	return &tr, nil
}

// RecordBackend wraps another backend and records every session it opens
// into a Trace. Safe for concurrent sessions on distinct chips; each chip's
// sessions are kept in open order.
type RecordBackend struct {
	Inner Backend

	mu    sync.Mutex
	trace Trace
	chips map[int]*ChipTrace
}

// NewRecorder records every measurement performed through inner (nil means
// the default SimBackend).
func NewRecorder(inner Backend) *RecordBackend {
	if inner == nil {
		inner = SimBackend{}
	}
	return &RecordBackend{Inner: inner, chips: make(map[int]*ChipTrace)}
}

// Open starts a recording session on the chip.
func (rb *RecordBackend) Open(ch *Chip, resolution float64) (Session, error) {
	inner, err := rb.Inner.Open(ch, resolution)
	if err != nil {
		return nil, err
	}
	st := &SessionTrace{}
	rb.mu.Lock()
	if rb.trace.Circuit == "" {
		rb.trace.Circuit = ch.Circuit.Name
		rb.trace.Resolution = resolution
	}
	ct := rb.chips[ch.Index]
	if ct == nil {
		ct = &ChipTrace{Chip: ch.Index}
		rb.chips[ch.Index] = ct
	}
	ct.Sessions = append(ct.Sessions, st)
	rb.mu.Unlock()
	return &recordSession{inner: inner, st: st}, nil
}

// Trace returns a snapshot of everything recorded so far, with chips sorted
// by index. Call it after the runs using the recorder have finished.
func (rb *RecordBackend) Trace() *Trace {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	tr := &Trace{Format: TraceFormat, Circuit: rb.trace.Circuit, Resolution: rb.trace.Resolution}
	for _, ct := range rb.chips {
		tr.Chips = append(tr.Chips, ct)
	}
	sort.Slice(tr.Chips, func(i, j int) bool { return tr.Chips[i].Chip < tr.Chips[j].Chip })
	return tr
}

type recordSession struct {
	inner Session
	st    *SessionTrace
}

func (rs *recordSession) Step(T float64, x []float64, batch []int) (float64, []bool, error) {
	applied, pass, err := rs.inner.Step(T, x, batch)
	if err != nil {
		return applied, pass, err
	}
	_, scan := rs.inner.Counters()
	rs.st.Steps = append(rs.st.Steps, StepRecord{
		T:        T,
		Applied:  applied,
		Batch:    slices.Clone(batch),
		Pass:     slices.Clone(pass),
		ScanBits: scan,
	})
	return applied, pass, nil
}

func (rs *recordSession) Counters() (int, int64) { return rs.inner.Counters() }

// ReplayBackend replays a recorded Trace instead of measuring: each chip's
// sessions are handed out in open order and every Step returns exactly the
// recorded outcome, after verifying that the requested period and batch
// match the recording (a mismatch is a typed ErrTraceDivergence). Replays
// are deterministic and tester-free, so a production trace can be re-run
// offline — through the identical flow code — as many times as needed.
//
// Safe for concurrent sessions on distinct chips, provided each chip's
// sessions are opened in the recorded order (which any deterministic flow
// does).
type ReplayBackend struct {
	mu    sync.Mutex
	trace map[int]*ChipTrace
	next  map[int]int // chip index -> next session to hand out
}

// NewReplayer builds a replaying backend over a recorded trace.
func NewReplayer(tr *Trace) *ReplayBackend {
	m := make(map[int]*ChipTrace, len(tr.Chips))
	for _, ct := range tr.Chips {
		m[ct.Chip] = ct
	}
	return &ReplayBackend{trace: m, next: make(map[int]int)}
}

// Open hands out the chip's next recorded session.
func (rp *ReplayBackend) Open(ch *Chip, resolution float64) (Session, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	ct := rp.trace[ch.Index]
	if ct == nil {
		return nil, fmt.Errorf("%w: no recording for chip %d", ErrTraceExhausted, ch.Index)
	}
	k := rp.next[ch.Index]
	if k >= len(ct.Sessions) {
		return nil, fmt.Errorf("%w: chip %d has %d recorded sessions", ErrTraceExhausted, ch.Index, len(ct.Sessions))
	}
	rp.next[ch.Index] = k + 1
	return &replaySession{chip: ch.Index, st: ct.Sessions[k]}, nil
}

type replaySession struct {
	chip  int
	st    *SessionTrace
	pos   int
	iters int
	scan  int64
}

func (rs *replaySession) Step(T float64, x []float64, batch []int) (float64, []bool, error) {
	if rs.pos >= len(rs.st.Steps) {
		return 0, nil, fmt.Errorf("%w: chip %d step %d beyond %d recorded steps",
			ErrTraceExhausted, rs.chip, rs.pos, len(rs.st.Steps))
	}
	rec := rs.st.Steps[rs.pos]
	if T != rec.T {
		return 0, nil, fmt.Errorf("%w: chip %d step %d requested period %v, recorded %v",
			ErrTraceDivergence, rs.chip, rs.pos, T, rec.T)
	}
	if !slices.Equal(batch, rec.Batch) {
		return 0, nil, fmt.Errorf("%w: chip %d step %d requested batch %v, recorded %v",
			ErrTraceDivergence, rs.chip, rs.pos, batch, rec.Batch)
	}
	rs.pos++
	rs.iters++
	rs.scan = rec.ScanBits
	return rec.Applied, slices.Clone(rec.Pass), nil
}

func (rs *replaySession) Counters() (int, int64) { return rs.iters, rs.scan }
