package tester

import (
	"bytes"
	"errors"
	"testing"
)

// driveSession runs a fixed, deterministic sequence of steps against a
// session and returns everything observed, so two transports can be
// compared bit for bit.
func driveSession(t *testing.T, s Session, c interface{ NumFF() int }, nFF int) (applieds []float64, passes [][]bool) {
	t.Helper()
	x := make([]float64, nFF)
	for k := 0; k < 6; k++ {
		T := 0.5 + 0.3*float64(k)
		x[0] = 0.01 * float64(k%3)
		applied, pass, err := s.Step(T, x, []int{0, 1, 2})
		if err != nil {
			t.Fatalf("step %d: %v", k, err)
		}
		applieds = append(applieds, applied)
		passes = append(passes, append([]bool(nil), pass...))
	}
	return applieds, passes
}

func TestSimBackendMatchesATE(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 3, 0)

	sess, err := SimBackend{}.Open(ch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	a1, p1 := driveSession(t, sess, nil, c.NumFF)
	a2, p2 := driveSession(t, NewATE(ch, 1e-4), nil, c.NumFF)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("applied[%d]: backend %v vs ATE %v", i, a1[i], a2[i])
		}
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("pass[%d][%d] differs", i, j)
			}
		}
	}
	i1, s1 := sess.Counters()
	if i1 != 6 || s1 <= 0 {
		t.Fatalf("counters = (%d, %d), want 6 iterations and positive scan bits", i1, s1)
	}
}

func TestRecordReplayRoundTrip(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 3, 7)

	rec := NewRecorder(nil)
	sess, err := rec.Open(ch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	a1, p1 := driveSession(t, sess, nil, c.NumFF)
	wantIters, wantScan := sess.Counters()

	// Serialize and re-read the trace, then replay the identical sequence.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, rec.Trace()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Circuit != c.Name || tr.Resolution != 1e-4 {
		t.Fatalf("trace header = (%q, %v)", tr.Circuit, tr.Resolution)
	}

	rp := NewReplayer(tr)
	rsess, err := rp.Open(ch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	a2, p2 := driveSession(t, rsess, nil, c.NumFF)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("replayed applied[%d] = %v, recorded %v", i, a2[i], a1[i])
		}
		for j := range p1[i] {
			if p1[i][j] != p2[i][j] {
				t.Fatalf("replayed pass[%d][%d] differs", i, j)
			}
		}
	}
	if it, sc := rsess.Counters(); it != wantIters || sc != wantScan {
		t.Fatalf("replayed counters = (%d, %d), want (%d, %d)", it, sc, wantIters, wantScan)
	}

	// One step beyond the recording must fail typed, not panic.
	if _, _, err := rsess.Step(1, make([]float64, c.NumFF), []int{0}); !errors.Is(err, ErrTraceExhausted) {
		t.Fatalf("step beyond trace = %v, want ErrTraceExhausted", err)
	}
	// A second session for the same chip was never recorded.
	if _, err := rp.Open(ch, 1e-4); !errors.Is(err, ErrTraceExhausted) {
		t.Fatalf("second open = %v, want ErrTraceExhausted", err)
	}
	// An unrecorded chip has no trace at all.
	if _, err := rp.Open(SampleChip(c, 3, 99), 1e-4); !errors.Is(err, ErrTraceExhausted) {
		t.Fatalf("unknown chip open = %v, want ErrTraceExhausted", err)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 3, 1)

	rec := NewRecorder(nil)
	sess, _ := rec.Open(ch, 1e-4)
	x := make([]float64, c.NumFF)
	if _, _, err := sess.Step(0.8, x, []int{0, 1}); err != nil {
		t.Fatal(err)
	}

	// Different period.
	rsess, _ := NewReplayer(rec.Trace()).Open(ch, 1e-4)
	if _, _, err := rsess.Step(0.9, x, []int{0, 1}); !errors.Is(err, ErrTraceDivergence) {
		t.Fatalf("period mismatch = %v, want ErrTraceDivergence", err)
	}
	// Different batch.
	rsess, _ = NewReplayer(rec.Trace()).Open(ch, 1e-4)
	if _, _, err := rsess.Step(0.8, x, []int{0, 2}); !errors.Is(err, ErrTraceDivergence) {
		t.Fatalf("batch mismatch = %v, want ErrTraceDivergence", err)
	}
}

func TestFaultBackendInjectsTypedErrors(t *testing.T) {
	c := tiny(t)
	chOK := SampleChip(c, 3, 0)
	chOpen := SampleChip(c, 3, 1)
	chStep := SampleChip(c, 3, 2)

	fb := NewFaultBackend(nil).FailOpen(1).FailAtStep(2, 1)

	if _, err := fb.Open(chOpen, 1e-4); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("open fault = %v, want ErrInjectedFault", err)
	}
	var fe *FaultError
	if _, err := fb.Open(chOpen, 1e-4); !errors.As(err, &fe) || fe.Chip != 1 || fe.Op != "open" {
		t.Fatalf("open fault detail = %v", err)
	}

	x := make([]float64, c.NumFF)
	sess, err := fb.Open(chStep, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Step(1, x, []int{0}); err != nil {
		t.Fatalf("step 0 should pass: %v", err)
	}
	_, _, err = sess.Step(1, x, []int{0})
	if !errors.As(err, &fe) || fe.Chip != 2 || fe.Op != "step" || fe.Step != 1 {
		t.Fatalf("step fault = %v", err)
	}

	// Healthy chips keep working through the same backend.
	sess, err = fb.Open(chOK, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Step(1, x, []int{0}); err != nil {
		t.Fatalf("healthy chip: %v", err)
	}

	st := fb.Stats()
	if st.Opens != 4 || st.Faults != 3 || st.Steps != 3 {
		t.Fatalf("stats = %+v", st)
	}
}
