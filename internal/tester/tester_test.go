package tester

import (
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/stats"
)

func tiny(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("tc", 20, 160, 3, 24), 5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSampleChipDeterministic(t *testing.T) {
	c := tiny(t)
	a := SampleChip(c, 9, 3)
	b := SampleChip(c, 9, 3)
	for i := range a.TrueMax {
		if a.TrueMax[i] != b.TrueMax[i] || a.TrueMin[i] != b.TrueMin[i] {
			t.Fatal("same (seed, index) produced different chips")
		}
	}
	d := SampleChip(c, 9, 4)
	if a.TrueMax[0] == d.TrueMax[0] {
		t.Fatal("different index produced identical first delay")
	}
}

func TestSampleChipMomentsMatchModel(t *testing.T) {
	c := tiny(t)
	const n = 4000
	chips := SampleChips(c, 77, n)
	for _, pi := range []int{0, 5, len(c.Paths) - 1} {
		xs := make([]float64, n)
		for k, ch := range chips {
			xs[k] = ch.TrueMax[pi]
		}
		wantMu, wantSd := c.Paths[pi].Max.Mean, c.Paths[pi].Max.Sigma()
		if d := math.Abs(stats.Mean(xs) - wantMu); d > 4*wantSd/math.Sqrt(n)+1e-3 {
			t.Errorf("path %d: mean off by %v", pi, d)
		}
		if got := stats.StdDev(xs); math.Abs(got-wantSd) > 0.08*wantSd {
			t.Errorf("path %d: sd %v vs model %v", pi, got, wantSd)
		}
	}
}

func TestSampleChipCorrelationMatchesModel(t *testing.T) {
	c := tiny(t)
	corr := c.CorrMatrix()
	const n = 4000
	chips := SampleChips(c, 31, n)
	// Pick an intra-cluster pair (high corr) and a cross-cluster pair.
	var hi, hj, li, lj = -1, -1, -1, -1
	for i := 0; i < len(c.Paths) && (hi < 0 || li < 0); i++ {
		for j := i + 1; j < len(c.Paths); j++ {
			if hi < 0 && corr[i][j] > 0.8 {
				hi, hj = i, j
			}
			if li < 0 && corr[i][j] < 0.5 {
				li, lj = i, j
			}
		}
	}
	if hi < 0 || li < 0 {
		t.Skip("no suitable pairs in tiny circuit")
	}
	check := func(i, j int) {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for k, ch := range chips {
			xs[k] = ch.TrueMax[i]
			ys[k] = ch.TrueMax[j]
		}
		got := stats.Correlation(xs, ys)
		if math.Abs(got-corr[i][j]) > 0.06 {
			t.Errorf("pair (%d,%d): sampled corr %v vs model %v", i, j, got, corr[i][j])
		}
	}
	check(hi, hj)
	check(li, lj)
}

func TestMinNeverExceedsMax(t *testing.T) {
	c := tiny(t)
	for _, ch := range SampleChips(c, 3, 200) {
		for p := range c.Paths {
			if ch.TrueMin[p] > ch.TrueMax[p] {
				t.Fatalf("chip %d path %d: min %v > max %v", ch.Index, p, ch.TrueMin[p], ch.TrueMax[p])
			}
			if ch.TrueMin[p] < 0 || ch.TrueMax[p] < 0 {
				t.Fatalf("negative delay sampled")
			}
		}
	}
}

func TestPassesAtMonotoneInT(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	x := make([]float64, c.NumFF)
	crit := ch.CriticalDelay()
	if !ch.PassesAt(crit+1e-9, x) {
		t.Fatal("must pass just above critical delay")
	}
	if ch.PassesAt(crit-1e-9, x) {
		t.Fatal("must fail just below critical delay")
	}
}

func TestSetupSlackRespondsToBuffers(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	p := &c.Paths[0]
	x := make([]float64, c.NumFF)
	base := ch.SetupSlack(0, 1.0, x)
	// Delaying the sink clock edge by δ adds δ of budget.
	x[p.To] += 0.05
	if d := ch.SetupSlack(0, 1.0, x) - base; math.Abs(d-0.05) > 1e-12 {
		t.Fatalf("sink shift changed slack by %v, want 0.05", d)
	}
	x[p.To] = 0
	x[p.From] += 0.05
	if d := ch.SetupSlack(0, 1.0, x) - base; math.Abs(d+0.05) > 1e-12 {
		t.Fatalf("source shift changed slack by %v, want -0.05", d)
	}
}

func TestHoldSlack(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	x := make([]float64, c.NumFF)
	if !ch.HoldOK(x) {
		t.Fatal("zero skew should satisfy hold (h << dmin)")
	}
	// A huge negative source shift must eventually violate hold.
	p := &c.Paths[0]
	x[p.From] = -(ch.TrueMin[0] + 1)
	if ch.HoldSlack(0, x) >= 0 {
		t.Fatal("expected hold violation")
	}
}

func TestATEStepCountsAndResolution(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	ate := NewATE(ch, 0.001)
	x := make([]float64, c.NumFF)
	applied, pass, err := ate.Step(1.00049, x, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(applied-1.001) > 1e-12 {
		t.Fatalf("applied = %v, want ceil to 1.001", applied)
	}
	if len(pass) != 2 {
		t.Fatalf("pass len %d", len(pass))
	}
	if ate.Iterations != 1 {
		t.Fatalf("iterations = %d", ate.Iterations)
	}
	if ate.ScanBits != int64(c.Devices.TotalBits()) {
		t.Fatalf("scan bits = %d, want %d", ate.ScanBits, c.Devices.TotalBits())
	}
	ate.Step(1.0, x, []int{0})
	if ate.Iterations != 2 {
		t.Fatal("iteration counter must accumulate")
	}
}

func TestATEStepMatchesOracle(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	ate := NewATE(ch, 0)
	// Requested values go through the scan chain, so the oracle must be
	// evaluated at the device-quantized values.
	x := make([]float64, c.NumFF)
	for p := range c.Paths {
		x[c.Paths[p].To] = 0.01 // off-lattice sink shifts
	}
	effective := make([]float64, c.NumFF)
	copy(effective, x)
	for _, d := range c.Devices.Devices {
		effective[d.FF] = d.Value(d.StepFor(x[d.FF]))
	}
	T := 1.05
	_, pass, err := ate.Step(T, x, []int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []int{0, 3, 7} {
		want := ch.SetupSlack(p, T, effective) >= 0
		if pass[i] != want {
			t.Fatalf("path %d: pass %v, oracle %v", p, pass[i], want)
		}
	}
}

func TestATEScanQuantizesOffLatticeValues(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	ate := NewATE(ch, 0)
	bufFF := c.Buffered[0]
	d := c.Devices.Devices[0]
	// Request a value exactly halfway between two steps plus a hair: the
	// hardware realizes the nearest lattice point, not the request.
	request := d.Value(3) + 0.49*d.StepSize()
	x := make([]float64, c.NumFF)
	x[bufFF] = request
	// Find a path whose pass/fail flips between request and quantized value.
	// Construct the check directly through SetupSlack instead.
	_, _, err := ate.Step(1.0, x, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Value(d.StepFor(request)); got != d.Value(3) {
		t.Fatalf("StepFor quantized %v to %v, want %v", request, got, d.Value(3))
	}
}

func TestNoisyATEJitterChangesMarginalDecisions(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	x := make([]float64, c.NumFF)
	// Period exactly at the path delay: noiseless always passes (slack 0);
	// with jitter the decision flips sometimes.
	p := 0
	T := ch.TrueMax[p]
	clean := NewATE(ch, 0)
	_, pass, err := clean.Step(T, x, []int{p})
	if err != nil {
		t.Fatal(err)
	}
	if !pass[0] {
		t.Fatal("noiseless test at exact delay should pass (slack 0)")
	}
	noisy := NewNoisyATE(ch, 0, 0.005, 42)
	flips := 0
	for i := 0; i < 200; i++ {
		_, pass, err := noisy.Step(T, x, []int{p})
		if err != nil {
			t.Fatal(err)
		}
		if !pass[0] {
			flips++
		}
	}
	// Zero-mean jitter at zero slack should fail ≈ half the time.
	if flips < 50 || flips > 150 {
		t.Fatalf("jittered fails = %d/200, want ≈ 100", flips)
	}
	// Far from the threshold, jitter must not matter.
	_, pass, err = noisy.Step(T+1.0, x, []int{p})
	if err != nil {
		t.Fatal(err)
	}
	if !pass[0] {
		t.Fatal("huge slack must pass despite jitter")
	}
}

func TestNoisyATEDeterministicStream(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	x := make([]float64, c.NumFF)
	T := ch.TrueMax[0]
	a := NewNoisyATE(ch, 0, 0.005, 7)
	b := NewNoisyATE(ch, 0, 0.005, 7)
	for i := 0; i < 50; i++ {
		_, pa, _ := a.Step(T, x, []int{0})
		_, pb, _ := b.Step(T, x, []int{0})
		if pa[0] != pb[0] {
			t.Fatal("same seed produced different jitter streams")
		}
	}
}

func TestATEStepErrors(t *testing.T) {
	c := tiny(t)
	ch := SampleChip(c, 1, 0)
	ate := NewATE(ch, 0)
	if _, _, err := ate.Step(1, make([]float64, 3), []int{0}); err == nil {
		t.Fatal("short x should error")
	}
	if _, _, err := ate.Step(1, make([]float64, c.NumFF), []int{9999}); err == nil {
		t.Fatal("bad path id should error")
	}
}

func TestAppliedPeriodIdealWhenZeroResolution(t *testing.T) {
	ate := &ATE{Resolution: 0}
	if ate.AppliedPeriod(1.2345) != 1.2345 {
		t.Fatal("zero resolution must be exact")
	}
}
