// Package tester simulates the post-silicon test environment: manufactured
// chip instances (per-die realizations of the statistical delay model), the
// scan chain that shifts buffer configuration bits in with test vectors, and
// the frequency-stepping oracle of an ATE. The tester's iteration counter is
// the paper's cost metric (columns ta / t′a of Table 1).
package tester

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"effitest/internal/circuit"
	"effitest/internal/pool"
	"effitest/internal/rng"
	"effitest/internal/skew"
)

// Chip is one manufactured die: exact realized path delays, unknown to the
// test algorithms except through frequency-step pass/fail results.
type Chip struct {
	Circuit *circuit.Circuit
	Index   int
	TrueMax []float64 // realized max delay per path (setup folded)
	TrueMin []float64 // realized min delay per path
}

// SampleChip manufactures chip `index` from the circuit's variation model,
// deterministically in (seed, index).
func SampleChip(c *circuit.Circuit, seed int64, index int) *Chip {
	r := rng.NewIndexed(seed, index, "chip", c.Name)
	z := rng.NormVec(r, c.Model.BasisSize())
	ch := &Chip{
		Circuit: c,
		Index:   index,
		TrueMax: make([]float64, len(c.Paths)),
		TrueMin: make([]float64, len(c.Paths)),
	}
	for i := range c.Paths {
		p := &c.Paths[i]
		eps := r.NormFloat64()
		ch.TrueMax[i] = p.Max.Sample(z, eps)
		// The min-delay shares the die's correlated factors; its private part
		// is drawn separately (different sensitizable short path).
		ch.TrueMin[i] = p.Min.Sample(z, r.NormFloat64())
		if ch.TrueMin[i] > ch.TrueMax[i] {
			ch.TrueMin[i] = ch.TrueMax[i]
		}
		if ch.TrueMax[i] < 0 {
			ch.TrueMax[i] = 0
		}
		if ch.TrueMin[i] < 0 {
			ch.TrueMin[i] = 0
		}
	}
	return ch
}

// SampleChips manufactures n chips, using every CPU. Chip i depends only on
// (seed, i), so the result is identical to a sequential loop.
func SampleChips(c *circuit.Circuit, seed int64, n int) []*Chip {
	out, _ := SampleChipsCtx(context.Background(), c, seed, n, 0)
	return out
}

// SampleChipsCtx manufactures n chips on a bounded worker pool (workers as
// in core.Config.Workers: 0 = all CPUs) with cancellation. The returned
// slice is deterministic in (seed, n) at any worker count.
func SampleChipsCtx(ctx context.Context, c *circuit.Circuit, seed int64, n, workers int) ([]*Chip, error) {
	return SampleChipRangeCtx(ctx, c, seed, 0, n, workers)
}

// SampleChipRangeCtx manufactures the n chips with manufacturing indices
// [first, first+n) of the (seed-keyed) chip population. Because chip i
// depends only on (seed, i), the returned chips are exactly the
// corresponding slice of SampleChipsCtx(ctx, c, seed, first+n, workers) —
// the property sharded campaign execution relies on: a shard samples only
// its own index range yet runs the identical chips.
func SampleChipRangeCtx(ctx context.Context, c *circuit.Circuit, seed int64, first, n, workers int) ([]*Chip, error) {
	out := make([]*Chip, n)
	err := pool.ForEach(ctx, n, workers, func(i int) error {
		out[i] = SampleChip(c, seed, first+i)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats is a race-free aggregate of per-session ATE accounting. Workers run
// each chip on its own ATE; the reducer folds the per-chip counters into a
// Stats in chip order, so totals are deterministic.
type Stats struct {
	Iterations int
	ScanBits   int64
}

// Add folds one session's accounting into the aggregate.
func (s *Stats) Add(iterations int, scanBits int64) {
	s.Iterations += iterations
	s.ScanBits += scanBits
}

// SetupSlack returns Td - (D + x_i - x_j) for path p under buffer values x;
// non-negative means the setup constraint holds.
func (ch *Chip) SetupSlack(p int, Td float64, x []float64) float64 {
	pt := &ch.Circuit.Paths[p]
	return Td - (ch.TrueMax[p] + x[pt.From] - x[pt.To])
}

// HoldSlack returns (x_i - x_j) - (h - dmin) for path p; non-negative means
// the hold constraint holds.
func (ch *Chip) HoldSlack(p int, x []float64) float64 {
	pt := &ch.Circuit.Paths[p]
	return (x[pt.From] - x[pt.To]) - (ch.Circuit.HoldTime - ch.TrueMin[p])
}

// PassesAt reports whether every path meets setup at period Td under buffer
// values x.
func (ch *Chip) PassesAt(Td float64, x []float64) bool {
	for p := range ch.Circuit.Paths {
		if ch.SetupSlack(p, Td, x) < 0 {
			return false
		}
	}
	return true
}

// HoldOK reports whether every path meets hold under buffer values x.
func (ch *Chip) HoldOK(x []float64) bool {
	for p := range ch.Circuit.Paths {
		if ch.HoldSlack(p, x) < 0 {
			return false
		}
	}
	return true
}

// CriticalDelay returns the largest realized path delay (the chip's minimum
// working period without tuning).
func (ch *Chip) CriticalDelay() float64 {
	max := 0.0
	for _, d := range ch.TrueMax {
		if d > max {
			max = d
		}
	}
	return max
}

// Arcs returns the chip's exact timing arcs (for ideal-measurement
// configuration studies): Setup is the realized max delay, Hold the folded
// hold bound h - dmin.
func (ch *Chip) Arcs() []skew.Timing {
	arcs := make([]skew.Timing, len(ch.Circuit.Paths))
	for i := range ch.Circuit.Paths {
		p := &ch.Circuit.Paths[i]
		arcs[i] = skew.Timing{
			From:  p.From,
			To:    p.To,
			Setup: ch.TrueMax[i],
			Hold:  ch.Circuit.HoldTime - ch.TrueMin[i],
		}
	}
	return arcs
}

// ATE is a simulated automatic test equipment session on one chip. It
// accounts every frequency-step iteration and every scan-chain shift, and
// routes buffer settings through the actual vernier scan-chain encoding
// (devices quantize values to their step lattices exactly as hardware
// would).
type ATE struct {
	Chip *Chip
	// Resolution is the clock-generator period granularity; applied periods
	// are rounded up to the grid (conservative: never tests faster than
	// asked). Zero means ideal.
	Resolution float64
	// Jitter is the standard deviation of per-application clock-edge noise
	// in ns (0 = noiseless). A noisy step compares the path delay against
	// T + jitter-draw, modelling the tester's edge placement accuracy.
	Jitter float64

	Iterations int   // frequency steps applied
	ScanBits   int64 // configuration bits shifted

	jitterStream *rand.Rand
}

// NewATE opens a test session.
func NewATE(ch *Chip, resolution float64) *ATE {
	return &ATE{Chip: ch, Resolution: resolution}
}

// NewNoisyATE opens a test session with clock-edge jitter; the noise stream
// is deterministic in (chip, seed).
func NewNoisyATE(ch *Chip, resolution, jitter float64, seed int64) *ATE {
	return &ATE{
		Chip:         ch,
		Resolution:   resolution,
		Jitter:       jitter,
		jitterStream: rng.NewIndexed(seed, ch.Index, "ate-jitter", ch.Circuit.Name),
	}
}

// AppliedPeriod returns the actual period the clock generator produces for a
// requested period.
func (a *ATE) AppliedPeriod(T float64) float64 {
	if a.Resolution <= 0 {
		return T
	}
	return math.Ceil(T/a.Resolution-1e-12) * a.Resolution
}

// Step applies one frequency-stepping iteration: scan in the buffer
// configuration x (full per-FF vector) and the batch's test vectors, clock
// at period T, and report per-path pass (true = data latched correctly, i.e.
// setup met). The applied (resolution-rounded) period is returned so callers
// update bounds consistently with what the hardware actually did.
//
// The buffer values travel through the real scan-chain encoding: each value
// is quantized to its device's step, encoded to configuration bits, shifted
// (accounted in ScanBits) and decoded on-chip — so off-lattice requests see
// exactly the hardware's quantization.
func (a *ATE) Step(T float64, x []float64, batch []int) (applied float64, pass []bool, err error) {
	if len(x) != a.Chip.Circuit.NumFF {
		return 0, nil, fmt.Errorf("tester: buffer vector length %d != %d FFs", len(x), a.Chip.Circuit.NumFF)
	}
	effective, err := a.scanIn(x)
	if err != nil {
		return 0, nil, err
	}
	applied = a.AppliedPeriod(T)
	a.Iterations++
	pass = make([]bool, len(batch))
	for i, p := range batch {
		if p < 0 || p >= len(a.Chip.Circuit.Paths) {
			return 0, nil, fmt.Errorf("tester: path %d out of range", p)
		}
		threshold := applied
		if a.Jitter > 0 && a.jitterStream != nil {
			threshold += a.Jitter * a.jitterStream.NormFloat64()
		}
		pass[i] = a.Chip.SetupSlack(p, threshold, effective) >= 0
	}
	return applied, pass, nil
}

// scanIn routes the requested buffer values through the device scan chain
// and returns the values the hardware actually realizes.
func (a *ATE) scanIn(x []float64) ([]float64, error) {
	chain := a.Chip.Circuit.Devices
	if len(chain.Devices) == 0 {
		return x, nil
	}
	steps := make([]int, len(chain.Devices))
	for i, d := range chain.Devices {
		steps[i] = d.StepFor(x[d.FF])
	}
	bits, err := chain.Encode(steps)
	if err != nil {
		return nil, fmt.Errorf("tester: scan encode: %w", err)
	}
	a.ScanBits += int64(len(bits))
	decoded, err := chain.Decode(bits)
	if err != nil {
		return nil, fmt.Errorf("tester: scan decode: %w", err)
	}
	effective := make([]float64, len(x))
	copy(effective, x)
	for i, d := range chain.Devices {
		effective[d.FF] = d.Value(decoded[i])
	}
	return effective, nil
}
