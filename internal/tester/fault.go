package tester

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrInjectedFault is the sentinel every injected fault wraps; match with
// errors.Is. The concrete error is always a *FaultError carrying where the
// fault fired.
var ErrInjectedFault = errors.New("tester: injected fault")

// FaultError reports one injected fault: which chip, which operation
// ("open" or "step") and — for steps — how many steps the session had
// completed when it fired. It wraps ErrInjectedFault.
type FaultError struct {
	Chip int
	Op   string
	Step int
}

// Error describes the fault.
func (e *FaultError) Error() string {
	if e.Op == "open" {
		return fmt.Sprintf("tester: injected fault: chip %d: session open refused", e.Chip)
	}
	return fmt.Sprintf("tester: injected fault: chip %d: step %d failed", e.Chip, e.Step)
}

// Unwrap makes errors.Is(err, ErrInjectedFault) hold.
func (e *FaultError) Unwrap() error { return ErrInjectedFault }

// FaultBackend wraps another backend, injecting deterministic faults and
// instrumenting every call — the resilience harness for everything built on
// chip streams: a faulted chip must surface its typed error through
// ChipResult.Err without wedging the worker pool or corrupting its
// neighbours.
//
// Faults are scheduled per chip index with FailOpen / FailAtStep; the
// instrumentation counters (Stats) aggregate across all sessions and are
// safe to read concurrently.
type FaultBackend struct {
	Inner Backend

	mu         sync.Mutex
	failOpen   map[int]bool
	failAtStep map[int]int

	opens  atomic.Int64
	steps  atomic.Int64
	faults atomic.Int64
}

// NewFaultBackend instruments inner (nil means the default SimBackend) with
// no faults scheduled.
func NewFaultBackend(inner Backend) *FaultBackend {
	if inner == nil {
		inner = SimBackend{}
	}
	return &FaultBackend{
		Inner:      inner,
		failOpen:   make(map[int]bool),
		failAtStep: make(map[int]int),
	}
}

// FailOpen schedules the chip's session open to fail.
func (fb *FaultBackend) FailOpen(chip int) *FaultBackend {
	fb.mu.Lock()
	fb.failOpen[chip] = true
	fb.mu.Unlock()
	return fb
}

// FailAtStep schedules the chip's step number `step` (0-based, counted per
// session) to fail.
func (fb *FaultBackend) FailAtStep(chip, step int) *FaultBackend {
	fb.mu.Lock()
	fb.failAtStep[chip] = step
	fb.mu.Unlock()
	return fb
}

// BackendStats is the instrumentation aggregate of a FaultBackend.
type BackendStats struct {
	Opens  int64 // sessions opened (including refused ones)
	Steps  int64 // frequency steps attempted
	Faults int64 // faults injected
}

// Stats returns the counters accumulated so far.
func (fb *FaultBackend) Stats() BackendStats {
	return BackendStats{Opens: fb.opens.Load(), Steps: fb.steps.Load(), Faults: fb.faults.Load()}
}

// Open starts an instrumented session, or fails with a *FaultError if an
// open fault is scheduled for the chip.
func (fb *FaultBackend) Open(ch *Chip, resolution float64) (Session, error) {
	fb.opens.Add(1)
	fb.mu.Lock()
	refuse := fb.failOpen[ch.Index]
	stepAt, hasStep := fb.failAtStep[ch.Index]
	fb.mu.Unlock()
	if refuse {
		fb.faults.Add(1)
		return nil, &FaultError{Chip: ch.Index, Op: "open"}
	}
	inner, err := fb.Inner.Open(ch, resolution)
	if err != nil {
		return nil, err
	}
	s := &faultSession{inner: inner, fb: fb, chip: ch.Index, failAt: -1}
	if hasStep {
		s.failAt = stepAt
	}
	return s, nil
}

type faultSession struct {
	inner  Session
	fb     *FaultBackend
	chip   int
	failAt int // step index to fail at, -1 = never
	step   int
}

func (fs *faultSession) Step(T float64, x []float64, batch []int) (float64, []bool, error) {
	fs.fb.steps.Add(1)
	if fs.failAt >= 0 && fs.step == fs.failAt {
		fs.fb.faults.Add(1)
		return 0, nil, &FaultError{Chip: fs.chip, Op: "step", Step: fs.step}
	}
	fs.step++
	return fs.inner.Step(T, x, batch)
}

func (fs *faultSession) Counters() (int, int64) { return fs.inner.Counters() }
