// Package graph provides the directed-graph algorithms behind EffiTest's
// timing machinery: Bellman–Ford (difference-constraint feasibility with
// negative-cycle detection), Karp's minimum/maximum cycle mean (minimum
// clock period under skew scheduling), topological ordering and connected
// components.
package graph

import (
	"math"
)

// Edge is a weighted directed edge.
type Edge struct {
	From, To int
	W        float64
}

// Digraph is a directed graph over nodes 0..N-1.
type Digraph struct {
	N     int
	edges []Edge
	adj   [][]int // adjacency as indices into edges
}

// NewDigraph returns an empty graph with n nodes.
func NewDigraph(n int) *Digraph {
	return &Digraph{N: n, adj: make([][]int, n)}
}

// AddEdge appends a directed edge from u to v with weight w.
func (g *Digraph) AddEdge(u, v int, w float64) {
	g.edges = append(g.edges, Edge{u, v, w})
	g.adj[u] = append(g.adj[u], len(g.edges)-1)
}

// Edges returns the edge list (shared slice; callers must not modify).
func (g *Digraph) Edges() []Edge { return g.edges }

// BellmanFord computes single-source shortest paths from src. It returns the
// distance slice and ok=false if a negative cycle is reachable from src.
// Unreachable nodes have distance +Inf.
func (g *Digraph) BellmanFord(src int) (dist []float64, ok bool) {
	dist = make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	return dist, g.relaxAll(dist)
}

// BellmanFordMulti runs Bellman–Ford with all nodes as sources (distance 0),
// which detects any negative cycle in the graph and yields a feasible
// potential for difference-constraint systems.
func (g *Digraph) BellmanFordMulti() (dist []float64, ok bool) {
	dist = make([]float64, g.N) // all zeros
	return dist, g.relaxAll(dist)
}

func (g *Digraph) relaxAll(dist []float64) bool {
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for _, e := range g.edges {
			if math.IsInf(dist[e.From], 1) {
				continue
			}
			if nd := dist[e.From] + e.W; nd < dist[e.To]-1e-12 {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	// One more pass: any improvement means a negative cycle.
	for _, e := range g.edges {
		if math.IsInf(dist[e.From], 1) {
			continue
		}
		if dist[e.From]+e.W < dist[e.To]-1e-9 {
			return false
		}
	}
	return true
}

// MinMeanCycle returns the minimum cycle mean using Karp's theorem, with
// ok=false if the graph is acyclic.
func (g *Digraph) MinMeanCycle() (float64, bool) {
	n := g.N
	if n == 0 {
		return 0, false
	}
	// D[k][v] = min weight of a walk with exactly k edges ending at v,
	// starting anywhere (multi-source).
	prev := make([]float64, n) // all zeros: D[0]
	cur := make([]float64, n)
	// Keep all D[k] because Karp's formula needs them.
	all := make([][]float64, n+1)
	all[0] = append([]float64(nil), prev...)
	for k := 1; k <= n; k++ {
		for v := range cur {
			cur[v] = math.Inf(1)
		}
		for _, e := range g.edges {
			if math.IsInf(prev[e.From], 1) {
				continue
			}
			if nd := prev[e.From] + e.W; nd < cur[e.To] {
				cur[e.To] = nd
			}
		}
		all[k] = append([]float64(nil), cur...)
		prev, cur = cur, prev
	}
	best := math.Inf(1)
	found := false
	for v := 0; v < n; v++ {
		dn := all[n][v]
		if math.IsInf(dn, 1) {
			continue
		}
		worst := math.Inf(-1)
		for k := 0; k < n; k++ {
			dk := all[k][v]
			if math.IsInf(dk, 1) {
				continue
			}
			if r := (dn - dk) / float64(n-k); r > worst {
				worst = r
			}
		}
		if !math.IsInf(worst, -1) && worst < best {
			best = worst
			found = true
		}
	}
	return best, found
}

// MaxMeanCycle returns the maximum cycle mean (minimum feasible clock period
// in skew scheduling), with ok=false for acyclic graphs.
func (g *Digraph) MaxMeanCycle() (float64, bool) {
	neg := NewDigraph(g.N)
	for _, e := range g.edges {
		neg.AddEdge(e.From, e.To, -e.W)
	}
	m, ok := neg.MinMeanCycle()
	return -m, ok
}

// TopoSort returns a topological order of the nodes, with ok=false if the
// graph has a cycle.
func (g *Digraph) TopoSort() ([]int, bool) {
	indeg := make([]int, g.N)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	queue := make([]int, 0, g.N)
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.N)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range g.adj[v] {
			e := g.edges[ei]
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == g.N
}

// Components returns the weakly connected component id of every node and the
// number of components.
func (g *Digraph) Components() ([]int, int) {
	und := make([][]int, g.N)
	for _, e := range g.edges {
		und[e.From] = append(und[e.From], e.To)
		und[e.To] = append(und[e.To], e.From)
	}
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for v := 0; v < g.N; v++ {
		if comp[v] >= 0 {
			continue
		}
		stack = append(stack[:0], v)
		comp[v] = next
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range und[u] {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp, next
}
