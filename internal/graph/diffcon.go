package graph

import "math"

// DiffConstraint encodes x[A] - x[B] <= C.
type DiffConstraint struct {
	A, B int
	C    float64
}

// SolveDifference solves a system of difference constraints over n
// variables. It returns an assignment satisfying every constraint, or
// ok=false if the system is infeasible (the constraint graph has a negative
// cycle). The solution is normalized so that x[ref] == 0.
func SolveDifference(n int, cons []DiffConstraint, ref int) (x []float64, ok bool) {
	// Constraint x_a - x_b <= c maps to edge b -> a with weight c; shortest
	// path potentials then satisfy d[a] <= d[b] + c.
	g := NewDigraph(n)
	for _, c := range cons {
		g.AddEdge(c.B, c.A, c.C)
	}
	dist, ok := g.BellmanFordMulti()
	if !ok {
		return nil, false
	}
	x = make([]float64, n)
	shift := dist[ref]
	for i := range x {
		x[i] = dist[i] - shift
	}
	return x, true
}

// IntDiffConstraint encodes x[A] - x[B] <= C over integers.
type IntDiffConstraint struct {
	A, B int
	C    int64
}

// SolveIntDifference solves an integral difference-constraint system. With
// integer constants, Bellman–Ford potentials are integral, so the returned
// assignment is exact — this is what makes discrete buffer-step feasibility
// checks exact in EffiTest's configuration solver. The solution is
// normalized so x[ref] == 0.
func SolveIntDifference(n int, cons []IntDiffConstraint, ref int) (x []int64, ok bool) {
	const inf = math.MaxInt64 / 4
	dist := make([]int64, n) // multi-source: all zeros
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, c := range cons {
			if dist[c.B] >= inf {
				continue
			}
			if nd := dist[c.B] + c.C; nd < dist[c.A] {
				dist[c.A] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter == n-1 {
			// Still changing after n passes: negative cycle.
			for _, c := range cons {
				if dist[c.B]+c.C < dist[c.A] {
					return nil, false
				}
			}
		}
	}
	x = make([]int64, n)
	shift := dist[ref]
	for i := range x {
		x[i] = dist[i] - shift
	}
	return x, true
}
