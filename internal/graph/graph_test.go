package graph

import (
	"math"
	"testing"

	"effitest/internal/rng"
)

func TestBellmanFordShortestPath(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 2)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 5)
	dist, ok := g.BellmanFord(0)
	if !ok {
		t.Fatal("unexpected negative cycle")
	}
	want := []float64{0, 3, 1, 4, math.Inf(1)}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
}

func TestBellmanFordNegativeEdgesOK(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, -3)
	dist, ok := g.BellmanFord(0)
	if !ok || dist[2] != 2 {
		t.Fatalf("dist = %v ok = %v", dist, ok)
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, -2)
	g.AddEdge(2, 1, 1) // cycle 1->2->1 weight -1
	if _, ok := g.BellmanFord(0); ok {
		t.Fatal("negative cycle not detected")
	}
	if _, ok := g.BellmanFordMulti(); ok {
		t.Fatal("negative cycle not detected (multi)")
	}
}

func TestBellmanFordUnreachableNegativeCycle(t *testing.T) {
	// The cycle is not reachable from source 0, so single-source BF accepts,
	// multi-source detects.
	g := NewDigraph(4)
	g.AddEdge(2, 3, -2)
	g.AddEdge(3, 2, 1)
	if _, ok := g.BellmanFord(0); !ok {
		t.Fatal("unreachable cycle should not affect source 0")
	}
	if _, ok := g.BellmanFordMulti(); ok {
		t.Fatal("multi-source must see the cycle")
	}
}

func TestMinMeanCycleSimple(t *testing.T) {
	// Cycle 0->1->0 with weights 2 and 4: mean 3.
	g := NewDigraph(2)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 4)
	m, ok := g.MinMeanCycle()
	if !ok || math.Abs(m-3) > 1e-9 {
		t.Fatalf("min mean = %v ok=%v, want 3", m, ok)
	}
}

func TestMinMeanCyclePicksSmallest(t *testing.T) {
	// Two disjoint cycles: means 3 and 1.5; min is 1.5, max is 3.
	g := NewDigraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 0, 4)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 2, 2)
	m, ok := g.MinMeanCycle()
	if !ok || math.Abs(m-1.5) > 1e-9 {
		t.Fatalf("min mean = %v, want 1.5", m)
	}
	mx, ok := g.MaxMeanCycle()
	if !ok || math.Abs(mx-3) > 1e-9 {
		t.Fatalf("max mean = %v, want 3", mx)
	}
}

func TestMeanCycleAcyclic(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	if _, ok := g.MinMeanCycle(); ok {
		t.Fatal("acyclic graph must report no cycle")
	}
}

func TestMaxMeanCyclePaperFigure2(t *testing.T) {
	// The paper's Figure 2: 4 FFs in a loop with stage delays 3, 8, 5, 6.
	// Minimum clock period with tuning = cycle mean = 22/4 = 5.5.
	g := NewDigraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 8)
	g.AddEdge(2, 3, 5)
	g.AddEdge(3, 0, 6)
	m, ok := g.MaxMeanCycle()
	if !ok || math.Abs(m-5.5) > 1e-9 {
		t.Fatalf("max mean cycle = %v, want 5.5", m)
	}
}

func TestMaxMeanCycleAgainstEnumeration(t *testing.T) {
	// Random small graphs: enumerate all simple cycles via DFS and compare.
	r := rng.New(31, "karp")
	for trial := 0; trial < 30; trial++ {
		n := 3 + r.Intn(4)
		g := NewDigraph(n)
		var edges [][3]float64
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && r.Float64() < 0.45 {
					w := math.Round(r.Float64()*20) / 2
					g.AddEdge(u, v, w)
					edges = append(edges, [3]float64{float64(u), float64(v), w})
				}
			}
		}
		want := math.Inf(-1)
		// DFS over simple cycles.
		var path []int
		inPath := make([]bool, n)
		var sumW float64
		var dfs func(start, u int)
		dfs = func(start, u int) {
			for _, e := range edges {
				if int(e[0]) != u {
					continue
				}
				v := int(e[1])
				if v == start && len(path) > 0 {
					mean := (sumW + e[2]) / float64(len(path)+1)
					if mean > want {
						want = mean
					}
					continue
				}
				if v < start || inPath[v] {
					continue // canonical: only cycles whose min node is start
				}
				inPath[v] = true
				path = append(path, v)
				sumW += e[2]
				dfs(start, v)
				sumW -= e[2]
				path = path[:len(path)-1]
				inPath[v] = false
			}
		}
		for s := 0; s < n; s++ {
			path = path[:0]
			sumW = 0
			dfs(s, s)
		}
		got, ok := g.MaxMeanCycle()
		if math.IsInf(want, -1) {
			if ok {
				t.Fatalf("trial %d: enumeration found no cycle but Karp returned %v", trial, got)
			}
			continue
		}
		if !ok || math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: Karp %v vs enumeration %v", trial, got, want)
		}
	}
}

func TestTopoSort(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("DAG reported cyclic")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("order %v violates edge %v", order, e)
		}
	}
	g.AddEdge(3, 0, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
}

func TestComponents(t *testing.T) {
	g := NewDigraph(5)
	g.AddEdge(0, 1, 0)
	g.AddEdge(2, 3, 0)
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] || comp[4] == comp[0] || comp[4] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestSolveDifferenceFeasible(t *testing.T) {
	// x0 - x1 <= 3, x1 - x2 <= -2, x0 - x2 <= 0.
	cons := []DiffConstraint{{0, 1, 3}, {1, 2, -2}, {0, 2, 0}}
	x, ok := SolveDifference(3, cons, 0)
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	if x[0] != 0 {
		t.Fatalf("x[ref] = %v, want 0", x[0])
	}
	for _, c := range cons {
		if x[c.A]-x[c.B] > c.C+1e-9 {
			t.Fatalf("constraint violated: x%d-x%d = %v > %v", c.A, c.B, x[c.A]-x[c.B], c.C)
		}
	}
}

func TestSolveDifferenceInfeasible(t *testing.T) {
	// x0 - x1 <= -1 and x1 - x0 <= -1 cannot both hold.
	cons := []DiffConstraint{{0, 1, -1}, {1, 0, -1}}
	if _, ok := SolveDifference(2, cons, 0); ok {
		t.Fatal("infeasible system reported feasible")
	}
}

func TestSolveIntDifference(t *testing.T) {
	cons := []IntDiffConstraint{{0, 1, 3}, {1, 2, -2}, {0, 2, 0}}
	x, ok := SolveIntDifference(3, cons, 0)
	if !ok {
		t.Fatal("feasible system reported infeasible")
	}
	for _, c := range cons {
		if x[c.A]-x[c.B] > c.C {
			t.Fatalf("violated: x%d-x%d > %d", c.A, c.B, c.C)
		}
	}
	bad := []IntDiffConstraint{{0, 1, -1}, {1, 0, 0}}
	if _, ok := SolveIntDifference(2, bad, 0); ok {
		t.Fatal("infeasible int system reported feasible")
	}
}

func TestSolveDifferenceRandomized(t *testing.T) {
	// Generate feasible systems from a hidden assignment; solver must find
	// some feasible answer.
	r := rng.New(77, "diffcon")
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(6)
		hidden := make([]float64, n)
		for i := range hidden {
			hidden[i] = math.Round(r.Float64()*20 - 10)
		}
		var cons []DiffConstraint
		for k := 0; k < 3*n; k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			slack := r.Float64() * 3
			cons = append(cons, DiffConstraint{a, b, hidden[a] - hidden[b] + slack})
		}
		x, ok := SolveDifference(n, cons, 0)
		if !ok {
			t.Fatalf("trial %d: feasible-by-construction system rejected", trial)
		}
		for _, c := range cons {
			if x[c.A]-x[c.B] > c.C+1e-9 {
				t.Fatalf("trial %d: constraint violated", trial)
			}
		}
	}
}
