// Package mip implements a branch-and-bound mixed-integer programming solver
// on top of the simplex in package lp. Together they replace the commercial
// solver (Gurobi) used by the EffiTest paper for the delay-alignment model
// (Eqs. 7–14), the buffer-configuration model (Eqs. 15–18) and the hold-time
// bound model (Eqs. 19–20).
//
// The solver minimizes by convention. Branching is most-fractional with
// round-nearest-first child ordering; nodes are pruned against the incumbent
// with a small absolute tolerance.
package mip

import (
	"errors"
	"math"

	"effitest/internal/lp"
)

// Solution is the result of a MIP solve.
type Solution struct {
	Status    lp.Status
	Objective float64
	X         []float64
	Nodes     int // branch-and-bound nodes explored
}

// Problem is a mixed-integer program under construction.
type Problem struct {
	base    *lp.Problem
	integer []bool

	// NodeLimit bounds branch-and-bound nodes; 0 means the default (200k).
	NodeLimit int
	// Gap is the absolute pruning tolerance; 0 means 1e-9.
	Gap float64
}

// NewProblem returns an empty minimization MIP.
func NewProblem() *Problem {
	return &Problem{base: lp.NewProblem()}
}

// AddVar adds a continuous variable and returns its index.
func (p *Problem) AddVar(name string, lo, hi, obj float64) int {
	p.integer = append(p.integer, false)
	return p.base.AddVar(name, lo, hi, obj)
}

// AddIntVar adds an integer variable with bounds [lo, hi].
func (p *Problem) AddIntVar(name string, lo, hi, obj float64) int {
	p.integer = append(p.integer, true)
	return p.base.AddVar(name, lo, hi, obj)
}

// AddBinVar adds a 0/1 variable.
func (p *Problem) AddBinVar(name string, obj float64) int {
	return p.AddIntVar(name, 0, 1, obj)
}

// AddConstraint adds a linear constraint.
func (p *Problem) AddConstraint(name string, terms []lp.Term, sense lp.Sense, rhs float64) {
	p.base.AddConstraint(name, terms, sense, rhs)
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.base.NumVars() }

const intTol = 1e-6

type node struct {
	overrides []boundOverride
	bound     float64 // parent LP objective (lower bound)
}

type boundOverride struct {
	v      int
	lo, hi float64
}

// Solve runs branch and bound. The returned status is StatusOptimal when the
// search completed with an incumbent, StatusInfeasible when no integral
// solution exists, and StatusIterLimit when the node limit was hit (in which
// case the incumbent, if any, is returned with that status).
func (p *Problem) Solve() (*Solution, error) {
	nodeLimit := p.NodeLimit
	if nodeLimit == 0 {
		nodeLimit = 200000
	}
	gap := p.Gap
	if gap == 0 {
		gap = 1e-9
	}

	incumbentObj := math.Inf(1)
	var incumbentX []float64
	nodes := 0

	stack := []node{{}}
	for len(stack) > 0 {
		if nodes >= nodeLimit {
			if incumbentX != nil {
				return &Solution{Status: lp.StatusIterLimit, Objective: incumbentObj, X: incumbentX, Nodes: nodes}, nil
			}
			return &Solution{Status: lp.StatusIterLimit, Nodes: nodes}, nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if nd.bound > incumbentObj-gap && incumbentX != nil {
			continue // parent bound already dominated
		}
		nodes++

		sub := p.base.Clone()
		for _, o := range nd.overrides {
			sub.SetVarBounds(o.v, o.lo, o.hi)
		}
		sol, err := sub.Solve()
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			// With all-integer branching an unbounded relaxation means the
			// MIP itself is unbounded (or the model is missing bounds).
			return nil, errors.New("mip: LP relaxation unbounded; add variable bounds")
		case lp.StatusIterLimit:
			return nil, errors.New("mip: LP relaxation hit iteration limit")
		}
		if sol.Objective > incumbentObj-gap && incumbentX != nil {
			continue
		}

		branchVar, frac := p.mostFractional(sol.X)
		if branchVar < 0 {
			// Integral: round the integer coordinates exactly and accept.
			x := make([]float64, len(sol.X))
			copy(x, sol.X)
			for i, isInt := range p.integer {
				if isInt {
					x[i] = math.Round(x[i])
				}
			}
			if sol.Objective < incumbentObj {
				incumbentObj = sol.Objective
				incumbentX = x
			}
			continue
		}

		val := sol.X[branchVar]
		lo, hi := floorCeil(val)
		origLo, origHi := boundsAfter(p.base, nd.overrides, branchVar)

		down := append(cloneOverrides(nd.overrides), boundOverride{branchVar, origLo, lo})
		up := append(cloneOverrides(nd.overrides), boundOverride{branchVar, hi, origHi})
		// Explore the child nearer the LP value first (stack: push far first).
		if frac < 0.5 {
			stack = append(stack, node{up, sol.Objective}, node{down, sol.Objective})
		} else {
			stack = append(stack, node{down, sol.Objective}, node{up, sol.Objective})
		}
	}

	if incumbentX == nil {
		return &Solution{Status: lp.StatusInfeasible, Nodes: nodes}, nil
	}
	return &Solution{Status: lp.StatusOptimal, Objective: incumbentObj, X: incumbentX, Nodes: nodes}, nil
}

// mostFractional returns the integer variable whose value is farthest from
// integral, or -1 if all integer variables are integral.
func (p *Problem) mostFractional(x []float64) (int, float64) {
	best, bestDist := -1, intTol
	var bestFrac float64
	for i, isInt := range p.integer {
		if !isInt {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			best, bestDist, bestFrac = i, dist, f
		}
	}
	return best, bestFrac
}

func floorCeil(v float64) (lo, hi float64) {
	f := math.Floor(v)
	if v-f < intTol { // already (nearly) integral; split around it anyway
		return f, f + 1
	}
	return f, f + 1
}

func boundsAfter(base *lp.Problem, overrides []boundOverride, v int) (lo, hi float64) {
	lo, hi = base.VarBounds(v)
	for _, o := range overrides {
		if o.v == v {
			lo, hi = o.lo, o.hi
		}
	}
	return lo, hi
}

func cloneOverrides(o []boundOverride) []boundOverride {
	out := make([]boundOverride, len(o), len(o)+1)
	copy(out, o)
	return out
}
