package mip

import (
	"math"
	"testing"

	"effitest/internal/lp"
	"effitest/internal/rng"
)

func TestKnapsackSmall(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
	// Enumerate: a+c (5w? 3+2=5<=6) value 17; b+c (6) value 20; a+b (7) infeas.
	// Optimum 20. As minimization: negate values.
	p := NewProblem()
	a := p.AddBinVar("a", -10)
	b := p.AddBinVar("b", -13)
	c := p.AddBinVar("c", -7)
	p.AddConstraint("w", []lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 4}, {Var: c, Coef: 2}}, lp.LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective+20) > 1e-6 {
		t.Fatalf("objective %v, want -20", sol.Objective)
	}
	if sol.X[a] != 0 || sol.X[b] != 1 || sol.X[c] != 1 {
		t.Fatalf("solution %v, want b,c", sol.X)
	}
}

func TestKnapsackAgainstBruteForce(t *testing.T) {
	r := rng.New(17, "knapsack")
	for trial := 0; trial < 25; trial++ {
		n := 6 + r.Intn(4)
		w := make([]float64, n)
		v := make([]float64, n)
		for i := range w {
			w[i] = 1 + float64(r.Intn(9))
			v[i] = 1 + float64(r.Intn(19))
		}
		cap := 0.0
		for _, wi := range w {
			cap += wi
		}
		cap = math.Floor(cap / 2)

		p := NewProblem()
		vars := make([]int, n)
		terms := make([]lp.Term, n)
		for i := range vars {
			vars[i] = p.AddBinVar("x", -v[i])
			terms[i] = lp.Term{Var: vars[i], Coef: w[i]}
		}
		p.AddConstraint("cap", terms, lp.LE, cap)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			wt, val := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					wt += w[i]
					val += v[i]
				}
			}
			if wt <= cap && val > best {
				best = val
			}
		}
		if math.Abs(-sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: mip %v vs brute force %v", trial, -sol.Objective, best)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x >= 2.3, x integer -> 3.
	p := NewProblem()
	x := p.AddIntVar("x", 0, 10, 1)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}}, lp.GE, 2.3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || sol.X[x] != 3 {
		t.Fatalf("got %v x=%v, want 3", sol.Status, sol.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y >= x - 2.5, y >= 2.5 - x, x integer in [0,5], y cont.
	// Best integer x is 2 or 3, giving y = 0.5.
	p := NewProblem()
	x := p.AddIntVar("x", 0, 5, 0)
	y := p.AddVar("y", 0, lp.Inf, 1)
	p.AddConstraint("c1", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: -1}}, lp.GE, -2.5)
	p.AddConstraint("c2", []lp.Term{{Var: y, Coef: 1}, {Var: x, Coef: 1}}, lp.GE, 2.5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-0.5) > 1e-6 {
		t.Fatalf("objective %v, want 0.5", sol.Objective)
	}
	if sol.X[x] != 2 && sol.X[x] != 3 {
		t.Fatalf("x = %v, want 2 or 3", sol.X[x])
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// x + y = 1.5 with both binary is infeasible.
	p := NewProblem()
	x := p.AddBinVar("x", 1)
	y := p.AddBinVar("y", 1)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.EQ, 1.5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestBigMIndicator(t *testing.T) {
	// The alignment model's big-M pattern: z binary selects which of two
	// cases holds. min eta s.t.
	//   t - c <= M z;  (t - c) - eta <= M(1-z);  -(t-c) - eta <= M z ... —
	// here a reduced sanity version: eta >= |t - c| enforced via two big-M
	// constraints and one binary.
	const M = 1e4
	c := 3.0
	p := NewProblem()
	tv := p.AddVar("t", 0, 10, 0)
	eta := p.AddVar("eta", 0, lp.Inf, 1)
	z := p.AddBinVar("z", 0)
	// If z=0: t <= c and eta >= c - t. If z=1: t >= c and eta >= t - c.
	p.AddConstraint("case0", []lp.Term{{Var: tv, Coef: 1}, {Var: z, Coef: -M}}, lp.LE, c)
	p.AddConstraint("case0eta", []lp.Term{{Var: eta, Coef: -1}, {Var: tv, Coef: -1}, {Var: z, Coef: -M}}, lp.LE, -c)
	p.AddConstraint("case1", []lp.Term{{Var: tv, Coef: -1}, {Var: z, Coef: M}}, lp.LE, M-c)
	p.AddConstraint("case1eta", []lp.Term{{Var: eta, Coef: -1}, {Var: tv, Coef: 1}, {Var: z, Coef: M}}, lp.LE, M+c)
	// Force t = 7.5, expect eta = 4.5.
	p.AddConstraint("fix", []lp.Term{{Var: tv, Coef: 1}}, lp.EQ, 7.5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || math.Abs(sol.X[eta]-4.5) > 1e-5 {
		t.Fatalf("got %v eta=%v, want 4.5", sol.Status, sol.X)
	}
}

func TestNodeLimit(t *testing.T) {
	// A MIP that needs some branching; with NodeLimit 1 we should get the
	// iteration-limit status (the root LP is fractional).
	p := NewProblem()
	x := p.AddIntVar("x", 0, 10, -1)
	y := p.AddIntVar("y", 0, 10, -1)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 3}}, lp.LE, 7.5)
	p.NodeLimit = 1
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusIterLimit {
		t.Fatalf("status %v, want iteration-limit", sol.Status)
	}
}

func TestIntegerEqualsLPWhenIntegral(t *testing.T) {
	// If the LP relaxation optimum is already integral, B&B returns it in one
	// node.
	p := NewProblem()
	x := p.AddIntVar("x", 0, 4, -1)
	p.AddConstraint("c", []lp.Term{{Var: x, Coef: 1}}, lp.LE, 3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.StatusOptimal || sol.X[x] != 3 || sol.Nodes != 1 {
		t.Fatalf("got %v x=%v nodes=%d", sol.Status, sol.X, sol.Nodes)
	}
}

func TestGeneralIntegerAgainstEnumeration(t *testing.T) {
	// Random 2-var integer programs cross-checked against full enumeration.
	r := rng.New(23, "ip2")
	for trial := 0; trial < 40; trial++ {
		ub := 8.0
		c1 := float64(r.Intn(11) - 5)
		c2 := float64(r.Intn(11) - 5)
		a1 := 1 + r.Float64()*3
		a2 := 1 + r.Float64()*3
		rhs := 5 + r.Float64()*15

		p := NewProblem()
		x := p.AddIntVar("x", 0, ub, c1)
		y := p.AddIntVar("y", 0, ub, c2)
		p.AddConstraint("c", []lp.Term{{Var: x, Coef: a1}, {Var: y, Coef: a2}}, lp.LE, rhs)
		sol, err := p.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: %v", trial, sol.Status)
		}
		best := math.Inf(1)
		for xi := 0.0; xi <= ub; xi++ {
			for yi := 0.0; yi <= ub; yi++ {
				if a1*xi+a2*yi <= rhs+1e-9 {
					if v := c1*xi + c2*yi; v < best {
						best = v
					}
				}
			}
		}
		if math.Abs(best-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: mip %v vs enumeration %v", trial, sol.Objective, best)
		}
	}
}
