package conformance

import (
	"fmt"
	"math"

	"effitest/internal/exp"
)

// BandCheck compares one measured metric against the paper's published
// value within an absolute band. Bands are deliberately wide: the
// conformance scenarios run the experiment harness in reduced-sample mode
// (tens of chips instead of the paper's 10 000), so Monte-Carlo
// quantization dominates; the bands catch a broken pipeline, not a 0.1 %
// drift (the golden corpus does that).
type BandCheck struct {
	Metric   string
	Measured float64
	Paper    float64
	Band     float64
}

// OK reports whether the measured value falls inside paper±band.
func (b BandCheck) OK() bool {
	return !math.IsNaN(b.Measured) && math.Abs(b.Measured-b.Paper) <= b.Band
}

// String renders one pass/fail row.
func (b BandCheck) String() string {
	status := "ok"
	if !b.OK() {
		status = "FAIL"
	}
	return fmt.Sprintf("%-22s %10.2f %10.2f   ±%-7.2f %s", b.Metric, b.Measured, b.Paper, b.Band, status)
}

// PaperBands returns the published-value checks applicable to a snapshot
// (experiment scenarios only; pipeline snapshots have no paper analogue and
// yield an empty slice).
func PaperBands(s *Snapshot) []BandCheck {
	circ := s.Scenario.Circuit
	switch {
	case s.Binning != nil:
		// Clock binning is exact bookkeeping over the pipeline: the one
		// paper-level fact to pin is mass conservation — every chip lands in
		// exactly one bin or the unbinned bucket.
		mass := s.Binning.Unbinned
		for _, c := range s.Binning.Counts {
			mass += c
		}
		return []BandCheck{
			{Metric: "binning.mass(chips)", Measured: float64(mass), Paper: float64(s.Scenario.Chips), Band: 0},
		}
	case s.Aging != nil:
		// Aged silicon is slower silicon: at a fixed test period, drifting
		// every delay up must never raise yield. A small band absorbs
		// hold-limited edge cases on tiny sweep populations.
		if len(s.Aging.Points) < 2 {
			return nil
		}
		first, last := s.Aging.Points[0], s.Aging.Points[len(s.Aging.Points)-1]
		checks := []BandCheck{
			// In-band check that the curve stays a probability.
			{Metric: "aging.yield(dmax)", Measured: last.Yield, Paper: 0.5, Band: 0.5},
		}
		if last.Yield > first.Yield+0.07 {
			// Emitted as an always-fail row (negative band), mirroring the
			// fig8 ordering checks.
			checks = append(checks, BandCheck{Metric: "aging.yield!increasing", Measured: last.Yield, Paper: first.Yield, Band: -1})
		}
		return checks
	case s.Table1 != nil:
		p, ok := exp.PaperTable1[circ]
		if !ok {
			return nil
		}
		return []BandCheck{
			// Iteration-reduction ratios are the paper's headline numbers and
			// stable even at 4 chips; the per-path costs are bounded by the
			// binary-search depth.
			{Metric: "table1.ra(%)", Measured: s.Table1.RA, Paper: p.RA, Band: 4},
			{Metric: "table1.rv(%)", Measured: s.Table1.RV, Paper: p.RV, Band: 20},
			{Metric: "table1.tpv(iters)", Measured: s.Table1.TPV, Paper: p.TPV, Band: 1.5},
		}
	case s.Table2 != nil:
		p, ok := exp.PaperTable2[circ]
		if !ok {
			return nil
		}
		// 48-chip yields quantize at ≈2.1 %; allow several sigma of MC noise.
		return []BandCheck{
			{Metric: "table2.t1yt(%)", Measured: s.Table2.T1YT, Paper: p.T1YT, Band: 15},
			{Metric: "table2.t2yt(%)", Measured: s.Table2.T2YT, Paper: p.T2YT, Band: 12},
			{Metric: "table2.t1base(%)", Measured: s.Table2.T1NoBuffer, Paper: exp.PaperBaseYieldT1, Band: 15},
			{Metric: "table2.t2base(%)", Measured: s.Table2.T2NoBuffer, Paper: exp.PaperBaseYieldT2, Band: 12},
		}
	case s.Fig8 != nil:
		// Figure 8 publishes per-circuit bars; the robust cross-circuit
		// facts are the binary-search depth and the strict ordering
		// path-wise > multiplex ≥ aligned.
		checks := []BandCheck{
			{Metric: "fig8.pathwise(iters)", Measured: s.Fig8.Pathwise, Paper: 9, Band: 2},
		}
		// Ordering violations are emitted as checks that always fail (a
		// negative band can never contain the difference, even when the two
		// sides are equal).
		if s.Fig8.Multiplex >= s.Fig8.Pathwise {
			checks = append(checks, BandCheck{Metric: "fig8.mux<pathwise", Measured: s.Fig8.Multiplex, Paper: s.Fig8.Pathwise, Band: -1})
		}
		if s.Fig8.Proposed > s.Fig8.Multiplex {
			checks = append(checks, BandCheck{Metric: "fig8.aligned<=mux", Measured: s.Fig8.Proposed, Paper: s.Fig8.Multiplex, Band: -1})
		}
		return checks
	default:
		return nil
	}
}
