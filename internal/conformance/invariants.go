package conformance

import (
	"fmt"
	"math"

	"effitest/internal/core"
)

// latticeSlack absorbs the float error of reconstructing a lattice point
// (Lo + k·step) when checking that configured buffer values are quantized.
const latticeSlack = 1e-9

// PlanViolations checks the structural guarantees of the offline plan:
//
//   - batches contain only conflict-free paths: no two paths in a batch
//     share a launching or capturing flip-flop, and no ATPG-exclusive pair
//     is ever co-scheduled (§3.2);
//   - batch sizes respect Config.MaxBatch;
//   - every batched path is a tested path, and tested paths are unique and
//     in range.
//
// It returns one human-readable string per violation; an empty slice means
// the plan conforms.
func PlanViolations(pl *core.Plan) []string {
	var v []string
	c := pl.Circuit
	excl := make(map[[2]int]bool, 2*len(c.Exclusive))
	for _, e := range c.Exclusive {
		excl[[2]int{e[0], e[1]}] = true
		excl[[2]int{e[1], e[0]}] = true
	}
	tested := make(map[int]bool, len(pl.Tested))
	for _, p := range pl.Tested {
		if p < 0 || p >= c.NumPaths() {
			v = append(v, fmt.Sprintf("tested path %d out of range [0,%d)", p, c.NumPaths()))
			continue
		}
		if tested[p] {
			v = append(v, fmt.Sprintf("path %d tested twice", p))
		}
		tested[p] = true
	}
	inBatch := make(map[int]int)
	for bi, batch := range pl.Batches {
		if pl.Cfg.MaxBatch > 0 && len(batch) > pl.Cfg.MaxBatch {
			v = append(v, fmt.Sprintf("batch %d has %d paths, cap is %d", bi, len(batch), pl.Cfg.MaxBatch))
		}
		sources := make(map[int]int, len(batch))
		sinks := make(map[int]int, len(batch))
		for _, p := range batch {
			if p < 0 || p >= c.NumPaths() {
				v = append(v, fmt.Sprintf("batch %d contains out-of-range path %d", bi, p))
				continue
			}
			if !tested[p] {
				v = append(v, fmt.Sprintf("batch %d contains untested path %d", bi, p))
			}
			if prev, dup := inBatch[p]; dup {
				v = append(v, fmt.Sprintf("path %d in batches %d and %d", p, prev, bi))
			}
			inBatch[p] = bi
			pt := &c.Paths[p]
			if q, clash := sources[pt.From]; clash {
				v = append(v, fmt.Sprintf("batch %d: paths %d and %d share source FF %d", bi, q, p, pt.From))
			}
			if q, clash := sinks[pt.To]; clash {
				v = append(v, fmt.Sprintf("batch %d: paths %d and %d share sink FF %d", bi, q, p, pt.To))
			}
			sources[pt.From], sinks[pt.To] = p, p
			for _, q := range batch {
				if q < p && excl[[2]int{p, q}] {
					v = append(v, fmt.Sprintf("batch %d: exclusive pair (%d,%d) co-scheduled", bi, q, p))
				}
			}
		}
	}
	return v
}

// OutcomeViolations checks the per-chip guarantees of the online flow:
//
//   - configured buffer values stay inside the circuit's skew.Buffers
//     ranges, on the discrete lattice, and are zero on unbuffered
//     flip-flops (Eqs. 15–18's feasible set);
//   - every tested path's final delay window is narrower than ε
//     (Procedure 2's termination guarantee);
//   - all windows are well-formed (Lo ≤ Hi, finite).
func OutcomeViolations(pl *core.Plan, out *core.ChipOutcome) []string {
	var v []string
	c := pl.Circuit
	if len(out.X) != c.NumFF {
		v = append(v, fmt.Sprintf("configuration has %d values for %d FFs", len(out.X), c.NumFF))
		return v
	}
	for i, x := range out.X {
		if !c.Buf.Buffered[i] {
			if x != 0 {
				v = append(v, fmt.Sprintf("unbuffered FF %d tuned to %g", i, x))
			}
			continue
		}
		if !out.Configured {
			continue
		}
		if x < c.Buf.Lo[i]-latticeSlack || x > c.Buf.Hi[i]+latticeSlack {
			v = append(v, fmt.Sprintf("FF %d value %g outside range [%g,%g]", i, x, c.Buf.Lo[i], c.Buf.Hi[i]))
		}
		if q := c.Buf.Quantize(i, x); math.Abs(q-x) > latticeSlack {
			v = append(v, fmt.Sprintf("FF %d value %g off lattice (nearest %g)", i, x, q))
		}
	}
	if out.Bounds != nil {
		for _, p := range pl.Tested {
			if w := out.Bounds.Width(p); !(w < pl.Cfg.Eps) {
				v = append(v, fmt.Sprintf("tested path %d window %g not below eps %g", p, w, pl.Cfg.Eps))
			}
		}
		for p := range out.Bounds.Lo {
			lo, hi := out.Bounds.Lo[p], out.Bounds.Hi[p]
			if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo > hi {
				v = append(v, fmt.Sprintf("path %d window [%g,%g] malformed", p, lo, hi))
			}
		}
	}
	if out.Iterations < 0 || out.ScanBits < 0 {
		v = append(v, fmt.Sprintf("negative tester accounting: iters=%d scanBits=%d", out.Iterations, out.ScanBits))
	}
	return v
}
