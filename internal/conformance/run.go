package conformance

import (
	"context"
	"fmt"
	"math"

	"effitest"
	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/exp"
	"effitest/internal/tester"
	"effitest/workload"
)

// PipelineResult is the full output of a pipeline scenario: the snapshot
// plus the live objects, so invariant checks and metamorphic tests can
// inspect the plan and raw outcomes without re-running anything.
type PipelineResult struct {
	Circuit *circuit.Circuit
	Engine  *effitest.Engine
	Chips   []*tester.Chip
	Outs    []*core.ChipOutcome
	Snap    *Snapshot
}

// Config builds the scenario's flow configuration over the paper defaults.
func (s Scenario) Config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Eps = s.Eps
	cfg.AlignMode = s.Align
	return cfg
}

func (s Scenario) meta() Meta {
	return Meta{
		Name:     s.Name(),
		Kind:     string(s.Kind),
		Circuit:  s.circuitName(),
		Align:    s.Align.String(),
		Eps:      s.Eps,
		Seed:     s.Seed,
		GenSeed:  s.GenSeed,
		ChipSeed: s.ChipSeed,
		Chips:    s.Chips,
	}
}

// Run executes the scenario and returns its canonical snapshot.
func Run(ctx context.Context, sc Scenario) (*Snapshot, error) {
	switch sc.Kind {
	case KindPipeline, KindBinning:
		res, err := RunPipeline(ctx, sc)
		if err != nil {
			return nil, err
		}
		return res.Snap, nil
	case KindAging:
		return runAging(ctx, sc)
	}
	return runExp(ctx, sc)
}

// RunPipeline executes a pipeline scenario end to end: generate the
// circuit, prepare the engine (offline flow + period calibration), run the
// chip fleet through Engine.RunChips, and aggregate.
func RunPipeline(ctx context.Context, sc Scenario) (*PipelineResult, error) {
	if sc.Kind != KindPipeline && sc.Kind != KindBinning {
		return nil, fmt.Errorf("conformance: scenario %s is not a pipeline scenario", sc.Name())
	}
	p, err := sc.Profile()
	if err != nil {
		return nil, err
	}
	c, err := circuit.Generate(p, sc.GenSeed)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: generate: %w", sc.Name(), err)
	}
	opts := []effitest.Option{
		effitest.WithConfig(sc.Config()),
		effitest.WithPeriodQuantile(sc.Quantile, sc.CalibChips),
	}
	if sc.PlanCache != "" {
		opts = append(opts, effitest.WithPlanCache(sc.PlanCache))
	}
	if sc.Backend != nil {
		opts = append(opts, effitest.WithBackend(sc.Backend))
	}
	if sc.Observer != nil {
		opts = append(opts, effitest.WithObserver(sc.Observer))
	}
	eng, err := effitest.NewCtx(ctx, c, opts...)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: engine: %w", sc.Name(), err)
	}
	chips, err := eng.SampleChips(ctx, sc.ChipSeed, sc.Chips)
	if err != nil {
		return nil, err
	}
	if sc.Drift != 0 {
		// Aging: scale every sampled chip's realized delays by (1+drift)
		// after sampling, exactly as the fleet layer does, so conformance
		// and campaign numbers agree.
		chips = workload.ApplyDriftAll(chips, sc.Drift)
	}
	outs := make([]*core.ChipOutcome, 0, len(chips))
	for r := range eng.RunChips(ctx, chips) {
		if r.Err != nil {
			return nil, fmt.Errorf("conformance: %s: chip %d: %w", sc.Name(), r.Index, r.Err)
		}
		outs = append(outs, r.Outcome)
	}

	plan := eng.Plan()
	ps := &PipelineSnap{
		NumPaths:   c.NumPaths(),
		NumTested:  plan.NumTested(),
		NumFilled:  len(plan.Filled),
		NumBatches: len(plan.Batches),
		Period:     eng.Period(),
	}
	for _, b := range plan.Batches {
		ps.MaxBatch = max(ps.MaxBatch, len(b))
	}
	var passed, configured, sumIters int
	var sumScan int64
	for _, out := range outs {
		cs := ChipSnap{
			Iterations: out.Iterations,
			ScanBits:   out.ScanBits,
			Configured: out.Configured,
			Passed:     out.Passed,
			Xi:         out.Xi,
		}
		for _, x := range out.X {
			cs.XSum += x
			cs.XAbsSum += math.Abs(x)
		}
		for i := range out.Bounds.Lo {
			cs.BoundsLo += out.Bounds.Lo[i]
			cs.BoundsHi += out.Bounds.Hi[i]
		}
		ps.Chips = append(ps.Chips, cs)
		sumIters += out.Iterations
		sumScan += out.ScanBits
		if out.Configured {
			configured++
		}
		if out.Passed {
			passed++
		}
	}
	n := float64(len(outs))
	if n > 0 {
		ps.Yield = float64(passed) / n
		ps.AvgIterations = float64(sumIters) / n
		ps.AvgScanBits = float64(sumScan) / n
		ps.ConfiguredFrac = float64(configured) / n
	}
	snap := &Snapshot{Format: SnapshotFormat, Scenario: sc.meta(), Pipeline: ps}
	if sc.Kind == KindBinning {
		snap.Binning = binningSnap(sc.BinEdges, chips, outs)
	}
	return &PipelineResult{
		Circuit: c,
		Engine:  eng,
		Chips:   chips,
		Outs:    outs,
		Snap:    snap,
	}, nil
}

// binningSnap classifies every chip of a finished run into the period bins:
// configured chips by their post-tuning achievable period, unconfigured
// chips as unbinned — the same fold the fleet layer aggregates on the wire.
func binningSnap(edges []float64, chips []*tester.Chip, outs []*core.ChipOutcome) *BinningSnap {
	agg := workload.NewBinAgg(edges)
	for i, out := range outs {
		if out.Configured {
			agg.Observe(workload.AchievedPeriod(chips[i], out.X))
		} else {
			agg.ObserveUnbinned()
		}
	}
	return &BinningSnap{
		Edges:    append([]float64(nil), edges...),
		Counts:   append([]int(nil), agg.Counts...),
		Unbinned: agg.Unbinned,
	}
}

// runAging sweeps the drift axis: one pipeline run per drift point over the
// same sampled population, snapshotting the yield-vs-drift curve.
func runAging(ctx context.Context, sc Scenario) (*Snapshot, error) {
	if sc.Kind != KindAging {
		return nil, fmt.Errorf("conformance: scenario %s is not an aging scenario", sc.Name())
	}
	snap := &Snapshot{Format: SnapshotFormat, Scenario: sc.meta(), Aging: &AgingSnap{}}
	for _, d := range sc.Drifts {
		point := sc
		point.Kind = KindPipeline
		point.Drift = d
		res, err := RunPipeline(ctx, point)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: drift %g: %w", sc.Name(), d, err)
		}
		ps := res.Snap.Pipeline
		snap.Aging.Points = append(snap.Aging.Points, AgingPointSnap{
			Drift:          d,
			Yield:          ps.Yield,
			ConfiguredFrac: ps.ConfiguredFrac,
			AvgIterations:  ps.AvgIterations,
		})
	}
	return snap, nil
}

// ReducedExpConfig is the experiment-harness configuration used by the
// conformance scenarios: the same code paths as the paper evaluation, with
// chip counts shrunk from the paper's 10 000 to seconds-scale.
func ReducedExpConfig(sc Scenario) exp.Config {
	cfg := exp.DefaultConfig()
	cfg.Seed = sc.Seed
	cfg.CostChips = 4
	cfg.YieldChips = 48
	cfg.Fig8Chips = 1
	cfg.QuantileChips = 200
	cfg.Core = sc.Config()
	return cfg
}

func runExp(ctx context.Context, sc Scenario) (*Snapshot, error) {
	p, err := sc.Profile()
	if err != nil {
		return nil, err
	}
	cfg := ReducedExpConfig(sc)
	snap := &Snapshot{Format: SnapshotFormat, Scenario: sc.meta()}
	switch sc.Kind {
	case KindTable1:
		row, err := exp.Table1(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		snap.Table1 = &Table1Snap{
			NPT: row.NPT, TA: row.TA, TV: row.TV, TPA: row.TPA, TPV: row.TPV,
			RA: row.RA, RV: row.RV, ConfiguredFraction: row.ConfiguredFraction,
		}
	case KindTable2:
		row, err := exp.Table2(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		snap.Table2 = &Table2Snap{
			T1: row.T1, T2: row.T2,
			T1YI: row.T1YI, T1YT: row.T1YT, T2YI: row.T2YI, T2YT: row.T2YT,
			T1NoBuffer: row.T1NoBuffer, T2NoBuffer: row.T2NoBuffer,
		}
	case KindFig7:
		row, err := exp.Fig7(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		snap.Fig7 = &Fig7Snap{NoBuffer: row.NoBuffer, Proposed: row.Proposed, Ideal: row.Ideal}
	case KindFig8:
		row, err := exp.Fig8(ctx, p, cfg)
		if err != nil {
			return nil, err
		}
		snap.Fig8 = &Fig8Snap{Pathwise: row.Pathwise, Multiplex: row.Multiplex, Proposed: row.Proposed}
	default:
		return nil, fmt.Errorf("conformance: unknown scenario kind %q", sc.Kind)
	}
	return snap, nil
}
