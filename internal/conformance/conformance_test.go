package conformance

import (
	"context"
	"path/filepath"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/core"
)

func TestToleranceOK(t *testing.T) {
	cases := []struct {
		name      string
		tol       Tolerance
		got, want float64
		ok        bool
	}{
		{"exact-equal", TolExact, 1.5, 1.5, true},
		{"exact-differs", TolExact, 1.5, 1.5000001, false},
		{"abs-within", Tolerance{Abs: 1e-6}, 1.0000005, 1.0, true},
		{"abs-outside", Tolerance{Abs: 1e-6}, 1.00001, 1.0, false},
		{"rel-within", Tolerance{Rel: 1e-3}, 1000.5, 1000.0, true},
		{"rel-outside", Tolerance{Rel: 1e-3}, 1002, 1000.0, false},
		{"rel-zero-want", Tolerance{Rel: 1e-3}, 1e-12, 0, false},
		{"abs-covers-zero-want", Tolerance{Abs: 1e-9, Rel: 1e-3}, 1e-12, 0, true},
		{"nan-got", TolFloat, 0, 1, false},
	}
	for _, tc := range cases {
		if got := tc.tol.ok(tc.got, tc.want); got != tc.ok {
			t.Errorf("%s: ok(%v, %v) = %v, want %v", tc.name, tc.got, tc.want, got, tc.ok)
		}
	}
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Format: SnapshotFormat,
		Scenario: Meta{
			Name: "pipeline_x_heuristic_eps0.002_seed1", Kind: "pipeline",
			Circuit: "x", Align: "heuristic", Eps: 0.002, Seed: 1, GenSeed: 1,
			ChipSeed: 101, Chips: 2,
		},
		Pipeline: &PipelineSnap{
			NumPaths: 10, NumTested: 4, NumFilled: 1, NumBatches: 2, MaxBatch: 3,
			Period: 1.25, Yield: 0.5, AvgIterations: 12, AvgScanBits: 64, ConfiguredFrac: 1,
			Chips: []ChipSnap{
				{Iterations: 11, ScanBits: 60, Configured: true, Passed: true, Xi: 0.01, XSum: 0.2, XAbsSum: 0.3, BoundsLo: 9, BoundsHi: 11},
				{Iterations: 13, ScanBits: 68, Configured: true, Passed: false, Xi: 0.02, XSum: -0.1, XAbsSum: 0.4, BoundsLo: 8, BoundsHi: 12},
			},
		},
	}
}

func TestDiffDetectsPerturbations(t *testing.T) {
	base := sampleSnapshot()
	if diffs := Diff(sampleSnapshot(), base); len(diffs) != 0 {
		t.Fatalf("identical snapshots diff: %v", diffs)
	}

	perturb := []struct {
		field string
		apply func(*Snapshot)
	}{
		{"pipeline.numTested", func(s *Snapshot) { s.Pipeline.NumTested++ }},
		{"pipeline.period", func(s *Snapshot) { s.Pipeline.Period += 1e-6 }},
		{"pipeline.yield", func(s *Snapshot) { s.Pipeline.Yield = 1 }},
		{"pipeline.chips[1].iterations", func(s *Snapshot) { s.Pipeline.Chips[1].Iterations = 99 }},
		{"pipeline.chips[0].passed", func(s *Snapshot) { s.Pipeline.Chips[0].Passed = false }},
		{"pipeline.chips[0].xSum", func(s *Snapshot) { s.Pipeline.Chips[0].XSum += 1e-3 }},
	}
	for _, p := range perturb {
		got := sampleSnapshot()
		p.apply(got)
		diffs := Diff(got, base)
		if len(diffs) != 1 {
			t.Fatalf("%s: want exactly 1 diff, got %d: %v", p.field, len(diffs), diffs)
		}
		if diffs[0].Field != p.field {
			t.Errorf("perturbing %s reported as %s", p.field, diffs[0].Field)
		}
		if FormatDiffs(diffs) == "" {
			t.Errorf("%s: empty rendering", p.field)
		}
	}

	// Within-tolerance float noise must NOT diff.
	got := sampleSnapshot()
	got.Pipeline.Period += 1e-12
	got.Pipeline.Chips[0].XSum += 1e-10
	if diffs := Diff(got, base); len(diffs) != 0 {
		t.Fatalf("sub-tolerance noise reported as regression: %v", diffs)
	}

	// A missing section is one diff, not a panic.
	got = sampleSnapshot()
	got.Pipeline = nil
	if diffs := Diff(got, base); len(diffs) != 1 || diffs[0].Field != "pipeline" {
		t.Fatalf("missing section: %v", diffs)
	}

	// Identity mismatch short-circuits field comparison.
	got = sampleSnapshot()
	got.Scenario.Eps = 0.004
	got.Pipeline.Yield = 0
	if diffs := Diff(got, base); len(diffs) != 1 || diffs[0].Field != "scenario.eps" {
		t.Fatalf("identity mismatch: %v", diffs)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	path := filepath.Join(t.TempDir(), "golden", "x.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := Diff(back, s); len(diffs) != 0 {
		t.Fatalf("JSON round trip not lossless: %v", diffs)
	}
}

func TestMatrixNamesUniqueAndCovered(t *testing.T) {
	matrix := DefaultMatrix()
	seen := map[string]bool{}
	circuits := map[string]bool{}
	aligns := map[string]bool{}
	seeds := map[int64]bool{}
	short := 0
	for _, sc := range matrix {
		name := sc.Name()
		if seen[name] {
			t.Fatalf("duplicate scenario name %s", name)
		}
		seen[name] = true
		if _, err := sc.Profile(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Kind == KindPipeline {
			circuits[sc.circuitName()] = true
			aligns[sc.Align.String()] = true
			seeds[sc.Seed] = true
		}
		if !sc.Heavy {
			short++
		}
	}
	// The acceptance floor of the golden corpus: ≥ 3 circuits × 2 alignment
	// modes × 2 seeds.
	if len(circuits) < 3 || len(aligns) < 2 || len(seeds) < 2 {
		t.Fatalf("matrix too small: %d circuits × %d aligns × %d seeds", len(circuits), len(aligns), len(seeds))
	}
	if short == 0 {
		t.Fatal("no short-mode scenario: -short would skip the whole corpus")
	}
}

// TestExclusivePairsNeverShareBatch drives FormBatches with a dense
// exclusive set (25× the default generator fraction) and asserts the §3.2
// co-scheduling guarantee via PlanViolations.
func TestExclusivePairsNeverShareBatch(t *testing.T) {
	gen := circuit.DefaultGenConfig()
	gen.ExclusiveFrac = 0.5
	c, err := circuit.GenerateWith(circuit.TinyProfile("excl", 48, 480, 5, 64), 3, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Exclusive) < 10 {
		t.Fatalf("generator emitted only %d exclusive pairs", len(c.Exclusive))
	}
	cfg := core.DefaultConfig()
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}
	batches := core.FormBatches(c, all, cfg)
	plan := &core.Plan{Circuit: c, Cfg: cfg, Tested: all, Batches: batches}
	if v := PlanViolations(plan); len(v) > 0 {
		t.Fatalf("batching violates invariants:\n%s", v)
	}
	// Sanity: the checker itself must catch a deliberately bad batch.
	e := c.Exclusive[0]
	plan.Batches = append(batches, []int{e[0], e[1]})
	if v := PlanViolations(plan); len(v) == 0 {
		t.Fatal("checker missed a co-scheduled exclusive pair")
	}
}

// TestOutcomeCheckerCatchesTampering ensures OutcomeViolations detects a
// deliberately corrupted configuration — the checks are live, not vacuous.
func TestOutcomeCheckerCatchesTampering(t *testing.T) {
	sc := Scenario{
		Kind: KindPipeline, Custom: tiny64(), GenSeed: 1,
		Align: core.AlignHeuristic, Eps: 0.002, Seed: 1,
		Chips: 2, ChipSeed: 101, Quantile: 0.8413, CalibChips: 100,
	}
	res, err := RunPipeline(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Engine.Plan()
	for i, out := range res.Outs {
		if v := OutcomeViolations(plan, out); len(v) > 0 {
			t.Fatalf("chip %d: unexpected violations: %v", i, v)
		}
	}
	out := res.Outs[0]
	if !out.Configured {
		t.Skip("first chip not configured; tampering check needs a configuration")
	}
	bad := *out
	bad.X = append([]float64{}, out.X...)
	for i, buffered := range res.Circuit.Buf.Buffered {
		if buffered {
			bad.X[i] = res.Circuit.Buf.Hi[i] + 1
			break
		}
	}
	if v := OutcomeViolations(plan, &bad); len(v) == 0 {
		t.Fatal("checker missed an out-of-range buffer value")
	}
}
