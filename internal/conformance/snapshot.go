package conformance

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
)

// SnapshotFormat versions the snapshot layout. Bump it when fields are
// added, removed or change meaning; stale goldens then fail with a single
// format diff instead of a wall of field noise.
const SnapshotFormat = 1

// Snapshot is the canonical, serializable result of one scenario run. All
// wall-clock durations are deliberately excluded: everything recorded here
// is deterministic in the scenario parameters.
type Snapshot struct {
	Format   int           `json:"format"`
	Scenario Meta          `json:"scenario"`
	Pipeline *PipelineSnap `json:"pipeline,omitempty"`
	Binning  *BinningSnap  `json:"binning,omitempty"`
	Aging    *AgingSnap    `json:"aging,omitempty"`
	Table1   *Table1Snap   `json:"table1,omitempty"`
	Table2   *Table2Snap   `json:"table2,omitempty"`
	Fig7     *Fig7Snap     `json:"fig7,omitempty"`
	Fig8     *Fig8Snap     `json:"fig8,omitempty"`
}

// Meta records the scenario axes, so a golden file is self-describing.
type Meta struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Circuit  string  `json:"circuit"`
	Align    string  `json:"align"`
	Eps      float64 `json:"eps"`
	Seed     int64   `json:"seed"`
	GenSeed  int64   `json:"genSeed"`
	ChipSeed int64   `json:"chipSeed,omitempty"`
	Chips    int     `json:"chips,omitempty"`
}

// PipelineSnap captures the offline plan shape, the calibrated period, the
// aggregate fleet statistics and a per-chip digest.
type PipelineSnap struct {
	NumPaths   int `json:"numPaths"`
	NumTested  int `json:"numTested"`
	NumFilled  int `json:"numFilled"`
	NumBatches int `json:"numBatches"`
	MaxBatch   int `json:"maxBatch"`

	Period float64 `json:"period"`

	Yield          float64 `json:"yield"`
	AvgIterations  float64 `json:"avgIterations"`
	AvgScanBits    float64 `json:"avgScanBits"`
	ConfiguredFrac float64 `json:"configuredFrac"`

	Chips []ChipSnap `json:"chips"`
}

// ChipSnap digests one chip outcome: exact tester accounting plus float
// checksums of the configured buffer values and final delay windows.
type ChipSnap struct {
	Iterations int     `json:"iterations"`
	ScanBits   int64   `json:"scanBits"`
	Configured bool    `json:"configured"`
	Passed     bool    `json:"passed"`
	Xi         float64 `json:"xi"`
	XSum       float64 `json:"xSum"`
	XAbsSum    float64 `json:"xAbsSum"`
	BoundsLo   float64 `json:"boundsLoSum"`
	BoundsHi   float64 `json:"boundsHiSum"`
}

// BinningSnap pins the clock-binning histogram of a KindBinning scenario:
// exact integer chip counts per period bin, plus the unbinned bucket.
type BinningSnap struct {
	Edges    []float64 `json:"edges"`
	Counts   []int     `json:"counts"`
	Unbinned int       `json:"unbinned"`
}

// AgingSnap pins the yield-vs-drift curve of a KindAging scenario, one
// point per swept drift value.
type AgingSnap struct {
	Points []AgingPointSnap `json:"points"`
}

// AgingPointSnap is one aging sweep point.
type AgingPointSnap struct {
	Drift          float64 `json:"drift"`
	Yield          float64 `json:"yield"`
	ConfiguredFrac float64 `json:"configuredFrac"`
	AvgIterations  float64 `json:"avgIterations"`
}

// Table1Snap mirrors the deterministic columns of exp.Table1Row (the
// runtime columns Tp/Tt/Ts are wall-clock and excluded).
type Table1Snap struct {
	NPT                int     `json:"npt"`
	TA                 float64 `json:"ta"`
	TV                 float64 `json:"tv"`
	TPA                float64 `json:"tpa"`
	TPV                float64 `json:"tpv"`
	RA                 float64 `json:"ra"`
	RV                 float64 `json:"rv"`
	ConfiguredFraction float64 `json:"configuredFraction"`
}

// Table2Snap mirrors exp.Table2Row.
type Table2Snap struct {
	T1         float64 `json:"t1"`
	T2         float64 `json:"t2"`
	T1YI       float64 `json:"t1yi"`
	T1YT       float64 `json:"t1yt"`
	T2YI       float64 `json:"t2yi"`
	T2YT       float64 `json:"t2yt"`
	T1NoBuffer float64 `json:"t1NoBuffer"`
	T2NoBuffer float64 `json:"t2NoBuffer"`
}

// Fig7Snap mirrors exp.Fig7Row.
type Fig7Snap struct {
	NoBuffer float64 `json:"noBuffer"`
	Proposed float64 `json:"proposed"`
	Ideal    float64 `json:"ideal"`
}

// Fig8Snap mirrors exp.Fig8Row.
type Fig8Snap struct {
	Pathwise  float64 `json:"pathwise"`
	Multiplex float64 `json:"multiplex"`
	Proposed  float64 `json:"proposed"`
}

// GoldenPath returns the golden file for a scenario under dir.
func GoldenPath(dir string, sc Scenario) string {
	return filepath.Join(dir, sc.Name()+".json")
}

// WriteFile serializes the snapshot canonically (indented JSON, fixed field
// order, shortest float representation) so regenerated goldens diff cleanly
// in version control.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSnapshot reads a golden file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", path, err)
	}
	return &s, nil
}

// Tolerance accepts got≈want when |got-want| ≤ Abs, or when the relative
// error |got-want|/|want| ≤ Rel (want ≠ 0). The zero Tolerance is exact.
type Tolerance struct {
	Abs, Rel float64
}

func (t Tolerance) ok(got, want float64) bool {
	if got == want {
		return true
	}
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	d := math.Abs(got - want)
	if d <= t.Abs {
		return true
	}
	if w := math.Abs(want); w > 0 && d/w <= t.Rel {
		return true
	}
	return false
}

// Tolerance classes. The pipeline is bit-deterministic in its inputs, so
// these bands exist to absorb benign floating-point reassociation from
// refactors (e.g. vectorizing a reduction), not run-to-run noise:
//
//   - TolExact: integer counters (tester iterations, scan bits, batch
//     shapes) — any change is a behavioural change;
//   - TolFloat: single float quantities (period, ξ, yields as ratios of
//     counts);
//   - TolSum: checksums reduced over many terms, where reassociation error
//     accumulates.
var (
	TolExact = Tolerance{}
	TolFloat = Tolerance{Abs: 1e-9, Rel: 1e-9}
	TolSum   = Tolerance{Abs: 1e-7, Rel: 1e-7}
)

// FieldDiff is one field out of tolerance between a snapshot and its
// golden.
type FieldDiff struct {
	Field     string
	Got, Want string
	Delta     string
}

type differ struct {
	diffs []FieldDiff
}

func (d *differ) add(field, got, want, delta string) {
	d.diffs = append(d.diffs, FieldDiff{Field: field, Got: got, Want: want, Delta: delta})
}

func (d *differ) ints(field string, got, want int64) {
	if got != want {
		d.add(field, fmt.Sprintf("%d", got), fmt.Sprintf("%d", want), fmt.Sprintf("%+d", got-want))
	}
}

func (d *differ) bools(field string, got, want bool) {
	if got != want {
		d.add(field, fmt.Sprintf("%v", got), fmt.Sprintf("%v", want), "")
	}
}

func (d *differ) strs(field, got, want string) {
	if got != want {
		d.add(field, got, want, "")
	}
}

func (d *differ) floats(field string, got, want float64, tol Tolerance) {
	if !tol.ok(got, want) {
		d.add(field, trimFloat(got), trimFloat(want),
			fmt.Sprintf("%+g (tol abs=%g rel=%g)", got-want, tol.Abs, tol.Rel))
	}
}

// Diff compares a freshly computed snapshot against its golden and returns
// every field outside tolerance, in snapshot order. An empty result means
// the scenario conforms.
func Diff(got, want *Snapshot) []FieldDiff {
	var d differ
	d.ints("format", int64(got.Format), int64(want.Format))
	d.strs("scenario.name", got.Scenario.Name, want.Scenario.Name)
	d.strs("scenario.kind", got.Scenario.Kind, want.Scenario.Kind)
	d.strs("scenario.circuit", got.Scenario.Circuit, want.Scenario.Circuit)
	d.strs("scenario.align", got.Scenario.Align, want.Scenario.Align)
	d.floats("scenario.eps", got.Scenario.Eps, want.Scenario.Eps, TolExact)
	d.ints("scenario.seed", got.Scenario.Seed, want.Scenario.Seed)
	if len(d.diffs) > 0 {
		// Mismatched identity or format: field-level comparison would only
		// add noise.
		return d.diffs
	}
	diffSection(&d, "pipeline", got.Pipeline, want.Pipeline, diffPipeline)
	diffSection(&d, "binning", got.Binning, want.Binning, diffBinning)
	diffSection(&d, "aging", got.Aging, want.Aging, diffAging)
	diffSection(&d, "table1", got.Table1, want.Table1, diffTable1)
	diffSection(&d, "table2", got.Table2, want.Table2, diffTable2)
	diffSection(&d, "fig7", got.Fig7, want.Fig7, diffFig7)
	diffSection(&d, "fig8", got.Fig8, want.Fig8, diffFig8)
	return d.diffs
}

func diffSection[T any](d *differ, name string, got, want *T, cmp func(*differ, *T, *T)) {
	switch {
	case got == nil && want == nil:
	case got == nil:
		d.add(name, "absent", "present", "")
	case want == nil:
		d.add(name, "present", "absent", "")
	default:
		cmp(d, got, want)
	}
}

func diffPipeline(d *differ, got, want *PipelineSnap) {
	d.ints("pipeline.numPaths", int64(got.NumPaths), int64(want.NumPaths))
	d.ints("pipeline.numTested", int64(got.NumTested), int64(want.NumTested))
	d.ints("pipeline.numFilled", int64(got.NumFilled), int64(want.NumFilled))
	d.ints("pipeline.numBatches", int64(got.NumBatches), int64(want.NumBatches))
	d.ints("pipeline.maxBatch", int64(got.MaxBatch), int64(want.MaxBatch))
	d.floats("pipeline.period", got.Period, want.Period, TolFloat)
	d.floats("pipeline.yield", got.Yield, want.Yield, TolFloat)
	d.floats("pipeline.avgIterations", got.AvgIterations, want.AvgIterations, TolFloat)
	d.floats("pipeline.avgScanBits", got.AvgScanBits, want.AvgScanBits, TolFloat)
	d.floats("pipeline.configuredFrac", got.ConfiguredFrac, want.ConfiguredFrac, TolFloat)
	if len(got.Chips) != len(want.Chips) {
		d.ints("pipeline.chips.len", int64(len(got.Chips)), int64(len(want.Chips)))
		return
	}
	for i := range got.Chips {
		g, w := &got.Chips[i], &want.Chips[i]
		pre := fmt.Sprintf("pipeline.chips[%d].", i)
		d.ints(pre+"iterations", int64(g.Iterations), int64(w.Iterations))
		d.ints(pre+"scanBits", g.ScanBits, w.ScanBits)
		d.bools(pre+"configured", g.Configured, w.Configured)
		d.bools(pre+"passed", g.Passed, w.Passed)
		d.floats(pre+"xi", g.Xi, w.Xi, TolFloat)
		d.floats(pre+"xSum", g.XSum, w.XSum, TolSum)
		d.floats(pre+"xAbsSum", g.XAbsSum, w.XAbsSum, TolSum)
		d.floats(pre+"boundsLoSum", g.BoundsLo, w.BoundsLo, TolSum)
		d.floats(pre+"boundsHiSum", g.BoundsHi, w.BoundsHi, TolSum)
	}
}

func diffBinning(d *differ, got, want *BinningSnap) {
	// The histogram is integer counts over scenario-input edges: everything
	// here is exact — any change is a behavioural change.
	if len(got.Edges) != len(want.Edges) {
		d.ints("binning.edges.len", int64(len(got.Edges)), int64(len(want.Edges)))
		return
	}
	for i := range got.Edges {
		d.floats(fmt.Sprintf("binning.edges[%d]", i), got.Edges[i], want.Edges[i], TolExact)
	}
	if len(got.Counts) != len(want.Counts) {
		d.ints("binning.counts.len", int64(len(got.Counts)), int64(len(want.Counts)))
		return
	}
	for i := range got.Counts {
		d.ints(fmt.Sprintf("binning.counts[%d]", i), int64(got.Counts[i]), int64(want.Counts[i]))
	}
	d.ints("binning.unbinned", int64(got.Unbinned), int64(want.Unbinned))
}

func diffAging(d *differ, got, want *AgingSnap) {
	if len(got.Points) != len(want.Points) {
		d.ints("aging.points.len", int64(len(got.Points)), int64(len(want.Points)))
		return
	}
	for i := range got.Points {
		g, w := &got.Points[i], &want.Points[i]
		pre := fmt.Sprintf("aging.points[%d].", i)
		d.floats(pre+"drift", g.Drift, w.Drift, TolExact)
		d.floats(pre+"yield", g.Yield, w.Yield, TolFloat)
		d.floats(pre+"configuredFrac", g.ConfiguredFrac, w.ConfiguredFrac, TolFloat)
		d.floats(pre+"avgIterations", g.AvgIterations, w.AvgIterations, TolFloat)
	}
}

func diffTable1(d *differ, got, want *Table1Snap) {
	d.ints("table1.npt", int64(got.NPT), int64(want.NPT))
	d.floats("table1.ta", got.TA, want.TA, TolFloat)
	d.floats("table1.tv", got.TV, want.TV, TolFloat)
	d.floats("table1.tpa", got.TPA, want.TPA, TolFloat)
	d.floats("table1.tpv", got.TPV, want.TPV, TolFloat)
	d.floats("table1.ra", got.RA, want.RA, TolFloat)
	d.floats("table1.rv", got.RV, want.RV, TolFloat)
	d.floats("table1.configuredFraction", got.ConfiguredFraction, want.ConfiguredFraction, TolFloat)
}

func diffTable2(d *differ, got, want *Table2Snap) {
	d.floats("table2.t1", got.T1, want.T1, TolFloat)
	d.floats("table2.t2", got.T2, want.T2, TolFloat)
	d.floats("table2.t1yi", got.T1YI, want.T1YI, TolFloat)
	d.floats("table2.t1yt", got.T1YT, want.T1YT, TolFloat)
	d.floats("table2.t2yi", got.T2YI, want.T2YI, TolFloat)
	d.floats("table2.t2yt", got.T2YT, want.T2YT, TolFloat)
	d.floats("table2.t1NoBuffer", got.T1NoBuffer, want.T1NoBuffer, TolFloat)
	d.floats("table2.t2NoBuffer", got.T2NoBuffer, want.T2NoBuffer, TolFloat)
}

func diffFig7(d *differ, got, want *Fig7Snap) {
	d.floats("fig7.noBuffer", got.NoBuffer, want.NoBuffer, TolFloat)
	d.floats("fig7.proposed", got.Proposed, want.Proposed, TolFloat)
	d.floats("fig7.ideal", got.Ideal, want.Ideal, TolFloat)
}

func diffFig8(d *differ, got, want *Fig8Snap) {
	d.floats("fig8.pathwise", got.Pathwise, want.Pathwise, TolFloat)
	d.floats("fig8.multiplex", got.Multiplex, want.Multiplex, TolFloat)
	d.floats("fig8.proposed", got.Proposed, want.Proposed, TolFloat)
}

// FormatDiffs renders field diffs as an aligned, readable block — the
// failure output of both `go test` and cmd/effcheck.
func FormatDiffs(diffs []FieldDiff) string {
	if len(diffs) == 0 {
		return ""
	}
	var b strings.Builder
	wf, wg := len("FIELD"), len("GOT")
	for _, d := range diffs {
		wf = max(wf, len(d.Field))
		wg = max(wg, len(d.Got))
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %s\n", wf, "FIELD", wg, "GOT", "WANT")
	for _, d := range diffs {
		fmt.Fprintf(&b, "  %-*s  %-*s  %s", wf, d.Field, wg, d.Got, d.Want)
		if d.Delta != "" {
			fmt.Fprintf(&b, "   Δ %s", d.Delta)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
