package conformance

import "testing"

func fig8Snapshot(pathwise, multiplex, proposed float64) *Snapshot {
	return &Snapshot{
		Format:   SnapshotFormat,
		Scenario: Meta{Name: "fig8_s9234_seed1", Kind: "fig8", Circuit: "s9234"},
		Fig8:     &Fig8Snap{Pathwise: pathwise, Multiplex: multiplex, Proposed: proposed},
	}
}

func countFailed(checks []BandCheck) int {
	n := 0
	for _, c := range checks {
		if !c.OK() {
			n++
		}
	}
	return n
}

func TestPaperBandsFig8Ordering(t *testing.T) {
	// Healthy ordering: path-wise > multiplex ≥ aligned, path-wise ≈ 9.
	if n := countFailed(PaperBands(fig8Snapshot(9, 5, 3))); n != 0 {
		t.Fatalf("healthy fig8 snapshot failed %d band checks", n)
	}
	// Multiplexing degenerating to exactly per-path cost must FAIL even
	// though the two sides are equal (the strict-ordering invariant).
	if n := countFailed(PaperBands(fig8Snapshot(9, 9, 3))); n == 0 {
		t.Fatal("mux == pathwise passed the strict-ordering band")
	}
	// Alignment costing more than plain multiplexing must fail too.
	if n := countFailed(PaperBands(fig8Snapshot(9, 5, 6))); n == 0 {
		t.Fatal("aligned > mux passed the ordering band")
	}
	// Pathwise drifting off the binary-search depth must fail.
	if n := countFailed(PaperBands(fig8Snapshot(20, 5, 3))); n == 0 {
		t.Fatal("pathwise=20 passed the ±2 band around 9")
	}
}

func TestPaperBandsTable12(t *testing.T) {
	t1 := &Snapshot{
		Scenario: Meta{Kind: "table1", Circuit: "s9234"},
		Table1:   &Table1Snap{RA: 97.8, RV: 55.6, TPV: 9},
	}
	if n := countFailed(PaperBands(t1)); n != 0 {
		t.Fatalf("reduced-sample table1 row failed %d checks", n)
	}
	t1.Table1.RA = 50 // reduction collapsed: far outside any band
	if n := countFailed(PaperBands(t1)); n == 0 {
		t.Fatal("ra=50 passed the paper band")
	}
	if got := PaperBands(&Snapshot{Scenario: Meta{Kind: "table1", Circuit: "unknown"}}); got != nil {
		t.Fatal("unknown circuit should have no bands")
	}
	// Pipeline snapshots have no paper analogue.
	if got := PaperBands(sampleSnapshot()); got != nil {
		t.Fatal("pipeline snapshot should have no bands")
	}
}
