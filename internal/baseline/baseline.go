// Package baseline implements the comparison methods of the paper's
// evaluation: path-wise frequency stepping (the prior art of [2, 6, 8, 9],
// Table 1's t′a/t′v columns) and test multiplexing without delay alignment
// (Figure 8's middle case).
package baseline

import (
	"context"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/tester"
)

// Pathwise measures every given path individually by binary search between
// its μ±3σ bounds with buffers left at zero — one frequency step per
// iteration, one path at a time. It returns the total tester iterations and
// the final bounds.
func Pathwise(ctx context.Context, sess tester.Session, c *circuit.Circuit, paths []int, cfg core.Config) (int, *core.Bounds, error) {
	b := core.InitBounds(c)
	zeros := make([]float64, c.NumFF)
	iters := 0
	for _, p := range paths {
		if err := ctx.Err(); err != nil {
			return iters, b, err
		}
		guard := 0
		for b.Width(p) >= cfg.Eps {
			T := (b.Lo[p] + b.Hi[p]) / 2
			applied, pass, err := sess.Step(T, zeros, []int{p})
			if err != nil {
				return iters, b, err
			}
			iters++
			if pass[0] {
				if applied < b.Hi[p] {
					b.Hi[p] = applied
				}
			} else {
				if applied > b.Lo[p] {
					b.Lo[p] = applied
				}
			}
			if guard++; guard > 10*cfg.MaxIterPerPath {
				// Resolution-limited window; accept what we have.
				break
			}
		}
	}
	return iters, b, nil
}

// Multiplex runs batched frequency stepping over all the given paths without
// statistical prediction. With align=false the buffers stay at zero (the
// clock period is still chosen as the weighted median of range centers);
// with align=true the full §3.3 delay alignment is used. This reproduces
// Figure 8's second and third cases.
func Multiplex(ctx context.Context, sess tester.Session, c *circuit.Circuit, paths []int, lambda core.LambdaFunc, cfg core.Config, align bool) (int, *core.Bounds, error) {
	runCfg := cfg
	if align {
		if runCfg.AlignMode == core.AlignOff {
			runCfg.AlignMode = core.AlignHeuristic
		}
	} else {
		runCfg.AlignMode = core.AlignOff
	}
	b := core.InitBounds(c)
	batches := core.FormBatches(c, paths, runCfg)
	total := 0
	for _, batch := range batches {
		iters, _, err := core.RunBatchTest(ctx, sess, c, batch, b, lambda, runCfg)
		if err != nil {
			return total, b, err
		}
		total += iters
	}
	return total, b, nil
}
