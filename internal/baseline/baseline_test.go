package baseline

import (
	"context"
	"math"
	"testing"

	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/tester"
)

func tiny(t *testing.T, seed int64) *circuit.Circuit {
	t.Helper()
	c, err := circuit.Generate(circuit.TinyProfile("bl", 24, 200, 3, 30), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allPaths(c *circuit.Circuit) []int {
	out := make([]int, c.NumPaths())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPathwiseConvergesAndBrackets(t *testing.T) {
	c := tiny(t, 1)
	cfg := core.DefaultConfig()
	ch := tester.SampleChip(c, 5, 0)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	iters, b, err := Pathwise(context.Background(), ate, c, allPaths(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if iters != ate.Iterations {
		t.Fatalf("iteration accounting mismatch: %d vs %d", iters, ate.Iterations)
	}
	for p := range c.Paths {
		if b.Width(p) >= cfg.Eps {
			t.Fatalf("path %d not resolved", p)
		}
		truth := ch.TrueMax[p]
		mu, sd := c.Paths[p].Max.Mean, c.Paths[p].Max.Sigma()
		if truth < mu-3*sd || truth > mu+3*sd {
			continue
		}
		if truth < b.Lo[p]-cfg.TesterResolution-1e-9 || truth > b.Hi[p]+cfg.TesterResolution+1e-9 {
			t.Fatalf("path %d: truth %v outside [%v, %v]", p, truth, b.Lo[p], b.Hi[p])
		}
	}
}

func TestPathwiseIterationsMatchBinarySearch(t *testing.T) {
	c := tiny(t, 2)
	cfg := core.DefaultConfig()
	ch := tester.SampleChip(c, 7, 0)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	iters, _, err := Pathwise(context.Background(), ate, c, allPaths(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expect ≈ np · log2(6σ/ε) iterations.
	perPath := float64(iters) / float64(c.NumPaths())
	expect := math.Log2(6 * c.Paths[0].Max.Sigma() / cfg.Eps)
	if perPath < expect-2 || perPath > expect+2 {
		t.Fatalf("per-path iterations %v far from binary-search expectation %v", perPath, expect)
	}
}

func TestMultiplexBeatsPathwise(t *testing.T) {
	// The Figure 8 ordering: path-wise > multiplexing > multiplexing with
	// alignment.
	c := tiny(t, 3)
	cfg := core.DefaultConfig()
	var sumPW, sumMux, sumAl int
	for i := 0; i < 3; i++ {
		ch := tester.SampleChip(c, 11, i)
		a1 := tester.NewATE(ch, cfg.TesterResolution)
		pw, _, err := Pathwise(context.Background(), a1, c, allPaths(c), cfg)
		if err != nil {
			t.Fatal(err)
		}
		a2 := tester.NewATE(ch, cfg.TesterResolution)
		mux, _, err := Multiplex(context.Background(), a2, c, allPaths(c), core.NoHoldBounds, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		a3 := tester.NewATE(ch, cfg.TesterResolution)
		al, _, err := Multiplex(context.Background(), a3, c, allPaths(c), core.NoHoldBounds, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		sumPW += pw
		sumMux += mux
		sumAl += al
	}
	if sumMux >= sumPW {
		t.Fatalf("multiplexing (%d) did not beat path-wise (%d)", sumMux, sumPW)
	}
	if sumAl > sumMux {
		t.Fatalf("alignment (%d) worse than plain multiplexing (%d)", sumAl, sumMux)
	}
}

func TestMultiplexBoundsStillBracket(t *testing.T) {
	c := tiny(t, 4)
	cfg := core.DefaultConfig()
	ch := tester.SampleChip(c, 13, 0)
	ate := tester.NewATE(ch, cfg.TesterResolution)
	_, b, err := Multiplex(context.Background(), ate, c, allPaths(c), core.NoHoldBounds, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	for p := range c.Paths {
		truth := ch.TrueMax[p]
		mu, sd := c.Paths[p].Max.Mean, c.Paths[p].Max.Sigma()
		if truth < mu-3*sd || truth > mu+3*sd {
			continue
		}
		if truth < b.Lo[p]-cfg.TesterResolution-1e-9 || truth > b.Hi[p]+cfg.TesterResolution+1e-9 {
			t.Fatalf("path %d: truth escaped window", p)
		}
	}
}
