// Package effitest is a Go reproduction of "EffiTest: Efficient Delay Test
// and Statistical Prediction for Configuring Post-silicon Tunable Buffers"
// (Zhang, Li, Schlichtmann — DAC 2016).
//
// Post-silicon tunable clock buffers let each manufactured chip rebalance
// timing budgets between pipeline stages after fabrication, recovering yield
// lost to process variation — but configuring them needs per-chip path-delay
// measurements, conventionally taken one path at a time by frequency
// stepping on an expensive tester. EffiTest cuts that cost by more than 94%
// with three techniques: statistical path selection + conditional-Gaussian
// prediction (only ~2–20% of paths are measured), path test multiplexing
// (batches of conflict-free paths share a clock period), and delay alignment
// (the tuning buffers themselves are re-tuned during test so one frequency
// step bisects many delay windows at once).
//
// This package is the public facade: it re-exports the circuit model and
// benchmark generator, the manufactured-chip/tester simulator, the EffiTest
// flow, and one-call runners for every table and figure of the paper's
// evaluation. The implementation lives in internal/ packages (linear
// algebra, statistics, LP/MILP solvers, graph algorithms, skew scheduling,
// process-variation modeling, SSTA, the ATE simulator and the flow itself).
//
// The primary entry point is the Engine: a per-circuit handle built with
// functional options over the paper-aligned defaults, holding the prepared
// offline plan and the calibrated test period. Engines execute chips with
// context cancellation, one at a time or fanned across a bounded worker
// pool — a production binning pipeline configures fleets of chips, and
// parallel execution is bit-identical to sequential at any worker count.
//
// Quick start:
//
//	profile, _ := effitest.ProfileByName("s9234")
//	c, _ := effitest.Generate(profile, 1)
//	eng, _ := effitest.New(c,
//		effitest.WithAlignMode(effitest.AlignHeuristic),
//		effitest.WithEpsilon(0.002),
//		effitest.WithWorkers(8),
//		effitest.WithPlanCache("/var/cache/effitest"), // Prepare once fleet-wide
//	)
//	chips, _ := eng.SampleChips(ctx, 1, 1000)
//	for res := range eng.RunChips(ctx, chips) { // streamed in input order
//		if res.Err != nil {
//			log.Printf("chip %d: %v", res.Index, res.Err)
//			continue
//		}
//		fmt.Println(res.Index, res.Outcome.Passed)
//	}
//
// One chip at a time, aggregated over a population, or streamed from an
// unbounded source without materializing it:
//
//	out, _ := eng.RunChip(ctx, chips[0])
//	stats, _ := eng.Yield(ctx, chips)        // yield + average tester cost
//	for res := range eng.Stream(ctx, nextChip) { ... } // iter.Seq[*Chip]
//
// The measurement transport is pluggable (WithBackend): the in-process
// simulated ATE by default, RecordBackend/ReplayBackend for recording and
// deterministically replaying measurement traces, FaultBackend for
// injecting typed faults in resilience tests, or any custom Backend
// bridging to real tester hardware. WithObserver registers a sink for
// typed flow events (prepare done, batch start/end, alignment solves,
// frequency steps, chip completions).
//
// The offline plan is a first-class artifact: SavePlan/LoadPlan serialize
// it (versioned binary or JSON, circuit-fingerprinted and validated on
// load), WithPlan injects a loaded artifact, and WithPlanCache points the
// engine at a content-addressed on-disk cache so Prepare runs once per
// (circuit, configuration) across every process that shares the
// directory.
//
// Above the engine sits the fleet service layer (package effitest/fleet):
// an engine registry (bounded LRU, single-flight Prepare per circuit and
// configuration fingerprint) and asynchronous test campaigns on a shared
// fair-scheduled worker pool, exposed over HTTP/JSON by cmd/effitestd with
// a typed Go client in effitest/fleet/client — so many tester processes
// share one plan cache and engine pool.
//
// The pre-Engine free functions (Prepare, Plan.RunChip, YieldProposed, ...)
// remain as thin shims and behave exactly as before.
package effitest

import (
	"context"
	"io"

	"effitest/internal/baseline"
	"effitest/internal/circuit"
	"effitest/internal/core"
	"effitest/internal/exp"
	"effitest/internal/skew"
	"effitest/internal/ssta"
	"effitest/internal/tester"
	"effitest/internal/variation"
	"effitest/internal/yield"
	"effitest/workload"
)

// Circuit model and benchmark generation.
type (
	// Circuit is a benchmark instance: flip-flops, gates on the variation
	// grid, statistical timing paths and tunable-buffer placement.
	Circuit = circuit.Circuit
	// Profile holds a benchmark's published statistics (Table 1).
	Profile = circuit.Profile
	// Path is one combinational timing path with canonical max/min delays.
	Path = circuit.Path
	// Gate is a placed logic gate.
	Gate = circuit.Gate
	// GenConfig tunes the benchmark generator.
	GenConfig = circuit.GenConfig
	// VariationConfig parameterizes the spatial process-variation model.
	VariationConfig = variation.Config
	// Canon is a first-order canonical (linear) statistical delay form.
	Canon = ssta.Canon
)

// Flow types.
type (
	// Config carries all EffiTest flow parameters (ε, correlation schedule,
	// alignment solver mode, hold-yield target, ...).
	Config = core.Config
	// Plan is the offline per-circuit preparation (groups, batches, hold
	// bounds).
	Plan = core.Plan
	// Group is one correlation group with its PCA selection.
	Group = core.Group
	// Bounds tracks per-path delay windows during and after test.
	Bounds = core.Bounds
	// ChipOutcome is the per-chip result of the online flow.
	ChipOutcome = core.ChipOutcome
	// HoldBounds carries the λ lower bounds of §3.5.
	HoldBounds = core.HoldBounds
	// AlignMode selects the alignment solver (heuristic, exact MILP,
	// paper-faithful big-M ILP, or off).
	AlignMode = core.AlignMode
	// ConfigureMode selects the final buffer-configuration solver.
	ConfigureMode = core.ConfigureMode
	// Chip is one manufactured die with realized delays.
	Chip = tester.Chip
	// ATE is the simulated tester session with iteration accounting.
	ATE = tester.ATE
)

// Measurement transport: the Backend interface and its implementations.
type (
	// Backend is the pluggable measurement transport: it opens one Session
	// per chip. Select it with WithBackend.
	Backend = tester.Backend
	// Session is one per-chip measurement session (apply buffers, step the
	// clock, report per-path pass/fail, account the cost).
	Session = tester.Session
	// SimBackend is the default in-process simulated ATE transport.
	SimBackend = tester.SimBackend
	// RecordBackend wraps a transport and records every measurement into a
	// serializable Trace.
	RecordBackend = tester.RecordBackend
	// ReplayBackend replays a recorded Trace for deterministic offline
	// re-runs; divergence from the recording is a typed error.
	ReplayBackend = tester.ReplayBackend
	// FaultBackend injects deterministic faults and instruments every call
	// (resilience testing).
	FaultBackend = tester.FaultBackend
	// Trace is a serializable recording of a fleet's measurements.
	Trace = tester.Trace
	// FaultError is the typed error a FaultBackend injects; it wraps
	// ErrInjectedFault.
	FaultError = tester.FaultError
)

// Backend constructors and trace serialization.
var (
	// NewRecorder records every measurement performed through inner (nil =
	// the default SimBackend).
	NewRecorder = tester.NewRecorder
	// NewReplayer replays a recorded trace.
	NewReplayer = tester.NewReplayer
	// NewFaultBackend instruments inner (nil = the default SimBackend)
	// with schedulable faults.
	NewFaultBackend = tester.NewFaultBackend
	// WriteTrace / ReadTrace serialize measurement traces as JSON.
	WriteTrace = tester.WriteTrace
	ReadTrace  = tester.ReadTrace
)

// Backend and replay sentinel errors; match with errors.Is.
var (
	ErrInjectedFault   = tester.ErrInjectedFault
	ErrTraceDivergence = tester.ErrTraceDivergence
	ErrTraceExhausted  = tester.ErrTraceExhausted
)

// Flow observability: typed events delivered to a WithObserver sink.
type (
	// Observer receives flow events; it must be safe for concurrent use.
	Observer = core.Observer
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = core.ObserverFunc
	// Event is the union of flow event types.
	Event = core.Event
	// PrepareDoneEvent fires once when the offline plan is available.
	PrepareDoneEvent = core.PrepareDoneEvent
	// BatchStartEvent / BatchEndEvent bracket one batch on one chip.
	BatchStartEvent = core.BatchStartEvent
	BatchEndEvent   = core.BatchEndEvent
	// FrequencyStepEvent fires per tester iteration.
	FrequencyStepEvent = core.FrequencyStepEvent
	// AlignSolveEvent fires per §3.3 alignment solve.
	AlignSolveEvent = core.AlignSolveEvent
	// PredictEvent fires once per chip after §3.4's conditional prediction,
	// carrying the chip's share of the statistical-prediction runtime (the
	// paper's Tp component; AlignSolveEvent carries the matching Tt).
	PredictEvent = core.PredictEvent
	// ChipDoneEvent fires when one chip's online flow finishes.
	ChipDoneEvent = core.ChipDoneEvent
)

// Plan artifact errors; match with errors.Is.
var (
	ErrPlanFormat          = core.ErrPlanFormat
	ErrPlanVersion         = core.ErrPlanVersion
	ErrPlanCircuitMismatch = core.ErrPlanCircuitMismatch
)

// SavePlan writes a prepared plan to disk as a versioned artifact —
// binary, or JSON when the path ends in ".json" — atomically. The artifact
// embeds the circuit fingerprint and the full flow configuration, so it
// can be shipped across processes and machines.
func SavePlan(path string, pl *Plan) error { return core.SavePlan(path, pl) }

// LoadPlan reads a plan artifact (either serialization form) and binds it
// to the circuit, verifying the embedded circuit fingerprint and
// range-checking every index. Feed the result to WithPlan to skip Prepare.
func LoadPlan(path string, c *Circuit) (*Plan, error) { return core.LoadPlan(path, c) }

// CircuitFingerprint returns the stable content hash that keys plan
// artifacts, the plan cache and fleet engine registries.
func CircuitFingerprint(c *Circuit) (string, error) { return circuit.Fingerprint(c) }

// ConfigFingerprint returns the stable hash of every Prepare-relevant flow
// configuration field (Workers excluded: the worker count never shapes a
// plan). Together with CircuitFingerprint it keys the plan cache and fleet
// engine registries.
func ConfigFingerprint(cfg Config) string { return core.ConfigFingerprint(cfg) }

// EncodePlan serializes a prepared plan into its versioned binary artifact
// form — the same bytes SavePlan writes — for transports that are not
// files (an HTTP upload, a database blob).
func EncodePlan(pl *Plan) ([]byte, error) { return pl.MarshalBinary() }

// DecodePlan decodes a plan artifact in either serialization form (binary
// or JSON, sniffed by content). The result is unbound: hand it to WithPlan,
// which binds it to the engine's circuit, verifying the embedded circuit
// fingerprint.
func DecodePlan(data []byte) (*Plan, error) { return core.DecodePlan(data) }

// Alignment and configuration solver modes.
const (
	AlignHeuristic = core.AlignHeuristic
	AlignFastMILP  = core.AlignFastMILP
	AlignPaperILP  = core.AlignPaperILP
	AlignOff       = core.AlignOff

	ConfigureScalable = core.ConfigureScalable
	ConfigureMILP     = core.ConfigureMILP
)

// Skew scheduling (clock-tuning feasibility, the paper's Figure 2 machinery).
type (
	// Timing is one sequential arc with folded setup/hold bounds.
	Timing = skew.Timing
	// Buffers describes the tunable-buffer value space of a circuit.
	Buffers = skew.Buffers
)

// Experiment harness types.
type (
	// ExpConfig parameterizes the table/figure runners.
	ExpConfig = exp.Config
	// Table1Row, Table2Row, Fig7Row, Fig8Row mirror the paper's results.
	Table1Row = exp.Table1Row
	Table2Row = exp.Table2Row
	Fig7Row   = exp.Fig7Row
	Fig8Row   = exp.Fig8Row
)

// Profiles returns the eight benchmark profiles of the paper's Table 1.
func Profiles() []Profile { return circuit.Table1Profiles }

// ProfileByName looks up a Table 1 benchmark profile.
func ProfileByName(name string) (Profile, bool) { return circuit.ProfileByName(name) }

// NewProfile builds a custom benchmark profile.
func NewProfile(name string, ffs, gates, buffers, paths int) Profile {
	return circuit.TinyProfile(name, ffs, gates, buffers, paths)
}

// Generate builds a deterministic benchmark circuit with default generator
// settings.
func Generate(p Profile, seed int64) (*Circuit, error) { return circuit.Generate(p, seed) }

// GenerateWith builds a benchmark circuit with custom generator settings.
func GenerateWith(p Profile, seed int64, cfg GenConfig) (*Circuit, error) {
	return circuit.GenerateWith(p, seed, cfg)
}

// DefaultGenConfig returns the paper-calibrated generator configuration.
func DefaultGenConfig() GenConfig { return circuit.DefaultGenConfig() }

// WriteNetlist serializes a circuit to the text netlist format.
func WriteNetlist(w io.Writer, c *Circuit) error { return circuit.WriteNetlist(w, c) }

// ParseNetlist reads a circuit back from the text netlist format.
func ParseNetlist(r io.Reader) (*Circuit, error) { return circuit.ParseNetlist(r) }

// WriteDOT emits the circuit's timing graph in Graphviz DOT form.
func WriteDOT(w io.Writer, c *Circuit) error { return circuit.WriteDOT(w, c) }

// DefaultConfig returns the paper-aligned EffiTest flow configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Prepare runs the offline flow (Procedure 1, multiplexing, hold bounds).
//
// Deprecated: build an Engine with New, which prepares the plan, calibrates
// the test period and adds context-aware (parallel) chip execution. Prepare
// remains for callers that manage the period and chip loop themselves.
func Prepare(c *Circuit, cfg Config) (*Plan, error) { return core.Prepare(c, cfg) }

// SampleChip manufactures one chip deterministically in (seed, index).
func SampleChip(c *Circuit, seed int64, index int) *Chip { return tester.SampleChip(c, seed, index) }

// SampleChips manufactures n chips.
func SampleChips(c *Circuit, seed int64, n int) []*Chip { return tester.SampleChips(c, seed, n) }

// NewATE opens a tester session on a chip with the given clock-period
// resolution.
func NewATE(ch *Chip, resolution float64) *ATE { return tester.NewATE(ch, resolution) }

// MinPeriodUnconstrained returns the minimum clock period achievable with
// unlimited skew — the maximum cycle mean of the setup delays (Figure 2's
// 8 → 5.5 example).
func MinPeriodUnconstrained(n int, arcs []Timing) (float64, bool) {
	return skew.MinPeriodUnconstrained(n, arcs)
}

// FeasibleSkews returns buffer values meeting setup (period T) and hold
// within continuous buffer ranges, or ok=false.
func FeasibleSkews(T float64, arcs []Timing, b Buffers) ([]float64, bool) {
	return skew.Feasible(T, arcs, b)
}

// FeasibleSkewsDiscrete is FeasibleSkews restricted exactly to the buffer
// lattices.
func FeasibleSkewsDiscrete(T float64, arcs []Timing, b Buffers) ([]float64, bool) {
	return skew.FeasibleDiscrete(T, arcs, b)
}

// UniformBuffers builds a buffer space with identical ranges on the given
// flip-flops.
func UniformBuffers(n int, buffered []int, lo, hi float64, steps int) Buffers {
	return skew.Uniform(n, buffered, lo, hi, steps)
}

// PeriodQuantile estimates the q-quantile of the no-tuning critical delay
// (used to calibrate the paper's T1/T2).
func PeriodQuantile(c *Circuit, seed int64, chips int, q float64) float64 {
	return yield.PeriodQuantile(c, seed, chips, q)
}

// YieldNoBuffer, YieldIdeal and YieldProposed evaluate the three regimes the
// paper compares.
func YieldNoBuffer(chips []*Chip, T float64) float64 { return yield.NoBuffer(chips, T) }

// YieldIdeal is the yield with perfect per-chip delay measurement.
func YieldIdeal(c *Circuit, chips []*Chip, T float64) float64 { return yield.Ideal(c, chips, T) }

// YieldProposed runs the full EffiTest flow on every chip.
//
// Deprecated: use (*Engine).Yield or (*Engine).YieldAt, which fan chips
// across the engine's worker pool with context cancellation. YieldProposed
// uses the plan's Config.Workers and remains bit-compatible.
func YieldProposed(plan *Plan, chips []*Chip, T float64) (ProposedStats, error) {
	return yield.Proposed(plan, chips, T)
}

// YieldCurvePoint is one sample of a yield-versus-period sweep.
type YieldCurvePoint = yield.CurvePoint

// YieldCurve sweeps the clock period and evaluates no-buffer and
// ideal-tuning yields at each step.
func YieldCurve(c *Circuit, chips []*Chip, loT, hiT float64, steps int) []YieldCurvePoint {
	return yield.Curve(c, chips, loT, hiT, steps)
}

// ComputeHoldBounds derives the §3.5 hold-time tuning bounds λ by
// Monte-Carlo sampling of the short-path delays.
func ComputeHoldBounds(c *Circuit, cfg Config) (*HoldBounds, error) {
	return core.ComputeHoldBounds(c, cfg)
}

// HoldYieldEstimate replays the sampled hold quantities against bounds and
// returns the covered fraction (the Eq. 20 yield).
func HoldYieldEstimate(c *Circuit, hb *HoldBounds, cfg Config) float64 {
	return core.HoldYieldEstimate(c, hb, cfg)
}

// InitBounds builds the μ±3σ starting delay windows for every path.
func InitBounds(c *Circuit) *Bounds { return core.InitBounds(c) }

// NoHoldBounds is a hold-bound function imposing no constraints (for
// baseline studies).
func NoHoldBounds(from, to int) float64 { return core.NoHoldBounds(from, to) }

// PathwiseTest measures the given paths one at a time by binary-search
// frequency stepping (the prior-art baseline of Table 1's t′a column) on
// any measurement session (an *ATE, or any Session). It returns the total
// tester iterations and the measured windows.
func PathwiseTest(sess Session, c *Circuit, paths []int, cfg Config) (int, *Bounds, error) {
	return baseline.Pathwise(context.Background(), sess, c, paths, cfg)
}

// MultiplexTest measures the given paths in conflict-free batches, with or
// without delay alignment by the tuning buffers (Figure 8's second and third
// cases).
func MultiplexTest(sess Session, c *Circuit, paths []int, lambda func(from, to int) float64, cfg Config, align bool) (int, *Bounds, error) {
	return baseline.Multiplex(context.Background(), sess, c, paths, lambda, cfg, align)
}

// DefaultExpConfig returns the experiment-harness defaults.
func DefaultExpConfig() ExpConfig { return exp.DefaultConfig() }

// RunTable1, RunTable2, RunFig7 and RunFig8 regenerate one row/bar-group of
// the corresponding table or figure. The hot Monte-Carlo loops inside them
// fan out across cfg.Core.Workers goroutines; pass a context to cancel a
// long regeneration.
func RunTable1(ctx context.Context, p Profile, cfg ExpConfig) (Table1Row, error) {
	return exp.Table1(ctx, p, cfg)
}

// RunTable2 regenerates one row of the paper's Table 2.
func RunTable2(ctx context.Context, p Profile, cfg ExpConfig) (Table2Row, error) {
	return exp.Table2(ctx, p, cfg)
}

// RunFig7 regenerates one bar group of the paper's Figure 7.
func RunFig7(ctx context.Context, p Profile, cfg ExpConfig) (Fig7Row, error) {
	return exp.Fig7(ctx, p, cfg)
}

// RunFig8 regenerates one bar group of the paper's Figure 8.
func RunFig8(ctx context.Context, p Profile, cfg ExpConfig) (Fig8Row, error) {
	return exp.Fig8(ctx, p, cfg)
}

// FormatTable1, FormatTable2, FormatFig7 and FormatFig8 render measured rows
// side by side with the paper's published numbers.
func FormatTable1(rows []Table1Row) string { return exp.FormatTable1(rows) }

// FormatTable2 renders Table 2 rows.
func FormatTable2(rows []Table2Row) string { return exp.FormatTable2(rows) }

// FormatFig7 renders the Figure 7 series.
func FormatFig7(rows []Fig7Row) string { return exp.FormatFig7(rows) }

// FormatFig8 renders the Figure 8 series.
func FormatFig8(rows []Fig8Row) string { return exp.FormatFig8(rows) }

// Workload registry: the sister-paper campaign types that run over the
// engine (package workload). A campaign's workload rides fleet specs and
// the HTTP wire by name; WorkloadTypes lists the registered names and
// CheckWorkload validates a (workload, bin edges, drift) triple the same
// way every entry point — manifest validator, fleet manager, HTTP submit,
// shard coordinator — does.
var (
	// WorkloadTypes returns the registered workload type names.
	WorkloadTypes = workload.Types
	// ValidWorkload reports whether a name is a registered workload type.
	ValidWorkload = workload.Valid
	// CheckWorkload validates workload parameters as they appear on a
	// campaign spec.
	CheckWorkload = workload.Check
	// AchievedPeriod returns a chip's post-tuning achievable period under
	// a configured buffer vector — the clock-binning classification
	// quantity.
	AchievedPeriod = workload.AchievedPeriod
	// ApplyDrift returns a copy of a chip aged by a delay-drift factor
	// (aging-drift campaigns).
	ApplyDrift = workload.ApplyDrift
)

// Workload type names (see package workload).
const (
	WorkloadEffiTest     = workload.TypeEffiTest
	WorkloadClockBinning = workload.TypeClockBinning
	WorkloadAgingDrift   = workload.TypeAgingDrift
)

// BinAgg is the exactly-mergeable clock-binning histogram (package
// workload): integer chip counts per period bin, Merge associative and
// commutative like yield.Agg's.
type BinAgg = workload.BinAgg

// NewBinAgg returns an empty clock-binning histogram over ascending
// period bin edges.
var NewBinAgg = workload.NewBinAgg
