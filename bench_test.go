// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations over the design choices called out in DESIGN.md §5.
//
// Each Benchmark<Artifact>/<circuit> op regenerates that artifact's row for
// the circuit at benchmark scale (a few chips); cmd/efftables runs the same
// code at full scale for EXPERIMENTS.md. Set EFFITEST_BENCH_ALL=1 to include
// the two largest circuits (mem_ctrl, pci_bridge32).
package effitest_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"effitest"
)

// benchCircuits returns the circuits benchmarked by default (the two
// largest are opt-in: their np ≈ 3k-3.5k path-wise baselines dominate
// wall-clock without changing what is measured).
func benchCircuits() []string {
	names := []string{"s9234", "s13207", "s15850", "s38584", "usb_funct", "ac97_ctrl"}
	if os.Getenv("EFFITEST_BENCH_ALL") != "" {
		names = append(names, "mem_ctrl", "pci_bridge32")
	}
	return names
}

func benchExpConfig() effitest.ExpConfig {
	cfg := effitest.DefaultExpConfig()
	cfg.CostChips = 3
	cfg.YieldChips = 40
	cfg.Fig8Chips = 1
	cfg.QuantileChips = 300
	return cfg
}

// BenchmarkTable1 regenerates Table 1 rows: test cost of the proposed flow
// (ta, tv) against path-wise frequency stepping (t′a, t′v). The headline
// metric ra (iteration reduction) is reported per op.
func BenchmarkTable1(b *testing.B) {
	for _, name := range benchCircuits() {
		p, _ := effitest.ProfileByName(name)
		b.Run(name, func(b *testing.B) {
			var lastRA float64
			for i := 0; i < b.N; i++ {
				row, err := effitest.RunTable1(context.Background(), p, benchExpConfig())
				if err != nil {
					b.Fatal(err)
				}
				lastRA = row.RA
			}
			b.ReportMetric(lastRA, "ra_%")
		})
	}
}

// BenchmarkTable2 regenerates Table 2 rows: yield with ideal measurement
// (yi) vs the proposed flow (yt) at the T2 period.
func BenchmarkTable2(b *testing.B) {
	for _, name := range benchCircuits() {
		p, _ := effitest.ProfileByName(name)
		b.Run(name, func(b *testing.B) {
			var lastYT float64
			for i := 0; i < b.N; i++ {
				row, err := effitest.RunTable2(context.Background(), p, benchExpConfig())
				if err != nil {
					b.Fatal(err)
				}
				lastYT = row.T2YT
			}
			b.ReportMetric(lastYT, "t2_yt_%")
		})
	}
}

// BenchmarkFig7 regenerates Figure 7 bar groups: yield with standard
// deviations inflated 10% (covariances unchanged).
func BenchmarkFig7(b *testing.B) {
	for _, name := range benchCircuits() {
		p, _ := effitest.ProfileByName(name)
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				row, err := effitest.RunFig7(context.Background(), p, benchExpConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = row.Proposed
			}
			b.ReportMetric(last, "proposed_%")
		})
	}
}

// BenchmarkFig8 regenerates Figure 8 bar groups: iterations per path with
// no statistical prediction (all np paths measured), across path-wise /
// multiplexing / multiplexing+alignment.
func BenchmarkFig8(b *testing.B) {
	for _, name := range benchCircuits() {
		p, _ := effitest.ProfileByName(name)
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				row, err := effitest.RunFig8(context.Background(), p, benchExpConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = row.Proposed
			}
			b.ReportMetric(last, "iter_per_path")
		})
	}
}

// flowFixture caches the expensive offline preparation per circuit so the
// per-chip benchmarks measure only the online flow.
type flowFixture struct {
	circuit *effitest.Circuit
	plan    *effitest.Plan
	td      float64
}

var (
	fixtures   = map[string]*flowFixture{}
	fixturesMu sync.Mutex
)

func fixture(b *testing.B, name string, cfg effitest.Config) *flowFixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	key := name + "/" + cfg.AlignMode.String()
	if f, ok := fixtures[key]; ok {
		return f
	}
	p, ok := effitest.ProfileByName(name)
	if !ok {
		b.Fatalf("unknown circuit %s", name)
	}
	c, err := effitest.Generate(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := effitest.Prepare(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	f := &flowFixture{
		circuit: c,
		plan:    plan,
		td:      effitest.PeriodQuantile(c, 2, 400, 0.8413),
	}
	fixtures[key] = f
	return f
}

// BenchmarkFlowChip measures the complete online flow for one manufactured
// chip: aligned delay test, prediction, configuration and final pass/fail.
func BenchmarkFlowChip(b *testing.B) {
	for _, name := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			f := fixture(b, name, effitest.DefaultConfig())
			chip := effitest.SampleChip(f.circuit, 3, 0)
			b.ReportAllocs()
			b.ResetTimer()
			iters := 0
			for i := 0; i < b.N; i++ {
				out, err := f.plan.RunChip(chip, f.td)
				if err != nil {
					b.Fatal(err)
				}
				iters = out.Iterations
			}
			b.ReportMetric(float64(iters), "tester_iters")
		})
	}
}

// BenchmarkEngineRunChips measures fleet execution through the engine at
// one worker versus one worker per CPU. The outcomes are bit-identical
// (see TestEngineParallelMatchesSequential); on a multi-core runner the
// parallel case shows the wall-clock speedup the worker pool buys.
func BenchmarkEngineRunChips(b *testing.B) {
	f := fixture(b, "s9234", effitest.DefaultConfig())
	chips := effitest.SampleChips(f.circuit, 3, 64)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers-1", 1}, {"workers-all", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				outs, err := f.plan.RunChipsAll(ctx, chips, f.td, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(outs) != len(chips) {
					b.Fatalf("got %d outcomes", len(outs))
				}
			}
			b.ReportMetric(float64(len(chips))*float64(b.N)/b.Elapsed().Seconds(), "chips/s")
		})
	}
}

// BenchmarkFlowChipBatched measures the fleet flow through the batched
// multi-RHS prediction path: 32 chips per op on one worker, unbatched
// (k1) versus the auto width (k8). Outcomes are bit-identical
// at every width (see TestBatchedPredictionMatchesUnbatched), so the delta
// isolates what streaming each group's Cholesky factor through the cache
// once per eight chips — instead of once per chip — buys, with worker
// parallelism out of the picture.
func BenchmarkFlowChipBatched(b *testing.B) {
	for _, name := range []string{"s9234", "usb_funct"} {
		f := fixture(b, name, effitest.DefaultConfig())
		chips := effitest.SampleChips(f.circuit, 3, 32)
		for _, kb := range []int{1, 8} {
			// kN, not batch-N: benchjson strips a trailing -<digits> as the
			// GOMAXPROCS suffix, so a dash here would corrupt the name.
			b.Run(fmt.Sprintf("%s/k%d", name, kb), func(b *testing.B) {
				eng, err := effitest.New(f.circuit,
					effitest.WithPlan(f.plan),
					effitest.WithPeriod(f.td),
					effitest.WithWorkers(1),
					effitest.WithPredictBatch(kb),
				)
				if err != nil {
					b.Fatal(err)
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					outs, err := eng.RunChipsAll(ctx, chips)
					if err != nil {
						b.Fatal(err)
					}
					if len(outs) != len(chips) {
						b.Fatalf("got %d outcomes", len(outs))
					}
				}
				b.ReportMetric(float64(len(chips))*float64(b.N)/b.Elapsed().Seconds(), "chips/s")
			})
		}
	}
}

// BenchmarkAblationAlignSolver compares the three §3.3 alignment solvers:
// the default weighted-median heuristic, the exact MILP without the paper's
// binaries, and the faithful big-M ILP of Eqs. (7)–(14). All three produce
// the same test behaviour (the MILPs provably, the heuristic near-optimally)
// at very different compute cost.
func BenchmarkAblationAlignSolver(b *testing.B) {
	modes := []struct {
		name string
		mode effitest.AlignMode
	}{
		{"heuristic", effitest.AlignHeuristic},
		{"fast-milp", effitest.AlignFastMILP},
		{"paper-ilp", effitest.AlignPaperILP},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := effitest.DefaultConfig()
			cfg.AlignMode = m.mode
			f := fixture(b, "s9234", cfg)
			chip := effitest.SampleChip(f.circuit, 3, 0)
			b.ResetTimer()
			iters := 0
			for i := 0; i < b.N; i++ {
				out, err := f.plan.RunChip(chip, f.td)
				if err != nil {
					b.Fatal(err)
				}
				iters = out.Iterations
			}
			b.ReportMetric(float64(iters), "tester_iters")
		})
	}
}

// BenchmarkAblationAlignment quantifies what §3.3 buys at test time:
// batched measurement of all paths with buffers frozen vs with delay
// alignment.
func BenchmarkAblationAlignment(b *testing.B) {
	cfgBase := effitest.DefaultConfig()
	f := fixture(b, "s13207", cfgBase)
	all := make([]int, f.circuit.NumPaths())
	for i := range all {
		all[i] = i
	}
	for _, align := range []bool{false, true} {
		name := "frozen"
		if align {
			name = "aligned"
		}
		b.Run(name, func(b *testing.B) {
			chip := effitest.SampleChip(f.circuit, 3, 0)
			iters := 0
			for i := 0; i < b.N; i++ {
				ate := effitest.NewATE(chip, cfgBase.TesterResolution)
				n, _, err := effitest.MultiplexTest(ate, f.circuit, all, effitest.NoHoldBounds, cfgBase, align)
				if err != nil {
					b.Fatal(err)
				}
				iters = n
			}
			b.ReportMetric(float64(iters)/float64(len(all)), "iter_per_path")
		})
	}
}

// BenchmarkAblationSlotFill compares the flow with and without §3.2's
// empty-slot filling.
func BenchmarkAblationSlotFill(b *testing.B) {
	for _, fill := range []bool{true, false} {
		name := "fill"
		if !fill {
			name = "nofill"
		}
		b.Run(name, func(b *testing.B) {
			cfg := effitest.DefaultConfig()
			cfg.FillSlots = fill
			p, _ := effitest.ProfileByName("s13207")
			c, err := effitest.Generate(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			plan, err := effitest.Prepare(c, cfg)
			if err != nil {
				b.Fatal(err)
			}
			td := effitest.PeriodQuantile(c, 2, 400, 0.8413)
			chip := effitest.SampleChip(c, 3, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := plan.RunChip(chip, td); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.NumTested()), "npt")
		})
	}
}

// BenchmarkPrepareWarmCache measures constructing an engine when the plan
// cache is already warm: artifact read + decode + fingerprint verification
// + MVN recomputation, instead of the full offline flow. The ratio to
// BenchmarkPrepare is what WithPlanCache buys every process after the
// first.
func BenchmarkPrepareWarmCache(b *testing.B) {
	for _, name := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			p, _ := effitest.ProfileByName(name)
			c, err := effitest.Generate(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			dir := b.TempDir()
			// Warm the cache (and pin the calibration cost outside the
			// timed region by fixing the period).
			warm, err := effitest.New(c, effitest.WithPlanCache(dir), effitest.WithPeriod(c.TNominal))
			if err != nil {
				b.Fatal(err)
			}
			if warm.PlanCacheHit() {
				b.Fatal("first construction unexpectedly hit the cache")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := effitest.New(c, effitest.WithPlanCache(dir), effitest.WithPeriod(c.TNominal))
				if err != nil {
					b.Fatal(err)
				}
				if !eng.PlanCacheHit() {
					b.Fatal("cache miss on warm cache")
				}
			}
		})
	}
}

// BenchmarkPrepare measures the offline flow (Procedure 1 + multiplexing +
// hold bounds), the paper's Tp column.
func BenchmarkPrepare(b *testing.B) {
	for _, name := range benchCircuits() {
		b.Run(name, func(b *testing.B) {
			p, _ := effitest.ProfileByName(name)
			for i := 0; i < b.N; i++ {
				// Fresh circuit per op: Prepare caches the covariance matrix
				// on the circuit, and Tp should include that cost.
				b.StopTimer()
				c, err := effitest.Generate(p, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := effitest.Prepare(c, effitest.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
