package effitest

import (
	"fmt"
	"io"
	"sync"
)

// NewProgressPrinter returns an Observer that narrates flow progress to w as
// plain text lines: the offline prepare, every finished test batch, and a
// running per-chip completion count. Wire it up with WithObserver; the CLIs
// expose it as -progress (printing to stderr).
//
// Chips execute concurrently, so lines from different chips interleave; each
// line is written atomically under one mutex, which also makes the printer
// safe for concurrent use as the Observer contract requires.
func NewProgressPrinter(w io.Writer) Observer {
	var mu sync.Mutex
	var done, passed int
	return ObserverFunc(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev := e.(type) {
		case PrepareDoneEvent:
			fmt.Fprintf(w, "progress: %s prepared: %d groups, %d batches, %d tested paths, cache hit=%v (%.2fs)\n",
				ev.Circuit, ev.Groups, ev.Batches, ev.Tested, ev.CacheHit, ev.Duration.Seconds())
		case BatchEndEvent:
			if ev.Err != nil {
				fmt.Fprintf(w, "progress: chip %d batch %d failed: %v\n", ev.Chip, ev.Batch, ev.Err)
				return
			}
			fmt.Fprintf(w, "progress: chip %d batch %d: %d iterations\n", ev.Chip, ev.Batch, ev.Iterations)
		case ChipDoneEvent:
			done++
			if ev.Passed {
				passed++
			}
			status := "failed"
			switch {
			case ev.Err != nil:
				status = fmt.Sprintf("error: %v", ev.Err)
			case ev.Passed:
				status = "passed"
			}
			fmt.Fprintf(w, "progress: chip %d done (%s, %d iterations) — %d chips done, %d passed\n",
				ev.Chip, status, ev.Iterations, done, passed)
		}
	})
}
