package effitest_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"effitest"
)

func errorTestCircuit(t *testing.T) *effitest.Circuit {
	t.Helper()
	c, err := effitest.Generate(effitest.NewProfile("errpaths", 32, 320, 4, 40), 5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineInvalidOptions drives New through every rejected option value
// and requires a descriptive construction error — not a hang in the online
// flow (ε ≤ 0 would never terminate a batch) or a panic.
func TestEngineInvalidOptions(t *testing.T) {
	c := errorTestCircuit(t)
	cases := []struct {
		name string
		opts []effitest.Option
		want string // substring of the error
	}{
		{"eps-zero", []effitest.Option{effitest.WithEpsilon(0)}, "Eps"},
		{"eps-negative", []effitest.Option{effitest.WithEpsilon(-0.002)}, "Eps"},
		{"eps-nan", []effitest.Option{effitest.WithEpsilon(math.NaN())}, "Eps"},
		{"eps-inf", []effitest.Option{effitest.WithEpsilon(math.Inf(1))}, "Eps"},
		{"workers-negative", []effitest.Option{effitest.WithWorkers(-1)}, "Workers"},
		{"max-batch-negative", []effitest.Option{effitest.WithMaxBatch(-2)}, "MaxBatch"},
		{"hold-samples-zero", []effitest.Option{effitest.WithHoldSamples(0)}, "HoldSamples"},
		{"hold-yield-zero", []effitest.Option{effitest.WithHoldYield(0)}, "HoldYield"},
		{"hold-yield-above-one", []effitest.Option{effitest.WithHoldYield(1.5)}, "HoldYield"},
		{"resolution-zero", []effitest.Option{effitest.WithTesterResolution(0)}, "TesterResolution"},
		{"resolution-negative", []effitest.Option{effitest.WithTesterResolution(-1e-4)}, "TesterResolution"},
		{"period-zero", []effitest.Option{effitest.WithPeriod(0)}, "period"},
		{"period-nan", []effitest.Option{effitest.WithPeriod(math.NaN())}, "period"},
		{"quantile-zero", []effitest.Option{effitest.WithPeriodQuantile(0, 100)}, "quantile"},
		{"quantile-one", []effitest.Option{effitest.WithPeriodQuantile(1, 100)}, "quantile"},
		{"calib-chips-zero", []effitest.Option{effitest.WithPeriodQuantile(0.8413, 0)}, "chip count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := effitest.New(c, tc.opts...)
			if err == nil {
				t.Fatalf("New accepted invalid options, engine = %+v", eng)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending field %q", err, tc.want)
			}
		})
	}

	// The same invalid values pinned through WithConfig must be rejected
	// identically — WithConfig is documented as a base layer, not a bypass.
	bad := effitest.DefaultConfig()
	bad.Eps = -1
	if _, err := effitest.New(c, effitest.WithConfig(bad)); err == nil {
		t.Fatal("WithConfig bypassed option validation")
	}

	// Zero sentinels that mean "unlimited" stay valid: MaxBatch,
	// MaxIterPerPath and MaxGroupSize all document 0 as uncapped.
	uncapped := effitest.DefaultConfig()
	uncapped.MaxBatch = 0
	uncapped.MaxIterPerPath = 0
	uncapped.MaxGroupSize = 0
	if _, err := effitest.New(c, effitest.WithConfig(uncapped), effitest.WithPeriod(1)); err != nil {
		t.Fatalf("validation rejected documented zero sentinels: %v", err)
	}
}

// TestEngineChipMismatchThroughRunChips checks ErrChipCircuitMismatch
// propagation through the streaming path: the mismatched chip carries the
// sentinel, the healthy chips still complete, and RunChipsAll surfaces the
// lowest-index error.
func TestEngineChipMismatchThroughRunChips(t *testing.T) {
	c := errorTestCircuit(t)
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100), effitest.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chips, err := eng.SampleChips(ctx, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	other, err := effitest.Generate(effitest.NewProfile("errpaths2", 32, 320, 4, 40), 6)
	if err != nil {
		t.Fatal(err)
	}
	alien := effitest.SampleChip(other, 1, 0)
	mixed := append(append([]*effitest.Chip{}, chips[:3]...), alien)
	mixed = append(mixed, chips[3:]...)

	results := 0
	for r := range eng.RunChips(ctx, mixed) {
		results++
		if r.Chip == alien {
			if !errors.Is(r.Err, effitest.ErrChipCircuitMismatch) {
				t.Fatalf("alien chip error = %v, want ErrChipCircuitMismatch", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("healthy chip %d failed: %v", r.Index, r.Err)
		}
		if r.Outcome == nil {
			t.Fatalf("healthy chip %d has no outcome", r.Index)
		}
	}
	if results != len(mixed) {
		t.Fatalf("stream yielded %d results for %d chips", results, len(mixed))
	}

	if _, err := eng.RunChipsAll(ctx, mixed); !errors.Is(err, effitest.ErrChipCircuitMismatch) {
		t.Fatalf("RunChipsAll error = %v, want ErrChipCircuitMismatch", err)
	}
}

// TestEngineEarlyBreakReleasesWorkers breaks out of RunChips streams at
// several points and asserts, via a post-run goroutine count, that the
// worker pool fully unwinds — no goroutine leak per abandoned stream.
func TestEngineEarlyBreakReleasesWorkers(t *testing.T) {
	c := errorTestCircuit(t)
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100), effitest.WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	chips, err := eng.SampleChips(ctx, 3, 32)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for _, breakAfter := range []int{1, 5, len(chips)} {
		seen := 0
		for range eng.RunChips(ctx, chips) {
			seen++
			if seen >= breakAfter {
				break
			}
		}
		if seen != breakAfter {
			t.Fatalf("consumed %d results, want %d", seen, breakAfter)
		}
	}
	// Workers unwind asynchronously once the consumer breaks; give the
	// runtime a bounded window to settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
