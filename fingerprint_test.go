package effitest_test

import (
	"strings"
	"testing"

	"effitest"
)

// SummarizeOptions is the fleet registry's key: flow-shaping settings must
// move the fingerprint, execution knobs must not.
func TestSummarizeOptionsFingerprint(t *testing.T) {
	base := effitest.SummarizeOptions()
	if base.Fingerprint == "" || base.HasPlan || base.PlanCacheDir != "" {
		t.Fatalf("unexpected base summary: %+v", base)
	}
	if again := effitest.SummarizeOptions(); again.Fingerprint != base.Fingerprint {
		t.Fatal("fingerprint is not deterministic")
	}

	differs := map[string]effitest.Option{
		"epsilon":         effitest.WithEpsilon(0.004),
		"seed":            effitest.WithSeed(99),
		"align mode":      effitest.WithAlignMode(effitest.AlignOff),
		"pinned period":   effitest.WithPeriod(1.5),
		"period quantile": effitest.WithPeriodQuantile(0.5, 100),
		"max batch":       effitest.WithMaxBatch(7),
	}
	for name, opt := range differs {
		if got := effitest.SummarizeOptions(opt); got.Fingerprint == base.Fingerprint {
			t.Errorf("%s did not change the fingerprint", name)
		}
	}

	same := map[string]effitest.Option{
		"workers":       effitest.WithWorkers(8),
		"predict batch": effitest.WithPredictBatch(4),
		"backend":       effitest.WithBackend(effitest.SimBackend{}),
		"observer":      effitest.WithObserver(effitest.NewProgressPrinter(&strings.Builder{})),
		"plan cache":    effitest.WithPlanCache("/tmp/x"),
	}
	for name, opt := range same {
		if got := effitest.SummarizeOptions(opt); got.Fingerprint != base.Fingerprint {
			t.Errorf("execution knob %q changed the fingerprint", name)
		}
	}

	if got := effitest.SummarizeOptions(effitest.WithPlanCache("/tmp/x")); got.PlanCacheDir != "/tmp/x" {
		t.Fatalf("PlanCacheDir not surfaced: %+v", got)
	}

	// The inactive period arm is canonicalized away: a stale WithPeriod
	// overridden by WithPeriodQuantile (and vice versa) must not split the
	// fingerprint of equivalent option lists.
	overridden := effitest.SummarizeOptions(effitest.WithPeriod(3), effitest.WithPeriodQuantile(0.8413, 2000))
	if overridden.Fingerprint != base.Fingerprint {
		t.Fatal("stale pinned period leaked into the fingerprint")
	}
	pinned := effitest.SummarizeOptions(effitest.WithPeriod(3))
	repinned := effitest.SummarizeOptions(effitest.WithPeriodQuantile(0.5, 10), effitest.WithPeriod(3))
	if pinned.Fingerprint != repinned.Fingerprint {
		t.Fatal("stale quantile settings leaked into the fingerprint")
	}
	if pinned.Fingerprint == base.Fingerprint {
		t.Fatal("pinned period did not change the fingerprint")
	}
}

func TestSummarizeOptionsHasPlan(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("fpplan", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100))
	if err != nil {
		t.Fatal(err)
	}
	if sum := effitest.SummarizeOptions(effitest.WithPlan(eng.Plan())); !sum.HasPlan {
		t.Fatal("WithPlan not reported by the summary")
	}
}

// The engine exposes both halves of its registry/plan-cache identity.
func TestEngineFingerprints(t *testing.T) {
	c, err := effitest.Generate(effitest.NewProfile("fpeng", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c, effitest.WithPeriodQuantile(0.8413, 100), effitest.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	cfp, err := eng.CircuitFingerprint()
	if err != nil {
		t.Fatal(err)
	}
	want, err := effitest.CircuitFingerprint(c)
	if err != nil {
		t.Fatal(err)
	}
	if cfp != want {
		t.Fatalf("engine circuit fingerprint %s != facade %s", cfp, want)
	}
	if got := eng.ConfigFingerprint(); got != effitest.ConfigFingerprint(eng.Config()) {
		t.Fatal("engine config fingerprint diverges from ConfigFingerprint")
	}
	// Workers never shapes a plan: it must not move the config fingerprint.
	cfg := eng.Config()
	cfg.Workers = 99
	if effitest.ConfigFingerprint(cfg) != eng.ConfigFingerprint() {
		t.Fatal("worker count changed the config fingerprint")
	}
}

// The -progress observer narrates prepare, batches and chips.
func TestProgressPrinter(t *testing.T) {
	var sb strings.Builder
	c, err := effitest.Generate(effitest.NewProfile("fpprog", 24, 200, 3, 24), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := effitest.New(c,
		effitest.WithPeriodQuantile(0.8413, 100),
		effitest.WithObserver(effitest.NewProgressPrinter(&sb)))
	if err != nil {
		t.Fatal(err)
	}
	chips, err := eng.SampleChips(t.Context(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunChipsAll(t.Context(), chips); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"prepared", "batch", "2 chips done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("progress output missing %q:\n%s", want, out)
		}
	}
}
