// Yieldcurve: a shmoo-style sweep of manufacturing yield versus clock
// period, with and without post-silicon tuning. The horizontal gap between
// the two curves is the frequency the tuning buffers buy; the vertical gap
// is the yield they recover at a fixed target period.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"effitest"
)

func main() {
	profile := effitest.NewProfile("curve-demo", 48, 600, 6, 60)
	c, err := effitest.Generate(profile, 2)
	if err != nil {
		log.Fatal(err)
	}
	chips := effitest.SampleChips(c, 77, 400)
	lo := effitest.PeriodQuantile(c, 9, 1000, 0.02)
	hi := effitest.PeriodQuantile(c, 9, 1000, 0.995)
	curve := effitest.YieldCurve(c, chips, lo, hi, 16)

	fmt.Printf("yield vs clock period for %q (%d chips)\n\n", c.Name, len(chips))
	fmt.Printf("%8s  %9s  %9s   %s\n", "T (ns)", "no tuning", "ideal", "")
	for _, pt := range curve {
		fmt.Printf("%8.4f  %8.1f%%  %8.1f%%   %s\n",
			pt.T, 100*pt.NoBuffer, 100*pt.Ideal, bar(pt.NoBuffer, pt.Ideal))
	}
	fmt.Println("\nlegend: '.' yield without buffers, '+' additional yield from ideal tuning")

	// Quantify the buyback at the paper's T1 (50% base yield), now with the
	// full EffiTest flow in the middle: an engine pinned to T1 runs every
	// chip (aligned test, prediction, configuration) on all CPUs.
	t1 := effitest.PeriodQuantile(c, 9, 1000, 0.5)
	eng, err := effitest.New(c, effitest.WithPeriod(t1))
	if err != nil {
		log.Fatal(err)
	}
	st, err := eng.Yield(context.Background(), chips)
	if err != nil {
		log.Fatal(err)
	}
	nb := effitest.YieldNoBuffer(chips, t1)
	id := effitest.YieldIdeal(c, chips, t1)
	fmt.Printf("\nat T1 = %.4f ns: %.1f%% -> %.1f%% proposed -> %.1f%% ideal (+%.1f points from tuning)\n",
		t1, 100*nb, 100*st.Yield, 100*id, 100*(id-nb))
	fmt.Printf("average tester cost: %.1f frequency steps per chip\n", st.AvgIterations)
}

func bar(noBuf, ideal float64) string {
	const width = 50
	n := int(noBuf * width)
	i := int(ideal * width)
	if i < n {
		i = n
	}
	return strings.Repeat(".", n) + strings.Repeat("+", i-n)
}
