// Quickstart: generate a small circuit, run the complete EffiTest flow on a
// handful of manufactured chips, and print what happened at each stage.
package main

import (
	"fmt"
	"log"

	"effitest"
)

func main() {
	// A small custom benchmark: 40 flip-flops, 400 gates, 4 tuning buffers,
	// 48 critical paths.
	profile := effitest.NewProfile("demo", 40, 400, 4, 48)
	c, err := effitest.Generate(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d FFs, %d gates, %d buffers, %d paths, nominal clock %.3f ns\n",
		c.Name, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths(), c.TNominal)

	// Offline preparation: statistical path selection (Procedure 1), test
	// multiplexing (§3.2) and hold-time tuning bounds (§3.5).
	cfg := effitest.DefaultConfig()
	plan, err := effitest.Prepare(c, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline plan: test %d of %d paths (%.0f%%) in %d batches, %d correlation groups\n",
		plan.NumTested(), c.NumPaths(),
		100*float64(plan.NumTested())/float64(c.NumPaths()),
		len(plan.Batches), len(plan.Groups))

	// Pick the test clock period: the 84.13% quantile of the no-tuning
	// critical delay (the paper's T2 calibration).
	td := effitest.PeriodQuantile(c, 99, 1000, 0.8413)
	fmt.Printf("test period Td = %.4f ns\n\n", td)

	// Run the online flow on ten chips.
	for i := 0; i < 10; i++ {
		chip := effitest.SampleChip(c, 1234, i)
		out, err := plan.RunChip(chip, td)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "FAIL"
		if out.Passed {
			verdict = "PASS"
		}
		fmt.Printf("chip %2d: %3d tester iterations, configured=%5v, final test %s (critical delay %.4f ns)\n",
			i, out.Iterations, out.Configured, verdict, chip.CriticalDelay())
	}
}
