// Quickstart: generate a small circuit, run the complete EffiTest flow on a
// handful of manufactured chips, and print what happened at each stage.
package main

import (
	"context"
	"fmt"
	"log"

	"effitest"
)

func main() {
	// A small custom benchmark: 40 flip-flops, 400 gates, 4 tuning buffers,
	// 48 critical paths.
	profile := effitest.NewProfile("demo", 40, 400, 4, 48)
	c, err := effitest.Generate(profile, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d FFs, %d gates, %d buffers, %d paths, nominal clock %.3f ns\n",
		c.Name, c.NumFF, c.NumGates(), c.NumBuffers(), c.NumPaths(), c.TNominal)

	// Build the engine: offline preparation (statistical path selection of
	// Procedure 1, test multiplexing of §3.2, hold-time tuning bounds of
	// §3.5) plus test-period calibration — the 84.13% quantile of the
	// no-tuning critical delay, the paper's T2. Options layer over the
	// paper-aligned defaults.
	ctx := context.Background()
	eng, err := effitest.New(c,
		effitest.WithPeriodQuantile(0.8413, 1000),
		effitest.WithWorkers(0), // one worker per CPU
	)
	if err != nil {
		log.Fatal(err)
	}
	plan := eng.Plan()
	fmt.Printf("offline plan: test %d of %d paths (%.0f%%) in %d batches, %d correlation groups\n",
		plan.NumTested(), c.NumPaths(),
		100*float64(plan.NumTested())/float64(c.NumPaths()),
		len(plan.Batches), len(plan.Groups))
	fmt.Printf("test period Td = %.4f ns\n\n", eng.Period())

	// Manufacture ten chips and run the online flow on all of them in
	// parallel. Results stream back in chip order, bit-identical to a
	// sequential loop.
	chips, err := eng.SampleChips(ctx, 1234, 10)
	if err != nil {
		log.Fatal(err)
	}
	for res := range eng.RunChips(ctx, chips) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		out := res.Outcome
		verdict := "FAIL"
		if out.Passed {
			verdict = "PASS"
		}
		fmt.Printf("chip %2d: %3d tester iterations, configured=%5v, final test %s (critical delay %.4f ns)\n",
			res.Index, out.Iterations, out.Configured, verdict, res.Chip.CriticalDelay())
	}
}
