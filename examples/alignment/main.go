// Alignment: the heart of §3.3. The same set of paths is measured three
// ways on the same chip — one at a time (prior art), batched with buffers
// frozen, and batched with delay alignment by the tuning buffers — and the
// tester iteration counts are compared (the paper's Figure 8, in miniature).
package main

import (
	"fmt"
	"log"

	"effitest"
)

func main() {
	profile := effitest.NewProfile("align-demo", 48, 600, 6, 60)
	c, err := effitest.Generate(profile, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := effitest.DefaultConfig()
	all := make([]int, c.NumPaths())
	for i := range all {
		all[i] = i
	}

	fmt.Printf("measuring all %d paths of %q on one chip, three ways:\n\n", c.NumPaths(), c.Name)
	chip := effitest.SampleChip(c, 5, 0)

	ate1 := effitest.NewATE(chip, cfg.TesterResolution)
	pw, _, err := effitest.PathwiseTest(ate1, c, all, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  path-wise frequency stepping:        %4d iterations (%.2f per path)\n",
		pw, float64(pw)/float64(len(all)))

	ate2 := effitest.NewATE(chip, cfg.TesterResolution)
	mux, _, err := effitest.MultiplexTest(ate2, c, all, effitest.NoHoldBounds, cfg, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  multiplexing (buffers frozen):       %4d iterations (%.2f per path)\n",
		mux, float64(mux)/float64(len(all)))

	ate3 := effitest.NewATE(chip, cfg.TesterResolution)
	al, _, err := effitest.MultiplexTest(ate3, c, all, effitest.NoHoldBounds, cfg, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  multiplexing + delay alignment:      %4d iterations (%.2f per path)\n",
		al, float64(al)/float64(len(all)))

	fmt.Printf("\nreduction vs path-wise: multiplexing %.1f%%, with alignment %.1f%%\n",
		100*float64(pw-mux)/float64(pw), 100*float64(pw-al)/float64(pw))
	fmt.Println("\n(the full EffiTest flow additionally tests only ~2-20% of the paths and")
	fmt.Println(" predicts the rest statistically — see examples/clusters)")
}
