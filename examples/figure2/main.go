// Figure 2 of the paper: four flip-flops in a loop with stage delays
// 3, 8, 5 and 6. Without tuning the minimum clock period is 8 (the slowest
// stage); with post-silicon tunable buffers the clock edges shift and the
// period drops to the cycle mean 22/4 = 5.5.
package main

import (
	"fmt"
	"log"

	"effitest"
)

func main() {
	// Stage delays around the loop F1→F2→F3→F4→F1. Setup and hold times are
	// zero, so the folded hold bound of a stage is -delay.
	delays := []float64{3, 8, 5, 6}
	arcs := make([]effitest.Timing, 4)
	for i, d := range delays {
		arcs[i] = effitest.Timing{From: i, To: (i + 1) % 4, Setup: d, Hold: -d}
	}

	fmt.Println("Paper Figure 2: post-silicon clock tuning on a 4-FF loop")
	fmt.Printf("stage delays: %v\n\n", delays)

	// Without buffers every clock edge is fixed: the minimum period is the
	// slowest stage.
	noBuffers := effitest.UniformBuffers(4, nil, 0, 0, 0)
	for _, T := range []float64{8.0, 7.99} {
		_, ok := effitest.FeasibleSkewsDiscrete(T, arcs, noBuffers)
		fmt.Printf("no buffers,  T = %.2f: feasible = %v\n", T, ok)
	}

	// The theoretical limit with unlimited skew is the maximum cycle mean.
	min, ok := effitest.MinPeriodUnconstrained(4, arcs)
	if !ok {
		log.Fatal("no cycle found")
	}
	fmt.Printf("\nminimum period with unlimited tuning (max cycle mean): %.2f\n\n", min)

	// With ±4-unit tuning buffers on every FF the limit is reachable.
	buffers := effitest.UniformBuffers(4, []int{0, 1, 2, 3}, -4, 4, 0)
	x, ok := effitest.FeasibleSkews(5.5, arcs, buffers)
	if !ok {
		log.Fatal("period 5.5 should be feasible")
	}
	fmt.Println("buffer values achieving T = 5.5 (relative to the reference clock):")
	for i, v := range x {
		fmt.Printf("  x%d = %+.2f\n", i+1, v)
	}
	fmt.Printf("\nthe F2 launching edge moves %.2f early, giving the F2→F3 stage %.1f+%.1f=%.1f units — the paper's narrative\n",
		-(x[1] - x[0]), 5.5, -(x[1] - x[0]), 5.5-(x[1]-x[0]))

	if _, ok := effitest.FeasibleSkews(5.49, arcs, buffers); ok {
		log.Fatal("below the cycle mean must be infeasible")
	}
	fmt.Println("T = 5.49 is correctly infeasible (below the cycle mean)")
}
